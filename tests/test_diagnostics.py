"""Tests for the diagnostics layer: the REPRO_* mode knobs."""

import warnings

import pytest

from repro import diagnostics
from repro.diagnostics import (
    faults_mode,
    fusion_mode,
    ir_mode,
    stream_mode,
    verify_mode,
)


@pytest.fixture(autouse=True)
def _fresh_warn_cache(monkeypatch):
    monkeypatch.setattr(diagnostics, "_warned_verify_values", set())
    monkeypatch.setattr(diagnostics, "_warned_fusion_values", set())
    monkeypatch.setattr(diagnostics, "_warned_stream_values", set())
    monkeypatch.setattr(diagnostics, "_warned_fault_values", set())
    monkeypatch.setattr(diagnostics, "_warned_ir_values", set())


class TestVerifyMode:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert verify_mode() == "error"
        assert verify_mode(default="warn") == "warn"

    @pytest.mark.parametrize("value", ["off", "warn", "error",
                                       " Error ", "OFF"])
    def test_accepted_values_are_normalized(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", value)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert verify_mode() == value.strip().lower()

    def test_bad_value_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "strict")
        with pytest.warns(RuntimeWarning) as record:
            assert verify_mode() == "error"
        (w,) = record
        assert "'strict'" in str(w.message)
        assert "off, warn, error" in str(w.message)

    def test_bad_value_warns_only_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "oops")
        with pytest.warns(RuntimeWarning):
            verify_mode()
        with warnings.catch_warnings():
            warnings.simplefilter("error")     # a repeat would raise
            assert verify_mode() == "error"

    def test_distinct_bad_values_each_warn(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "a")
        with pytest.warns(RuntimeWarning, match="'a'"):
            verify_mode()
        monkeypatch.setenv("REPRO_VERIFY", "b")
        with pytest.warns(RuntimeWarning, match="'b'"):
            verify_mode()


class TestOnOffKnobs:
    """REPRO_FUSION / REPRO_STREAMS share the resolver: identical
    unknown-value handling — warn once naming the accepted set, fall
    back to the default."""

    CASES = [(fusion_mode, "REPRO_FUSION"), (stream_mode,
                                             "REPRO_STREAMS")]

    @pytest.mark.parametrize("mode_fn,env", CASES)
    def test_unset_uses_default(self, mode_fn, env, monkeypatch):
        monkeypatch.delenv(env, raising=False)
        assert mode_fn() == "on"
        assert mode_fn(default="off") == "off"

    @pytest.mark.parametrize("mode_fn,env", CASES)
    @pytest.mark.parametrize("value", ["on", "off", " ON ", "Off"])
    def test_accepted_values_are_normalized(self, mode_fn, env, value,
                                            monkeypatch):
        monkeypatch.setenv(env, value)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert mode_fn() == value.strip().lower()

    @pytest.mark.parametrize("mode_fn,env", CASES)
    def test_bad_value_warns_once_and_falls_back(self, mode_fn, env,
                                                 monkeypatch):
        monkeypatch.setenv(env, "enabled")
        with pytest.warns(RuntimeWarning) as record:
            assert mode_fn() == "on"
        (w,) = record
        assert env in str(w.message)
        assert "'enabled'" in str(w.message)
        assert "on, off" in str(w.message)
        with warnings.catch_warnings():
            warnings.simplefilter("error")     # a repeat would raise
            assert mode_fn() == "on"


class TestFaultsMode:
    def test_unset_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert faults_mode() == "off"

    def test_plan_strings_pass_through_normalized(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", " Plan:seed=3,alloc=1x ")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert faults_mode() == "plan:seed=3,alloc=1x"

    def test_bad_value_warns_once_and_is_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "chaos")
        with pytest.warns(RuntimeWarning, match="REPRO_FAULTS"):
            assert faults_mode() == "off"
        with warnings.catch_warnings():
            warnings.simplefilter("error")     # a repeat would raise
            assert faults_mode() == "off"


class TestIrMode:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_IR", raising=False)
        assert ir_mode() == "verify"
        assert ir_mode(default="off") == "off"

    @pytest.mark.parametrize("value", ["off", "verify", "opt",
                                       " Opt ", "VERIFY"])
    def test_accepted_values_are_normalized(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_IR", value)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ir_mode() == value.strip().lower()

    def test_bad_value_warns_once_naming_accepted_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_IR", "aggressive")
        with pytest.warns(RuntimeWarning) as record:
            assert ir_mode() == "verify"
        (w,) = record
        assert "REPRO_IR" in str(w.message)
        assert "'aggressive'" in str(w.message)
        assert "off, verify, opt" in str(w.message)
        with warnings.catch_warnings():
            warnings.simplefilter("error")     # a repeat would raise
            assert ir_mode() == "verify"

"""Tests for the diagnostics layer: the REPRO_VERIFY knob."""

import warnings

import pytest

from repro import diagnostics
from repro.diagnostics import verify_mode


@pytest.fixture(autouse=True)
def _fresh_warn_cache(monkeypatch):
    monkeypatch.setattr(diagnostics, "_warned_verify_values", set())


class TestVerifyMode:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert verify_mode() == "error"
        assert verify_mode(default="warn") == "warn"

    @pytest.mark.parametrize("value", ["off", "warn", "error",
                                       " Error ", "OFF"])
    def test_accepted_values_are_normalized(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", value)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert verify_mode() == value.strip().lower()

    def test_bad_value_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "strict")
        with pytest.warns(RuntimeWarning) as record:
            assert verify_mode() == "error"
        (w,) = record
        assert "'strict'" in str(w.message)
        assert "off, warn, error" in str(w.message)

    def test_bad_value_warns_only_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "oops")
        with pytest.warns(RuntimeWarning):
            verify_mode()
        with warnings.catch_warnings():
            warnings.simplefilter("error")     # a repeat would raise
            assert verify_mode() == "error"

    def test_distinct_bad_values_each_warn(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "a")
        with pytest.warns(RuntimeWarning, match="'a'"):
            verify_mode()
        monkeypatch.setenv("REPRO_VERIFY", "b")
        with pytest.warns(RuntimeWarning, match="'b'"):
            verify_mode()

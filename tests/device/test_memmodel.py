"""Tests for the device bandwidth/occupancy model.

These encode the *paper's* observations directly: the 79% plateau,
the SP shoulder near 16^4 vs DP near 12^4, block sizes >= 128
saturating, and launch failure on resource exhaustion.
"""

import pytest

from repro.device import (
    K20X_ECC_OFF,
    LaunchError,
    blocks_per_sm,
    kernel_cost,
    resident_threads,
    sustained_bandwidth,
)


class TestOccupancy:
    def test_max_block_size_enforced(self):
        with pytest.raises(LaunchError):
            blocks_per_sm(K20X_ECC_OFF, 2048, 32)
        with pytest.raises(LaunchError):
            blocks_per_sm(K20X_ECC_OFF, 0, 32)

    def test_register_exhaustion_fails_launch(self):
        """Paper Sec. VII: 'some kernels may even exhaust resources
        and fail to launch altogether'."""
        # 255 regs * 1024 threads = 261k > 64k register file
        with pytest.raises(LaunchError, match="too many resources"):
            blocks_per_sm(K20X_ECC_OFF, 1024, 255)
        # halving (the autotune strategy) eventually succeeds
        assert blocks_per_sm(K20X_ECC_OFF, 256, 255) >= 1

    def test_resident_thread_cap(self):
        r = resident_threads(K20X_ECC_OFF, 128, 32, 10**9)
        assert r == K20X_ECC_OFF.sm_count * K20X_ECC_OFF.max_threads_per_sm

    def test_small_volume_limits_residency(self):
        assert resident_threads(K20X_ECC_OFF, 128, 32, 4096) == 4096

    def test_small_blocks_reduce_residency(self):
        r32 = resident_threads(K20X_ECC_OFF, 32, 32, 10**9)
        r128 = resident_threads(K20X_ECC_OFF, 128, 32, 10**9)
        assert r32 < r128


class TestBandwidthCurve:
    def test_plateau_fraction(self):
        """Largest volumes sustain ~79% of peak (paper Sec. VIII-B)."""
        bw = sustained_bandwidth(K20X_ECC_OFF, 128, 64, 28 ** 4, 8)
        frac = bw / K20X_ECC_OFF.peak_bandwidth
        assert 0.74 <= frac <= 0.79

    def test_monotone_in_volume(self):
        prev = 0.0
        for l in range(2, 30, 2):
            bw = sustained_bandwidth(K20X_ECC_OFF, 128, 64, l ** 4, 4)
            assert bw >= prev
            prev = bw

    def test_sp_shoulder_near_16(self):
        """SP reaches ~90% of its plateau around V = 16^4."""
        plateau = sustained_bandwidth(K20X_ECC_OFF, 128, 64, 28 ** 4, 4)
        at16 = sustained_bandwidth(K20X_ECC_OFF, 128, 64, 16 ** 4, 4)
        at8 = sustained_bandwidth(K20X_ECC_OFF, 128, 64, 8 ** 4, 4)
        assert at16 >= 0.85 * plateau
        assert at8 <= 0.55 * plateau

    def test_dp_saturates_earlier_than_sp(self):
        """Paper: shoulder at 16^4 (SP) vs 12^4 (DP) — wider words
        reach memory-level-parallelism saturation at smaller V."""
        v = 12 ** 4
        sp = sustained_bandwidth(K20X_ECC_OFF, 128, 64, v, 4)
        dp = sustained_bandwidth(K20X_ECC_OFF, 128, 64, v, 8)
        plateau = sustained_bandwidth(K20X_ECC_OFF, 128, 64, 28 ** 4, 8)
        assert dp > sp
        assert dp >= 0.85 * plateau

    def test_block_128_saturates(self):
        """Paper Sec. VII: blocks >= 128 achieve the highest rate."""
        v = 24 ** 4
        b128 = sustained_bandwidth(K20X_ECC_OFF, 128, 32, v, 4)
        b256 = sustained_bandwidth(K20X_ECC_OFF, 256, 32, v, 4)
        b32 = sustained_bandwidth(K20X_ECC_OFF, 32, 32, v, 4)
        assert b256 <= b128 * 1.01
        assert b32 < 0.9 * b128


class TestKernelCost:
    def test_memory_bound_time(self):
        c = kernel_cost(K20X_ECC_OFF, nsites=16 ** 4, block_size=128,
                        regs_per_thread=64, bytes_per_site=432,
                        flops_per_site=198, precision="f64")
        assert c.mem_time_s > c.flop_time_s
        assert c.time_s >= c.mem_time_s

    def test_sustained_gbs_includes_overhead(self):
        c = kernel_cost(K20X_ECC_OFF, nsites=4 ** 4, block_size=128,
                        regs_per_thread=64, bytes_per_site=432,
                        flops_per_site=198, precision="f64")
        assert c.sustained_gbs < c.bandwidth_bytes_s / 1e9

    def test_zero_sites(self):
        c = kernel_cost(K20X_ECC_OFF, nsites=0, block_size=128,
                        regs_per_thread=64, bytes_per_site=432,
                        flops_per_site=198, precision="f64")
        assert c.time_s == 0.0 and c.gflops == 0.0

    def test_gflops_consistency(self):
        c = kernel_cost(K20X_ECC_OFF, nsites=16 ** 4, block_size=128,
                        regs_per_thread=64, bytes_per_site=1000,
                        flops_per_site=500, precision="f32")
        assert c.gflops == pytest.approx(
            500 * 16 ** 4 / c.time_s / 1e9)

"""Tests for the per-kernel block-size auto-tuner (paper Sec. VII)."""

import numpy as np
import pytest

from repro.device import Autotuner, Device, Phase
from repro.driver import compile_ptx
from repro.ptx import KernelBuilder, PTXModule, PTXType


def _streaming_kernel(name="tune_me"):
    kb = KernelBuilder(name)
    pn = kb.add_param("p_n", PTXType.S32)
    px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
    n = kb.ld_param(pn)
    x = kb.ld_param(px)
    gid = kb.global_thread_id()
    oob = kb.setp("ge", gid, n)
    done = kb.new_label("DONE")
    kb.bra(done, guard=oob)
    off = kb.cvt(kb.mul(kb.cvt(gid, PTXType.S64), kb.imm(8, PTXType.S64)),
                 PTXType.U64)
    addr = kb.add(x, off)
    v = kb.ld_global(addr, PTXType.F64)
    kb.st_global(addr, kb.mul(v, kb.imm(2.0, PTXType.F64)), PTXType.F64)
    kb.label(done)
    kb.ret()
    return PTXModule.from_builder(kb)


@pytest.fixture()
def launch_env():
    dev = Device()
    module = _streaming_kernel()
    compiled = compile_ptx(module.render())
    n = 32768
    addr = dev.mem_alloc(n * 8)
    dev.memcpy_htod(addr, np.ones(n))
    params = {"p_n": n, "p_x": addr}
    return dev, module, compiled, params, n


class TestAutotuner:
    def test_starts_at_max_block(self, launch_env):
        dev, module, compiled, params, n = launch_env
        tuner = Autotuner(dev)
        st = tuner.state(compiled.name)
        assert st.next_block == dev.spec.max_threads_per_block

    def test_probes_down_and_settles(self, launch_env):
        dev, module, compiled, params, n = launch_env
        tuner = Autotuner(dev)
        for _ in range(12):
            tuner.launch(compiled, module.info, params, n, "f64")
        st = tuner.state(compiled.name)
        assert st.phase is Phase.TUNED
        # paper: streaming kernels saturate at >= 128 on Kepler
        assert st.best_block >= 128

    def test_no_extra_launches_for_tuning(self, launch_env):
        """Paper: 'No kernels are launched solely for the purpose of
        tuning' — N requested launches = N device launches."""
        dev, module, compiled, params, n = launch_env
        tuner = Autotuner(dev)
        for _ in range(8):
            tuner.launch(compiled, module.info, params, n, "f64")
        assert dev.stats.kernel_launches == 8

    def test_tuned_block_is_argmin(self, launch_env):
        dev, module, compiled, params, n = launch_env
        tuner = Autotuner(dev)
        for _ in range(12):
            tuner.launch(compiled, module.info, params, n, "f64")
        st = tuner.state(compiled.name)
        best_seen = min(t for _, t in st.history)
        times_at_best = [t for b, t in st.history if b == st.best_block]
        assert min(times_at_best) == best_seen

    def _fat_kernel_env(self):
        dev = Device()
        module = _streaming_kernel("fat_kernel")
        compiled = compile_ptx(module.render())
        # pretend the kernel needs 160 regs/thread:
        # 1024*160 and 512*160 exceed 64k; 256*160 = 40960 fits
        compiled.regs_per_thread = 160
        n = 4096
        addr = dev.mem_alloc(n * 8)
        dev.memcpy_htod(addr, np.ones(n))
        params = {"p_n": n, "p_x": addr}
        return dev, module, compiled, params, n

    def test_halves_on_launch_failure(self):
        """With the static seed disabled (state created before the
        register pressure is known), a register-hungry kernel cannot
        launch at 1024; the tuner must halve until it fits, still on
        payload launches — the paper's original safety net."""
        dev, module, compiled, params, n = self._fat_kernel_env()
        tuner = Autotuner(dev)
        tuner.state(compiled.name)   # seeds at device max: regs unknown
        tuner.launch(compiled, module.info, params, n, "f64")
        st = tuner.state(compiled.name)
        assert st.failures >= 1
        assert max(b for b, _ in st.history) <= 256
        assert dev.stats.launch_failures >= 1

    def test_static_seed_skips_unlaunchable_blocks(self):
        """The static occupancy bound starts the probe at the first
        block size the register file admits: no failed launches."""
        from repro.device.autotune import static_block_seed

        dev, module, compiled, params, n = self._fat_kernel_env()
        seed = static_block_seed(dev.spec, compiled.regs_per_thread)
        assert seed == 256                      # provably below 1024
        tuner = Autotuner(dev)
        tuner.launch(compiled, module.info, params, n, "f64")
        st = tuner.state(compiled.name)
        assert st.failures == 0
        assert dev.stats.launch_failures == 0
        assert max(b for b, _ in st.history) == 256

    def test_static_seed_beats_halving_baseline(self):
        """Fewer tuning launch attempts than halving-from-1024."""
        def attempts_to_first_success(pre_seed_without_regs):
            dev, module, compiled, params, n = self._fat_kernel_env()
            tuner = Autotuner(dev)
            if pre_seed_without_regs:
                tuner.state(compiled.name)
            tuner.launch(compiled, module.info, params, n, "f64")
            return dev.stats.kernel_launches + dev.stats.launch_failures

        baseline = attempts_to_first_success(True)    # 1024, 512, 256
        seeded = attempts_to_first_success(False)     # 256 directly
        assert seeded < baseline
        assert seeded == 1 and baseline == 3

    def test_static_seed_unconstrained_kernel_starts_at_max(self):
        from repro.device.autotune import static_block_seed

        dev = Device()
        assert static_block_seed(dev.spec, 32) == \
            dev.spec.max_threads_per_block
        assert static_block_seed(dev.spec, None) == \
            dev.spec.max_threads_per_block

    def test_results_correct_during_tuning(self, launch_env):
        dev, module, compiled, params, n = launch_env
        tuner = Autotuner(dev)
        for _ in range(10):
            tuner.launch(compiled, module.info, params, n, "f64")
        out = dev.memcpy_dtoh(params["p_x"], n * 8, np.float64)
        assert np.allclose(out, 2.0 ** 10)

    def test_independent_kernels_tuned_independently(self, launch_env):
        dev, module, compiled, params, n = launch_env
        other_mod = _streaming_kernel("other")
        other = compile_ptx(other_mod.render())
        tuner = Autotuner(dev)
        tuner.launch(compiled, module.info, params, n, "f64")
        assert "other" not in tuner.states
        tuner.launch(other, other_mod.info, params, n, "f64")
        assert set(tuner.states) == {"tune_me", "other"}

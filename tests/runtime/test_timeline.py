"""Unit tests for the lane-based timeline and its analytics."""

import pytest

from repro.runtime import Timeline


def _three_lane_timeline():
    """compute |--A(2)--|--B(3)--|      comm |---C(4)---|
    where C starts when A ends (event edge)."""
    tl = Timeline()
    a = tl.add_span("compute", "A", "kernel", 0.0, 2.0)
    c = tl.add_span("comm", "C", "comm", 2.0, 6.0, deps=(a.sid,))
    b = tl.add_span("compute", "B", "kernel", 2.0, 5.0, deps=(a.sid,))
    return tl, a, b, c


class TestSpans:
    def test_dense_sids(self):
        tl, a, b, c = _three_lane_timeline()
        assert [s.sid for s in tl.spans] == [0, 1, 2]
        assert tl.spans[a.sid] is a

    def test_deps_deduped_and_none_dropped(self):
        tl = Timeline()
        a = tl.add_span("compute", "A", "kernel", 0.0, 1.0)
        b = tl.add_span("compute", "B", "kernel", 1.0, 2.0,
                        deps=(a.sid, None, a.sid))
        assert b.deps == (a.sid,)

    def test_duration(self):
        tl, a, _, c = _three_lane_timeline()
        assert a.duration_s == 2.0
        assert c.duration_s == 4.0


class TestAggregates:
    def test_end_and_serial(self):
        tl, *_ = _three_lane_timeline()
        assert tl.end_s == 6.0          # C finishes last
        assert tl.serial_s == 9.0       # 2 + 3 + 4

    def test_empty(self):
        tl = Timeline()
        assert tl.end_s == 0.0
        assert tl.serial_s == 0.0
        assert tl.overlap_fraction == 0.0
        assert tl.critical_path() == (0.0, [])
        assert len(tl) == 0

    def test_lane_and_cat_busy(self):
        tl, *_ = _three_lane_timeline()
        assert tl.lane_busy() == {"compute": 5.0, "comm": 4.0}
        assert tl.cat_busy() == {"kernel": 5.0, "comm": 4.0}
        assert tl.lane_spans() == {"compute": 2, "comm": 1}

    def test_overlap_fraction(self):
        tl, *_ = _three_lane_timeline()
        assert tl.overlap_fraction == pytest.approx(1.0 - 6.0 / 9.0)

    def test_serial_schedule_has_zero_overlap(self):
        tl = Timeline()
        tl.add_span("serial", "A", "kernel", 0.0, 2.0)
        tl.add_span("serial", "B", "h2d", 2.0, 3.0)
        assert tl.overlap_fraction == 0.0


class TestCriticalPath:
    def test_follows_latest_finishing_predecessor(self):
        tl, a, b, c = _three_lane_timeline()
        cp_s, chain = tl.critical_path()
        # C finishes last; its only dep is A
        assert [s.name for s in chain] == ["A", "C"]
        assert cp_s == 6.0

    def test_chain_in_execution_order(self):
        tl = Timeline()
        a = tl.add_span("compute", "A", "kernel", 0.0, 1.0)
        b = tl.add_span("h2d", "B", "h2d", 1.0, 4.0, deps=(a.sid,))
        tl.add_span("compute", "C", "kernel", 4.0, 5.0,
                    deps=(a.sid, b.sid))
        _, chain = tl.critical_path()
        assert [s.name for s in chain] == ["A", "B", "C"]

    def test_critical_path_property(self):
        tl, *_ = _three_lane_timeline()
        assert tl.critical_path_s == tl.critical_path()[0]


class TestSince:
    def test_rebases_window_to_zero(self):
        tl, *_ = _three_lane_timeline()
        view = tl.since(2.0)
        assert len(view) == 2           # B and C
        assert min(s.t0 for s in view.spans) == 0.0
        assert view.end_s == 4.0        # C: 2..6 -> 0..4

    def test_remaps_inside_edges_and_drops_outside(self):
        tl, a, b, c = _three_lane_timeline()
        view = tl.since(2.0)
        # both B and C depended on A, which is outside the window
        assert all(s.deps == () for s in view.spans)
        tl.add_span("compute", "D", "kernel", 5.0, 7.0,
                    deps=(b.sid,))
        view = tl.since(2.0)
        vb = next(s for s in view.spans if s.name == "B")
        vd = next(s for s in view.spans if s.name == "D")
        assert vd.deps == (vb.sid,)     # inside edge remapped

    def test_view_critical_path_self_consistent(self):
        tl, *_ = _three_lane_timeline()
        view = tl.since(0.0)
        cp_s, chain = view.critical_path()
        assert [s.name for s in chain] == ["A", "C"]
        assert cp_s == 6.0

"""Unit tests for streams, events and the per-device runtime."""

import warnings

import pytest

from repro.diagnostics import stream_mode
from repro.runtime import Stream, StreamRuntime, Timeline


class TestStream:
    def test_in_order_queue(self):
        tl = Timeline()
        s = Stream(tl, "compute", "compute")
        a = s.enqueue("A", 2.0, "kernel")
        b = s.enqueue("B", 3.0, "kernel")
        assert (a.t0, a.t1) == (0.0, 2.0)
        assert (b.t0, b.t1) == (2.0, 5.0)
        assert b.deps == (a.sid,)       # program order edge
        assert s.clock == 5.0

    def test_event_orders_across_streams(self):
        tl = Timeline()
        c = Stream(tl, "compute", "compute")
        d = Stream(tl, "d2h", "d2h")
        k = c.enqueue("kernel", 3.0, "kernel")
        ev = c.record_event()
        d.wait_event(ev)
        copy = d.enqueue("copy", 1.0, "d2h")
        assert copy.t0 == 3.0           # not before the kernel ends
        assert k.sid in copy.deps

    def test_unordered_streams_overlap(self):
        tl = Timeline()
        c = Stream(tl, "compute", "compute")
        h = Stream(tl, "h2d", "h2d")
        c.enqueue("kernel", 3.0, "kernel")
        up = h.enqueue("upload", 2.0, "h2d")
        assert up.t0 == 0.0             # concurrent with the kernel
        assert tl.end_s == 3.0
        assert tl.serial_s == 5.0

    def test_wait_in_the_past_is_free(self):
        tl = Timeline()
        c = Stream(tl, "compute", "compute")
        h = Stream(tl, "h2d", "h2d")
        up = h.enqueue("upload", 1.0, "h2d")
        ev = h.record_event()
        c.enqueue("busy", 5.0, "kernel")
        c.wait_event(ev)                # already fired
        k = c.enqueue("kernel", 1.0, "kernel")
        assert k.t0 == 5.0
        assert up.sid in k.deps         # edge still recorded

    def test_wait_none_is_noop(self):
        tl = Timeline()
        s = Stream(tl, "compute", "compute")
        s.wait_event(None)
        assert s.enqueue("A", 1.0, "kernel").t0 == 0.0

    def test_enqueue_wait_kwarg(self):
        tl = Timeline()
        c = Stream(tl, "compute", "compute")
        m = Stream(tl, "comm", "comm")
        msg = m.enqueue("halo", 4.0, "comm")
        k = c.enqueue("face", 1.0, "kernel", wait=[m.record_event()])
        assert k.t0 == 4.0
        assert msg.sid in k.deps

    def test_record_event_before_any_work(self):
        tl = Timeline()
        s = Stream(tl, "compute", "compute")
        ev = s.record_event()
        assert ev.time_s == 0.0 and ev.span is None


class TestStreamRuntime:
    def test_enabled_has_four_lanes(self):
        rt = StreamRuntime(enabled=True)
        assert len({id(s) for s in rt.streams}) == 4
        assert [s.lane for s in rt.streams] == list(StreamRuntime.LANES)

    def test_disabled_aliases_one_serial_stream(self):
        rt = StreamRuntime(enabled=False)
        assert rt.compute is rt.h2d is rt.d2h is rt.comm
        assert rt.compute.lane == "serial"
        rt.compute.enqueue("A", 1.0, "kernel")
        rt.h2d.enqueue("B", 2.0, "h2d")
        assert rt.timeline.end_s == 3.0             # fully serialized
        assert rt.timeline.overlap_fraction == 0.0

    def test_synchronize_aligns_clocks(self):
        rt = StreamRuntime(enabled=True)
        rt.compute.enqueue("K", 5.0, "kernel")
        rt.h2d.enqueue("U", 1.0, "h2d")
        t = rt.synchronize()
        assert t == 5.0
        assert all(s.clock == 5.0 for s in rt.streams)
        assert rt.h2d.enqueue("U2", 1.0, "h2d").t0 == 5.0

    def test_elapsed_is_timeline_end(self):
        rt = StreamRuntime(enabled=True)
        rt.compute.enqueue("K", 5.0, "kernel")
        assert rt.elapsed_s == rt.timeline.end_s == 5.0

    def test_shared_timeline_injection(self):
        tl = Timeline()
        rt = StreamRuntime(enabled=True, timeline=tl)
        rt.compute.enqueue("K", 1.0, "kernel")
        assert len(tl) == 1


class TestStreamModeKnob:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAMS", raising=False)
        assert stream_mode() == "on"
        assert StreamRuntime().enabled

    def test_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAMS", "off")
        assert stream_mode() == "off"
        assert not StreamRuntime().enabled

    def test_case_and_whitespace_tolerant(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAMS", "  OFF ")
        assert stream_mode() == "off"

    def test_bad_value_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAMS", "bogus-value-for-test")
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            assert stream_mode() == "on"
            assert stream_mode() == "on"
        hits = [x for x in w if "REPRO_STREAMS" in str(x.message)]
        assert len(hits) == 1

    def test_explicit_bool_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAMS", "off")
        assert StreamRuntime(enabled=True).enabled


class TestBitwiseEquivalence:
    """Streams model only time: results and the serial clock must not
    depend on the REPRO_STREAMS mode."""

    def _run(self, monkeypatch, streams: bool):
        import numpy as np

        from repro.core.context import Context
        from repro.qcd.solver import cg
        from repro.qdp.fields import latt_fermion, latt_real
        from repro.qdp.lattice import Lattice

        monkeypatch.setenv("REPRO_STREAMS", "on" if streams else "off")
        ctx = Context(autotune=False)
        assert ctx.device.runtime.enabled is streams
        lat = Lattice((4, 4, 4, 4))
        rng = np.random.default_rng(99)
        w = latt_real(lat, context=ctx)
        w.from_numpy(rng.uniform(0.5, 1.5, lat.nsites))
        b = latt_fermion(lat, context=ctx)
        b.gaussian(rng)
        x = latt_fermion(lat, context=ctx)
        cg(lambda d, s: d.assign(w.ref() * s.ref()), x, b,
           tol=0.0, max_iter=4)
        ctx.flush()
        return ctx, x.to_numpy()

    def test_results_bitwise_identical(self, monkeypatch):
        import numpy as np

        _, x_on = self._run(monkeypatch, True)
        _, x_off = self._run(monkeypatch, False)
        assert np.array_equal(x_on, x_off)

    def test_serial_mode_makespan_equals_device_clock(self, monkeypatch):
        ctx, _ = self._run(monkeypatch, False)
        assert ctx.device.runtime.timeline.end_s == ctx.device.clock

    def test_stream_mode_never_exceeds_serial_clock(self, monkeypatch):
        ctx, _ = self._run(monkeypatch, True)
        tl = ctx.device.runtime.timeline
        assert tl.end_s <= ctx.device.clock
        assert tl.serial_s == pytest.approx(ctx.device.clock)
        # the context surfaces the same figures
        assert ctx.stats.overlap_fraction == tl.overlap_fraction
        assert ctx.stats.critical_path_s == tl.critical_path_s
        assert ctx.stats.lane_busy_s == tl.lane_busy()
        assert ctx.stats.cache.page_ins > 0

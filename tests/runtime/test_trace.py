"""Tests for the Chrome-trace export and the repro.trace CLI."""

import io
import json
from contextlib import redirect_stdout

from repro.runtime import Timeline, chrome_trace, summarize, write_chrome_trace
from repro.runtime.trace import main


def _sample_timeline():
    tl = Timeline()
    k = tl.add_span("compute", "kern", "kernel", 0.0, 2e-6,
                    args={"bytes": 512})
    tl.add_span("h2d", "pagein:f1", "h2d", 0.0, 1e-6)
    tl.add_span("d2h", "pageout:f2", "d2h", 2e-6, 3e-6, deps=(k.sid,))
    return tl


class TestChromeTrace:
    def test_lane_metadata_threads(self):
        doc = chrome_trace(_sample_timeline())
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("name") == "thread_name"}
        assert names == {"compute", "h2d", "d2h"}
        procs = [e for e in doc["traceEvents"]
                 if e.get("name") == "process_name"]
        assert len(procs) == 1

    def test_complete_events_in_microseconds(self):
        doc = chrome_trace(_sample_timeline())
        xs = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert xs["kern"]["ts"] == 0.0
        assert xs["kern"]["dur"] == 2.0          # 2e-6 s -> 2 us
        assert xs["pageout:f2"]["ts"] == 2.0
        assert xs["kern"]["cat"] == "kernel"

    def test_deps_and_args_preserved(self):
        doc = chrome_trace(_sample_timeline())
        xs = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert xs["kern"]["args"]["bytes"] == 512
        assert xs["pageout:f2"]["args"]["deps"] == [0]

    def test_stable_lane_ordering(self):
        doc = chrome_trace(_sample_timeline())
        meta = {e["args"]["name"]: e["tid"] for e in doc["traceEvents"]
                if e.get("name") == "thread_name"}
        assert meta["compute"] < meta["h2d"] < meta["d2h"]

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(_sample_timeline(), str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == 3

    def test_json_serializable_from_real_workload(self, ctx):
        # any device timeline must export cleanly (args are plain types)
        json.dumps(chrome_trace(ctx.device.runtime.timeline))


class TestSummarize:
    def test_mentions_lanes_and_metrics(self):
        text = summarize(_sample_timeline(), title="probe")
        assert "probe" in text
        for token in ("compute", "h2d", "d2h", "makespan", "overlap",
                      "critical path"):
            assert token in text

    def test_empty_timeline(self):
        text = summarize(Timeline())
        assert "makespan 0.0 us" in text


class TestCLI:
    def test_smoke_with_trace_output(self, tmp_path, fresh_ctx):
        out = tmp_path / "cg.json"
        buf = io.StringIO()
        with redirect_stdout(buf):
            status = main(["--lattice", "2,2,2,2", "--iters", "2",
                           "--out", str(out)])
        assert status == 0
        text = buf.getvalue()
        assert "fused CG" in text
        assert "field cache:" in text
        doc = json.loads(out.read_text())
        lanes = {e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("name") == "thread_name"}
        assert "compute" in lanes

    def test_memory_pressure_lights_up_writeback_lane(self, fresh_ctx):
        buf = io.StringIO()
        with redirect_stdout(buf):
            status = main(["--lattice", "4,4,4,8", "--iters", "4",
                           "--pool-mib", "0.6"])
        assert status == 0
        assert "d2h" in buf.getvalue()           # spills happened
        assert "spill(s)" in buf.getvalue()

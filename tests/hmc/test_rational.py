"""Tests for the rational approximation machinery (RHMC, ref. [14])."""

import numpy as np
import pytest

from repro.hmc.rational import (
    PartialFraction,
    fourth_root,
    inv_sqrt,
    rational_inverse_power,
)


class TestInvSqrt:
    def test_accuracy(self):
        pf = inv_sqrt(1e-3, 10.0, degree=14)
        assert pf.max_rel_error < 1e-7
        xs = np.geomspace(1e-3, 10.0, 500)
        assert np.abs(pf(xs) - xs ** -0.5).max() < 1e-6

    def test_shifts_positive(self):
        """Multi-shift CG requires sigma_i > 0."""
        pf = inv_sqrt(1e-3, 10.0, degree=14)
        assert all(s > 0 for s in pf.shifts)

    def test_residues_positive(self):
        """x^{-1/2} is a Stieltjes function: all residues positive."""
        pf = inv_sqrt(1e-3, 10.0, degree=14)
        assert all(a > 0 for a in pf.residues)
        assert pf.a0 > 0

    def test_degree_improves_accuracy(self):
        e8 = inv_sqrt(1e-2, 10.0, degree=8).max_rel_error
        e14 = inv_sqrt(1e-2, 10.0, degree=14).max_rel_error
        assert e14 < e8

    def test_wider_interval_is_harder(self):
        narrow = inv_sqrt(0.1, 10.0, degree=8).max_rel_error
        wide = inv_sqrt(1e-4, 10.0, degree=8).max_rel_error
        assert wide > narrow


class TestFourthRoot:
    def test_accuracy(self):
        pf = fourth_root(1e-3, 10.0, degree=14)
        xs = np.geomspace(1e-3, 10.0, 500)
        rel = np.abs(pf(xs) - xs ** 0.25) / xs ** 0.25
        assert rel.max() < 1e-6

    def test_composition_is_inverse_sqrt(self):
        """r4(x)^2 * r_invsqrt(x) ~ x^{1/2} * x^{-1/2} = 1 — heatbath
        and action approximations must be mutually consistent."""
        pf_a = inv_sqrt(1e-2, 5.0, degree=14)
        pf_h = fourth_root(1e-2, 5.0, degree=14)
        xs = np.geomspace(1e-2, 5.0, 200)
        prod = pf_h(xs) ** 2 * pf_a(xs)
        assert np.abs(prod - 1.0).max() < 1e-6


class TestValidation:
    def test_bad_interval(self):
        with pytest.raises(ValueError):
            rational_inverse_power(0.5, -1.0, 2.0)
        with pytest.raises(ValueError):
            rational_inverse_power(0.5, 2.0, 1.0)

    def test_callable_form(self):
        pf = PartialFraction(a0=1.0, residues=(2.0,), shifts=(1.0,),
                             lo=0.1, hi=1.0, max_rel_error=0.0)
        assert pf(1.0) == pytest.approx(1.0 + 2.0 / 2.0)
        assert pf.degree == 1

"""Tests for gauge-configuration checkpointing."""

import numpy as np
import pytest

from repro.hmc.checkpoint import (
    CheckpointError,
    CheckpointManager,
    TrajectorySnapshotStore,
    load_config,
    save_config,
)
from repro.qcd.gauge import plaquette, weak_gauge


class TestRoundTrip:
    def test_save_load_identical(self, ctx, lat4, rng, tmp_path):
        u = weak_gauge(lat4, rng, eps=0.3)
        header = save_config(tmp_path / "cfg", u, trajectory=42)
        u2, header2 = load_config(tmp_path / "cfg.npz")
        assert header2 == header
        assert header2.trajectory == 42
        for a, b in zip(u, u2):
            assert np.array_equal(a.to_numpy(), b.to_numpy())

    def test_header_quantities(self, ctx, lat4, rng, tmp_path):
        u = weak_gauge(lat4, rng, eps=0.3)
        header = save_config(tmp_path / "cfg", u)
        assert header.dims == lat4.dims
        assert header.plaquette == pytest.approx(plaquette(u), abs=1e-14)
        assert 0 < header.link_trace <= 1.0

    def test_checksum_detects_corruption(self, ctx, lat4, rng, tmp_path):
        u = weak_gauge(lat4, rng, eps=0.3)
        save_config(tmp_path / "cfg", u)
        # corrupt the payload, keep the header
        with np.load(tmp_path / "cfg.npz") as data:
            links = data["links"].copy()
            header = data["header"].copy()
        links[0, 0, 0, 0] += 1e-3
        np.savez_compressed(tmp_path / "bad", links=links, header=header)
        with pytest.raises(CheckpointError, match="checksum"):
            load_config(tmp_path / "bad.npz")

    def test_plaquette_validation(self, ctx, lat4, rng, tmp_path):
        """A file whose checksum matches but whose header plaquette is
        wrong (mislabeled ensemble) must be rejected."""
        import json

        u = weak_gauge(lat4, rng, eps=0.3)
        save_config(tmp_path / "cfg", u)
        with np.load(tmp_path / "cfg.npz") as data:
            links = data["links"].copy()
            meta = json.loads(bytes(data["header"].tobytes()).decode())
        meta["plaquette"] += 0.01
        np.savez_compressed(
            tmp_path / "mislabeled", links=links,
            header=np.frombuffer(json.dumps(meta).encode(),
                                 dtype=np.uint8))
        with pytest.raises(CheckpointError, match="plaquette"):
            load_config(tmp_path / "mislabeled.npz")

    def test_validation_can_be_skipped(self, ctx, lat4, rng, tmp_path):
        u = weak_gauge(lat4, rng, eps=0.3)
        save_config(tmp_path / "cfg", u)
        u2, _ = load_config(tmp_path / "cfg.npz", validate=False)
        assert len(u2) == 4

    def test_truncated_file_raises_checkpoint_error(self, ctx, lat4, rng,
                                                    tmp_path):
        """A half-written file (job killed mid-save before the atomic
        rename era) must raise CheckpointError, not a raw zip error."""
        u = weak_gauge(lat4, rng, eps=0.3)
        save_config(tmp_path / "cfg", u)
        blob = (tmp_path / "cfg.npz").read_bytes()
        (tmp_path / "torn.npz").write_bytes(blob[:len(blob) // 2])
        with pytest.raises(CheckpointError, match="truncated"):
            load_config(tmp_path / "torn.npz")

    def test_save_is_atomic(self, ctx, lat4, rng, tmp_path):
        """save_config never exposes a partial file under the final
        name: an existing good checkpoint survives a failed save, and
        no *.tmp litter is left behind."""
        import os
        from unittest import mock

        u = weak_gauge(lat4, rng, eps=0.3)
        save_config(tmp_path / "cfg", u, trajectory=1)
        good = (tmp_path / "cfg.npz").read_bytes()
        with mock.patch("numpy.savez_compressed",
                        side_effect=OSError("disk full")):
            with pytest.raises(OSError, match="disk full"):
                save_config(tmp_path / "cfg", u, trajectory=2)
        assert (tmp_path / "cfg.npz").read_bytes() == good
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []
        u2, header = load_config(tmp_path / "cfg.npz")
        assert header.trajectory == 1

    def test_resume_hmc_from_checkpoint(self, ctx, lat_small, tmp_path):
        """Save mid-stream, reload, continue — trajectories after the
        reload must behave identically to an uninterrupted run."""
        from repro.hmc import GaugeMonomial, HMC, Level, MultiTimescaleIntegrator

        rng = np.random.default_rng(3)
        u = weak_gauge(lat_small, rng, eps=0.3)
        hmc = HMC(u, MultiTimescaleIntegrator(
            [Level([GaugeMonomial(beta=5.6)], n_steps=4)]), rng)
        hmc.trajectory(tau=0.3)
        save_config(tmp_path / "stream", u, trajectory=1)
        u2, header = load_config(tmp_path / "stream.npz")
        assert header.trajectory == 1
        assert plaquette(u2) == pytest.approx(plaquette(u), abs=1e-14)


class TestCheckpointManager:
    def test_keeps_last_n(self, ctx, lat4, rng, tmp_path):
        u = weak_gauge(lat4, rng, eps=0.3)
        mgr = CheckpointManager(tmp_path, keep=2)
        for n in (1, 2, 3, 4):
            mgr.save(u, trajectory=n)
        assert [p.name for p in mgr.paths()] \
            == ["cfg_000003.npz", "cfg_000004.npz"]

    def test_load_latest_returns_newest(self, ctx, lat4, rng, tmp_path):
        u = weak_gauge(lat4, rng, eps=0.3)
        mgr = CheckpointManager(tmp_path, keep=3)
        for n in (5, 6, 7):
            mgr.save(u, trajectory=n)
        _, header, skipped = mgr.load_latest()
        assert header.trajectory == 7
        assert skipped == []

    def test_load_latest_skips_corrupt_newest(self, ctx, lat4, rng,
                                              tmp_path):
        """A torn final write falls back to the previous checkpoint
        with a warning, instead of aborting the restart."""
        u = weak_gauge(lat4, rng, eps=0.3)
        mgr = CheckpointManager(tmp_path, keep=3)
        mgr.save(u, trajectory=1)
        mgr.save(u, trajectory=2)
        newest = mgr.paths()[-1]
        blob = newest.read_bytes()
        newest.write_bytes(blob[:len(blob) // 2])
        with pytest.warns(RuntimeWarning, match="skipping corrupt"):
            _, header, skipped = mgr.load_latest()
        assert header.trajectory == 1
        assert skipped == [newest]

    def test_load_latest_raises_when_nothing_loads(self, ctx, lat4,
                                                   rng, tmp_path):
        u = weak_gauge(lat4, rng, eps=0.3)
        mgr = CheckpointManager(tmp_path, keep=2)
        mgr.save(u, trajectory=1)
        for p in mgr.paths():
            p.write_bytes(b"not a checkpoint")
        with pytest.warns(RuntimeWarning):
            with pytest.raises(CheckpointError, match="no loadable"):
                mgr.load_latest()

    def test_bad_keep_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)


class TestTrajectorySnapshotStore:
    def test_roundtrip_is_exact(self, ctx, lat4, tmp_path):
        rng = np.random.default_rng(9)
        u = weak_gauge(lat4, rng, eps=0.3)
        before = [umu.to_numpy().copy() for umu in u]
        state = rng.bit_generator.state
        store = TrajectorySnapshotStore()
        store.snapshot(u, rng, trajectory=3)
        # perturb both, then restore
        u[0].from_numpy(before[0] * 1.5)
        rng.normal(size=16)
        assert store.restore(u, rng) == 3
        for umu, arr in zip(u, before):
            assert np.array_equal(umu.to_numpy(), arr)
        assert rng.bit_generator.state == state

    def test_keeps_last_n(self, ctx, lat4, tmp_path):
        rng = np.random.default_rng(9)
        u = weak_gauge(lat4, rng, eps=0.3)
        store = TrajectorySnapshotStore(keep=2)
        for n in range(5):
            store.snapshot(u, rng, trajectory=n)
        assert len(store) == 2
        assert store.latest_trajectory == 4

    def test_crc_guard(self, ctx, lat4, tmp_path):
        rng = np.random.default_rng(9)
        u = weak_gauge(lat4, rng, eps=0.3)
        store = TrajectorySnapshotStore()
        store.snapshot(u, rng, trajectory=0)
        # corrupt the stored payload behind the CRC's back
        store._snapshots[-1][1][0][0, 0, 0] += 1.0
        with pytest.raises(CheckpointError, match="CRC32"):
            store.restore(u, rng)

    def test_empty_store_raises(self, ctx, lat4, tmp_path):
        rng = np.random.default_rng(9)
        u = weak_gauge(lat4, rng, eps=0.3)
        with pytest.raises(CheckpointError, match="no trajectory"):
            TrajectorySnapshotStore().restore(u, rng)

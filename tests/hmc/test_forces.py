"""Finite-difference validation of every MD force.

The defining identity (see repro.hmc.forces):

    d S(exp(i t Q) U) / dt |_{t=0} = 2 tr(Q F)

for a random algebra direction Q at a random link.  These tests pin
the sign and normalization of each monomial's force — the property
without which HMC silently fails to conserve energy.
"""

import numpy as np
import pytest

from repro.hmc.forces import (
    gaussian_momenta,
    hermitian_traceless,
    kinetic_energy,
    update_links,
    wilson_gauge_action,
    wilson_gauge_force,
)
from repro.hmc.monomials import (
    GaugeMonomial,
    HasenbuschRatioMonomial,
    OneFlavorRationalMonomial,
    TwoFlavorWilsonMonomial,
)
from repro.hmc.rational import fourth_root, inv_sqrt
from repro.qcd import su3
from repro.qcd.gauge import weak_gauge
from repro.qcd.su3 import expm_i_hermitian
from repro.qcd.wilson import WilsonParams


def _fd_check(u, mono, rng, mu=1, site=77, eps=1e-5, tol=2e-4):
    force = mono.force(u)
    q = su3.random_hermitian_traceless(rng, 1)[0]
    u0 = u[mu].to_numpy().copy()

    def action_at(t):
        up = u0.copy()
        up[site] = expm_i_hermitian((t * q)[None])[0] @ u0[site]
        u[mu].from_numpy(up)
        s = mono.action(u)
        u[mu].from_numpy(u0)
        return s

    fd = (action_at(eps) - action_at(-eps)) / (2 * eps)
    pred = 2 * np.trace(q @ force[mu][site]).real
    assert fd == pytest.approx(pred, rel=tol, abs=1e-9)


@pytest.fixture()
def gauge(ctx, lat4, rng):
    return weak_gauge(lat4, rng, eps=0.4)


class TestGaugeForce:
    def test_finite_difference(self, ctx, lat4, gauge, rng):
        _fd_check(gauge, GaugeMonomial(beta=5.5), rng)

    def test_traceless_hermitian(self, ctx, lat4, gauge):
        f = wilson_gauge_force(gauge, 5.5)
        assert np.abs(np.einsum("mnii->mn", f)).max() < 1e-12
        assert np.allclose(f, np.conj(np.swapaxes(f, -1, -2)))

    def test_zero_on_unit_gauge(self, ctx, lat4):
        from repro.qcd.gauge import unit_gauge

        f = wilson_gauge_force(unit_gauge(lat4), 5.5)
        assert np.abs(f).max() < 1e-13

    def test_action_nonnegative(self, ctx, lat4, gauge):
        assert wilson_gauge_action(gauge, 5.5) > 0.0
        from repro.qcd.gauge import unit_gauge

        assert abs(wilson_gauge_action(unit_gauge(lat4), 5.5)) < 1e-9


class TestFermionForces:
    def test_two_flavor(self, ctx, lat4, gauge, rng):
        mono = TwoFlavorWilsonMonomial(WilsonParams(kappa=0.11), tol=1e-12)
        mono.refresh(gauge, rng)
        _fd_check(gauge, mono, rng)

    def test_two_flavor_anisotropic(self, ctx, lat4, gauge, rng):
        mono = TwoFlavorWilsonMonomial(
            WilsonParams(kappa=0.10, anisotropy=1.8), tol=1e-12)
        mono.refresh(gauge, rng)
        _fd_check(gauge, mono, rng, mu=3)

    def test_hasenbusch_ratio(self, ctx, lat4, gauge, rng):
        mono = HasenbuschRatioMonomial(WilsonParams(kappa=0.115),
                                       WilsonParams(kappa=0.10),
                                       tol=1e-12)
        mono.refresh(gauge, rng)
        _fd_check(gauge, mono, rng)

    def test_one_flavor_rational(self, ctx, lat4, gauge, rng):
        pf_a = inv_sqrt(0.05, 6.0, degree=12)
        pf_h = fourth_root(0.05, 6.0, degree=12)
        mono = OneFlavorRationalMonomial(WilsonParams(kappa=0.09),
                                         pf_a, pf_h, tol=1e-12)
        mono.refresh(gauge, rng)
        _fd_check(gauge, mono, rng)

    def test_heatbath_action_distribution(self, ctx, lat4, gauge, rng):
        """After phi = M+ eta, the action equals |eta|^2, so over
        refreshes <S> = 12 V (one unit per real dof pair)."""
        mono = TwoFlavorWilsonMonomial(WilsonParams(kappa=0.10), tol=1e-10)
        vals = []
        for _ in range(4):
            mono.refresh(gauge, rng)
            vals.append(mono.action(gauge))
        mean = np.mean(vals) / (12 * lat4.nsites)
        assert 0.8 < mean < 1.2

    def test_force_traceless_hermitian(self, ctx, lat4, gauge, rng):
        mono = TwoFlavorWilsonMonomial(WilsonParams(kappa=0.11), tol=1e-10)
        mono.refresh(gauge, rng)
        f = mono.force(gauge)
        assert np.abs(np.einsum("mnii->mn", f)).max() < 1e-10
        assert np.allclose(f, np.conj(np.swapaxes(f, -1, -2)), atol=1e-12)


class TestMDBuildingBlocks:
    def test_kinetic_energy_expectation(self, rng):
        p = gaussian_momenta(rng, 4, 2000)
        assert kinetic_energy(p) / (4 * 2000) == pytest.approx(4.0,
                                                               rel=0.05)

    def test_update_links_unitary(self, ctx, lat4, gauge, rng):
        p = gaussian_momenta(rng, 4, lat4.nsites)
        update_links(gauge, p, 0.1)
        for umu in gauge:
            assert su3.unitarity_defect(umu.to_numpy()) < 1e-12

    def test_update_links_reversible(self, ctx, lat4, gauge, rng):
        snap = [umu.to_numpy().copy() for umu in gauge]
        p = gaussian_momenta(rng, 4, lat4.nsites)
        update_links(gauge, p, 0.17)
        update_links(gauge, p, -0.17)
        for umu, s in zip(gauge, snap):
            assert np.abs(umu.to_numpy() - s).max() < 1e-12

    def test_hermitian_traceless_projection(self, rng):
        m = rng.normal(size=(10, 3, 3)) + 1j * rng.normal(size=(10, 3, 3))
        h = hermitian_traceless(m)
        assert np.allclose(h, np.conj(np.swapaxes(h, -1, -2)))
        assert np.abs(np.einsum("nii->n", h)).max() < 1e-13
        # projection is idempotent
        assert np.allclose(hermitian_traceless(h), h)

"""Tests for the MD integrators and the HMC driver.

Key physics checks: reversibility, dH scaling with step size, exact
acceptance in the free case, plaquette thermalization direction, and
<exp(-dH)> = 1 (Creutz identity) within noise.
"""

import numpy as np
import pytest

from repro.hmc import (
    HMC,
    GaugeMonomial,
    Level,
    MultiTimescaleIntegrator,
    TwoFlavorWilsonMonomial,
)
from repro.hmc.forces import gaussian_momenta, kinetic_energy
from repro.qcd.gauge import plaquette, weak_gauge
from repro.qcd.wilson import WilsonParams


def _gauge_integrator(n_steps, scheme="leapfrog"):
    return MultiTimescaleIntegrator(
        [Level([GaugeMonomial(beta=5.6)], n_steps=n_steps, scheme=scheme)])


def _total_h(u, p, monos):
    return kinetic_energy(p) + sum(m.action(u) for m in monos)


class TestIntegrators:
    def test_reversibility(self, ctx, lat_small, rng):
        u = weak_gauge(lat_small, rng, eps=0.3)
        snap = [x.to_numpy().copy() for x in u]
        p = gaussian_momenta(rng, 4, lat_small.nsites)
        p0 = p.copy()
        integ = _gauge_integrator(6)
        integ.run(u, p, 0.5)
        p *= -1
        integ.run(u, p, 0.5)
        for x, s in zip(u, snap):
            assert np.abs(x.to_numpy() - s).max() < 1e-10
        assert np.abs(-p - p0).max() < 1e-10

    @pytest.mark.parametrize("scheme", ["leapfrog", "omelyan"])
    def test_dh_scaling(self, ctx, lat_small, rng, scheme):
        """Both schemes are second order: dH ~ dt^2, so doubling the
        step count divides |dH| by ~4."""
        mono = GaugeMonomial(beta=5.6)
        dhs = {}
        for n in (4, 8):
            rng_local = np.random.default_rng(17)
            u = weak_gauge(lat_small, rng_local, eps=0.3)
            p = gaussian_momenta(rng_local, 4, lat_small.nsites)
            h0 = _total_h(u, p, [mono])
            MultiTimescaleIntegrator(
                [Level([mono], n_steps=n, scheme=scheme)]).run(u, p, 1.0)
            dhs[n] = abs(_total_h(u, p, [mono]) - h0)
        ratio = dhs[4] / dhs[8]
        assert 2.5 < ratio < 6.5

    def test_omelyan_beats_leapfrog(self, ctx, lat_small):
        """At equal force evaluations the 2MN scheme has a smaller
        energy violation (why production runs use it)."""
        mono = GaugeMonomial(beta=5.6)

        def run(scheme, n):
            rng_local = np.random.default_rng(23)
            u = weak_gauge(lat_small, rng_local, eps=0.3)
            p = gaussian_momenta(rng_local, 4, lat_small.nsites)
            h0 = _total_h(u, p, [mono])
            MultiTimescaleIntegrator(
                [Level([mono], n_steps=n, scheme=scheme)]).run(u, p, 1.0)
            return abs(_total_h(u, p, [mono]) - h0)

        # omelyan costs 3 kicks per step vs leapfrog ~1: compare at
        # equal kick budget (12 kicks each)
        assert run("omelyan", 4) < run("leapfrog", 12)

    def test_multi_timescale_structure(self, ctx, lat_small, rng):
        """Outer level force evaluated far less often than inner."""
        gauge_m = GaugeMonomial(beta=5.6)
        fermion_m = TwoFlavorWilsonMonomial(WilsonParams(kappa=0.05),
                                            tol=1e-8)
        u = weak_gauge(lat_small, rng, eps=0.2)
        fermion_m.refresh(u, rng)
        integ = MultiTimescaleIntegrator([
            Level([fermion_m], n_steps=2),
            Level([gauge_m], n_steps=5),
        ])
        p = gaussian_momenta(rng, 4, lat_small.nsites)
        integ.run(u, p, 0.2)
        calls = integ.stats.calls
        assert calls[1] > 3 * calls[0]

    def test_bad_level_config(self):
        with pytest.raises(ValueError):
            Level([], n_steps=0)
        with pytest.raises(ValueError):
            Level([], n_steps=2, scheme="rk4")
        with pytest.raises(ValueError):
            MultiTimescaleIntegrator([])


class TestHMCDriver:
    def test_pure_gauge_trajectory(self, ctx, lat_small, rng):
        u = weak_gauge(lat_small, rng, eps=0.3)
        hmc = HMC(u, _gauge_integrator(8, "omelyan"), rng)
        r = hmc.trajectory(tau=0.5)
        assert abs(r.delta_h) < 0.5
        assert 0.0 <= r.accept_probability <= 1.0
        assert r.kernels_launched > 0

    def test_rejection_restores_configuration(self, ctx, lat_small, rng):
        u = weak_gauge(lat_small, rng, eps=0.3)
        hmc = HMC(u, _gauge_integrator(1), rng)   # huge step: reject

        # force a rejection by monkeypatching the random draw
        class AlwaysReject(np.random.Generator):
            pass

        r = None
        for _ in range(20):
            snap = [x.to_numpy().copy() for x in u]
            r = hmc.trajectory(tau=1.0)
            if not r.accepted:
                break
        if not r.accepted:
            final = [x.to_numpy() for x in u]
            # configuration must equal the state before the rejected
            # trajectory (which is the previous accepted state)
            for got, want in zip(final, snap):
                assert np.array_equal(got, want)
            assert hmc.history[-1].accepted is False

    def test_creutz_identity(self, ctx, lat_small):
        """<exp(-dH)> = 1 over equilibrium trajectories."""
        rng = np.random.default_rng(5)
        u = weak_gauge(lat_small, rng, eps=0.3)
        hmc = HMC(u, _gauge_integrator(8, "omelyan"), rng)
        for _ in range(4):              # thermalize
            hmc.trajectory(tau=0.5)
        vals = []
        for _ in range(12):
            r = hmc.trajectory(tau=0.5)
            vals.append(np.exp(-r.delta_h))
        mean = float(np.mean(vals))
        err = float(np.std(vals) / np.sqrt(len(vals)))
        assert abs(mean - 1.0) < max(4 * err, 0.3)

    def test_plaquette_decreases_from_weak_start(self, ctx, lat_small):
        """At beta = 5.0 equilibrium plaquette is well below the
        near-unit weak start: HMC must drive it down."""
        rng = np.random.default_rng(11)
        u = weak_gauge(lat_small, rng, eps=0.05)
        p0 = plaquette(u)
        hmc = HMC(u, MultiTimescaleIntegrator(
            [Level([GaugeMonomial(beta=5.0)], n_steps=6,
                   scheme="omelyan")]), rng)
        for _ in range(6):
            hmc.trajectory(tau=1.0)
        assert plaquette(u) < p0 - 0.05

    def test_history_and_acceptance(self, ctx, lat_small, rng):
        u = weak_gauge(lat_small, rng, eps=0.3)
        hmc = HMC(u, _gauge_integrator(8, "omelyan"), rng)
        hmc.run(3, tau=0.3)
        assert len(hmc.history) == 3
        assert 0.0 <= hmc.acceptance_rate <= 1.0

    def test_links_stay_unitary(self, ctx, lat_small, rng):
        from repro.qcd.su3 import unitarity_defect

        u = weak_gauge(lat_small, rng, eps=0.3)
        hmc = HMC(u, _gauge_integrator(6), rng)
        hmc.run(4, tau=0.5)
        for x in u:
            assert unitarity_defect(x.to_numpy()) < 1e-10

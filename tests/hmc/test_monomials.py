"""Tests for the action monomials beyond force correctness."""

import numpy as np
import pytest

from repro.core.reduction import norm2
from repro.hmc import (
    HMC,
    GaugeMonomial,
    HasenbuschRatioMonomial,
    Level,
    MultiTimescaleIntegrator,
    OneFlavorRationalMonomial,
    TwoFlavorWilsonMonomial,
    fourth_root,
    inv_sqrt,
)
from repro.qcd.gauge import weak_gauge
from repro.qcd.wilson import WilsonOperator, WilsonParams
from repro.qdp.fields import latt_fermion


class TestRationalMonomial:
    def test_action_matches_eigendecomposition(self, ctx, lat_small, rng):
        """S = phi+ (M+M)^{-1/2} phi computed via the rational
        approximation must match the exact dense answer."""
        u = weak_gauge(lat_small, rng, eps=0.2)
        params = WilsonParams(kappa=0.08)
        pf_a = inv_sqrt(0.05, 4.0, degree=16)
        pf_h = fourth_root(0.05, 4.0, degree=16)
        mono = OneFlavorRationalMonomial(params, pf_a, pf_h, tol=1e-12)
        phi = latt_fermion(lat_small)
        phi.gaussian(rng)
        mono.phi = phi
        s = mono.action(u)
        # dense reference
        n = lat_small.nsites
        m = WilsonOperator(u, params)
        dim = n * 12
        a = np.zeros((dim, dim), dtype=complex)
        basis = latt_fermion(lat_small)
        out = latt_fermion(lat_small)
        for k in range(dim):
            e = np.zeros(dim, dtype=complex)
            e[k] = 1.0
            basis.from_numpy(e.reshape(n, 4, 3))
            m.apply_mdagm(out, basis)
            a[:, k] = out.to_numpy().reshape(-1)
        w, v = np.linalg.eigh(a)
        assert w.min() > pf_a.lo and w.max() < pf_a.hi, \
            "test spectral window misconfigured"
        pvec = phi.to_numpy().reshape(-1)
        coeff = v.conj().T @ pvec
        ref = float(np.sum(np.abs(coeff) ** 2 / np.sqrt(w)))
        assert s == pytest.approx(ref, rel=1e-6)

    def test_heatbath_consistency(self, ctx, lat_small, rng):
        """After phi = r4(A) eta, S ~ eta+ r4 r(A) r4 eta ~ |eta|^2."""
        u = weak_gauge(lat_small, rng, eps=0.2)
        params = WilsonParams(kappa=0.08)
        pf_a = inv_sqrt(0.05, 4.0, degree=16)
        pf_h = fourth_root(0.05, 4.0, degree=16)
        mono = OneFlavorRationalMonomial(params, pf_a, pf_h, tol=1e-12)
        vals = []
        for _ in range(3):
            mono.refresh(u, rng)
            vals.append(mono.action(u) / (12 * lat_small.nsites))
        assert 0.6 < np.mean(vals) < 1.4


class TestHasenbusch:
    def test_equal_masses_is_identity_ratio(self, ctx, lat_small, rng):
        """With M1 = M2 the ratio action is |phi|^2 exactly."""
        u = weak_gauge(lat_small, rng, eps=0.2)
        p = WilsonParams(kappa=0.09)
        mono = HasenbuschRatioMonomial(p, p, tol=1e-12)
        mono.refresh(u, rng)
        assert mono.action(u) == pytest.approx(norm2(mono.phi), rel=1e-8)

    def test_ratio_force_softer_than_direct(self, ctx, lat_small, rng):
        """The point of mass preconditioning: the ratio's force is
        smaller than the light quark's direct force."""
        u = weak_gauge(lat_small, rng, eps=0.2)
        light = WilsonParams(kappa=0.118)
        heavy = WilsonParams(kappa=0.10)
        direct = TwoFlavorWilsonMonomial(light, tol=1e-10)
        direct.refresh(u, rng)
        ratio = HasenbuschRatioMonomial(light, heavy, tol=1e-10)
        ratio.phi = direct.phi
        f_direct = np.abs(direct.force(u)).max()
        f_ratio = np.abs(ratio.force(u)).max()
        assert f_ratio < f_direct


class TestFullRHMC:
    def test_two_plus_one_trajectory(self, ctx, lat_small):
        """The paper's production composition in miniature: 2+1
        flavors = Hasenbusch ratio + heavy 2-flavor + rational strange
        on a multi-timescale integrator; dH must be small and the
        trajectory bookkeeping complete."""
        rng = np.random.default_rng(42)
        u = weak_gauge(lat_small, rng, eps=0.2)
        light = WilsonParams(kappa=0.115)
        heavy = WilsonParams(kappa=0.10)
        strange = WilsonParams(kappa=0.105)
        pf_a = inv_sqrt(0.05, 6.0, degree=12)
        pf_h = fourth_root(0.05, 6.0, degree=12)
        levels = [
            Level([HasenbuschRatioMonomial(light, heavy, tol=1e-10),
                   OneFlavorRationalMonomial(strange, pf_a, pf_h,
                                             tol=1e-10)], n_steps=2),
            Level([TwoFlavorWilsonMonomial(heavy, tol=1e-10)], n_steps=2),
            Level([GaugeMonomial(beta=5.6)], n_steps=4,
                  scheme="omelyan"),
        ]
        hmc = HMC(u, MultiTimescaleIntegrator(levels), rng)
        r = hmc.trajectory(tau=0.1)
        assert abs(r.delta_h) < 0.1
        assert r.solver_iterations > 0
        assert r.kernels_launched > 100
        assert r.force_calls  # per-level force accounting populated

"""Multi-tenant isolation under rank failure.

A tenant may bring its own virtual machine into a session
(:func:`repro.serve.vm_shift_workload`); a rank dying *inside* that
tenant's private machine is that tenant's problem alone — co-tenants'
results and deterministic stats must be bitwise unperturbed, and the
victim itself recovers to the bitwise fault-free answer.
"""

import numpy as np

from repro.faults import FaultPlan
from repro.serve import Server, cg_diag_workload, vm_shift_workload


def _pair(alice_faults=False, resilience=False):
    srv = Server(policy="fair")
    a = srv.tenant("alice", weight=2.0)
    b = srv.tenant("bob")
    sa = srv.submit(a, vm_shift_workload(
        global_dims=(4, 4, 4, 8), grid_dims=(1, 1, 1, 2), seed=31,
        sweeps=3, faults=alice_faults, resilience=resilience))
    sb = srv.submit(b, cg_diag_workload(dims=(2, 2, 2, 4), seed=22,
                                        max_iter=25))
    srv.drain()
    return srv, sa, sb


def _deterministic_stats(srv, name):
    j = srv.tenants[name].stats.as_json()
    j.pop("wall_s")          # measured host time, never deterministic
    return j


def test_vm_workload_runs_clean():
    _, sa, sb = _pair()
    assert sa.state == sb.state == "done"
    assert sa.result["resilience"] is None
    assert sa.result["norm2"] > 0


def test_rank_kill_in_one_tenant_leaves_cotenants_bitwise():
    srv0, ca, cb = _pair()
    plan = FaultPlan(seed=19).add("rank.kill", count=1,
                                  match="rank1:*")
    srv1, sa, sb = _pair(plan, resilience="recover")

    rz = sa.result["resilience"]
    assert rz["kills_injected"] == 1
    assert rz["recoveries_by_policy"] == {"buddy": 1}
    assert plan.all_recovered()
    # the victim recovers to the bitwise fault-free answer...
    assert np.array_equal(sa.result["f"], ca.result["f"])
    # ...and bob never notices: results and stats bitwise equal
    assert np.array_equal(sb.result["x"], cb.result["x"])
    assert _deterministic_stats(srv1, "bob") \
        == _deterministic_stats(srv0, "bob")


def test_private_machine_ignores_ambient_plans():
    """faults=False (the default) must not pick up a process-wide
    installed plan: a tenant opts into chaos explicitly."""
    from repro.faults import plan as plan_mod

    plan = FaultPlan(seed=19).add("rank.kill", count=1,
                                  match="rank1:*")
    plan_mod.install_plan(plan)
    try:
        _, sa, _ = _pair(alice_faults=False, resilience="recover")
        assert sa.result["resilience"]["kills_injected"] == 0
    finally:
        plan_mod.install_plan(None)

"""Scheduler policies, admission control and the REPRO_SERVE knob."""

import warnings

import numpy as np
import pytest

from repro import diagnostics
from repro.serve import (AdmissionRejected, FairShareScheduler,
                         FIFOScheduler, Server, Session, Tenant,
                         cg_diag_workload, make_scheduler)

DIMS = (2, 2, 2, 4)


def _dummy_session(tenant, name):
    return Session(tenant, workload=None, name=name)


# -- pure scheduler logic ----------------------------------------------


def test_fifo_serves_in_submission_order():
    sched = FIFOScheduler()
    a = Tenant("a", None)
    sessions = [_dummy_session(a, f"s{i}") for i in range(3)]
    for s in sessions:
        sched.add(s)
    order = []
    while sched.pending:
        s, budget = sched.next()
        assert budget == float("inf")
        order.append(s.name)
        sched.charge(s, 1.0)
        sched.remove(s)
    assert order == ["s0", "s1", "s2"]
    assert a.stats.service_s == 3.0


def test_drr_respects_weights():
    """Weight-2 tenant gets twice the service per round."""
    sched = FairShareScheduler(quantum_s=1.0)
    heavy = Tenant("heavy", None, weight=2.0)
    light = Tenant("light", None, weight=1.0)
    sh = _dummy_session(heavy, "h")
    sl = _dummy_session(light, "l")
    sched.add(sh)
    sched.add(sl)
    visits = []
    for _ in range(6):
        s, budget = sched.next()
        visits.append((s.tenant.name, budget))
        sched.charge(s, budget)   # use the whole grant
    # alternating rounds, heavy granted 2x the light grant
    assert visits == [("heavy", 2.0), ("light", 1.0)] * 3
    assert heavy.stats.service_s == 2.0 * light.stats.service_s


def test_drr_does_not_bank_idle_deficit():
    """A tenant that went idle re-enters with a clean deficit — it
    cannot burst past active tenants with banked credit."""
    sched = FairShareScheduler(quantum_s=1.0)
    a = Tenant("a", None, weight=5.0)
    b = Tenant("b", None, weight=1.0)
    sa = _dummy_session(a, "sa")
    sched.add(sa)
    s, budget = sched.next()
    sched.charge(s, 0.5)          # a leaves with deficit 4.5 banked
    sched.remove(sa)              # ...but retiring forfeits it
    sched.add(_dummy_session(b, "sb"))
    sched.add(_dummy_session(a, "sa2"))
    s, budget = sched.next()
    assert s.tenant.name == "b"   # b was first back in the round
    sched.charge(s, budget)
    s, budget = sched.next()
    assert s.tenant.name == "a"
    assert budget == 5.0          # one fresh quantum, nothing banked


def test_make_scheduler_mapping():
    assert isinstance(make_scheduler("fair"), FairShareScheduler)
    assert isinstance(make_scheduler("on"), FairShareScheduler)
    assert isinstance(make_scheduler("fifo"), FIFOScheduler)
    assert isinstance(make_scheduler("off"), FIFOScheduler)
    with pytest.raises(ValueError):
        make_scheduler("round-robin")
    with pytest.raises(ValueError):
        FairShareScheduler(quantum_s=0.0)


# -- admission control --------------------------------------------------


def test_admission_rejects_impossible_footprint():
    srv = Server(policy="fair", mem_budget=1000)
    t = srv.tenant("t")
    with pytest.raises(AdmissionRejected) as exc:
        srv.submit(t, cg_diag_workload(dims=DIMS), mem_bytes=2000)
    assert exc.value.tenant == "t"
    assert exc.value.requested == 2000
    assert exc.value.budget == 1000
    diag = exc.value.diagnostic
    assert diag.pass_name == "admission-control"
    assert srv.stats.admission_rejections == 1
    assert t.stats.sessions_rejected == 1


def test_admission_queues_until_memory_frees():
    """A session that does not fit *now* queues and runs later."""
    budget = 100_000
    srv = Server(policy="fifo", mem_budget=budget)
    t = srv.tenant("t")
    s1 = srv.submit(t, cg_diag_workload(dims=DIMS, seed=1, max_iter=10),
                    mem_bytes=70_000)
    s2 = srv.submit(t, cg_diag_workload(dims=DIMS, seed=2, max_iter=10),
                    mem_bytes=70_000)
    assert s2.state == "queued"
    assert srv.stats.admission_queued == 1
    srv.drain()
    assert s1.state == s2.state == "done"
    # the queued session only started after the first released memory
    assert s2.started_s >= s1.completed_s
    assert srv._reserved == 0


def test_runtime_spill_failure_is_isolated():
    """A tenant whose working set genuinely cannot fit fails alone:
    the co-tenant completes with the bitwise-correct answer."""
    # (4,4,4,4) fermions are 48 KiB each; a fused CG statement pins
    # three of them, which can never fit a 64 KiB pool.  The small
    # (2,2,2,4) solve (6 KiB fields) fits comfortably.
    srv = Server(policy="fair", pool_capacity=64 * 1024)
    small = srv.tenant("small")
    big = srv.tenant("big")
    s_small = srv.submit(small, cg_diag_workload(dims=DIMS, seed=5,
                                                 max_iter=20))
    s_big = srv.submit(big, cg_diag_workload(dims=(4, 4, 4, 4), seed=6,
                                             max_iter=20))
    srv.drain()

    assert s_big.state == "rejected"
    assert "memory admission failure" in s_big.error
    assert big.stats.sessions_rejected == 1
    assert srv.stats.admission_rejections == 1
    assert s_small.state == "done"

    solo = Server(policy="fair", pool_capacity=64 * 1024)
    t = solo.tenant("solo")
    s_solo = solo.submit(t, cg_diag_workload(dims=DIMS, seed=5,
                                             max_iter=20))
    solo.drain()
    assert np.array_equal(s_small.result["x"], s_solo.result["x"])
    assert s_small.result["residual"] == s_solo.result["residual"]

    # the failed tenant's pending fused statements were discarded:
    # nothing left to poison a later session on the same tenant
    assert not big.ctx.fusion.groups
    s_retry = srv.submit(small, cg_diag_workload(dims=DIMS, seed=5,
                                                 max_iter=20))
    srv.drain()
    assert s_retry.state == "done"
    assert np.array_equal(s_retry.result["x"], s_solo.result["x"])


def test_arrivals_respect_the_virtual_clock():
    """A session with a future arrival waits; the server idles
    forward when nothing else is runnable."""
    srv = Server(policy="fair")
    t = srv.tenant("t")
    s1 = srv.submit(t, cg_diag_workload(dims=DIMS, seed=1, max_iter=5))
    s2 = srv.submit(t, cg_diag_workload(dims=DIMS, seed=2, max_iter=5),
                    arrival_s=1.0)
    srv.drain()
    assert s1.state == s2.state == "done"
    assert s2.started_s >= 1.0
    assert srv.stats.idle_s > 0.0
    assert s2.latency_s < s2.completed_s  # measured from arrival


# -- the REPRO_SERVE knob ----------------------------------------------


def test_serve_mode_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_SERVE", raising=False)
    assert diagnostics.serve_mode() == "on"
    for value in ("fair", "fifo", "off", "on"):
        monkeypatch.setenv("REPRO_SERVE", value)
        assert diagnostics.serve_mode() == value
    monkeypatch.setenv("REPRO_SERVE", " FIFO ")
    assert diagnostics.serve_mode() == "fifo"


def test_serve_mode_bad_value_warns_once(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE", "fare")
    diagnostics._warned_serve_values.discard("fare")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert diagnostics.serve_mode() == "on"
        assert diagnostics.serve_mode() == "on"
    relevant = [w for w in caught if "REPRO_SERVE" in str(w.message)]
    assert len(relevant) == 1


def test_server_resolves_policy_from_knob(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE", "fifo")
    assert Server().policy == "fifo"
    monkeypatch.setenv("REPRO_SERVE", "on")
    assert Server().policy == "fair"   # on is an alias
    monkeypatch.delenv("REPRO_SERVE", raising=False)
    assert Server().policy == "fair"
    assert Server(policy="off").admission_enabled is False
    with pytest.raises(ValueError):
        Server(policy="least-laxity")

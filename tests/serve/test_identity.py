"""The serving layer's bitwise-identity contract.

A single-tenant session must be indistinguishable from the same
workload on a bare context: identical results, identical reduction
scalars, identical modeled device clock, and an identical span trace
modulo the ``tenant`` tag the server stamps on each span.  The
scheduler decides *when* chunks run, never *what* they compute — and
with one tenant there is nothing to interleave with.
"""

import itertools

import numpy as np
import pytest

from repro.core.context import Context
from repro.qdp import fields as fields_mod
from repro.serve import Server, cg_diag_workload, shift_sweep_workload

DIMS = (2, 2, 2, 4)


def _pin_uids():
    """Reset the global field-uid counter so span names (which embed
    field uids) line up across two runs in one process."""
    fields_mod._uid_counter = itertools.count(1)


def _run_bare(workload):
    _pin_uids()
    ctx = Context()
    gen = workload(ctx)
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return ctx, stop.value


def _run_served(workload, policy):
    _pin_uids()
    srv = Server(policy=policy)
    tenant = srv.tenant("solo")
    session = srv.submit(tenant, workload)
    srv.drain()
    assert session.state == "done"
    return srv, session.result


def _trace_signature(timeline, drop_tenant):
    sig = []
    for sp in timeline.spans:
        args = {k: v for k, v in (sp.args or {}).items()
                if not (drop_tenant and k == "tenant")}
        sig.append((sp.lane, sp.name, sp.t0, sp.t1, tuple(sp.deps),
                    tuple(sorted(args.items()))))
    return sig


@pytest.mark.parametrize("policy", ["fair", "fifo", "off"])
def test_single_tenant_bitwise_identity_cg(policy):
    workload = cg_diag_workload(dims=DIMS, seed=7, max_iter=30)
    bare_ctx, bare = _run_bare(workload)
    srv, served = _run_served(workload, policy)

    assert np.array_equal(served["x"], bare["x"])
    assert served["iterations"] == bare["iterations"]
    assert served["residual"] == bare["residual"]
    assert srv.device.clock == bare_ctx.device.clock
    assert (_trace_signature(srv.device.runtime.timeline, True)
            == _trace_signature(bare_ctx.device.runtime.timeline, False))


def test_single_tenant_bitwise_identity_sweep():
    workload = shift_sweep_workload(dims=DIMS, seed=11, sweeps=4)
    bare_ctx, bare = _run_bare(workload)
    srv, served = _run_served(workload, "fair")
    assert np.array_equal(served["f"], bare["f"])
    assert served["norm2"] == bare["norm2"]
    assert srv.device.clock == bare_ctx.device.clock


def test_every_span_carries_the_tenant_tag():
    workload = cg_diag_workload(dims=DIMS, seed=7, max_iter=10)
    srv, _ = _run_served(workload, "fair")
    spans = srv.device.runtime.timeline.spans
    assert spans
    assert all(sp.args.get("tenant") == "solo" for sp in spans)


def test_off_policy_runs_sessions_back_to_back():
    """``off``: submission order, no interleaving, no admission."""
    srv = Server(policy="off")
    a = srv.tenant("a", weight=1.0)
    b = srv.tenant("b", weight=100.0)   # weight must not matter
    s1 = srv.submit(a, cg_diag_workload(dims=DIMS, seed=1, max_iter=10),
                    mem_bytes=10**12)   # admission disabled: ignored
    s2 = srv.submit(b, cg_diag_workload(dims=DIMS, seed=2, max_iter=10))
    srv.drain()
    assert s1.state == s2.state == "done"
    # back-to-back: one scheduling decision per session
    assert srv.stats.decisions == 2
    assert s1.completed_s <= s2.started_s
    assert srv.stats.admission_queued == 0


def test_results_identical_across_policies():
    """Interleaving never changes what a session computes."""
    results = {}
    for policy in ("fair", "fifo"):
        _pin_uids()
        srv = Server(policy=policy)
        a = srv.tenant("a", weight=3.0)
        b = srv.tenant("b")
        sessions = [
            srv.submit(a, cg_diag_workload(dims=DIMS, seed=1, max_iter=25)),
            srv.submit(b, cg_diag_workload(dims=DIMS, seed=2, max_iter=25)),
            srv.submit(b, shift_sweep_workload(dims=DIMS, seed=3, sweeps=3)),
        ]
        srv.drain()
        results[policy] = [s.result for s in sessions]
    for fair_res, fifo_res in zip(results["fair"], results["fifo"]):
        for key, val in fair_res.items():
            if isinstance(val, np.ndarray):
                assert np.array_equal(val, fifo_res[key])
            else:
                assert val == fifo_res[key]

"""Cross-tenant JIT-cache sharing and strict stats/trace isolation."""

import numpy as np

from repro.serve import Server, Tenant, cg_diag_workload, shift_sweep_workload

DIMS = (2, 2, 2, 4)


def test_cross_tenant_jit_cache_sharing():
    """The second tenant running the same workload shape compiles
    nothing: every kernel hits the shared cache, and the hits are
    counted as cross-tenant (compiled by someone else)."""
    srv = Server(policy="fifo")
    a = srv.tenant("alice")
    b = srv.tenant("bob")
    # FIFO: alice's whole session runs before bob's starts, so every
    # kernel bob needs was compiled (and is owned) by alice
    srv.submit(a, cg_diag_workload(dims=DIMS, seed=1, max_iter=15))
    srv.submit(b, cg_diag_workload(dims=DIMS, seed=2, max_iter=15))
    srv.drain()

    assert a.stats.jit_misses > 0
    assert b.stats.jit_misses == 0
    assert b.stats.jit_hits > 0
    assert b.stats.jit_shared_hits == b.stats.jit_hits
    assert a.stats.jit_shared_hits == 0
    assert srv.kernel_cache.cross_tenant_hits >= b.stats.jit_shared_hits
    # the global cache saw exactly the per-tenant splits
    assert (srv.kernel_cache.misses_by_tenant.get("alice", 0)
            == a.stats.jit_misses)
    assert (srv.kernel_cache.hits_by_tenant.get("bob", 0)
            == b.stats.jit_hits)


def test_distinct_workload_shapes_do_not_share():
    """Structurally different kernels stay distinct cache entries."""
    srv = Server(policy="fifo")
    a = srv.tenant("alice")
    b = srv.tenant("bob")
    srv.submit(a, cg_diag_workload(dims=DIMS, seed=1, max_iter=10))
    srv.submit(b, shift_sweep_workload(dims=DIMS, seed=2, sweeps=3))
    srv.drain()
    # the sweep's stencil kernel cannot come from the CG session
    assert b.stats.jit_misses > 0


def test_stats_isolation():
    """Per-tenant counters never bleed: each tenant's ctx.stats and
    TenantStats describe only its own work."""
    srv = Server(policy="fair")
    a = srv.tenant("alice", weight=2.0)
    b = srv.tenant("bob")
    sa = srv.submit(a, cg_diag_workload(dims=DIMS, seed=1, max_iter=15))
    sb = srv.submit(b, shift_sweep_workload(dims=DIMS, seed=2, sweeps=4))
    srv.drain()
    assert sa.state == sb.state == "done"

    # private context state: each tenant evaluated its own expressions
    assert a.ctx.stats.expressions_evaluated > 0
    assert b.ctx.stats.expressions_evaluated > 0
    assert a.ctx.stats is not b.ctx.stats
    assert a.ctx.module_cache is not b.ctx.module_cache

    # attributed device time: both got some, and the split sums to
    # (at most) the device total — attribution never double-counts
    assert a.stats.modeled_s > 0.0
    assert b.stats.modeled_s > 0.0
    assert (a.stats.modeled_s + b.stats.modeled_s
            <= srv.device.clock + 1e-12)
    assert a.stats.launches > 0 and b.stats.launches > 0

    # field-cache events are attributed per tenant
    assert a.stats.cache_events.get("miss", 0) > 0
    assert b.stats.cache_events.get("miss", 0) > 0

    # session accounting
    assert a.stats.sessions_completed == 1
    assert b.stats.sessions_completed == 1
    assert a.stats.service_s > 0.0 and b.stats.service_s > 0.0


def test_trace_isolation():
    """Tenant-filtered timeline views partition the shared trace."""
    srv = Server(policy="fair")
    a = srv.tenant("alice")
    b = srv.tenant("bob")
    srv.submit(a, cg_diag_workload(dims=DIMS, seed=1, max_iter=10))
    srv.submit(b, cg_diag_workload(dims=DIMS, seed=2, max_iter=10))
    srv.drain()

    all_spans = srv.device.runtime.timeline.spans
    a_spans = a.timeline().spans
    b_spans = b.timeline().spans
    assert a_spans and b_spans
    assert len(a_spans) + len(b_spans) == len(all_spans)
    assert all(sp.args.get("tenant") == "alice" for sp in a_spans)
    assert all(sp.args.get("tenant") == "bob" for sp in b_spans)
    # fair-share actually interleaved the two tenants on the device
    tags = [sp.args.get("tenant") for sp in all_spans]
    switches = sum(1 for x, y in zip(tags, tags[1:]) if x != y)
    assert switches >= 2


def test_results_unaffected_by_neighbors():
    """A tenant's answer is bitwise the answer it gets running alone."""
    solo = Server(policy="fair")
    t = solo.tenant("solo")
    s_solo = solo.submit(t, cg_diag_workload(dims=DIMS, seed=5,
                                             max_iter=20))
    solo.drain()

    busy = Server(policy="fair")
    x = busy.tenant("x")
    noisy = busy.tenant("noisy", weight=4.0)
    s_busy = busy.submit(x, cg_diag_workload(dims=DIMS, seed=5,
                                             max_iter=20))
    for seed in (31, 32):
        busy.submit(noisy, shift_sweep_workload(dims=DIMS, seed=seed,
                                                sweeps=3))
    busy.drain()

    assert np.array_equal(s_solo.result["x"], s_busy.result["x"])
    assert s_solo.result["residual"] == s_busy.result["residual"]


def test_tenant_registration_rules():
    srv = Server(policy="fair")
    srv.tenant("alice")
    try:
        srv.tenant("alice")
    except ValueError:
        pass
    else:
        raise AssertionError("duplicate tenant name must be rejected")
    try:
        Tenant("bad", None, weight=0.0)
    except ValueError:
        pass
    else:
        raise AssertionError("non-positive weight must be rejected")

"""Tests for the Wilson-clover operator (the production action) and
the framework-native mixed-precision solver."""

import numpy as np
import pytest

from repro.core.reduction import innerProduct, norm2
from repro.qcd.cloverop import CloverOperator, CloverParams, EvenOddCloverOperator
from repro.qcd.gauge import unit_gauge, weak_gauge
from repro.qcd.mixedsolver import mixed_precision_cg
from repro.qcd.solver import cg
from repro.qcd.wilson import WilsonOperator, WilsonParams
from repro.qdp.fields import latt_fermion


@pytest.fixture()
def setup(ctx, lat4, rng):
    u = weak_gauge(lat4, rng, eps=0.25)
    params = CloverParams(kappa=0.11, clover_coeff=0.3)
    psi = latt_fermion(lat4)
    psi.gaussian(rng)
    return u, params, psi


class TestCloverOperator:
    def test_reduces_to_wilson_at_zero_coeff(self, ctx, lat4, setup):
        u, _, psi = setup
        clov = CloverOperator(u, CloverParams(kappa=0.11,
                                              clover_coeff=0.0))
        wil = WilsonOperator(u, WilsonParams(kappa=0.11))
        a, b = clov.new_fermion(), wil.new_fermion()
        clov.apply(a, psi)
        wil.apply(b, psi)
        assert np.allclose(a.to_numpy(), b.to_numpy(), rtol=1e-12)

    def test_matches_components(self, ctx, lat4, setup):
        """M psi = A psi - kappa D psi assembled independently."""
        u, params, psi = setup
        m = CloverOperator(u, params)
        out = m.new_fermion()
        m.apply(out, psi)
        a_psi = m.new_fermion()
        m.clover.apply(a_psi, psi)
        from repro.qcd.dslash import WilsonDslash

        d_psi = m.new_fermion()
        WilsonDslash(u)(d_psi, psi)
        ref = a_psi.to_numpy() - params.kappa * d_psi.to_numpy()
        assert np.allclose(out.to_numpy(), ref, rtol=1e-12)

    def test_gamma5_hermiticity(self, ctx, lat4, setup, rng):
        u, params, psi = setup
        m = CloverOperator(u, params)
        chi = latt_fermion(lat4)
        chi.gaussian(rng)
        mpsi, mdchi = m.new_fermion(), m.new_fermion()
        m.apply(mpsi, psi)
        m.apply_dagger(mdchi, chi)
        assert innerProduct(mpsi, chi) == pytest.approx(
            innerProduct(psi, mdchi), rel=1e-11)

    def test_anisotropic(self, ctx, lat4, setup, rng):
        u, _, psi = setup
        params = CloverParams(kappa=0.10, clover_coeff=0.3,
                              anisotropy=2.0)
        m = CloverOperator(u, params)
        chi = latt_fermion(lat4)
        chi.gaussian(rng)
        mpsi, mdchi = m.new_fermion(), m.new_fermion()
        m.apply(mpsi, psi)
        m.apply_dagger(mdchi, chi)
        assert innerProduct(mpsi, chi) == pytest.approx(
            innerProduct(psi, mdchi), rel=1e-11)


class TestEvenOddClover:
    def test_schur_equivalence(self, ctx, lat4, setup, rng):
        u, params, _ = setup
        m_full = CloverOperator(u, params)
        m_eo = EvenOddCloverOperator(u, params)
        chi = latt_fermion(lat4)
        chi.gaussian(rng)
        b = m_eo.prepare_source(chi)
        rhs = m_eo.new_fermion()
        m_eo.apply_dagger(rhs, b)
        x = m_eo.new_fermion()
        res = cg(lambda d, s: m_eo.apply_mdagm(d, s), x, rhs,
                 tol=1e-11, max_iter=800, subset=lat4.even)
        assert res.converged
        psi = m_eo.reconstruct(x, chi)
        check = m_full.new_fermion()
        m_full.apply(check, psi)
        err = (norm2(check - chi) / norm2(chi)) ** 0.5
        assert err < 1e-8

    def test_gamma5_hermiticity(self, ctx, lat4, setup, rng):
        u, params, psi = setup
        m = EvenOddCloverOperator(u, params)
        chi = latt_fermion(lat4)
        chi.gaussian(rng)
        a, b = m.new_fermion(), m.new_fermion()
        m.apply(a, psi)
        m.apply_dagger(b, chi)
        assert innerProduct(a, chi, subset=lat4.even) == pytest.approx(
            innerProduct(psi, b, subset=lat4.even), rel=1e-11)

    def test_unit_gauge_zero_coeff_is_schur_identity(self, ctx, lat4,
                                                     rng):
        """On U=1 with c=0, A=1 and M_hat = 1 - kappa^2 D_eo D_oe."""
        u = unit_gauge(lat4)
        params = CloverParams(kappa=0.1, clover_coeff=0.0)
        m = EvenOddCloverOperator(u, params)
        from repro.qcd.wilson import EvenOddWilsonOperator

        w = EvenOddWilsonOperator(u, WilsonParams(kappa=0.1))
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        a, b = m.new_fermion(), w.new_fermion()
        m.apply(a, psi)
        w.apply(b, psi)
        assert np.allclose(a.to_numpy(), b.to_numpy(), rtol=1e-12)


class TestMixedPrecisionSolver:
    def test_reaches_double_precision(self, ctx, lat4, setup):
        """The headline: f32 iterations, f64 answer."""
        u, params, _ = setup
        m64 = CloverOperator(u, params, precision="f64")
        u32 = [f.astype("f32") for f in u]
        from repro.qdp.fields import multi1d

        m32 = CloverOperator(multi1d(u32), params, precision="f32")
        rng = np.random.default_rng(8)
        b = latt_fermion(lat4)
        b.gaussian(rng)
        x = latt_fermion(lat4)
        res = mixed_precision_cg(
            lambda d, s: m64.apply_mdagm(d, s),
            lambda d, s: m32.apply_mdagm(d, s),
            x, b, tol=1e-10, inner_tol=1e-5)
        assert res.converged
        assert res.residual_norm < 1e-10
        assert res.outer_iterations >= 2     # needed >1 f32 cycle
        # verify in full precision
        tmp = m64.new_fermion()
        m64.apply_mdagm(tmp, x)
        assert (norm2(b - tmp) / norm2(b)) ** 0.5 < 1e-9

    def test_beyond_f32_roundoff(self, ctx, lat4, setup):
        """1e-10 is unreachable in pure f32 — the outer correction is
        what gets us there."""
        assert 1e-10 < np.finfo(np.float32).eps

    def test_zero_rhs(self, ctx, lat4, setup):
        u, params, _ = setup
        m64 = CloverOperator(u, params)
        b = latt_fermion(lat4)
        x = latt_fermion(lat4)
        res = mixed_precision_cg(lambda d, s: m64.apply_mdagm(d, s),
                                 lambda d, s: None, x, b)
        assert res.converged and res.inner_iterations == 0

"""Tests for the packed clover term (paper Sec. VI-A)."""

import numpy as np
import pytest

from repro.core.reduction import innerProduct
from repro.qcd.clover import CloverTerm
from repro.qcd.gauge import unit_gauge, weak_gauge
from repro.qdp.fields import latt_fermion


@pytest.fixture()
def clover(ctx, lat4, rng):
    u = weak_gauge(lat4, rng, eps=0.4)
    return CloverTerm(u, coeff=0.8)


class TestConstruction:
    def test_blocks_hermitian(self, clover):
        b = clover.blocks
        assert np.allclose(b, np.conj(np.swapaxes(b, -1, -2)), atol=1e-12)

    def test_unit_gauge_is_identity(self, ctx, lat4):
        a = CloverTerm(unit_gauge(lat4), coeff=0.8)
        assert np.allclose(a.blocks, np.eye(6), atol=1e-13)

    def test_packing_roundtrip(self, clover, lat4):
        """diag/tri packed fields must encode exactly the dense blocks."""
        from repro.qdp.typesys import tri_index

        d = clover.diag.to_numpy()     # (n, 2, 6) real
        t = clover.tri.to_numpy()      # (n, 2, 15) complex
        b = clover.blocks
        for blk in range(2):
            assert np.allclose(d[:, blk],
                               np.einsum("nii->ni", b[:, blk]).real)
            for i in range(6):
                for j in range(i):
                    assert np.allclose(t[:, blk, tri_index(i, j)],
                                       b[:, blk, i, j])


class TestApply:
    def test_matches_dense(self, ctx, lat4, clover, rng):
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        chi = latt_fermion(lat4)
        clover.apply(chi, psi)
        ref = clover.dense_apply_numpy(psi.to_numpy())
        assert np.allclose(chi.to_numpy(), ref, rtol=1e-12, atol=1e-13)

    def test_hermitian(self, ctx, lat4, clover, rng):
        a = latt_fermion(lat4)
        b = latt_fermion(lat4)
        a.gaussian(rng)
        b.gaussian(rng)
        aa, ab = latt_fermion(lat4), latt_fermion(lat4)
        clover.apply(aa, a)
        clover.apply(ab, b)
        assert innerProduct(aa, b) == pytest.approx(innerProduct(a, ab),
                                                    rel=1e-11)

    def test_subset_apply(self, ctx, lat4, clover, rng):
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        chi = latt_fermion(lat4)
        clover.apply(chi, psi, subset=lat4.odd)
        ref = clover.dense_apply_numpy(psi.to_numpy())
        out = chi.to_numpy()
        assert np.allclose(out[lat4.odd.sites], ref[lat4.odd.sites],
                           rtol=1e-12)
        assert np.all(out[lat4.even.sites] == 0)

    def test_inverse_roundtrip(self, ctx, lat4, clover, rng):
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        chi = latt_fermion(lat4)
        back = latt_fermion(lat4)
        clover.apply(chi, psi)
        clover.apply_inverse(back, chi)
        assert np.allclose(back.to_numpy(), psi.to_numpy(), atol=1e-9)

    def test_tr_log_consistency(self, ctx, lat4, rng):
        # a mild coefficient keeps A positive definite
        mild = CloverTerm(weak_gauge(lat4, rng, eps=0.2), coeff=0.2)
        full = mild.tr_log()
        even = mild.tr_log(subset=lat4.even)
        odd = mild.tr_log(subset=lat4.odd)
        assert full == pytest.approx(even + odd, rel=1e-12)

    def test_tr_log_rejects_indefinite(self, ctx, lat4, rng):
        strong = CloverTerm(weak_gauge(lat4, rng, eps=0.4), coeff=0.8)
        with pytest.raises(RuntimeError, match="determinant"):
            strong.tr_log()

    def test_arithmetic_intensity(self, ctx, lat4, clover, rng):
        """Paper Table II: the clover apply runs at 0.525 flop/byte."""
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        chi = latt_fermion(lat4)
        cost = chi.assign(clover.apply_expr(psi))
        assert cost.flops == 504 * lat4.nsites
        assert cost.bytes_moved == 960 * lat4.nsites


class TestExtensionMechanism:
    """The clover term is the reference user of CustomOpNode — the
    paper's user-defined-operation support for mixing spin and color spaces."""

    def test_composes_with_expressions(self, ctx, lat4, clover, rng):
        psi = latt_fermion(lat4)
        phi = latt_fermion(lat4)
        psi.gaussian(rng)
        phi.gaussian(rng)
        out = latt_fermion(lat4)
        out.assign(clover.apply_expr(psi) - 2.0 * phi)
        ref = (clover.dense_apply_numpy(psi.to_numpy())
               - 2.0 * phi.to_numpy())
        assert np.allclose(out.to_numpy(), ref, rtol=1e-12)

    def test_kernel_cached_across_applications(self, ctx, lat4, clover,
                                               rng):
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        chi = latt_fermion(lat4)
        clover.apply(chi, psi)
        ctx.flush()
        n0 = ctx.kernel_cache.stats.n_kernels
        clover.apply(chi, psi)
        clover.apply(chi, psi)
        ctx.flush()
        assert ctx.kernel_cache.stats.n_kernels == n0

"""Tests for gauge observables: plaquette, staples, field strength."""

import numpy as np
import pytest

from repro.qcd import su3
from repro.qcd.gauge import (
    field_strength_numpy,
    gauge_transform,
    plaquette,
    random_gauge,
    staple,
    unit_gauge,
    weak_gauge,
)
from repro.qdp.fields import latt_color_matrix


class TestPlaquette:
    def test_unit_gauge_is_one(self, ctx, lat4):
        assert plaquette(unit_gauge(lat4)) == pytest.approx(1.0, abs=1e-13)

    def test_random_gauge_near_zero(self, ctx, rng):
        from repro.qdp.lattice import Lattice

        lat = Lattice((6, 6, 6, 6))
        p = plaquette(random_gauge(lat, rng))
        assert abs(p) < 0.1

    def test_weak_gauge_near_one(self, ctx, lat4, rng):
        p = plaquette(weak_gauge(lat4, rng, eps=0.05))
        assert 0.98 < p < 1.0

    def test_gauge_invariance(self, ctx, lat4, rng):
        """The fundamental check: the plaquette must not move under
        U -> g U g+ with random g(x)."""
        u = weak_gauge(lat4, rng, eps=0.4)
        g = latt_color_matrix(lat4)
        g.from_numpy(su3.random_su3(rng, lat4.nsites))
        assert plaquette(gauge_transform(u, g)) == pytest.approx(
            plaquette(u), abs=1e-12)

    def test_matches_numpy(self, ctx, lat4, rng):
        u = weak_gauge(lat4, rng, eps=0.3)
        un = [f.to_numpy() for f in u]
        tot, n = 0.0, 0
        for mu in range(4):
            for nu in range(mu + 1, 4):
                tf, tg = lat4.shift_map(mu, +1), lat4.shift_map(nu, +1)
                p = np.einsum("nab,nbc,ndc,ned->nae", un[mu],
                              un[nu][tf], un[mu][tg].conj(),
                              un[nu].conj())
                tot += np.einsum("naa->", p).real
                n += 1
        ref = tot / (3 * n * lat4.nsites)
        assert plaquette(u) == pytest.approx(ref, rel=1e-12)


class TestStaple:
    def test_unit_gauge_staple(self, ctx, lat4):
        """On U = 1 every staple is the identity: sum = 2(Nd-1)."""
        u = unit_gauge(lat4)
        s = staple(u, 0).to_numpy()
        assert np.allclose(s, 6.0 * np.eye(3))

    def test_action_derivative_consistency(self, ctx, lat4, rng):
        """Re tr(U_mu V_mu) summed over one link direction counts each
        plaquette touching that direction twice (upper + lower)."""
        u = weak_gauge(lat4, rng, eps=0.3)
        total = 0.0
        for mu in range(4):
            w = np.einsum("nab,nbc->nac", u[mu].to_numpy(),
                          staple(u, mu).to_numpy())
            total += np.einsum("naa->", w).real
        from repro.qcd.gauge import plaquette_site_sum

        plaq_sum = sum(plaquette_site_sum(u, mu, nu)
                       for mu in range(4) for nu in range(mu + 1, 4))
        assert total == pytest.approx(4 * plaq_sum, rel=1e-10)


class TestFieldStrength:
    def test_antisymmetric(self, ctx, lat4, rng):
        u = weak_gauge(lat4, rng, eps=0.3)
        f01 = field_strength_numpy(u, 0, 1)
        f10 = field_strength_numpy(u, 1, 0)
        assert np.allclose(f01, -f10, atol=1e-12)

    def test_hermitian_traceless(self, ctx, lat4, rng):
        u = weak_gauge(lat4, rng, eps=0.3)
        f = field_strength_numpy(u, 1, 2)
        assert np.allclose(f, np.conj(np.swapaxes(f, -1, -2)), atol=1e-12)
        assert np.abs(np.einsum("nii->n", f)).max() < 1e-12

    def test_vanishes_on_unit_gauge(self, ctx, lat4):
        u = unit_gauge(lat4)
        assert np.abs(field_strength_numpy(u, 0, 3)).max() < 1e-14

    def test_continuum_limit_scaling(self, ctx, lat4, rng):
        """For U = exp(i eps H), F scales linearly in eps as eps->0."""
        f_eps = {}
        for eps in (0.02, 0.01):
            rng_local = np.random.default_rng(99)
            u = weak_gauge(lat4, rng_local, eps=eps)
            f_eps[eps] = np.abs(field_strength_numpy(u, 0, 1)).mean()
        ratio = f_eps[0.02] / f_eps[0.01]
        assert 1.7 < ratio < 2.3

"""Tests for the Wilson Dslash and the Wilson fermion matrix."""

import numpy as np
import pytest

from repro.core.reduction import innerProduct, norm2
from repro.qcd.dslash import WilsonDslash
from repro.qcd.gamma import GAMMA, projector
from repro.qcd.gauge import unit_gauge, weak_gauge
from repro.qcd.wilson import EvenOddWilsonOperator, WilsonOperator, WilsonParams
from repro.qdp.fields import latt_fermion


@pytest.fixture()
def setup(ctx, lat4, rng):
    u = weak_gauge(lat4, rng, eps=0.3)
    psi = latt_fermion(lat4)
    psi.gaussian(rng)
    return u, psi


def _dslash_numpy(lat, u, psi):
    un = [f.to_numpy() for f in u]
    pn = psi.to_numpy()
    out = np.zeros_like(pn)
    for mu in range(4):
        tf, tb = lat.shift_map(mu, +1), lat.shift_map(mu, -1)
        pm, pp = projector(mu, +1), projector(mu, -1)
        out += np.einsum("st,nab,ntb->nsa", pm, un[mu], pn[tf])
        hop = np.einsum("st,nba,ntb->nsa", pp, un[mu].conj(), pn)
        out += hop[tb]
    return out


class TestDslash:
    def test_matches_reference(self, ctx, lat4, setup):
        u, psi = setup
        dest = latt_fermion(lat4)
        WilsonDslash(u)(dest, psi)
        assert np.allclose(dest.to_numpy(), _dslash_numpy(lat4, u, psi),
                           rtol=1e-12, atol=1e-13)

    def test_free_field_momentum_space(self, ctx, lat4, rng):
        """On U=1, D acting on a plane wave is diagonal in momentum:
        D psi_p = sum_mu 2(cos p_mu - i gamma_mu sin p_mu) psi_p."""
        u = unit_gauge(lat4)
        p = 2 * np.pi * np.array([1, 0, 2, 1]) / 4
        phase = np.exp(1j * lat4.coords @ p)
        spinor = np.zeros((lat4.nsites, 4, 3), dtype=complex)
        w = np.array([1.0, 0.5j, -0.25, 2.0])
        spinor[:, :, 0] = phase[:, None] * w
        psi = latt_fermion(lat4)
        psi.from_numpy(spinor)
        dest = latt_fermion(lat4)
        WilsonDslash(u)(dest, psi)
        mat = sum(2 * (np.cos(p[mu]) * np.eye(4)
                       - 1j * np.sin(p[mu]) * GAMMA[mu])
                  for mu in range(4))
        ref = np.einsum("st,ntc->nsc", mat, spinor)
        assert np.allclose(dest.to_numpy(), ref, atol=1e-10)

    def test_gamma5_hermiticity(self, ctx, lat4, setup, rng):
        """gamma5 D gamma5 = D-dagger."""
        u, psi = setup
        chi = latt_fermion(lat4)
        chi.gaussian(rng)
        d = WilsonDslash(u)
        dpsi = latt_fermion(lat4)
        d(dpsi, psi)
        ddag_chi = latt_fermion(lat4)
        d(ddag_chi, chi, sign=-1)
        lhs = innerProduct(chi, dpsi)
        rhs = innerProduct(ddag_chi, psi)
        assert lhs == pytest.approx(rhs, rel=1e-11)

    def test_parity_structure(self, ctx, lat4, setup):
        """D maps even sites to odd and vice versa (hopping only)."""
        u, psi = setup
        even_only = latt_fermion(lat4)
        even_only.assign(psi.ref(), subset=lat4.even)
        dest = latt_fermion(lat4)
        WilsonDslash(u)(dest, even_only)
        out = dest.to_numpy()
        assert np.abs(out[lat4.even.sites]).max() < 1e-14
        assert np.abs(out[lat4.odd.sites]).max() > 0

    def test_anisotropy_coefficient(self, ctx, lat4, setup):
        u, psi = setup
        iso = latt_fermion(lat4)
        WilsonDslash(u)(iso, psi)
        aniso = latt_fermion(lat4)
        WilsonDslash(u, coeffs=[1.0, 1.0, 1.0, 2.5])(aniso, psi)
        # difference must equal 1.5x the t-direction hop
        t_only = latt_fermion(lat4)
        # build the t-hop alone
        from repro.core.expr import adj, shift
        from repro.qcd.gamma import projector_const

        t_term = (projector_const(3, +1) * (u[3] * shift(psi.ref(), +1, 3))
                  + projector_const(3, -1) * shift(adj(u[3]) * psi, -1, 3))
        t_only.assign(t_term)
        assert np.allclose(aniso.to_numpy() - iso.to_numpy(),
                           1.5 * t_only.to_numpy(), rtol=1e-10, atol=1e-12)


class TestWilsonOperator:
    def test_kappa_mass_relation(self):
        p = WilsonParams.from_mass(0.1)
        assert p.kappa == pytest.approx(1 / 8.2)
        assert p.mass == pytest.approx(0.1)

    def test_apply(self, ctx, lat4, setup):
        u, psi = setup
        m = WilsonOperator(u, WilsonParams(kappa=0.12))
        out = m.new_fermion()
        m.apply(out, psi)
        ref = psi.to_numpy() - 0.12 * _dslash_numpy(lat4, u, psi)
        assert np.allclose(out.to_numpy(), ref, rtol=1e-12)

    def test_adjointness(self, ctx, lat4, setup, rng):
        u, psi = setup
        chi = latt_fermion(lat4)
        chi.gaussian(rng)
        m = WilsonOperator(u, WilsonParams(kappa=0.13))
        mpsi, mdchi = m.new_fermion(), m.new_fermion()
        m.apply(mpsi, psi)
        m.apply_dagger(mdchi, chi)
        assert innerProduct(mpsi, chi) == pytest.approx(
            innerProduct(psi, mdchi), rel=1e-11)

    def test_mdagm_hermitian_positive(self, ctx, lat4, setup, rng):
        u, psi = setup
        m = WilsonOperator(u, WilsonParams(kappa=0.12))
        out = m.new_fermion()
        m.apply_mdagm(out, psi)
        ip = innerProduct(psi, out)
        assert ip.imag == pytest.approx(0.0, abs=1e-9 * abs(ip))
        assert ip.real > 0


class TestEvenOdd:
    def test_schur_equivalence(self, ctx, lat4, setup, rng):
        """Solving the preconditioned system and reconstructing must
        solve the full system."""
        from repro.qcd.solver import cg

        u, _ = setup
        params = WilsonParams(kappa=0.11)
        m_full = WilsonOperator(u, params)
        m_eo = EvenOddWilsonOperator(u, params)
        chi = latt_fermion(lat4)
        chi.gaussian(rng)
        # preconditioned solve on even sites: M_prec+ M_prec x = M_prec+ b
        b = m_eo.prepare_source(chi)
        rhs = m_eo.new_fermion()
        m_eo.apply_dagger(rhs, b)
        x = m_eo.new_fermion()
        res = cg(lambda d, s: m_eo.apply_mdagm(d, s), x, rhs,
                 tol=1e-11, max_iter=600, subset=lat4.even)
        assert res.converged
        psi = m_eo.reconstruct(x, chi)
        # check M psi = chi on the full lattice
        check = m_full.new_fermion()
        m_full.apply(check, psi)
        err = norm2(check - chi) ** 0.5 / norm2(chi) ** 0.5
        assert err < 1e-8

    def test_writes_even_sites_only(self, ctx, lat4, setup):
        u, psi = setup
        m_eo = EvenOddWilsonOperator(u, WilsonParams(kappa=0.1))
        out = m_eo.new_fermion()
        m_eo.apply(out, psi)
        assert np.abs(out.to_numpy()[lat4.odd.sites]).max() == 0.0
        assert np.abs(out.to_numpy()[lat4.even.sites]).max() > 0

    def test_gamma5_hermiticity_of_prec_operator(self, ctx, lat4, setup,
                                                 rng):
        u, psi = setup
        m_eo = EvenOddWilsonOperator(u, WilsonParams(kappa=0.11))
        chi = latt_fermion(lat4)
        chi.gaussian(rng)
        a, b = m_eo.new_fermion(), m_eo.new_fermion()
        m_eo.apply(a, psi)
        m_eo.apply_dagger(b, chi)
        lhs = innerProduct(a, chi, subset=lat4.even)
        rhs = innerProduct(psi, b, subset=lat4.even)
        assert lhs == pytest.approx(rhs, rel=1e-11)

"""Tests for the analysis phase: sources, propagators, correlators."""

import numpy as np
import pytest

from repro.qcd.analysis import (
    compute_propagator,
    effective_mass,
    pion_correlator,
    point_source,
    wall_source,
)
from repro.qcd.gauge import unit_gauge, weak_gauge
from repro.qcd.wilson import WilsonOperator, WilsonParams


class TestSources:
    def test_point_source_single_entry(self, ctx, lat4):
        src = point_source(lat4, (1, 2, 3, 0), spin=2, color=1)
        arr = src.to_numpy()
        assert arr[lat4.site_index((1, 2, 3, 0)), 2, 1] == 1.0
        assert np.count_nonzero(arr) == 1

    def test_wall_source_covers_slice(self, ctx, lat4):
        src = wall_source(lat4, t=2, spin=0, color=0)
        arr = src.to_numpy()
        on_slice = lat4.coords[:, 3] == 2
        assert np.all(arr[on_slice, 0, 0] == 1.0)
        assert np.count_nonzero(arr) == on_slice.sum()


@pytest.fixture(scope="module")
def propagator_setup():
    from repro.core.context import Context
    from repro.qdp.lattice import Lattice

    ctx = Context()
    lat = Lattice((2, 2, 2, 8))
    rng = np.random.default_rng(17)
    u = weak_gauge(lat, rng, eps=0.15, context=ctx)
    params = WilsonParams(kappa=0.11)
    prop = compute_propagator(
        u, params,
        lambda s, c: point_source(lat, (0, 0, 0, 0), s, c,
                                  context=ctx),
        tol=1e-10)
    return ctx, lat, u, params, prop


class TestPropagator:
    def test_columns_solve_the_dirac_equation(self, propagator_setup):
        ctx, lat, u, params, prop = propagator_setup
        from repro.core.reduction import norm2
        from repro.qdp.fields import latt_fermion

        m = WilsonOperator(u, params)
        psi = latt_fermion(lat, context=ctx)
        psi.from_numpy(np.ascontiguousarray(prop[:, :, :, 1, 2]))
        out = m.new_fermion()
        m.apply(out, psi)
        src = point_source(lat, (0, 0, 0, 0), 1, 2, context=ctx)
        resid = (norm2(out - src, context=ctx)
                 / norm2(src, context=ctx)) ** 0.5
        assert resid < 1e-8

    def test_pion_correlator_positive(self, propagator_setup):
        ctx, lat, u, params, prop = propagator_setup
        corr = pion_correlator(prop, lat)
        assert corr.shape == (8,)
        assert np.all(corr > 0)

    def test_pion_correlator_decays_and_is_symmetric(self,
                                                     propagator_setup):
        """Periodic lattice: C(t) falls away from the source and turns
        back up past the midpoint (cosh shape)."""
        ctx, lat, u, params, prop = propagator_setup
        corr = pion_correlator(prop, lat)
        assert corr[0] == corr.max()
        assert corr[1] < corr[0]
        mid = len(corr) // 2
        assert corr[mid] == corr.min() or corr[mid] <= 1.05 * corr.min()
        # approximate time-reflection symmetry
        for t in range(1, mid):
            assert corr[t] == pytest.approx(corr[-t], rel=0.2)

    def test_effective_mass_positive_before_midpoint(self,
                                                     propagator_setup):
        ctx, lat, u, params, prop = propagator_setup
        meff = effective_mass(pion_correlator(prop, lat))
        assert np.all(meff[:3] > 0)


class TestFreeField:
    def test_free_propagator_translation_invariant(self, ctx, rng):
        """On U = 1 the correlator depends only on t - t_src."""
        from repro.qdp.lattice import Lattice

        lat = Lattice((2, 2, 2, 6))
        u = unit_gauge(lat)
        params = WilsonParams(kappa=0.10)
        c0 = pion_correlator(compute_propagator(
            u, params, lambda s, c: point_source(lat, (0, 0, 0, 0),
                                                 s, c)), lat)
        c2 = pion_correlator(compute_propagator(
            u, params, lambda s, c: point_source(lat, (0, 0, 0, 2),
                                                 s, c)), lat)
        assert np.allclose(np.roll(c2, -2), c0, rtol=1e-7)

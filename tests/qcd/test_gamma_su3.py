"""Tests for the gamma algebra and SU(3) utilities."""

import numpy as np

from repro.qcd import su3
from repro.qcd.gamma import GAMMA, GAMMA5, IDENTITY, projector, sigma


class TestCliffordAlgebra:
    def test_anticommutation(self):
        """{gamma_mu, gamma_nu} = 2 delta_{mu nu}."""
        for mu in range(4):
            for nu in range(4):
                anti = GAMMA[mu] @ GAMMA[nu] + GAMMA[nu] @ GAMMA[mu]
                assert np.allclose(anti, 2 * (mu == nu) * IDENTITY)

    def test_hermiticity(self):
        for mu in range(4):
            assert np.allclose(GAMMA[mu], GAMMA[mu].conj().T)

    def test_gamma5_chiral_diagonal(self):
        """DeGrand-Rossi is a chiral basis: gamma5 diagonal, +/-1."""
        assert np.allclose(GAMMA5, np.diag([1, 1, -1, -1]))

    def test_gamma5_anticommutes(self):
        for mu in range(4):
            assert np.allclose(GAMMA5 @ GAMMA[mu] + GAMMA[mu] @ GAMMA5,
                               np.zeros((4, 4)))

    def test_projector_rank_two(self):
        """The Wilson projectors (1 -/+ gamma_mu) have rank 2 — the
        source of the spin-projection optimization."""
        for mu in range(4):
            for sign in (+1, -1):
                assert np.linalg.matrix_rank(projector(mu, sign)) == 2

    def test_projector_pair_sums_to_two(self):
        for mu in range(4):
            assert np.allclose(projector(mu, +1) + projector(mu, -1),
                               2 * IDENTITY)

    def test_sigma_block_diagonal(self):
        """sigma_{mu nu} commutes with gamma5: the clover term splits
        into two 6x6 blocks (paper Sec. VI-A)."""
        for mu in range(4):
            for nu in range(mu + 1, 4):
                s = sigma(mu, nu)
                assert np.allclose(s @ GAMMA5, GAMMA5 @ s)
                assert np.allclose(s[:2, 2:], 0)
                assert np.allclose(s[2:, :2], 0)

    def test_sigma_hermitian(self):
        for mu in range(4):
            for nu in range(4):
                if mu != nu:
                    assert np.allclose(sigma(mu, nu),
                                       sigma(mu, nu).conj().T)

    def test_sigma_antisymmetric(self):
        assert np.allclose(sigma(0, 1), -sigma(1, 0))


class TestSU3:
    def test_random_su3_is_unitary(self, rng):
        u = su3.random_su3(rng, 50)
        assert su3.unitarity_defect(u) < 1e-12

    def test_random_near_unit(self, rng):
        u = su3.random_su3_near_unit(rng, 50, eps=0.01)
        assert su3.unitarity_defect(u) < 1e-12
        assert np.abs(u - np.eye(3)).max() < 0.2

    def test_expm_unitary(self, rng):
        h = su3.random_hermitian_traceless(rng, 50)
        u = su3.expm_i_hermitian(h)
        assert su3.unitarity_defect(u) < 1e-12

    def test_expm_matches_series(self, rng):
        h = su3.random_hermitian_traceless(rng, 5) * 0.01
        u = su3.expm_i_hermitian(h)
        series = (np.eye(3) + 1j * h - 0.5 * np.einsum(
            "nab,nbc->nac", h, h))
        assert np.abs(u - series).max() < 1e-5

    def test_expm_inverse(self, rng):
        h = su3.random_hermitian_traceless(rng, 10)
        u = su3.expm_i_hermitian(h)
        uinv = su3.expm_i_hermitian(-h)
        prod = np.einsum("nab,nbc->nac", u, uinv)
        assert np.abs(prod - np.eye(3)).max() < 1e-12

    def test_reunitarize_projects(self, rng):
        u = su3.random_su3(rng, 20)
        drifted = u + 1e-4 * (rng.normal(size=u.shape)
                              + 1j * rng.normal(size=u.shape))
        fixed = su3.reunitarize(drifted)
        assert su3.unitarity_defect(fixed) < 1e-12
        assert np.abs(fixed - u).max() < 1e-3

    def test_momenta_normalization(self, rng):
        """<tr P^2> = 4 per link (8 generators at variance 1/2)."""
        h = su3.random_hermitian_traceless(rng, 20000)
        tr2 = np.einsum("nij,nji->n", h, h).real
        assert abs(tr2.mean() - 4.0) < 0.1

    def test_traceless(self, rng):
        h = su3.random_hermitian_traceless(rng, 100)
        assert np.abs(np.einsum("nii->n", h)).max() < 1e-13

    def test_taproj(self, rng):
        m = rng.normal(size=(10, 3, 3)) + 1j * rng.normal(size=(10, 3, 3))
        a = su3.project_traceless_antihermitian(m)
        assert np.abs(a + np.conj(np.swapaxes(a, -1, -2))).max() < 1e-13
        assert np.abs(np.einsum("nii->n", a)).max() < 1e-13

"""Tests for the Krylov solvers (CG, BiCGStab, multi-shift CG)."""

import pytest

from repro.core.reduction import norm2
from repro.qcd.gauge import weak_gauge
from repro.qcd.solver import SolverError, bicgstab, cg, multishift_cg
from repro.qcd.wilson import EvenOddWilsonOperator, WilsonOperator, WilsonParams
from repro.qdp.fields import latt_fermion


@pytest.fixture()
def system(ctx, lat4, rng):
    u = weak_gauge(lat4, rng, eps=0.3)
    m = WilsonOperator(u, WilsonParams(kappa=0.12))
    b = latt_fermion(lat4)
    b.gaussian(rng)
    return u, m, b


def _true_residual(m, x, b, shift=0.0):
    tmp = m.new_fermion()
    m.apply_mdagm(tmp, x)
    tmp.assign(b - tmp - shift * x)
    return (norm2(tmp) / norm2(b)) ** 0.5


class TestCG:
    def test_converges_with_true_residual(self, ctx, lat4, system):
        u, m, b = system
        x = latt_fermion(lat4)
        res = cg(lambda d, s: m.apply_mdagm(d, s), x, b,
                 tol=1e-9, max_iter=500)
        assert res.converged
        assert _true_residual(m, x, b) < 5e-9

    def test_residual_history_monotone_overall(self, ctx, lat4, system):
        u, m, b = system
        x = latt_fermion(lat4)
        res = cg(lambda d, s: m.apply_mdagm(d, s), x, b,
                 tol=1e-9, max_iter=500)
        h = res.residual_history
        assert h[-1] < 1e-4 * h[0]

    def test_zero_rhs(self, ctx, lat4, system):
        u, m, _ = system
        b = latt_fermion(lat4)
        x = latt_fermion(lat4)
        res = cg(lambda d, s: m.apply_mdagm(d, s), x, b, tol=1e-9)
        assert res.converged and res.iterations == 0
        assert norm2(x) == 0.0

    def test_warm_start(self, ctx, lat4, system):
        u, m, b = system
        x = latt_fermion(lat4)
        res1 = cg(lambda d, s: m.apply_mdagm(d, s), x, b,
                  tol=1e-9, max_iter=500)
        assert res1.converged
        res2 = cg(lambda d, s: m.apply_mdagm(d, s), x, b,
                  tol=1e-9, max_iter=500)
        assert res2.iterations <= 2

    def test_max_iter_reported(self, ctx, lat4, system):
        u, m, b = system
        x = latt_fermion(lat4)
        res = cg(lambda d, s: m.apply_mdagm(d, s), x, b,
                 tol=1e-14, max_iter=3)
        assert not res.converged
        assert res.iterations == 3

    def test_non_pd_operator_detected(self, ctx, lat4, system):
        u, m, b = system

        def negative_op(d, s):
            d.assign(-1.0 * s.ref())

        x = latt_fermion(lat4)
        with pytest.raises(SolverError):
            cg(negative_op, x, b, tol=1e-9, max_iter=10)

    def test_even_odd_faster_than_full(self, ctx, lat4, system, rng):
        u, m, b = system
        m_eo = EvenOddWilsonOperator(u, m.params)
        x_full = latt_fermion(lat4)
        res_full = cg(lambda d, s: m.apply_mdagm(d, s), x_full, b,
                      tol=1e-9, max_iter=600)
        x_eo = latt_fermion(lat4)
        res_eo = cg(lambda d, s: m_eo.apply_mdagm(d, s), x_eo, b,
                    tol=1e-9, max_iter=600, subset=lat4.even)
        assert res_eo.converged
        assert res_eo.iterations < res_full.iterations


class TestBiCGStab:
    def test_solves_nonhermitian(self, ctx, lat4, system):
        u, m, b = system
        x = latt_fermion(lat4)
        res = bicgstab(lambda d, s: m.apply(d, s), x, b,
                       tol=1e-9, max_iter=500)
        assert res.converged
        tmp = m.new_fermion()
        m.apply(tmp, x)
        tmp.assign(b - tmp)
        assert (norm2(tmp) / norm2(b)) ** 0.5 < 5e-9

    def test_fewer_matvecs_than_normal_cg(self, ctx, lat4, system):
        """BiCGStab on M uses 2 applies/iter but avoids squaring the
        condition number: typically beats CG on M+M in matvecs."""
        u, m, b = system
        x1 = latt_fermion(lat4)
        res_cg = cg(lambda d, s: m.apply_mdagm(d, s), x1, b,
                    tol=1e-9, max_iter=600)
        x2 = latt_fermion(lat4)
        res_bi = bicgstab(lambda d, s: m.apply(d, s), x2, b,
                          tol=1e-9, max_iter=600)
        assert 2 * res_bi.iterations <= 2 * 2 * res_cg.iterations


class TestMultiShift:
    def test_all_shifts_solved(self, ctx, lat4, system):
        u, m, b = system
        shifts = [0.0, 0.05, 0.3, 1.5]
        xs = [latt_fermion(lat4) for _ in shifts]
        res = multishift_cg(lambda d, s: m.apply_mdagm(d, s), xs, b,
                            shifts, tol=1e-9, max_iter=500)
        assert res.converged
        for sh, x in zip(shifts, xs):
            assert _true_residual(m, x, b, shift=sh) < 5e-8

    def test_single_krylov_sequence(self, ctx, lat4, system):
        """The whole point: k shifts cost one sequence, so iteration
        count must not exceed the unshifted solve's."""
        u, m, b = system
        x0 = latt_fermion(lat4)
        res0 = cg(lambda d, s: m.apply_mdagm(d, s), x0, b,
                  tol=1e-9, max_iter=500)
        xs = [latt_fermion(lat4) for _ in range(4)]
        res = multishift_cg(lambda d, s: m.apply_mdagm(d, s), xs, b,
                            [0.0, 0.1, 0.5, 2.0], tol=1e-9, max_iter=500)
        assert res.iterations <= res0.iterations + 2

    def test_larger_shifts_converge_faster(self, ctx, lat4, system):
        u, m, b = system
        shifts = [0.0, 5.0]
        xs = [latt_fermion(lat4) for _ in shifts]
        res = multishift_cg(lambda d, s: m.apply_mdagm(d, s), xs, b,
                            shifts, tol=1e-9, max_iter=500)
        assert res.residual_norms[1] <= res.residual_norms[0] * 1.001

    def test_negative_shift_rejected(self, ctx, lat4, system):
        u, m, b = system
        xs = [latt_fermion(lat4)]
        with pytest.raises(ValueError):
            multishift_cg(lambda d, s: m.apply_mdagm(d, s), xs, b,
                          [-0.1])

    def test_count_mismatch_rejected(self, ctx, lat4, system):
        u, m, b = system
        with pytest.raises(ValueError):
            multishift_cg(lambda d, s: m.apply_mdagm(d, s),
                          [latt_fermion(lat4)], b, [0.0, 0.1])

"""Tests for Wilson loops, Polyakov loop, topological charge."""

import numpy as np
import pytest

from repro.qcd import su3
from repro.qcd.gauge import gauge_transform, plaquette, unit_gauge, weak_gauge
from repro.qcd.observables import (
    energy_density,
    polyakov_loop,
    topological_charge,
    wilson_loop,
)
from repro.qdp.fields import latt_color_matrix


class TestWilsonLoop:
    def test_unit_gauge(self, ctx, lat4):
        u = unit_gauge(lat4)
        assert wilson_loop(u, 0, 1, 2, 2) == pytest.approx(1.0, abs=1e-12)

    def test_1x1_is_plaquette(self, ctx, lat4, rng):
        u = weak_gauge(lat4, rng, eps=0.3)
        w11 = np.mean([wilson_loop(u, mu, nu, 1, 1)
                       for mu in range(4) for nu in range(mu + 1, 4)])
        assert w11 == pytest.approx(plaquette(u), rel=1e-10)

    def test_gauge_invariance(self, ctx, lat4, rng):
        u = weak_gauge(lat4, rng, eps=0.3)
        g = latt_color_matrix(lat4)
        g.from_numpy(su3.random_su3(rng, lat4.nsites))
        ug = gauge_transform(u, g)
        assert wilson_loop(ug, 0, 2, 2, 3) == pytest.approx(
            wilson_loop(u, 0, 2, 2, 3), abs=1e-11)

    def test_area_law_ordering(self, ctx, lat4, rng):
        """On a fluctuating field, larger loops are smaller."""
        u = weak_gauge(lat4, rng, eps=0.4)
        w11 = wilson_loop(u, 0, 1, 1, 1)
        w22 = wilson_loop(u, 0, 1, 2, 2)
        assert w22 < w11

    def test_extent_validation(self, ctx, lat4, rng):
        u = unit_gauge(lat4)
        with pytest.raises(ValueError):
            wilson_loop(u, 0, 1, 4, 1)


class TestPolyakovLoop:
    def test_unit_gauge(self, ctx, lat4):
        assert polyakov_loop(unit_gauge(lat4)) == pytest.approx(1.0,
                                                                abs=1e-12)

    def test_gauge_invariance(self, ctx, lat4, rng):
        u = weak_gauge(lat4, rng, eps=0.4)
        g = latt_color_matrix(lat4)
        g.from_numpy(su3.random_su3(rng, lat4.nsites))
        assert polyakov_loop(gauge_transform(u, g)) == pytest.approx(
            polyakov_loop(u), abs=1e-11)

    def test_center_transformation(self, ctx, lat4, rng):
        """Multiplying one time slice by the center element z rotates
        the Polyakov loop by z — the confinement order parameter's
        defining property."""
        u = weak_gauge(lat4, rng, eps=0.2)
        p0 = polyakov_loop(u)
        z = np.exp(2j * np.pi / 3)
        ut = u[3].to_numpy()
        slice_sel = lat4.coords[:, 3] == 0
        ut[slice_sel] *= z
        u[3].from_numpy(ut)
        assert polyakov_loop(u) == pytest.approx(z * p0, rel=1e-10)


class TestTopologicalCharge:
    def test_zero_on_unit_gauge(self, ctx, lat4):
        assert abs(topological_charge(unit_gauge(lat4))) < 1e-12

    def test_small_on_weak_field(self, ctx, lat4, rng):
        q = topological_charge(weak_gauge(lat4, rng, eps=0.1))
        assert abs(q) < 0.5

    def test_odd_under_axis_swap(self, ctx, lat4, rng):
        """Swapping two axes is an orientation-reversing relabeling:
        the epsilon contraction must flip sign."""
        u = weak_gauge(lat4, rng, eps=0.3)
        q = topological_charge(u)
        perm = [1, 0, 2, 3]
        src = lat4.site_index(lat4.coords[:, perm])
        from repro.qdp.fields import multi1d
        from repro.qdp.fields import latt_color_matrix as lcm

        swapped = multi1d([lcm(lat4) for _ in range(4)])
        for m in range(4):
            swapped[m].from_numpy(u[perm[m]].to_numpy()[src])
        assert topological_charge(swapped) == pytest.approx(
            -q, rel=1e-8, abs=1e-12)


class TestEnergyDensity:
    def test_zero_on_unit_gauge(self, ctx, lat4):
        assert energy_density(unit_gauge(lat4)) < 1e-24

    def test_grows_with_fluctuation(self, ctx, lat4):
        rng1 = np.random.default_rng(1)
        rng2 = np.random.default_rng(1)
        e_small = energy_density(weak_gauge(lat4, rng1, eps=0.1))
        e_big = energy_density(weak_gauge(lat4, rng2, eps=0.3))
        assert e_big > e_small > 0

"""Tests for the half-spinor (spin projection) machinery."""

import numpy as np
import pytest

from repro.core.expr import ExprTypeError
from repro.qcd.dslash import WilsonDslash
from repro.qcd.gamma import projector
from repro.qcd.gauge import weak_gauge
from repro.qcd.halfspinor import (
    HalfSpinorDslash,
    half_fermion,
    projection_matrices,
    spin_project,
    spin_reconstruct,
)
from repro.qdp.fields import LatticeField, latt_fermion


class TestProjectionMatrices:
    @pytest.mark.parametrize("mu", range(4))
    @pytest.mark.parametrize("sign", [+1, -1])
    def test_reconstruct_times_project_is_projector(self, mu, sign):
        t, r = projection_matrices(mu, sign)
        assert np.allclose(r @ t, projector(mu, sign), atol=1e-13)

    def test_shapes(self):
        t, r = projection_matrices(0, +1)
        assert t.shape == (2, 4) and r.shape == (4, 2)


class TestSpinProjectOps:
    @pytest.mark.parametrize("mu", range(4))
    @pytest.mark.parametrize("sign", [+1, -1])
    def test_project_reconstruct_equals_projector(self, ctx, lat4, rng,
                                                  mu, sign):
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        h = LatticeField(lat4, half_fermion())
        h.assign(spin_project(psi, mu, sign))
        out = latt_fermion(lat4)
        out.assign(spin_reconstruct(h, mu, sign))
        ref = np.einsum("st,ntc->nsc", projector(mu, sign),
                        psi.to_numpy())
        assert np.allclose(out.to_numpy(), ref, rtol=1e-12, atol=1e-13)

    def test_half_spinor_is_half_the_data(self):
        from repro.qdp.typesys import fermion

        assert half_fermion().bytes_per_site * 2 == fermion().bytes_per_site

    def test_project_needs_full_spinor(self, ctx, lat4):
        h = LatticeField(lat4, half_fermion())
        with pytest.raises(ExprTypeError):
            spin_project(h, 0, +1)
        psi = latt_fermion(lat4)
        with pytest.raises(ExprTypeError):
            spin_reconstruct(psi, 0, +1)


class TestHalfSpinorDslash:
    def test_matches_naive_dslash(self, ctx, lat4, rng):
        """The optimized data path must reproduce the naive Dslash."""
        u = weak_gauge(lat4, rng, eps=0.3)
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        naive = latt_fermion(lat4)
        WilsonDslash(u)(naive, psi)
        opt = latt_fermion(lat4)
        HalfSpinorDslash(u)(opt, psi)
        assert np.allclose(opt.to_numpy(), naive.to_numpy(),
                           rtol=1e-12, atol=1e-12)

    def test_shifted_traffic_is_halved(self, ctx, lat4, rng):
        """The shifted temporaries carry 12 words instead of 24 — the
        traffic saving hand kernels exploit, here visible in the
        generated-kernel metadata."""
        d = HalfSpinorDslash(weak_gauge(lat4, rng, eps=0.3))
        assert d.halfspinor_bytes_per_site() == 12 * 8

"""Tests for the QUDA comparator: optimized Dslash, mixed-precision
CG, GCR, and the device interface."""

import numpy as np
import pytest

from repro.core.reduction import norm2
from repro.device import K20M_ECC_ON
from repro.qcd.dslash import WilsonDslash
from repro.qcd.gauge import weak_gauge
from repro.qcd.wilson import WilsonOperator, WilsonParams
from repro.qdp.fields import latt_fermion
from repro.quda import (
    OptimizedDslash,
    QudaInvertParam,
    QudaSolver,
    gcr,
    mixed_precision_cg,
    quda_dslash_gflops,
)


@pytest.fixture()
def system(ctx, lat4, rng):
    u = weak_gauge(lat4, rng, eps=0.3)
    psi = latt_fermion(lat4)
    psi.gaussian(rng)
    return u, psi


class TestOptimizedDslash:
    def test_cross_validates_generated_dslash(self, ctx, lat4, system):
        """Two independent implementations (spin-projected hand code
        vs expression-generated kernels) must agree."""
        u, psi = system
        dest = latt_fermion(lat4)
        WilsonDslash(u)(dest, psi)
        opt = OptimizedDslash(u)
        assert np.allclose(dest.to_numpy(), opt.apply(psi.to_numpy()),
                           rtol=1e-12, atol=1e-13)

    def test_dagger(self, ctx, lat4, system):
        u, psi = system
        dest = latt_fermion(lat4)
        WilsonDslash(u)(dest, psi, sign=-1)
        opt = OptimizedDslash(u)
        assert np.allclose(dest.to_numpy(),
                           opt.apply(psi.to_numpy(), sign=-1),
                           rtol=1e-12, atol=1e-13)

    def test_gauge_refresh(self, ctx, lat4, system, rng):
        u, psi = system
        opt = OptimizedDslash(u)
        before = opt.apply(psi.to_numpy())
        u[0].from_numpy(u[0].to_numpy() * np.exp(0.3j))
        opt.refresh_gauge(u)
        after = opt.apply(psi.to_numpy())
        assert not np.allclose(before, after)


class TestMixedPrecisionCG:
    def _ops(self, u, kappa):
        opt = OptimizedDslash(u)

        def mdagm(v):
            m = v - kappa * opt.apply(v, +1)
            return m - kappa * opt.apply(m, -1)

        def mdagm_sp(v):
            return mdagm(v.astype(np.complex128)).astype(np.complex64)

        return mdagm, mdagm_sp

    def test_converges_beyond_single_precision(self, ctx, lat4, system,
                                               rng):
        """Reliable updates let the solve reach 1e-10 even though the
        iteration runs in f32 — the mixed-precision headline."""
        u, _ = system
        mdagm, mdagm_sp = self._ops(u, 0.12)
        b = (rng.normal(size=(lat4.nsites, 4, 3))
             + 1j * rng.normal(size=(lat4.nsites, 4, 3)))
        x, res = mixed_precision_cg(mdagm, mdagm_sp, b, tol=1e-10,
                                    max_iter=1000)
        assert res.converged
        assert res.reliable_updates >= 1
        r = b - mdagm(x)
        assert (np.vdot(r, r).real / np.vdot(b, b).real) ** 0.5 < 1e-9

    def test_zero_rhs(self, ctx, lat4, system):
        u, _ = system
        mdagm, mdagm_sp = self._ops(u, 0.12)
        x, res = mixed_precision_cg(
            mdagm, mdagm_sp, np.zeros((lat4.nsites, 4, 3), complex))
        assert res.converged and np.all(x == 0)


class TestGCR:
    def test_converges(self, ctx, lat4, system, rng):
        u, _ = system
        opt = OptimizedDslash(u)

        def mdagm(v):
            m = v - 0.12 * opt.apply(v, +1)
            return m - 0.12 * opt.apply(m, -1)

        b = (rng.normal(size=(lat4.nsites, 4, 3))
             + 1j * rng.normal(size=(lat4.nsites, 4, 3)))
        x, res = gcr(mdagm, b, tol=1e-9, max_iter=600, n_krylov=16)
        assert res.converged
        r = b - mdagm(x)
        assert (np.vdot(r, r).real / np.vdot(b, b).real) ** 0.5 < 5e-9


class TestQudaSolverInterface:
    def test_solution_verified_by_qdpjit_operator(self, ctx, lat4,
                                                  system, rng):
        """QUDA solves it, the QDP-JIT operator checks it — the
        cross-library loop Chroma runs in production."""
        u, _ = system
        params = WilsonParams(kappa=0.12)
        b = latt_fermion(lat4)
        b.gaussian(rng)
        x = latt_fermion(lat4)
        solver = QudaSolver(u, params, QudaInvertParam(tol=1e-10))
        res = solver.solve(x, b)
        assert res.converged
        m = WilsonOperator(u, params)
        tmp = m.new_fermion()
        m.apply_mdagm(tmp, x)
        tmp.assign(b - tmp)
        assert (norm2(tmp) / norm2(b)) ** 0.5 < 1e-8

    def test_device_interface_free_of_transfers(self, ctx, lat4, system,
                                                rng):
        """Paper Sec. VIII-D: the device interface eliminates the
        copy/re-layout; the non-device path pays it."""
        u, _ = system
        params = WilsonParams(kappa=0.12)
        b = latt_fermion(lat4)
        b.gaussian(rng)
        x = latt_fermion(lat4)
        dev = QudaSolver(u, params,
                         QudaInvertParam(tol=1e-8, device_interface=True))
        dev.solve(x, b)
        assert dev.transfer_seconds_charged == 0.0
        staged = QudaSolver(u, params,
                            QudaInvertParam(tol=1e-8,
                                            device_interface=False))
        staged.solve(x, b)
        assert staged.transfer_seconds_charged > 0.0

    def test_gcr_config(self, ctx, lat4, system, rng):
        u, _ = system
        b = latt_fermion(lat4)
        b.gaussian(rng)
        x = latt_fermion(lat4)
        solver = QudaSolver(u, WilsonParams(kappa=0.12),
                            QudaInvertParam(tol=1e-9, solver="gcr"))
        assert solver.solve(x, b).converged


class TestQudaPerfModel:
    def test_paper_anchor_sp(self):
        """346 GFLOPS, SP, V = 40^4, K20m ECC on (Sec. VIII-C)."""
        g = quda_dslash_gflops(K20M_ECC_ON, 40 ** 4, "f32")
        assert g == pytest.approx(346, rel=0.03)

    def test_paper_anchor_dp(self):
        """171 GFLOPS, DP, V = 32^4."""
        g = quda_dslash_gflops(K20M_ECC_ON, 32 ** 4, "f64")
        assert g == pytest.approx(171, rel=0.03)

    def test_compression_helps(self):
        g18 = quda_dslash_gflops(K20M_ECC_ON, 32 ** 4, "f32",
                                 gauge_compression=18)
        g12 = quda_dslash_gflops(K20M_ECC_ON, 32 ** 4, "f32",
                                 gauge_compression=12)
        assert g12 > g18

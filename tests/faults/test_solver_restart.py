"""Solver-resilience tests: injected iterate corruption caught by the
reliable-update defect guard and repaired by restart from the last
good point."""

import numpy as np
import pytest

from repro.core.context import Context
from repro.faults import FaultPlan, install_plan
from repro.qcd.mixedsolver import mixed_precision_cg
from repro.qcd.solver import SolverError, cg
from repro.qdp.fields import latt_fermion, latt_real
from repro.qdp.lattice import Lattice

DIMS = (4, 4, 4, 4)


def _problem(ctx, seed=17, precision="f64"):
    """A = diag(w), SPD; returns (apply_op, x, b)."""
    lat = Lattice(DIMS)
    rng = np.random.default_rng(seed)
    w = latt_real(lat, precision, context=ctx)
    w.from_numpy(rng.uniform(0.5, 1.5, lat.nsites))
    b = latt_fermion(lat, precision, context=ctx)
    b.gaussian(rng)
    x = latt_fermion(lat, precision, context=ctx)

    def apply_op(dest, src):
        dest.assign(w.ref() * src.ref())

    return apply_op, x, b


class TestCGRestart:
    def test_corruption_detected_and_converges(self):
        plan = FaultPlan(seed=6).add("solver", count=1)
        ctx = Context(faults=plan)
        apply_op, x, b = _problem(ctx)
        baseline_ctx = Context(faults=False)
        op0, x0, b0 = _problem(baseline_ctx)
        res0 = cg(op0, x0, b0, tol=1e-10, max_iter=200)

        res = cg(apply_op, x, b, tol=1e-10, max_iter=200)
        assert res.converged
        assert res.residual_norm <= 1e-10
        assert plan.counters.injected == 1
        assert plan.counters.solver_restarts == 1
        assert plan.all_recovered()
        # the corrupted run pays iterations but lands on the same
        # solution as the clean run
        assert np.allclose(x.to_numpy(), x0.to_numpy(),
                           rtol=1e-8, atol=1e-10)
        assert res.iterations >= res0.iterations
        assert ctx.stats.solver_restarts == 1

    def test_unbounded_corruption_surfaces(self):
        """Corruption on every iteration must exhaust the restart
        budget and raise, not loop forever."""
        plan = FaultPlan(seed=6).add("solver")
        ctx = Context(faults=plan)
        apply_op, x, b = _problem(ctx)
        with pytest.raises(SolverError, match="defect persists"):
            cg(apply_op, x, b, tol=1e-10, max_iter=500)

    def test_defect_guard_idle_without_plan(self):
        """No plan => reliable defaults to 0: no extra operator
        applications, bit-identical to the historical path."""
        ctx = Context(faults=False)
        apply_op, x, b = _problem(ctx)
        res = cg(apply_op, x, b, tol=1e-10, max_iter=200)
        assert res.converged
        assert ctx.stats.solver_restarts == 0

    def test_same_seed_same_restart_trace(self):
        def run(seed):
            plan = FaultPlan(seed=seed).add("solver", count=2)
            ctx = Context(faults=plan)
            apply_op, x, b = _problem(ctx)
            cg(apply_op, x, b, tol=1e-10, max_iter=300)
            return plan.trace_signature()

        assert run(13) == run(13)


class TestMixedSolverRestart:
    def test_outer_defect_guard_restarts_and_converges(self):
        """Corrupt an inner f32 iterate: the outer true residual jumps
        and the mixed solver restarts the outer step."""
        plan = FaultPlan(seed=21).add("solver", count=1, match="*")
        # keep the inner CG's own guard from catching it first: check
        # seldom, so the corruption escapes to the outer residual
        plan.policy.solver_check_interval = 10_000
        ctx = Context(faults=plan)
        install_plan(None)
        apply_dp, x, b = _problem(ctx, precision="f64")
        lat = Lattice(DIMS)
        rng = np.random.default_rng(17)
        w32 = latt_real(lat, "f32", context=ctx)
        w32.from_numpy(rng.uniform(0.5, 1.5, lat.nsites))

        def apply_sp(dest, src):
            dest.assign(w32.ref() * src.ref())

        res = mixed_precision_cg(apply_dp, apply_sp, x, b,
                                 tol=1e-9, inner_tol=1e-5)
        assert res.converged
        assert res.residual_norm <= 1e-9
        assert plan.counters.solver_restarts >= 1
        assert ctx.stats.solver_restarts >= 1

"""Halo-exchange fault tests: drop, corruption and timeout on the
virtual machine's messages, repaired by checksum-verified retransmit."""

import numpy as np
import pytest

from repro.comm import VirtualMachine
from repro.faults import FaultPlan, HaloDeliveryError
from repro.qdp.typesys import fermion

DIMS = (4, 4, 4, 8)
GRID = (1, 1, 1, 2)


def _shift(plan, rng_seed=77):
    vm = VirtualMachine(DIMS, GRID, faults=plan if plan is not None
                        else False)
    glat = vm.global_lattice
    rng = np.random.default_rng(rng_seed)
    data = (rng.normal(size=(glat.nsites, 4, 3))
            + 1j * rng.normal(size=(glat.nsites, 4, 3)))
    src = vm.field(fermion())
    src.from_global(data)
    dst = vm.field(fermion())
    vm.shift_into(dst, src, 3, +1)
    return vm, dst.to_global(), data[glat.shift_map(3, +1)]


class TestHaloRecovery:
    @pytest.mark.parametrize("site", ["halo.drop", "halo.corrupt",
                                      "halo.timeout"])
    def test_fault_repaired_bitwise(self, site):
        plan = FaultPlan(seed=8).add(site, count=1)
        vm, got, want = _shift(plan)
        assert np.array_equal(got, want)
        assert plan.counters.injected == 1
        assert plan.all_recovered()
        (event,) = plan.trace
        assert event.site == "halo"
        assert event.kind == site.split(".")[1]
        assert event.retries >= 1

    def test_recovery_cost_lands_on_the_timeline(self):
        clean_vm, _, _ = _shift(None)
        plan = FaultPlan(seed=8).add("halo.timeout", count=1)
        vm, got, want = _shift(plan)
        assert np.array_equal(got, want)
        clean = clean_vm.timeline.lane_busy()
        faulted = vm.timeline.lane_busy()
        # the timeout + retransmit extend the comm lane; the backoff
        # lands on the dedicated fault lane
        assert faulted["comm"] > clean["comm"]
        assert faulted.get("fault", 0) > 0
        assert "fault" not in clean

    def test_chained_faults_recover_in_one_chain(self):
        """A drop whose first retransmission is itself corrupted still
        delivers intact — two events, one recovery chain."""
        plan = (FaultPlan(seed=8).add("halo.drop", count=1)
                .add("halo.corrupt", count=1))
        vm, got, want = _shift(plan)
        assert np.array_equal(got, want)
        assert plan.counters.injected == 2
        assert plan.all_recovered()

    def test_undeliverable_message_surfaces(self):
        plan = FaultPlan(seed=8).add("halo.corrupt")   # every attempt
        with pytest.raises(HaloDeliveryError, match="undeliverable"):
            _shift(plan)

    def test_same_seed_same_trace(self):
        def run(seed):
            plan = (FaultPlan(seed=seed).add("halo.drop", count=1)
                    .add("halo.corrupt", count=1))
            _shift(plan)
            return plan.trace_signature()

        assert run(4) == run(4)

    def test_fault_free_vm_matches_plain_vm_bitwise(self):
        _, clean, want = _shift(None)
        plan = FaultPlan(seed=8).add("halo.corrupt", count=1)
        _, faulted, _ = _shift(plan)
        assert np.array_equal(clean, want)
        assert np.array_equal(faulted, clean)

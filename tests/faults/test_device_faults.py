"""Device-chokepoint fault tests: transient launch retry, injected
OOM through the cache's spill-and-retry, and checksum-guarded
host<->device transfers."""

import numpy as np
import pytest

from repro.device import Device
from repro.device.memmodel import LaunchError
from repro.driver import compile_ptx
from repro.faults import FaultPlan, TransferChecksumError
from repro.ptx import KernelBuilder, PTXModule, PTXType


def _double_kernel(name="dbl"):
    kb = KernelBuilder(name)
    pn = kb.add_param("p_n", PTXType.S32)
    px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
    n = kb.ld_param(pn)
    x = kb.ld_param(px)
    gid = kb.global_thread_id()
    oob = kb.setp("ge", gid, n)
    done = kb.new_label("DONE")
    kb.bra(done, guard=oob)
    off = kb.cvt(kb.mul(kb.cvt(gid, PTXType.S64), kb.imm(8, PTXType.S64)),
                 PTXType.U64)
    addr = kb.add(x, off)
    v = kb.ld_global(addr, PTXType.F64)
    kb.st_global(addr, kb.mul(v, kb.imm(2.0, PTXType.F64)), PTXType.F64)
    kb.label(done)
    kb.ret()
    return PTXModule.from_builder(kb)


def _launch_env(plan):
    dev = Device(faults=plan)
    module = _double_kernel()
    compiled = compile_ptx(module.render())
    n = 1024
    addr = dev.mem_alloc(n * 8)
    dev.memcpy_htod(addr, np.ones(n))
    return dev, module, compiled, {"p_n": n, "p_x": addr}, n, addr


class TestTransientLaunch:
    def test_retry_recovers_and_charges_backoff(self):
        plan = FaultPlan(seed=1).add("launch", count=1, match="dbl")
        dev, module, compiled, params, n, addr = _launch_env(plan)
        dev.launch(compiled, module.info, params, n, 256)
        c = plan.counters
        assert (c.injected, c.recovered, c.retries) == (1, 1, 1)
        assert c.backoff_s == pytest.approx(plan.policy.backoff_s(0))
        # the result is still correct and the launch was not double-run
        assert np.allclose(dev.pool.read(addr, n * 8, np.float64), 2.0)
        assert dev.stats.kernel_launches == 1
        # the backoff is modeled time: fault lane busy, clock advanced
        assert dev.runtime.timeline.lane_busy().get("fault", 0) == \
            pytest.approx(c.backoff_s)

    def test_persistent_failure_exhausts_retry_budget(self):
        plan = FaultPlan(seed=1).add("launch", match="dbl")  # unlimited
        dev, module, compiled, params, n, addr = _launch_env(plan)
        with pytest.raises(LaunchError, match="retries exhausted"):
            dev.launch(compiled, module.info, params, n, 256)
        assert dev.stats.launch_failures == 1
        # the original fault plus one re-fire per retry, none recovered
        assert plan.counters.injected == 1 + plan.policy.max_retries
        assert not plan.all_recovered()

    def test_same_seed_same_recovery_trace(self):
        def run(seed):
            plan = FaultPlan(seed=seed).add("launch", count=3, match="dbl")
            dev, module, compiled, params, n, _ = _launch_env(plan)
            for _ in range(4):
                dev.launch(compiled, module.info, params, n, 256)
            return plan.trace_signature()

        assert run(42) == run(42)


class TestInjectedOOM:
    def test_spill_and_retry_through_the_cache(self, fresh_ctx):
        """An injected DeviceOutOfMemory rides the cache's
        spill-and-retry path and is recorded as recovered."""
        from repro.core.context import Context
        from repro.qdp.fields import latt_real
        from repro.qdp.lattice import Lattice

        plan = FaultPlan(seed=2).add("alloc", count=1)
        ctx = Context(faults=plan)
        lat = Lattice((4, 4, 4, 4))
        f = latt_real(lat, context=ctx)
        f.from_numpy(np.arange(lat.nsites, dtype=np.float64))
        d = latt_real(lat, context=ctx)
        d.assign(f.ref() + f.ref())   # forces device allocation + page-in
        expected = 2.0 * np.arange(lat.nsites, dtype=np.float64)
        assert np.array_equal(d.to_numpy(), expected)
        assert plan.counters.injected == 1
        assert plan.counters.recovered == 1
        assert plan.all_recovered()
        assert ctx.stats.faults_injected == 1
        assert ctx.stats.faults_recovered == 1


class TestTransferChecksums:
    def test_h2d_bitflip_detected_and_retransmitted(self):
        plan = FaultPlan(seed=3).add("h2d", count=1)
        dev = Device(faults=plan)
        host = np.arange(512, dtype=np.float64)
        addr = dev.mem_alloc(host.nbytes)
        dev.memcpy_htod(addr, host)
        assert plan.counters.injected == 1
        assert plan.all_recovered()
        # device copy repaired; the retransmit was a real, counted copy
        assert np.array_equal(
            dev.pool.read(addr, host.nbytes, np.float64), host)
        assert dev.stats.n_h2d == 2
        (event,) = plan.trace
        assert event.site == "h2d" and "bit" in event.detail

    def test_d2h_bitflip_detected_and_reread(self):
        plan = FaultPlan(seed=4).add("d2h", count=1)
        dev = Device(faults=plan)
        host = np.arange(512, dtype=np.float64)
        addr = dev.mem_alloc(host.nbytes)
        dev.memcpy_htod(addr, host)
        out = dev.memcpy_dtoh(addr, host.nbytes, np.float64)
        assert np.array_equal(out, host)
        assert plan.all_recovered()
        assert dev.stats.n_d2h == 2

    def test_unrepairable_transfer_surfaces(self):
        """A fault that re-fires on every retransmission must raise a
        typed error once the budget is gone, not loop forever."""
        plan = FaultPlan(seed=5).add("h2d")   # unlimited corruption
        dev = Device(faults=plan)
        host = np.arange(64, dtype=np.float64)
        addr = dev.mem_alloc(host.nbytes)
        with pytest.raises(TransferChecksumError, match="still corrupt"):
            dev.memcpy_htod(addr, host)


class TestInertInjector:
    def test_no_plan_means_inactive(self):
        dev = Device(faults=False)
        assert not dev.faults.active
        assert dev.faults.counters.injected == 0

    def test_empty_plan_is_inactive(self):
        assert not Device(faults=FaultPlan()).faults.active

"""Tests for fault-plan construction, parsing and determinism."""

import pytest

from repro.faults import (
    FaultPlan,
    FaultPlanError,
    active_plan,
    install_plan,
    parse_plan,
)


class TestSpecGrammar:
    def test_parse_counts_rates_and_seed(self):
        plan = parse_plan("plan:seed=7,launch=2x,h2d=0.25,solver=1x@cg*")
        assert plan.seed == 7
        assert len(plan.specs) == 3
        launch, h2d, solver = plan.specs
        assert (launch.site, launch.kind, launch.count) == \
            ("launch", "transient", 2)
        assert (h2d.site, h2d.rate, h2d.count) == ("h2d", 0.25, None)
        assert (solver.site, solver.kind, solver.match) == \
            ("solver", "corrupt", "cg*")

    def test_bare_site_means_one_shot(self):
        plan = parse_plan("alloc")
        (spec,) = plan.specs
        assert spec.site == "alloc" and spec.count == 1 and spec.rate == 1.0

    def test_plan_prefix_optional(self):
        assert len(parse_plan("launch=1x").specs) == 1
        assert len(parse_plan("plan:launch=1x").specs) == 1

    def test_dotted_sites(self):
        plan = parse_plan("launch.sticky=2x,halo.corrupt=1x,d2h.bitflip=1x")
        assert [(s.site, s.kind) for s in plan.specs] == [
            ("launch", "sticky"), ("halo", "corrupt"), ("d2h", "bitflip")]

    @pytest.mark.parametrize("bad", [
        "nosuchsite=1x", "launch=2y", "h2d=notafloat", "seed=xyz",
        "launch=1.5",
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(FaultPlanError):
            parse_plan(bad)

    def test_add_validates_site(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultPlan().add("gremlins")

    def test_add_is_chainable(self):
        plan = FaultPlan(seed=3).add("launch", count=1).add("alloc", count=2)
        assert len(plan.specs) == 2


class TestDrawSemantics:
    def test_count_budget_exhausts(self):
        plan = FaultPlan().add("alloc", count=2)
        assert plan.draw("alloc", "oom", "x") is not None
        assert plan.draw("alloc", "oom", "x") is not None
        assert plan.draw("alloc", "oom", "x") is None
        assert plan.counters.injected == 2

    def test_match_glob_filters_targets(self):
        plan = FaultPlan().add("launch", count=5, match="fus_*")
        assert plan.draw("launch", "transient", "eval_k0") is None
        assert plan.draw("launch", "transient", "fus_k1") is not None

    def test_count_mode_consumes_no_rng_state(self):
        """Count-mode specs must not perturb the RNG stream: the bits a
        later corruption flips are independent of how many count-mode
        draws preceded it."""
        a = FaultPlan(seed=11).add("alloc", count=3)
        b = FaultPlan(seed=11).add("alloc", count=3)
        for _ in range(3):
            a.draw("alloc", "oom", "t")
        b.draw("alloc", "oom", "t")
        assert a.rng.integers(1 << 30) == b.rng.integers(1 << 30)

    def test_rate_mode_is_seed_deterministic(self):
        def fire_pattern(seed):
            plan = FaultPlan(seed=seed).add("h2d", rate=0.3)
            return [plan.draw("h2d", "bitflip", "t") is not None
                    for _ in range(64)]

        assert fire_pattern(5) == fire_pattern(5)
        assert fire_pattern(5) != fire_pattern(6)

    def test_recovery_bookkeeping(self):
        plan = FaultPlan().add("launch", count=1)
        event = plan.draw("launch", "transient", "k")
        assert not plan.all_recovered()
        plan.record_recovery(event, "relaunched", retries=2,
                             backoff_s=6e-6)
        assert plan.all_recovered()
        c = plan.counters
        assert (c.injected, c.recovered, c.retries) == (1, 1, 2)
        assert c.backoff_s == pytest.approx(6e-6)
        # recovering twice must not double-count
        plan.record_recovery(event, "again")
        assert plan.counters.recovered == 1


class TestTrace:
    def test_trace_json_shape(self):
        plan = parse_plan("seed=9,alloc=1x")
        event = plan.draw("alloc", "oom", "4096")
        plan.record_recovery(event, "spilled and retried", retries=1)
        doc = plan.trace_json()
        assert doc["seed"] == 9
        assert doc["counters"]["injected"] == 1
        (ev,) = doc["events"]
        assert ev["site"] == "alloc" and ev["recovered"]
        assert ev["recovery"] == "spilled and retried"

    def test_trace_signature_normalizes_field_uids(self):
        a = FaultPlan(seed=1).add("h2d", count=1)
        b = FaultPlan(seed=1).add("h2d", count=1)
        ea = a.draw("h2d", "bitflip", "pagein:f4")
        eb = b.draw("h2d", "bitflip", "pagein:f123")
        a.record_recovery(ea, "retransmitted", retries=1)
        b.record_recovery(eb, "retransmitted", retries=1)
        assert a.trace_signature() == b.trace_signature()


class TestEnvironmentKnob:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert active_plan() is None

    def test_env_plan_parsed_fresh_each_call(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "plan:seed=3,alloc=1x")
        p1, p2 = active_plan(), active_plan()
        assert p1 is not p2
        assert p1.seed == p2.seed == 3
        assert [s.site for s in p1.specs] == ["alloc"]

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "plan:alloc=1x")
        mine = FaultPlan(seed=99).add("launch", count=1)
        install_plan(mine)
        try:
            assert active_plan() is mine
        finally:
            install_plan(None)

    def test_bad_env_plan_warns_once_and_is_off(self, monkeypatch):
        import warnings

        from repro.faults import plan as plan_mod

        monkeypatch.setenv("REPRO_FAULTS", "plan:bogus-site=1x")
        monkeypatch.setattr(plan_mod, "_warned_bad_specs", set())
        with pytest.warns(RuntimeWarning, match="REPRO_FAULTS"):
            assert active_plan() is None
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert active_plan() is None   # second call: silent

"""REPRO_FAULTS=off must be bitwise invisible: same results, same
modeled clocks, same stats, no fault lane — the injector guards keep
the fault-free path identical to a build without the faults layer."""

import numpy as np
import pytest

from repro.core.context import Context
from repro.faults import FaultPlan
from repro.qcd.solver import cg
from repro.qdp.fields import latt_fermion, latt_real
from repro.qdp.lattice import Lattice

DIMS = (4, 4, 4, 4)


def _workload(faults):
    """CG + explicit upload/download traffic; returns observables."""
    ctx = Context(faults=faults)
    lat = Lattice(DIMS)
    rng = np.random.default_rng(23)
    w = latt_real(lat, context=ctx)
    w.from_numpy(rng.uniform(0.5, 1.5, lat.nsites))
    b = latt_fermion(lat, context=ctx)
    b.gaussian(rng)
    x = latt_fermion(lat, context=ctx)

    def apply_op(dest, src):
        dest.assign(w.ref() * src.ref())

    res = cg(apply_op, x, b, tol=1e-10, max_iter=200)
    ctx.flush()
    stats = ctx.device.stats
    return {
        "x": x.to_numpy(),
        "iterations": res.iterations,
        "clock": ctx.device.clock,
        "kernel_launches": stats.kernel_launches,
        "modeled_kernel_time_s": stats.modeled_kernel_time_s,
        "bytes_h2d": stats.bytes_h2d,
        "bytes_d2h": stats.bytes_d2h,
        "lane_busy": ctx.device.runtime.timeline.lane_busy(),
        "ctx": ctx,
    }


class TestOffIdentity:
    def test_off_equals_disabled_bitwise(self, monkeypatch):
        """Env default (unset), explicit off, and faults=False all
        produce bit-identical runs."""
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        default = _workload(None)
        monkeypatch.setenv("REPRO_FAULTS", "off")
        explicit_off = _workload(None)
        disabled = _workload(False)
        empty_plan = _workload(FaultPlan(seed=1))   # no specs => inert
        for run in (explicit_off, disabled, empty_plan):
            assert np.array_equal(run["x"], default["x"])
            for key in ("iterations", "clock", "kernel_launches",
                        "modeled_kernel_time_s", "bytes_h2d",
                        "bytes_d2h", "lane_busy"):
                assert run[key] == default[key], key

    def test_off_run_has_no_fault_lane_and_zero_counters(self,
                                                         monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        run = _workload(None)
        assert "fault" not in run["lane_busy"]
        ctx = run["ctx"]
        assert not ctx.device.faults.active
        assert ctx.stats.faults_injected == 0
        assert ctx.stats.faults_recovered == 0
        assert ctx.stats.retries == 0
        assert ctx.stats.backoff_s == 0.0
        assert ctx.stats.solver_restarts == 0

    def test_faulted_run_same_solution_different_clock(self):
        """A faulted run must land on the same converged solution but
        honestly pay for its recoveries in modeled time."""
        clean = _workload(False)
        plan = (FaultPlan(seed=42).add("launch", count=2)
                .add("h2d", count=1))
        faulted = _workload(plan)
        assert plan.all_recovered()
        assert np.allclose(faulted["x"], clean["x"],
                           rtol=1e-8, atol=1e-12)
        assert faulted["clock"] > clean["clock"]
        assert faulted["lane_busy"].get("fault", 0) > 0
        assert faulted["lane_busy"]["fault"] == \
            pytest.approx(plan.counters.backoff_s)

"""Sticky launch-failure tests: injected per-block-size failures drive
the auto-tuner's halving series exactly like the paper's
discover-by-failure start (Sec. VII)."""

import numpy as np

from repro.device import Autotuner, Device, Phase
from repro.driver import compile_ptx
from repro.faults import FaultPlan

from .test_device_faults import _double_kernel


def _env(plan, *, regs=None, name="dbl"):
    dev = Device(faults=plan)
    module = _double_kernel(name)
    compiled = compile_ptx(module.render())
    if regs is not None:
        compiled.regs_per_thread = regs
    n = 32768
    addr = dev.mem_alloc(n * 8)
    dev.memcpy_htod(addr, np.ones(n))
    return dev, module, compiled, {"p_n": n, "p_x": addr}, n, addr


class TestStickyHalving:
    def test_probe_halves_past_poisoned_sizes(self):
        """Depth-2 sticky poison: 1024 and 512 always fail; the tuner
        must settle at 256 on payload launches."""
        plan = FaultPlan(seed=30).add("launch.sticky", count=2,
                                      match="dbl")
        dev, module, compiled, params, n, _ = _env(plan)
        tuner = Autotuner(dev)
        for _ in range(12):
            tuner.launch(compiled, module.info, params, n, "f64")
        st = tuner.state(compiled.name)
        assert st.phase is Phase.TUNED
        assert st.best_block == 256
        assert max(b for b, _ in st.history) == 256
        assert dev.stats.launch_failures == 2        # 1024, 512
        # the settled tuner is the recovery: both sticky events closed
        assert plan.counters.injected == 2
        assert plan.all_recovered()
        for event in plan.trace:
            assert "settled at block size 256" in event.recovery

    def test_tuned_size_cached_no_more_failures(self):
        """After settling, further launches reuse the tuned block: the
        poisoned sizes are never probed again."""
        plan = FaultPlan(seed=30).add("launch.sticky", count=1,
                                      match="dbl")
        dev, module, compiled, params, n, _ = _env(plan)
        tuner = Autotuner(dev)
        for _ in range(20):
            tuner.launch(compiled, module.info, params, n, "f64")
        failures_at_settle = dev.stats.launch_failures
        for _ in range(10):
            tuner.launch(compiled, module.info, params, n, "f64")
        assert dev.stats.launch_failures == failures_at_settle == 1
        assert tuner.state(compiled.name).best_block == 512

    def test_results_correct_despite_failures(self):
        plan = FaultPlan(seed=30).add("launch.sticky", count=2,
                                      match="dbl")
        dev, module, compiled, params, n, addr = _env(plan)
        tuner = Autotuner(dev)
        for _ in range(6):
            tuner.launch(compiled, module.info, params, n, "f64")
        out = dev.memcpy_dtoh(addr, n * 8, np.float64)
        assert np.allclose(out, 2.0 ** 6)

    def test_static_seed_skips_poisoned_prefix(self):
        """A register-bound kernel seeds its probe at 256; sticky
        poison on 1024/512 then never fires — the static bound and the
        fault plan agree on which sizes are unlaunchable."""
        plan = FaultPlan(seed=30).add("launch.sticky", count=2,
                                      match="fat")
        dev, module, compiled, params, n, _ = _env(plan, regs=160,
                                                   name="fat")
        tuner = Autotuner(dev)
        tuner.launch(compiled, module.info, params, n, "f64")
        st = tuner.state(compiled.name)
        assert st.failures == 0
        assert dev.stats.launch_failures == 0
        assert plan.counters.injected == 0           # never reached
        assert max(b for b, _ in st.history) == 256

    def test_sticky_only_hits_matching_kernels(self):
        plan = FaultPlan(seed=30).add("launch.sticky", count=2,
                                      match="other_*")
        dev, module, compiled, params, n, _ = _env(plan)
        tuner = Autotuner(dev)
        tuner.launch(compiled, module.info, params, n, "f64")
        assert dev.stats.launch_failures == 0
        assert plan.counters.injected == 0

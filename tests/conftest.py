"""Shared fixtures.

Most tests share one default context (kernel caches stay warm, which
keeps the suite fast); tests that exercise memory pressure, spilling
or device statistics build private contexts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.context import Context, qdp_init, set_default_context
from repro.qdp.lattice import Lattice


@pytest.fixture(scope="session")
def ctx() -> Context:
    """A session-wide default context (shared kernel caches)."""
    return qdp_init()


@pytest.fixture()
def fresh_ctx():
    """A private context; restores the previous default afterwards."""
    from repro.core import context as context_mod

    old = context_mod._default_context
    c = qdp_init()
    yield c
    set_default_context(old)


@pytest.fixture(scope="session")
def lat4(ctx) -> Lattice:
    """The workhorse 4^4 lattice."""
    return Lattice((4, 4, 4, 4))


@pytest.fixture(scope="session")
def lat_small(ctx) -> Lattice:
    """A tiny lattice for expensive flows (HMC trajectories)."""
    return Lattice((2, 2, 2, 4))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)

"""Tests for the machine models (paper Sec. VIII-A platforms)."""

from repro.perfmodel.machines import (
    BLUEWATERS_XE,
    BLUEWATERS_XK,
    INTERLAGOS,
    JLAB_12K,
    MACHINES,
    TITAN_XK,
)


class TestNodeModels:
    def test_xe_is_dual_socket_no_gpu(self):
        assert BLUEWATERS_XE.sockets == 2
        assert BLUEWATERS_XE.gpu is None

    def test_xk_single_socket_with_k20x(self):
        """Paper Sec. VIII-A: XK nodes comprise 1 Interlagos and 1
        GK110 Kepler accelerator."""
        assert BLUEWATERS_XK.sockets == 1
        assert BLUEWATERS_XK.gpu is not None
        assert "K20x" in BLUEWATERS_XK.gpu.name

    def test_jlab_node(self):
        """12k nodes: dual Xeon E5-2650 with K20m (Sec. VIII-A)."""
        assert JLAB_12K.sockets == 2
        assert JLAB_12K.socket.name.startswith("xeon")
        assert "K20m" in JLAB_12K.gpu.name

    def test_titan_nearly_bluewaters(self):
        """Fig. 8's premise: same node hardware, slightly different
        Gemini configuration."""
        assert TITAN_XK.gpu == BLUEWATERS_XK.gpu
        assert TITAN_XK.socket == BLUEWATERS_XK.socket
        rel = abs(TITAN_XK.network.bandwidth
                  - BLUEWATERS_XK.network.bandwidth) \
            / BLUEWATERS_XK.network.bandwidth
        assert 0 < rel < 0.1

    def test_registry(self):
        assert set(MACHINES) == {"bluewaters-xe", "bluewaters-xk",
                                 "titan-xk", "jlab-12k"}

    def test_gpu_dwarfs_cpu_socket(self):
        """The premise of the whole paper: the accelerator's memory
        bandwidth is an order of magnitude beyond the socket's."""
        assert (BLUEWATERS_XK.gpu.peak_bandwidth
                > 8 * INTERLAGOS.sustained_bandwidth)

"""Tests for the figure-regeneration models: every quantitative claim
of the paper's evaluation section, with tolerances."""

import numpy as np
import pytest

from repro.device import K20M_ECC_ON, K20X_ECC_OFF
from repro.perfmodel import (
    figure_4_5,
    figure_6,
    figure_7,
    figure_8,
    generate_test_kernels,
    node_hours,
    resource_cost_factor,
    speedup,
    trajectory_time,
)


@pytest.fixture(scope="module")
def fig6():
    return figure_6(ls=[8, 16, 24, 32, 40])


class TestFigure45:
    """Fig. 4/5: sustained bandwidth vs volume, SP and DP."""

    def test_plateau_at_79_percent(self):
        curves = figure_4_5("f64", ls=[24, 28])
        peak = K20X_ECC_OFF.peak_bandwidth / 1e9
        for name, pts in curves.items():
            frac = pts[-1][1] / peak
            assert 0.74 <= frac <= 0.80, name

    def test_curves_collapse(self):
        """Paper: 'the curves ... (nearly) fall on top of each other'.
        Small volumes amortize the launch overhead differently, so a
        larger spread is tolerated on the rising flank."""
        curves = figure_4_5("f32", ls=[8, 16, 24])
        tolerances = {8: 0.20, 16: 0.10, 24: 0.05}
        for i, l in enumerate((8, 16, 24)):
            vals = [pts[i][1] for pts in curves.values()]
            spread = (max(vals) - min(vals)) / max(vals)
            assert spread < tolerances[l], l

    def test_sp_shoulder_at_16(self):
        curves = figure_4_5("f32", ls=[8, 12, 16, 28])
        for pts in curves.values():
            d = dict(pts)
            assert d[16] >= 0.9 * d[28]     # shoulder reached
            assert d[8] <= 0.55 * d[28]     # still rising before

    def test_dp_shoulder_at_12(self):
        curves = figure_4_5("f64", ls=[8, 12, 28])
        for pts in curves.values():
            d = dict(pts)
            assert d[12] >= 0.85 * d[28]

    def test_monotone_rise(self):
        curves = figure_4_5("f64", ls=list(range(2, 29, 2)))
        for pts in curves.values():
            vals = [v for _, v in pts]
            assert all(b >= a for a, b in zip(vals, vals[1:]))

    def test_table_ii_arithmetic_intensities(self):
        stats = generate_test_kernels("f64")
        paper = {"lcm": 0.458, "upsi": 0.5, "spmat": 0.62,
                 "matvec": 0.64, "clover": 0.525}
        for name, ai in paper.items():
            assert stats[name].flop_per_byte == pytest.approx(ai,
                                                              abs=0.006)


class TestFigure6:
    """Fig. 6: Dslash with/without overlap, 2 GPUs, K20m ECC on."""

    def test_overlap_wins_everywhere(self, fig6):
        for prec in ("sp", "dp"):
            ov = dict(fig6[f"{prec}_overlap"])
            no = dict(fig6[f"{prec}_nooverlap"])
            for l in ov:
                assert ov[l] >= no[l]

    def test_sp_gain_near_11_percent(self, fig6):
        ov = dict(fig6["sp_overlap"])
        no = dict(fig6["sp_nooverlap"])
        gain = ov[40] / no[40] - 1
        assert 0.05 <= gain <= 0.20    # paper: 11%

    def test_dp_gain_positive_and_moderate(self, fig6):
        ov = dict(fig6["dp_overlap"])
        no = dict(fig6["dp_nooverlap"])
        gain = ov[32] / no[32] - 1
        assert 0.03 <= gain <= 0.20    # paper: ~7%

    def test_absolute_gflops_anchors(self, fig6):
        """Paper Sec. VIII-C: 197 GFLOPS SP @40^4, 90 DP @32^4."""
        assert dict(fig6["sp_overlap"])[40] == pytest.approx(197, rel=0.06)
        assert dict(fig6["dp_overlap"])[32] == pytest.approx(90, rel=0.06)

    def test_quda_headroom_factors(self, fig6):
        """QUDA / QDP-JIT: 1.76x SP, 1.9x DP (paper Sec. VIII-C)."""
        from repro.quda import quda_dslash_gflops

        sp = quda_dslash_gflops(K20M_ECC_ON, 40 ** 4, "f32") \
            / dict(fig6["sp_overlap"])[40]
        dp = quda_dslash_gflops(K20M_ECC_ON, 32 ** 4, "f64") \
            / dict(fig6["dp_overlap"])[32]
        assert sp == pytest.approx(1.76, rel=0.08)
        assert dp == pytest.approx(1.9, rel=0.08)

    def test_gflops_grow_with_volume(self, fig6):
        for curve in fig6.values():
            vals = [v for _, v in curve]
            assert all(b >= a * 0.99 for a, b in zip(vals, vals[1:]))


class TestFigure7:
    """Fig. 7: HMC strong scaling on Blue Waters."""

    def test_speedup_anchors_at_128(self):
        assert speedup("cpu+quda", 128) == pytest.approx(2.2, rel=0.08)
        assert speedup("qdpjit+quda", 128) == pytest.approx(11.0, rel=0.08)

    def test_speedup_anchors_at_800(self):
        assert speedup("cpu+quda", 800) == pytest.approx(1.8, rel=0.08)
        assert speedup("qdpjit+quda", 800) == pytest.approx(3.7, rel=0.08)

    def test_qdpjit_vs_cpuquda_at_800(self):
        """Paper: 'a speedup factor of ~2.0 for 800 GPUs'."""
        f = (trajectory_time("cpu+quda", 800)
             / trajectory_time("qdpjit+quda", 800))
        assert f == pytest.approx(2.0, rel=0.08)

    def test_ordering_everywhere(self):
        for p in (128, 256, 400, 512, 800):
            assert (trajectory_time("qdpjit+quda", p)
                    < trajectory_time("cpu+quda", p)
                    < trajectory_time("cpu", p))

    def test_cpu_scaling_flattens(self):
        """Good scaling to 400 sockets, marginal 800 -> 1600."""
        t128 = trajectory_time("cpu", 128)
        t400 = trajectory_time("cpu", 400)
        t800 = trajectory_time("cpu", 800)
        t1600 = trajectory_time("cpu", 1600)
        assert t400 < 0.45 * t128        # near-ideal early scaling
        assert (t800 - t1600) / t800 < 0.10   # marginal at the end

    def test_resource_cost_factor_5(self):
        """258 vs 52 node-hours at 128 nodes => ~5x cheaper."""
        assert node_hours("cpu+quda", 128) == pytest.approx(258, rel=0.1)
        assert node_hours("qdpjit+quda", 128) == pytest.approx(52, rel=0.1)
        assert resource_cost_factor(128) == pytest.approx(5.0, rel=0.1)

    def test_figure_7_structure(self):
        fig = figure_7()
        assert set(fig) == {"cpu", "cpu+quda", "qdpjit+quda"}
        assert fig["cpu"][-1][0] == 1600
        assert fig["cpu+quda"][-1][0] == 800


class TestFigure8:
    def test_titan_hardly_distinguishable(self):
        """Paper Fig. 8: Blue Waters and Titan nearly coincide."""
        fig = figure_8()
        for (p1, bw), (p2, ti) in zip(fig["bluewaters"], fig["titan"]):
            assert p1 == p2
            assert abs(ti - bw) / bw < 0.08

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            trajectory_time("gpu-magic", 128)
        with pytest.raises(ValueError):
            trajectory_time("cpu", 0)


class TestJITOverheadClaim:
    def test_trajectory_jit_overhead_band(self):
        """Paper Sec. VIII-D: ~200 kernels at 0.05-0.22 s each =>
        10-30 s per trajectory, negligible."""
        from repro.driver.jitcompiler import modeled_jit_time

        total = sum(modeled_jit_time(n)
                    for n in np.random.default_rng(0).integers(
                        30, 400, size=200))
        assert 10.0 <= total <= 40.0

"""Property-based tests (hypothesis) on core data structures and
algebraic invariants of the expression pipeline."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.memory.pool import ALIGNMENT, DevicePool, DeviceOutOfMemory
from repro.qdp.lattice import Lattice
from repro.qdp.typesys import TypeSpec, tri_index, tri_unindex

_slow = settings(max_examples=25,
                 suppress_health_check=[HealthCheck.too_slow],
                 deadline=None)


# --- allocator ------------------------------------------------------------

@_slow
@given(st.lists(st.integers(min_value=1, max_value=4096),
                min_size=1, max_size=40))
def test_allocator_never_overlaps(sizes):
    pool = DevicePool(1 << 20)
    live = {}
    for i, size in enumerate(sizes):
        try:
            addr = pool.allocate(size)
        except DeviceOutOfMemory:
            continue
        live[addr] = pool.allocation_size(addr)
        if i % 3 == 2 and live:
            victim = next(iter(live))
            pool.free(victim)
            del live[victim]
    spans = sorted((a, a + s) for a, s in live.items())
    for (a0, e0), (a1, e1) in zip(spans, spans[1:]):
        assert e0 <= a1, "allocations overlap"
    for a in spans:
        assert a[0] % ALIGNMENT == 0


@_slow
@given(st.lists(st.integers(min_value=1, max_value=65536),
                min_size=1, max_size=30))
def test_allocator_full_free_restores_capacity(sizes):
    pool = DevicePool(1 << 20)
    addrs = []
    for s in sizes:
        try:
            addrs.append(pool.allocate(s))
        except DeviceOutOfMemory:
            break
    initial_free = pool.capacity - ALIGNMENT
    for a in addrs:
        pool.free(a)
    assert pool.bytes_free == initial_free
    assert pool.largest_free_extent == initial_free


# --- layout function ---------------------------------------------------------

_spec_strategy = st.builds(
    TypeSpec,
    spin=st.sampled_from([(), (4,), (4, 4), (2,)]),
    color=st.sampled_from([(), (3,), (3, 3), (6,)]),
    is_complex=st.booleans(),
    precision=st.sampled_from(["f32", "f64"]),
)


@_slow
@given(_spec_strategy)
def test_layout_bijective(spec):
    seen = set()
    for s in spec.spin_indices():
        for c in spec.color_indices():
            for r in range(spec.reality_size):
                seen.add(spec.word_index(s, c, r))
    assert seen == set(range(spec.words_per_site))


@_slow
@given(st.integers(0, 14))
def test_triangular_packing_roundtrip(k):
    i, j = tri_unindex(k)
    assert tri_index(i, j) == k


# --- lattice geometry --------------------------------------------------------

_dims_strategy = st.lists(st.sampled_from([2, 4, 6]), min_size=2,
                          max_size=4)


@_slow
@given(_dims_strategy, st.integers(0, 3), st.sampled_from([1, -1]))
def test_shift_maps_are_permutations(dims, mu, sign):
    lat = Lattice(tuple(dims))
    mu = mu % lat.nd
    t = lat.shift_map(mu, sign)
    assert sorted(t) == list(range(lat.nsites))
    tinv = lat.shift_map(mu, -sign)
    assert np.array_equal(t[tinv], np.arange(lat.nsites))


@_slow
@given(_dims_strategy)
def test_checkerboard_halves(dims):
    lat = Lattice(tuple(dims))
    assert len(lat.even) == len(lat.odd) == lat.nsites // 2


# --- expression pipeline invariants --------------------------------------

@pytest.fixture(scope="module")
def _linctx():
    from repro.core.context import Context

    return Context()


@_slow
@given(alpha=st.complex_numbers(max_magnitude=10, allow_nan=False,
                                allow_infinity=False),
       beta=st.complex_numbers(max_magnitude=10, allow_nan=False,
                               allow_infinity=False),
       seed=st.integers(0, 2**31 - 1))
def test_evaluation_linearity(_linctx, alpha, beta, seed):
    """dest = alpha*a + beta*b through the kernel pipeline equals the
    NumPy result for arbitrary complex coefficients."""
    from repro.qdp.fields import latt_fermion

    lat = Lattice((2, 2, 2, 2))
    rng = np.random.default_rng(seed)
    a = latt_fermion(lat, context=_linctx)
    b = latt_fermion(lat, context=_linctx)
    a.gaussian(rng)
    b.gaussian(rng)
    out = latt_fermion(lat, context=_linctx)
    out.assign(alpha * a + beta * b)
    ref = alpha * a.to_numpy() + beta * b.to_numpy()
    assert np.allclose(out.to_numpy(), ref, rtol=1e-12, atol=1e-12)


@_slow
@given(seed=st.integers(0, 2**31 - 1))
def test_adj_involution(_linctx, seed):
    """adj(adj(U)) = U through the pipeline."""
    from repro.core.expr import adj
    from repro.qdp.fields import latt_color_matrix

    lat = Lattice((2, 2, 2, 2))
    rng = np.random.default_rng(seed)
    u = latt_color_matrix(lat, context=_linctx)
    u.gaussian(rng)
    out = latt_color_matrix(lat, context=_linctx)
    out.assign(adj(adj(u)))
    assert np.array_equal(out.to_numpy(), u.to_numpy())


@_slow
@given(seed=st.integers(0, 2**31 - 1), mu=st.integers(0, 3),
       sign=st.sampled_from([1, -1]))
def test_shift_inverse_roundtrip(_linctx, seed, mu, sign):
    """shift back and forth returns the original field exactly."""
    from repro.core.expr import shift
    from repro.qdp.fields import latt_fermion

    lat = Lattice((2, 4, 2, 4))
    rng = np.random.default_rng(seed)
    a = latt_fermion(lat, context=_linctx)
    a.gaussian(rng)
    out = latt_fermion(lat, context=_linctx)
    out.assign(shift(shift(a.ref(), 1 * sign, mu), -1 * sign, mu))
    assert np.array_equal(out.to_numpy(), a.to_numpy())


@_slow
@given(seed=st.integers(0, 2**31 - 1))
def test_norm_triangle_inequality(_linctx, seed):
    from repro.core.reduction import norm2
    from repro.qdp.fields import latt_fermion

    lat = Lattice((2, 2, 2, 2))
    rng = np.random.default_rng(seed)
    a = latt_fermion(lat, context=_linctx)
    b = latt_fermion(lat, context=_linctx)
    a.gaussian(rng)
    b.gaussian(rng)
    na = norm2(a) ** 0.5
    nb = norm2(b) ** 0.5
    nab = norm2(a + b) ** 0.5
    assert nab <= na + nb + 1e-9


@_slow
@given(seed=st.integers(0, 2**31 - 1))
def test_cauchy_schwarz(_linctx, seed):
    from repro.core.reduction import innerProduct, norm2
    from repro.qdp.fields import latt_fermion

    lat = Lattice((2, 2, 2, 2))
    rng = np.random.default_rng(seed)
    a = latt_fermion(lat, context=_linctx)
    b = latt_fermion(lat, context=_linctx)
    a.gaussian(rng)
    b.gaussian(rng)
    assert abs(innerProduct(a, b)) ** 2 <= norm2(a) * norm2(b) * (1 + 1e-9)

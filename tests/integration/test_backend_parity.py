"""Suite-wide bitwise parity: ``REPRO_BACKEND=cpu`` vs ``sim``.

The compiled NumPy backend's contract is bitwise identity on every
observable memory effect — not "close", *identical*.  These tests run
the full kernel-family suite (Wilson dslash both signs, the packed
clover operator, the reduction kernels, the halo face copies) under
both backends and compare raw results, under both the verifying and
the optimizing IR pipeline (the backend compiles post-``REPRO_IR``
PTX, so both paths must hold).
"""

import numpy as np
import pytest


def _run_suite(monkeypatch, backend, ir_mode):
    """Run every kernel family on a fresh context; return outputs."""
    monkeypatch.setenv("REPRO_BACKEND", backend)
    monkeypatch.setenv("REPRO_IR", ir_mode)

    from repro.core.context import Context, set_default_context
    from repro.core.reduction import innerProduct, norm2, sum_sites
    from repro.qcd.cloverop import CloverOperator, CloverParams
    from repro.qcd.dslash import WilsonDslash
    from repro.qcd.gauge import weak_gauge
    from repro.qdp.fields import latt_complex, latt_fermion
    from repro.qdp.lattice import Lattice

    ctx = Context(autotune=False)
    old = None
    try:
        from repro.core import context as context_mod

        old = context_mod._default_context
        set_default_context(ctx)
        lat = Lattice((4, 4, 4, 4))
        rng = np.random.default_rng(7)
        u = weak_gauge(lat, rng, eps=0.3, context=ctx)
        psi = latt_fermion(lat, context=ctx)
        psi.gaussian(rng)
        chi = latt_fermion(lat, context=ctx)
        dest = latt_fermion(lat, context=ctx)

        out = []
        dslash = WilsonDslash(u)
        dslash(dest, psi)
        out.append(dest.to_numpy().copy())
        dslash(chi, psi, sign=-1)
        out.append(chi.to_numpy().copy())
        clov = CloverOperator(u, CloverParams(kappa=0.12, clover_coeff=1.0))
        clov.apply(dest, psi)
        out.append(dest.to_numpy().copy())
        clov.apply_dagger(chi, psi)
        out.append(chi.to_numpy().copy())
        out.append(norm2(psi, context=ctx))
        out.append(innerProduct(chi, psi, context=ctx))
        z = latt_complex(lat, context=ctx)
        z.gaussian(rng)
        out.append(sum_sites(z.ref() * z.ref(), context=ctx))
        ctx.flush()

        from repro.comm.faces import build_gather_kernel, build_scatter_kernel

        for build in (build_gather_kernel, build_scatter_kernel):
            module = build(24, "f64", ir_stats=ctx.stats.ir)
            ctx.kernel_cache.get_or_compile(module.render())

        stats = ctx.stats.backend
        return out, stats
    finally:
        set_default_context(old)


@pytest.mark.parametrize("ir_mode", ["verify", "opt"])
class TestBitwiseParity:
    def test_cpu_matches_sim_bitwise(self, monkeypatch, ir_mode):
        ref, _ = _run_suite(monkeypatch, "sim", ir_mode)
        got, stats = _run_suite(monkeypatch, "cpu", ir_mode)
        assert len(ref) == len(got)
        for i, (a, b) in enumerate(zip(ref, got)):
            assert np.array_equal(np.asarray(a), np.asarray(b)), \
                f"output {i} differs under REPRO_IR={ir_mode}"
        # every suite kernel compiled — no silent sim fallback hid a gap
        assert stats.fallbacks == 0, stats.fallback_kernels
        assert stats.kernels.get("cpu", 0) > 0
        assert stats.kernels.get("cpu") == stats.kernels.get("sim")

    def test_cpu_backend_actually_launched(self, monkeypatch, ir_mode):
        _, stats = _run_suite(monkeypatch, "cpu", ir_mode)
        assert sum(stats.launches.values()) > 0
        assert stats.launches.get("sim") is None   # nothing fell back

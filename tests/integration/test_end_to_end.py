"""End-to-end integration tests: the paper's central claims exercised
through the whole stack in one place."""

import numpy as np
import pytest

from repro.core.context import Context
from repro.core.reduction import norm2
from repro.qcd.gauge import plaquette, weak_gauge
from repro.qcd.wilson import WilsonOperator, WilsonParams
from repro.qdp.fields import latt_fermion
from repro.qdp.lattice import Lattice


class TestUnalteredApplicationClaim:
    """Paper abstract: 'applications can be run unaltered' — the same
    high-level code runs against differently configured backends."""

    def _workload(self, ctx, seed=3):
        lat = Lattice((4, 4, 4, 4))
        rng = np.random.default_rng(seed)
        u = weak_gauge(lat, rng, context=ctx)
        m = WilsonOperator(u, WilsonParams(kappa=0.12))
        psi = latt_fermion(lat, context=ctx)
        psi.gaussian(rng)
        out = latt_fermion(lat, context=ctx)
        m.apply(out, psi)
        return plaquette(u, lat), norm2(out, context=ctx)

    def test_same_results_across_device_configs(self):
        from repro.device.specs import K20M_ECC_ON, K20X_ECC_OFF

        results = []
        for spec in (K20X_ECC_OFF, K20M_ECC_ON):
            for autotune in (True, False):
                ctx = Context(spec, autotune=autotune)
                results.append(self._workload(ctx))
        ref = results[0]
        for r in results[1:]:
            assert r[0] == pytest.approx(ref[0], rel=1e-14)
            assert r[1] == pytest.approx(ref[1], rel=1e-14)

    def test_same_results_under_memory_pressure(self):
        """The software cache must be transparent: a pool that can
        barely hold the working set yields identical physics."""
        big = Context()
        small = Context(pool_capacity=14 * 24 * 256 * 8 + (1 << 17))
        assert self._workload(big) == pytest.approx(
            self._workload(small), rel=1e-14)


class TestGeneratedCodeQuality:
    def test_all_generated_ptx_verifies(self, ctx, lat4, rng):
        """Every kernel the expression layer generates must pass the
        static verifier and recompile from its own text."""
        from repro.driver import compile_ptx
        from repro.ptx.verifier import verify

        u = weak_gauge(lat4, rng)
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        out = latt_fermion(lat4)
        m = WilsonOperator(u, WilsonParams(kappa=0.1))
        m.apply(out, psi)
        norm2(out)
        checked = 0
        for entry in ctx.module_cache.values():
            module = entry[0]
            verify(module)
            k = compile_ptx(module.render())
            assert k.name == module.name
            checked += 1
        assert checked >= 3

    def test_kernel_population_scale(self):
        """A full application pass generates tens of distinct kernels
        (paper: ~200 for a production trajectory); each compiles in
        the 0.05-0.22 s modeled band."""
        ctx = Context()
        lat = Lattice((2, 2, 2, 4))
        rng = np.random.default_rng(9)
        from repro.hmc import GaugeMonomial, Level, MultiTimescaleIntegrator, HMC, TwoFlavorWilsonMonomial

        u = weak_gauge(lat, rng, context=ctx)
        mono = TwoFlavorWilsonMonomial(WilsonParams(kappa=0.08), tol=1e-8)
        integ = MultiTimescaleIntegrator([
            Level([mono], n_steps=1),
            Level([GaugeMonomial(beta=5.5)], n_steps=2),
        ])
        hmc = HMC(u, integ, rng)
        hmc.trajectory(tau=0.1)
        n = ctx.kernel_cache.stats.n_kernels
        assert 10 <= n <= 200
        per_kernel = (ctx.kernel_cache.stats.total_modeled_compile_seconds
                      / n)
        assert 0.05 <= per_kernel <= 0.25

    def test_wall_clock_compile_is_fast(self):
        """Our driver JIT's real compile times stay tiny (the paper's
        point: JIT-from-PTX is quick, unlike calling nvcc)."""
        ctx = Context()
        lat = Lattice((4, 4, 4, 4))
        rng = np.random.default_rng(1)
        a = latt_fermion(lat, context=ctx)
        a.gaussian(rng)
        b = latt_fermion(lat, context=ctx)
        b.assign(2.0 * a + a)
        assert ctx.kernel_cache.stats.total_compile_seconds < 1.0


class TestPrecisionPaths:
    @pytest.mark.parametrize("precision", ["f32", "f64"])
    def test_full_operator_in_both_precisions(self, ctx, rng, precision):
        lat = Lattice((4, 4, 4, 4))
        u = weak_gauge(lat, rng, precision=precision)
        m = WilsonOperator(u, WilsonParams(kappa=0.12),
                           precision=precision)
        psi = latt_fermion(lat, precision=precision)
        psi.gaussian(rng)
        out = latt_fermion(lat, precision=precision)
        m.apply(out, psi)
        # compare against an f64 recomputation of the same data
        u64 = [f.astype("f64") for f in u]
        from repro.qdp.fields import multi1d

        m64 = WilsonOperator(multi1d(u64), WilsonParams(kappa=0.12))
        psi64 = psi.astype("f64")
        out64 = latt_fermion(lat)
        m64.apply(out64, psi64)
        tol = 1e-5 if precision == "f32" else 1e-13
        assert np.allclose(out.to_numpy(), out64.to_numpy(), atol=tol,
                           rtol=tol)

"""Smoke tests: the fast example scripts must run end to end.

(The HMC and solver examples are exercised by their own integration
tests; running them as subprocesses here would double the suite's
runtime for no extra coverage.)
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.parametrize("script,expect", [
    ("quickstart.py", "auto-tuned block sizes"),
    ("clover_custom_op.py", "flop/byte = 0.525"),
    ("llvm_backend.py", "bit-identical: True"),
])
def test_example_runs(script, expect):
    out = _run(script)
    assert expect in out

"""Property test: every generated expression kernel passes the full
static-verification pipeline (no error diagnostics, bounds guard in
place) for random well-formed expressions."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.codegen import build_expression_kernel
from repro.core.expr import shift
from repro.diagnostics import errors
from repro.ptx.verifier import run_passes
from repro.qdp.fields import latt_complex
from repro.qdp.lattice import Lattice

_slow = settings(max_examples=25,
                 suppress_health_check=[HealthCheck.too_slow],
                 deadline=None)


@pytest.fixture(scope="module")
def flds(ctx):
    lat = Lattice((4, 4, 4, 4))
    return latt_complex(lat), latt_complex(lat)


# A random expression tree: leaves are field references, shifted field
# references (shift applied to leaves only — the evaluator's
# normalized form), or scalar-scaled fields; inner nodes are + - *.
_leaf = st.one_of(
    st.tuples(st.just("f"), st.sampled_from([0, 1])),
    st.tuples(st.just("shift"), st.sampled_from([0, 1]),
              st.integers(min_value=0, max_value=3),
              st.sampled_from([+1, -1])),
    st.tuples(st.just("scale"), st.sampled_from([0, 1]),
              st.floats(min_value=-2.0, max_value=2.0,
                        allow_nan=False, allow_infinity=False)),
)
_tree = st.recursive(
    _leaf,
    lambda kids: st.tuples(st.sampled_from(["+", "-", "*"]), kids, kids),
    max_leaves=8)


def _interp(tree, fields):
    kind = tree[0]
    if kind == "f":
        return fields[tree[1]].ref()
    if kind == "shift":
        return shift(fields[tree[1]].ref(), tree[3], tree[2])
    if kind == "scale":
        return fields[tree[1]].ref() * tree[2]
    op, left, right = tree
    a, b = _interp(left, fields), _interp(right, fields)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    return a * b


@_slow
@given(tree=_tree, subset_mode=st.booleans())
def test_generated_kernels_verify_clean(flds, tree, subset_mode):
    expr = _interp(tree, flds)
    module, _plan = build_expression_kernel("prop_verify", expr,
                                            flds[0].spec, subset_mode)
    diagnostics = run_passes(module)
    assert not errors(diagnostics), [d.render() for d in diagnostics]
    # the generator's tid < nsites guard must dominate every access
    assert not [d for d in diagnostics if d.pass_name == "proven-bounds"]

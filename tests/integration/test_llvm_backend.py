"""Tests for the LLVM backend (paper Sec. XI, Future Work).

Every kernel family the expression layer generates is transpiled to
LLVM IR and executed on the CPU target; results must be bit-identical
to the PTX driver's."""

import math

import numpy as np
import pytest

from repro.core.context import Context
from repro.llvm import LLVMBackend, TranspileError, transpile
from repro.qdp.fields import latt_color_matrix, latt_fermion, latt_real
from repro.qdp.lattice import Lattice

_VIEWS = ("float32", "float64", "int32", "int64", "uint32", "uint64")


def _run_llvm_and_compare(ctx, dest, build_expr, extra_fields,
                          subset=None):
    """Evaluate via PTX, snapshot, zero, re-run via LLVM, compare."""
    dest.assign(build_expr(), subset=subset)
    ref = dest.to_numpy().copy()
    module, plan, compiled = list(ctx.module_cache.values())[-1]

    # capture the parameter binding by re-walking like the evaluator
    from repro.core.expr import SlotAssigner, as_expr
    from repro.core.evaluator import _normalize, _shift_table

    expr = _normalize(as_expr(build_expr()), dest, ctx)
    ctx.flush()   # _normalize may enqueue temp-materializing statements
    slots = SlotAssigner()
    expr.signature(slots)
    lattice = dest.lattice
    sub = subset if subset is not None else lattice.all_sites
    addrs = ctx.field_cache.make_available([dest] + slots.fields)
    params = {"p_lo": lattice.nsites, "p_n": len(sub),
              "p_dst": addrs[dest.uid]}
    if not sub.is_full:
        params["p_stab"] = ctx.upload_table(
            ("subset", lattice.dims, sub.name), sub.sites)
    for i, (mu, sign) in enumerate(slots.shifts):
        params[f"p_sh{i}"] = _shift_table(ctx, lattice, mu, sign)
    for i, f in enumerate(slots.fields):
        params[f"p_f{i}"] = addrs[f.uid]
    for i, sn in enumerate(slots.scalar_slots):
        params[f"p_s{i}_re"] = sn.value.real
        if sn.spec.is_complex:
            params[f"p_s{i}_im"] = sn.value.imag

    views = {n: ctx.device.pool.view(n) for n in _VIEWS}
    start = addrs[dest.uid] >> 3
    views["float64"][start:start + dest.host.size] = 0

    kernel = LLVMBackend().get_or_compile(module.render())
    kernel(views, params, math.ceil(len(sub) / 128), 128)
    got = ctx.device.memcpy_dtoh(addrs[dest.uid], dest.nbytes,
                                 np.float64)[:dest.host.size]
    # compare raw SoA words against the PTX result
    ctx.field_cache.invalidate_device(dest)
    dest.from_numpy(ref)
    assert np.array_equal(got, dest.host), \
        f"LLVM/PTX mismatch: {np.abs(got - dest.host).max()}"


@pytest.fixture()
def llctx():
    return Context()


class TestCrossBackendAgreement:
    def test_axpy(self, llctx, rng):
        lat = Lattice((4, 4, 4, 4))
        a = latt_fermion(lat, context=llctx)
        b = latt_fermion(lat, context=llctx)
        a.gaussian(rng)
        b.gaussian(rng)
        dest = latt_fermion(lat, context=llctx)
        _run_llvm_and_compare(llctx, dest, lambda: 0.5 * a + b, [a, b])

    def test_matvec(self, llctx, rng):
        lat = Lattice((4, 4, 4, 4))
        u = latt_color_matrix(lat, context=llctx)
        psi = latt_fermion(lat, context=llctx)
        u.gaussian(rng)
        psi.gaussian(rng)
        dest = latt_fermion(lat, context=llctx)
        _run_llvm_and_compare(llctx, dest, lambda: u * psi, [u, psi])

    def test_shift(self, llctx, rng):
        from repro.core.expr import shift

        lat = Lattice((4, 4, 4, 4))
        psi = latt_fermion(lat, context=llctx)
        psi.gaussian(rng)
        dest = latt_fermion(lat, context=llctx)
        _run_llvm_and_compare(llctx, dest,
                              lambda: shift(psi.ref(), +1, 2), [psi])

    def test_subset(self, llctx, rng):
        lat = Lattice((4, 4, 4, 4))
        a = latt_fermion(lat, context=llctx)
        a.gaussian(rng)
        dest = latt_fermion(lat, context=llctx)
        _run_llvm_and_compare(llctx, dest, lambda: 2.0 * a, [a],
                              subset=lat.even)

    def test_adjoint_product(self, llctx, rng):
        from repro.core.expr import adj

        lat = Lattice((4, 4, 4, 4))
        u = latt_color_matrix(lat, context=llctx)
        psi = latt_fermion(lat, context=llctx)
        u.gaussian(rng)
        psi.gaussian(rng)
        dest = latt_fermion(lat, context=llctx)
        _run_llvm_and_compare(llctx, dest, lambda: adj(u) * psi, [u, psi])


class TestIRText:
    def _module_text(self, llctx, rng):
        lat = Lattice((4, 4, 4, 4))
        a = latt_fermion(lat, context=llctx)
        a.gaussian(rng)
        dest = latt_fermion(lat, context=llctx)
        dest.assign(2.0 * a + a)
        llctx.flush()
        module = list(llctx.module_cache.values())[-1][0]
        return module, transpile(module.render())

    def test_structure(self, llctx, rng):
        module, ir = self._module_text(llctx, rng)
        text = ir.text
        assert text.startswith("; transpiled from PTX kernel")
        assert f"define void @{module.name}(" in text
        assert "entry:" in text
        assert "ret void" in text
        assert text.rstrip().splitlines()[-1].startswith("declare") or \
            "}" in text

    def test_pointer_params(self, llctx, rng):
        _, ir = self._module_text(llctx, rng)
        assert "i8* %p_dst" in ir.text
        assert "ptrtoint i8* %p_dst to i64" in ir.text

    def test_control_flow(self, llctx, rng):
        _, ir = self._module_text(llctx, rng)
        assert "br i1 " in ir.text        # the bounds-check branch
        assert "icmp sge i32" in ir.text

    def test_loads_stores_typed(self, llctx, rng):
        _, ir = self._module_text(llctx, rng)
        assert "load double, double*" in ir.text
        assert "store double" in ir.text

    def test_ssa_unique_definitions(self, llctx, rng):
        _, ir = self._module_text(llctx, rng)
        defs = [line.split(" = ")[0].strip()
                for line in ir.text.splitlines()
                if " = " in line and line.startswith("  ")]
        assert len(defs) == len(set(defs)), "IR is not SSA"

    def test_math_intrinsics(self, llctx, rng):
        from repro.core.expr import sqrt

        lat = Lattice((4, 4, 4, 4))
        r = latt_real(lat, context=llctx)
        r.from_numpy(np.abs(rng.normal(size=lat.nsites)) + 0.1)
        dest = latt_real(lat, context=llctx)
        dest.assign(sqrt(r))
        llctx.flush()
        module = list(llctx.module_cache.values())[-1][0]
        ir = transpile(module.render())
        assert "@llvm.sqrt.f64" in ir.text
        assert "declare double @llvm.sqrt.f64(double)" in ir.text


class TestSubsetRestrictions:
    def test_non_ssa_rejected(self):
        ptx = """
.version 3.1
.target sm_35
.address_size 64

.visible .entry twice(
    .param .u64 .ptr .global p_x
)
{
    .reg .f64 %fd<1>;
    .reg .u64 %ru<1>;

    ld.param.u64 %ru0, [p_x];
    mov.f64 %fd0, 1.0;
    mov.f64 %fd0, 2.0;
    st.global.f64 [%ru0], %fd0;
    ret;
}
"""
        with pytest.raises(TranspileError, match="assigned twice"):
            transpile(ptx)

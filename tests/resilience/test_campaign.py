"""Tests for resilient HMC campaigns (trajectory-level recovery)."""

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.hmc.checkpoint import TrajectorySnapshotStore
from repro.resilience import run_campaign


def _make_hmc(rng):
    from repro.hmc import (
        HMC,
        GaugeMonomial,
        Level,
        MultiTimescaleIntegrator,
    )
    from repro.qcd.gauge import weak_gauge
    from repro.qdp.lattice import Lattice

    u = weak_gauge(Lattice((2, 2, 2, 4)), rng, eps=0.3)
    return HMC(u, MultiTimescaleIntegrator(
        [Level([GaugeMonomial(beta=5.6)], n_steps=4)]), rng), u


def _plaq(u):
    from repro.qcd.gauge import plaquette

    return plaquette(u)


class TestCampaign:
    def test_clean_campaign(self, fresh_ctx):
        hmc, u = _make_hmc(np.random.default_rng(3))
        res = run_campaign(hmc, n_trajectories=3, tau=0.3)
        assert res.trajectories == 3
        assert res.kills == res.replays == 0
        assert res.lost_work_s == 0.0
        assert len(res.results) == 3

    def test_kill_replays_bitwise(self, fresh_ctx):
        hmc, u = _make_hmc(np.random.default_rng(3))
        clean = run_campaign(hmc, n_trajectories=3, tau=0.3)
        plaq_clean = _plaq(u)

        hmc2, u2 = _make_hmc(np.random.default_rng(3))
        plan = FaultPlan(seed=14).add("rank.kill", count=1,
                                      match="traj1")
        chaos = run_campaign(hmc2, n_trajectories=3, tau=0.3,
                             plan=plan)
        assert _plaq(u2) == plaq_clean
        assert chaos.kills == chaos.replays == 1
        assert chaos.lost_work_s > 0
        assert plan.all_recovered()
        assert [r.accepted for r in chaos.results] \
            == [r.accepted for r in clean.results]
        assert [r.delta_h for r in chaos.results] \
            == [r.delta_h for r in clean.results]

    def test_same_seed_replays_identical_trace(self, fresh_ctx):
        def go(plan):
            hmc, _ = _make_hmc(np.random.default_rng(3))
            run_campaign(hmc, n_trajectories=3, tau=0.3, plan=plan)
            return plan

        a = go(FaultPlan(seed=14).add("rank.kill", count=1,
                                      match="traj1"))
        b = go(FaultPlan(seed=14).add("rank.kill", count=1,
                                      match="traj1"))
        assert a.trace_signature() == b.trace_signature()

    def test_snapshot_store_is_updated(self, fresh_ctx):
        hmc, _ = _make_hmc(np.random.default_rng(3))
        store = TrajectorySnapshotStore(keep=2)
        run_campaign(hmc, n_trajectories=3, tau=0.3, store=store)
        assert store.latest_trajectory == 2
        assert len(store) == 2

    def test_kill_event_carries_lost_work(self, fresh_ctx):
        hmc, _ = _make_hmc(np.random.default_rng(3))
        plan = FaultPlan(seed=14).add("rank.kill", count=1,
                                      match="traj0")
        res = run_campaign(hmc, n_trajectories=2, tau=0.3, plan=plan)
        (event,) = [e for e in plan.trace if e.kind == "kill"]
        assert event.detail["trajectory"] == 0
        assert event.detail["restored_from"] == -1
        assert event.detail["lost_work_s"] == pytest.approx(
            res.lost_work_s)

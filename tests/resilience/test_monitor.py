"""Unit tests for the straggler detector."""

from repro.resilience import detect_stragglers


class TestDetectStragglers:
    def test_no_stragglers_on_equal_clocks(self):
        assert detect_stragglers([1.0, 1.0, 1.0, 1.0], 4.0) == []

    def test_flags_the_slow_rank(self):
        assert detect_stragglers([1.0, 1.0, 9.0, 1.0], 4.0) == [2]

    def test_threshold_is_exclusive(self):
        # exactly threshold x median is on time
        assert detect_stragglers([1.0, 4.0], 4.0) == []
        assert detect_stragglers([1.0, 4.0 + 1e-12], 4.0) == [1]

    def test_two_rank_machine_uses_lower_median(self):
        """With an even rank count the *lower* median is the
        reference — averaging the middle pair would let a single
        straggler drag the median up and hide itself."""
        assert detect_stragglers([1.0, 100.0], 4.0) == [1]

    def test_multiple_stragglers(self):
        assert detect_stragglers([1.0, 50.0, 1.0, 60.0], 4.0) == [1, 3]

    def test_zero_median_flags_any_positive_clock(self):
        assert detect_stragglers([0.0, 0.0, 5.0], 4.0) == [2]

    def test_empty_and_single(self):
        assert detect_stragglers([], 4.0) == []
        assert detect_stragglers([7.0], 4.0) == []

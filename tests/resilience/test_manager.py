"""Integration tests for rank-level fault tolerance on the comm VM.

The contract under test (ISSUE: resilience tentpole):

* ``REPRO_RESILIENCE=off`` (or no manager) is bitwise invisible;
* ``detect`` surfaces a kill as a typed :class:`RankFailureError` at
  the exchange barrier where the halo never arrives;
* ``recover`` + buddy restores the dead rank bitwise from its
  in-memory checkpoint; ``recover`` + shrink finishes on fewer ranks
  with the same numbers;
* the whole schedule is a pure function of (seed, workload):
  same-seed replays produce identical ``trace_signature``s.
"""

import numpy as np
import pytest

from repro.comm import HaloMismatchError, VirtualMachine
from repro.faults import FaultPlan
from repro.qdp.typesys import fermion
from repro.resilience import RankFailureError

DIMS = (4, 4, 4, 8)
GRID = (1, 1, 1, 2)


def _run(faults=False, resilience=False, policy="buddy", sweeps=3):
    """A 2-rank boundary-crossing shift sweep; returns (vm, result)."""
    vm = VirtualMachine(DIMS, GRID, faults=faults,
                        resilience=resilience, recover_policy=policy)
    g = vm.global_lattice
    rng = np.random.default_rng(5)
    f = vm.field(fermion(), "psi")
    f.from_global(rng.normal(size=(g.nsites, 4, 3))
                  + 1j * rng.normal(size=(g.nsites, 4, 3)))
    d = vm.field(fermion(), "chi")
    for s in range(sweeps):
        vm.shift_into(d, f, s % 4, +1)
        f, d = d, f
    return vm, f.to_global()


def _kill_plan(seed=7, match="rank1:*", count=1):
    return FaultPlan(seed=seed).add("rank.kill", count=count,
                                    match=match)


class TestOffPath:
    def test_no_manager_by_default(self):
        vm = VirtualMachine(DIMS, GRID)
        assert vm.resilience is None

    def test_off_runs_are_bitwise_identical(self):
        vm0, a = _run()
        vm1, b = _run()
        assert np.array_equal(a, b)
        assert (max(c.device.clock for c in vm0.contexts)
                == max(c.device.clock for c in vm1.contexts))

    def test_recover_mode_without_faults_is_invisible(self):
        """An armed manager with nothing to inject changes nothing:
        results and modeled clocks match the bare machine bitwise."""
        vm0, base = _run()
        vm1, got = _run(resilience="recover")
        assert np.array_equal(got, base)
        assert (max(c.device.clock for c in vm1.contexts)
                == max(c.device.clock for c in vm0.contexts))
        assert vm1.resilience.stats.checkpoints == 0

    def test_env_knob_arms_the_manager(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESILIENCE", "recover")
        vm = VirtualMachine(DIMS, GRID)
        assert vm.resilience is not None
        assert vm.resilience.mode == "recover"

    def test_bad_env_value_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESILIENCE", "bogus-mode-xyz")
        with pytest.warns(RuntimeWarning, match="REPRO_RESILIENCE"):
            vm = VirtualMachine(DIMS, GRID)
        assert vm.resilience is None

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            VirtualMachine(DIMS, GRID, resilience="recover",
                           recover_policy="hope")


class TestDetect:
    def test_kill_raises_typed_error(self):
        plan = _kill_plan()
        with pytest.raises(RankFailureError) as exc:
            _run(faults=plan, resilience="detect")
        e = exc.value
        assert e.rank == 1
        assert e.nranks == 2
        assert "halo never arrived" in str(e)
        d = e.diagnostic
        assert d.pass_name == "rank-failure"
        assert "rank 1" in d.message
        assert "error" in d.render().lower()

    def test_detection_is_counted(self):
        plan = _kill_plan()
        vm = VirtualMachine(DIMS, GRID, faults=plan,
                            resilience="detect")
        g = vm.global_lattice
        f = vm.field(fermion(), "psi")
        f.from_global(np.zeros((g.nsites, 4, 3), dtype=complex))
        d = vm.field(fermion(), "chi")
        with pytest.raises(RankFailureError):
            vm.shift_into(d, f, 0, +1)
        assert vm.resilience.stats.kills_injected == 1
        assert vm.resilience.stats.detections == 1


class TestBuddyRecovery:
    def test_kill_recovered_bitwise(self):
        _, clean = _run()
        plan = _kill_plan()
        vm, got = _run(faults=plan, resilience="recover")
        assert np.array_equal(got, clean)
        assert plan.all_recovered()
        rz = vm.resilience.as_json()
        assert rz["kills_injected"] == 1
        assert rz["recoveries_by_policy"] == {"buddy": 1}
        assert rz["restored_payloads"] > 0
        assert rz["recovery_modeled_s"] > 0

    def test_recovery_cost_lands_on_the_fault_lane(self):
        plan = _kill_plan()
        vm, _ = _run(faults=plan, resilience="recover")
        assert vm.timeline.lane_busy().get("fault", 0.0) > 0

    def test_two_kills_recovered_bitwise(self):
        """A second kill restores from the post-recovery checkpoint
        refresh — the spare rank is itself protected."""
        _, clean = _run()
        plan = _kill_plan(count=2)
        vm, got = _run(faults=plan, resilience="recover")
        assert np.array_equal(got, clean)
        assert vm.resilience.stats.kills_injected == 2
        assert vm.resilience.stats.recoveries_by_policy == {"buddy": 2}
        assert plan.all_recovered()

    def test_same_seed_replays_identical_trace(self):
        plan = _kill_plan()
        _run(faults=plan, resilience="recover")
        replay = _kill_plan()
        _run(faults=replay, resilience="recover")
        assert plan.trace_signature() == replay.trace_signature()

    def test_different_seed_changes_nothing_for_count_specs(self):
        """Count-mode rank kills are a pure function of the workload:
        the seed seasons rate draws, not exhaustion order."""
        a = _kill_plan(seed=7)
        _run(faults=a, resilience="recover")
        b = _kill_plan(seed=8)
        _run(faults=b, resilience="recover")
        assert a.counters.injected == b.counters.injected == 1


class TestShrinkRecovery:
    def test_kill_shrinks_and_matches(self):
        _, clean = _run()
        plan = _kill_plan(match="rank0:*")
        vm, got = _run(faults=plan, resilience="recover",
                       policy="shrink")
        assert vm.nranks == 1
        assert np.allclose(got, clean, rtol=1e-12, atol=1e-14)
        assert plan.all_recovered()
        assert vm.resilience.stats.recoveries_by_policy \
            == {"shrink": 1}

    def test_stale_exchange_rejected_after_shrink(self):
        """An ExchangeResult captured before the machine shrank must
        be refused with a typed, diagnosable error — its buffers
        describe ranks that no longer exist."""
        plan = _kill_plan(match="rank0:0*")
        vm = VirtualMachine(DIMS, GRID, faults=plan,
                            resilience="recover",
                            recover_policy="shrink")
        g = vm.global_lattice
        rng = np.random.default_rng(5)
        f = vm.field(fermion(), "psi")
        f.from_global(rng.normal(size=(g.nsites, 4, 3))
                      + 1j * rng.normal(size=(g.nsites, 4, 3)))
        d = vm.field(fermion(), "chi")
        ex = vm.exchange(f, 3, +1)       # no kill here (mu=3)
        vm.shift_into(d, f, 0, +1)       # kill fires -> shrink to 1
        assert vm.nranks == 1
        with pytest.raises(HaloMismatchError) as exc:
            vm.scatter_halo(d, ex)
        assert "shrink" in str(exc.value)
        assert exc.value.diagnostic.pass_name == "halo-exchange"


class TestStragglers:
    def test_straggler_flagged_and_absorbed(self):
        _, clean = _run()
        plan = FaultPlan(seed=11).add("rank.straggler", count=1,
                                      match="rank1:*")
        vm, got = _run(faults=plan, resilience="recover")
        rz = vm.resilience.as_json()
        assert rz["stragglers_injected"] == 1
        assert rz["stragglers_flagged"] == 1
        assert np.array_equal(got, clean)
        assert plan.all_recovered()
        assert vm.timeline.lane_busy().get("fault", 0.0) > 0

    def test_detect_mode_flags_without_charging(self):
        plan = FaultPlan(seed=11).add("rank.straggler", count=1,
                                      match="rank1:*")
        vm, _ = _run(faults=plan, resilience="detect")
        assert vm.resilience.stats.stragglers_flagged == 1
        assert vm.resilience.stats.recovery_modeled_s == 0.0


class TestHaloMismatch:
    def test_foreign_field_exchange_rejected(self):
        vm_a = VirtualMachine(DIMS, GRID)
        vm_b = VirtualMachine(DIMS, GRID)
        f = vm_b.field(fermion(), "psi")
        with pytest.raises(HaloMismatchError) as exc:
            vm_a.exchange(f, 3, +1)
        assert exc.value.mu == 3
        assert exc.value.diagnostic.pass_name == "halo-exchange"

    def test_foreign_field_scatter_rejected(self):
        vm_a = VirtualMachine(DIMS, GRID)
        vm_b = VirtualMachine(DIMS, GRID)
        g = vm_a.global_lattice
        f = vm_a.field(fermion(), "psi")
        f.from_global(np.zeros((g.nsites, 4, 3), dtype=complex))
        ex = vm_a.exchange(f, 3, +1)
        other = vm_b.field(fermion(), "chi")
        with pytest.raises(HaloMismatchError):
            vm_a.scatter_halo(other, ex)

"""Tests for device-side reductions (norm2, innerProduct, sum)."""

import numpy as np
import pytest

from repro.core.expr import shift, trace
from repro.core.reduction import (
    ReductionError,
    innerProduct,
    innerProductReal,
    norm2,
    sum_sites,
)
from repro.qdp.fields import latt_color_matrix, latt_complex, latt_fermion, latt_real


class TestNorm2:
    def test_matches_numpy(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        a.gaussian(rng)
        ref = float(np.sum(np.abs(a.to_numpy()) ** 2))
        assert norm2(a) == pytest.approx(ref, rel=1e-13)

    def test_real_field(self, ctx, lat4, rng):
        r = latt_real(lat4)
        r.uniform(rng)
        assert norm2(r) == pytest.approx(float(np.sum(r.to_numpy() ** 2)),
                                         rel=1e-13)

    def test_of_expression(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        b = latt_fermion(lat4)
        a.gaussian(rng)
        b.gaussian(rng)
        ref = float(np.sum(np.abs(a.to_numpy() - b.to_numpy()) ** 2))
        assert norm2(a - b) == pytest.approx(ref, rel=1e-12)

    def test_subset(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        a.gaussian(rng)
        e = float(np.sum(np.abs(a.to_numpy()[lat4.even.sites]) ** 2))
        o = float(np.sum(np.abs(a.to_numpy()[lat4.odd.sites]) ** 2))
        assert norm2(a, subset=lat4.even) == pytest.approx(e, rel=1e-13)
        assert norm2(a, subset=lat4.odd) == pytest.approx(o, rel=1e-13)
        assert norm2(a, subset=lat4.even) + norm2(a, subset=lat4.odd) \
            == pytest.approx(norm2(a), rel=1e-13)

    def test_zero_field(self, ctx, lat4):
        assert norm2(latt_fermion(lat4)) == 0.0

    def test_sp_field_accumulates_in_dp(self, ctx, rng):
        """Reductions accumulate in f64 even for f32 fields."""
        from repro.qdp.lattice import Lattice

        lat = Lattice((8, 8, 8, 8))
        a = latt_fermion(lat, precision="f32")
        a.gaussian(rng)
        ref = float(np.sum(np.abs(a.to_numpy().astype(complex)) ** 2))
        assert norm2(a) == pytest.approx(ref, rel=1e-6)


class TestInnerProduct:
    def test_matches_numpy(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        b = latt_fermion(lat4)
        a.gaussian(rng)
        b.gaussian(rng)
        ref = complex(np.sum(a.to_numpy().conj() * b.to_numpy()))
        got = innerProduct(a, b)
        assert got == pytest.approx(ref, rel=1e-12)

    def test_conjugate_on_left(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        b = latt_fermion(lat4)
        a.gaussian(rng)
        b.gaussian(rng)
        assert innerProduct(a, b) == pytest.approx(
            np.conj(innerProduct(b, a)), rel=1e-12)

    def test_self_inner_is_norm(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        a.gaussian(rng)
        ip = innerProduct(a, a)
        assert ip.imag == pytest.approx(0.0, abs=1e-10)
        assert ip.real == pytest.approx(norm2(a), rel=1e-12)

    def test_real_part_helper(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        b = latt_fermion(lat4)
        a.gaussian(rng)
        b.gaussian(rng)
        assert innerProductReal(a, b) == pytest.approx(
            innerProduct(a, b).real, rel=1e-12)

    def test_shape_mismatch_rejected(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        u = latt_color_matrix(lat4)
        from repro.core.expr import ExprTypeError

        with pytest.raises(ExprTypeError):
            innerProduct(a, u)


class TestSum:
    def test_complex_sum(self, ctx, lat4, rng):
        c = latt_complex(lat4)
        c.gaussian(rng)
        assert sum_sites(c.ref()) == pytest.approx(
            complex(np.sum(c.to_numpy())), rel=1e-12)

    def test_trace_sum(self, ctx, lat4, rng):
        u = latt_color_matrix(lat4)
        u.gaussian(rng)
        ref = complex(np.einsum("naa->", u.to_numpy()))
        assert sum_sites(trace(u.ref())) == pytest.approx(ref, rel=1e-12)

    def test_matrix_sum_rejected(self, ctx, lat4, rng):
        u = latt_color_matrix(lat4)
        u.gaussian(rng)
        with pytest.raises(ReductionError):
            sum_sites(u.ref())

    def test_no_field_rejected(self, ctx):
        from repro.core.expr import ScalarParam

        with pytest.raises(ReductionError):
            sum_sites(ScalarParam(1.0))

    def test_reduction_kernels_cached(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        a.gaussian(rng)
        norm2(a)
        n0 = ctx.kernel_cache.stats.n_kernels
        norm2(a)
        norm2(a)
        assert ctx.kernel_cache.stats.n_kernels == n0

    def test_shifted_reduction(self, ctx, lat4, rng):
        """Reductions support shifts (plaquette-style sums)."""
        a = latt_complex(lat4)
        a.gaussian(rng)
        b = latt_complex(lat4)
        b.gaussian(rng)
        got = sum_sites(a * shift(b, +1, 2))
        t = lat4.shift_map(2, +1)
        ref = complex(np.sum(a.to_numpy() * b.to_numpy()[t]))
        assert got == pytest.approx(ref, rel=1e-12)

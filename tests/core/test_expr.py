"""Tests for the expression AST: type rules, signatures, structure."""

import numpy as np
import pytest

from repro.core.expr import (
    BinaryNode,
    ConstSpinMatrix,
    ExprTypeError,
    SlotAssigner,
    adj,
    shift,
    timesI,
    trace,
    traceColor,
    traceSpin,
)
from repro.qdp.fields import (
    latt_color_matrix,
    latt_fermion,
    latt_propagator,
    latt_real,
    latt_spin_matrix,
)


class TestTypeRules:
    def test_colormatrix_times_fermion(self, ctx, lat4):
        u = latt_color_matrix(lat4)
        psi = latt_fermion(lat4)
        e = u * psi
        assert e.spec.spin == (4,) and e.spec.color == (3,)

    def test_spinmatrix_times_fermion(self, ctx, lat4):
        g = latt_spin_matrix(lat4)
        psi = latt_fermion(lat4)
        e = g * psi
        assert e.spec.spin == (4,) and e.spec.color == (3,)

    def test_matrix_matrix(self, ctx, lat4):
        u = latt_color_matrix(lat4)
        v = latt_color_matrix(lat4)
        assert (u * v).spec.color == (3, 3)

    def test_propagator_contraction(self, ctx, lat4):
        p = latt_propagator(lat4)
        q = latt_propagator(lat4)
        e = p * q
        assert e.spec.spin == (4, 4) and e.spec.color == (3, 3)

    def test_vector_vector_rejected(self, ctx, lat4):
        psi = latt_fermion(lat4)
        phi = latt_fermion(lat4)
        with pytest.raises(ExprTypeError):
            psi * phi

    def test_addition_shape_mismatch_rejected(self, ctx, lat4):
        psi = latt_fermion(lat4)
        u = latt_color_matrix(lat4)
        with pytest.raises(ExprTypeError):
            psi + u

    def test_precision_promotion(self, ctx, lat4):
        a = latt_fermion(lat4, precision="f32")
        b = latt_fermion(lat4, precision="f64")
        assert (a + b).spec.precision == "f64"
        assert (a + a).spec.precision == "f32"

    def test_scalar_multiplication(self, ctx, lat4):
        psi = latt_fermion(lat4)
        e = 0.5 * psi
        assert e.spec.spin == (4,)
        e = psi * (1 + 2j)
        assert e.spec.is_complex

    def test_division_by_scalar(self, ctx, lat4):
        psi = latt_fermion(lat4)
        e = psi / 2.0
        assert isinstance(e, BinaryNode) and e.op == "mul"

    def test_division_by_field_rejected(self, ctx, lat4):
        psi = latt_fermion(lat4)
        with pytest.raises(ExprTypeError):
            psi / psi

    def test_adj_transposes_spec(self, ctx, lat4):
        u = latt_color_matrix(lat4)
        assert adj(u).spec.color == (3, 3)
        p = latt_propagator(lat4)
        assert adj(p).spec.spin == (4, 4)

    def test_trace_specs(self, ctx, lat4):
        p = latt_propagator(lat4)
        assert traceSpin(p).spec.spin == ()
        assert traceSpin(p).spec.color == (3, 3)
        assert traceColor(p).spec.color == ()
        assert trace(p).spec.spin == () and trace(p).spec.color == ()

    def test_trace_of_vector_rejected(self, ctx, lat4):
        psi = latt_fermion(lat4)
        with pytest.raises(ExprTypeError):
            traceSpin(psi)

    def test_timesI_requires_complex(self, ctx, lat4):
        r = latt_real(lat4)
        with pytest.raises(ExprTypeError):
            timesI(r)

    def test_real_imag_specs(self, ctx, lat4):
        from repro.core.expr import imag, real

        psi = latt_fermion(lat4)
        assert not real(psi).spec.is_complex
        assert not imag(psi).spec.is_complex

    def test_shift_preserves_spec(self, ctx, lat4):
        psi = latt_fermion(lat4)
        e = shift(psi, +1, 2)
        assert e.spec == psi.spec

    def test_shift_bad_sign(self, ctx, lat4):
        psi = latt_fermion(lat4)
        with pytest.raises(ExprTypeError):
            shift(psi, 0, 2)

    def test_const_spin_matrix_must_be_square(self):
        with pytest.raises(ExprTypeError):
            ConstSpinMatrix(np.zeros((4, 3)))

    def test_unusable_operand_rejected(self, ctx, lat4):
        psi = latt_fermion(lat4)
        with pytest.raises(ExprTypeError):
            psi + "nonsense"


class TestSignatures:
    """Structural signatures drive kernel caching: same structure =>
    same kernel; different aliasing or types => different kernel."""

    def _sig(self, e):
        return e.signature(SlotAssigner())

    def test_same_structure_same_signature(self, ctx, lat4):
        u1 = latt_color_matrix(lat4)
        u2 = latt_color_matrix(lat4)
        psi1 = latt_fermion(lat4)
        psi2 = latt_fermion(lat4)
        assert self._sig(u1 * psi1) == self._sig(u2 * psi2)

    def test_aliasing_changes_signature(self, ctx, lat4):
        u = latt_color_matrix(lat4)
        v = latt_color_matrix(lat4)
        assert self._sig(u * u) != self._sig(u * v)

    def test_precision_in_signature(self, ctx, lat4):
        a32 = latt_fermion(lat4, precision="f32")
        a64 = latt_fermion(lat4)
        assert self._sig(2.0 * a32) != self._sig(2.0 * a64)

    def test_shift_direction_not_in_signature(self, ctx, lat4):
        """One compiled kernel serves every (mu, sign): the gather
        table is a parameter."""
        psi = latt_fermion(lat4)
        assert self._sig(shift(psi, +1, 0)) == self._sig(shift(psi, +1, 3))

    def test_two_distinct_shifts_get_two_slots(self, ctx, lat4):
        psi = latt_fermion(lat4)
        phi = latt_fermion(lat4)
        e = shift(psi, +1, 0) + shift(phi, -1, 0)
        slots = SlotAssigner()
        e.signature(slots)
        assert len(slots.shifts) == 2

    def test_scalar_param_value_not_in_signature(self, ctx, lat4):
        """CG coefficients change per iteration without recompiling."""
        psi = latt_fermion(lat4)
        assert self._sig(0.5 * psi) == self._sig(0.125 * psi)

    def test_gamma_constants_in_signature(self, ctx, lat4):
        from repro.qcd.gamma import gamma_const

        psi = latt_fermion(lat4)
        e0 = gamma_const(0) * psi
        e1 = gamma_const(1) * psi
        assert self._sig(e0) != self._sig(e1)

    def test_slot_order_is_first_visit(self, ctx, lat4):
        a = latt_fermion(lat4)
        b = latt_fermion(lat4)
        slots = SlotAssigner()
        (a + b).signature(slots)
        assert slots.fields == [a, b]

"""Scoped context activation: ``with ctx:`` shadows the singleton."""

import pytest

from repro.core import context as context_mod
from repro.core.context import Context, default_context
from repro.qdp.fields import latt_real
from repro.qdp.lattice import Lattice


def test_activation_shadows_the_default(fresh_ctx):
    outer = Context()
    assert default_context() is not outer
    with outer:
        assert default_context() is outer
    assert default_context() is not outer


def test_activation_nests_like_a_stack(fresh_ctx):
    a, b = Context(), Context()
    with a:
        assert default_context() is a
        with b:
            assert default_context() is b
        assert default_context() is a
    assert not context_mod._active_stack


def test_unqualified_field_creation_uses_the_active_context(fresh_ctx):
    ctx = Context()
    lat = Lattice((2, 2))
    with ctx:
        f = latt_real(lat)          # no explicit context
    assert f.context is ctx


def test_out_of_order_exit_raises(fresh_ctx):
    a, b = Context(), Context()
    a.__enter__()
    b.__enter__()
    with pytest.raises(RuntimeError, match="out of order"):
        a.__exit__(None, None, None)
    # clean up the intact stack
    b.__exit__(None, None, None)
    a.__exit__(None, None, None)
    assert not context_mod._active_stack


def test_exception_inside_block_still_restores(fresh_ctx):
    ctx = Context()
    with pytest.raises(ValueError):
        with ctx:
            raise ValueError("boom")
    assert default_context() is not ctx
    assert not context_mod._active_stack


def test_singleton_untouched_by_activation(fresh_ctx):
    base = default_context()        # lazily created singleton
    with Context():
        pass
    assert default_context() is base

"""Tests for the deferred-evaluation queue and kernel-fusion engine.

Covers the hazard model (forwarding, shift barriers, WAW, subsets),
the flush barriers (host access, reductions, explicit flush, cost
proxies), bitwise on/off transparency, the modeled-traffic savings,
and the absint-verifier integration for fused kernels.
"""

import numpy as np
import pytest

from repro.core.context import Context
from repro.core.expr import shift
from repro.core.fusion import MAX_GROUP_STATEMENTS, PendingCost
from repro.core.reduction import innerProduct, norm2
from repro.qdp.fields import latt_fermion, latt_real
from repro.qdp.lattice import Lattice


def _launches(ctx):
    """Generated-kernel launches (excluding partial-buffer folds)."""
    st = ctx.device.stats
    return st.kernel_launches - st.fold_launches


@pytest.fixture
def fctx():
    return Context(fusion=True)


@pytest.fixture
def lat():
    return Lattice((4, 4, 4, 4))


def _fermions(lat, ctx, n, rng=None):
    out = []
    for i in range(n):
        f = latt_fermion(lat, context=ctx)
        if rng is not None:
            f.gaussian(rng)
        out.append(f)
    return out


class TestScheduling:
    def test_axpy_chain_fuses_to_one_kernel(self, fctx, lat, rng):
        x, y, a, b = _fermions(lat, fctx, 4, rng)
        n0 = _launches(fctx)
        a.assign(2.0 * x + y)
        b.assign(x - 3.0 * y)
        fctx.flush()
        assert _launches(fctx) == n0 + 1
        assert fctx.stats.fusion_groups == 1
        assert fctx.stats.fused_statements == 2
        assert np.allclose(a.to_numpy(), 2 * x.to_numpy() + y.to_numpy())
        assert np.allclose(b.to_numpy(), x.to_numpy() - 3 * y.to_numpy())

    def test_dest_read_later_joins_and_forwards(self, fctx, lat, rng):
        """b reads a's fresh value: fused, forwarded through registers."""
        x, y, a, b = _fermions(lat, fctx, 4, rng)
        a.assign(2.0 * x)
        cost = b.assign(a.ref() + y)
        fctx.flush()
        assert fctx.stats.fusion_groups == 1
        assert np.allclose(b.to_numpy(), 2 * x.to_numpy() + y.to_numpy())
        # traffic: the fused kernel loads x,y and stores a,b — a's
        # store/re-load round trip collapses to one store
        words = 24 * 8 * lat.nsites
        assert cost.bytes_moved == 4 * words

    def test_shift_after_write_is_a_barrier(self, fctx, lat, rng):
        """b = shift(a) after writing a: different thread reads the
        write — must be two launches (the PR-1 shift-alias race)."""
        x, a, b = _fermions(lat, fctx, 3, rng)
        n0 = _launches(fctx)
        a.assign(2.0 * x)
        b.assign(shift(a.ref(), +1, 0))
        fctx.flush()
        assert _launches(fctx) == n0 + 2
        assert fctx.stats.fusion_groups == 0   # two singleton groups
        t = lat.shift_map(0, +1)
        assert np.allclose(b.to_numpy(), 2 * x.to_numpy()[t])

    def test_write_after_write_stays_separate(self, fctx, lat, rng):
        (x, a) = _fermions(lat, fctx, 2, rng)
        n0 = _launches(fctx)
        a.assign(2.0 * x)
        a.assign(3.0 * x)
        fctx.flush()
        assert _launches(fctx) == n0 + 2
        assert np.allclose(a.to_numpy(), 3 * x.to_numpy())

    def test_write_after_shift_read_stays_separate(self, fctx, lat, rng):
        """a = shift(x); x = 2x — rewriting x must not overtake the
        shifted read of its old value."""
        x, a = _fermions(lat, fctx, 2, rng)
        x0 = x.to_numpy().copy()
        a.assign(shift(x.ref(), +1, 0))
        x.assign(2.0 * x.ref())
        fctx.flush()
        t = lat.shift_map(0, +1)
        assert np.allclose(a.to_numpy(), x0[t])
        assert np.allclose(x.to_numpy(), 2 * x0)

    def test_subset_and_full_do_not_fuse(self, fctx, lat, rng):
        (x,) = _fermions(lat, fctx, 1, rng)
        a, b = _fermions(lat, fctx, 2)
        n0 = _launches(fctx)
        a.assign(2.0 * x)
        b.assign(3.0 * x, subset=lat.even)
        fctx.flush()
        assert _launches(fctx) == n0 + 2
        arr = b.to_numpy()
        assert np.allclose(arr[lat.even.sites],
                           3 * x.to_numpy()[lat.even.sites])
        assert np.all(arr[lat.odd.sites] == 0)

    def test_same_subset_fuses(self, fctx, lat, rng):
        x, a, b = _fermions(lat, fctx, 3, rng)
        n0 = _launches(fctx)
        a.assign(2.0 * x, subset=lat.even)
        b.assign(3.0 * x, subset=lat.even)
        fctx.flush()
        assert _launches(fctx) == n0 + 1
        assert fctx.stats.fusion_groups == 1

    def test_mixed_precision_does_not_fuse(self, fctx, lat, rng):
        x64 = latt_fermion(lat, context=fctx)
        x64.gaussian(rng)
        x32 = latt_fermion(lat, "f32", context=fctx)
        x32.gaussian(rng)
        a = latt_fermion(lat, context=fctx)
        b = latt_fermion(lat, "f32", context=fctx)
        n0 = _launches(fctx)
        a.assign(2.0 * x64)
        b.assign(2.0 * x32)
        fctx.flush()
        assert _launches(fctx) == n0 + 2

    def test_group_size_cap(self, fctx, lat, rng):
        src = _fermions(lat, fctx, MAX_GROUP_STATEMENTS + 2, rng)
        dsts = _fermions(lat, fctx, MAX_GROUP_STATEMENTS + 2)
        n0 = _launches(fctx)
        for d, s in zip(dsts, src):
            d.assign(2.0 * s)
        fctx.flush()
        assert _launches(fctx) == n0 + 2   # one full group + overflow


class TestBarriers:
    def test_host_read_flushes(self, fctx, lat, rng):
        x, a = _fermions(lat, fctx, 2, rng)
        a.assign(2.0 * x)
        # no explicit flush: to_numpy() must observe the assignment
        assert np.allclose(a.to_numpy(), 2 * x.to_numpy())

    def test_host_write_flushes_pending_reader(self, fctx, lat, rng):
        """x is overwritten from the host while a = 2x is pending: the
        pending statement must consume x's *old* value."""
        x, a = _fermions(lat, fctx, 2, rng)
        x0 = x.to_numpy().copy()
        a.assign(2.0 * x)
        x.gaussian(rng)            # host write -> flush barrier
        assert np.allclose(a.to_numpy(), 2 * x0)

    def test_pending_cost_attribute_flushes(self, fctx, lat, rng):
        x, a = _fermions(lat, fctx, 2, rng)
        cost = a.assign(2.0 * x)
        assert isinstance(cost, PendingCost)
        assert cost.time_s > 0                 # resolves via a flush
        assert not fctx.fusion.groups

    def test_members_share_the_group_cost(self, fctx, lat, rng):
        x, a, b = _fermions(lat, fctx, 3, rng)
        c1 = a.assign(2.0 * x)
        c2 = b.assign(3.0 * x)
        assert c1.bytes_moved == c2.bytes_moved
        assert c1.time_s == c2.time_s

    def test_reduction_flushes_pending_writes(self, fctx, lat, rng):
        x, a = _fermions(lat, fctx, 2, rng)
        a.assign(2.0 * x)
        assert norm2(a) == pytest.approx(4 * norm2(x))

    def test_explicit_context_flush(self, fctx, lat, rng):
        x, a = _fermions(lat, fctx, 2, rng)
        a.assign(2.0 * x)
        assert fctx.fusion.groups
        fctx.flush()
        assert not fctx.fusion.groups


class TestReductionAbsorption:
    def test_reduction_absorbed_into_tail_group(self, fctx, lat, rng):
        """r = <a|a> right after a = 2x: the group's kernel writes the
        partials too — no separate partials launch."""
        x, a = _fermions(lat, fctx, 2, rng)
        n0 = _launches(fctx)
        a.assign(2.0 * x)
        r = norm2(a)
        assert _launches(fctx) == n0 + 1
        assert r == pytest.approx(4 * norm2(x))

    def test_inner_product_absorbed(self, fctx, lat, rng):
        x, y, a = _fermions(lat, fctx, 3, rng)
        n0 = _launches(fctx)
        a.assign(x.ref() + y)
        r = innerProduct(x, a)
        assert _launches(fctx) == n0 + 1
        eager = Context(fusion=False)
        xn, yn = x.to_numpy(), y.to_numpy()
        want = complex(np.vdot(xn, xn + yn))
        assert r == pytest.approx(want)

    def test_shifted_reduction_not_absorbed(self, fctx, lat, rng):
        """norm2(shift(a)) after writing a: the partials pass reads a
        through a shift — separate launch required."""
        x, a = _fermions(lat, fctx, 2, rng)
        n0 = _launches(fctx)
        a.assign(2.0 * x)
        r = norm2(shift(a.ref(), +1, 0))
        assert _launches(fctx) == n0 + 2
        assert r == pytest.approx(4 * norm2(x))


class TestBitwiseTransparency:
    def _chain(self, fusion, seed=11):
        ctx = Context(fusion=fusion)
        lat = Lattice((4, 4, 4, 4))
        rng = np.random.default_rng(seed)
        x = latt_fermion(lat, context=ctx)
        x.gaussian(rng)
        p = latt_fermion(lat, context=ctx)
        p.gaussian(rng)
        r = latt_fermion(lat, context=ctx)
        ap = latt_fermion(lat, context=ctx)
        # a CG-iteration-shaped statement chain
        ap.assign(0.7 * p + 0.1 * x)
        pap = innerProduct(p, ap).real
        alpha = 1.0 / pap
        x.assign(x.ref() + alpha * p)
        r.assign(x.ref() - alpha * ap)
        rr = norm2(r)
        p.assign(r.ref() + 0.5 * p.ref())
        return (x.to_numpy(), r.to_numpy(), p.to_numpy(), pap, rr)

    def test_cg_chain_bitwise_identical(self):
        on = self._chain(True)
        off = self._chain(False)
        for a, b in zip(on[:3], off[:3]):
            assert np.array_equal(a, b)      # bitwise, not approx
        assert on[3] == off[3]
        assert on[4] == off[4]

    def test_subset_chain_bitwise_identical(self):
        def run(fusion):
            ctx = Context(fusion=fusion)
            lat = Lattice((4, 4, 4, 4))
            rng = np.random.default_rng(3)
            x = latt_fermion(lat, context=ctx)
            x.gaussian(rng)
            a = latt_fermion(lat, context=ctx)
            b = latt_fermion(lat, context=ctx)
            a.assign(2.0 * x, subset=lat.even)
            b.assign(a.ref() + x, subset=lat.even)
            a.assign(3.0 * x, subset=lat.odd)
            return a.to_numpy(), b.to_numpy()

        for got, want in zip(run(True), run(False)):
            assert np.array_equal(got, want)

    def test_self_aliasing_statement_in_group(self):
        """p = r + beta*p both reads and writes p; within the
        statement, reads must see the old p even when fused."""
        def run(fusion):
            ctx = Context(fusion=fusion)
            lat = Lattice((4, 4, 4, 4))
            rng = np.random.default_rng(5)
            r = latt_fermion(lat, context=ctx)
            r.gaussian(rng)
            p = latt_fermion(lat, context=ctx)
            p.gaussian(rng)
            q = latt_fermion(lat, context=ctx)
            q.assign(2.0 * r)
            p.assign(q.ref() + 0.25 * p.ref())
            return p.to_numpy()

        assert np.array_equal(run(True), run(False))


class TestTrafficModel:
    def test_cse_across_statements_saves_loads(self, fctx, lat, rng):
        """a = x+y; b = (x+y)*2 — the shared subexpression is computed
        once; b's kernel contribution is store-only."""
        x, y, a, b = _fermions(lat, fctx, 4, rng)
        a.assign(x.ref() + y)
        cost = b.assign(2.0 * (x.ref() + y.ref()))
        fctx.flush()
        words = 24 * 8 * lat.nsites
        # loads x,y once + stores a,b = 4 field transfers (unfused: 6)
        assert cost.bytes_moved == 4 * words
        assert np.allclose(b.to_numpy(), 2 * a.to_numpy())

    def test_fused_bytes_less_than_eager(self, lat):
        def run(fusion):
            ctx = Context(fusion=fusion)
            rng = np.random.default_rng(9)
            x, y, a, b = _fermions(lat, ctx, 2, rng) + _fermions(lat, ctx, 2)
            a.assign(2.0 * x + y)
            b.assign(a.ref() - y.ref())
            ctx.flush()
            return ctx.device.stats.modeled_kernel_bytes

        assert run(True) < 0.75 * run(False)


class TestIntegration:
    def test_fused_kernel_bounds_proven(self, fctx, lat, rng):
        from repro.ptx.absint import analyze_module

        x, y, a, b = _fermions(lat, fctx, 4, rng)
        a.assign(2.0 * x + y)
        b.assign(a.ref() + shift(x.ref(), +1, 2))
        fctx.flush()
        fused = [(key, entry) for key, entry in fctx.module_cache.items()
                 if key.startswith("fus:")]
        assert fused
        for _, entry in fused:
            module = entry[0]
            analysis = analyze_module(
                module, env=fctx.analysis_envs.get(module.name))
            assert analysis.bounds_proven, module.name

    def test_fused_group_module_cache_hit(self, fctx, lat, rng):
        x, a, b = _fermions(lat, fctx, 3, rng)
        a.assign(2.0 * x)
        b.assign(3.0 * x)
        fctx.flush()
        misses = fctx.stats.module_cache_misses
        hits = fctx.stats.module_cache_hits
        a.assign(2.0 * x)
        b.assign(3.0 * x)
        fctx.flush()
        assert fctx.stats.module_cache_misses == misses
        assert fctx.stats.module_cache_hits == hits + 1

    def test_temporaries_released_after_flush(self, fctx, lat, rng):
        """Shift-of-expression temporaries die with the launch — they
        must not linger in the field cache as spill candidates."""
        x, a = _fermions(lat, fctx, 2, rng)
        a.assign(shift(2.0 * x.ref(), +1, 0))
        fctx.flush()
        n_temp = sum(1 for e in fctx.field_cache.entries.values()
                     if (f := e.ref()) is not None and f.name == "__temp")
        assert n_temp == 0

    def test_fusion_off_env_knob(self, lat, rng, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION", "off")
        ctx = Context()
        assert not ctx.fusion.enabled
        x = latt_fermion(lat, context=ctx)
        x.gaussian(rng)
        a = latt_fermion(lat, context=ctx)
        cost = a.assign(2.0 * x)
        # eager: a real KernelCost, nothing pending
        assert not isinstance(cost, PendingCost)
        assert not ctx.fusion.groups

    def test_real_weight_operator_chain(self, fctx, lat, rng):
        """An elementwise weighted operator (the bench_fusion shape):
        w * p with a real weight field fuses with the axpy updates."""
        w = latt_real(lat, context=fctx)
        w.uniform(rng)
        p, ap = _fermions(lat, fctx, 2)
        p.gaussian(rng)
        n0 = _launches(fctx)
        ap.assign(w.ref() * p.ref())
        pap = innerProduct(p, ap).real
        assert _launches(fctx) == n0 + 1   # absorbed
        assert pap == pytest.approx(
            float(np.sum(w.to_numpy()[:, None, None]
                         * np.abs(p.to_numpy()) ** 2)))

"""Tests for the evaluator: kernel caching, memory integration,
subsets, JIT accounting."""

import numpy as np

from repro.core.context import Context
from repro.core.expr import shift
from repro.qdp.fields import latt_fermion
from repro.qdp.lattice import Lattice


class TestKernelCaching:
    def test_structural_reuse(self, rng):
        """Different fields, same structure: one compiled kernel."""
        ctx = Context()
        lat = Lattice((4, 4, 4, 4))
        n0 = ctx.kernel_cache.stats.n_kernels
        for _ in range(5):
            a = latt_fermion(lat, context=ctx)
            a.gaussian(rng)
            b = latt_fermion(lat, context=ctx)
            b.assign(2.0 * a)
        ctx.flush()
        assert ctx.kernel_cache.stats.n_kernels == n0 + 1
        # generated once, evaluated five times
        assert ctx.stats.kernels_generated == 1
        assert ctx.stats.expressions_evaluated == 5

    def test_volume_parametric_kernels(self, rng):
        """The same kernel text serves different lattice sizes."""
        ctx = Context()
        for dims in ((4, 4, 4, 4), (4, 4, 4, 8), (6, 6, 6, 6)):
            lat = Lattice(dims)
            a = latt_fermion(lat, context=ctx)
            a.gaussian(rng)
            b = latt_fermion(lat, context=ctx)
            b.assign(2.0 * a)
            assert np.allclose(b.to_numpy(), 2.0 * a.to_numpy())
        assert ctx.kernel_cache.stats.n_kernels == 1

    def test_one_kernel_for_all_shift_directions(self, rng):
        ctx = Context()
        lat = Lattice((4, 4, 4, 4))
        a = latt_fermion(lat, context=ctx)
        a.gaussian(rng)
        b = latt_fermion(lat, context=ctx)
        n0 = ctx.kernel_cache.stats.n_kernels
        for mu in range(4):
            for sign in (+1, -1):
                b.assign(shift(a.ref(), sign, mu))
                t = lat.shift_map(mu, sign)
                assert np.array_equal(b.to_numpy(), a.to_numpy()[t])
        assert ctx.kernel_cache.stats.n_kernels == n0 + 1

    def test_subset_gets_own_kernel(self, rng):
        ctx = Context()
        lat = Lattice((4, 4, 4, 4))
        a = latt_fermion(lat, context=ctx)
        a.gaussian(rng)
        b = latt_fermion(lat, context=ctx)
        b.assign(2.0 * a)
        ctx.flush()
        n_full = ctx.kernel_cache.stats.n_kernels
        b.assign(2.0 * a, subset=lat.even)
        ctx.flush()
        assert ctx.kernel_cache.stats.n_kernels == n_full + 1
        b.assign(2.0 * a, subset=lat.odd)   # reuses the subset kernel
        ctx.flush()
        assert ctx.kernel_cache.stats.n_kernels == n_full + 1

    def test_jit_time_charged_once(self, rng):
        ctx = Context()
        lat = Lattice((4, 4, 4, 4))
        a = latt_fermion(lat, context=ctx)
        a.gaussian(rng)
        b = latt_fermion(lat, context=ctx)
        b.assign(3.0 * a)
        ctx.flush()
        jit_t = ctx.device.stats.modeled_jit_time_s
        assert 0.05 <= jit_t <= 0.25     # paper's per-kernel band
        b.assign(4.0 * a)
        ctx.flush()
        assert ctx.device.stats.modeled_jit_time_s == jit_t


class TestSubsetEvaluation:
    def test_even_odd_partition_complete(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        a.gaussian(rng)
        b = latt_fermion(lat4)
        b.assign(2.0 * a, subset=lat4.even)
        b.assign(3.0 * a, subset=lat4.odd)
        arr = b.to_numpy()
        an = a.to_numpy()
        assert np.allclose(arr[lat4.even.sites], 2 * an[lat4.even.sites])
        assert np.allclose(arr[lat4.odd.sites], 3 * an[lat4.odd.sites])

    def test_subset_shift_reads_other_parity(self, ctx, lat4, rng):
        """The D_eo pattern: evaluate on even, sources odd."""
        a = latt_fermion(lat4)
        a.gaussian(rng)
        b = latt_fermion(lat4)
        b.assign(shift(a.ref(), +1, 3), subset=lat4.even)
        t = lat4.shift_map(3, +1)
        arr = b.to_numpy()
        an = a.to_numpy()
        e = lat4.even.sites
        assert np.array_equal(arr[e], an[t[e]])
        assert np.all(arr[lat4.odd.sites] == 0)

    def test_subset_preserves_other_sites(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        a.gaussian(rng)
        b = latt_fermion(lat4)
        b.gaussian(rng)
        before_odd = b.to_numpy()[lat4.odd.sites].copy()
        b.assign(2.0 * a, subset=lat4.even)
        assert np.array_equal(b.to_numpy()[lat4.odd.sites], before_odd)


class TestStatsAndAccounting:
    def test_expression_counter(self, rng):
        ctx = Context()
        lat = Lattice((4, 4, 4, 4))
        a = latt_fermion(lat, context=ctx)
        a.gaussian(rng)
        b = latt_fermion(lat, context=ctx)
        n0 = ctx.stats.expressions_evaluated
        b.assign(a + a)
        b.assign(a + a)
        assert ctx.stats.expressions_evaluated == n0 + 2

    def test_cost_returned(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        a.gaussian(rng)
        b = latt_fermion(lat4)
        cost = b.assign(2.0 * a)
        assert cost.time_s > 0
        assert cost.bytes_moved == (24 + 24) * 8 * lat4.nsites

    def test_autotuner_drives_block_size(self, rng):
        ctx = Context(autotune=True)
        lat = Lattice((8, 8, 8, 8))
        a = latt_fermion(lat, context=ctx)
        a.gaussian(rng)
        b = latt_fermion(lat, context=ctx)
        for _ in range(10):
            b.assign(2.0 * a)
        ctx.flush()
        states = list(ctx.autotuner.states.values())
        assert states and states[0].launches >= 10

"""Tests for the expression-AST lint (shift aliasing, conformance)."""

import numpy as np
import pytest

from repro.core.expr import shift
from repro.core.lint import LintError, check_assignment, lint_assignment
from repro.diagnostics import Severity
from repro.qdp.fields import latt_complex, latt_fermion
from repro.qdp.lattice import Lattice, Subset


def _by_pass(diagnostics, name):
    return [d for d in diagnostics if d.pass_name == name]


@pytest.fixture()
def fields(ctx, lat4):
    psi = latt_fermion(lat4)
    chi = latt_fermion(lat4)
    return psi, chi


class TestShiftAlias:
    def test_aliased_shift_is_an_error_raw(self, fields):
        psi, _ = fields
        found = _by_pass(lint_assignment(psi, shift(psi.ref(), +1, 0)),
                         "shift-alias")
        assert len(found) == 1
        assert found[0].severity == Severity.ERROR
        assert "race" in found[0].message

    def test_aliased_shift_downgraded_under_materialization(self, fields):
        psi, _ = fields
        found = _by_pass(
            lint_assignment(psi, shift(psi.ref(), +1, 0),
                            assume_materialization=True),
            "shift-alias")
        assert len(found) == 1
        assert found[0].severity == Severity.WARNING

    def test_non_aliased_shift_is_clean(self, fields):
        psi, chi = fields
        assert not _by_pass(lint_assignment(psi, shift(chi.ref(), +1, 0)),
                            "shift-alias")

    def test_unshifted_self_reference_is_clean(self, fields):
        psi, chi = fields
        # psi = psi + chi reads psi(x) in the thread that writes it: fine
        assert not _by_pass(lint_assignment(psi, psi.ref() + chi.ref()),
                            "shift-alias")

    def test_alias_buried_in_subexpression(self, fields):
        psi, chi = fields
        expr = chi.ref() + shift(psi.ref() * 2.0, -1, 2)
        assert _by_pass(lint_assignment(psi, expr), "shift-alias")


class TestAntiparallel:
    def test_forward_and_backward_noted_per_axis(self, fields):
        psi, chi = fields
        expr = (shift(chi.ref(), +1, 0) + shift(chi.ref(), -1, 0)
                + shift(chi.ref(), +1, 1) + shift(chi.ref(), -1, 1))
        found = _by_pass(lint_assignment(psi, expr), "shift-antiparallel")
        assert len(found) == 2          # one per axis, not per shift
        assert all(d.severity == Severity.NOTE for d in found)

    def test_same_direction_twice_is_clean(self, fields):
        psi, chi = fields
        expr = shift(chi.ref(), +1, 0) + shift(chi.ref(), +1, 0)
        assert not _by_pass(lint_assignment(psi, expr), "shift-antiparallel")

    def test_different_axes_are_clean(self, fields):
        psi, chi = fields
        expr = shift(chi.ref(), +1, 0) + shift(chi.ref(), -1, 1)
        assert not _by_pass(lint_assignment(psi, expr), "shift-antiparallel")


class TestConformance:
    def test_mixed_lattices_are_an_error(self, ctx, lat4):
        a = latt_complex(lat4)
        other = Lattice((2, 2, 2, 2))
        b = latt_complex(other)
        found = _by_pass(lint_assignment(a, a.ref() + b.ref()),
                         "lattice-conformance")
        assert found and found[0].severity == Severity.ERROR

    def test_subset_beyond_lattice_is_an_error(self, ctx, lat4, fields):
        psi, chi = fields
        bad = Subset("bad", np.array([0, lat4.nsites + 3]))
        found = _by_pass(lint_assignment(psi, chi.ref(), subset=bad),
                         "lattice-conformance")
        assert found and "beyond" in found[0].message

    def test_conformant_is_clean(self, ctx, fields):
        psi, chi = fields
        assert not _by_pass(lint_assignment(psi, chi.ref()),
                            "lattice-conformance")


class TestMaterializationNote:
    def test_shift_of_expression_noted(self, fields):
        psi, chi = fields
        found = _by_pass(lint_assignment(psi, shift(chi.ref() * 2.0, +1, 0)),
                         "shift-materialization")
        assert found and found[0].severity == Severity.NOTE

    def test_shift_of_leaf_not_noted(self, fields):
        psi, chi = fields
        assert not _by_pass(lint_assignment(psi, shift(chi.ref(), +1, 0)),
                            "shift-materialization")


class TestCheckAssignment:
    def test_error_mode_raises_on_errors(self, ctx, lat4):
        a = latt_complex(lat4)
        b = latt_complex(Lattice((2, 2, 2, 2)))
        with pytest.raises(LintError, match="non-conformant") as exc:
            check_assignment(a, a.ref() + b.ref(), mode="error")
        assert any(d.pass_name == "lattice-conformance"
                   for d in exc.value.diagnostics)

    def test_warn_mode_never_raises(self, ctx, lat4):
        a = latt_complex(lat4)
        b = latt_complex(Lattice((2, 2, 2, 2)))
        with pytest.warns(RuntimeWarning, match="non-conformant"):
            check_assignment(a, a.ref() + b.ref(), mode="warn")

    def test_off_mode_is_silent(self, ctx, lat4):
        a = latt_complex(lat4)
        b = latt_complex(Lattice((2, 2, 2, 2)))
        assert check_assignment(a, a.ref() + b.ref(), mode="off") == []

    def test_aliased_shift_passes_evaluator_view(self, fields):
        # the evaluator materializes first, so default mode must allow it
        psi, _ = fields
        with pytest.warns(RuntimeWarning, match="shift-alias"):
            diagnostics = check_assignment(psi, shift(psi.ref(), +1, 0),
                                           mode="error")
        assert diagnostics   # reported, not fatal


class TestEvaluatorIntegration:
    def test_mixed_lattice_assignment_raises(self, ctx, lat4, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        a = latt_complex(lat4)
        b = latt_complex(Lattice((2, 2, 2, 2)))
        with pytest.raises(LintError, match="lattice-conformance"):
            a.assign(a.ref() + b.ref())

    def test_off_knob_disables_the_lint(self, ctx, lat4, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "off")
        psi = latt_fermion(lat4)
        chi = latt_fermion(lat4)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            psi.assign(shift(psi.ref(), +1, 0) + chi.ref())

    def test_aliased_shift_still_evaluates_correctly(self, ctx, lat4,
                                                     monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        psi = latt_fermion(lat4)
        rng = np.random.default_rng(3)
        psi.gaussian(rng)
        before = psi.to_numpy()
        with pytest.warns(RuntimeWarning, match="shift-alias"):
            psi.assign(shift(psi.ref(), +1, 0))
        assert np.allclose(psi.to_numpy(), before[lat4.shift_map(0, +1)])

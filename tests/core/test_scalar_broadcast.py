"""Tests for scalar-to-lattice broadcast assignments and literals."""

import numpy as np
import pytest

from repro.core.expr import ExprTypeError, ScalarLit
from repro.qdp.fields import latt_complex, latt_fermion, latt_real


class TestBroadcast:
    def test_real_constant_fill(self, ctx, lat4):
        r = latt_real(lat4)
        r.assign(3.25)
        assert np.all(r.to_numpy() == 3.25)

    def test_complex_constant_fill(self, ctx, lat4):
        c = latt_complex(lat4)
        c.assign(1.5 - 2.5j)
        assert np.all(c.to_numpy() == 1.5 - 2.5j)

    def test_complex_into_real_rejected(self, ctx, lat4):
        r = latt_real(lat4)
        with pytest.raises(ExprTypeError):
            r.assign(1.0 + 1.0j)

    def test_shaped_mismatch_rejected(self, ctx, lat4):
        psi = latt_fermion(lat4)
        with pytest.raises(ExprTypeError):
            psi.assign(1.0)   # a scalar is not a spin-color vector

    def test_literal_embedded_in_kernel(self, ctx, lat4, rng):
        """ScalarLit values are structural: two different literals
        produce two kernels (unlike ScalarParam)."""
        r = latt_real(lat4)
        s = latt_real(lat4)
        s.uniform(rng)
        n0 = ctx.kernel_cache.stats.n_kernels
        r.assign(ScalarLit(2.0) * s)
        r.assign(ScalarLit(3.0) * s)
        ctx.flush()
        assert ctx.kernel_cache.stats.n_kernels == n0 + 2

    def test_subset_broadcast(self, ctx, lat4):
        r = latt_real(lat4)
        r.assign(7.0, subset=lat4.odd)
        arr = r.to_numpy()
        assert np.all(arr[lat4.odd.sites] == 7.0)
        assert np.all(arr[lat4.even.sites] == 0.0)

    def test_scalar_expression_arith(self, ctx, lat4, rng):
        r = latt_real(lat4)
        r.uniform(rng)
        out = latt_real(lat4)
        out.assign(2.0 * r + 1.0 * r)
        assert np.allclose(out.to_numpy(), 3.0 * r.to_numpy(),
                           rtol=1e-14)

"""Tests for the code generator: semantics vs NumPy references and
the paper's Table II flop/byte accounting."""

import numpy as np
import pytest

from repro.core.expr import adj, conj, imag, real, shift, timesI, timesMinusI, trace, transpose
from repro.qdp.fields import (
    latt_color_matrix,
    latt_complex,
    latt_fermion,
    latt_propagator,
    latt_real,
    latt_spin_matrix,
)


def _dag(m):
    return m.conj().transpose(0, 2, 1)


@pytest.fixture()
def fields(ctx, lat4, rng):
    u = latt_color_matrix(lat4)
    v = latt_color_matrix(lat4)
    psi = latt_fermion(lat4)
    phi = latt_fermion(lat4)
    g = latt_spin_matrix(lat4)
    h = latt_spin_matrix(lat4)
    for f in (u, v, psi, phi, g, h):
        f.gaussian(rng)
    return u, v, psi, phi, g, h


class TestSemantics:
    """Every operator evaluated through expr -> PTX -> JIT -> launch
    must agree with direct NumPy evaluation."""

    def test_lcm(self, ctx, lat4, fields):
        u, v, *_ = fields
        out = latt_color_matrix(lat4)
        out.assign(u * v)
        ref = np.einsum("nab,nbc->nac", u.to_numpy(), v.to_numpy())
        assert np.allclose(out.to_numpy(), ref, rtol=1e-13)

    def test_upsi(self, ctx, lat4, fields):
        u, _, psi, *_ = fields
        out = latt_fermion(lat4)
        out.assign(u * psi)
        ref = np.einsum("nab,nsb->nsa", u.to_numpy(), psi.to_numpy())
        assert np.allclose(out.to_numpy(), ref, rtol=1e-13)

    def test_spmat(self, ctx, lat4, fields):
        *_, g, h = fields
        out = latt_spin_matrix(lat4)
        out.assign(g * h)
        ref = np.einsum("nab,nbc->nac", g.to_numpy(), h.to_numpy())
        assert np.allclose(out.to_numpy(), ref, rtol=1e-13)

    def test_matvec(self, ctx, lat4, fields):
        u, _, psi, phi, *_ = fields
        out = latt_fermion(lat4)
        out.assign(u * psi + u * phi)
        un = u.to_numpy()
        ref = np.einsum("nab,nsb->nsa", un,
                        psi.to_numpy() + phi.to_numpy())
        assert np.allclose(out.to_numpy(), ref, rtol=1e-12)

    def test_spinmatrix_times_fermion(self, ctx, lat4, fields):
        _, _, psi, _, g, _ = fields
        out = latt_fermion(lat4)
        out.assign(g * psi)
        ref = np.einsum("nst,ntc->nsc", g.to_numpy(), psi.to_numpy())
        assert np.allclose(out.to_numpy(), ref, rtol=1e-13)

    def test_propagator_product(self, ctx, lat4, rng):
        p = latt_propagator(lat4)
        q = latt_propagator(lat4)
        p.gaussian(rng)
        q.gaussian(rng)
        out = latt_propagator(lat4)
        out.assign(p * q)
        ref = np.einsum("nstab,ntubc->nsuac", p.to_numpy(), q.to_numpy())
        assert np.allclose(out.to_numpy(), ref, rtol=1e-12)

    def test_adj(self, ctx, lat4, fields):
        u, *_ = fields
        out = latt_color_matrix(lat4)
        out.assign(adj(u))
        assert np.array_equal(out.to_numpy(), _dag(u.to_numpy()))

    def test_transpose_no_conj(self, ctx, lat4, fields):
        u, *_ = fields
        out = latt_color_matrix(lat4)
        out.assign(transpose(u))
        assert np.array_equal(out.to_numpy(),
                              u.to_numpy().transpose(0, 2, 1))

    def test_conj_no_transpose(self, ctx, lat4, fields):
        u, *_ = fields
        out = latt_color_matrix(lat4)
        out.assign(conj(u))
        assert np.array_equal(out.to_numpy(), u.to_numpy().conj())

    def test_adj_of_product(self, ctx, lat4, fields):
        """adj(A*B) = adj(B) adj(A) must hold structurally."""
        u, v, *_ = fields
        out = latt_color_matrix(lat4)
        out.assign(adj(u * v))
        ref = np.einsum("nab,nbc->nac", _dag(v.to_numpy()),
                        _dag(u.to_numpy()))
        assert np.allclose(out.to_numpy(), ref, rtol=1e-13)

    def test_timesI(self, ctx, lat4, fields):
        _, _, psi, *_ = fields
        out = latt_fermion(lat4)
        out.assign(timesI(psi))
        assert np.array_equal(out.to_numpy(), 1j * psi.to_numpy())
        out.assign(timesMinusI(psi))
        assert np.array_equal(out.to_numpy(), -1j * psi.to_numpy())

    def test_neg(self, ctx, lat4, fields):
        _, _, psi, *_ = fields
        out = latt_fermion(lat4)
        out.assign(-psi)
        assert np.array_equal(out.to_numpy(), -psi.to_numpy())

    def test_real_imag(self, ctx, lat4, fields):
        _, _, psi, *_ = fields
        out = latt_real(lat4)
        # component-shaped: go through a complex scalar field
        c = latt_complex(lat4)
        c.gaussian(np.random.default_rng(3))
        out.assign(real(c))
        assert np.array_equal(out.to_numpy(), c.to_numpy().real)
        out.assign(imag(c))
        assert np.array_equal(out.to_numpy(), c.to_numpy().imag)

    def test_traces(self, ctx, lat4, rng):
        p = latt_propagator(lat4)
        p.gaussian(rng)
        pn = p.to_numpy()
        outc = latt_spin_matrix(lat4)
        outc.assign(traceColor_expr(p))
        ref = np.einsum("nstaa->nst", pn)
        assert np.allclose(outc.to_numpy(), ref, rtol=1e-13)
        outs = latt_color_matrix(lat4)
        from repro.core.expr import traceSpin

        outs.assign(traceSpin(p.ref()))
        assert np.allclose(outs.to_numpy(), np.einsum("nssab->nab", pn),
                           rtol=1e-13)
        outt = latt_complex(lat4)
        outt.assign(trace(p.ref()))
        assert np.allclose(outt.to_numpy(), np.einsum("nssaa->n", pn),
                           rtol=1e-13)

    def test_shift_expression_materialized(self, ctx, lat4, fields):
        u, _, psi, *_ = fields
        out = latt_fermion(lat4)
        out.assign(shift(adj(u) * psi, -1, 1))
        inner = np.einsum("nba,nsb->nsa", u.to_numpy().conj(),
                          psi.to_numpy())
        t = lat4.shift_map(1, -1)
        assert np.allclose(out.to_numpy(), inner[t], rtol=1e-13)

    def test_shift_of_destination_aliased(self, ctx, lat4, fields):
        """psi = shift(psi) must read the *old* psi (temp copy)."""
        _, _, psi, *_ = fields
        snapshot = psi.to_numpy().copy()
        psi.assign(shift(psi, +1, 0))
        t = lat4.shift_map(0, +1)
        assert np.array_equal(psi.to_numpy(), snapshot[t])

    def test_gamma_projector_folding(self, ctx, lat4, fields):
        from repro.qcd.gamma import projector, projector_const

        _, _, psi, *_ = fields
        out = latt_fermion(lat4)
        out.assign(projector_const(2, +1) * psi)
        ref = np.einsum("st,ntc->nsc", projector(2, +1), psi.to_numpy())
        assert np.allclose(out.to_numpy(), ref, rtol=1e-13)

    def test_scalar_param_value_bound_at_launch(self, ctx, lat4, fields):
        _, _, psi, *_ = fields
        out = latt_fermion(lat4)
        kernels_before = ctx.kernel_cache.stats.n_kernels
        out.assign(0.5 * psi)
        a = out.to_numpy().copy()
        out.assign(0.25 * psi)
        b = out.to_numpy()
        assert np.allclose(a, 2 * b)
        # the two launches share one compiled kernel
        assert ctx.kernel_cache.stats.n_kernels <= kernels_before + 1

    def test_complex_scalar(self, ctx, lat4, fields):
        _, _, psi, *_ = fields
        out = latt_fermion(lat4)
        out.assign((0.3 - 0.7j) * psi)
        assert np.allclose(out.to_numpy(), (0.3 - 0.7j) * psi.to_numpy(),
                           rtol=1e-13)

    def test_long_expression(self, ctx, lat4, fields):
        u, v, psi, phi, *_ = fields
        out = latt_fermion(lat4)
        out.assign(u * (v * psi) + 2.0 * phi - timesI(u * phi))
        un, vn = u.to_numpy(), v.to_numpy()
        pn, qn = psi.to_numpy(), phi.to_numpy()
        ref = (np.einsum("nab,nbc,nsc->nsa", un, vn, pn)
               + 2.0 * qn - 1j * np.einsum("nab,nsb->nsa", un, qn))
        assert np.allclose(out.to_numpy(), ref, rtol=1e-12)


def traceColor_expr(p):
    from repro.core.expr import traceColor

    return traceColor(p.ref())


class TestTableII:
    """Paper Table II: flop/byte of the five test functions (DP)."""

    @pytest.mark.parametrize("name,expected", [
        ("lcm", 0.458), ("upsi", 0.5), ("spmat", 0.62),
        ("matvec", 0.64), ("clover", 0.525),
    ])
    def test_arithmetic_intensity(self, name, expected):
        from repro.perfmodel.kernelperf import generate_test_kernels

        stats = generate_test_kernels("f64")
        assert stats[name].flop_per_byte == pytest.approx(expected,
                                                          abs=0.006)

    def test_exact_flop_counts(self):
        from repro.perfmodel.kernelperf import generate_test_kernels

        stats = generate_test_kernels("f64")
        assert stats["lcm"].flops_per_site == 198      # 9*(3*6 + 2*2)
        assert stats["upsi"].flops_per_site == 264     # 4 spins * 66
        assert stats["spmat"].flops_per_site == 480    # 16*(4*6+3*2)
        assert stats["matvec"].flops_per_site == 552
        assert stats["clover"].flops_per_site == 504   # 12*(2+5*8)

    def test_exact_byte_counts(self):
        from repro.perfmodel.kernelperf import generate_test_kernels

        stats = generate_test_kernels("f64")
        assert stats["lcm"].bytes_per_site == 432      # 3 * 18 * 8
        assert stats["upsi"].bytes_per_site == 528     # (18+24+24)*8
        assert stats["matvec"].bytes_per_site == 864   # U1 counted twice
        assert stats["clover"].bytes_per_site == 960   # (72+48)*8

    def test_sp_halves_bytes_keeps_flops(self):
        from repro.perfmodel.kernelperf import generate_test_kernels

        dp = generate_test_kernels("f64")
        sp = generate_test_kernels("f32")
        for name in dp:
            assert sp[name].flops_per_site == dp[name].flops_per_site
            assert sp[name].bytes_per_site * 2 == dp[name].bytes_per_site

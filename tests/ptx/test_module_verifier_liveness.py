"""Tests for module rendering, static verification, and liveness."""

import pytest

from repro.ptx import (
    KernelBuilder,
    PTXModule,
    PTXType,
    PTXVerificationError,
    verify,
)
from repro.ptx.liveness import max_live_registers


def _simple_kernel():
    kb = KernelBuilder("axpy")
    pn = kb.add_param("p_n", PTXType.S32)
    px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
    py = kb.add_param("p_y", PTXType.U64, is_pointer=True)
    pa = kb.add_param("p_a", PTXType.F64)
    n = kb.ld_param(pn)
    x = kb.ld_param(px)
    y = kb.ld_param(py)
    a = kb.ld_param(pa)
    gid = kb.global_thread_id()
    oob = kb.setp("ge", gid, n)
    exit_l = kb.new_label("EXIT")
    kb.bra(exit_l, guard=oob)
    off = kb.mul(kb.cvt(gid, PTXType.S64), kb.imm(8, PTXType.S64))
    off = kb.cvt(off, PTXType.U64)
    xa = kb.add(x, off)
    ya = kb.add(y, off)
    vx = kb.ld_global(xa, PTXType.F64)
    vy = kb.ld_global(ya, PTXType.F64)
    kb.st_global(ya, kb.fma(a, vx, vy), PTXType.F64)
    kb.label(exit_l)
    kb.ret()
    return kb


class TestModuleRender:
    def test_header(self):
        mod = PTXModule.from_builder(_simple_kernel())
        text = mod.render()
        assert text.startswith(".version 3.1")
        assert ".target sm_35" in text
        assert ".address_size 64" in text

    def test_entry_and_params(self):
        text = PTXModule.from_builder(_simple_kernel()).render()
        assert ".visible .entry axpy(" in text
        assert ".param .u64 .ptr .global p_x" in text
        assert ".param .f64 p_a" in text

    def test_register_declarations(self):
        text = PTXModule.from_builder(_simple_kernel()).render()
        assert ".reg .f64 %fd<" in text
        assert ".reg .pred %p<" in text

    def test_body_contains_instructions(self):
        text = PTXModule.from_builder(_simple_kernel()).render()
        assert "ld.param.u64 %ru0, [p_x];" in text
        assert "fma.rn.f64" in text
        assert text.rstrip().endswith("}")


class TestVerifier:
    def test_valid_kernel_passes(self):
        verify(PTXModule.from_builder(_simple_kernel()))

    def test_undefined_register_caught(self):
        from repro.ptx.isa import Instruction, Register

        kb = KernelBuilder("bad")
        ghost = Register(PTXType.F64, 99)
        dst = kb.new_reg(PTXType.F64)
        kb.emit(Instruction("add", PTXType.F64, dst, (ghost, ghost)))
        with pytest.raises(PTXVerificationError, match="undefined register"):
            verify(PTXModule.from_builder(kb))

    def test_branch_to_unknown_label_caught(self):
        kb = KernelBuilder("bad")
        kb.bra("$NOWHERE")
        with pytest.raises(PTXVerificationError, match="undefined label"):
            verify(PTXModule.from_builder(kb))

    def test_type_mismatch_caught(self):
        from repro.ptx.isa import Instruction

        kb = KernelBuilder("bad")
        a = kb.mov(kb.imm(1.0, PTXType.F32))
        dst = kb.new_reg(PTXType.F64)
        kb.emit(Instruction("add", PTXType.F64, dst, (a, a)))
        with pytest.raises(PTXVerificationError, match="type"):
            verify(PTXModule.from_builder(kb))

    def test_ld_param_of_undeclared_param(self):
        from repro.ptx.builder import _ParamRef
        from repro.ptx.isa import Instruction

        kb = KernelBuilder("bad")
        dst = kb.new_reg(PTXType.S32)
        kb.emit(Instruction("ld.param", PTXType.S32, dst,
                            (_ParamRef("p_ghost"),)))
        with pytest.raises(PTXVerificationError, match="undeclared"):
            verify(PTXModule.from_builder(kb))

    def test_store_address_must_be_u64(self):
        from repro.ptx.isa import Instruction

        kb = KernelBuilder("bad")
        addr = kb.mov(kb.imm(8, PTXType.S64))
        val = kb.mov(kb.imm(1.0, PTXType.F64))
        kb.emit(Instruction("st.global", PTXType.F64, None, (addr, val)))
        with pytest.raises(PTXVerificationError, match="u64"):
            verify(PTXModule.from_builder(kb))


class TestLiveness:
    def test_floor_is_eight(self):
        kb = KernelBuilder("tiny")
        kb.mov(kb.imm(0, PTXType.S32))
        kb.ret()
        assert max_live_registers(kb.instructions) == 8

    def test_chain_has_low_pressure(self):
        # a long dependency chain keeps only ~2 values live
        kb = KernelBuilder("chain")
        v = kb.mov(kb.imm(1.0, PTXType.F32))
        for _ in range(100):
            v = kb.add(v, kb.imm(1.0, PTXType.F32))
        kb.ret()
        assert max_live_registers(kb.instructions) <= 10

    def test_fanout_has_high_pressure(self):
        # many values all consumed at the end stay live together
        kb = KernelBuilder("fan")
        vals = [kb.mov(kb.imm(float(i), PTXType.F32)) for i in range(32)]
        acc = vals[0]
        for v in vals[1:]:
            acc = kb.add(acc, v)
        kb.ret()
        assert max_live_registers(kb.instructions) >= 32

    def test_loop_carried_registers_counted_through_back_edge(self):
        """Regression guard for the CFG fixpoint: registers carried
        around a loop's back edge must be counted live through the
        *whole* loop body.

        The kernel below uses ten f64 registers at the loop top, then
        redefines them mid-loop; textually they are dead at the loop
        bottom, but along the back edge the new values flow to the
        next iteration's top uses, so they are live across the burst
        of ten f64 temporaries that follows.  A single linear backward
        sweep (no fixpoint) sees the carried group and the burst group
        live in disjoint textual windows and peaks around 28 slots;
        only the iterated CFG dataflow sees both groups live at once
        (20 + 20 slots, plus sinks/counters/pointer).
        """
        from repro.ptx.isa import Instruction

        kb = KernelBuilder("carried")
        pn = kb.add_param("p_n", PTXType.S32)
        po = kb.add_param("p_out", PTXType.U64, is_pointer=True)
        n = kb.ld_param(pn)
        out = kb.ld_param(po)
        i = kb.mov(kb.imm(0, PTXType.S32))
        sink = kb.mov(kb.imm(0.0, PTXType.F64))
        sink2 = kb.mov(kb.imm(0.0, PTXType.F64))
        vs = [kb.mov(kb.imm(float(k), PTXType.F64)) for k in range(10)]
        loop = kb.new_label("LOOP")
        kb.label(loop)
        # top-of-loop uses of the carried registers
        for v in vs:
            kb.emit(Instruction("add", PTXType.F64, sink, (sink, v)))
        # redefinitions: textually dead below this point, but live
        # around the back edge up to the next iteration's uses
        for k, v in enumerate(vs):
            kb.emit(Instruction("mov", PTXType.F64, v,
                                (kb.imm(float(k + 1), PTXType.F64),)))
        # a burst of temporaries all live at the fold — on top of the
        # carried group, in the fixpoint view
        ts = [kb.mov(kb.imm(float(k), PTXType.F64)) for k in range(10)]
        s = kb.mov(kb.imm(0.0, PTXType.F64))
        for t in ts:
            kb.emit(Instruction("add", PTXType.F64, s, (s, t)))
        kb.emit(Instruction("add", PTXType.F64, sink2, (sink2, s)))
        kb.emit(Instruction("add", PTXType.S32, i,
                            (i, kb.imm(1, PTXType.S32))))
        p = kb.setp("lt", i, n)
        kb.bra(loop, guard=p)
        kb.emit(Instruction("add", PTXType.F64, sink, (sink, sink2)))
        kb.st_global(out, sink, PTXType.F64)
        kb.ret()

        pressure = max_live_registers(kb.instructions)
        # carried 20 + burst 20 + sink/sink2 4 + i/n 2 + out 2 = 48
        assert pressure >= 44, pressure

    def test_64bit_registers_cost_two_slots(self):
        kb32 = KernelBuilder("a")
        v32 = [kb32.mov(kb32.imm(float(i), PTXType.F32)) for i in range(16)]
        acc = v32[0]
        for v in v32[1:]:
            acc = kb32.add(acc, v)
        kb64 = KernelBuilder("b")
        v64 = [kb64.mov(kb64.imm(float(i), PTXType.F64)) for i in range(16)]
        acc = v64[0]
        for v in v64[1:]:
            acc = kb64.add(acc, v)
        assert (max_live_registers(kb64.instructions)
                >= 2 * max_live_registers(kb32.instructions) - 8)

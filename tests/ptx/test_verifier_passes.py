"""Tests for the verifier pass pipeline (multi-diagnostic, CFG-aware)."""

import pytest

from repro.diagnostics import Severity
from repro.ptx import (
    KernelBuilder,
    PTXModule,
    PTXType,
    PTXVerificationError,
    run_passes,
    verify,
)
from repro.ptx.builder import _ParamRef
from repro.ptx.isa import Immediate, Instruction


def _by_pass(diagnostics, name):
    return [d for d in diagnostics if d.pass_name == name]


def _one_armed_def():
    """``x`` is written on the fall-through arm only, then read after
    the join — textually def-before-use, but not on every path."""
    kb = KernelBuilder("onearm")
    pn = kb.add_param("p_n", PTXType.S32)
    n = kb.ld_param(pn)
    gid = kb.global_thread_id()
    p = kb.setp("ge", gid, n)
    kb.bra("$SKIP", guard=p)
    x = kb.new_reg(PTXType.F64)
    kb.emit(Instruction("mov", PTXType.F64, x,
                        (Immediate(PTXType.F64, 1.0),)))
    kb.label("$SKIP")
    y = kb.new_reg(PTXType.F64)
    kb.emit(Instruction("add", PTXType.F64, y, (x, x)))
    kb.ret()
    return PTXModule.from_builder(kb)


class TestDefiniteAssignment:
    def test_one_armed_definition_caught(self):
        diagnostics = run_passes(_one_armed_def())
        found = _by_pass(diagnostics, "definite-assignment")
        assert len(found) == 1
        assert found[0].severity == Severity.ERROR
        assert "undefined register" in found[0].message

    def test_one_armed_definition_raises(self):
        with pytest.raises(PTXVerificationError, match="undefined register"):
            verify(_one_armed_def())

    def test_both_arms_defined_is_clean(self):
        kb = KernelBuilder("botharms")
        pn = kb.add_param("p_n", PTXType.S32)
        n = kb.ld_param(pn)
        gid = kb.global_thread_id()
        p = kb.setp("ge", gid, n)
        x = kb.new_reg(PTXType.F64)
        kb.bra("$ELSE", guard=p)
        kb.emit(Instruction("mov", PTXType.F64, x,
                            (Immediate(PTXType.F64, 1.0),)))
        kb.bra("$JOIN")
        kb.label("$ELSE")
        kb.emit(Instruction("mov", PTXType.F64, x,
                            (Immediate(PTXType.F64, 2.0),)))
        kb.label("$JOIN")
        y = kb.new_reg(PTXType.F64)
        kb.emit(Instruction("add", PTXType.F64, y, (x, x)))
        kb.ret()
        diagnostics = run_passes(PTXModule.from_builder(kb))
        assert not _by_pass(diagnostics, "definite-assignment")


class TestMultiDiagnostic:
    def test_all_violations_collected(self):
        """The pipeline reports every problem, not just the first."""
        from repro.ptx.isa import Register

        kb = KernelBuilder("manybad")
        ghost = Register(PTXType.F64, 99)
        a = kb.new_reg(PTXType.F64)
        kb.emit(Instruction("add", PTXType.F64, a, (ghost, ghost)))
        f32 = kb.mov(kb.imm(1.0, PTXType.F32))
        b = kb.new_reg(PTXType.F64)
        kb.emit(Instruction("add", PTXType.F64, b, (f32, f32)))  # type err
        kb.ret()
        diagnostics = run_passes(PTXModule.from_builder(kb))
        assert _by_pass(diagnostics, "definite-assignment")
        assert _by_pass(diagnostics, "operands")
        with pytest.raises(PTXVerificationError) as exc:
            verify(PTXModule.from_builder(kb))
        assert len(exc.value.diagnostics) >= 2


class TestUnreachableCode:
    def test_dead_code_flagged_as_warning(self):
        kb = KernelBuilder("dead")
        kb.bra("$END")
        kb.mov(kb.imm(1.0, PTXType.F64))   # unreachable
        kb.label("$END")
        kb.ret()
        diagnostics = run_passes(PTXModule.from_builder(kb))
        found = _by_pass(diagnostics, "unreachable-code")
        assert len(found) == 1
        assert found[0].severity == Severity.WARNING
        verify(PTXModule.from_builder(kb))  # warning: must not raise


class TestReturnPaths:
    def test_guarded_ret_only_is_an_error(self):
        kb = KernelBuilder("maybe_ret")
        gid = kb.global_thread_id()
        p = kb.setp("ge", gid, kb.imm(0, PTXType.S32))
        kb.emit(Instruction("ret", None, None, (), guard=p))
        diagnostics = run_passes(PTXModule.from_builder(kb))
        found = _by_pass(diagnostics, "return-paths")
        assert found and found[0].severity == Severity.ERROR

    def test_infinite_loop_is_an_error(self):
        kb = KernelBuilder("spin")
        kb.label("$LOOP")
        kb.bra("$LOOP")
        diagnostics = run_passes(PTXModule.from_builder(kb))
        found = _by_pass(diagnostics, "return-paths")
        assert found and "not return" in found[0].message

    def test_normal_kernel_is_clean(self):
        kb = KernelBuilder("fine")
        kb.mov(kb.imm(1.0, PTXType.F64))
        kb.ret()
        assert not _by_pass(run_passes(PTXModule.from_builder(kb)),
                            "return-paths")


class TestBoundsGuard:
    def _guarded(self):
        kb = KernelBuilder("guarded")
        pn = kb.add_param("p_n", PTXType.S32)
        px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
        n = kb.ld_param(pn)
        x = kb.ld_param(px)
        gid = kb.global_thread_id()
        oob = kb.setp("ge", gid, n)
        kb.bra("$EXIT", guard=oob)
        kb.ld_global(x, PTXType.F64)
        kb.label("$EXIT")
        kb.ret()
        return PTXModule.from_builder(kb)

    def _unguarded(self):
        kb = KernelBuilder("unguarded")
        px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
        x = kb.ld_param(px)
        kb.ld_global(x, PTXType.F64)
        kb.ret()
        return PTXModule.from_builder(kb)

    def test_guard_dominated_access_is_clean(self):
        assert not _by_pass(run_passes(self._guarded()), "proven-bounds")

    def test_unguarded_access_warns_but_does_not_raise(self):
        diagnostics = run_passes(self._unguarded())
        found = _by_pass(diagnostics, "proven-bounds")
        assert len(found) == 1
        assert found[0].severity == Severity.WARNING
        verify(self._unguarded())   # warnings never raise

    def test_predicated_access_counts_as_guarded(self):
        kb = KernelBuilder("pred")
        pn = kb.add_param("p_n", PTXType.S32)
        px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
        n = kb.ld_param(pn)
        x = kb.ld_param(px)
        gid = kb.global_thread_id()
        ok = kb.setp("lt", gid, n)
        dst = kb.new_reg(PTXType.F64)
        kb.emit(Instruction("ld.global", PTXType.F64, dst, (x,), guard=ok))
        kb.ret()
        assert not _by_pass(run_passes(PTXModule.from_builder(kb)),
                            "proven-bounds")


class TestLdParamTypes:
    def test_type_mismatch_caught(self):
        kb = KernelBuilder("badld")
        kb.add_param("p_n", PTXType.S32)
        dst = kb.new_reg(PTXType.F64)
        kb.emit(Instruction("ld.param", PTXType.F64, dst,
                            (_ParamRef("p_n"),)))
        kb.ret()
        diagnostics = run_passes(PTXModule.from_builder(kb))
        found = [d for d in _by_pass(diagnostics, "operands")
                 if "ld.param type mismatch" in d.message]
        assert found and found[0].severity == Severity.ERROR

    def test_matching_type_is_clean(self):
        kb = KernelBuilder("okld")
        pn = kb.add_param("p_n", PTXType.S32)
        kb.ld_param(pn)
        kb.ret()
        diagnostics = run_passes(PTXModule.from_builder(kb))
        assert not [d for d in diagnostics if "ld.param" in d.message]


class TestPipeline:
    def test_pass_registry_names(self):
        from repro.ptx.verifier import PASSES

        assert set(PASSES) == {"operands", "ssa-structure",
                               "definite-assignment",
                               "unreachable-code", "return-paths",
                               "proven-bounds", "coalescing",
                               "divergence"}

    def test_pass_subset_selection(self):
        module = _one_armed_def()
        only = run_passes(module, passes=["unreachable-code"])
        assert not _by_pass(only, "definite-assignment")

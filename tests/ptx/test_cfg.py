"""Tests for CFG construction, dominators, and the dataflow solver."""

from repro.ptx import KernelBuilder, PTXType
from repro.ptx.cfg import DataflowAnalysis, build_cfg, solve
from repro.ptx.liveness import max_live_registers


def _diamond():
    """if (p) {A} else {B}; join — four blocks."""
    kb = KernelBuilder("diamond")
    pn = kb.add_param("p_n", PTXType.S32)
    n = kb.ld_param(pn)
    gid = kb.global_thread_id()
    p = kb.setp("ge", gid, n)
    kb.bra("$ELSE", guard=p)
    kb.mov(kb.imm(1.0, PTXType.F64))        # then-arm
    kb.bra("$JOIN")
    kb.label("$ELSE")
    kb.mov(kb.imm(2.0, PTXType.F64))        # else-arm
    kb.label("$JOIN")
    kb.ret()
    return kb


def _loop():
    """One-block loop body with a conditional back edge."""
    kb = KernelBuilder("loop")
    x = kb.mov(kb.imm(0.0, PTXType.F32))
    kb.label("$LOOP")
    x = kb.add(x, kb.imm(1.0, PTXType.F32))
    p = kb.setp("lt", x, kb.imm(100.0, PTXType.F32))
    kb.bra("$LOOP", guard=p)
    kb.ret()
    return kb


class TestBlocks:
    def test_straight_line_is_one_block(self):
        kb = KernelBuilder("straight")
        v = kb.mov(kb.imm(1.0, PTXType.F64))
        kb.add(v, v)
        kb.ret()
        cfg = build_cfg(kb.instructions)
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].successors == []

    def test_diamond_shape(self):
        cfg = build_cfg(_diamond().instructions)
        assert len(cfg.blocks) == 4
        entry, then, els, join = cfg.blocks
        # entry branches to else and falls through to then
        assert set(entry.successors) == {then.index, els.index}
        assert then.successors == [join.index]
        assert els.successors == [join.index]
        assert set(join.predecessors) == {then.index, els.index}
        assert els.label == "$ELSE"
        assert join.label == "$JOIN"

    def test_unconditional_branch_does_not_fall_through(self):
        cfg = build_cfg(_diamond().instructions)
        then = cfg.blocks[1]          # ends in unguarded `bra $JOIN`
        assert then.successors == [3]  # only the branch target

    def test_block_of(self):
        kb = _diamond()
        cfg = build_cfg(kb.instructions)
        for blk in cfg.blocks:
            for i in range(blk.start, blk.stop):
                assert cfg.block_of(i) == blk.index

    def test_loop_back_edge(self):
        cfg = build_cfg(_loop().instructions)
        body = next(b for b in cfg.blocks if b.label == "$LOOP")
        assert body.index in body.successors       # back edge
        assert body.index + 1 in body.successors   # guarded: falls through


class TestReachability:
    def test_code_after_unconditional_branch_is_unreachable(self):
        kb = KernelBuilder("dead")
        kb.bra("$END")
        kb.mov(kb.imm(1.0, PTXType.F64))   # dead
        kb.label("$END")
        kb.ret()
        cfg = build_cfg(kb.instructions)
        dead = cfg.block_of(1)
        assert dead not in cfg.reachable()

    def test_rpo_starts_at_entry_ends_at_exit(self):
        cfg = build_cfg(_diamond().instructions)
        order = cfg.rpo()
        assert order[0] == cfg.entry
        assert order[-1] == 3              # the join block
        assert len(order) == 4


class TestDominators:
    def test_diamond(self):
        cfg = build_cfg(_diamond().instructions)
        dom = cfg.dominators()
        entry, then, els, join = range(4)
        assert dom[entry] == {entry}
        assert dom[then] == {entry, then}
        assert dom[els] == {entry, els}
        # neither arm dominates the join; only the entry does
        assert dom[join] == {entry, join}

    def test_loop_header_dominates_body(self):
        cfg = build_cfg(_loop().instructions)
        dom = cfg.dominators()
        body = next(b.index for b in cfg.blocks if b.label == "$LOOP")
        exit_b = body + 1
        assert body in dom[exit_b]


class _ReachingConsts(DataflowAnalysis):
    """Toy forward may-analysis: labels of blocks executed so far."""

    direction = "forward"

    def transfer(self, block, instructions, fact):
        return fact | {block.index}


class TestSolver:
    def test_forward_union(self):
        cfg = build_cfg(_diamond().instructions)
        inputs, outputs = solve(cfg, _ReachingConsts())
        # at the join, both arms' facts merge
        assert inputs[3] == {0, 1, 2}
        assert outputs[3] == {0, 1, 2, 3}

    def test_loop_reaches_fixpoint(self):
        cfg = build_cfg(_loop().instructions)
        inputs, outputs = solve(cfg, _ReachingConsts())
        body = next(b.index for b in cfg.blocks if b.label == "$LOOP")
        # the back edge feeds the body's own fact into its input
        assert body in inputs[body]


class TestLivenessLoops:
    def test_back_edge_extends_liveness(self):
        """Values used at a loop's top are live through its whole body.

        A linear backward sweep would let ``keep`` die right after its
        (textually early) use, underreporting the pressure inside the
        temp-heavy tail of the body; the CFG fixpoint carries it
        around the back edge.
        """

        def build(with_back_edge: bool) -> int:
            kb = KernelBuilder("loop")
            keep = [kb.mov(kb.imm(float(k), PTXType.F64))
                    for k in range(8)]                    # 16 slots
            kb.label("$LOOP")
            acc = keep[0]
            for k in keep[1:]:
                acc = kb.add(acc, k)                      # use at loop top
            vals = [kb.mov(kb.imm(float(k), PTXType.F32))
                    for k in range(20)]                   # temp pressure
            t = vals[0]
            for v in vals[1:]:
                t = kb.add(t, v)
            p = kb.setp("lt", t, kb.imm(100.0, PTXType.F32))
            if with_back_edge:
                kb.bra("$LOOP", guard=p)
            kb.ret()
            return max_live_registers(kb.instructions)

        straight = build(with_back_edge=False)
        looped = build(with_back_edge=True)
        # the 8 f64 keeps (16 slots) must stay live through the temps
        assert looped >= straight + 14

"""Unit tests for the kernel builder (emission + implicit promotion)."""

import pytest

from repro.ptx.builder import KernelBuilder, PTXBuildError, promote
from repro.ptx.isa import PTXType


class TestPromotion:
    """The implicit type promotion of paper Sec. III-D."""

    def test_same_type(self):
        assert promote(PTXType.F32, PTXType.F32) == PTXType.F32

    def test_widest_float_wins(self):
        assert promote(PTXType.F32, PTXType.F64) == PTXType.F64
        assert promote(PTXType.F64, PTXType.F32) == PTXType.F64

    def test_float_beats_int(self):
        assert promote(PTXType.S32, PTXType.F32) == PTXType.F32
        assert promote(PTXType.F64, PTXType.S64) == PTXType.F64

    def test_wider_int_wins(self):
        assert promote(PTXType.S32, PTXType.S64) == PTXType.S64
        assert promote(PTXType.U32, PTXType.U64) == PTXType.U64

    def test_signed_wins_ties(self):
        assert promote(PTXType.S32, PTXType.U32) == PTXType.S32


class TestBuilder:
    def test_registers_are_fresh_and_numbered(self):
        kb = KernelBuilder("k")
        a = kb.new_reg(PTXType.F64)
        b = kb.new_reg(PTXType.F64)
        c = kb.new_reg(PTXType.F32)
        assert (a.index, b.index, c.index) == (0, 1, 0)

    def test_mixed_precision_inserts_cvt(self):
        kb = KernelBuilder("k")
        a = kb.new_reg(PTXType.F32)
        b = kb.new_reg(PTXType.F64)
        r = kb.add(a, b)
        assert r.type == PTXType.F64
        assert any(i.opcode == "cvt" for i in kb.instructions)

    def test_integer_multiply_uses_mul_lo(self):
        kb = KernelBuilder("k")
        a = kb.new_reg(PTXType.S64)
        b = kb.new_reg(PTXType.S64)
        r = kb.mul(a, b)
        assert r.type == PTXType.S64
        assert kb.instructions[-1].opcode == "mul.lo"

    def test_float_fma_counts_two_flops(self):
        kb = KernelBuilder("k")
        a, b, c = (kb.new_reg(PTXType.F64) for _ in range(3))
        before = kb.info.flops_per_site
        kb.fma(a, b, c)
        assert kb.info.flops_per_site == before + 2

    def test_integer_mad_counts_no_flops(self):
        kb = KernelBuilder("k")
        a, b, c = (kb.new_reg(PTXType.S32) for _ in range(3))
        before = kb.info.flops_per_site
        kb.fma(a, b, c)
        assert kb.info.flops_per_site == before

    def test_load_counts_bytes(self):
        kb = KernelBuilder("k")
        addr = kb.new_reg(PTXType.U64)
        kb.ld_global(addr, PTXType.F64)
        assert kb.info.bytes_loaded_per_site == 8
        kb.ld_global(addr, PTXType.F32)
        assert kb.info.bytes_loaded_per_site == 12

    def test_store_counts_bytes(self):
        kb = KernelBuilder("k")
        addr = kb.new_reg(PTXType.U64)
        val = kb.new_reg(PTXType.F32)
        kb.st_global(addr, val, PTXType.F32)
        assert kb.info.bytes_stored_per_site == 4

    def test_store_coerces_value(self):
        kb = KernelBuilder("k")
        addr = kb.new_reg(PTXType.U64)
        val = kb.new_reg(PTXType.F64)
        kb.st_global(addr, val, PTXType.F32)
        assert any(i.opcode == "cvt" for i in kb.instructions)

    def test_duplicate_param_rejected(self):
        kb = KernelBuilder("k")
        kb.add_param("p", PTXType.S32)
        with pytest.raises(PTXBuildError):
            kb.add_param("p", PTXType.S32)

    def test_unknown_opcode_rejected(self):
        kb = KernelBuilder("k")
        a = kb.new_reg(PTXType.F32)
        with pytest.raises(PTXBuildError):
            kb.binary("frobnicate", a, a)
        with pytest.raises(PTXBuildError):
            kb.unary("frobnicate", a)
        with pytest.raises(PTXBuildError):
            kb.setp("approximately", a, a)

    def test_finish_appends_ret(self):
        kb = KernelBuilder("k")
        kb.mov(kb.imm(1, PTXType.S32))
        info = kb.finish()
        assert kb.instructions[-1].opcode == "ret"
        assert info.n_instructions == len(kb.instructions)

    def test_global_thread_id_shape(self):
        kb = KernelBuilder("k")
        gid = kb.global_thread_id()
        assert gid.type == PTXType.S32
        opcodes = [i.opcode for i in kb.instructions]
        assert "mad.lo" in opcodes  # ctaid * ntid + tid

    def test_labels_unique(self):
        kb = KernelBuilder("k")
        assert kb.new_label() != kb.new_label()

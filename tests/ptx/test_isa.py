"""Unit tests for the PTX ISA definitions."""

from repro.ptx.isa import (
    Immediate,
    Instruction,
    KernelInfo,
    PTXType,
    Register,
    Special,
)


class TestPTXType:
    def test_float_classification(self):
        assert PTXType.F32.is_float and PTXType.F64.is_float
        assert not PTXType.S32.is_float
        assert not PTXType.PRED.is_float

    def test_int_classification(self):
        for t in (PTXType.S32, PTXType.S64, PTXType.U32, PTXType.U64):
            assert t.is_int
        assert not PTXType.F32.is_int

    def test_signedness(self):
        assert PTXType.S32.is_signed and PTXType.S64.is_signed
        assert not PTXType.U32.is_signed and not PTXType.U64.is_signed

    def test_sizes(self):
        assert PTXType.F32.nbytes == 4
        assert PTXType.F64.nbytes == 8
        assert PTXType.S64.nbytes == 8
        assert PTXType.PRED.nbytes == 1

    def test_register_prefixes_unique(self):
        prefixes = [t.reg_prefix for t in PTXType]
        assert len(prefixes) == len(set(prefixes)), \
            "ambiguous register naming would break the parser"


class TestOperands:
    def test_register_name(self):
        assert Register(PTXType.F64, 3).name == "%fd3"
        assert Register(PTXType.U64, 0).name == "%ru0"
        assert Register(PTXType.PRED, 7).name == "%p7"

    def test_immediate_rendering(self):
        assert Immediate(PTXType.S32, 42).name == "42"
        assert Immediate(PTXType.F64, 2.5).name == "2.5"

    def test_float_immediate_roundtrips(self):
        v = 0.1 + 0.2
        assert float(Immediate(PTXType.F64, v).name) == v

    def test_special_names(self):
        assert Special("tid").name == "%tid.x"
        assert Special("ctaid").name == "%ctaid.x"


class TestInstructionRender:
    def test_add(self):
        i = Instruction("add", PTXType.F32,
                        Register(PTXType.F32, 2),
                        (Register(PTXType.F32, 0), Register(PTXType.F32, 1)))
        assert i.render() == "add.f32 %f2, %f0, %f1;"

    def test_fma_rounding_mode(self):
        i = Instruction("fma", PTXType.F64, Register(PTXType.F64, 3),
                        (Register(PTXType.F64, 0), Register(PTXType.F64, 1),
                         Register(PTXType.F64, 2)))
        assert i.render().startswith("fma.rn.f64")

    def test_guarded_branch(self):
        i = Instruction("bra", None, None, (), label="$EXIT",
                        guard=Register(PTXType.PRED, 0))
        assert i.render() == "@%p0 bra $EXIT;"

    def test_negated_guard(self):
        i = Instruction("bra", None, None, (), label="$L",
                        guard=Register(PTXType.PRED, 1), guard_negated=True)
        assert i.render().startswith("@!%p1")

    def test_store(self):
        i = Instruction("st.global", PTXType.F64, None,
                        (Register(PTXType.U64, 0), Register(PTXType.F64, 5)))
        assert i.render() == "st.global.f64 [%ru0], %fd5;"

    def test_load(self):
        i = Instruction("ld.global", PTXType.F32,
                        Register(PTXType.F32, 1), (Register(PTXType.U64, 2),))
        assert i.render() == "ld.global.f32 %f1, [%ru2];"

    def test_cvt_narrowing_gets_rn(self):
        i = Instruction("cvt", PTXType.F32, Register(PTXType.F32, 0),
                        (Register(PTXType.F64, 0),), src_type=PTXType.F64)
        assert "cvt.rn.f32.f64" in i.render()

    def test_cvt_float_to_int_gets_rzi(self):
        i = Instruction("cvt", PTXType.S32, Register(PTXType.S32, 0),
                        (Register(PTXType.F64, 0),), src_type=PTXType.F64)
        assert "cvt.rzi.s32.f64" in i.render()

    def test_setp(self):
        i = Instruction("setp", PTXType.S32, Register(PTXType.PRED, 0),
                        (Register(PTXType.S32, 0), Register(PTXType.S32, 1)),
                        cmp="ge")
        assert i.render() == "setp.ge.s32 %p0, %r0, %r1;"


class TestKernelInfo:
    def test_flop_per_byte(self):
        info = KernelInfo(name="k", flops_per_site=198,
                          bytes_loaded_per_site=288,
                          bytes_stored_per_site=144)
        assert info.bytes_per_site == 432
        assert abs(info.flop_per_byte - 0.4583) < 1e-3

    def test_zero_bytes_guard(self):
        info = KernelInfo(name="k")
        assert info.flop_per_byte == 0.0

    def test_total_regs_counts_64bit_double(self):
        info = KernelInfo(name="k", regs_per_thread={"f32": 4, "f64": 3,
                                                     "pred": 2})
        assert info.total_regs_per_thread == 4 + 6 + 2

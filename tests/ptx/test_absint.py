"""Tests for the abstract-interpretation engine (ptx/absint.py) and
the verifier passes built on it: proven bounds, coalescing, divergence."""

import pytest

from repro.diagnostics import Severity
from repro.ptx import KernelBuilder, PTXModule, PTXType, PTXVerificationError
from repro.ptx.absint import (
    KernelEnv,
    MemRegion,
    analyze_module,
    ideal_transactions,
    merge_envs,
    table_region,
    transactions_per_warp,
)
from repro.ptx.verifier import run_passes, verify


def _by_pass(diagnostics, name):
    return [d for d in diagnostics if d.pass_name == name]


def _soa_kernel(name="soa", words=3, stride_sites=True):
    """The generators' shape: guard, then word-major SoA accesses
    ``x + (w*nsites + gid) * 8``.  With ``stride_sites=False`` the
    layout is deliberately AoS: ``x + (gid*words + w) * 8`` (site-
    major), whose per-thread stride is ``words*8`` bytes."""
    kb = KernelBuilder(name)
    pn = kb.add_param("p_n", PTXType.S32)
    px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
    n = kb.ld_param(pn)
    x = kb.ld_param(px)
    gid = kb.global_thread_id()
    oob = kb.setp("ge", gid, n)
    exit_lbl = kb.new_label("EXIT")
    kb.bra(exit_lbl, guard=oob)
    g64 = kb.cvt(gid, PTXType.S64)
    n64 = kb.cvt(n, PTXType.S64)
    for w in range(words):
        w_imm = kb.imm(w, PTXType.S64)
        if stride_sites:     # SoA: off = (w*n + gid) * 8
            idx = kb.fma(n64, w_imm, g64, PTXType.S64)
        else:                # AoS: off = (gid*words + w) * 8
            idx = kb.fma(g64, kb.imm(words, PTXType.S64), w_imm,
                         PTXType.S64)
        off = kb.mul(idx, kb.imm(8, PTXType.S64))
        addr = kb.add(x, kb.cvt(off, PTXType.U64))
        v = kb.ld_global(addr, PTXType.F64)
        kb.st_global(addr, kb.mul(v, kb.imm(2.0, PTXType.F64)),
                     PTXType.F64)
    kb.label(exit_lbl)
    kb.ret()
    return PTXModule.from_builder(kb)


def _env(n=4096, words=3):
    return KernelEnv(scalars={"p_n": n},
                     regions={"p_x": MemRegion("p_x", n * words * 8)})


class TestIntervalAffine:
    def test_guarded_soa_kernel_is_proven_in_bounds(self):
        analysis = analyze_module(_soa_kernel(), env=_env())
        assert analysis.accesses, "kernel has global accesses"
        assert analysis.bounds_proven
        assert analysis.n_heuristic == 0
        assert all(a.verdict == "proven" for a in analysis.accesses)

    def test_offsets_are_exact(self):
        n, words = 4096, 3
        analysis = analyze_module(_soa_kernel(words=words),
                                  env=_env(n, words))
        los = sorted({a.offset[0] for a in analysis.accesses})
        his = sorted({a.offset[1] for a in analysis.accesses})
        assert los == [w * n * 8 for w in range(words)]
        assert his == [(w * n + n - 1) * 8 for w in range(words)]

    def test_without_env_falls_back_to_heuristic(self):
        analysis = analyze_module(_soa_kernel())
        assert not analysis.bounds_proven
        assert all(a.verdict == "guarded" for a in analysis.accesses)
        # ... which produces no diagnostics, like the old bounds pass
        assert not _by_pass(run_passes(_soa_kernel()), "proven-bounds")

    def test_unguarded_access_warns(self):
        kb = KernelBuilder("nog")
        px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
        x = kb.ld_param(px)
        kb.ld_global(x, PTXType.F64)
        kb.ret()
        module = PTXModule.from_builder(kb)
        found = _by_pass(run_passes(module), "proven-bounds")
        assert len(found) == 1 and found[0].severity == Severity.WARNING

    def test_proven_oob_is_an_error(self):
        """Offset interval entirely past the region end: every
        executing thread is out of bounds."""
        kb = KernelBuilder("oob")
        pn = kb.add_param("p_n", PTXType.S32)
        px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
        n = kb.ld_param(pn)
        x = kb.ld_param(px)
        gid = kb.global_thread_id()
        oob = kb.setp("ge", gid, n)
        lbl = kb.new_label("EXIT")
        kb.bra(lbl, guard=oob)
        # off = (gid + n) * 8 — one whole region past the valid slot
        idx = kb.add(kb.cvt(gid, PTXType.S64), kb.cvt(n, PTXType.S64))
        off = kb.mul(idx, kb.imm(8, PTXType.S64))
        addr = kb.add(x, kb.cvt(off, PTXType.U64))
        kb.st_global(addr, kb.imm(0.0, PTXType.F64), PTXType.F64)
        kb.label(lbl)
        kb.ret()
        module = PTXModule.from_builder(kb)
        env = KernelEnv(scalars={"p_n": 1024},
                        regions={"p_x": MemRegion("p_x", 1024 * 8)})
        found = _by_pass(run_passes(module, env=env), "proven-bounds")
        assert len(found) == 1 and found[0].severity == Severity.ERROR
        assert "proven out-of-bounds" in found[0].message
        with pytest.raises(PTXVerificationError, match="out-of-bounds"):
            verify(module, env=env)

    def test_gather_table_bounds_via_content_range(self):
        """An indirect access is proven by the table's content range:
        field[table[gid]] with table values in [0, n-1]."""
        kb = KernelBuilder("gather")
        pn = kb.add_param("p_n", PTXType.S32)
        pt = kb.add_param("p_t", PTXType.U64, is_pointer=True)
        px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
        n = kb.ld_param(pn)
        t = kb.ld_param(pt)
        x = kb.ld_param(px)
        gid = kb.global_thread_id()
        oob = kb.setp("ge", gid, n)
        lbl = kb.new_label("EXIT")
        kb.bra(lbl, guard=oob)
        toff = kb.mul(kb.cvt(gid, PTXType.S64), kb.imm(4, PTXType.S64))
        site = kb.ld_global(kb.add(t, kb.cvt(toff, PTXType.U64)),
                            PTXType.S32)
        off = kb.mul(kb.cvt(site, PTXType.S64), kb.imm(8, PTXType.S64))
        kb.st_global(kb.add(x, kb.cvt(off, PTXType.U64)),
                     kb.imm(1.0, PTXType.F64), PTXType.F64)
        kb.label(lbl)
        kb.ret()
        module = PTXModule.from_builder(kb)
        n_sites = 256
        env = KernelEnv(
            scalars={"p_n": n_sites},
            regions={"p_t": table_region("p_t", list(range(n_sites))),
                     "p_x": MemRegion("p_x", n_sites * 8)})
        analysis = analyze_module(module, env=env)
        assert analysis.bounds_proven
        # unit-stride table -> the gathered access is coalesced
        assert analysis.fully_coalesced


class TestCoalescing:
    def test_soa_layout_is_fully_coalesced(self):
        analysis = analyze_module(_soa_kernel(), env=_env())
        assert analysis.fully_coalesced
        # f64 stride-1: 32 threads * 8 B = 2 segments of 128 B
        assert all(a.transactions == 2.0 for a in analysis.accesses)
        assert analysis.memory_efficiency == 1.0
        assert not _by_pass(run_passes(_soa_kernel(), env=_env()),
                            "coalescing")

    def test_aos_layout_is_flagged_uncoalesced(self):
        module = _soa_kernel("aos", stride_sites=False)
        analysis = analyze_module(module, env=_env())
        assert not analysis.fully_coalesced
        assert all(a.transactions > 1.0 for a in analysis.accesses)
        assert all(a.stride_bytes == 3 * 8 for a in analysis.accesses)
        # span model: 31*24 + 8 = 752 B -> 6 segments per warp
        assert all(a.transactions == 6.0 for a in analysis.accesses)
        assert analysis.memory_efficiency < 1.0
        found = _by_pass(run_passes(module, env=_env()), "coalescing")
        assert found and all(d.severity == Severity.WARNING for d in found)
        assert "uncoalesced" in found[0].message

    def test_uniform_access_is_one_transaction(self):
        kb = KernelBuilder("bcast")
        px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
        x = kb.ld_param(px)
        kb.ld_global(x, PTXType.F64)   # same address in every thread
        kb.ret()
        analysis = analyze_module(
            PTXModule.from_builder(kb),
            env=KernelEnv(regions={"p_x": MemRegion("p_x", 8)}))
        (a,) = analysis.accesses
        assert a.uniform and a.transactions == 1.0

    def test_transaction_model(self):
        assert transactions_per_warp(0.0, 8) == 1.0       # broadcast
        assert transactions_per_warp(8, 8) == 2.0         # f64 unit
        assert transactions_per_warp(4, 4) == 1.0         # f32 unit
        assert transactions_per_warp(256, 8) == 32.0      # worst case
        assert transactions_per_warp(None, 8) is None     # unknown
        assert ideal_transactions(8) == 2
        assert ideal_transactions(4) == 1


class TestDivergence:
    def _varying_branch(self):
        """Branch on a thread-varying predicate where *both* sides do
        real work — genuine warp divergence."""
        kb = KernelBuilder("div")
        px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
        x = kb.ld_param(px)
        gid = kb.global_thread_id()
        p = kb.setp("lt", gid, kb.imm(16, PTXType.S32))
        other = kb.new_label("OTHER")
        done = kb.new_label("DONE")
        kb.bra(other, guard=p)
        kb.st_global(x, kb.imm(1.0, PTXType.F64), PTXType.F64)
        kb.bra(done)
        kb.label(other)
        kb.st_global(x, kb.imm(2.0, PTXType.F64), PTXType.F64)
        kb.label(done)
        kb.ret()
        return PTXModule.from_builder(kb)

    def test_thread_varying_branch_is_flagged(self):
        module = self._varying_branch()
        analysis = analyze_module(module)
        assert analysis.divergent_branches
        found = _by_pass(run_passes(module), "divergence")
        assert found and found[0].severity == Severity.WARNING
        assert "thread-varying" in found[0].message

    def test_bounds_early_exit_is_benign(self):
        """The generators' ``@oob bra EXIT`` early-exit diverges only
        in the last warp and does no work — not flagged."""
        module = _soa_kernel()
        analysis = analyze_module(module)
        assert all(b.benign_exit for b in analysis.branches
                   if not b.uniform)
        assert not _by_pass(run_passes(module), "divergence")

    def test_uniform_branch_is_not_flagged(self):
        kb = KernelBuilder("uni")
        pn = kb.add_param("p_n", PTXType.S32)
        px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
        n = kb.ld_param(pn)
        x = kb.ld_param(px)
        p = kb.setp("lt", n, kb.imm(16, PTXType.S32))   # uniform: param
        other = kb.new_label("OTHER")
        done = kb.new_label("DONE")
        kb.bra(other, guard=p)
        kb.st_global(x, kb.imm(1.0, PTXType.F64), PTXType.F64)
        kb.bra(done)
        kb.label(other)
        kb.st_global(x, kb.imm(2.0, PTXType.F64), PTXType.F64)
        kb.label(done)
        kb.ret()
        module = PTXModule.from_builder(kb)
        analysis = analyze_module(module)
        assert not analysis.divergent_branches
        assert not _by_pass(run_passes(module), "divergence")


class TestEnvs:
    def test_merge_envs_widens(self):
        a = KernelEnv(scalars={"p_n": 64},
                      regions={"p_x": MemRegion("p_x", 512,
                                                (0, 63), 1)})
        b = KernelEnv(scalars={"p_n": 128},
                      regions={"p_x": MemRegion("p_x", 1024,
                                                (0, 127), 2)})
        m = merge_envs(a, b)
        assert m.scalar_range("p_n") == (64.0, 128.0)
        r = m.regions["p_x"]
        assert r.size_bytes == 512          # guaranteed minimum
        assert r.elem_range == (0, 127)
        assert r.elem_stride is None        # strides disagree

    def test_merge_identical_is_identity(self):
        e = _env()
        assert merge_envs(e, e) == e

    def test_table_region_measures_bulk_stride(self):
        r = table_region("t", [5, 6, 7, 8, 9])
        assert r.elem_range == (5, 9) and r.elem_stride == 1
        r2 = table_region("t", [0, 2, 4, 6])
        assert r2.elem_stride == 2
        # wrap-around shift map: one deviating entry, bulk stride 1
        r3 = table_region("t", [1, 2, 3, 0])
        assert r3.elem_stride == 1 and r3.elem_range == (0, 3)

    def test_generic_env_has_unknown_pointer_regions(self):
        module = _soa_kernel()
        env = KernelEnv.generic(module.info.params)
        assert env.regions["p_x"].size_bytes is None
        assert "p_n" not in env.scalars

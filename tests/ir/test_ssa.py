"""SSA construction and structural-verifier tests."""

import pytest

from repro.ir.ssa import SSAFunction, is_removable, is_speculative
from repro.ir.verify import IRVerificationError, assert_ssa, check_ssa
from repro.ptx.builder import KernelBuilder
from repro.ptx.isa import Immediate, Instruction, PTXType, Register
from repro.ptx.module import PTXModule


def _simple_kernel():
    kb = KernelBuilder("simple")
    pn = kb.add_param("p_n", PTXType.S32)
    px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
    n = kb.ld_param(pn)
    x = kb.ld_param(px)
    gid = kb.global_thread_id()
    oob = kb.setp("ge", gid, n)
    kb.bra("$EXIT", guard=oob)
    v = kb.ld_global(x, PTXType.F64)
    kb.st_global(x, kb.add(v, v), PTXType.F64)
    kb.label("$EXIT")
    kb.ret()
    return PTXModule.from_builder(kb)


def _inst(op, t, dst, srcs, **kw):
    return Instruction(op, t, dst, tuple(srcs), **kw)


class TestConstruction:
    def test_single_defs_and_uses_recorded(self):
        fn = SSAFunction.from_module(_simple_kernel())
        assert not fn.extra_defs
        for key, d in fn.defs.items():
            for p in fn.uses.get(key, ()):
                assert p > d

    def test_builder_streams_are_ssa(self):
        assert not check_ssa(SSAFunction.from_module(_simple_kernel()))

    def test_pos_block_covers_stream(self):
        fn = SSAFunction.from_module(_simple_kernel())
        assert len(fn.pos_block) == len(fn.instructions)

    def test_roundtrip_with_info_is_bitwise(self):
        m = _simple_kernel()
        fn = SSAFunction.from_module(m)
        assert fn.to_module(info=m.info).render() == m.render()

    def test_roundtrip_without_info_derives_registers(self):
        m = _simple_kernel()
        m2 = SSAFunction.from_module(m).to_module()
        assert [i.render() for i in m2.instructions] == \
               [i.render() for i in m.instructions]
        assert m2.info.regs_per_thread == m.info.regs_per_thread

    def test_no_backward_edge_in_generated_kernels(self):
        assert not SSAFunction.from_module(_simple_kernel()) \
            .has_backward_edge()

    def test_backward_edge_detected(self):
        loop = [
            _inst("label", None, None, (), label="$L"),
            _inst("bra", None, None, (), label="$L"),
            _inst("ret", None, None, ()),
        ]
        fn = SSAFunction.from_instructions("spin", [], loop)
        assert fn.has_backward_edge()


class TestClassifiers:
    def test_side_effect_ops_not_removable(self):
        r = Register(PTXType.F64, 0)
        a = Register(PTXType.U64, 0)
        assert not is_removable(_inst("st.global", PTXType.F64, None, (a, r)))
        assert not is_removable(_inst("ret", None, None, ()))
        assert is_removable(_inst("add", PTXType.F64, r, (r, r)))

    def test_global_load_removable_but_not_speculative(self):
        d = Register(PTXType.F64, 0)
        a = Register(PTXType.U64, 0)
        ld = _inst("ld.global", PTXType.F64, d, (a,))
        assert is_removable(ld)
        assert not is_speculative(ld)


class TestVerifier:
    def _base(self):
        """a = 1; b = a + a  (well-formed straight-line fragment)."""
        a = Register(PTXType.F64, 0)
        b = Register(PTXType.F64, 1)
        one = Immediate(PTXType.F64, 1.0)
        return a, b, [
            _inst("mov", PTXType.F64, a, (one,)),
            _inst("add", PTXType.F64, b, (a, a)),
            _inst("ret", None, None, ()),
        ]

    def test_clean_fragment_passes(self):
        _, _, insts = self._base()
        assert_ssa(SSAFunction.from_instructions("ok", [], insts))

    def test_redefinition_caught(self):
        a, _, insts = self._base()
        insts.insert(2, _inst("mov", PTXType.F64, a,
                              (Immediate(PTXType.F64, 2.0),)))
        fn = SSAFunction.from_instructions("redef", [], insts)
        findings = check_ssa(fn)
        assert any("redefined" in d.message for d in findings)
        with pytest.raises(IRVerificationError, match="redefined"):
            assert_ssa(fn)

    def test_dangling_operand_caught_once(self):
        a, b, _ = self._base()
        ghost = Register(PTXType.F64, 9)
        insts = [
            _inst("add", PTXType.F64, a, (ghost, ghost)),
            _inst("add", PTXType.F64, b, (ghost, a)),
            _inst("ret", None, None, ()),
        ]
        findings = check_ssa(SSAFunction.from_instructions("dangle", [],
                                                           insts))
        assert len([d for d in findings
                    if "no definition" in d.message]) == 1

    def test_non_dominating_def_caught(self):
        """The definition sits on the skippable arm of a forward
        branch; the use after the join is not dominated."""
        kb = KernelBuilder("onearm")
        pn = kb.add_param("p_n", PTXType.S32)
        n = kb.ld_param(pn)
        gid = kb.global_thread_id()
        p = kb.setp("ge", gid, n)
        kb.bra("$SKIP", guard=p)
        x = kb.new_reg(PTXType.F64)
        kb.emit(_inst("mov", PTXType.F64, x, (Immediate(PTXType.F64, 1.0),)))
        kb.label("$SKIP")
        y = kb.new_reg(PTXType.F64)
        kb.emit(_inst("add", PTXType.F64, y, (x, x)))
        kb.ret()
        findings = check_ssa(SSAFunction.from_module(
            PTXModule.from_builder(kb)))
        assert any("does not dominate" in d.message for d in findings)

    def test_use_before_def_in_same_block_caught(self):
        a, b, _ = self._base()
        insts = [
            _inst("add", PTXType.F64, b, (a, a)),     # use before def
            _inst("mov", PTXType.F64, a, (Immediate(PTXType.F64, 1.0),)),
            _inst("ret", None, None, ()),
        ]
        findings = check_ssa(SSAFunction.from_instructions("ubd", [], insts))
        assert any("does not dominate" in d.message for d in findings)


class TestVerifierPipelinePass:
    def test_malformed_module_fails_named_diagnostic(self):
        """The ptx.verifier pipeline reports SSA breaks under the
        ``ssa-structure`` pass name (the diagnostic layer satellite)."""
        from repro.ptx.verifier import run_passes

        a = Register(PTXType.F64, 0)
        kb = KernelBuilder("notssa")
        kb.emit(_inst("mov", PTXType.F64, a, (Immediate(PTXType.F64, 1.0),)))
        kb.emit(_inst("mov", PTXType.F64, a, (Immediate(PTXType.F64, 2.0),)))
        kb.ret()
        diagnostics = run_passes(PTXModule.from_builder(kb))
        named = [d for d in diagnostics if d.pass_name == "ssa-structure"]
        assert named and "redefined" in named[0].message

"""Per-pass unit tests over hand-built SSA fragments."""

import warnings

import pytest

from repro.ir import pipeline
from repro.ir.passes import (
    REMAT_DISTANCE,
    dce,
    gvn,
    hoist,
    remat,
    sink,
    strength,
)
from repro.ir.ssa import SSAFunction
from repro.ir.verify import assert_ssa
from repro.ptx.isa import Immediate, Instruction, PTXType, Register

S64 = PTXType.S64
F64 = PTXType.F64
U64 = PTXType.U64


def I(op, t, dst, srcs=(), **kw):          # noqa: E743 - terse fixture
    return Instruction(op, t, dst, tuple(srcs), **kw)


def r(t, i):
    return Register(t, i)


def imm(t, v):
    return Immediate(t, v)


def _fn(insts, name="frag"):
    return SSAFunction.from_instructions(name, [], list(insts))


def _check(insts):
    """Every pass output must re-verify as SSA."""
    assert_ssa(_fn(insts))
    return insts


class TestGVN:
    def test_commutative_operands_collapse(self):
        """``a*b`` vs ``b*a`` — the fusion CSE memo keys on AST shape
        and misses this; value numbering does not."""
        a, b = r(S64, 0), r(S64, 1)
        m1, m2, s = r(S64, 2), r(S64, 3), r(S64, 4)
        insts = [
            I("mov", S64, a, [imm(S64, 3)]),
            I("mov", S64, b, [imm(S64, 5)]),
            I("mul.lo", S64, m1, [a, b]),
            I("mul.lo", S64, m2, [b, a]),      # same value, swapped
            I("add", S64, s, [m1, m2]),
            I("ret", None, None),
        ]
        out, stats = gvn(_fn(insts))
        _check(out)
        assert stats["eliminated"] == 1
        add = next(i for i in out if i.opcode == "add")
        assert add.srcs == (m1, m1)

    def test_gap_dedup_refused(self):
        """Collapsing onto a value whose live range already ended
        would keep it live across the gap — pressure-bounded GVN
        recomputes instead."""
        a, b = r(S64, 0), r(S64, 1)
        m1, u1, m2, u2 = r(S64, 2), r(S64, 3), r(S64, 4), r(S64, 5)
        insts = [
            I("mov", S64, a, [imm(S64, 3)]),
            I("mov", S64, b, [imm(S64, 5)]),
            I("mul.lo", S64, m1, [a, b]),
            I("add", S64, u1, [m1, m1]),       # m1 dies here
            I("mul.lo", S64, m2, [a, b]),      # same value, after the gap
            I("add", S64, u2, [m2, m2]),
            I("ret", None, None),
        ]
        out, stats = gvn(_fn(insts))
        _check(out)
        assert stats["eliminated"] == 0
        assert sum(1 for i in out if i.opcode == "mul.lo") == 2

    def test_loads_never_value_numbered(self):
        addr, v1, v2, s = r(U64, 0), r(F64, 0), r(F64, 1), r(F64, 2)
        insts = [
            I("mov", U64, addr, [imm(U64, 64)]),
            I("ld.global", F64, v1, [addr]),
            I("ld.global", F64, v2, [addr]),
            I("add", F64, s, [v1, v2]),
            I("ret", None, None),
        ]
        out, stats = gvn(_fn(insts))
        assert stats["eliminated"] == 0
        assert sum(1 for i in out if i.opcode == "ld.global") == 2


class TestHoist:
    def _frag(self, with_store):
        addr, v1, v2, s = r(U64, 0), r(F64, 0), r(F64, 1), r(F64, 2)
        insts = [
            I("mov", U64, addr, [imm(U64, 64)]),
            I("ld.global", F64, v1, [addr]),
        ]
        if with_store:
            insts.append(I("st.global", F64, None, [addr, v1]))
        insts += [
            I("ld.global", F64, v2, [addr]),
            I("add", F64, s, [v1, v2]),
            I("st.global", F64, None, [addr, s]),
            I("ret", None, None),
        ]
        return insts, v1

    def test_redundant_load_eliminated(self):
        insts, v1 = self._frag(with_store=False)
        out, stats = hoist(_fn(insts))
        _check(out)
        assert stats["loads_eliminated"] == 1
        add = next(i for i in out if i.opcode == "add")
        assert add.srcs == (v1, v1)

    def test_store_invalidates_availability(self):
        """Kernel parameters may alias, so any store kills every
        available load."""
        insts, _ = self._frag(with_store=True)
        out, stats = hoist(_fn(insts))
        _check(out)
        assert stats["loads_eliminated"] == 0
        assert sum(1 for i in out if i.opcode == "ld.global") == 2


class TestStrength:
    def test_power_of_two_mul_becomes_shift(self):
        a, m = r(S64, 0), r(S64, 1)
        insts = [
            I("mov", S64, a, [imm(S64, 7)]),
            I("mul.lo", S64, m, [a, imm(S64, 8)]),
            I("st.global", S64, None, [imm(U64, 64), m]),
            I("ret", None, None),
        ]
        out, stats = strength(_fn(insts))
        assert stats["reduced"] == 1
        shl = next(i for i in out if i.opcode == "shl")
        assert shl.srcs[1].value == 3

    def test_mul_by_one_copy_propagates(self):
        a, m, s = r(S64, 0), r(S64, 1), r(S64, 2)
        insts = [
            I("mov", S64, a, [imm(S64, 7)]),
            I("mul.lo", S64, m, [a, imm(S64, 1)]),
            I("add", S64, s, [m, m]),
            I("ret", None, None),
        ]
        out, stats = strength(_fn(insts))
        assert stats["copies_propagated"] == 1
        add = next(i for i in out if i.opcode == "add")
        assert add.srcs == (a, a)                  # m replaced by a

    def test_mad_with_unit_scale_becomes_add(self):
        a, c, m = r(S64, 0), r(S64, 1), r(S64, 2)
        insts = [
            I("mov", S64, a, [imm(S64, 7)]),
            I("mov", S64, c, [imm(S64, 9)]),
            I("mad.lo", S64, m, [a, imm(S64, 1), c]),
            I("st.global", S64, None, [imm(U64, 64), m]),
            I("ret", None, None),
        ]
        out, stats = strength(_fn(insts))
        assert stats["reduced"] == 1
        assert any(i.opcode == "add" and i.srcs == (a, c) for i in out)

    def test_float_arithmetic_untouched(self):
        a, m = r(F64, 0), r(F64, 1)
        insts = [
            I("mov", F64, a, [imm(F64, 7.0)]),
            I("mul", F64, m, [a, imm(F64, 1.0)]),
            I("st.global", F64, None, [imm(U64, 64), m]),
            I("ret", None, None),
        ]
        out, stats = strength(_fn(insts))
        assert stats == {"reduced": 0, "copies_propagated": 0}
        assert any(i.opcode == "mul" for i in out)


class TestDCE:
    def test_transitively_dead_chain_removed(self):
        a, b, c, live = r(S64, 0), r(S64, 1), r(S64, 2), r(S64, 3)
        insts = [
            I("mov", S64, live, [imm(S64, 1)]),
            I("mov", S64, a, [imm(S64, 2)]),
            I("add", S64, b, [a, a]),          # only feeds c
            I("add", S64, c, [b, b]),          # never observed
            I("st.global", S64, None, [imm(U64, 64), live]),
            I("ret", None, None),
        ]
        out, stats = dce(_fn(insts))
        _check(out)
        assert stats["removed"] == 3
        assert [i.opcode for i in out] == ["mov", "st.global", "ret"]

    def test_stores_and_control_flow_kept(self):
        insts = [
            I("mov", S64, r(S64, 0), [imm(S64, 1)]),
            I("st.global", S64, None, [imm(U64, 64), r(S64, 0)]),
            I("ret", None, None),
        ]
        out, stats = dce(_fn(insts))
        assert stats["removed"] == 0
        assert len(out) == 3


class TestRemat:
    def _long_range_frag(self):
        """``v`` is defined, then used well past REMAT_DISTANCE with
        nothing keeping its inputs alive in between."""
        p, v = r(S64, 0), r(S64, 1)
        insts = [
            I("mov", S64, p, [imm(S64, 11)]),
            I("shl", S64, v, [p, imm(S64, 2)]),
        ]
        f = r(S64, 2)
        insts.append(I("mov", S64, f, [imm(S64, 0)]))
        prev = f
        for i in range(REMAT_DISTANCE + 4):
            nxt = r(S64, 3 + i)
            insts.append(I("add", S64, nxt, [prev, prev]))
            prev = nxt
        u = r(S64, 3 + REMAT_DISTANCE + 4)
        insts.append(I("add", S64, u, [v, prev]))
        insts.append(I("st.global", S64, None, [imm(U64, 64), u]))
        insts.append(I("ret", None, None))
        return insts, v, u

    def test_distant_use_recomputed(self):
        insts, v, u = self._long_range_frag()
        out, stats = remat(_fn(insts))
        _check(out)
        assert stats["rematerialized"] == 1
        assert stats["cloned"] == 2            # the mov and the shl
        use = next(i for i in out if i.dst == u)
        (clone, _prev) = use.srcs
        assert clone != v                      # redirected to the clone
        # the clone chain sits immediately before the use
        pos = out.index(use)
        assert out[pos - 1].dst == clone
        assert out[pos - 1].opcode == "shl"

    def test_remat_then_dce_drops_the_original(self):
        insts, v, _u = self._long_range_frag()
        out, _ = remat(_fn(insts))
        out, _ = dce(_fn(out))
        _check(out)
        assert not any(i.dst == v for i in out)

    def test_setp_compared_registers_never_cloned(self):
        """Cloning a range-refined register would break the absint
        bounds proof, so remat must leave it (and chains needing it)
        alone."""
        insts, v, u = self._long_range_frag()
        pred = Register(PTXType.PRED, 0)
        # compare v: it becomes a refinement anchor
        insts.insert(2, I("setp", PTXType.S32, pred, [v, imm(S64, 100)],
                          cmp="lt"))
        out, stats = remat(_fn(insts))
        _check(out)
        assert stats["rematerialized"] == 0
        use = next(i for i in out if i.dst == u)
        assert use.srcs[0] == v                # still the original

    def test_nearby_uses_left_alone(self):
        p, v, u = r(S64, 0), r(S64, 1), r(S64, 2)
        insts = [
            I("mov", S64, p, [imm(S64, 11)]),
            I("shl", S64, v, [p, imm(S64, 2)]),
            I("add", S64, u, [v, v]),
            I("st.global", S64, None, [imm(U64, 64), u]),
            I("ret", None, None),
        ]
        out, stats = remat(_fn(insts))
        assert stats["rematerialized"] == 0
        assert [i.opcode for i in out] == [i.opcode for i in insts]

    def test_loads_never_rematerialized(self):
        """A value produced by ``ld.global`` depends on memory state —
        its distant use must keep referencing the original load."""
        addr, v = r(U64, 0), r(S64, 0)
        insts = [
            I("mov", U64, addr, [imm(U64, 64)]),
            I("ld.global", S64, v, [addr]),
        ]
        prev = r(S64, 1)
        insts.append(I("mov", S64, prev, [imm(S64, 0)]))
        for i in range(REMAT_DISTANCE + 4):
            nxt = r(S64, 2 + i)
            insts.append(I("add", S64, nxt, [prev, prev]))
            prev = nxt
        u = r(S64, 2 + REMAT_DISTANCE + 4)
        insts.append(I("add", S64, u, [v, prev]))
        insts.append(I("st.global", S64, None, [addr, u]))
        insts.append(I("ret", None, None))
        out, stats = remat(_fn(insts))
        _check(out)
        assert sum(1 for i in out if i.opcode == "ld.global") == 1
        use = next(i for i in out if i.dst == u)
        assert use.srcs[0] == v                # not redirected


class TestSink:
    def test_single_use_with_live_sources_sinks(self):
        a, v, u = r(S64, 0), r(S64, 1), r(S64, 2)
        filler = [r(S64, 3 + i) for i in range(3)]
        insts = [
            I("mov", S64, a, [imm(S64, 3)]),
            I("add", S64, v, [a, a]),          # single use, far below
        ]
        prev = a
        for f in filler:
            insts.append(I("add", S64, f, [prev, a]))   # keeps a live
            prev = f
        insts.append(I("add", S64, u, [v, a]))
        insts.append(I("st.global", S64, None, [imm(U64, 64), u]))
        insts.append(I("ret", None, None))
        out, stats = sink(_fn(insts))
        _check(out)
        assert stats["moved"] > 0
        pos_v = next(i for i, x in enumerate(out) if x.dst == v)
        pos_u = next(i for i, x in enumerate(out) if x.dst == u)
        assert pos_u - pos_v == 1              # right before its use

    def test_sink_refused_when_sources_would_live_longer(self):
        """Sinking a value whose inputs die at its definition would
        extend the inputs' ranges — the reduction-tree regression."""
        a, b, v, c, u = (r(S64, 0), r(S64, 1), r(S64, 2), r(S64, 3),
                         r(S64, 4))
        filler = [r(S64, 5 + i) for i in range(3)]
        insts = [
            I("mov", S64, a, [imm(S64, 3)]),
            I("mov", S64, b, [imm(S64, 5)]),
            I("add", S64, v, [a, b]),          # a and b die here
            I("mov", S64, c, [imm(S64, 1)]),
        ]
        prev = c
        for f in filler:
            insts.append(I("add", S64, f, [prev, prev]))
            prev = f
        insts.append(I("add", S64, u, [v, prev]))
        insts.append(I("st.global", S64, None, [imm(U64, 64), u]))
        insts.append(I("ret", None, None))
        out, stats = sink(_fn(insts))
        assert stats["moved"] == 0
        assert [i.dst for i in out] == [i.dst for i in insts]


class TestPassSelection:
    @pytest.fixture(autouse=True)
    def _fresh(self, monkeypatch):
        monkeypatch.delenv("REPRO_IR_PASSES", raising=False)
        monkeypatch.setattr(pipeline, "_warned_pass_values", set())

    def test_default_is_full_pipeline(self):
        assert pipeline.selected_passes() == pipeline.DEFAULT_PIPELINE
        assert set(pipeline.DEFAULT_PIPELINE) >= {"gvn", "hoist",
                                                  "strength", "dce"}

    def test_subset_keeps_pipeline_order(self, monkeypatch):
        monkeypatch.setenv("REPRO_IR_PASSES", "dce,gvn")
        assert pipeline.selected_passes() == ("gvn", "dce")

    def test_unknown_names_warn_once_and_drop(self, monkeypatch):
        monkeypatch.setenv("REPRO_IR_PASSES", "gvn,bogus")
        with pytest.warns(RuntimeWarning, match="bogus"):
            assert pipeline.selected_passes() == ("gvn",)
        with warnings.catch_warnings():
            warnings.simplefilter("error")     # a repeat would raise
            assert pipeline.selected_passes() == ("gvn",)

"""Pipeline-level properties: round-trip identity, opt-mode acceptance.

The two tentpole gates live here: ``REPRO_IR=verify`` must be bitwise
identical to ``off``, and ``REPRO_IR=opt`` must keep every generated
kernel absint-*proven* in bounds (no heuristic fallbacks) while
reducing the suite's total liveness-based register footprint.
"""

import os
from contextlib import contextmanager

import numpy as np
import pytest

from repro.ir import pipeline
from repro.ir.pipeline import IRStats, prepare_module
from repro.ir.ssa import SSAFunction
from repro.ptx.builder import KernelBuilder
from repro.ptx.isa import Immediate, Instruction, PTXType, Register
from repro.ptx.module import PTXModule

DIMS = (2, 2, 2, 4)


@contextmanager
def _ir_env(mode):
    old = os.environ.get("REPRO_IR")
    os.environ["REPRO_IR"] = mode
    try:
        yield
    finally:
        if old is None:
            del os.environ["REPRO_IR"]
        else:
            os.environ["REPRO_IR"] = old


def _build_suite(mode):
    from repro.lint import _build_kernel_suite, _suite_modules

    with _ir_env(mode):
        ctx, lat, _ = _build_kernel_suite(DIMS)
        modules = _suite_modules(ctx, lat)
    return ctx, modules


@pytest.fixture(scope="module")
def verify_suite():
    return _build_suite("verify")


@pytest.fixture(scope="module")
def opt_suite():
    return _build_suite("opt")


def _simple_module():
    kb = KernelBuilder("simple")
    pn = kb.add_param("p_n", PTXType.S32)
    px = kb.add_param("p_x", PTXType.U64, is_pointer=True)
    n = kb.ld_param(pn)
    x = kb.ld_param(px)
    gid = kb.global_thread_id()
    oob = kb.setp("ge", gid, n)
    kb.bra("$EXIT", guard=oob)
    v = kb.ld_global(x, PTXType.F64)
    kb.st_global(x, kb.add(v, v), PTXType.F64)
    kb.label("$EXIT")
    kb.ret()
    return PTXModule.from_builder(kb)


class TestVerifyRoundTrip:
    def test_every_suite_kernel_roundtrips_bitwise(self, verify_suite):
        """Eager, fused, reduction and halo kernels all survive the
        lower-to-IR / raise-to-module round trip byte-for-byte."""
        _, modules = verify_suite
        names = set()
        for module, _, _ in modules:
            names.add(module.name)
            fn = SSAFunction.from_module(module)
            assert fn.to_module(info=module.info).render() == \
                module.render(), module.name
        assert any(n.startswith("fus_") for n in names)
        assert any(n.startswith("red_") for n in names)
        assert any(n.startswith("gather_w") for n in names)
        assert any(n.startswith("scatter_w") for n in names)

    def test_verify_returns_the_original_module_object(self):
        m = _simple_module()
        assert prepare_module(m, mode="off") is m
        assert prepare_module(m, mode="verify") is m

    def test_verify_counts_modules(self):
        stats = IRStats()
        prepare_module(_simple_module(), stats=stats, mode="verify")
        assert stats.mode == "verify"
        assert stats.modules_verified == 1
        assert stats.modules_optimized == 0


class TestOptAcceptance:
    def test_every_access_stays_proven(self, opt_suite):
        """Optimized streams must not degrade the bounds proof: all
        accesses *proven*, zero heuristic fallbacks."""
        from repro.ptx.absint import analyze_module

        _, modules = opt_suite
        checked = 0
        for module, _, env in modules:
            analysis = analyze_module(module, env)
            for access in analysis.accesses:
                assert access.verdict == "proven", \
                    f"{module.name}: {access.verdict}"
                checked += 1
        assert checked > 0

    def test_total_register_footprint_shrinks(self, opt_suite):
        ctx, _ = opt_suite
        ir = ctx.stats.ir
        assert ir.mode == "opt"
        assert ir.modules_optimized > 0
        assert ir.pressure_reverts == 0
        assert ir.live_regs_after < ir.live_regs_before
        assert ir.live_regs_saved > 0

    def test_per_pass_stats_accumulate(self, opt_suite):
        ctx, _ = opt_suite
        passes = ctx.stats.ir.passes
        assert set(passes) == set(pipeline.DEFAULT_PIPELINE)
        for counters in passes.values():
            assert "registers_saved" in counters


class TestOptEndToEnd:
    def _compute(self, mode):
        """One dslash + clover application and two reductions on a
        fixed seed, under a fresh context."""
        from repro.core.context import Context
        from repro.core.reduction import innerProduct, norm2
        from repro.qcd.cloverop import CloverOperator, CloverParams
        from repro.qcd.dslash import WilsonDslash
        from repro.qcd.gauge import weak_gauge
        from repro.qdp.fields import latt_fermion
        from repro.qdp.lattice import Lattice

        with _ir_env(mode):
            ctx = Context(autotune=False)
            lat = Lattice(DIMS)
            rng = np.random.default_rng(11)
            u = weak_gauge(lat, rng, eps=0.3, context=ctx)
            psi = latt_fermion(lat, context=ctx)
            psi.gaussian(rng)
            dest = latt_fermion(lat, context=ctx)
            WilsonDslash(u)(dest, psi)
            clov = CloverOperator(u, CloverParams(kappa=0.12,
                                                  clover_coeff=1.0))
            out = latt_fermion(lat, context=ctx)
            clov.apply(out, dest)
            n2 = norm2(out, context=ctx)
            ip = innerProduct(out, psi, context=ctx)
            return out.to_numpy().copy(), n2, ip

    def test_field_results_bitwise_identical_off_vs_opt(self):
        """The passes are value-preserving: optimized kernels must
        give byte-identical fields and scalars, not merely close."""
        base_field, base_n2, base_ip = self._compute("off")
        for mode in ("verify", "opt"):
            field, n2, ip = self._compute(mode)
            assert field.tobytes() == base_field.tobytes(), mode
            assert n2 == base_n2, mode
            assert ip == base_ip, mode


class TestPressureGate:
    def test_pressure_raising_pipeline_is_reverted(self, monkeypatch):
        """If the composed passes ever raised a kernel's liveness
        footprint, the gate returns the original module untouched."""
        def bloat(fn):
            """Pin 8 fresh f64 values (16 slots — well past the
            8-slot liveness floor) across the whole kernel."""
            insts = list(fn.instructions)
            for i in range(8):
                t = Register(PTXType.F64, 9000 + i)
                u = Register(PTXType.F64, 9100 + i)
                insts.insert(0, Instruction(
                    "mov", PTXType.F64, t, (Immediate(PTXType.F64, 1.0),)))
                insts.insert(len(insts) - 1, Instruction(
                    "add", PTXType.F64, u, (t, t)))
            return insts, {"bloated": 8}

        monkeypatch.delenv("REPRO_IR_PASSES", raising=False)
        monkeypatch.setattr(pipeline, "PASSES", {"bloat": bloat})
        monkeypatch.setattr(pipeline, "DEFAULT_PIPELINE", ("bloat",))
        m = _simple_module()
        stats = IRStats()
        assert prepare_module(m, stats=stats, mode="opt") is m
        assert stats.pressure_reverts == 1
        assert stats.modules_optimized == 0
        assert stats.live_regs_after == 0    # nothing accumulated

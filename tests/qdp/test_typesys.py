"""Tests for the nested type system (paper Table I) and SoA layout."""

import pytest

from repro.qdp.typesys import (
    CLOVER_TRI,
    TypeSpec,
    clover_diag,
    clover_triangular,
    color_matrix,
    color_vector,
    complex_field,
    fermion,
    propagator,
    real_field,
    spin_matrix,
    tri_index,
    tri_unindex,
)


class TestTableITypes:
    """The data types of paper Table I."""

    def test_lattice_fermion(self):
        psi = fermion("f32")
        assert psi.spin == (4,) and psi.color == (3,)
        assert psi.is_complex
        assert psi.words_per_site == 24
        assert psi.describe() == (
            "Lattice<Vector<Vector<Complex<float>, 3>, 4>>")

    def test_lattice_color_matrix(self):
        u = color_matrix("f64")
        assert u.spin == () and u.color == (3, 3)
        assert u.words_per_site == 18
        assert u.describe() == (
            "Lattice<Scalar<Matrix<Complex<double>, 3>>>")

    def test_lattice_spin_matrix(self):
        g = spin_matrix()
        assert g.spin == (4, 4) and g.color == ()
        assert g.words_per_site == 32
        assert g.describe() == (
            "Lattice<Matrix<Scalar<Complex<double>>, 4>>")

    def test_clover_types(self):
        """Table I lower part: 2 blocks x (6 diag + 15 triangular)."""
        d = clover_diag()
        t = clover_triangular()
        assert d.words_per_site == 12      # 2 * 6 reals
        assert t.words_per_site == 60      # 2 * 15 complexes
        assert not d.is_complex and t.is_complex
        # total matches the 72 reals of the packed clover term
        assert d.words_per_site + t.words_per_site == 72

    def test_propagator(self):
        p = propagator()
        assert p.words_per_site == 4 * 4 * 3 * 3 * 2

    def test_scalar_fields(self):
        assert complex_field().words_per_site == 2
        assert real_field().words_per_site == 1

    def test_sizes(self):
        assert fermion("f32").bytes_per_site == 96
        assert fermion("f64").bytes_per_site == 192
        assert color_vector().words_per_site == 6


class TestLayout:
    """The coalesced layout function of paper Sec. III-B:
    I(iV,iS,iC,iR) = ((iR*IC + iC)*IS + iS)*IV + iV."""

    def test_spin_fastest_inner_index(self):
        psi = fermion()
        assert psi.word_index((0,), (0,), 0) == 0
        assert psi.word_index((1,), (0,), 0) == 1
        assert psi.word_index((0,), (1,), 0) == 4       # IS = 4
        assert psi.word_index((0,), (0,), 1) == 12      # IC*IS = 12

    def test_matrix_flattening_row_major(self):
        u = color_matrix()
        assert u.word_index((), (0, 1), 0) == 1
        assert u.word_index((), (1, 0), 0) == 3

    def test_all_words_distinct(self):
        for spec in (fermion(), color_matrix(), spin_matrix(),
                     propagator(), clover_triangular()):
            seen = set()
            for s in spec.spin_indices():
                for c in spec.color_indices():
                    for r in range(spec.reality_size):
                        seen.add(spec.word_index(s, c, r))
            assert len(seen) == spec.words_per_site
            assert seen == set(range(spec.words_per_site))

    def test_reality_out_of_range(self):
        with pytest.raises(IndexError):
            real_field().word_index((), (), 1)


class TestAdjoint:
    def test_matrix_levels_transpose(self):
        p = TypeSpec(spin=(4, 2), color=(3, 1), is_complex=True)
        a = p.adjoint()
        assert a.spin == (2, 4) and a.color == (1, 3)

    def test_vectors_unchanged(self):
        assert fermion().adjoint().spin == (4,)


class TestValidation:
    def test_bad_precision(self):
        with pytest.raises(ValueError):
            TypeSpec(spin=(), color=(), is_complex=True, precision="f16")

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            TypeSpec(spin=(2, 2, 2), color=(), is_complex=True)


class TestTriangularPacking:
    def test_roundtrip(self):
        for k in range(CLOVER_TRI):
            i, j = tri_unindex(k)
            assert 0 <= j < i < 6
            assert tri_index(i, j) == k

    def test_covers_strict_lower_triangle(self):
        ks = {tri_index(i, j) for i in range(6) for j in range(i)}
        assert ks == set(range(CLOVER_TRI))

    def test_rejects_diagonal_and_upper(self):
        with pytest.raises(IndexError):
            tri_index(2, 2)
        with pytest.raises(IndexError):
            tri_index(1, 3)
        with pytest.raises(IndexError):
            tri_unindex(15)

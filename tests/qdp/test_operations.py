"""Tests for the extended QDP operations: site access, local
reductions, outer products, math functions."""

import numpy as np
import pytest

from repro.core.expr import ExprTypeError, exp, fabs, log, pow_const, sqrt
from repro.core.reduction import norm2, sum_sites
from repro.qdp.fields import (
    latt_color_vector,
    latt_fermion,
    latt_real,
)
from repro.qdp.operations import (
    localInnerProduct,
    localNorm2,
    outerProduct,
    peek_site,
    poke_site,
)


class TestSiteAccess:
    def test_peek_matches_numpy(self, ctx, lat4, rng):
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        coords = (1, 2, 3, 0)
        site = lat4.site_index(coords)
        assert np.array_equal(peek_site(psi, coords),
                              psi.to_numpy()[site])

    def test_poke_then_peek(self, ctx, lat4, rng):
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        value = np.arange(12, dtype=complex).reshape(4, 3)
        poke_site(psi, value, (0, 1, 0, 3))
        assert np.array_equal(peek_site(psi, (0, 1, 0, 3)), value)

    def test_poke_invalidates_device_copy(self, ctx, lat4, rng):
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        out = latt_fermion(lat4)
        out.assign(2.0 * psi)              # psi now device resident
        poke_site(psi, np.zeros((4, 3)), (0, 0, 0, 0))
        out.assign(2.0 * psi)              # must see the poke
        assert np.array_equal(peek_site(out, (0, 0, 0, 0)),
                              np.zeros((4, 3)))

    def test_poke_shape_checked(self, ctx, lat4):
        psi = latt_fermion(lat4)
        with pytest.raises(ValueError):
            poke_site(psi, np.zeros((3, 4)), (0, 0, 0, 0))


class TestLocalReductions:
    def test_local_norm2(self, ctx, lat4, rng):
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        out = latt_real(lat4)
        out.assign(localNorm2(psi))
        ref = np.sum(np.abs(psi.to_numpy()) ** 2, axis=(1, 2))
        assert np.allclose(out.to_numpy(), ref, rtol=1e-13)

    def test_local_norm2_sums_to_global(self, ctx, lat4, rng):
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        out = latt_real(lat4)
        out.assign(localNorm2(psi))
        assert sum_sites(out + 0.0 * out).real == pytest.approx(
            norm2(psi), rel=1e-12)

    def test_local_inner_product(self, ctx, lat4, rng):
        from repro.qdp.fields import latt_complex

        a = latt_fermion(lat4)
        b = latt_fermion(lat4)
        a.gaussian(rng)
        b.gaussian(rng)
        out = latt_complex(lat4)
        out.assign(localInnerProduct(a, b))
        ref = np.sum(a.to_numpy().conj() * b.to_numpy(), axis=(1, 2))
        assert np.allclose(out.to_numpy(), ref, rtol=1e-12)

    def test_local_inner_shape_checked(self, ctx, lat4):
        from repro.qdp.fields import latt_color_matrix

        with pytest.raises(ExprTypeError):
            localInnerProduct(latt_fermion(lat4),
                              latt_color_matrix(lat4))


class TestOuterProduct:
    def test_matches_numpy(self, ctx, lat4, rng):
        from repro.qdp.fields import latt_color_matrix

        a = latt_color_vector(lat4)
        b = latt_color_vector(lat4)
        a.gaussian(rng)
        b.gaussian(rng)
        out = latt_color_matrix(lat4)
        out.assign(outerProduct(a, b))
        ref = np.einsum("ni,nj->nij", a.to_numpy(), b.to_numpy().conj())
        assert np.allclose(out.to_numpy(), ref, rtol=1e-13)

    def test_requires_color_vectors(self, ctx, lat4):
        with pytest.raises(ExprTypeError):
            outerProduct(latt_fermion(lat4), latt_fermion(lat4))


class TestMathFunctions:
    def test_exp_log_roundtrip(self, ctx, lat4, rng):
        r = latt_real(lat4)
        r.from_numpy(rng.uniform(0.2, 5.0, lat4.nsites))
        out = latt_real(lat4)
        out.assign(exp(log(r)))
        assert np.allclose(out.to_numpy(), r.to_numpy(), rtol=1e-13)

    def test_sqrt_vs_pow_half(self, ctx, lat4, rng):
        r = latt_real(lat4)
        r.from_numpy(rng.uniform(0.2, 5.0, lat4.nsites))
        a = latt_real(lat4)
        b = latt_real(lat4)
        a.assign(sqrt(r))
        b.assign(pow_const(r, 0.5))
        assert np.allclose(a.to_numpy(), b.to_numpy(), rtol=1e-12)

    def test_integer_pow_unrolled_exact(self, ctx, lat4, rng):
        r = latt_real(lat4)
        r.from_numpy(rng.normal(size=lat4.nsites))
        out = latt_real(lat4)
        out.assign(pow_const(r, 3))
        rn = r.to_numpy()
        # the unrolled form is (r*r)*r — compare bit-exactly to that
        assert np.array_equal(out.to_numpy(), (rn * rn) * rn)
        # negative bases work (no log involved)
        assert (out.to_numpy() < 0).any()

    def test_math_on_complex_rejected(self, ctx, lat4):
        psi = latt_fermion(lat4)
        with pytest.raises(ExprTypeError):
            exp(psi)

    def test_fabs(self, ctx, lat4, rng):
        r = latt_real(lat4)
        r.from_numpy(rng.normal(size=lat4.nsites))
        out = latt_real(lat4)
        out.assign(fabs(r))
        assert np.array_equal(out.to_numpy(), np.abs(r.to_numpy()))

    def test_trig_identity(self, ctx, lat4, rng):
        from repro.core.expr import cos, sin

        r = latt_real(lat4)
        r.from_numpy(rng.uniform(-3, 3, lat4.nsites))
        out = latt_real(lat4)
        out.assign(sin(r) * sin(r) + cos(r) * cos(r))
        assert np.allclose(out.to_numpy(), 1.0, rtol=1e-13)

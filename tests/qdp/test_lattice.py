"""Tests for lattice geometry, shift maps and subsets."""

import numpy as np
import pytest

from repro.qdp.lattice import BACKWARD, FORWARD, Lattice


class TestGeometry:
    def test_site_count(self):
        assert Lattice((4, 4, 4, 8)).nsites == 512

    def test_coords_roundtrip(self):
        lat = Lattice((4, 6, 2, 8))
        idx = lat.site_index(lat.coords)
        assert np.array_equal(idx, np.arange(lat.nsites))

    def test_dim0_fastest(self):
        lat = Lattice((4, 4, 4, 4))
        assert lat.site_index((1, 0, 0, 0)) == 1
        assert lat.site_index((0, 1, 0, 0)) == 4

    def test_periodic_coordinates(self):
        lat = Lattice((4, 4, 4, 4))
        assert lat.site_index((4, 0, 0, 0)) == 0
        assert lat.site_index((-1, 0, 0, 0)) == 3

    def test_odd_extent_rejected(self):
        with pytest.raises(ValueError):
            Lattice((4, 3, 4, 4))
        with pytest.raises(ValueError):
            Lattice((0, 4))


class TestParitySubsets:
    def test_even_odd_partition(self):
        lat = Lattice((4, 4, 4, 4))
        e, o = lat.even, lat.odd
        assert len(e) == len(o) == lat.nsites // 2
        assert set(e.sites) | set(o.sites) == set(range(lat.nsites))
        assert not set(e.sites) & set(o.sites)

    def test_parity_definition(self):
        lat = Lattice((4, 4, 4, 4))
        s = lat.site_index((1, 1, 1, 0))
        assert lat.parity[s] == 1
        s = lat.site_index((1, 1, 1, 1))
        assert lat.parity[s] == 0

    def test_full_subset_flag(self):
        lat = Lattice((4, 4, 4, 4))
        assert lat.all_sites.is_full
        assert not lat.even.is_full

    def test_subset_hash_and_eq(self):
        lat = Lattice((4, 4, 4, 4))
        assert lat.even == lat.even
        assert lat.even != lat.odd
        assert hash(lat.even) == hash(lat.checkerboard(0))


class TestShiftMaps:
    def test_forward_shift_semantics(self):
        """shift(phi, FORWARD, mu)(x) = phi(x + mu)."""
        lat = Lattice((4, 4, 4, 4))
        t = lat.shift_map(0, FORWARD)
        x = lat.site_index((1, 2, 3, 0))
        assert t[x] == lat.site_index((2, 2, 3, 0))

    def test_backward_wraps(self):
        lat = Lattice((4, 4, 4, 4))
        t = lat.shift_map(2, BACKWARD)
        x = lat.site_index((0, 0, 0, 0))
        assert t[x] == lat.site_index((0, 0, 3, 0))

    def test_shift_is_permutation(self):
        lat = Lattice((4, 6, 2, 4))
        for mu in range(4):
            for sign in (FORWARD, BACKWARD):
                t = lat.shift_map(mu, sign)
                assert sorted(t) == list(range(lat.nsites))

    def test_forward_backward_inverse(self):
        lat = Lattice((4, 4, 4, 4))
        f = lat.shift_map(1, FORWARD)
        b = lat.shift_map(1, BACKWARD)
        assert np.array_equal(f[b], np.arange(lat.nsites))

    def test_shift_flips_parity(self):
        lat = Lattice((4, 4, 4, 4))
        t = lat.shift_map(3, FORWARD)
        assert np.all(lat.parity[t] == 1 - lat.parity)

    def test_maps_cached(self):
        lat = Lattice((4, 4, 4, 4))
        assert lat.shift_map(0, FORWARD) is lat.shift_map(0, FORWARD)

    def test_bad_direction(self):
        lat = Lattice((4, 4, 4, 4))
        with pytest.raises(ValueError):
            lat.shift_map(4, FORWARD)
        with pytest.raises(ValueError):
            lat.shift_map(0, 2)


class TestFaces:
    def test_face_site_count(self):
        lat = Lattice((4, 4, 4, 8))
        assert lat.face_sites(3, FORWARD).size == 4 * 4 * 4
        assert lat.face_sites(0, BACKWARD).size == 4 * 4 * 8

    def test_forward_face_is_upper_boundary(self):
        lat = Lattice((4, 4, 4, 4))
        f = lat.face_sites(1, FORWARD)
        assert np.all(lat.coords[f][:, 1] == 3)

    def test_faces_sorted(self):
        lat = Lattice((4, 4, 4, 4))
        f = lat.face_sites(2, FORWARD)
        assert np.all(np.diff(f) > 0)

    def test_inner_sites_complement(self):
        lat = Lattice((4, 4, 4, 4))
        dirs = [(mu, s) for mu in range(4) for s in (FORWARD, BACKWARD)]
        inner = lat.inner_sites(dirs)
        faces = set()
        for mu, s in dirs:
            faces |= set(lat.face_sites(mu, s))
        assert set(inner) | faces == set(range(lat.nsites))
        assert not set(inner) & faces

    def test_face_exchange_slot_correspondence(self):
        """Sender plane slot k must correspond to receiver face slot k
        (same transverse coordinates) — the halo-exchange invariant."""
        lat = Lattice((4, 4, 4, 6))
        mu = 3
        send = lat.face_sites(mu, BACKWARD)   # x_mu = 0 plane
        recv = lat.face_sites(mu, FORWARD)    # x_mu = L-1 plane
        cs = lat.coords[send]
        cr = lat.coords[recv]
        other = [d for d in range(4) if d != mu]
        assert np.array_equal(cs[:, other], cr[:, other])

"""Tests for lattice field containers and host<->SoA conversion."""

import numpy as np
import pytest

from repro.qdp.fields import (
    LatticeField,
    gauge_field,
    latt_color_matrix,
    latt_fermion,
    latt_real,
    multi1d,
)
from repro.qdp.typesys import scalar_complex


class TestConstruction:
    def test_zero_initialized(self, ctx, lat4):
        psi = latt_fermion(lat4)
        assert np.all(psi.to_numpy() == 0)

    def test_shape(self, ctx, lat4):
        assert latt_fermion(lat4).to_numpy().shape == (lat4.nsites, 4, 3)
        assert latt_color_matrix(lat4).to_numpy().shape == (lat4.nsites, 3, 3)
        assert latt_real(lat4).to_numpy().shape == (lat4.nsites,)

    def test_uids_unique(self, ctx, lat4):
        a = latt_fermion(lat4)
        b = latt_fermion(lat4)
        assert a.uid != b.uid

    def test_scalar_spec_rejected(self, ctx, lat4):
        with pytest.raises(ValueError):
            LatticeField(lat4, scalar_complex())

    def test_nbytes(self, ctx, lat4):
        psi = latt_fermion(lat4, precision="f32")
        assert psi.nbytes == 24 * lat4.nsites * 4


class TestHostConversion:
    def test_roundtrip(self, ctx, lat4, rng):
        psi = latt_fermion(lat4)
        data = (rng.normal(size=(lat4.nsites, 4, 3))
                + 1j * rng.normal(size=(lat4.nsites, 4, 3)))
        psi.from_numpy(data)
        assert np.array_equal(psi.to_numpy(), data)

    def test_layout_is_soa(self, ctx, lat4):
        """Host storage follows I = ((iR*IC+iC)*IS+iS)*IV + iV."""
        psi = latt_fermion(lat4)
        data = np.zeros((lat4.nsites, 4, 3), dtype=complex)
        site, s, c = 7, 2, 1
        data[site, s, c] = 3.0 + 4.0j
        psi.from_numpy(data)
        n = lat4.nsites
        w_re = psi.spec.word_index((s,), (c,), 0)
        w_im = psi.spec.word_index((s,), (c,), 1)
        assert psi.host[w_re * n + site] == 3.0
        assert psi.host[w_im * n + site] == 4.0

    def test_real_field_rejects_complex(self, ctx, lat4):
        r = latt_real(lat4)
        with pytest.raises(ValueError):
            r.from_numpy(np.ones(lat4.nsites, dtype=complex))

    def test_shape_mismatch_rejected(self, ctx, lat4):
        psi = latt_fermion(lat4)
        with pytest.raises(ValueError):
            psi.from_numpy(np.zeros((lat4.nsites, 3, 4)))


class TestFills:
    def test_gaussian_unit_variance(self, ctx, rng):
        from repro.qdp.lattice import Lattice

        lat = Lattice((8, 8, 8, 8))
        psi = latt_fermion(lat)
        psi.gaussian(rng)
        arr = psi.to_numpy()
        # <|z|^2> = 1 per complex component
        assert abs(np.mean(np.abs(arr) ** 2) - 1.0) < 0.02

    def test_uniform_range(self, ctx, lat4, rng):
        r = latt_real(lat4)
        r.uniform(rng)
        arr = r.to_numpy()
        assert np.all((arr >= 0) & (arr < 1))

    def test_zero(self, ctx, lat4, rng):
        psi = latt_fermion(lat4)
        psi.gaussian(rng)
        psi.zero()
        assert np.all(psi.to_numpy() == 0)


class TestAssignment:
    def test_copy_semantics(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        a.gaussian(rng)
        b = a.copy()
        assert np.array_equal(a.to_numpy(), b.to_numpy())
        a.zero()
        assert not np.all(b.to_numpy() == 0)

    def test_ilshift_sugar(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        a.gaussian(rng)
        b = latt_fermion(lat4)
        b <<= 2.0 * a
        assert np.allclose(b.to_numpy(), 2.0 * a.to_numpy())

    def test_subset_assignment(self, ctx, lat4, rng):
        a = latt_fermion(lat4)
        a.gaussian(rng)
        b = latt_fermion(lat4)
        b.assign(2.0 * a, subset=lat4.even)
        arr = b.to_numpy()
        assert np.allclose(arr[lat4.even.sites], 2 * a.to_numpy()[lat4.even.sites])
        assert np.all(arr[lat4.odd.sites] == 0)

    def test_precision_conversion(self, ctx, lat4, rng):
        a = latt_fermion(lat4, precision="f64")
        a.gaussian(rng)
        b = a.astype("f32")
        assert b.spec.precision == "f32"
        assert np.allclose(b.to_numpy(), a.to_numpy(), atol=1e-6)

    def test_mixed_precision_expression(self, ctx, lat4, rng):
        """Paper Sec. III-D: implicit type promotion with cvt."""
        a32 = latt_fermion(lat4, precision="f32")
        a32.gaussian(rng)
        b64 = latt_fermion(lat4, precision="f64")
        b64.gaussian(rng)
        out = latt_fermion(lat4, precision="f64")
        out.assign(a32 + b64)
        ref = a32.to_numpy().astype(complex) + b64.to_numpy()
        assert np.allclose(out.to_numpy(), ref, atol=1e-6)


class TestMulti1d:
    def test_gauge_field_shape(self, ctx, lat4):
        u = gauge_field(lat4)
        assert u.size == 4
        assert all(f.spec.color == (3, 3) for f in u)

    def test_indexing(self, ctx, lat4):
        u = gauge_field(lat4)
        assert u[0] is not u[1]
        assert isinstance(u, multi1d)

"""In-process tests of the ``python -m repro.lint`` CLI."""

import pytest

from repro.lint import main


@pytest.fixture(scope="module")
def run(ctx):
    """One CLI run over the suite on a tiny lattice (kernels are
    lattice-size independent, so 2^4 keeps field setup cheap)."""
    import io
    from contextlib import redirect_stdout

    buf = io.StringIO()
    with redirect_stdout(buf):
        status = main(["--lattice", "2,2,2,2"])
    return status, buf.getvalue()


class TestCLI:
    def test_exit_status_clean(self, run):
        status, _ = run
        assert status == 0

    def test_reports_every_pass_name(self, run):
        _, out = run
        for name in ("operands", "definite-assignment", "unreachable-code",
                     "return-paths", "bounds-guard"):
            assert name in out
        for name in ("shift-alias", "shift-antiparallel",
                     "lattice-conformance", "shift-materialization"):
            assert name in out

    def test_covers_the_kernel_families(self, run):
        _, out = run
        assert "eval_" in out          # expression kernels (dslash, clover)
        assert "red_" in out           # reduction kernels
        assert "gather_w" in out       # face copies
        assert "scatter_w" in out

    def test_dslash_stencil_findings_surface(self, run):
        _, out = run
        assert "shift-antiparallel" in out
        assert "ok:" in out

    def test_bad_lattice_rejected(self):
        with pytest.raises(SystemExit):
            main(["--lattice", "nope"])

"""In-process tests of the ``python -m repro.lint`` CLI."""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.lint import main


@pytest.fixture(scope="module")
def run(ctx):
    """One CLI run over the suite on a tiny lattice (kernels are
    lattice-size independent, so 2^4 keeps field setup cheap)."""
    buf = io.StringIO()
    with redirect_stdout(buf):
        status = main(["--lattice", "2,2,2,2"])
    return status, buf.getvalue()


@pytest.fixture(scope="module")
def run_json(ctx):
    buf = io.StringIO()
    with redirect_stdout(buf):
        status = main(["--lattice", "2,2,2,2", "--json"])
    return status, json.loads(buf.getvalue())


class TestCLI:
    def test_exit_status_clean(self, run):
        status, _ = run
        assert status == 0

    def test_reports_every_pass_name(self, run):
        _, out = run
        for name in ("operands", "definite-assignment", "unreachable-code",
                     "return-paths", "proven-bounds"):
            assert name in out
        for name in ("shift-alias", "shift-antiparallel",
                     "lattice-conformance", "shift-materialization"):
            assert name in out

    def test_covers_the_kernel_families(self, run):
        _, out = run
        assert "fus_" in out           # fused statement groups (dslash,
        assert "red_" in out           # clover); reduction kernels
        assert "gather_w" in out       # face copies
        assert "scatter_w" in out

    def test_reports_cache_and_fusion_stats(self, run):
        _, out = run
        assert "module cache:" in out
        assert "fused group(s)" in out
        assert "field cache:" in out

    def test_reports_runtime_timeline(self, run):
        _, out = run
        assert "-- runtime" in out
        assert "makespan" in out
        assert "critical path" in out

    def test_reports_backend_dispatch(self, run):
        _, out = run
        assert "-- backends (REPRO_BACKEND=" in out
        assert "kernel(s) built" in out
        assert "measured kernel wall-clock" in out

    def test_reports_serving_mini_run(self, run):
        _, out = run
        assert "-- serving (REPRO_SERVE=" in out
        assert "shared JIT cache:" in out
        assert "cross-tenant hit(s)" in out
        assert "tenant-a (weight 2)" in out
        assert "tenant-b (weight 1)" in out

    def test_reports_resilience_mini_run(self, run):
        _, out = run
        assert "-- resilience (REPRO_RESILIENCE=" in out
        assert "straggler(s) flagged" in out
        assert "recoveries:" in out
        assert "checkpoint(s)" in out

    def test_dslash_stencil_findings_surface(self, run):
        _, out = run
        assert "shift-antiparallel" in out
        assert "ok:" in out

    def test_reports_per_kernel_facts(self, run):
        _, out = run
        assert "bounds proven" in out
        assert "tx/warp" in out
        assert "block seed" in out

    def test_bad_lattice_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["--lattice", "nope"])
        assert exc.value.code == 2   # argparse usage-error convention


class TestJSON:
    def test_exit_status_and_schema_version(self, run_json):
        status, report = run_json
        assert status == 0
        assert report["schema_version"] == 8
        assert report["summary"]["status"] == "ok"
        assert report["summary"]["errors"] == 0
        assert report["summary"]["kernels"] == len(report["kernels"])

    def test_runtime_block(self, run_json):
        _, report = run_json
        rt = report["runtime"]
        assert set(rt) == {"streams", "elapsed_s", "serial_s",
                           "overlap_fraction", "critical_path_s",
                           "lane_busy_s"}
        assert rt["streams"] in ("on", "off")
        assert rt["elapsed_s"] > 0
        assert rt["elapsed_s"] <= rt["serial_s"]
        assert 0.0 <= rt["overlap_fraction"] < 1.0
        assert rt["critical_path_s"] <= rt["elapsed_s"]
        assert sum(rt["lane_busy_s"].values()) == pytest.approx(
            rt["serial_s"])

    def test_ir_block(self, run_json):
        """Under the default REPRO_IR=verify, every suite kernel gets
        an SSA structural check and nothing is rewritten."""
        _, report = run_json
        ir = report["ir"]
        assert set(ir) == {"mode", "modules_verified", "modules_optimized",
                           "pressure_reverts", "instructions_before",
                           "instructions_after", "live_regs_before",
                           "live_regs_after", "passes"}
        assert ir["mode"] in ("off", "verify", "opt")
        if ir["mode"] == "verify":
            assert ir["modules_verified"] == report["summary"]["kernels"]
            assert ir["modules_optimized"] == 0
            assert ir["passes"] == {}

    def test_faults_block(self, run_json):
        """Without REPRO_FAULTS, the faults block reports mode=off and
        all-zero counters (the lint suite injects nothing)."""
        _, report = run_json
        faults = report["faults"]
        assert set(faults) == {"mode", "injected", "recovered", "retries",
                               "backoff_s", "solver_restarts"}
        assert faults["mode"] == "off"
        assert faults["injected"] == 0
        assert faults["recovered"] == 0
        assert faults["retries"] == 0
        assert faults["backoff_s"] == 0.0
        assert faults["solver_restarts"] == 0

    def test_backend_block(self, run_json):
        """The backend block reports the dispatch mode, per-backend
        build/launch counters and measured wall-clock per family."""
        _, report = run_json
        be = report["backend"]
        assert set(be) == {"mode", "kernels", "compile_seconds",
                           "launches", "fallbacks", "fallback_kernels",
                           "wall_s_by_family"}
        assert be["mode"] in be["kernels"] or be["mode"] == "sim"
        assert be["kernels"].get("sim", 0) > 0   # sim is always built
        assert be["fallbacks"] == 0              # whole suite transpiles
        assert be["fallback_kernels"] == {}
        assert sum(be["launches"].values()) > 0
        assert all(v >= 0 for v in be["wall_s_by_family"].values())

    def test_cache_block(self, run_json):
        _, report = run_json
        cache = report["cache"]
        assert cache["misses"] > 0          # the suite uploaded fields
        assert cache["page_ins"] > 0
        assert cache["resident_bytes_hwm"] > 0
        assert cache["hits"] >= 0 and cache["spills"] >= 0

    def test_module_cache_and_fusion_stats(self, run_json):
        _, report = run_json
        mc = report["module_cache"]
        assert mc["misses"] > 0          # the suite compiled something
        assert mc["hits"] >= 0
        fus = report["fusion"]
        assert fus["groups"] > 0         # the suite fused something
        assert fus["fused_statements"] > fus["groups"]

    def test_kernel_records_have_the_documented_shape(self, run_json):
        _, report = run_json
        for k in report["kernels"]:
            assert set(k) == {"name", "instructions", "regs_per_thread",
                              "static_block_seed", "bounds", "coalescing",
                              "divergence", "diagnostics"}
            assert set(k["bounds"]) == {"verdicts", "proven",
                                        "heuristic_fallbacks"}
            assert set(k["coalescing"]) == {
                "transactions_per_warp", "ideal_transactions_per_warp",
                "memory_efficiency", "fully_coalesced"}
            assert set(k["divergence"]) == {"branches", "divergent"}

    def test_whole_suite_proven_and_coalesced(self, run_json):
        """The tentpole's acceptance bar: with the recorded launch
        envs, every generated kernel is *proven* in-bounds (no
        heuristic fallbacks) and fully coalesced."""
        _, report = run_json
        for k in report["kernels"]:
            assert k["bounds"]["proven"], k["name"]
            assert k["bounds"]["heuristic_fallbacks"] == 0, k["name"]
            assert set(k["bounds"]["verdicts"]) == {"proven"}, k["name"]
            assert k["coalescing"]["fully_coalesced"], k["name"]
            assert k["coalescing"]["memory_efficiency"] == 1.0
            assert k["divergence"]["divergent"] == 0

    def test_high_pressure_kernel_seeds_below_max(self, run_json):
        """At least one real generated kernel is register-bound: its
        auto-tuner starting block is provably below the device max."""
        _, report = run_json
        seeds = {k["name"]: k["static_block_seed"]
                 for k in report["kernels"]}
        assert any(s < 1024 for s in seeds.values()), seeds
        assert all(s >= 32 for s in seeds.values())

    def test_serving_block(self, run_json):
        """The serving mini-run: two tenants, both sessions complete,
        and the second tenant's kernels all hit the shared cache."""
        _, report = run_json
        sv = report["serving"]
        assert set(sv) == {"mode", "scheduler", "admission", "jit_cache",
                           "tenants", "sessions"}
        assert sv["mode"] in ("fair", "fifo", "off")
        assert sv["scheduler"]["policy"] in ("fair", "fifo")
        assert sv["scheduler"]["decisions"] >= 2
        assert sv["scheduler"]["quantum_s"] > 0
        assert sv["admission"]["rejections"] == 0
        assert sv["jit_cache"]["kernels"] > 0
        assert sv["jit_cache"]["cross_tenant_hits"] >= 1
        assert set(sv["tenants"]) == {"tenant-a", "tenant-b"}
        for t in sv["tenants"].values():
            assert t["sessions_completed"] == t["sessions_submitted"] == 1
            assert t["launches"] > 0
            assert t["service_s"] > 0
        assert sv["sessions"]["sessions_completed"] == 2
        # isolation + conservation: per-tenant jit splits sum to the
        # global cache counters
        cache_total = (sum(sv["jit_cache"]["hits_by_tenant"].values())
                       + sum(sv["jit_cache"]["misses_by_tenant"].values()))
        tenant_total = sum(t["jit_hits"] + t["jit_misses"]
                           for t in sv["tenants"].values())
        assert cache_total == tenant_total

    def test_resilience_block(self, run_json):
        """Without REPRO_RESILIENCE the block reports mode=off, no
        policy and all-zero counters (nothing was injected)."""
        _, report = run_json
        rz = report["resilience"]
        assert set(rz) == {"mode", "policy", "kills_injected",
                           "stragglers_injected", "stragglers_flagged",
                           "detections", "recoveries_by_policy",
                           "recovery_modeled_s", "checkpoints",
                           "checkpoint_bytes", "restored_payloads"}
        assert rz["mode"] in ("off", "detect", "recover")
        if rz["mode"] == "off":
            assert rz["policy"] is None
            assert rz["kills_injected"] == 0
            assert rz["recoveries_by_policy"] == {}
            assert rz["recovery_modeled_s"] == 0.0

    def test_resilience_mini_run_recovers_under_chaos(self, ctx,
                                                      monkeypatch):
        """Point the knobs at a rank-kill plan: the mini-run's VM
        must detect the kill, recover it, and report it in the block."""
        from repro.lint import _resilience_mini_run

        monkeypatch.setenv("REPRO_FAULTS",
                           "plan:seed=5,rank.kill=1x@rank1:*")
        monkeypatch.setenv("REPRO_RESILIENCE", "recover")
        rz = _resilience_mini_run()
        assert rz["mode"] == "recover"
        assert rz["policy"] == "buddy"
        assert rz["kills_injected"] == 1
        assert rz["recoveries_by_policy"] == {"buddy": 1}
        assert rz["recovery_modeled_s"] > 0
        assert rz["checkpoints"] > 0
        assert rz["restored_payloads"] > 0

    def test_json_output_is_pure(self, ctx):
        """--json prints a single parseable document, nothing else."""
        buf = io.StringIO()
        with redirect_stdout(buf):
            main(["--lattice", "2,2,2,2", "--json"])
        json.loads(buf.getvalue())

"""Tests for the execution-backend registry and dispatch knob.

The registry is the seam between the driver JIT (which always builds
the ``sim`` reference translation) and alternative execution targets;
the ``REPRO_BACKEND`` knob picks the callable per kernel, with
graceful per-kernel fallback to ``sim`` for anything a backend cannot
build.
"""

import warnings

import numpy as np
import pytest

from repro.driver import backends
from repro.driver.backends import (
    Backend,
    BackendBuildError,
    BackendStats,
    backend_names,
    register_backend,
    resolve_backend_mode,
    unregister_backend,
)
from repro.driver.cache import KernelCache
from repro.llvm import clear_code_cache, code_cache_stats

_PTX = """
.version 3.1
.target sm_35
.address_size 64

.visible .entry scale_{n}(
    .param .u64 .ptr .global p_dst,
    .param .s32 p_n
)
{{
    .reg .pred %p<1>;
    .reg .s32 %r<2>;
    .reg .u32 %u<4>;
    .reg .u64 %ru<3>;
    .reg .s64 %rd<2>;
    .reg .f64 %fd<2>;

    ld.param.s32 %r0, [p_n];
    ld.param.u64 %ru0, [p_dst];
    mov.u32 %u0, %ctaid.x;
    mov.u32 %u1, %ntid.x;
    mov.u32 %u2, %tid.x;
    mad.lo.u32 %u3, %u0, %u1, %u2;
    cvt.s32.u32 %r1, %u3;
    setp.ge.s32 %p0, %r1, %r0;
    @%p0 bra $EXIT;
    cvt.s64.s32 %rd0, %r1;
    mul.lo.s64 %rd1, %rd0, 8;
    cvt.u64.s64 %ru1, %rd1;
    add.u64 %ru2, %ru0, %ru1;
    ld.global.f64 %fd0, [%ru2];
    mul.f64 %fd1, %fd0, 2.0;
    st.global.f64 [%ru2], %fd1;
$EXIT:
    ret;
}}
"""


def _ptx(n=0):
    return _PTX.format(n=n)


@pytest.fixture()
def knob(monkeypatch):
    """Set REPRO_BACKEND for the test and reset warn-once state."""

    def set_mode(value):
        monkeypatch.setenv("REPRO_BACKEND", value)

    from repro import diagnostics

    monkeypatch.setattr(diagnostics, "_warned_backend_values", set())
    monkeypatch.setattr(backends, "_warned_fallbacks", set())
    return set_mode


class TestKnob:
    def test_default_is_sim(self, knob, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend_mode() == "sim"

    def test_accepted_values(self, knob):
        for value in ("sim", "cpu"):
            knob(value)
            assert resolve_backend_mode() == value

    def test_bad_value_falls_back_with_one_warning(self, knob):
        knob("gpu")
        with pytest.warns(RuntimeWarning, match="REPRO_BACKEND"):
            assert resolve_backend_mode() == "sim"
        # warn once per distinct value, not per resolution
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend_mode() == "sim"

    def test_registered_backend_extends_accepted_set(self, knob):
        class Null(Backend):
            name = "null"

            def build(self, kernel):
                return kernel.func

        register_backend(Null())
        try:
            assert "null" in backend_names()
            knob("null")
            assert resolve_backend_mode() == "null"
        finally:
            unregister_backend("null")
        knob("sim")
        assert "null" not in backend_names()

    def test_builtin_backends_cannot_be_removed(self):
        with pytest.raises(ValueError):
            unregister_backend("sim")
        with pytest.raises(ValueError):
            unregister_backend("cpu")


class TestDispatch:
    def test_sim_mode_runs_the_driver_translation(self, knob):
        knob("sim")
        cache = KernelCache()
        kernel, _ = cache.get_or_compile(_ptx(1))
        assert kernel.backend == "sim"
        assert cache.backend.kernels.get("sim") == 1
        assert "cpu" not in cache.backend.kernels

    def test_cpu_mode_attaches_compiled_callable(self, knob):
        knob("cpu")
        cache = KernelCache()
        kernel, _ = cache.get_or_compile(_ptx(2))
        assert kernel.backend == "cpu"
        assert "cpu" in kernel.backend_funcs
        assert cache.backend.kernels.get("cpu") == 1
        assert cache.backend.fallbacks == 0

    def test_mid_process_knob_change_redispatches_on_hit(self, knob):
        knob("sim")
        cache = KernelCache()
        kernel, _ = cache.get_or_compile(_ptx(3))
        assert kernel.backend == "sim"
        knob("cpu")
        kernel2, cached = cache.get_or_compile(_ptx(3))
        assert cached and kernel2 is kernel
        assert kernel.backend == "cpu"

    def test_launch_accounting(self, knob):
        knob("cpu")
        cache = KernelCache()
        kernel, _ = cache.get_or_compile(_ptx(4))
        views = {"float64": np.ones(8), "uint64": np.zeros(0, np.uint64)}
        kernel(views, {"p_dst": 0, "p_n": 4}, 1, 4)
        assert np.array_equal(views["float64"],
                              [2, 2, 2, 2, 1, 1, 1, 1])
        assert cache.backend.launches.get("cpu") == 1
        assert cache.backend.launches.get("sim") is None

    def test_build_failure_degrades_to_sim_with_one_warning(self, knob):
        class Broken(Backend):
            name = "broken"
            calls = 0

            def build(self, kernel):
                Broken.calls += 1
                raise BackendBuildError("unsupported construct: frobnicate")

        register_backend(Broken())
        try:
            knob("broken")
            cache = KernelCache()
            with pytest.warns(RuntimeWarning, match="frobnicate"):
                kernel, _ = cache.get_or_compile(_ptx(5))
            assert kernel.backend == "sim"
            assert cache.backend.fallbacks == 1
            assert "frobnicate" in \
                cache.backend.fallback_kernels[kernel.name]
            # cache hit: no rebuild, no re-count, no second warning
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                cache.get_or_compile(_ptx(5))
            assert Broken.calls == 1
            assert cache.backend.fallbacks == 1
        finally:
            unregister_backend("broken")

    def test_fallback_kernel_still_computes(self, knob):
        class Picky(Backend):
            name = "picky"

            def build(self, kernel):
                raise BackendBuildError("nope")

        register_backend(Picky())
        try:
            knob("picky")
            cache = KernelCache()
            with pytest.warns(RuntimeWarning):
                kernel, _ = cache.get_or_compile(_ptx(6))
            views = {"float64": np.ones(8)}
            kernel(views, {"p_dst": 0, "p_n": 8}, 1, 8)
            assert np.array_equal(views["float64"], np.full(8, 2.0))
        finally:
            unregister_backend("picky")


class TestCompiledKernelCache:
    def test_keyed_on_ptx_text(self, knob):
        knob("cpu")
        clear_code_cache()
        cache = KernelCache()
        cache.get_or_compile(_ptx(7))
        stats = code_cache_stats()
        assert stats.misses == 1 and stats.hits == 0
        assert stats.n_kernels == 1
        # a second kernel cache (another context) reuses the compile
        other = KernelCache()
        other.get_or_compile(_ptx(7))
        stats = code_cache_stats()
        assert stats.misses == 1 and stats.hits == 1

    def test_distinct_ptx_compiles_separately(self, knob):
        knob("cpu")
        clear_code_cache()
        cache = KernelCache()
        cache.get_or_compile(_ptx(8))
        cache.get_or_compile(_ptx(9))
        stats = code_cache_stats()
        assert stats.misses == 2
        assert stats.total_compile_seconds > 0

    def test_compile_seconds_counted_per_backend(self, knob):
        knob("cpu")
        cache = KernelCache()
        cache.get_or_compile(_ptx(10))
        be = cache.backend
        assert be.compile_seconds.get("sim", 0) > 0
        assert be.compile_seconds.get("cpu", 0) > 0


class TestBackendStats:
    def test_note_launch(self):
        stats = BackendStats()
        stats.note_launch("cpu")
        stats.note_launch("cpu")
        stats.note_launch("sim")
        assert stats.launches == {"cpu": 2, "sim": 1}

"""Tests for the driver's PTX text parser."""

import pytest

from repro.driver.parser import PTXParseError, parse_ptx
from repro.ptx import KernelBuilder, PTXModule, PTXType


HANDWRITTEN = """
.version 3.1
.target sm_35
.address_size 64

.visible .entry scale(
    .param .s32 p_n,
    .param .u64 .ptr .global p_x,
    .param .f64 p_a
)
{
    .reg .s32 %r<2>;
    .reg .f64 %fd<3>;
    .reg .u32 %u<4>;
    .reg .u64 %ru<3>;
    .reg .s64 %rd<2>;
    .reg .pred %p<1>;

    ld.param.s32 %r0, [p_n];
    ld.param.u64 %ru0, [p_x];
    ld.param.f64 %fd0, [p_a];
    mov.u32 %u0, %ctaid.x;
    mov.u32 %u1, %ntid.x;
    mov.u32 %u2, %tid.x;
    mad.lo.u32 %u3, %u0, %u1, %u2;
    cvt.s32.u32 %r1, %u3;
    setp.ge.s32 %p0, %r1, %r0;
    @%p0 bra $DONE;
    cvt.s64.s32 %rd0, %r1;
    mul.lo.s64 %rd1, %rd0, 8;
    cvt.u64.s64 %ru1, %rd1;
    add.u64 %ru2, %ru0, %ru1;
    ld.global.f64 %fd1, [%ru2];
    mul.f64 %fd2, %fd1, %fd0;
    st.global.f64 [%ru2], %fd2;
$DONE:
    ret;
}
"""


class TestParser:
    def test_parses_handwritten_ptx(self):
        k = parse_ptx(HANDWRITTEN)
        assert k.name == "scale"
        assert [p.name for p in k.params] == ["p_n", "p_x", "p_a"]
        assert k.params[1].is_pointer
        assert k.version == "3.1"
        assert k.target == "sm_35"

    def test_instruction_count(self):
        k = parse_ptx(HANDWRITTEN)
        # 17 instructions + 1 label + ret
        assert len(k.instructions) == 19

    def test_register_types_resolved(self):
        k = parse_ptx(HANDWRITTEN)
        loads = [i for i in k.instructions if i.opcode == "ld.global"]
        assert loads[0].type == PTXType.F64
        (addr,) = loads[0].srcs
        assert addr.type == PTXType.U64

    def test_guard_parsed(self):
        k = parse_ptx(HANDWRITTEN)
        bra = next(i for i in k.instructions if i.opcode == "bra")
        assert bra.guard is not None
        assert bra.guard.type == PTXType.PRED
        assert not bra.guard_negated
        assert bra.label == "$DONE"

    def test_roundtrip_builder_to_parser(self):
        kb = KernelBuilder("rt")
        p = kb.add_param("p_x", PTXType.U64, is_pointer=True)
        x = kb.ld_param(p)
        v = kb.ld_global(x, PTXType.F32)
        kb.st_global(x, kb.mul(v, kb.imm(2.0, PTXType.F32)), PTXType.F32)
        kb.ret()
        text = PTXModule.from_builder(kb).render()
        k = parse_ptx(text)
        assert k.name == "rt"
        rendered_again = "\n".join(i.render() for i in k.instructions)
        original = "\n".join(i.render() for i in kb.instructions)
        assert rendered_again == original

    def test_missing_entry_rejected(self):
        with pytest.raises(PTXParseError, match="entry"):
            parse_ptx(".version 3.1\n.target sm_35\n")

    def test_missing_semicolon_rejected(self):
        bad = HANDWRITTEN.replace("ret;", "ret")
        with pytest.raises(PTXParseError):
            parse_ptx(bad)

    def test_unknown_register_rejected(self):
        bad = HANDWRITTEN.replace("%fd1, %fd0;", "%zz1, %fd0;")
        with pytest.raises(PTXParseError):
            parse_ptx(bad)

    def test_bad_mnemonic_rejected(self):
        bad = HANDWRITTEN.replace("mul.f64 %fd2", "mul.q64 %fd2")
        with pytest.raises(PTXParseError):
            parse_ptx(bad)

    def test_comments_ignored(self):
        commented = HANDWRITTEN.replace(
            "ret;", "// final return\n    ret;")
        assert parse_ptx(commented).name == "scale"

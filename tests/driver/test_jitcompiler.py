"""Tests for the driver JIT: semantics of compiled PTX.

These run hand-written PTX through the full compile-and-execute path
against a raw device pool — independent of the expression layer."""

import numpy as np
import pytest

from repro.driver import JITCompileError, KernelCache, compile_ptx, modeled_jit_time
from repro.memory.pool import DevicePool


def _views(pool):
    return {n: pool.view(n) for n in
            ("float32", "float64", "int32", "int64", "uint32", "uint64")}


def _wrap(body, params, name="k", regs=None):
    regs = regs or {"s32": 8, "u32": 8, "s64": 8, "u64": 8,
                    "f32": 8, "f64": 8, "pred": 4}
    plines = ",\n".join(f"    .param .{t}{' .ptr .global' if ptr else ''} {n}"
                        for n, t, ptr in params)
    rlines = "\n".join(
        f"    .reg .{t} %{p}<{c}>;" for t, p, c in
        (("s32", "r", regs["s32"]), ("u32", "u", regs["u32"]),
         ("s64", "rd", regs["s64"]), ("u64", "ru", regs["u64"]),
         ("f32", "f", regs["f32"]), ("f64", "fd", regs["f64"]),
         ("pred", "p", regs["pred"])))
    return (f".version 3.1\n.target sm_35\n.address_size 64\n\n"
            f".visible .entry {name}(\n{plines}\n)\n{{\n{rlines}\n\n"
            f"{body}\n}}\n")


class TestArithmeticSemantics:
    def test_guarded_tail_not_stored(self):
        """Threads beyond p_n must not write."""
        body = """
    ld.param.s32 %r0, [p_n];
    ld.param.u64 %ru0, [p_x];
    mov.u32 %u0, %ctaid.x;
    mov.u32 %u1, %ntid.x;
    mov.u32 %u2, %tid.x;
    mad.lo.u32 %u3, %u0, %u1, %u2;
    cvt.s32.u32 %r1, %u3;
    setp.ge.s32 %p0, %r1, %r0;
    @%p0 bra $OUT;
    cvt.s64.s32 %rd0, %r1;
    mul.lo.s64 %rd1, %rd0, 8;
    cvt.u64.s64 %ru1, %rd1;
    add.u64 %ru2, %ru0, %ru1;
    mov.f64 %fd0, 7.0;
    st.global.f64 [%ru2], %fd0;
$OUT:
    ret;
"""
        text = _wrap(body, [("p_n", "s32", False), ("p_x", "u64", True)])
        k = compile_ptx(text)
        pool = DevicePool(1 << 20)
        n = 100
        addr = pool.allocate((n + 64) * 8)
        pool.write(addr, np.zeros(n + 64))
        k(_views(pool), {"p_n": n, "p_x": addr}, grid_dim=2, block_dim=64)
        out = pool.read(addr, (n + 64) * 8, np.float64)
        assert np.all(out[:n] == 7.0)
        assert np.all(out[n:] == 0.0), "out-of-bounds threads stored!"

    def test_selp(self):
        body = """
    ld.param.u64 %ru0, [p_x];
    mov.u32 %u2, %tid.x;
    cvt.s32.u32 %r0, %u2;
    setp.lt.s32 %p0, %r0, 4;
    mov.f32 %f0, 1.5;
    mov.f32 %f1, -2.5;
    selp.f32 %f2, %f0, %f1, %p0;
    cvt.s64.s32 %rd0, %r0;
    mul.lo.s64 %rd1, %rd0, 4;
    cvt.u64.s64 %ru1, %rd1;
    add.u64 %ru2, %ru0, %ru1;
    st.global.f32 [%ru2], %f2;
    ret;
"""
        text = _wrap(body, [("p_x", "u64", True)])
        k = compile_ptx(text)
        pool = DevicePool(1 << 16)
        addr = pool.allocate(8 * 4)
        k(_views(pool), {"p_x": addr}, grid_dim=1, block_dim=8)
        out = pool.read(addr, 8 * 4, np.float32)
        assert np.allclose(out, [1.5] * 4 + [-2.5] * 4)

    @pytest.mark.parametrize("op,expect", [
        ("add.f64 %fd2, %fd0, %fd1;", 5.5),
        ("sub.f64 %fd2, %fd0, %fd1;", 0.5),
        ("mul.f64 %fd2, %fd0, %fd1;", 7.5),
        ("div.rn.f64 %fd2, %fd0, %fd1;", 1.2),
        ("min.f64 %fd2, %fd0, %fd1;", 2.5),
        ("max.f64 %fd2, %fd0, %fd1;", 3.0),
    ])
    def test_binary_ops(self, op, expect):
        body = f"""
    ld.param.u64 %ru0, [p_x];
    mov.f64 %fd0, 3.0;
    mov.f64 %fd1, 2.5;
    {op}
    st.global.f64 [%ru0], %fd2;
    ret;
"""
        text = _wrap(body, [("p_x", "u64", True)])
        k = compile_ptx(text)
        pool = DevicePool(1 << 16)
        addr = pool.allocate(8)
        k(_views(pool), {"p_x": addr}, grid_dim=1, block_dim=1)
        assert pool.read(addr, 8, np.float64)[0] == pytest.approx(expect)

    @pytest.mark.parametrize("op,expect", [
        ("sqrt.rn.f64 %fd1, %fd0;", 1.5),
        ("rsqrt.approx.f64 %fd1, %fd0;", 1 / 1.5),
        ("rcp.rn.f64 %fd1, %fd0;", 1 / 2.25),
        ("neg.f64 %fd1, %fd0;", -2.25),
        ("abs.f64 %fd1, %fd0;", 2.25),
    ])
    def test_unary_ops(self, op, expect):
        body = f"""
    ld.param.u64 %ru0, [p_x];
    mov.f64 %fd0, 2.25;
    {op}
    st.global.f64 [%ru0], %fd1;
    ret;
"""
        text = _wrap(body, [("p_x", "u64", True)])
        k = compile_ptx(text)
        pool = DevicePool(1 << 16)
        addr = pool.allocate(8)
        k(_views(pool), {"p_x": addr}, grid_dim=1, block_dim=1)
        assert pool.read(addr, 8, np.float64)[0] == pytest.approx(expect)

    def test_cvt_truncates_toward_zero(self):
        body = """
    ld.param.u64 %ru0, [p_x];
    mov.f64 %fd0, -2.7;
    cvt.rzi.s32.f64 %r0, %fd0;
    cvt.f64.s32 %fd1, %r0;
    st.global.f64 [%ru0], %fd1;
    ret;
"""
        text = _wrap(body, [("p_x", "u64", True)])
        k = compile_ptx(text)
        pool = DevicePool(1 << 16)
        addr = pool.allocate(8)
        k(_views(pool), {"p_x": addr}, grid_dim=1, block_dim=1)
        assert pool.read(addr, 8, np.float64)[0] == -2.0

    def test_unsupported_opcode_rejected(self):
        body = """
    ld.param.u64 %ru0, [p_x];
    ret;
"""
        text = _wrap(body, [("p_x", "u64", True)]).replace(
            "ld.param.u64 %ru0, [p_x];", "vote.ballot.b32 %r0, %p0;")
        with pytest.raises(JITCompileError):
            compile_ptx(text)

    def test_register_count_from_liveness(self):
        body = """
    ld.param.u64 %ru0, [p_x];
    ld.global.f64 %fd0, [%ru0];
    st.global.f64 [%ru0], %fd0;
    ret;
"""
        text = _wrap(body, [("p_x", "u64", True)])
        k = compile_ptx(text)
        assert 8 <= k.regs_per_thread <= 255


class TestKernelCache:
    def test_cache_hit(self):
        body = """
    ld.param.u64 %ru0, [p_x];
    ret;
"""
        text = _wrap(body, [("p_x", "u64", True)], name="cached")
        cache = KernelCache()
        k1, was1 = cache.get_or_compile(text)
        k2, was2 = cache.get_or_compile(text)
        assert not was1 and was2
        assert k1 is k2
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_distinct_text_distinct_kernels(self):
        a = _wrap("    ld.param.u64 %ru0, [p_x];\n    ret;",
                  [("p_x", "u64", True)], name="ka")
        b = a.replace("ka", "kb")
        cache = KernelCache()
        cache.get_or_compile(a)
        cache.get_or_compile(b)
        assert len(cache) == 2

    def test_modeled_jit_time_in_paper_band(self):
        """Paper Sec. III-D: 0.05 - 0.22 s per compute kernel."""
        for n_instructions in (20, 100, 300, 500):
            t = modeled_jit_time(n_instructions)
            assert 0.05 <= t <= 0.25

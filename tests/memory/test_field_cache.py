"""Tests for the automated memory management (paper Sec. IV).

Exercised through real field assignments on contexts with small
device pools, so page-in, page-out, LRU spilling and coherence are
all driven by actual kernel launches — the paper's scenario.
"""

import numpy as np
import pytest

from repro.core.context import Context
from repro.device.gpu import Device
from repro.memory.cache import FieldCache, SpillImpossible
from repro.qdp.fields import latt_fermion, latt_real
from repro.qdp.lattice import Lattice


def _fermion_bytes(lattice):
    return 24 * lattice.nsites * 8


class _FakeField:
    """Minimal CacheableField for direct cache-level tests with
    chosen uids (real fields draw from a global counter)."""

    def __init__(self, uid: int, nbytes: int = 1024):
        self.uid = uid
        self.host = np.zeros(nbytes, dtype=np.uint8)
        self.host_valid = True
        self.device_valid = False

    @property
    def nbytes(self) -> int:
        return self.host.nbytes


def _bare_cache(capacity_fields: float, nbytes: int = 1024):
    dev = Device(pool_capacity=int(capacity_fields * nbytes))
    return dev, FieldCache(dev)


class TestResidency:
    def test_fields_paged_in_before_launch(self):
        ctx = Context()
        lattice = Lattice((4, 4, 4, 4))
        a = latt_fermion(lattice, context=ctx)
        b = latt_fermion(lattice, context=ctx)
        rng = np.random.default_rng(0)
        a.gaussian(rng)
        assert not ctx.field_cache.is_resident(a)
        b.assign(2.0 * a)
        ctx.flush()                        # deferred queue: launch now
        assert ctx.field_cache.is_resident(a)
        assert ctx.field_cache.is_resident(b)
        assert ctx.field_cache.stats.page_ins >= 1

    def test_write_only_destination_not_copied(self):
        ctx = Context()
        lattice = Lattice((4, 4, 4, 4))
        a = latt_fermion(lattice, context=ctx)
        b = latt_fermion(lattice, context=ctx)
        a.gaussian(np.random.default_rng(0))
        before = ctx.device.stats.bytes_h2d
        b.assign(2.0 * a)
        moved = ctx.device.stats.bytes_h2d - before
        # only a's data (+ small tables) should cross, not b's
        assert moved < 1.5 * a.nbytes

    def test_host_read_triggers_pageout(self):
        ctx = Context()
        lattice = Lattice((4, 4, 4, 4))
        a = latt_fermion(lattice, context=ctx)
        b = latt_fermion(lattice, context=ctx)
        a.gaussian(np.random.default_rng(0))
        b.assign(2.0 * a)
        ctx.flush()
        assert not b.host_valid            # freshest copy on device
        before = ctx.field_cache.stats.page_outs
        b.to_numpy()                       # CPU access
        assert b.host_valid
        assert ctx.field_cache.stats.page_outs == before + 1

    def test_host_write_invalidates_device(self):
        ctx = Context()
        lattice = Lattice((4, 4, 4, 4))
        a = latt_fermion(lattice, context=ctx)
        b = latt_fermion(lattice, context=ctx)
        rng = np.random.default_rng(0)
        a.gaussian(rng)
        b.assign(2.0 * a)                  # a now resident
        new = np.ones((lattice.nsites, 4, 3), dtype=complex)
        a.from_numpy(new)                  # CPU write
        assert not a.device_valid
        b.assign(2.0 * a)                  # must re-upload a
        assert np.allclose(b.to_numpy(), 2.0 * new)


class TestLRUSpill:
    def _small_ctx(self, lattice, n_fields_fit: float) -> Context:
        fb = _fermion_bytes(lattice)
        return Context(pool_capacity=int(fb * n_fields_fit))

    def test_spill_makes_room(self):
        lattice = Lattice((4, 4, 4, 4))
        ctx = self._small_ctx(lattice, 3.5)
        rng = np.random.default_rng(1)
        fields = [latt_fermion(lattice, context=ctx) for _ in range(4)]
        for f in fields:
            f.gaussian(rng)
        dest = latt_fermion(lattice, context=ctx)
        # cycle through: each assignment needs 2-3 fields resident
        for f in fields:
            dest.assign(2.0 * f)
        ctx.flush()
        assert ctx.field_cache.stats.spills >= 1

    def test_spilled_dirty_field_is_paged_out_first(self):
        lattice = Lattice((4, 4, 4, 4))
        ctx = self._small_ctx(lattice, 3.2)
        rng = np.random.default_rng(2)
        a = latt_fermion(lattice, context=ctx)
        a.gaussian(rng)
        ref = 2.0 * a.to_numpy()
        b = latt_fermion(lattice, context=ctx)
        b.assign(2.0 * a)                  # b dirty on device
        # force b out by touching other fields
        c = latt_fermion(lattice, context=ctx)
        d = latt_fermion(lattice, context=ctx)
        c.gaussian(rng)
        d.assign(2.0 * c)
        d.assign(2.0 * c)
        # b's data must have survived the spill (paged out, not lost)
        assert np.allclose(b.to_numpy(), ref)

    def test_lru_order(self):
        lattice = Lattice((4, 4, 4, 4))
        ctx = self._small_ctx(lattice, 3.4)
        rng = np.random.default_rng(3)
        a, b, c = (latt_fermion(lattice, context=ctx) for _ in range(3))
        for f in (a, b, c):
            f.gaussian(rng)
        dest = latt_fermion(lattice, context=ctx)
        # flush between statements: the deferred queue would otherwise
        # fuse the chain into one kernel with a larger working set,
        # which is not the access pattern this test probes
        dest.assign(a + b)     # a, b, dest resident
        ctx.flush()
        dest.assign(dest + b)  # touch b again; a is now LRU
        ctx.flush()
        dest.assign(dest + c)  # needs room: a must be the victim
        ctx.flush()
        assert not ctx.field_cache.is_resident(a)
        assert ctx.field_cache.is_resident(b)

    def test_all_pinned_raises(self):
        lattice = Lattice((4, 4, 4, 4))
        fb = _fermion_bytes(lattice)
        ctx = Context(pool_capacity=int(fb * 1.5))
        rng = np.random.default_rng(4)
        a = latt_fermion(lattice, context=ctx)
        a.gaussian(rng)
        dest = latt_fermion(lattice, context=ctx)
        with pytest.raises(SpillImpossible):
            dest.assign(2.0 * a)   # needs 2 fermions; only 1.5 fit
            ctx.flush()            # the deferred launch raises here

    def test_deleted_field_releases_device_memory(self):
        lattice = Lattice((4, 4, 4, 4))
        ctx = Context()
        a = latt_fermion(lattice, context=ctx)
        a.gaussian(np.random.default_rng(5))
        dest = latt_fermion(lattice, context=ctx)
        dest.assign(2.0 * a)
        ctx.flush()
        resident = ctx.field_cache.resident_bytes()
        del a
        import gc

        gc.collect()
        assert ctx.field_cache.resident_bytes() < resident


class TestCoherence:
    def test_repeated_reads_transfer_once(self):
        ctx = Context()
        lattice = Lattice((4, 4, 4, 4))
        a = latt_real(lattice, context=ctx)
        b = latt_real(lattice, context=ctx)
        a.uniform(np.random.default_rng(6))
        b.assign(a + a)
        b.to_numpy()
        before = ctx.field_cache.stats.page_outs
        b.to_numpy()
        b.to_numpy()
        assert ctx.field_cache.stats.page_outs == before

    def test_values_identical_through_cache_cycle(self):
        lattice = Lattice((4, 4, 4, 4))
        ctx = Context(pool_capacity=int(_fermion_bytes(lattice) * 3.2))
        rng = np.random.default_rng(7)
        a = latt_fermion(lattice, context=ctx)
        a.gaussian(rng)
        snapshot = a.to_numpy().copy()
        dest = latt_fermion(lattice, context=ctx)
        others = [latt_fermion(lattice, context=ctx) for _ in range(3)]
        for o in others:
            o.gaussian(rng)
            dest.assign(2.0 * o)    # churn the cache; a gets evicted
        assert np.array_equal(a.to_numpy(), snapshot)


class TestSpillCornerCases:
    """Eviction edge cases driven at the cache level with fake fields
    (chosen uids, fixed sizes) so the LRU policy and the async D2H
    ordering can be asserted deterministically."""

    def test_spill_impossible_when_all_residents_pinned(self):
        dev, cache = _bare_cache(2.5)
        a, b = _FakeField(1), _FakeField(2)
        cache.make_available([a, b])       # both resident + pinned
        with pytest.raises(SpillImpossible):
            cache.make_available([a, b, _FakeField(3)])
        # the failed request must not have evicted the pinned fields
        assert cache.is_resident(a) and cache.is_resident(b)

    def test_pinned_set_is_per_call(self):
        dev, cache = _bare_cache(2.5)
        a, b = _FakeField(1), _FakeField(2)
        cache.make_available([a, b])
        # a new call pins only its own fields: eviction works again
        cache.make_available([_FakeField(3)])
        assert cache.stats.spills >= 1

    def test_lru_tie_broken_by_creation_order(self):
        # a and b are paged in by the same call (same last_use tick);
        # the victim must be the older uid — deterministically
        dev, cache = _bare_cache(2.5)
        a, b = _FakeField(1), _FakeField(2)
        cache.make_available([a, b])
        cache.make_available([_FakeField(3)])
        assert not cache.is_resident(a)
        assert cache.is_resident(b)

    def test_eviction_order_deterministic_across_runs(self):
        def run():
            dev, cache = _bare_cache(3.5)
            fields = {i: _FakeField(i) for i in range(1, 7)}
            for seq in ([1, 2, 3], [2], [4], [5], [1], [6]):
                cache.make_available([fields[i] for i in seq])
                for f in fields.values():
                    f.device_valid = False     # force real page-ins
            return [s.name for s in dev.runtime.timeline.spans
                    if s.name.startswith("pagein:")]

        first, second = run(), run()
        assert first == second
        assert len(first) > 6              # some fields paged in twice

    def test_writeback_ordered_before_reuse(self):
        # dirty spill goes out on the d2h stream; the next upload into
        # the (possibly recycled) slot must wait for it to drain
        dev, cache = _bare_cache(2.5)
        a, b = _FakeField(1), _FakeField(2)
        cache.make_available([a])
        cache.mark_device_dirty(a)
        cache.make_available([b])
        cache.mark_device_dirty(b)
        cache.make_available([_FakeField(3)])   # spills a (dirty)
        spans = dev.runtime.timeline.spans
        po = next(s for s in spans if s.name == "pageout:f1")
        pi = next(s for s in spans if s.name == "pagein:f3")
        assert po.lane == "d2h" and pi.lane == "h2d"
        assert pi.t0 >= po.t1              # upload gated on writeback
        assert po.sid in pi.deps
        assert a.host_valid                # data survived the spill

    def test_kernel_waits_for_pagein(self):
        dev, cache = _bare_cache(4)
        a = _FakeField(1)
        cache.make_available([a])
        k = dev.runtime.compute.enqueue("kern", 1e-6, "kernel")
        pi = next(s for s in dev.runtime.timeline.spans
                  if s.name == "pagein:f1")
        assert k.t0 >= pi.t1               # compute gated on upload
        assert pi.sid in k.deps

    def test_hit_miss_and_hwm_counters(self):
        dev, cache = _bare_cache(4)
        a, b = _FakeField(1), _FakeField(2)
        cache.make_available([a])
        assert (cache.stats.misses, cache.stats.hits) == (1, 0)
        cache.make_available([a, b])
        assert (cache.stats.misses, cache.stats.hits) == (2, 1)
        assert cache.stats.resident_bytes_hwm == a.nbytes + b.nbytes

"""Tests for the flat device memory pool / allocator."""

import numpy as np
import pytest

from repro.memory.pool import (
    ALIGNMENT,
    BASE_ADDRESS,
    DeviceOutOfMemory,
    DevicePool,
    InvalidFree,
)


class TestAllocator:
    def test_alignment(self):
        pool = DevicePool(1 << 20)
        for size in (1, 17, 255, 256, 1000):
            addr = pool.allocate(size)
            assert addr % ALIGNMENT == 0

    def test_null_address_never_returned(self):
        pool = DevicePool(1 << 20)
        addrs = [pool.allocate(64) for _ in range(10)]
        assert all(a >= BASE_ADDRESS for a in addrs)

    def test_distinct_allocations_disjoint(self):
        pool = DevicePool(1 << 20)
        a = pool.allocate(1000)
        b = pool.allocate(1000)
        asz = pool.allocation_size(a)
        assert b >= a + asz or a >= b + pool.allocation_size(b)

    def test_oom(self):
        pool = DevicePool(1 << 16)
        with pytest.raises(DeviceOutOfMemory):
            pool.allocate(1 << 20)
        assert pool.stats.n_failed_allocs == 1

    def test_free_then_reuse(self):
        pool = DevicePool(1 << 16)
        a = pool.allocate(48 * 1024)
        with pytest.raises(DeviceOutOfMemory):
            pool.allocate(48 * 1024)
        pool.free(a)
        b = pool.allocate(48 * 1024)
        assert b == a

    def test_coalescing(self):
        pool = DevicePool(1 << 20)
        blocks = [pool.allocate(4096) for _ in range(8)]
        for b in blocks:
            pool.free(b)
        # after freeing everything the pool must satisfy one large
        # allocation again (fragmentation coalesced away)
        big = pool.allocate(8 * 4096)
        assert big == blocks[0]

    def test_double_free_rejected(self):
        pool = DevicePool(1 << 16)
        a = pool.allocate(64)
        pool.free(a)
        with pytest.raises(InvalidFree):
            pool.free(a)

    def test_free_unknown_rejected(self):
        pool = DevicePool(1 << 16)
        with pytest.raises(InvalidFree):
            pool.free(12345 * ALIGNMENT)

    def test_zero_size_rejected(self):
        pool = DevicePool(1 << 16)
        with pytest.raises(ValueError):
            pool.allocate(0)

    def test_accounting(self):
        pool = DevicePool(1 << 20)
        a = pool.allocate(1000)
        used = pool.stats.bytes_in_use
        assert used >= 1000
        pool.free(a)
        assert pool.stats.bytes_in_use == 0
        assert pool.stats.peak_bytes_in_use == used

    def test_bytes_free_plus_used_is_capacity(self):
        pool = DevicePool(1 << 20)
        pool.allocate(5000)
        pool.allocate(300)
        assert (pool.bytes_free + pool.stats.bytes_in_use
                == pool.capacity - BASE_ADDRESS)


class TestDataAccess:
    def test_write_read_roundtrip(self):
        pool = DevicePool(1 << 20)
        addr = pool.allocate(800)
        data = np.arange(100, dtype=np.float64)
        pool.write(addr, data)
        out = pool.read(addr, 800, np.float64)
        assert np.array_equal(out, data)

    def test_typed_views_share_memory(self):
        pool = DevicePool(1 << 16)
        addr = pool.allocate(8)
        pool.write(addr, np.array([1.5], dtype=np.float64))
        v = pool.view(np.float64)
        assert v[addr >> 3] == 1.5
        v[addr >> 3] = 2.5
        assert pool.read(addr, 8, np.float64)[0] == 2.5

    def test_out_of_range_write_rejected(self):
        pool = DevicePool(1 << 16)
        with pytest.raises(ValueError):
            pool.write(pool.capacity - 4, np.zeros(2, dtype=np.float64))

    def test_out_of_range_read_rejected(self):
        pool = DevicePool(1 << 16)
        with pytest.raises(ValueError):
            pool.read(0, 16)

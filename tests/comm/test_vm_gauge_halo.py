"""Distributed shifts of non-fermion types (gauge-field halos) and
context table management."""

import numpy as np

from repro.comm import VirtualMachine
from repro.core.context import Context
from repro.qdp.typesys import color_matrix, real_field


class TestGaugeHalo:
    def test_color_matrix_shift(self, rng):
        """18-word halos take a different gather kernel than the
        24-word fermion ones; both must be exact."""
        vm = VirtualMachine((4, 4, 4, 8), (1, 1, 1, 2))
        glat = vm.global_lattice
        u = vm.field(color_matrix())
        data = (rng.normal(size=(glat.nsites, 3, 3))
                + 1j * rng.normal(size=(glat.nsites, 3, 3)))
        u.from_global(data)
        dst = vm.field(color_matrix())
        vm.shift_into(dst, u, 3, -1)
        t = glat.shift_map(3, -1)
        assert np.array_equal(dst.to_global(), data[t])

    def test_real_field_shift(self, rng):
        vm = VirtualMachine((4, 4, 4, 8), (1, 1, 1, 2))
        glat = vm.global_lattice
        r = vm.field(real_field())
        data = rng.normal(size=(glat.nsites,))
        r.from_global(data)
        dst = vm.field(real_field())
        vm.shift_into(dst, r, 3, +1)
        assert np.array_equal(dst.to_global(),
                              data[glat.shift_map(3, +1)])

    def test_buffers_reused_across_exchanges(self, rng):
        vm = VirtualMachine((4, 4, 4, 8), (1, 1, 1, 2))
        u = vm.field(color_matrix())
        u.gaussian(rng)
        dst = vm.field(color_matrix())
        vm.shift_into(dst, u, 3, +1)
        n_allocs = sum(c.device.pool.stats.n_allocs
                       for c in vm.contexts)
        vm.shift_into(dst, u, 3, +1)
        n_allocs2 = sum(c.device.pool.stats.n_allocs
                        for c in vm.contexts)
        assert n_allocs2 == n_allocs   # persistent send/recv buffers


class TestContextTables:
    def test_upload_table_cached(self):
        ctx = Context()
        t = np.arange(64, dtype=np.int32)
        a1 = ctx.upload_table("key1", t)
        a2 = ctx.upload_table("key1", t)
        assert a1 == a2
        a3 = ctx.upload_table("key2", t)
        assert a3 != a1

    def test_drop_tables_frees_memory(self):
        ctx = Context()
        before = ctx.device.pool.stats.bytes_in_use
        ctx.upload_table("k", np.arange(1024, dtype=np.int32))
        assert ctx.device.pool.stats.bytes_in_use > before
        ctx.drop_tables()
        assert ctx.device.pool.stats.bytes_in_use == before

    def test_table_contents_on_device(self):
        ctx = Context()
        t = np.arange(100, dtype=np.int32) * 3
        addr = ctx.upload_table("k", t)
        got = ctx.device.pool.read(addr, 400, np.int32)
        assert np.array_equal(got, t)

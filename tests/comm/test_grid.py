"""Tests for processor grids and lattice decomposition."""

import numpy as np
import pytest

from repro.comm.grid import (
    Decomposition,
    DecompositionError,
    ProcessorGrid,
    shrunken_grid,
)


class TestProcessorGrid:
    def test_size(self):
        assert ProcessorGrid((2, 1, 1, 2)).size == 4

    def test_coords_roundtrip(self):
        g = ProcessorGrid((2, 3, 1, 2))
        for r in range(g.size):
            assert g.rank_of(g.coords_of(r)) == r

    def test_neighbor_periodic(self):
        g = ProcessorGrid((1, 1, 1, 4))
        assert g.neighbor(0, 3, +1) == 1
        assert g.neighbor(3, 3, +1) == 0
        assert g.neighbor(0, 3, -1) == 3

    def test_neighbor_inverse(self):
        g = ProcessorGrid((2, 2, 2, 2))
        for r in range(g.size):
            for mu in range(4):
                assert g.neighbor(g.neighbor(r, mu, +1), mu, -1) == r

    def test_bad_rank(self):
        with pytest.raises(DecompositionError):
            ProcessorGrid((2, 2)).coords_of(5)

    def test_bad_dims(self):
        with pytest.raises(DecompositionError):
            ProcessorGrid((2, 0))


class TestDecomposition:
    def test_local_dims(self):
        d = Decomposition((8, 8, 8, 16), ProcessorGrid((1, 1, 2, 4)))
        assert d.local_dims == (8, 8, 4, 4)

    def test_indivisible_rejected(self):
        with pytest.raises(DecompositionError):
            Decomposition((8, 8, 8, 10), ProcessorGrid((1, 1, 1, 4)))

    def test_odd_local_rejected(self):
        """Local extents must stay even for checkerboarding."""
        with pytest.raises(DecompositionError):
            Decomposition((4, 4, 4, 8), ProcessorGrid((1, 1, 1, 8)))
        with pytest.raises(DecompositionError):
            Decomposition((6, 4, 4, 4), ProcessorGrid((2, 1, 1, 1)))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(DecompositionError):
            Decomposition((8, 8, 8), ProcessorGrid((1, 1, 1, 2)))

    def test_owner_of_covers_lattice(self):
        d = Decomposition((4, 4, 4, 8), ProcessorGrid((1, 1, 1, 2)))
        g = d.global_lattice()
        ranks, lidx = d.owner_of(g.coords)
        assert set(ranks) == {0, 1}
        local_n = d.local_lattice().nsites
        for r in (0, 1):
            sel = ranks == r
            assert sel.sum() == local_n
            assert sorted(lidx[sel]) == list(range(local_n))

    def test_owner_respects_blocks(self):
        d = Decomposition((4, 4, 4, 8), ProcessorGrid((1, 1, 1, 2)))
        ranks, _ = d.owner_of(np.array([[0, 0, 0, 0], [0, 0, 0, 7]]))
        assert list(ranks) == [0, 1]


class TestEdgeCases:
    def test_single_rank_grid_wraps_to_itself(self):
        g = ProcessorGrid((1, 1, 1, 1))
        assert g.size == 1
        for mu in range(4):
            assert g.neighbor(0, mu, +1) == 0
            assert g.neighbor(0, mu, -1) == 0

    def test_single_rank_decomposition_is_the_global_lattice(self):
        d = Decomposition((4, 4, 4, 8), ProcessorGrid((1, 1, 1, 1)))
        assert d.local_dims == (4, 4, 4, 8)

    def test_non_power_of_two_grid(self):
        d = Decomposition((4, 6, 4, 8), ProcessorGrid((1, 3, 1, 2)))
        assert d.local_dims == (4, 2, 4, 4)
        g = d.grid
        for r in range(g.size):
            assert g.rank_of(g.coords_of(r)) == r

    def test_owner_of_covers_non_power_of_two(self):
        d = Decomposition((4, 6, 4, 8), ProcessorGrid((1, 3, 1, 2)))
        glat = d.global_lattice()
        ranks, lidx = d.owner_of(glat.coords)
        local_n = d.local_lattice().nsites
        assert set(ranks) == set(range(6))
        for r in range(6):
            sel = ranks == r
            assert sel.sum() == local_n
            assert sorted(lidx[sel]) == list(range(local_n))

    def test_boundary_wrap_neighbor_map(self):
        """Walking +1 in t visits every rank once, then wraps."""
        g = ProcessorGrid((1, 1, 1, 3))
        assert g.neighbor(2, 3, +1) == 0
        assert g.neighbor(0, 3, -1) == 2
        seen, r = [], 0
        for _ in range(g.size):
            seen.append(r)
            r = g.neighbor(r, 3, +1)
        assert sorted(seen) == list(range(g.size))
        assert r == 0


class TestShrunkenGrid:
    def test_prefers_shrinking_the_time_dimension(self):
        g = shrunken_grid(ProcessorGrid((1, 1, 2, 2)), (4, 4, 4, 8))
        assert g.dims == (1, 1, 2, 1)

    def test_two_ranks_shrink_to_one(self):
        g = shrunken_grid(ProcessorGrid((1, 1, 1, 2)), (4, 4, 4, 8))
        assert g.dims == (1, 1, 1, 1)

    def test_skips_non_decomposing_extents(self):
        # 8 % 3 != 0, so t=4 shrinks past 3 straight to 2
        g = shrunken_grid(ProcessorGrid((1, 1, 1, 4)), (4, 4, 4, 8))
        assert g.dims == (1, 1, 1, 2)

    def test_single_rank_cannot_shrink(self):
        with pytest.raises(DecompositionError):
            shrunken_grid(ProcessorGrid((1, 1, 1, 1)), (4, 4, 4, 8))

    def test_result_decomposes_and_is_deterministic(self):
        grid = ProcessorGrid((2, 1, 2, 2))
        a = shrunken_grid(grid, (4, 4, 4, 8))
        b = shrunken_grid(grid, (4, 4, 4, 8))
        assert a.dims == b.dims
        assert a.size < grid.size
        Decomposition((4, 4, 4, 8), a)   # must not raise

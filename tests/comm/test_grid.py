"""Tests for processor grids and lattice decomposition."""

import numpy as np
import pytest

from repro.comm.grid import Decomposition, DecompositionError, ProcessorGrid


class TestProcessorGrid:
    def test_size(self):
        assert ProcessorGrid((2, 1, 1, 2)).size == 4

    def test_coords_roundtrip(self):
        g = ProcessorGrid((2, 3, 1, 2))
        for r in range(g.size):
            assert g.rank_of(g.coords_of(r)) == r

    def test_neighbor_periodic(self):
        g = ProcessorGrid((1, 1, 1, 4))
        assert g.neighbor(0, 3, +1) == 1
        assert g.neighbor(3, 3, +1) == 0
        assert g.neighbor(0, 3, -1) == 3

    def test_neighbor_inverse(self):
        g = ProcessorGrid((2, 2, 2, 2))
        for r in range(g.size):
            for mu in range(4):
                assert g.neighbor(g.neighbor(r, mu, +1), mu, -1) == r

    def test_bad_rank(self):
        with pytest.raises(DecompositionError):
            ProcessorGrid((2, 2)).coords_of(5)

    def test_bad_dims(self):
        with pytest.raises(DecompositionError):
            ProcessorGrid((2, 0))


class TestDecomposition:
    def test_local_dims(self):
        d = Decomposition((8, 8, 8, 16), ProcessorGrid((1, 1, 2, 4)))
        assert d.local_dims == (8, 8, 4, 4)

    def test_indivisible_rejected(self):
        with pytest.raises(DecompositionError):
            Decomposition((8, 8, 8, 10), ProcessorGrid((1, 1, 1, 4)))

    def test_odd_local_rejected(self):
        """Local extents must stay even for checkerboarding."""
        with pytest.raises(DecompositionError):
            Decomposition((4, 4, 4, 8), ProcessorGrid((1, 1, 1, 8)))
        with pytest.raises(DecompositionError):
            Decomposition((6, 4, 4, 4), ProcessorGrid((2, 1, 1, 1)))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(DecompositionError):
            Decomposition((8, 8, 8), ProcessorGrid((1, 1, 1, 2)))

    def test_owner_of_covers_lattice(self):
        d = Decomposition((4, 4, 4, 8), ProcessorGrid((1, 1, 1, 2)))
        g = d.global_lattice()
        ranks, lidx = d.owner_of(g.coords)
        assert set(ranks) == {0, 1}
        local_n = d.local_lattice().nsites
        for r in (0, 1):
            sel = ranks == r
            assert sel.sum() == local_n
            assert sorted(lidx[sel]) == list(range(local_n))

    def test_owner_respects_blocks(self):
        d = Decomposition((4, 4, 4, 8), ProcessorGrid((1, 1, 1, 2)))
        ranks, _ = d.owner_of(np.array([[0, 0, 0, 0], [0, 0, 0, 7]]))
        assert list(ranks) == [0, 1]

"""Tests for the overlap scheduler (paper Sec. V + Fig. 6 mechanics).

The key property: overlap ON and OFF produce byte-identical results,
only modeled time differs — overlap hides communication behind the
inner-site kernel."""

import numpy as np
import pytest

from repro.comm import DistributedWilsonDslash, VirtualMachine
from repro.qcd.dslash import WilsonDslash
from repro.qcd.gauge import weak_gauge
from repro.qdp.fields import latt_fermion
from repro.qdp.lattice import Lattice
from repro.qdp.typesys import color_matrix, fermion


@pytest.fixture(scope="module")
def dslash_setup():
    rng = np.random.default_rng(31)
    dims = (4, 4, 4, 8)
    # single-rank reference
    from repro.core.context import Context

    ref_ctx = Context()
    glat = Lattice(dims)
    u = weak_gauge(glat, rng, context=ref_ctx)
    psi = latt_fermion(glat, context=ref_ctx)
    psi.gaussian(rng)
    dest = latt_fermion(glat, context=ref_ctx)
    WilsonDslash(u)(dest, psi)
    ref = dest.to_numpy()

    vm = VirtualMachine(dims, (1, 1, 1, 2))
    ud = [vm.field(color_matrix()) for _ in range(4)]
    for mu in range(4):
        ud[mu].from_global(u[mu].to_numpy())
    psid = vm.field(fermion())
    psid.from_global(psi.to_numpy())
    return vm, ud, psid, ref


class TestCorrectness:
    def test_nonoverlap_matches_single_rank(self, dslash_setup):
        vm, ud, psid, ref = dslash_setup
        d = DistributedWilsonDslash(vm, ud)
        out = vm.field(fermion())
        d.apply(out, psid, overlap=False)
        assert np.abs(out.to_global() - ref).max() < 1e-12

    def test_overlap_bit_identical_to_nonoverlap(self, dslash_setup):
        vm, ud, psid, ref = dslash_setup
        d = DistributedWilsonDslash(vm, ud)
        a = vm.field(fermion())
        b = vm.field(fermion())
        d.apply(a, psid, overlap=False)
        d.apply(b, psid, overlap=True)
        assert np.array_equal(a.to_global(), b.to_global())

    def test_overlap_matches_single_rank(self, dslash_setup):
        vm, ud, psid, ref = dslash_setup
        d = DistributedWilsonDslash(vm, ud)
        out = vm.field(fermion())
        d.apply(out, psid, overlap=True)
        assert np.abs(out.to_global() - ref).max() < 1e-12

    def test_four_rank_grid(self):
        rng = np.random.default_rng(7)
        dims = (4, 4, 4, 8)
        vm = VirtualMachine(dims, (1, 1, 2, 2))
        from repro.core.context import Context
        from repro.qcd.gauge import weak_gauge as wg

        ref_ctx = Context()
        u = wg(Lattice(dims), rng, context=ref_ctx)
        psi = latt_fermion(Lattice(dims), context=ref_ctx)
        psi.gaussian(rng)
        dest = latt_fermion(Lattice(dims), context=ref_ctx)
        WilsonDslash(u)(dest, psi)
        ud = [vm.field(color_matrix()) for _ in range(4)]
        for mu in range(4):
            ud[mu].from_global(u[mu].to_numpy())
        psid = vm.field(fermion())
        psid.from_global(psi.to_numpy())
        out = vm.field(fermion())
        DistributedWilsonDslash(vm, ud).apply(out, psid, overlap=True)
        assert np.abs(out.to_global() - dest.to_numpy()).max() < 1e-12


class TestTiming:
    def test_overlap_hides_comm(self, dslash_setup):
        vm, ud, psid, _ = dslash_setup
        d = DistributedWilsonDslash(vm, ud)
        out = vm.field(fermion())
        t_ov = d.apply(out, psid, overlap=True)
        t_no = d.apply(out, psid, overlap=False)
        assert t_ov.total_s < t_no.total_s
        # the hidden portion is min(comm, inner work)
        hidden = min(t_ov.comm_s,
                     t_ov.interior_fill_s + t_ov.main_inner_s)
        assert t_no.total_s - t_ov.total_s <= hidden * 1.05

    def test_breakdown_components_positive(self, dslash_setup):
        vm, ud, psid, _ = dslash_setup
        d = DistributedWilsonDslash(vm, ud)
        out = vm.field(fermion())
        t = d.apply(out, psid, overlap=True)
        for name in ("prepare_s", "gather_s", "comm_s",
                     "interior_fill_s", "scatter_s", "main_inner_s",
                     "main_face_s"):
            assert getattr(t, name) > 0, name

    def test_gflops_accounting(self, dslash_setup):
        vm, ud, psid, _ = dslash_setup
        d = DistributedWilsonDslash(vm, ud)
        out = vm.field(fermion())
        t = d.apply(out, psid, overlap=True)
        v = vm.global_lattice.nsites
        assert t.gflops(v) == pytest.approx(
            1320 * v / t.total_s / 1e9)

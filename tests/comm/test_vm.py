"""Tests for the virtual machine: scatter/gather, halo exchange,
distributed shift, distributed reductions."""

import numpy as np
import pytest

from repro.comm import VirtualMachine
from repro.qdp.typesys import color_matrix, fermion


@pytest.fixture()
def vm2():
    return VirtualMachine((4, 4, 4, 8), (1, 1, 1, 2))


@pytest.fixture()
def vm8():
    return VirtualMachine((4, 4, 4, 8), (2, 2, 1, 2))


class TestGlobalScatterGather:
    def test_roundtrip(self, vm2, rng):
        f = vm2.field(fermion())
        data = (rng.normal(size=(512, 4, 3))
                + 1j * rng.normal(size=(512, 4, 3)))
        f.from_global(data)
        assert np.array_equal(f.to_global(), data)

    def test_shape_validated(self, vm2):
        f = vm2.field(fermion())
        with pytest.raises(ValueError):
            f.from_global(np.zeros((100, 4, 3), dtype=complex))

    def test_shards_partition_data(self, vm2, rng):
        f = vm2.field(fermion())
        data = (rng.normal(size=(512, 4, 3))
                + 1j * rng.normal(size=(512, 4, 3)))
        f.from_global(data)
        n_local = vm2.local_lattice.nsites
        assert all(s.nsites == n_local for s in f.shards)


class TestDistributedShift:
    @pytest.mark.parametrize("grid", [(1, 1, 1, 2), (2, 1, 1, 2)])
    @pytest.mark.parametrize("mu,sign", [(3, +1), (3, -1), (0, +1),
                                         (1, -1)])
    def test_matches_global_shift(self, grid, mu, sign, rng):
        vm = VirtualMachine((4, 4, 4, 8), grid)
        glat = vm.global_lattice
        src = vm.field(fermion())
        data = (rng.normal(size=(glat.nsites, 4, 3))
                + 1j * rng.normal(size=(glat.nsites, 4, 3)))
        src.from_global(data)
        dst = vm.field(fermion())
        vm.shift_into(dst, src, mu, sign)
        t = glat.shift_map(mu, sign)
        assert np.array_equal(dst.to_global(), data[t])

    def test_self_wrap_direction(self, vm2, rng):
        """A direction with grid extent 1 wraps through the exchange
        machinery onto the same rank — must still be exact."""
        glat = vm2.global_lattice
        src = vm2.field(fermion())
        data = (rng.normal(size=(glat.nsites, 4, 3))
                + 1j * rng.normal(size=(glat.nsites, 4, 3)))
        src.from_global(data)
        dst = vm2.field(fermion())
        vm2.shift_into(dst, src, 0, +1)   # grid dim 0 has extent 1
        assert np.array_equal(dst.to_global(), data[glat.shift_map(0, +1)])

    def test_timeline_accumulates(self, vm2, rng):
        src = vm2.field(fermion())
        src.gaussian(rng)
        dst = vm2.field(fermion())
        vm2.shift_into(dst, src, 3, +1)
        by_cat = vm2.timeline.cat_busy()
        assert by_cat.get("gather", 0) > 0
        assert by_cat.get("scatter", 0) > 0
        assert by_cat.get("comm", 0) > 0
        assert by_cat.get("kernel", 0) > 0
        # gather and scatter run on the compute lane, the message on
        # the comm lane
        lanes = vm2.timeline.lane_busy()
        assert lanes["comm"] == pytest.approx(by_cat["comm"])

    def test_scatter_ordered_after_message(self, vm2, rng):
        """The scatter span must start no earlier than the halo
        message it consumes finishes (the event dependency)."""
        src = vm2.field(fermion())
        src.gaussian(rng)
        dst = vm2.field(fermion())
        ex = vm2.exchange(src, 3, +1)
        vm2.fill_shift_interior(dst, src, 3, +1)
        vm2.scatter_halo(dst, ex)
        spans = {s.name: s for s in vm2.timeline.spans}
        halo = next(s for n, s in spans.items() if n.startswith("halo:"))
        scat = next(s for n, s in spans.items() if n.startswith("scatter:"))
        assert scat.t0 >= halo.t1
        assert halo.sid in scat.deps


class TestLocalEvaluation:
    def test_assign_local(self, vm2, rng):
        glat = vm2.global_lattice
        u = vm2.field(color_matrix())
        psi = vm2.field(fermion())
        udata = (rng.normal(size=(glat.nsites, 3, 3))
                 + 1j * rng.normal(size=(glat.nsites, 3, 3)))
        pdata = (rng.normal(size=(glat.nsites, 4, 3))
                 + 1j * rng.normal(size=(glat.nsites, 4, 3)))
        u.from_global(udata)
        psi.from_global(pdata)
        out = vm2.field(fermion())
        vm2.assign_local(out, lambda r: u.shards[r] * psi.shards[r])
        ref = np.einsum("nab,nsb->nsa", udata, pdata)
        assert np.allclose(out.to_global(), ref, rtol=1e-12)


class TestDistributedReductions:
    def test_norm2_matches_single_rank(self, vm2, rng):
        glat = vm2.global_lattice
        f = vm2.field(fermion())
        data = (rng.normal(size=(glat.nsites, 4, 3))
                + 1j * rng.normal(size=(glat.nsites, 4, 3)))
        f.from_global(data)
        assert vm2.norm2(f) == pytest.approx(
            float(np.sum(np.abs(data) ** 2)), rel=1e-12)

    def test_inner_product(self, vm8, rng):
        glat = vm8.global_lattice
        a = vm8.field(fermion())
        b = vm8.field(fermion())
        da = (rng.normal(size=(glat.nsites, 4, 3))
              + 1j * rng.normal(size=(glat.nsites, 4, 3)))
        db = (rng.normal(size=(glat.nsites, 4, 3))
              + 1j * rng.normal(size=(glat.nsites, 4, 3)))
        a.from_global(da)
        b.from_global(db)
        assert vm8.innerProduct(a, b) == pytest.approx(
            complex(np.sum(da.conj() * db)), rel=1e-12)

    def test_allreduce_time_charged(self, vm8, rng):
        f = vm8.field(fermion())
        f.gaussian(rng)
        before = vm8.timeline.cat_busy().get("reduce", 0.0)
        vm8.norm2(f)
        after = vm8.timeline.cat_busy().get("reduce", 0.0)
        assert after > before
        # the allreduce is a sync point: it lives on the comm lane and
        # nothing enqueued later may start before it completes
        spans = vm8.timeline.spans
        red = next(s for s in spans if s.cat == "reduce")
        assert red.lane == "comm"
        assert vm8.runtime.compute.clock >= red.t1

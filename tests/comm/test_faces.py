"""Unit tests for the face gather/scatter kernels (paper Sec. V)."""

import numpy as np
import pytest

from repro.comm.faces import FaceKernels, build_gather_kernel, build_scatter_kernel
from repro.core.context import Context
from repro.ptx.verifier import verify
from repro.qdp.fields import latt_fermion
from repro.qdp.lattice import Lattice


@pytest.fixture()
def env():
    ctx = Context()
    lat = Lattice((4, 4, 4, 4))
    psi = latt_fermion(lat, context=ctx)
    psi.gaussian(np.random.default_rng(0))
    fk = FaceKernels(ctx.kernel_cache)
    return ctx, lat, psi, fk


def _launch(ctx, module, compiled, params, n):
    return ctx.device.launch(compiled, module.info, params, n,
                             block_size=128, precision="f64")


class TestKernels:
    def test_modules_verify(self):
        verify(build_gather_kernel(24, "f64"))
        verify(build_scatter_kernel(24, "f64"))
        verify(build_gather_kernel(12, "f32"))

    def test_gather_packs_faces(self, env):
        ctx, lat, psi, fk = env
        face = lat.face_sites(3, +1)
        nface = face.size
        module, compiled = fk.get("gather", 24, "f64")
        addrs = ctx.field_cache.make_available([psi])
        buf = ctx.device.mem_alloc(24 * 8 * nface)
        params = {
            "p_lo": lat.nsites, "p_n": nface,
            "p_sites": ctx.upload_table(("t", lat.dims, 3, +1), face),
            "p_dst": buf, "p_src": addrs[psi.uid],
        }
        _launch(ctx, module, compiled, params, nface)
        got = ctx.device.memcpy_dtoh(buf, 24 * 8 * nface, np.float64)
        # buffer layout: word-major, face-slot fastest
        host = psi.host.reshape(24, lat.nsites)
        expected = host[:, face].reshape(-1)
        assert np.array_equal(got[:24 * nface], expected)

    def test_gather_scatter_roundtrip(self, env):
        ctx, lat, psi, fk = env
        face = lat.face_sites(1, -1)
        nface = face.size
        gmod, gk = fk.get("gather", 24, "f64")
        smod, sk = fk.get("scatter", 24, "f64")
        addrs = ctx.field_cache.make_available([psi])
        buf = ctx.device.mem_alloc(24 * 8 * nface)
        table = ctx.upload_table(("t2", lat.dims, 1, -1), face)
        base = {"p_lo": lat.nsites, "p_n": nface, "p_sites": table}
        _launch(ctx, gmod, gk, {**base, "p_dst": buf,
                                "p_src": addrs[psi.uid]}, nface)
        # wipe the faces, scatter them back, field must be restored
        original = psi.to_numpy().copy()
        dest = latt_fermion(lat, context=ctx)
        daddrs = ctx.field_cache.make_available([dest])
        _launch(ctx, smod, sk, {**base, "p_dst": daddrs[dest.uid],
                                "p_src": buf}, nface)
        ctx.field_cache.mark_device_dirty(dest)
        out = dest.to_numpy()
        assert np.array_equal(out[face], original[face])
        others = np.setdiff1d(np.arange(lat.nsites), face)
        assert np.all(out[others] == 0)

    def test_kernels_cached_per_shape(self, env):
        ctx, lat, psi, fk = env
        a = fk.get("gather", 24, "f64")
        b = fk.get("gather", 24, "f64")
        c = fk.get("gather", 18, "f64")
        assert a[1] is b[1]
        assert a[1] is not c[1]

"""Tests for the interconnect models."""

import pytest

from repro.comm.netmodel import (
    GEMINI,
    IB_QDR_CUDA_AWARE,
    IB_QDR_STAGED,
    NetworkModel,
)


class TestMessageTime:
    def test_latency_dominates_small_messages(self):
        net = IB_QDR_CUDA_AWARE
        t = net.message_time(8)
        assert t == pytest.approx(net.latency_s, rel=0.01)

    def test_bandwidth_dominates_large_messages(self):
        net = IB_QDR_CUDA_AWARE
        nbytes = 64 * 1024 * 1024
        t = net.message_time(nbytes)
        assert t == pytest.approx(nbytes / net.bandwidth, rel=0.01)

    def test_monotone_in_size(self):
        net = GEMINI
        prev = 0.0
        for nbytes in (1, 100, 10_000, 1_000_000):
            t = net.message_time(nbytes)
            assert t > prev
            prev = t

    def test_staging_penalty(self):
        """Non-CUDA-aware MPI pays two PCIe hops per message."""
        nbytes = 1 << 20
        aware = IB_QDR_CUDA_AWARE.message_time(nbytes)
        staged = IB_QDR_STAGED.message_time(nbytes)
        expected_extra = 2 * (IB_QDR_STAGED.pcie_latency_s
                              + nbytes / IB_QDR_STAGED.pcie_bandwidth)
        assert staged - aware == pytest.approx(expected_extra, rel=1e-9)

    def test_exchange_pipelines_latency(self):
        """N messages on one NIC: payloads serialize, latencies
        pipeline — cheaper than N separate messages."""
        net = IB_QDR_CUDA_AWARE
        msgs = [1 << 16] * 8
        bundled = net.exchange_time(msgs)
        separate = sum(net.message_time(m) for m in msgs)
        assert bundled < separate
        assert bundled >= sum(msgs) / net.bandwidth

    def test_empty_exchange(self):
        assert IB_QDR_CUDA_AWARE.exchange_time([]) == 0.0

    def test_custom_model(self):
        net = NetworkModel(name="x", latency_s=1e-6, bandwidth=1e9)
        assert net.message_time(1_000_000) == pytest.approx(1e-6 + 1e-3)


class TestEdgeCases:
    def test_zero_byte_message_is_pure_latency(self):
        net = IB_QDR_CUDA_AWARE
        assert net.message_time(0) == net.latency_s
        staged = IB_QDR_STAGED
        assert staged.message_time(0) == (staged.latency_s
                                          + 2 * staged.pcie_latency_s)

    def test_single_message_exchange_equals_message_time(self):
        for net in (IB_QDR_CUDA_AWARE, IB_QDR_STAGED, GEMINI):
            assert net.exchange_time([1 << 16]) \
                == net.message_time(1 << 16)

    def test_exchange_monotone_in_message_count(self):
        prev = 0.0
        for n in (1, 2, 4, 8):
            t = GEMINI.exchange_time([4096] * n)
            assert t > prev
            prev = t

    def test_staged_exchange_pays_pcie_once_per_bundle(self):
        """Staging cost scales with the bundle's payload, not with
        the number of messages in it."""
        msgs = [1 << 12] * 4
        aware = IB_QDR_CUDA_AWARE.exchange_time(msgs)
        staged = IB_QDR_STAGED.exchange_time(msgs)
        total = sum(msgs)
        expected = 2 * (IB_QDR_STAGED.pcie_latency_s
                        + total / IB_QDR_STAGED.pcie_bandwidth)
        assert staged - aware == pytest.approx(expected, rel=1e-9)

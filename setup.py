"""Setup shim.

Kept alongside pyproject.toml so that editable installs work on
environments whose setuptools predates wheel-less PEP 660 support.
"""
from setuptools import setup

setup()

"""Multi-GPU Dslash with communication/computation overlap (paper
Sec. V and Fig. 6).

Spins up a 2-rank virtual machine, applies the Wilson hopping term
with the overlap schedule on and off, verifies bit-identical results,
and prints the modeled timing breakdown — then sweeps the modeled
volumes of Fig. 6.

Run:  python examples/multi_gpu_overlap.py
"""

import numpy as np

from repro.comm import DistributedWilsonDslash, VirtualMachine
from repro.perfmodel.dslashperf import figure_6
from repro.qcd import su3
from repro.qdp.typesys import color_matrix, fermion

# --- executed part: 2 virtual GPUs over a 4^3 x 8 global lattice -----
vm = VirtualMachine((4, 4, 4, 8), (1, 1, 1, 2))
rng = np.random.default_rng(5)
u = [vm.field(color_matrix(), f"u{mu}") for mu in range(4)]
for umu in u:
    umu.from_global(su3.random_su3_near_unit(
        rng, vm.global_lattice.nsites, 0.2))
psi = vm.field(fermion(), "psi")
psi.gaussian(rng)
dest = vm.field(fermion(), "Dpsi")

dslash = DistributedWilsonDslash(vm, u)
t_on = dslash.apply(dest, psi, overlap=True)
result_on = dest.to_global()
t_off = dslash.apply(dest, psi, overlap=False)
result_off = dest.to_global()

assert np.array_equal(result_on, result_off), \
    "overlap changed the physics!"
print("overlap ON and OFF produce bit-identical fields  [ok]\n")

print("modeled timing breakdown (2 ranks, per Dslash):")
for label, t in (("overlap ON ", t_on), ("overlap OFF", t_off)):
    print(f"  {label}: total {t.total_s * 1e3:7.3f} ms   "
          f"[prep {t.prepare_s * 1e3:.3f} | gather {t.gather_s * 1e3:.3f}"
          f" | comm {t.comm_s * 1e3:.3f} | fill "
          f"{t.interior_fill_s * 1e3:.3f} | scatter "
          f"{t.scatter_s * 1e3:.3f} | main "
          f"{(t.main_inner_s + t.main_face_s) * 1e3:.3f}]")
gain = (t_off.total_s / t_on.total_s - 1) * 100
print(f"  overlap hides {gain:.1f}% at this tiny volume\n")

if t_on.timeline is not None:
    lanes = t_on.timeline.lane_busy()
    print("overlap-ON stream timeline (one Dslash window):")
    for lane in ("compute", "comm"):
        print(f"  {lane:>7}: {lanes.get(lane, 0.0) * 1e6:8.1f} us busy")
    print(f"  makespan {t_on.timeline.end_s * 1e6:.1f} us "
          f"vs serial sum {t_on.serial_s * 1e6:.1f} us "
          f"(overlap {t_on.timeline.overlap_fraction * 100:.1f}%)\n")

# --- modeled part: the Fig. 6 volume sweep ------------------------------
print("Fig. 6 sweep (modeled, 2x K20m ECC-on, GFLOPS):")
curves = figure_6(ls=[8, 16, 24, 32, 40])
print(f"{'L':>4} {'SP ovl':>8} {'SP off':>8} {'DP ovl':>8} {'DP off':>8}")
for i, (l, _) in enumerate(curves["sp_overlap"]):
    print(f"{l:>4} {curves['sp_overlap'][i][1]:8.0f} "
          f"{curves['sp_nooverlap'][i][1]:8.0f} "
          f"{curves['dp_overlap'][i][1]:8.0f} "
          f"{curves['dp_nooverlap'][i][1]:8.0f}")
sp = dict(curves["sp_overlap"])
spn = dict(curves["sp_nooverlap"])
print(f"\nSP overlap gain at L=40: {(sp[40] / spn[40] - 1) * 100:.1f}% "
      f"(paper: 11%)")

"""Propagator-style workflow: solve the Wilson-clover system.

The post-Monte-Carlo analysis phase of LQCD (paper Sec. I) is
dominated by solves of M psi = chi.  This example runs the solve
three ways and cross-checks them:

1. framework CG on the normal equations (full lattice),
2. framework CG on the even-odd preconditioned system (the production
   choice: half the data, much better conditioning),
3. the QUDA comparator's mixed-precision CG through the zero-copy
   device interface.

Run:  python examples/wilson_solve.py
"""

import time

import numpy as np

from repro.core import qdp_init
from repro.core.reduction import norm2
from repro.qcd.gauge import plaquette, weak_gauge
from repro.qcd.solver import cg
from repro.qcd.wilson import EvenOddWilsonOperator, WilsonOperator, WilsonParams
from repro.qdp import Lattice
from repro.qdp.fields import latt_fermion
from repro.quda import QudaInvertParam, QudaSolver

ctx = qdp_init()
lattice = Lattice((6, 6, 6, 8))
rng = np.random.default_rng(11)
u = weak_gauge(lattice, rng, eps=0.3)
print(f"configuration ready, plaquette = {plaquette(u):.5f}")

params = WilsonParams(kappa=0.124)
chi = latt_fermion(lattice)
chi.gaussian(rng)


def residual(m, psi):
    tmp = m.new_fermion()
    m.apply(tmp, psi)
    tmp.assign(chi - tmp)
    return (norm2(tmp) / norm2(chi)) ** 0.5


# --- 1. full-lattice CG on M+ M -------------------------------------------
m = WilsonOperator(u, params)
rhs = m.new_fermion()
m.apply_dagger(rhs, chi)             # normal equations: M+M x = M+ chi
x_full = m.new_fermion()
t0 = time.perf_counter()
res = cg(lambda d, s: m.apply_mdagm(d, s), x_full, rhs, tol=1e-10,
         max_iter=2000)
print(f"\nfull-lattice CG:    {res.iterations:4d} iterations, "
      f"true |r|/|b| = {residual(m, x_full):.2e}, "
      f"wall {time.perf_counter() - t0:.1f} s")

# --- 2. even-odd preconditioned CG ------------------------------------------
m_eo = EvenOddWilsonOperator(u, params)
b = m_eo.prepare_source(chi)
rhs_e = m_eo.new_fermion()
m_eo.apply_dagger(rhs_e, b)
x_e = m_eo.new_fermion()
t0 = time.perf_counter()
res_eo = cg(lambda d, s: m_eo.apply_mdagm(d, s), x_e, rhs_e, tol=1e-10,
            max_iter=2000, subset=lattice.even)
psi_eo = m_eo.reconstruct(x_e, chi)
print(f"even-odd CG:        {res_eo.iterations:4d} iterations, "
      f"true |r|/|b| = {residual(m, psi_eo):.2e}, "
      f"wall {time.perf_counter() - t0:.1f} s")

# --- 3. QUDA mixed-precision CG via the device interface -------------------
solver = QudaSolver(u, params,
                    QudaInvertParam(tol=1e-10, solver="cg",
                                    device_interface=True))
x_quda = latt_fermion(lattice)
t0 = time.perf_counter()
res_q = solver.solve(x_quda, rhs)
print(f"QUDA mixed CG:      {res_q.iterations:4d} iterations "
      f"({res_q.reliable_updates} reliable updates), "
      f"true |r|/|b| = {residual(m, x_quda):.2e}, "
      f"wall {time.perf_counter() - t0:.1f} s")

# all three must agree
d1 = norm2(x_full - psi_eo) ** 0.5 / norm2(x_full) ** 0.5
d2 = norm2(x_full - x_quda) ** 0.5 / norm2(x_full) ** 0.5
print(f"\nsolution agreement: |x_full - x_eo| = {d1:.2e}, "
      f"|x_full - x_quda| = {d2:.2e}")
assert d1 < 1e-7 and d2 < 1e-7
print("all three solvers agree.")

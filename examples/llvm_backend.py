"""The LLVM backend: paper Sec. XI's future work, implemented.

Generates a kernel through the normal expression pipeline, shows the
PTX the framework emits, transpiles it to LLVM IR, and runs the same
computation through the CPU work-item target — verifying bit-exact
agreement with the (simulated) GPU path.

Run:  python examples/llvm_backend.py
"""

import math

import numpy as np

from repro.core import qdp_init
from repro.core.expr import adj
from repro.llvm import LLVMBackend, transpile
from repro.qdp import Lattice
from repro.qdp.fields import latt_color_matrix, latt_fermion

ctx = qdp_init()
lattice = Lattice((4, 4, 4, 8))
rng = np.random.default_rng(1)
u = latt_color_matrix(lattice)
psi = latt_fermion(lattice)
u.gaussian(rng)
psi.gaussian(rng)
out = latt_fermion(lattice)

# 1. evaluate through the PTX / simulated-GPU path
out.assign(adj(u) * psi)
gpu_result = out.to_numpy().copy()
module = list(ctx.module_cache.values())[-1][0]
print("generated PTX (head):")
print("\n".join(module.render().splitlines()[:8]), "\n...")

# 2. transpile the same PTX to LLVM IR
ir = transpile(module.render())
print(f"\nLLVM IR: {len(ir.text.splitlines())} lines, "
      f"{len(ir.instructions)} instructions")
print("\n".join(ir.text.splitlines()[:10]), "\n...")

# 3. execute on the CPU target against the same device memory
addrs = ctx.field_cache.make_available([out, u, psi])
views = {n: ctx.device.pool.view(n) for n in
         ("float32", "float64", "int32", "int64", "uint32", "uint64")}
params = {"p_lo": lattice.nsites, "p_n": lattice.nsites,
          "p_dst": addrs[out.uid], "p_f0": addrs[u.uid],
          "p_f1": addrs[psi.uid]}
start = addrs[out.uid] >> 3
views["float64"][start:start + out.host.size] = 0   # wipe the result

kernel = LLVMBackend().get_or_compile(module.render())
kernel(views, params, math.ceil(lattice.nsites / 128), 128)

cpu_words = ctx.device.memcpy_dtoh(addrs[out.uid], out.nbytes,
                                   np.float64)[:out.host.size]
gpu_check = latt_fermion(lattice)
gpu_check.from_numpy(gpu_result)
identical = np.array_equal(cpu_words, gpu_check.host)
print(f"\nCPU (LLVM) vs GPU (PTX) results bit-identical: {identical}")
assert identical
print("one data-parallel layer, two targets — the porting story of "
      "the paper, and its Sec. XI sequel.")

"""Gauge generation: the paper's headline application (Sec. VIII-D).

Runs a miniature version of the production workload: 2+1 flavors with
Hasenbusch mass preconditioning for the light pair and a rational
(RHMC) term for the strange quark, on a three-level multi-timescale
integrator — everything evaluated through the JIT pipeline.

Run:  python examples/hmc_gauge_generation.py
(takes a couple of minutes: a real RHMC, just on a tiny lattice)
"""

import time

import numpy as np

from repro.core import qdp_init
from repro.hmc import (
    HMC,
    GaugeMonomial,
    HasenbuschRatioMonomial,
    Level,
    MultiTimescaleIntegrator,
    OneFlavorRationalMonomial,
    TwoFlavorWilsonMonomial,
    fourth_root,
    inv_sqrt,
)
from repro.qcd.gauge import plaquette, weak_gauge
from repro.qcd.wilson import WilsonParams
from repro.qdp import Lattice

ctx = qdp_init()
lattice = Lattice((2, 4, 4, 4))
rng = np.random.default_rng(2024)
u = weak_gauge(lattice, rng, eps=0.2)
print(f"start: plaquette = {plaquette(u):.5f}")

# the 2+1 flavor composition (paper: anisotropic clover with mass
# preconditioning [13] and the rational approximation [14])
light = WilsonParams(kappa=0.115)
heavy = WilsonParams(kappa=0.10)       # Hasenbusch preconditioner mass
strange = WilsonParams(kappa=0.105)

# rational approximations for the strange determinant: x^{-1/2} for
# action/force, x^{+1/4} for the heatbath
pf_action = inv_sqrt(0.05, 6.0, degree=12)
pf_heatbath = fourth_root(0.05, 6.0, degree=12)
print(f"rational approximations: degree {pf_action.degree}, max rel "
      f"err {pf_action.max_rel_error:.1e} / {pf_heatbath.max_rel_error:.1e}")

levels = [
    # outer (coarse) timescale: the expensive, soft fermion forces
    Level([HasenbuschRatioMonomial(light, heavy, tol=1e-9),
           OneFlavorRationalMonomial(strange, pf_action, pf_heatbath,
                                     tol=1e-9)], n_steps=2),
    # middle: the heavy preconditioner determinant
    Level([TwoFlavorWilsonMonomial(heavy, tol=1e-9)], n_steps=2),
    # inner (fine) timescale: the stiff, cheap gauge force
    Level([GaugeMonomial(beta=5.6)], n_steps=4, scheme="omelyan"),
]

hmc = HMC(u, MultiTimescaleIntegrator(levels), rng)
print("\n traj      dH     acc   plaquette   CG iters   kernels   "
      "device[s]   wall[s]")
t0 = time.perf_counter()
for i in range(3):
    r = hmc.trajectory(tau=0.2)
    print(f"  {i:3d}  {r.delta_h:+8.5f}  {str(r.accepted):>5}   "
          f"{r.plaquette:.6f}   {r.solver_iterations:8d}   "
          f"{r.kernels_launched:7d}   {r.modeled_device_seconds:9.4f}"
          f"   {time.perf_counter() - t0:7.1f}")

print(f"\nacceptance rate: {hmc.acceptance_rate:.0%}")
print(f"distinct JIT-compiled kernels: "
      f"{ctx.kernel_cache.stats.n_kernels} "
      f"(paper: ~200 for the full production action)")
print(f"modeled JIT overhead: "
      f"{ctx.kernel_cache.stats.total_modeled_compile_seconds:.1f} s "
      f"once per run (paper: 10-30 s, negligible)")

"""The clover term: user-defined operations beyond the type system
(paper Sec. VI-A, Table I lower part).

The clover term mixes the spin and color index spaces, which the
level-wise QDP operators cannot express.  The framework's custom-op
extension point plugs a component generator into the same kernel
machinery; this example builds the packed term, applies it through a
generated kernel, verifies it against dense algebra, and shows the
paper's arithmetic-intensity number falling out of the generated code.

Run:  python examples/clover_custom_op.py
"""

import numpy as np

from repro.core import qdp_init
from repro.core.reduction import innerProduct, norm2
from repro.qcd.clover import CloverTerm
from repro.qcd.gauge import weak_gauge
from repro.qdp import Lattice
from repro.qdp.fields import latt_fermion

ctx = qdp_init()
lattice = Lattice((6, 6, 6, 6))
rng = np.random.default_rng(3)
u = weak_gauge(lattice, rng, eps=0.3)

# Build A = 1 + c sum_{mu<nu} sigma_{mu nu} F_{mu nu}: two 6x6
# Hermitian blocks per site, packed as 2 x (6 diagonal reals + 15
# lower-triangular complexes) — Table I's Adiag/Atria types.
clov = CloverTerm(u, coeff=0.7)
print("packed clover storage per site:")
print(f"  diagonal:   {clov.diag.spec.describe()} "
      f"({clov.diag.spec.words_per_site} reals)")
print(f"  triangular: {clov.tri.spec.describe()} "
      f"({clov.tri.spec.words_per_site} reals)")

psi = latt_fermion(lattice)
psi.gaussian(rng)
chi = latt_fermion(lattice)

# the custom op composes with ordinary expressions:
cost = chi.assign(clov.apply_expr(psi))
print(f"\nA*psi evaluated through a generated kernel:")
print(f"  flops/site = {cost.flops // lattice.nsites}, "
      f"bytes/site = {cost.bytes_moved // lattice.nsites}, "
      f"flop/byte = {cost.flops / cost.bytes_moved:.3f} "
      f"(paper Table II: 0.525)")

# verify against the dense blocks
ref = clov.dense_apply_numpy(psi.to_numpy())
print(f"  max deviation from dense reference: "
      f"{np.abs(chi.to_numpy() - ref).max():.2e}")

# Hermiticity: <a|A b> == <A a|b>
a = latt_fermion(lattice)
a.gaussian(rng)
aa = latt_fermion(lattice)
clov.apply(aa, a)
herm = abs(innerProduct(aa, psi) - innerProduct(a, chi))
print(f"  Hermiticity violation: {herm:.2e}")

# the inverse blocks pack into the same layout (even-odd clover needs
# A_ee^{-1} routinely)
inv = latt_fermion(lattice)
clov.apply_inverse(inv, chi)
print(f"  A^-1 A psi round trip error: "
      f"{(norm2(inv - psi) / norm2(psi)) ** 0.5:.2e}")

"""Analysis phase: a pion two-point function.

The capacity-computing workflow of paper Sec. I: take a gauge
configuration, compute a 12-column point propagator (even-odd
preconditioned CG through the JIT pipeline), contract into the pion
correlator and extract an effective mass.

Run:  python examples/pion_correlator.py
"""

import time

import numpy as np

from repro.core import qdp_init
from repro.qcd.analysis import (
    compute_propagator,
    effective_mass,
    pion_correlator,
    point_source,
)
from repro.qcd.gauge import plaquette, weak_gauge
from repro.qcd.wilson import WilsonParams
from repro.qdp import Lattice

ctx = qdp_init()
lattice = Lattice((4, 4, 4, 12))
rng = np.random.default_rng(100)
u = weak_gauge(lattice, rng, eps=0.15)
print(f"configuration: {lattice.dims}, plaquette = {plaquette(u):.5f}")

params = WilsonParams(kappa=0.115)
print(f"computing the 12-column point propagator (kappa = "
      f"{params.kappa}, m = {params.mass:.4f}) ...")
t0 = time.perf_counter()
prop = compute_propagator(
    u, params,
    lambda s, c: point_source(lattice, (0, 0, 0, 0), s, c),
    tol=1e-9)
print(f"done in {time.perf_counter() - t0:.1f} s "
      f"({ctx.device.stats.kernel_launches} kernel launches, "
      f"{ctx.kernel_cache.stats.n_kernels} distinct JIT kernels)")

corr = pion_correlator(prop, lattice)
meff = effective_mass(corr)
print(f"\n{'t':>3} {'C(t)':>14} {'m_eff(t)':>10}")
for t, c in enumerate(corr):
    m = f"{meff[t]:10.4f}" if t < len(meff) else " " * 10
    print(f"{t:>3} {c:14.6e} {m}")

mid = len(corr) // 2
print(f"\ncosh-symmetric correlator: C(1)/C({len(corr) - 1}) = "
      f"{corr[1] / corr[-1]:.3f} (expect ~1)")
print("the whole analysis ran through the expression-template ->"
      " PTX -> driver-JIT pipeline.")

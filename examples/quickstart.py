"""Quickstart: the data-parallel interface in five minutes.

Builds a lattice, writes QDP-style expressions, and peeks behind the
curtain: the generated PTX, the driver JIT, the memory cache and the
auto-tuner — the whole pipeline of the paper on one page.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import qdp_init
from repro.core.expr import adj, shift
from repro.core.reduction import innerProduct, norm2
from repro.qdp import FORWARD, BACKWARD, Lattice
from repro.qdp.fields import gauge_field, latt_fermion

# 1. Initialize the framework: one (simulated) K20x GPU.
ctx = qdp_init()

# 2. A 8^3 x 16 lattice and some fields — QDP++'s
#    multi1d<LatticeColorMatrix> u(Nd) and LatticeFermions.
lattice = Lattice((8, 8, 8, 16))
rng = np.random.default_rng(7)
u = gauge_field(lattice)
for umu in u:
    from repro.qcd import su3

    umu.from_numpy(su3.random_su3(rng, lattice.nsites))
psi = latt_fermion(lattice)
phi = latt_fermion(lattice)
phi.gaussian(rng)

# 3. The operator infix form.  This is paper Fig. 1 — the gauge
#    covariant nearest-neighbor derivative.  No site loops: the
#    expression template builds an AST, the unparser turns it into a
#    PTX kernel, the driver JIT compiles it, the memory cache pages
#    the fields in, the auto-tuner picks the block size.  All of that
#    happens behind this one line:
mu = 0
psi.assign(u[mu] * shift(phi, FORWARD, mu)
           + shift(adj(u[mu]) * phi, BACKWARD, mu))
print(f"derivative evaluated; |psi|^2 = {norm2(psi):.6f}")

# 4. Reductions run on the device too (two-stage, f64 accumulation).
print(f"<phi|psi> = {innerProduct(phi, psi):.6f}")

# 5. Peek at a generated kernel: its PTX text and its cost metadata.
key, (module, plan, compiled) = next(iter(ctx.module_cache.items()))
print("\n--- one generated kernel ---")
print(f"name:           {module.name}")
print(f"flops/site:     {module.info.flops_per_site}")
print(f"bytes/site:     {module.info.bytes_per_site}")
print(f"flop/byte:      {module.info.flop_per_byte:.3f}")
print(f"registers:      {compiled.regs_per_thread} per thread")
print(f"modeled JIT:    {compiled.modeled_compile_seconds:.3f} s "
      f"(paper band: 0.05-0.22 s)")
print("\nfirst lines of the PTX handed to the driver JIT:")
print("\n".join(module.render().splitlines()[:18]))

# 6. Framework accounting: everything is instrumented.
stats = ctx.device.stats
print("\n--- session accounting ---")
print(f"expressions evaluated:  {ctx.stats.expressions_evaluated}")
print(f"distinct kernels:       {ctx.kernel_cache.stats.n_kernels}")
print(f"kernel launches:        {stats.kernel_launches}")
print(f"modeled device time:    {stats.modeled_kernel_time_s * 1e3:.2f} ms")
print(f"host->device traffic:   {stats.bytes_h2d / 1e6:.1f} MB "
      f"(managed automatically by the software cache)")
tuned = {n: s.best_block for n, s in ctx.autotuner.states.items()}
print(f"auto-tuned block sizes: {tuned}")

"""IR pass pipeline: per-kernel register footprint, off vs opt.

Builds the full generated-kernel suite (eager statements, fused
dslash/clover groups, reduction partials, halo face copies) twice —
with the IR layer off and with ``REPRO_IR=opt`` — and compares each
kernel's instruction count and liveness-based register footprint (the
32-bit slot count the SM occupancy model charges).  The generated
kernels are lattice-size independent, so a tiny lattice suffices.

Emits ``BENCH_ir.json`` next to the CI lint report with the
per-kernel and total numbers plus the per-pass statistics.
"""

import json
import os
from contextlib import contextmanager

from repro.ptx.liveness import max_live_registers

from _util import header, report, table

DIMS = (2, 2, 2, 4)


@contextmanager
def _ir_env(mode):
    old = os.environ.get("REPRO_IR")
    os.environ["REPRO_IR"] = mode
    try:
        yield
    finally:
        if old is None:
            del os.environ["REPRO_IR"]
        else:
            os.environ["REPRO_IR"] = old


def _suite(mode):
    """{kernel name: (instructions, live slots)} plus the ctx stats."""
    from repro.lint import _build_kernel_suite, _suite_modules

    with _ir_env(mode):
        ctx, lat, _ = _build_kernel_suite(DIMS)
        modules = _suite_modules(ctx, lat)
    kernels = {}
    for module, _, _ in modules:
        kernels[module.name] = (len(module.instructions),
                                max_live_registers(module.instructions))
    return kernels, ctx.stats.ir


def test_ir_register_footprint(tmp_path):
    off, _ = _suite("off")
    opt, ir = _suite("opt")
    assert set(off) == set(opt)    # same kernel population

    rows = []
    records = []
    for name in sorted(off):
        i0, r0 = off[name]
        i1, r1 = opt[name]
        rows.append((name, i0, i1, r0, r1, r0 - r1))
        records.append({"name": name,
                        "instructions_off": i0, "instructions_opt": i1,
                        "live_regs_off": r0, "live_regs_opt": r1})

    total_off = sum(r0 for _, r0 in off.values())
    total_opt = sum(r1 for _, r1 in opt.values())

    header(f"IR pass pipeline: register footprint off vs opt "
           f"({'x'.join(map(str, DIMS))}, f64)")
    table(rows, ("kernel", "instrs off", "instrs opt",
                 "regs off", "regs opt", "saved"))
    report(f"total live 32-bit slots: {total_off} -> {total_opt} "
           f"({total_off - total_opt} saved); "
           f"pressure reverts: {ir.pressure_reverts}")
    for name, counters in ir.passes.items():
        facts = ", ".join(f"{k}={v}" for k, v in counters.items())
        report(f"  {name}: {facts}")

    out = {
        "benchmark": "ir_register_footprint",
        "lattice": list(DIMS),
        "precision": "f64",
        "kernels": records,
        "total_live_regs_off": total_off,
        "total_live_regs_opt": total_opt,
        "pressure_reverts": ir.pressure_reverts,
        "passes": ir.as_json()["passes"],
    }
    path = os.path.join(os.getcwd(), "BENCH_ir.json")
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
    report(f"wrote {path}")

    # the tentpole's acceptance bar: opt reduces the total footprint
    # and the pressure gate keeps every single kernel no worse
    assert total_opt < total_off
    assert all(opt[name][1] <= off[name][1] for name in off)
    assert ir.pressure_reverts == 0

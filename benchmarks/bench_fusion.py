"""Kernel fusion: launches and traffic per CG iteration, fused vs eager.

The deferred-evaluation queue fuses the vector updates of a Krylov
iteration into multi-output kernels and absorbs the reductions'
partials passes into them.  For an elementwise (site-diagonal)
Hermitian positive-definite operator ``A = diag(w)`` the steady-state
CG iteration collapses from six generated-kernel launches to two:

* ``{p-update, ap = w*p, <p|ap> partials}``
* ``{x-update, r-update, |r|^2 partials}``

with the intermediate ``ap``/``p`` values forwarded through registers
instead of a store/re-load round trip.  The fixed-function partial
folds (``reduce_f64``) are unchanged — they are counted separately.

Emits ``BENCH_fusion.json`` next to the CI lint report with the
per-iteration launch and modeled-byte numbers plus the bitwise
fused-vs-eager solution check.
"""

import json
import os

import numpy as np

from repro.core.context import Context
from repro.qcd.solver import cg
from repro.qdp.fields import LatticeField, latt_fermion, latt_real
from repro.qdp.lattice import Lattice

from _util import header, report, table

DIMS = (4, 4, 4, 4)
WARMUP_ITERS = 4       # covers setup + JIT of every kernel shape
MEASURE_ITERS = 8


def _solve(fusion: bool, iters: int):
    """Run ``iters`` CG iterations on A = diag(w); return (ctx, x)."""
    ctx = Context(fusion=fusion, autotune=False)
    lat = Lattice(DIMS)
    rng = np.random.default_rng(17)
    w = latt_real(lat, context=ctx)
    w.from_numpy(rng.uniform(0.5, 1.5, lat.nsites))
    b = latt_fermion(lat, context=ctx)
    b.gaussian(rng)
    x = latt_fermion(lat, context=ctx)

    def apply_op(dest: LatticeField, src: LatticeField) -> None:
        dest.assign(w.ref() * src.ref())

    cg(apply_op, x, b, tol=0.0, max_iter=iters)
    ctx.flush()
    return ctx, x


def _per_iteration(fusion: bool) -> dict:
    """Steady-state per-iteration stats from a two-length difference."""
    ctx_a, _ = _solve(fusion, WARMUP_ITERS)
    ctx_b, _ = _solve(fusion, WARMUP_ITERS + MEASURE_ITERS)

    def delta(attr):
        return (getattr(ctx_b.device.stats, attr)
                - getattr(ctx_a.device.stats, attr)) / MEASURE_ITERS

    launches = delta("kernel_launches")
    folds = delta("fold_launches")
    return {
        "generated_kernel_launches": launches - folds,
        "reduce_folds": folds,
        "modeled_kernel_bytes": delta("modeled_kernel_bytes"),
        "modeled_kernel_time_s": delta("modeled_kernel_time_s"),
    }


def test_fused_cg_iteration(tmp_path):
    fused = _per_iteration(True)
    eager = _per_iteration(False)

    # solutions must be bitwise identical, not merely close
    _, x_on = _solve(True, WARMUP_ITERS)
    _, x_off = _solve(False, WARMUP_ITERS)
    bitwise = bool(np.array_equal(x_on.to_numpy(), x_off.to_numpy()))

    byte_reduction = 1.0 - (fused["modeled_kernel_bytes"]
                            / eager["modeled_kernel_bytes"])

    header("Kernel fusion: CG iteration on A = diag(w) "
           f"({'x'.join(map(str, DIMS))}, f64)")
    rows = []
    for name, s in (("eager (REPRO_FUSION=off)", eager),
                    ("fused (REPRO_FUSION=on)", fused)):
        rows.append((name,
                     f"{s['generated_kernel_launches']:.0f}",
                     f"{s['reduce_folds']:.0f}",
                     f"{s['modeled_kernel_bytes'] / 1e3:.1f} kB",
                     f"{s['modeled_kernel_time_s'] * 1e6:.1f} us"))
    table(rows, ("path", "kernels/iter", "folds/iter",
                 "bytes/iter", "modeled time/iter"))
    report(f"modeled traffic reduction: {byte_reduction:.1%}; "
           f"solutions bitwise identical: {bitwise}")

    out = {
        "benchmark": "fusion_cg_iteration",
        "lattice": list(DIMS),
        "precision": "f64",
        "measure_iters": MEASURE_ITERS,
        "fused": fused,
        "eager": eager,
        "byte_reduction": byte_reduction,
        "bitwise_identical": bitwise,
    }
    path = os.path.join(os.getcwd(), "BENCH_fusion.json")
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
    report(f"wrote {path}")

    # the tentpole's acceptance bar
    assert bitwise
    assert (fused["generated_kernel_launches"]
            <= eager["generated_kernel_launches"] / 2)
    assert byte_reduction >= 0.25
    assert fused["reduce_folds"] == eager["reduce_folds"]

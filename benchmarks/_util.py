"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and
prints the series it reports.  Under pytest the default fd-level
capture would swallow ordinary prints, so :func:`report` routes lines
through pytest's terminal reporter (exempt from capture — it is what
draws the progress dots); standalone use falls back to stdout.
"""

from __future__ import annotations

import sys

_CONFIG = None


def set_terminal_writer(config) -> None:
    """Remember the pytest config; the terminal reporter is resolved
    lazily (it registers after early conftest hooks run)."""
    global _CONFIG
    _CONFIG = config


def report(*lines: str) -> None:
    """Print report rows past pytest's output capture.

    Uses the capture manager's documented suspension context
    (``global_and_fixture_disabled``) so the rows reach the real
    stdout even under the default fd-level capture.
    """
    capman = (_CONFIG.pluginmanager.get_plugin("capturemanager")
              if _CONFIG is not None else None)
    if capman is not None:
        with capman.global_and_fixture_disabled():
            for line in lines:
                sys.stdout.write(line + "\n")
            sys.stdout.flush()
        return
    for line in lines:
        sys.stdout.write(line + "\n")
    sys.stdout.flush()


def header(title: str) -> None:
    report("", "=" * 72, title, "=" * 72)


def table(rows, headers) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    report(fmt.format(*headers))
    report(fmt.format(*("-" * w for w in widths)))
    for r in rows:
        report(fmt.format(*r))

"""Sec. VIII-C QUDA comparison: the hand-tuned headroom.

Paper (same hardware, same work, overlapping comms):
  SP, V=40^4: QUDA 346 GFLOPS vs QDP-JIT 197 => 1.76x
  DP, V=32^4: QUDA 171 GFLOPS vs QDP-JIT  90 => 1.9x

Also benchmarks the *functional* optimized Dslash (the QUDA
algorithm) against the expression-generated one for cross-validation.
"""

import numpy as np
import pytest

from repro.device import K20M_ECC_ON
from repro.perfmodel.dslashperf import figure_6
from repro.qcd.dslash import WilsonDslash
from repro.qcd.gauge import weak_gauge
from repro.qdp.fields import latt_fermion
from repro.qdp.lattice import Lattice
from repro.quda import OptimizedDslash, quda_dslash_gflops

from _util import header, report, table


def test_quda_headroom(benchmark):
    curves = benchmark(figure_6, [32, 40])
    sp_jit = dict(curves["sp_overlap"])[40]
    dp_jit = dict(curves["dp_overlap"])[32]
    sp_quda = quda_dslash_gflops(K20M_ECC_ON, 40 ** 4, "f32")
    dp_quda = quda_dslash_gflops(K20M_ECC_ON, 32 ** 4, "f64")
    header("Sec. VIII-C: QUDA vs QDP-JIT Dslash (headroom for hand "
           "tuning)")
    rows = [
        ("SP, 40^4", f"{sp_quda:.0f}", f"{sp_jit:.0f}",
         f"{sp_quda / sp_jit:.2f}", "346 / 197 = 1.76"),
        ("DP, 32^4", f"{dp_quda:.0f}", f"{dp_jit:.0f}",
         f"{dp_quda / dp_jit:.2f}", "171 / 90 = 1.90"),
    ]
    table(rows, ("case", "QUDA GF", "QDP-JIT GF", "factor", "paper"))
    assert sp_quda / sp_jit == pytest.approx(1.76, rel=0.08)
    assert dp_quda / dp_jit == pytest.approx(1.90, rel=0.08)


def test_optimized_dslash_execution(benchmark):
    """Wall-clock of the hand-written spin-projected Dslash, checked
    against the generated kernels."""
    from repro.core.context import Context

    ctx = Context()
    lat = Lattice((8, 8, 8, 8))
    rng = np.random.default_rng(2)
    u = weak_gauge(lat, rng, context=ctx)
    psi = latt_fermion(lat, context=ctx)
    psi.gaussian(rng)
    opt = OptimizedDslash(u)
    arr = psi.to_numpy()
    out = benchmark(opt.apply, arr)
    dest = latt_fermion(lat, context=ctx)
    WilsonDslash(u)(dest, psi)
    assert np.allclose(out, dest.to_numpy(), rtol=1e-12, atol=1e-13)

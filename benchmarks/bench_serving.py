"""Serving benchmark: fair-share vs FIFO on one shared device.

A head-of-line-blocking scenario: two long batch CG solves are
submitted *first*, followed by a burst of short interactive solves
from three higher-weight tenants.  Under FIFO the interactive burst
waits behind the batch work, so interactive tail latency is the batch
makespan; weighted deficit round-robin interleaves the burst through,
collapsing interactive p99 while total throughput is unchanged (the
device does the same modeled work either way).

Also measured: cross-tenant JIT-cache hits (the interactive tenants
run the same workload *shape*, so only the first to reach each kernel
pays the driver-JIT translation) and bitwise equality of every
session's result across policies (the scheduler decides only *when*
chunks run).

Emits ``BENCH_serving.json`` — the CI artifact.
"""

import json
import os

import numpy as np

from repro.serve import Server, cg_diag_workload

from _util import header, report, table

DIMS = (4, 4, 4, 4)
#: run exactly max_iter iterations: makes service demand deterministic
TOL = 1e-300

INTERACTIVE_TENANTS = 3
INTERACTIVE_WEIGHT = 4.0
SESSIONS_PER_TENANT = 5
INTERACTIVE_ITERS = (4, 6, 8, 10, 6)
BATCH_SESSIONS = 2
BATCH_ITERS = 72


def _run(policy):
    srv = Server(policy=policy)
    # steady state: a warmup tenant compiles every kernel shape once,
    # so the measured window sees the warm shared JIT cache (driver
    # translation is 0.05-0.22 s per kernel — it would otherwise
    # dominate the milliseconds of actual solver work and mask the
    # scheduling effect entirely)
    warm = srv.tenant("warmup", weight=1.0)
    # 3 iterations, not 1: the steady-state fusion groups (tail of one
    # iteration fused with the head of the next) only form once the
    # loop actually loops
    srv.submit(warm, cg_diag_workload(dims=DIMS, seed=999, tol=TOL,
                                      max_iter=3), name="warmup")
    srv.drain()
    t0 = srv.vclock_s

    batch = srv.tenant("batch", weight=1.0)
    interactive = [srv.tenant(f"user{i}", weight=INTERACTIVE_WEIGHT)
                   for i in range(INTERACTIVE_TENANTS)]
    sessions = {"batch": [], "interactive": []}
    # batch first: the head-of-line work FIFO cannot get around
    for j in range(BATCH_SESSIONS):
        sessions["batch"].append(srv.submit(
            batch, cg_diag_workload(dims=DIMS, seed=100 + j, tol=TOL,
                                    max_iter=BATCH_ITERS),
            name=f"batch{j}", arrival_s=t0))
    for i, tenant in enumerate(interactive):
        for j, iters in enumerate(INTERACTIVE_ITERS[:SESSIONS_PER_TENANT]):
            sessions["interactive"].append(srv.submit(
                tenant, cg_diag_workload(dims=DIMS, seed=10 * i + j,
                                         tol=TOL, max_iter=iters),
                name=f"user{i}-s{j}", arrival_s=t0))
    srv.drain()
    return srv, sessions, srv.vclock_s - t0


def _percentiles(latencies):
    arr = np.asarray(sorted(latencies))
    return {"p50": float(np.percentile(arr, 50)),
            "p99": float(np.percentile(arr, 99)),
            "mean": float(arr.mean()), "max": float(arr.max())}


def test_bench_serving():
    runs = {}
    for policy in ("fifo", "fair"):
        srv, sessions, makespan = _run(policy)
        assert all(s.state == "done"
                   for group in sessions.values() for s in group)
        completed = sum(len(g) for g in sessions.values())
        runs[policy] = {
            "srv": srv,
            "sessions": sessions,
            "makespan_s": makespan,
            "throughput_per_s": completed / makespan,
            "interactive": _percentiles(
                [s.latency_s for s in sessions["interactive"]]),
            "batch": _percentiles(
                [s.latency_s for s in sessions["batch"]]),
            "decisions": srv.stats.decisions,
            "cross_tenant_jit_hits": srv.kernel_cache.cross_tenant_hits,
        }

    fifo, fair = runs["fifo"], runs["fair"]

    # the scheduler never changes what a session computes
    bitwise = all(
        np.array_equal(a.result["x"], b.result["x"])
        and a.result["residual"] == b.result["residual"]
        for group in ("batch", "interactive")
        for a, b in zip(fifo["sessions"][group], fair["sessions"][group]))

    p99_speedup = fifo["interactive"]["p99"] / fair["interactive"]["p99"]

    n_sessions = (BATCH_SESSIONS
                  + INTERACTIVE_TENANTS * SESSIONS_PER_TENANT)
    header(f"Serving: {INTERACTIVE_TENANTS} interactive tenants "
           f"(weight {INTERACTIVE_WEIGHT:g}) + 1 batch tenant, "
           f"{n_sessions} sessions, CG on {'x'.join(map(str, DIMS))}")
    rows = []
    for policy in ("fifo", "fair"):
        r = runs[policy]
        rows.append((policy, f"{r['makespan_s'] * 1e3:.2f} ms",
                     f"{r['throughput_per_s']:.1f}/s",
                     f"{r['interactive']['p50'] * 1e3:.2f} ms",
                     f"{r['interactive']['p99'] * 1e3:.2f} ms",
                     f"{r['batch']['p99'] * 1e3:.2f} ms",
                     f"{r['decisions']}",
                     f"{r['cross_tenant_jit_hits']}"))
    table(rows, ("policy", "makespan", "throughput", "int p50",
                 "int p99", "batch p99", "decisions", "xjit"))
    report(f"interactive p99 speedup fair vs fifo: {p99_speedup:.1f}x; "
           f"results bitwise identical across policies: {bitwise}")

    out = {
        "benchmark": "serving",
        "lattice": list(DIMS),
        "mix": {"interactive_tenants": INTERACTIVE_TENANTS,
                "interactive_weight": INTERACTIVE_WEIGHT,
                "sessions_per_tenant": SESSIONS_PER_TENANT,
                "interactive_iters": list(INTERACTIVE_ITERS),
                "batch_sessions": BATCH_SESSIONS,
                "batch_iters": BATCH_ITERS},
        "policies": {
            policy: {k: v for k, v in r.items()
                     if k not in ("srv", "sessions")}
            for policy, r in runs.items()},
        "interactive_p99_speedup": p99_speedup,
        "bitwise_identical": bitwise,
        "serving": runs["fair"]["srv"].as_json(),
    }
    path = os.path.join(os.getcwd(), "BENCH_serving.json")
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
    report(f"wrote {path}")

    assert bitwise
    # the tentpole wins: fair-share beats FIFO on interactive tail
    # latency, and tenants shared each other's JIT work
    assert fair["interactive"]["p99"] < fifo["interactive"]["p99"]
    assert fair["cross_tenant_jit_hits"] >= 1
    assert fifo["cross_tenant_jit_hits"] >= 1
    # total work is scheduler-invariant
    assert abs(fair["makespan_s"] - fifo["makespan_s"]) \
        <= 1e-9 * fifo["makespan_s"]

"""Compiled CPU backend: wall-clock speedup over the interpreter.

The ``cpu`` backend transpiles each PTX kernel (post-``REPRO_IR``
pipeline) to structured IR and code-generates vectorized NumPy,
replacing the original per-instruction :class:`repro.llvm.CPUKernel`
interpreter.  This benchmark measures what that compilation buys on
two real workloads — a fused-CG solve on MdagM (the paper's inner
loop) and a bare Wilson dslash sweep — by registering the interpreter
as a third backend (``cpu-interp``) and timing all three dispatch
modes over identical launches.

Two claims are checked:

* the compiled backend's results are **bitwise identical** to ``sim``
  (and to the interpreter) on both workloads, and
* compiled beats interpreted by >= 5x measured kernel wall-clock on
  the fused-CG workload.

Emits ``BENCH_cpu.json`` for the CI artifact.
"""

import json
import os
import time
from contextlib import contextmanager

import numpy as np

from _util import header, report, table

DIMS = (4, 4, 4, 4)
CG_ITERS = 25
SPEEDUP_BAR = 5.0


@contextmanager
def _backend_env(mode):
    old = os.environ.get("REPRO_BACKEND")
    os.environ["REPRO_BACKEND"] = mode
    try:
        yield
    finally:
        if old is None:
            del os.environ["REPRO_BACKEND"]
        else:
            os.environ["REPRO_BACKEND"] = old


def _register_interpreter():
    """Expose the per-instruction interpreter as backend 'cpu-interp'."""
    from repro.driver.backends import (Backend, backend_names,
                                       register_backend)
    from repro.llvm import CPUKernel, transpile

    if "cpu-interp" in backend_names():
        return

    class InterpBackend(Backend):
        name = "cpu-interp"

        def build(self, kernel):
            interp = CPUKernel(transpile(kernel.ptx_text))
            return lambda views, params, grid, block: \
                interp(views, params, grid, block)

    register_backend(InterpBackend())


def _cg_workload(ctx):
    """One warmed, fixed-iteration CG solve; returns (x, kernel_wall_s)."""
    from repro.qcd.dslash import WilsonDslash
    from repro.qcd.gauge import weak_gauge
    from repro.qcd.solver import cg
    from repro.qdp.fields import latt_fermion
    from repro.qdp.lattice import Lattice

    lat = Lattice(DIMS)
    rng = np.random.default_rng(12345)
    u = weak_gauge(lat, rng, eps=0.3, context=ctx)
    d = WilsonDslash(u)
    tmp = latt_fermion(lat, context=ctx)

    def mdagm(dest, src):
        d(tmp, src, sign=+1)
        d(dest, tmp, sign=-1)
        dest += 0.1 * src

    b = latt_fermion(lat, context=ctx)
    b.gaussian(rng)
    x = latt_fermion(lat, context=ctx)

    # warm every cache (driver JIT, backend compile, shift tables)
    cg(mdagm, x, b, tol=0.0, max_iter=2)
    x.from_numpy(np.zeros_like(x.to_numpy()))

    w0 = ctx.device.stats.wall_kernel_time_s
    t0 = time.perf_counter()
    cg(mdagm, x, b, tol=0.0, max_iter=CG_ITERS)
    total = time.perf_counter() - t0
    wall = ctx.device.stats.wall_kernel_time_s - w0
    return x.to_numpy().copy(), wall, total


def _dslash_workload(ctx, sweeps=25):
    """Repeated dslash applications; returns (dest, kernel_wall_s)."""
    from repro.qcd.dslash import WilsonDslash
    from repro.qcd.gauge import weak_gauge
    from repro.qdp.fields import latt_fermion
    from repro.qdp.lattice import Lattice

    lat = Lattice(DIMS)
    rng = np.random.default_rng(54321)
    u = weak_gauge(lat, rng, eps=0.3, context=ctx)
    d = WilsonDslash(u)
    psi = latt_fermion(lat, context=ctx)
    psi.gaussian(rng)
    dest = latt_fermion(lat, context=ctx)

    d(dest, psi)          # warm
    ctx.flush()           # the fusion queue defers launches
    w0 = ctx.device.stats.wall_kernel_time_s
    t0 = time.perf_counter()
    for sign in (+1, -1) * (sweeps // 2):
        d(dest, psi, sign=sign)
        ctx.flush()
    total = time.perf_counter() - t0
    wall = ctx.device.stats.wall_kernel_time_s - w0
    return dest.to_numpy().copy(), wall, total


def _run(mode, workload):
    from repro.core.context import Context, set_default_context
    from repro.core import context as context_mod

    _register_interpreter()
    with _backend_env(mode):
        ctx = Context(autotune=False)
        old = context_mod._default_context
        set_default_context(ctx)
        try:
            result, wall, total = workload(ctx)
        finally:
            set_default_context(old)
        stats = ctx.stats.backend
        assert stats.fallbacks == 0, stats.fallback_kernels
    return result, wall, total


def test_compiled_cpu_backend_speedup(tmp_path):
    modes = ("sim", "cpu-interp", "cpu")
    results = {}
    for workload, key in ((_cg_workload, "cg"),
                          (_dslash_workload, "dslash")):
        for mode in modes:
            results[key, mode] = _run(mode, workload)

    # bitwise identity across every backend, both workloads
    for key in ("cg", "dslash"):
        ref = results[key, "sim"][0]
        for mode in ("cpu-interp", "cpu"):
            assert np.array_equal(ref, results[key, mode][0]), \
                f"{mode} diverges from sim on {key}"

    rows = []
    records = {}
    for key, label in (("cg", f"fused CG ({CG_ITERS} iters, MdagM)"),
                       ("dslash", "Wilson dslash sweep")):
        walls = {m: results[key, m][1] for m in modes}
        speedup = walls["cpu-interp"] / walls["cpu"]
        rows.append((label,
                     f"{walls['sim'] * 1e3:.1f}",
                     f"{walls['cpu-interp'] * 1e3:.1f}",
                     f"{walls['cpu'] * 1e3:.1f}",
                     f"{speedup:.2f}x"))
        records[key] = {
            "wall_s": {m: walls[m] for m in modes},
            "total_s": {m: results[key, m][2] for m in modes},
            "speedup_compiled_vs_interpreted": speedup,
            "bitwise_identical_to_sim": True,
        }

    header(f"Compiled CPU backend vs interpreter "
           f"({'x'.join(map(str, DIMS))}, f64)")
    table(rows, ("workload", "sim ms", "interp ms", "cpu ms", "speedup"))
    cg_speedup = records["cg"]["speedup_compiled_vs_interpreted"]
    report(f"fused-CG compiled-vs-interpreted speedup: {cg_speedup:.2f}x "
           f"(bar: >= {SPEEDUP_BAR}x); all results bitwise identical")

    out = {
        "benchmark": "cpu_backend_speedup",
        "lattice": list(DIMS),
        "precision": "f64",
        "cg_iterations": CG_ITERS,
        "workloads": records,
        "speedup_bar": SPEEDUP_BAR,
    }
    path = os.path.join(os.getcwd(), "BENCH_cpu.json")
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
    report(f"wrote {path}")

    # the tentpole's acceptance bar
    assert cg_speedup >= SPEEDUP_BAR


if __name__ == "__main__":
    test_compiled_cpu_backend_speedup(None)

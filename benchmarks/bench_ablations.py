"""Ablations of the paper's design choices.

Each ablation removes one optimization the paper describes and
measures the modeled impact:

* auto-tuning OFF (fixed small blocks) vs ON — paper Sec. VII;
* CUDA-aware MPI vs staging through host memory — paper Sec. V;
* the QDP-JIT+QUDA zero-copy device interface vs the CPU+QUDA
  copy/re-layout path — paper Sec. VIII-D;
* QUDA gauge compression (18 vs 12 vs 8 reals) — paper Sec. VIII-C.
"""

import numpy as np
import pytest

from repro.comm.netmodel import IB_QDR_CUDA_AWARE, IB_QDR_STAGED
from repro.core.context import Context
from repro.device import K20M_ECC_ON
from repro.perfmodel.dslashperf import measure_dslash_kernels, model_dslash_timing
from repro.qdp.fields import latt_fermion
from repro.qdp.lattice import Lattice
from repro.quda import quda_dslash_gflops

from _util import header, report, table


def test_ablation_autotune(benchmark):
    """Fixed tiny blocks lose bandwidth; the tuner recovers it."""
    lat = Lattice((16, 16, 16, 16))
    rng = np.random.default_rng(0)

    def run(autotune, block):
        ctx = Context(autotune=autotune, default_block_size=block)
        a = latt_fermion(lat, context=ctx)
        a.gaussian(rng)
        b = latt_fermion(lat, context=ctx)
        for _ in range(8):
            b.assign(2.0 * a)
        return ctx.device.stats.modeled_kernel_time_s

    tuned = benchmark.pedantic(lambda: run(True, 128), rounds=1,
                               iterations=1)
    fixed32 = run(False, 32)
    header("Ablation: auto-tuning (paper Sec. VII)")
    report(f"8 launches, tuned:          {tuned * 1e6:8.1f} us",
           f"8 launches, fixed block 32: {fixed32 * 1e6:8.1f} us",
           f"penalty for skipping tuning: "
           f"{(fixed32 / tuned - 1) * 100:.0f}%")
    assert fixed32 > tuned


def test_ablation_cuda_aware_mpi(benchmark):
    """Staging halos through host memory costs PCIe round trips."""
    stats = measure_dslash_kernels("f32")
    l = 32

    def total(net):
        # non-overlapped: the comm cost is exposed, which is exactly
        # what makes the staging penalty visible
        return model_dslash_timing(l, "f32", False, stats,
                                   net=net).total_s

    aware = benchmark(lambda: total(IB_QDR_CUDA_AWARE))
    staged = total(IB_QDR_STAGED)
    header("Ablation: CUDA-aware MPI (paper Sec. V)")
    report(f"Dslash 32^4, CUDA-aware: {aware * 1e3:7.3f} ms",
           f"Dslash 32^4, staged:     {staged * 1e3:7.3f} ms",
           f"staging penalty: {(staged / aware - 1) * 100:.1f}%")
    assert staged > aware


def test_ablation_device_interface(benchmark):
    """The CPU+QUDA interface overhead vs the zero-copy path."""
    from repro.perfmodel.hmcperf import (
        PRODUCTION_WORKLOAD,
        _interface_overhead,
    )
    from repro.perfmodel.machines import BLUEWATERS_XK

    header("Ablation: QUDA device interface (paper Sec. VIII-D)")
    rows = []
    for p in (128, 256, 512, 800):
        t = benchmark.pedantic(
            _interface_overhead, args=(PRODUCTION_WORKLOAD, p,
                                       BLUEWATERS_XK),
            rounds=1, iterations=1) if p == 128 else _interface_overhead(
                PRODUCTION_WORKLOAD, p, BLUEWATERS_XK)
        rows.append((p, f"{t:.0f} s"))
    table(rows, ("partition", "copy+re-layout per trajectory"))
    report("the QDP-JIT+QUDA configuration eliminates this entirely")
    assert _interface_overhead(PRODUCTION_WORKLOAD, 128,
                               BLUEWATERS_XK) > 0


def test_ablation_gauge_compression(benchmark):
    """QUDA's 12/8-real gauge reconstruction trades flops for bytes."""
    gf = benchmark(lambda: {c: quda_dslash_gflops(K20M_ECC_ON, 32 ** 4,
                                                  "f32",
                                                  gauge_compression=c)
                            for c in (18, 12, 8)})
    header("Ablation: QUDA gauge compression (paper Sec. VIII-C)")
    rows = [(c, f"{g:.0f}") for c, g in gf.items()]
    table(rows, ("reals/link", "GFLOPS (SP, 32^4)"))
    report("the paper's comparison used 18 (uncompressed) for equal "
           "work; compression is QUDA's extra headroom")
    assert gf[8] > gf[12] > gf[18]

"""Benchmark-harness plumbing.

Makes the helper module importable from the repository root and gives
``_util.report`` a path around pytest's output capture (the terminal
writer), so the regenerated table/figure rows land in
``bench_output.txt`` when running ``pytest benchmarks/ | tee ...``.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import _util  # noqa: E402


def pytest_configure(config):
    _util.set_terminal_writer(config)

"""Chaos harness: seeded fault schedules against the real workloads.

Runs the fused CG solver, a distributed halo exchange and a short HMC
trajectory under deterministic fault plans (``REPRO_FAULTS`` sites:
transient launch failures, a forced device OOM, transfer bit flips,
halo corruption, solver iterate corruption) and asserts the recovery
layer's contract:

* every workload converges / completes to the same answer it reaches
  fault-free (CG to the same tolerance, halo and HMC bitwise);
* every injected fault is recovered (``injected == recovered``);
* with faults off, the run is bitwise identical to a disabled
  injector — the layer is invisible until asked for;
* the same seed replays the identical fault sequence and recovery
  trace (``FaultPlan.trace_signature``).

Emits ``BENCH_chaos.json`` (summary) and ``BENCH_chaos_trace.json``
(the CG chaos run's full fault/recovery trace — the CI artifact).
"""

import json
import os

import numpy as np

from repro.comm import VirtualMachine
from repro.core.context import Context, set_default_context
from repro.faults import FaultPlan
from repro.qcd.solver import cg
from repro.qdp.fields import latt_fermion, latt_real
from repro.qdp.lattice import Lattice
from repro.qdp.typesys import fermion

from _util import header, report, table

DIMS = (4, 4, 4, 4)
TOL = 1e-10
CG_PLAN = "seed=42: launch=2x, alloc=1x, h2d=1x, solver=1x"


def _cg_plan(seed=42):
    return (FaultPlan(seed=seed).add("launch", count=2)
            .add("alloc", count=1).add("h2d", count=1)
            .add("solver", count=1))


def _solve(faults):
    """Fused CG on A = diag(w); returns (ctx, x, result)."""
    ctx = Context(fusion=True, faults=faults)
    lat = Lattice(DIMS)
    rng = np.random.default_rng(17)
    w = latt_real(lat, context=ctx)
    w.from_numpy(rng.uniform(0.5, 1.5, lat.nsites))
    b = latt_fermion(lat, context=ctx)
    b.gaussian(rng)
    x = latt_fermion(lat, context=ctx)

    def apply_op(dest, src):
        dest.assign(w.ref() * src.ref())

    res = cg(apply_op, x, b, tol=TOL, max_iter=300)
    ctx.flush()
    return ctx, x, res


def _halo_shift(faults):
    """2-rank halo exchange; returns (vm, shifted, expected)."""
    vm = VirtualMachine((4, 4, 4, 8), (1, 1, 1, 2), faults=faults)
    glat = vm.global_lattice
    rng = np.random.default_rng(5)
    data = (rng.normal(size=(glat.nsites, 4, 3))
            + 1j * rng.normal(size=(glat.nsites, 4, 3)))
    src = vm.field(fermion())
    src.from_global(data)
    dst = vm.field(fermion())
    vm.shift_into(dst, src, 3, +1)
    return vm, dst.to_global(), data[glat.shift_map(3, +1)]


def _hmc_plaquette(faults):
    """One short pure-gauge HMC trajectory; returns the plaquette."""
    from repro.core import context as context_mod
    from repro.hmc import (
        HMC,
        GaugeMonomial,
        Level,
        MultiTimescaleIntegrator,
    )
    from repro.qcd.gauge import plaquette, weak_gauge

    old = context_mod._default_context
    ctx = Context(faults=faults)
    set_default_context(ctx)
    try:
        lat = Lattice((2, 2, 2, 4))
        rng = np.random.default_rng(3)
        u = weak_gauge(lat, rng, eps=0.3)
        hmc = HMC(u, MultiTimescaleIntegrator(
            [Level([GaugeMonomial(beta=5.6)], n_steps=4)]), rng)
        hmc.trajectory(tau=0.3)
        return ctx, plaquette(u)
    finally:
        set_default_context(old)


def test_chaos_cg(tmp_path):
    """Fused CG under the full seeded fault schedule."""
    clean_ctx, x_clean, res_clean = _solve(False)
    plan = _cg_plan()
    ctx, x, res = _solve(plan)

    converged = bool(res.converged and res.residual_norm <= TOL)
    same_solution = bool(np.allclose(x.to_numpy(), x_clean.to_numpy(),
                                     rtol=1e-8, atol=1e-12))
    all_recovered = plan.all_recovered()
    replay = _cg_plan()
    _solve(replay)
    replay_identical = (plan.trace_signature()
                        == replay.trace_signature())

    # off-identity: a second disabled run is bitwise equal to the first
    ctx2, x2, res2 = _solve(False)
    off_identical = (bool(np.array_equal(x2.to_numpy(),
                                         x_clean.to_numpy()))
                     and ctx2.device.clock == clean_ctx.device.clock
                     and ctx2.stats.faults_injected == 0)

    c = plan.counters
    header(f"Chaos harness: fused CG ({'x'.join(map(str, DIMS))}, f64) "
           f"under plan [{CG_PLAN}]")
    rows = [
        ("clean", f"{res_clean.iterations}",
         f"{res_clean.residual_norm:.2e}", "0/0", "0", "0.0 us", "0"),
        ("chaos", f"{res.iterations}", f"{res.residual_norm:.2e}",
         f"{c.injected}/{c.recovered}", f"{c.retries}",
         f"{c.backoff_s * 1e6:.1f} us", f"{c.solver_restarts}"),
    ]
    table(rows, ("run", "iters", "residual", "inj/rec", "retries",
                 "backoff", "restarts"))
    report(f"converged to tol: {converged}; same solution: "
           f"{same_solution}; all faults recovered: {all_recovered}",
           f"off-path bitwise identical: {off_identical}; "
           f"same-seed replay identical: {replay_identical}")

    out = {
        "benchmark": "chaos_cg",
        "lattice": list(DIMS),
        "plan": CG_PLAN,
        "tol": TOL,
        "clean_iterations": res_clean.iterations,
        "chaos_iterations": res.iterations,
        "counters": c.as_json(),
        "converged": converged,
        "same_solution": same_solution,
        "all_recovered": all_recovered,
        "off_identical": off_identical,
        "replay_identical": replay_identical,
        "fault_lane_busy_s":
            ctx.device.runtime.timeline.lane_busy().get("fault", 0.0),
    }
    with open(os.path.join(os.getcwd(), "BENCH_chaos.json"), "w") as f:
        json.dump(out, f, indent=2)
    with open(os.path.join(os.getcwd(),
                           "BENCH_chaos_trace.json"), "w") as f:
        json.dump(plan.trace_json(), f, indent=2)
    report(f"wrote {os.path.join(os.getcwd(), 'BENCH_chaos.json')} "
           f"and BENCH_chaos_trace.json")

    assert converged
    assert same_solution
    assert all_recovered
    assert c.injected == c.recovered >= 5
    assert off_identical
    assert replay_identical


def test_chaos_halo():
    """Halo exchange with drop + corruption, repaired bitwise."""
    plan = (FaultPlan(seed=9).add("halo.drop", count=1)
            .add("halo.corrupt", count=1))
    vm, got, want = _halo_shift(plan)
    bitwise = bool(np.array_equal(got, want))
    c = plan.counters
    header("Chaos harness: 2-rank halo exchange under drop + corrupt")
    report(f"delivered bitwise intact: {bitwise}; "
           f"injected/recovered: {c.injected}/{c.recovered}; "
           f"retransmit retries: {c.retries}; comm-lane recovery: "
           f"{vm.timeline.lane_busy().get('fault', 0) * 1e6:.1f} us "
           f"backoff")
    assert bitwise
    assert c.injected == c.recovered == 2


def _serve_pair(faults, policy="fair"):
    """Two tenants interleaving CG solves on one faulty device."""
    from repro.serve import Server, cg_diag_workload

    srv = Server(policy=policy, faults=faults)
    a = srv.tenant("alice", weight=2.0)
    b = srv.tenant("bob")
    sa = srv.submit(a, cg_diag_workload(dims=(2, 2, 2, 4), seed=21,
                                        max_iter=25))
    sb = srv.submit(b, cg_diag_workload(dims=(2, 2, 2, 4), seed=22,
                                        max_iter=25))
    srv.drain()
    return srv, sa, sb


def test_chaos_serving():
    """Injected faults in a multi-tenant run stay contained: every
    fault recovers, every event is attributed to the tenant it landed
    in, and both tenants reach the bitwise fault-free answers."""
    _, ca, cb = _serve_pair(False)
    plan = FaultPlan(seed=23).add("launch", count=2).add("alloc", count=1)
    srv, sa, sb = _serve_pair(plan)

    same_a = bool(np.array_equal(sa.result["x"], ca.result["x"]))
    same_b = bool(np.array_equal(sb.result["x"], cb.result["x"]))
    all_recovered = plan.all_recovered()
    tenants_hit = sorted({e.detail.get("tenant") for e in plan.trace})
    tagged = all(t in ("alice", "bob") for t in tenants_hit)

    replay = FaultPlan(seed=23).add("launch", count=2).add("alloc",
                                                          count=1)
    _serve_pair(replay)
    replay_identical = (plan.trace_signature()
                        == replay.trace_signature())

    # off-path: a disabled injector is bitwise invisible to serving
    srv2, sa2, sb2 = _serve_pair(False)
    off_identical = (bool(np.array_equal(sa2.result["x"],
                                         ca.result["x"]))
                     and bool(np.array_equal(sb2.result["x"],
                                             cb.result["x"]))
                     and srv2.stats.sessions_completed == 2)

    c = plan.counters
    header("Chaos harness: 2-tenant fair-share serving under "
           "launch=2x + alloc=1x")
    report(f"bitwise vs fault-free: alice {same_a}, bob {same_b}; "
           f"injected/recovered: {c.injected}/{c.recovered}; "
           f"faults landed in tenants {tenants_hit} (all tagged: "
           f"{tagged})",
           f"off-path bitwise identical: {off_identical}; same-seed "
           f"replay identical: {replay_identical}")
    assert same_a and same_b
    assert all_recovered
    assert c.injected == c.recovered == 3
    assert tagged and tenants_hit
    assert sa.state == sb.state == "done"
    assert off_identical
    assert replay_identical


def test_chaos_hmc():
    """A short HMC trajectory under transient launch + transfer
    faults lands on the bitwise-identical plaquette."""
    _, plaq_clean = _hmc_plaquette(False)
    plan = (FaultPlan(seed=14).add("launch", count=3)
            .add("h2d", count=1))
    ctx, plaq = _hmc_plaquette(plan)
    c = plan.counters
    header("Chaos harness: short HMC trajectory (2x2x2x4, beta=5.6)")
    report(f"plaquette clean {plaq_clean:.12f}, chaos {plaq:.12f}; "
           f"bitwise equal: {plaq == plaq_clean}; injected/recovered: "
           f"{c.injected}/{c.recovered}")
    assert plaq == plaq_clean
    assert c.injected == c.recovered == 4
    assert plan.all_recovered()
    assert ctx.stats.faults_injected == 4

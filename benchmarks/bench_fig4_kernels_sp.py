"""Figure 4: sustained bandwidth vs volume, single precision, K20x
(ECC off).

Regenerates the five curves from the generated kernels' metadata and
the calibrated device model; checks the paper's shape claims
(rising flank, shoulder near L = 16, plateau at ~79% of the 250 GB/s
peak, curves coinciding).
"""

import pytest

from repro.device.specs import K20X_ECC_OFF
from repro.perfmodel.kernelperf import figure_4_5

from _util import header, report, table

LS = [2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28]


def test_figure4_sp(benchmark):
    curves = benchmark(figure_4_5, "f32", LS)
    header("Figure 4: sustained GB/s vs V = L^4, SP, K20x ECC-off")
    rows = []
    for i, l in enumerate(LS):
        rows.append((l, *(f"{curves[k][i][1]:.1f}" for k in
                          ("lcm", "upsi", "spmat", "matvec", "clover"))))
    table(rows, ("L", "lcm", "upsi", "spmat", "matvec", "clover"))
    peak = K20X_ECC_OFF.peak_bandwidth / 1e9
    plateau = curves["upsi"][-1][1]
    report(f"plateau = {plateau:.1f} GB/s = {plateau / peak * 100:.1f}% "
           f"of {peak:.0f} GB/s peak (paper: 79%)",
           "paper shape: shoulder near L = 16, curves coincide")
    assert 0.74 * peak <= plateau <= 0.80 * peak
    d = dict(curves["upsi"])
    assert d[16] >= 0.9 * d[28]
    assert d[8] <= 0.55 * d[28]

"""Table II: the five benchmark test functions and their arithmetic
intensities, measured from the actually generated kernels.

Also benchmarks the real (wall-clock) execution of each generated
kernel at a laptop-scale volume — the numbers the modeled device times
are layered on.
"""

import numpy as np
import pytest

from repro.core.context import Context
from repro.perfmodel.kernelperf import generate_test_kernels
from repro.qcd.clover import CloverTerm
from repro.qcd.gauge import weak_gauge
from repro.qdp.fields import latt_color_matrix, latt_fermion, latt_spin_matrix
from repro.qdp.lattice import Lattice

from _util import header, report, table

PAPER_AI = {"lcm": 0.458, "upsi": 0.5, "spmat": 0.62,
            "matvec": 0.64, "clover": 0.525}


def test_table2_arithmetic_intensity(benchmark):
    stats = benchmark(generate_test_kernels, "f64")
    header("Table II: test functions, flop/byte (DP)")
    rows = []
    for name, paper in PAPER_AI.items():
        s = stats[name]
        rows.append((name, s.flops_per_site, s.bytes_per_site,
                     f"{s.flop_per_byte:.3f}", paper))
    table(rows, ("test", "flops/site", "bytes/site", "measured", "paper"))
    for name, paper in PAPER_AI.items():
        assert stats[name].flop_per_byte == pytest.approx(paper, abs=0.006)


@pytest.fixture(scope="module")
def workload():
    ctx = Context()
    lat = Lattice((8, 8, 8, 8))
    rng = np.random.default_rng(0)
    u = weak_gauge(lat, rng, context=ctx)
    psi = latt_fermion(lat, context=ctx)
    phi = latt_fermion(lat, context=ctx)
    g2 = latt_spin_matrix(lat, context=ctx)
    g3 = latt_spin_matrix(lat, context=ctx)
    for f in (psi, phi, g2, g3):
        f.gaussian(rng)
    clov = CloverTerm(u, coeff=0.5)
    return ctx, lat, u, psi, phi, g2, g3, clov


@pytest.mark.parametrize("name", list(PAPER_AI))
def test_kernel_execution(benchmark, workload, name):
    ctx, lat, u, psi, phi, g2, g3, clov = workload
    dests = {
        "lcm": latt_color_matrix(lat, context=ctx),
        "upsi": latt_fermion(lat, context=ctx),
        "spmat": latt_spin_matrix(lat, context=ctx),
        "matvec": latt_fermion(lat, context=ctx),
        "clover": latt_fermion(lat, context=ctx),
    }
    exprs = {
        "lcm": lambda: u[1] * u[2],
        "upsi": lambda: u[0] * psi,
        "spmat": lambda: g2 * g3,
        "matvec": lambda: u[0] * psi + u[0] * phi,
        "clover": lambda: clov.apply_expr(psi),
    }
    dest = dests[name]
    cost = benchmark(lambda: dest.assign(exprs[name]()))
    report(f"{name}: modeled kernel time at 8^4 = "
           f"{dest.assign(exprs[name]()).time_s * 1e6:.1f} us, "
           f"modeled sustained = "
           f"{dest.assign(exprs[name]()).sustained_gbs:.1f} GB/s")

"""Resilience chaos harness: rank kills against the real workloads.

Runs the 4-rank distributed Wilson dslash and a short HMC campaign
under seeded ``rank.kill`` / ``rank.straggler`` schedules
(``REPRO_FAULTS``) with the resilience layer in ``recover`` mode, and
asserts the layer's contract:

* buddy recovery is *bitwise* identical to the fault-free run — the
  checkpoint cut at the exchange barrier reproduces the dead rank
  exactly;
* shrink-and-redistribute completes on fewer ranks with the same
  numbers (``allclose`` per contract; bitwise is recorded);
* a mid-campaign kill replays the trajectory from its snapshot and
  the surviving stream is bitwise identical to an uninterrupted one;
* a dead rank inside one tenant's session leaves co-tenants bitwise
  unperturbed;
* every kill is recovered, the recovery cost lands on the ``fault``
  lane, the same seed replays the identical trace
  (``FaultPlan.trace_signature``), and with ``REPRO_RESILIENCE`` off
  (or no plan) the layer is bitwise invisible.

Emits ``BENCH_resilience.json`` (summary, accumulated across the
tests) and ``BENCH_resilience_trace.json`` (the buddy dslash run's
full fault/recovery trace — the CI artifact).
"""

import json
import os

import numpy as np

from repro.comm import DistributedWilsonDslash, VirtualMachine
from repro.faults import FaultPlan
from repro.qdp.typesys import color_matrix, fermion

from _util import header, report, table

DIMS = (4, 4, 4, 8)
GRID = (1, 1, 2, 2)
BUDDY_PLAN = "seed=7: rank.kill=1x@rank2:2-:*"
SHRINK_PLAN = "seed=7: rank.kill=1x@rank0:0+:psi"

_SUMMARY: dict = {"benchmark": "resilience", "lattice": list(DIMS),
                  "grid": list(GRID)}


def _flush_summary():
    with open(os.path.join(os.getcwd(),
                           "BENCH_resilience.json"), "w") as f:
        json.dump(_SUMMARY, f, indent=2)


def _buddy_plan():
    return FaultPlan(seed=7).add("rank.kill", count=1,
                                 match="rank2:2-:*")


def _shrink_plan():
    return FaultPlan(seed=7).add("rank.kill", count=1,
                                 match="rank0:0+:psi")


def _dslash_run(faults, resilience=False, policy="buddy"):
    """4-rank overlapped dslash; returns (vm, global result)."""
    vm = VirtualMachine(DIMS, GRID, faults=faults,
                        resilience=resilience, recover_policy=policy)
    g = vm.global_lattice
    rng = np.random.default_rng(31)
    ud = [vm.field(color_matrix(), f"u{mu}") for mu in range(4)]
    for mu in range(4):
        ud[mu].from_global(rng.normal(size=(g.nsites, 3, 3))
                           + 1j * rng.normal(size=(g.nsites, 3, 3)))
    psi = vm.field(fermion(), "psi")
    psi.from_global(rng.normal(size=(g.nsites, 4, 3))
                    + 1j * rng.normal(size=(g.nsites, 4, 3)))
    out = vm.field(fermion(), "out")
    DistributedWilsonDslash(vm, ud).apply(out, psi, overlap=True)
    return vm, out.to_global()


def test_resilience_dslash_buddy():
    """A rank dies mid-apply; buddy checkpointing restores it and the
    answer is bitwise identical to the fault-free machine."""
    _, clean = _dslash_run(False)
    plan = _buddy_plan()
    vm, got = _dslash_run(plan, resilience="recover", policy="buddy")

    bitwise = bool(np.array_equal(got, clean))
    all_recovered = plan.all_recovered()
    rz = vm.resilience.as_json()
    fault_busy = vm.timeline.lane_busy().get("fault", 0.0)

    replay = _buddy_plan()
    _dslash_run(replay, resilience="recover", policy="buddy")
    replay_identical = (plan.trace_signature()
                        == replay.trace_signature())

    # off-path: recover mode with no plan is bitwise invisible
    vm_off, off = _dslash_run(False, resilience="recover",
                              policy="buddy")
    vm_base, base = _dslash_run(False)
    off_identical = (bool(np.array_equal(off, clean))
                     and bool(np.array_equal(base, clean))
                     and max(c.device.clock for c in vm_off.contexts)
                     == max(c.device.clock for c in vm_base.contexts))

    header(f"Resilience: 4-rank dslash ({'x'.join(map(str, DIMS))} on "
           f"{'x'.join(map(str, GRID))}) under [{BUDDY_PLAN}]")
    table([("buddy", f"{rz['kills_injected']}", f"{rz['detections']}",
            f"{rz['recoveries_by_policy'].get('buddy', 0)}",
            f"{rz['restored_payloads']}",
            f"{rz['recovery_modeled_s'] * 1e6:.1f} us",
            f"{fault_busy * 1e6:.1f} us")],
          ("policy", "kills", "detected", "recovered", "payloads",
           "modeled cost", "fault lane"))
    report(f"bitwise vs fault-free: {bitwise}; all recovered: "
           f"{all_recovered}; off-path bitwise invisible: "
           f"{off_identical}; same-seed replay identical: "
           f"{replay_identical}")

    _SUMMARY["dslash_buddy"] = {
        "plan": BUDDY_PLAN, "bitwise": bitwise,
        "all_recovered": all_recovered,
        "off_identical": off_identical,
        "replay_identical": replay_identical,
        "fault_lane_busy_s": fault_busy, "resilience": rz,
    }
    _flush_summary()
    with open(os.path.join(os.getcwd(),
                           "BENCH_resilience_trace.json"), "w") as f:
        json.dump(plan.trace_json(), f, indent=2)
    report(f"wrote {os.path.join(os.getcwd(), 'BENCH_resilience.json')} "
           f"and BENCH_resilience_trace.json")

    assert bitwise
    assert all_recovered
    assert rz["kills_injected"] == 1
    assert rz["recoveries_by_policy"] == {"buddy": 1}
    assert rz["restored_payloads"] > 0
    assert fault_busy > 0
    assert off_identical
    assert replay_identical


def test_resilience_dslash_shrink():
    """The same machine under shrink-and-redistribute: the grid drops
    the dead rank and finishes with the same numbers."""
    _, clean = _dslash_run(False)
    plan = _shrink_plan()
    vm, got = _dslash_run(plan, resilience="recover", policy="shrink")

    close = bool(np.allclose(got, clean, rtol=1e-12, atol=1e-14))
    bitwise = bool(np.array_equal(got, clean))
    rz = vm.resilience.as_json()

    header(f"Resilience: shrink-and-redistribute under [{SHRINK_PLAN}]")
    report(f"ranks 4 -> {vm.nranks}; allclose vs fault-free: {close} "
           f"(bitwise: {bitwise}); kills/recoveries: "
           f"{rz['kills_injected']}/"
           f"{rz['recoveries_by_policy'].get('shrink', 0)}; "
           f"modeled cost {rz['recovery_modeled_s'] * 1e6:.1f} us")

    _SUMMARY["dslash_shrink"] = {
        "plan": SHRINK_PLAN, "nranks_after": vm.nranks,
        "allclose": close, "bitwise": bitwise, "resilience": rz,
    }
    _flush_summary()

    assert close
    assert vm.nranks < 4
    assert plan.all_recovered()
    assert rz["recoveries_by_policy"] == {"shrink": 1}


def _shift_run(faults, resilience=False):
    """2-rank boundary-crossing shift sweep (cheap lane clocks, so a
    hang stands clear of the median); returns (vm, global result)."""
    vm = VirtualMachine((4, 4, 4, 8), (1, 1, 1, 2), faults=faults,
                        resilience=resilience)
    g = vm.global_lattice
    rng = np.random.default_rng(5)
    f = vm.field(fermion(), "psi")
    f.from_global(rng.normal(size=(g.nsites, 4, 3))
                  + 1j * rng.normal(size=(g.nsites, 4, 3)))
    d = vm.field(fermion(), "chi")
    for mu in range(3):
        vm.shift_into(d, f, mu, +1)
        f, d = d, f
    return vm, f.to_global()


def test_resilience_straggler():
    """An injected straggler is flagged against the median lane clock
    and its stall absorbed on the fault lane; numbers unperturbed."""
    _, clean = _shift_run(False)
    plan = FaultPlan(seed=11).add("rank.straggler", count=1,
                                  match="rank1:*")
    vm, got = _shift_run(plan, resilience="recover")
    rz = vm.resilience.as_json()

    header("Resilience: straggler detection (rank1 hangs once)")
    report(f"injected/flagged: {rz['stragglers_injected']}/"
           f"{rz['stragglers_flagged']}; bitwise vs fault-free: "
           f"{bool(np.array_equal(got, clean))}")

    _SUMMARY["straggler"] = {
        "injected": rz["stragglers_injected"],
        "flagged": rz["stragglers_flagged"],
        "bitwise": bool(np.array_equal(got, clean)),
    }
    _flush_summary()

    assert rz["stragglers_injected"] == 1
    assert rz["stragglers_flagged"] == 1
    assert np.array_equal(got, clean)
    assert plan.all_recovered()


def _campaign(plan):
    """A short 2x2x2x4 pure-gauge campaign; returns (result, plaq)."""
    from repro.core import context as context_mod
    from repro.core.context import Context, set_default_context
    from repro.hmc import (
        HMC,
        GaugeMonomial,
        Level,
        MultiTimescaleIntegrator,
    )
    from repro.qcd.gauge import plaquette, weak_gauge
    from repro.qdp.lattice import Lattice
    from repro.resilience import run_campaign

    old = context_mod._default_context
    ctx = Context()
    set_default_context(ctx)
    try:
        lat = Lattice((2, 2, 2, 4))
        rng = np.random.default_rng(3)
        u = weak_gauge(lat, rng, eps=0.3)
        hmc = HMC(u, MultiTimescaleIntegrator(
            [Level([GaugeMonomial(beta=5.6)], n_steps=4)]), rng)
        result = run_campaign(hmc, n_trajectories=3, tau=0.3,
                              plan=plan)
        return result, plaquette(u)
    finally:
        set_default_context(old)


def test_resilience_hmc_campaign():
    """A kill in trajectory 1 loses that attempt's work, restores the
    snapshot, replays — and the stream is bitwise identical."""
    clean, plaq_clean = _campaign(None)
    plan = FaultPlan(seed=14).add("rank.kill", count=1, match="traj1")
    chaos, plaq = _campaign(plan)

    header("Resilience: HMC campaign (3 trajectories, kill in traj1)")
    report(f"plaquette clean {plaq_clean:.12f}, chaos {plaq:.12f}; "
           f"bitwise: {plaq == plaq_clean}; kills/replays: "
           f"{chaos.kills}/{chaos.replays}; lost work "
           f"{chaos.lost_work_s * 1e6:.1f} us")

    _SUMMARY["hmc_campaign"] = {
        "plaquette": plaq, "bitwise": bool(plaq == plaq_clean),
        "kills": chaos.kills, "replays": chaos.replays,
        "lost_work_s": chaos.lost_work_s,
    }
    _flush_summary()

    assert plaq == plaq_clean
    assert chaos.kills == chaos.replays == 1
    assert chaos.lost_work_s > 0
    assert plan.all_recovered()
    assert [r.accepted for r in chaos.results] \
        == [r.accepted for r in clean.results]


def _serve_pair(alice_faults, resilience=False):
    """alice brings a private VM (killable), bob a plain CG solve."""
    from repro.serve import Server, cg_diag_workload, vm_shift_workload

    srv = Server(policy="fair")
    a = srv.tenant("alice", weight=2.0)
    b = srv.tenant("bob")
    sa = srv.submit(a, vm_shift_workload(
        global_dims=(4, 4, 4, 8), grid_dims=(1, 1, 1, 2), seed=31,
        sweeps=3, faults=alice_faults, resilience=resilience))
    sb = srv.submit(b, cg_diag_workload(dims=(2, 2, 2, 4), seed=22,
                                        max_iter=25))
    srv.drain()
    return srv, sa, sb


def test_resilience_serving_isolation():
    """A rank dies inside alice's session; bob's results and stats
    are bitwise unperturbed (wall_s is measured host time, excluded)."""
    srv0, ca, cb = _serve_pair(False)
    plan = FaultPlan(seed=19).add("rank.kill", count=1,
                                  match="rank1:*")
    srv1, sa, sb = _serve_pair(plan, resilience="recover")

    alice_same = bool(np.array_equal(sa.result["f"], ca.result["f"]))
    bob_same = bool(np.array_equal(sb.result["x"], cb.result["x"]))

    def nw(t):
        j = t.stats.as_json()
        j.pop("wall_s")
        return j

    bob_stats_same = nw(srv1.tenants["bob"]) == nw(srv0.tenants["bob"])
    rz = sa.result["resilience"]

    header("Resilience: multi-tenant isolation (kill inside alice's "
           "private VM)")
    report(f"alice recovered bitwise: {alice_same} "
           f"(kills {rz['kills_injected']}, policy buddy); bob bitwise "
           f"unperturbed: {bob_same}; bob deterministic stats equal: "
           f"{bob_stats_same}")

    _SUMMARY["serving_isolation"] = {
        "alice_bitwise": alice_same, "bob_bitwise": bob_same,
        "bob_stats_equal": bob_stats_same,
        "alice_resilience": rz,
    }
    _flush_summary()

    assert alice_same
    assert bob_same
    assert bob_stats_same
    assert rz["kills_injected"] == 1
    assert rz["recoveries_by_policy"] == {"buddy": 1}
    assert plan.all_recovered()

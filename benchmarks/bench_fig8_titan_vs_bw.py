"""Figure 8: Blue Waters vs Titan strong scaling for the
QDP-JIT+QUDA configuration — "hardly distinguishable" per the paper.
"""

import pytest

from repro.perfmodel.hmcperf import figure_8

from _util import header, report, table


def test_fig8_titan_vs_bluewaters(benchmark):
    fig = benchmark(figure_8)
    header("Figure 8: QDP-JIT+QUDA trajectory time, Blue Waters vs "
           "Titan")
    rows = []
    for (p, bw), (_, ti) in zip(fig["bluewaters"], fig["titan"]):
        rows.append((p, f"{bw:.0f}", f"{ti:.0f}",
                     f"{(ti - bw) / bw * 100:+.1f}%"))
    table(rows, ("GPUs", "Blue Waters [s]", "Titan [s]", "diff"))
    report("paper: 'hardly distinguishable when bearing in mind ... "
           "fluctuation'")
    for (p, bw), (_, ti) in zip(fig["bluewaters"], fig["titan"]):
        assert abs(ti - bw) / bw < 0.08

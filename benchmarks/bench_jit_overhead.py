"""Sec. III-D / VIII-D: JIT compilation overhead.

The paper measures 0.05-0.22 s per compute kernel through the NVIDIA
driver JIT, ~200 kernels per trajectory, 10-30 s total — negligible.
Here we benchmark our driver's *actual* wall-clock translation of the
generated kernels and report the modeled NVIDIA-driver cost next to
it.
"""

import numpy as np
import pytest

from repro.core.context import Context
from repro.driver import compile_ptx
from repro.perfmodel.dslashperf import measure_dslash_kernels
from repro.qcd.gauge import weak_gauge
from repro.qcd.wilson import WilsonOperator, WilsonParams
from repro.qdp.fields import latt_fermion
from repro.qdp.lattice import Lattice

from _util import header, report, table


@pytest.fixture(scope="module")
def generated_kernels():
    """Generate a representative kernel population (a Wilson apply +
    reductions + shifts)."""
    ctx = Context()
    lat = Lattice((4, 4, 4, 4))
    rng = np.random.default_rng(0)
    u = weak_gauge(lat, rng, context=ctx)
    m = WilsonOperator(u, WilsonParams(kappa=0.1))
    psi = latt_fermion(lat, context=ctx)
    psi.gaussian(rng)
    out = latt_fermion(lat, context=ctx)
    m.apply(out, psi)
    from repro.core.reduction import innerProduct, norm2

    norm2(out, context=ctx)
    innerProduct(psi, out, context=ctx)
    return [entry[0] for entry in ctx.module_cache.values()]


def test_jit_compile_overhead(benchmark, generated_kernels):
    texts = [m.render() for m in generated_kernels]

    def compile_all():
        return [compile_ptx(t) for t in texts]

    kernels = benchmark(compile_all)
    header("JIT compilation overhead (per generated kernel)")
    rows = []
    for k in kernels:
        rows.append((k.name[:24], len(k.parsed.instructions),
                     f"{k.compile_seconds * 1e3:.2f} ms",
                     f"{k.modeled_compile_seconds:.3f} s"))
    table(rows, ("kernel", "instructions", "our JIT (wall)",
                 "modeled driver JIT"))
    report("paper band: 0.05 - 0.22 s per kernel; ~200 kernels => "
           "10-30 s per trajectory, negligible")
    for k in kernels:
        assert 0.04 <= k.modeled_compile_seconds <= 0.30
        assert k.compile_seconds < 0.5


def test_trajectory_population_overhead(benchmark):
    """~200 kernels of realistic sizes land in the paper's 10-30 s."""
    from repro.driver.jitcompiler import modeled_jit_time

    rng = np.random.default_rng(1)
    sizes = rng.integers(30, 500, size=200)
    total = benchmark(lambda: sum(modeled_jit_time(int(n))
                                  for n in sizes))
    report(f"modeled total for 200 kernels: {total:.1f} s "
           f"(paper: 10-30 s)")
    assert 10 <= total <= 40

"""Figure 7: strong scaling of HMC on Blue Waters (paper Sec. VIII-D).

Two parts:

1. *Executed*: a real miniature 2+1-flavor RHMC trajectory (mass
   preconditioning + rational strange quark) through the full JIT
   pipeline — the workload whose component structure the scaling
   model extrapolates.
2. *Modeled*: the three configurations at the paper's partition
   sizes, with the quoted speedups, node-hours and the ~5x resource
   cost reduction.
"""

import numpy as np
import pytest

from repro.perfmodel.hmcperf import (
    figure_7,
    node_hours,
    resource_cost_factor,
    speedup,
    trajectory_time,
)

from _util import header, report, table


def test_fig7_scaling_model(benchmark):
    fig = benchmark(figure_7)
    header("Figure 7: HMC trajectory time on Blue Waters, "
           "V = 40^3 x 256, 2+1 anisotropic clover, tau = 0.2")
    cpu = dict(fig["cpu"])
    cq = dict(fig["cpu+quda"])
    jq = dict(fig["qdpjit+quda"])
    rows = []
    for p in (128, 256, 400, 512, 800, 1600):
        rows.append((p, f"{cpu[p]:.0f}",
                     f"{cq[p]:.0f}" if p in cq else "-",
                     f"{jq[p]:.0f}" if p in jq else "-",
                     f"{cpu[p] / cq[p]:.2f}" if p in cq else "-",
                     f"{cpu[p] / jq[p]:.2f}" if p in jq else "-"))
    table(rows, ("P", "CPU [s]", "CPU+QUDA [s]", "QDP-JIT+QUDA [s]",
                 "x(CPU+QUDA)", "x(QDP-JIT+QUDA)"))
    report("paper anchors: x2.2 / x11.0 at 128; x1.8 / x3.7 at 800;",
           "CPU-only scales well to ~400 sockets, 800->1600 marginal")
    assert speedup("cpu+quda", 128) == pytest.approx(2.2, rel=0.08)
    assert speedup("qdpjit+quda", 128) == pytest.approx(11.0, rel=0.08)
    assert speedup("cpu+quda", 800) == pytest.approx(1.8, rel=0.08)
    assert speedup("qdpjit+quda", 800) == pytest.approx(3.7, rel=0.08)


def test_resource_cost(benchmark):
    factor = benchmark(resource_cost_factor, 128)
    header("Sec. VIII-D: integrated resource cost at the most "
           "efficient machine size (128 XK nodes)")
    rows = [("CPU+QUDA", f"{node_hours('cpu+quda', 128):.0f}", "258"),
            ("QDP-JIT+QUDA", f"{node_hours('qdpjit+quda', 128):.0f}",
             "52")]
    table(rows, ("configuration", "node-hours (model)", "paper"))
    report(f"cost reduction factor: {factor:.2f} (paper: ~5)")
    assert factor == pytest.approx(5.0, rel=0.1)


def test_executed_mini_trajectory(benchmark):
    """A real 2+1 RHMC trajectory through the framework (miniature
    volume).  Prints its operation accounting — the quantities the
    scaling model's workload is expressed in."""
    from repro.core.context import Context, set_default_context
    from repro.hmc import (
        HMC,
        GaugeMonomial,
        HasenbuschRatioMonomial,
        Level,
        MultiTimescaleIntegrator,
        OneFlavorRationalMonomial,
        TwoFlavorWilsonMonomial,
        fourth_root,
        inv_sqrt,
    )
    from repro.qcd.gauge import weak_gauge
    from repro.qcd.wilson import WilsonParams
    from repro.qdp.lattice import Lattice

    ctx = Context()
    set_default_context(ctx)
    rng = np.random.default_rng(4)
    lat = Lattice((2, 2, 2, 4))
    u = weak_gauge(lat, rng, eps=0.2, context=ctx)
    light = WilsonParams(kappa=0.115)
    heavy = WilsonParams(kappa=0.10)
    strange = WilsonParams(kappa=0.105)
    pf_a = inv_sqrt(0.05, 6.0, degree=12)
    pf_h = fourth_root(0.05, 6.0, degree=12)
    levels = [
        Level([HasenbuschRatioMonomial(light, heavy, tol=1e-8),
               OneFlavorRationalMonomial(strange, pf_a, pf_h,
                                         tol=1e-8)], n_steps=2),
        Level([TwoFlavorWilsonMonomial(heavy, tol=1e-8)], n_steps=2),
        Level([GaugeMonomial(beta=5.6)], n_steps=2, scheme="omelyan"),
    ]
    hmc = HMC(u, MultiTimescaleIntegrator(levels), rng)

    r = benchmark.pedantic(lambda: hmc.trajectory(tau=0.1), rounds=1,
                           iterations=1)
    header("Executed miniature 2+1-flavor RHMC trajectory (2^3 x 4)")
    report(f"dH = {r.delta_h:+.5f}, accepted = {r.accepted}, "
           f"plaquette = {r.plaquette:.5f}",
           f"solver iterations = {r.solver_iterations}, "
           f"kernel launches = {r.kernels_launched}",
           f"distinct JIT kernels = {ctx.kernel_cache.stats.n_kernels} "
           f"(paper: ~200 for the full production action)",
           f"modeled JIT overhead = "
           f"{ctx.kernel_cache.stats.total_modeled_compile_seconds:.1f} s "
           f"(paper: 10-30 s, 'negligible')")
    assert abs(r.delta_h) < 0.5

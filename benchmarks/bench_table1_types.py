"""Table I: the QDP++ data types.

Prints the nested type definitions (verifying they match the paper's
notation) and benchmarks field construction + SoA round-trip, the
operations behind every JIT data view.
"""

import numpy as np
import pytest

from repro.qdp.fields import LatticeField
from repro.qdp.lattice import Lattice
from repro.qdp.typesys import (
    clover_diag,
    clover_triangular,
    color_matrix,
    fermion,
    spin_matrix,
)

from _util import header, report, table


TYPES = [
    ("psi (LatticeFermion)", fermion()),
    ("U (LatticeColorMatrix)", color_matrix()),
    ("Gamma (LatticeSpinMatrix)", spin_matrix()),
    ("Adiag (clover diagonal)", clover_diag()),
    ("Atria (clover triangular)", clover_triangular()),
]


def test_table1_definitions(benchmark):
    header("Table I: data types in QDP++ (paper notation check)")
    rows = []
    for name, spec in TYPES:
        rows.append((name, spec.describe(), spec.words_per_site,
                     spec.bytes_per_site))
    table(rows, ("symbol", "definition", "words/site", "bytes/site (DP)"))
    report("paper: clover term stored as 2 blocks x (6 diag reals + "
           "15 lower-triangular complexes) = 72 reals/site",
           f"measured: {clover_diag().words_per_site} + "
           f"{clover_triangular().words_per_site} = "
           f"{clover_diag().words_per_site + clover_triangular().words_per_site}")

    lat = Lattice((8, 8, 8, 8))

    def build_and_roundtrip():
        f = LatticeField(lat, fermion())
        data = np.ones((lat.nsites, 4, 3), dtype=complex)
        f.from_numpy(data)
        return f.to_numpy()

    result = benchmark(build_and_roundtrip)
    assert result.shape == (lat.nsites, 4, 3)

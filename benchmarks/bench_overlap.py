"""Stream/event runtime: copy-compute-comm overlap on the timeline.

Runs the distributed Wilson dslash on a two-rank virtual machine and
reads its cost off the VM's unified lane-based timeline: halo messages
queue on the comm lane ordered by gather/scatter events, so the
makespan is strictly below the serial sum of the compute and comm
lanes whenever communication actually hides behind the interior
kernels.  The same schedule is evaluated at the paper's Fig. 6 scale
(L = 32, f64) through the analytic performance model, which now lays
its components out on the same runtime.

Emits ``BENCH_overlap.json`` plus ``BENCH_overlap_trace.json`` — the
overlapped apply's window as a Chrome trace (load it at
ui.perfetto.dev) — next to the CI lint report.
"""

import json
import os

import numpy as np

from repro.comm import DistributedWilsonDslash, VirtualMachine
from repro.perfmodel.dslashperf import model_dslash_timing
from repro.qdp.typesys import color_matrix, fermion
from repro.runtime import write_chrome_trace

from _util import header, report, table

GLOBAL_DIMS = (4, 4, 4, 8)
GRID = (1, 1, 1, 2)


def _setup(streams):
    """A 2-rank VM with a weak gauge field and a gaussian source."""
    from repro.core.context import Context
    from repro.qcd.gauge import weak_gauge
    from repro.qdp.lattice import Lattice

    rng = np.random.default_rng(23)
    ref_ctx = Context(autotune=False)
    u_ref = weak_gauge(Lattice(GLOBAL_DIMS), rng, context=ref_ctx)

    vm = VirtualMachine(GLOBAL_DIMS, GRID, autotune=False, streams=streams)
    u = [vm.field(color_matrix(), name=f"u{mu}") for mu in range(4)]
    for mu in range(4):
        u[mu].from_global(u_ref[mu].to_numpy())
    psi = vm.field(fermion(), name="psi")
    data = (rng.normal(size=(vm.global_lattice.nsites, 4, 3))
            + 1j * rng.normal(size=(vm.global_lattice.nsites, 4, 3)))
    psi.from_global(data)
    return vm, u, psi


def _apply(vm, u, psi, overlap):
    d = DistributedWilsonDslash(vm, u)
    out = vm.field(fermion(), name="chi")
    timing = d.apply(out, psi, overlap=overlap)
    return timing, out.to_global()


def test_overlap_timeline(tmp_path):
    vm, u, psi = _setup(streams=True)
    t_ov, x_ov = _apply(vm, u, psi, overlap=True)
    t_no, x_no = _apply(vm, u, psi, overlap=False)

    # streams model only *time*: results must be bitwise identical to
    # the serial (REPRO_STREAMS=off) path
    vm_s, u_s, psi_s = _setup(streams=False)
    t_serial, x_serial = _apply(vm_s, u_s, psi_s, overlap=True)
    bitwise = bool(np.array_equal(x_ov, x_serial))

    window = t_ov.timeline
    lanes = window.lane_busy()
    lane_sum = lanes["compute"] + lanes["comm"]
    overlap_fraction = window.overlap_fraction
    cp_s, chain = window.critical_path()

    # Fig. 6 scale through the analytic model, same runtime schedule
    m_ov = model_dslash_timing(32, "f64", overlap=True)
    m_no = model_dslash_timing(32, "f64", overlap=False)

    header("Stream runtime: distributed Wilson dslash, "
           f"{'x'.join(map(str, GLOBAL_DIMS))} over "
           f"{'x'.join(map(str, GRID))} ranks (f64)")
    rows = [
        ("overlap on", f"{t_ov.total_s * 1e6:.1f} us",
         f"{lanes['compute'] * 1e6:.1f} us",
         f"{lanes['comm'] * 1e6:.1f} us",
         f"{overlap_fraction:.1%}"),
        ("overlap off", f"{t_no.total_s * 1e6:.1f} us", "-", "-", "-"),
        ("serial streams", f"{t_serial.serial_s * 1e6:.1f} us", "-", "-",
         "0.0%"),
    ]
    table(rows, ("schedule", "makespan", "compute busy", "comm busy",
                 "overlap"))
    report(f"critical path: {cp_s * 1e6:.1f} us over {len(chain)} span(s)",
           f"L=32 model: overlap {m_ov.total_s * 1e3:.2f} ms vs "
           f"sequential {m_no.total_s * 1e3:.2f} ms "
           f"({(1 - m_ov.total_s / m_no.total_s):.1%} hidden)",
           f"results bitwise identical streams on/off: {bitwise}")

    out = {
        "benchmark": "overlap_distributed_dslash",
        "lattice": list(GLOBAL_DIMS),
        "grid": list(GRID),
        "precision": "f64",
        "overlap": {
            "total_s": t_ov.total_s,
            "lane_busy_s": lanes,
            "overlap_fraction": overlap_fraction,
            "critical_path_s": cp_s,
            "spans": len(window),
        },
        "no_overlap": {"total_s": t_no.total_s},
        "serial_sum_s": t_serial.serial_s,
        "model_l32": {"overlap_s": m_ov.total_s,
                      "no_overlap_s": m_no.total_s},
        "bitwise_identical": bitwise,
    }
    path = os.path.join(os.getcwd(), "BENCH_overlap.json")
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
    trace_path = os.path.join(os.getcwd(), "BENCH_overlap_trace.json")
    write_chrome_trace(window, trace_path)
    report(f"wrote {path}", f"wrote {trace_path}")

    # the tentpole's acceptance bar
    assert bitwise
    assert overlap_fraction > 0
    # the overlapped makespan beats the serial sum of the two lanes
    assert window.end_s < lane_sum
    assert t_ov.total_s < t_no.total_s
    # ... and the Fig. 6-scale model shows the same structure
    assert m_ov.total_s < m_no.total_s
    assert m_ov.total_s < (m_ov.prepare_s + m_ov.gather_s + m_ov.comm_s
                           + m_ov.interior_fill_s + m_ov.scatter_s
                           + m_ov.main_inner_s + m_ov.main_face_s)

"""Sec. VII: kernel auto-tuning traces.

Shows the paper's strategy in action: start at the device maximum
block size, halve on launch failure, probe smaller sizes on payload
launches until the time degrades by >33%, then lock the best.
"""

import numpy as np
import pytest

from repro.core.context import Context
from repro.qdp.fields import latt_fermion
from repro.qdp.lattice import Lattice

from _util import header, report, table


def test_autotune_trace(benchmark):
    ctx = Context(autotune=True)
    lat = Lattice((8, 8, 8, 8))
    rng = np.random.default_rng(0)
    a = latt_fermion(lat, context=ctx)
    a.gaussian(rng)
    b = latt_fermion(lat, context=ctx)

    def ten_launches():
        for _ in range(10):
            b.assign(2.0 * a)

    benchmark.pedantic(ten_launches, rounds=1, iterations=1)
    header("Sec. VII: auto-tuning trace (axpy-like kernel, 8^4)")
    (name, st), = list(ctx.autotuner.states.items())[:1]
    rows = [(i, bs, f"{t * 1e6:.1f} us")
            for i, (bs, t) in enumerate(st.history)]
    table(rows, ("launch", "block size", "modeled time"))
    report(f"tuned block size: {st.best_block} "
           f"(paper: >= 128 saturates on Kepler)",
           f"launch failures encountered: {st.failures}",
           f"phase: {st.phase.value}")
    assert st.best_block >= 128


def test_autotune_converges_quickly(benchmark):
    """Tuning must settle within a handful of payload launches."""
    ctx = Context(autotune=True)
    lat = Lattice((8, 8, 8, 8))
    rng = np.random.default_rng(0)
    a = latt_fermion(lat, context=ctx)
    a.gaussian(rng)
    b = latt_fermion(lat, context=ctx)

    def launch():
        b.assign(a + a)

    benchmark(launch)
    from repro.device.autotune import Phase

    st = list(ctx.autotuner.states.values())[0]
    assert st.phase is Phase.TUNED
    assert len(st.history) <= st.launches

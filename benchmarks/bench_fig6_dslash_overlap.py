"""Figure 6: Wilson Dslash on 2 GPUs — overlapping vs non-overlapping
communication and computation (paper Sec. VIII-C).

Two parts:

1. *Executed*: the real distributed Dslash (virtual machine, halo
   exchange, inner/face schedule) at a laptop-scale volume; overlap
   on/off results are bit-identical and the modeled times show the
   overlap gain.
2. *Modeled sweep*: the full volume range of Fig. 6 (L = 8..40) from
   the generated kernels' metadata + device/interconnect models,
   including the paper's absolute anchors (197/90 GFLOPS) and the
   11%/7% overlap gains.
"""

import numpy as np
import pytest

from repro.comm import DistributedWilsonDslash, VirtualMachine
from repro.perfmodel.dslashperf import figure_6, measure_dslash_kernels
from repro.qdp.typesys import color_matrix, fermion

from _util import header, report, table

LS = [8, 12, 16, 20, 24, 28, 32, 36, 40]


@pytest.fixture(scope="module")
def vm_setup():
    rng = np.random.default_rng(13)
    vm = VirtualMachine((4, 4, 4, 8), (1, 1, 1, 2))
    from repro.qcd import su3

    u = [vm.field(color_matrix()) for _ in range(4)]
    for umu in u:
        g = su3.random_su3_near_unit(rng, vm.global_lattice.nsites, 0.2)
        umu.from_global(g)
    psi = vm.field(fermion())
    psi.gaussian(rng)
    d = DistributedWilsonDslash(vm, u)
    dest = vm.field(fermion())
    return vm, d, psi, dest


def test_fig6_executed_overlap(benchmark, vm_setup):
    vm, d, psi, dest = vm_setup
    t = benchmark(d.apply, dest, psi, True)
    t_no = d.apply(dest, psi, overlap=False)
    header("Figure 6 (executed, 2 virtual GPUs, 4^3x8 global)")
    report(f"overlap ON : modeled {t.total_s * 1e3:.3f} ms",
           f"overlap OFF: modeled {t_no.total_s * 1e3:.3f} ms",
           f"gain: {(t_no.total_s / t.total_s - 1) * 100:.1f}%")
    assert t.total_s < t_no.total_s


def test_fig6_modeled_sweep(benchmark):
    stats_sp = measure_dslash_kernels("f32")
    stats_dp = measure_dslash_kernels("f64")
    curves = benchmark(figure_6, LS, stats_sp, stats_dp)
    header("Figure 6 (modeled sweep): Dslash GFLOPS, 2x K20m ECC-on")
    rows = []
    for i, l in enumerate(LS):
        rows.append((l,
                     f"{curves['sp_overlap'][i][1]:.0f}",
                     f"{curves['sp_nooverlap'][i][1]:.0f}",
                     f"{curves['dp_overlap'][i][1]:.0f}",
                     f"{curves['dp_nooverlap'][i][1]:.0f}"))
    table(rows, ("L", "SP ovl", "SP no-ovl", "DP ovl", "DP no-ovl"))
    sp_ov, sp_no = dict(curves["sp_overlap"]), dict(curves["sp_nooverlap"])
    dp_ov, dp_no = dict(curves["dp_overlap"]), dict(curves["dp_nooverlap"])
    sp_gain = (sp_ov[40] / sp_no[40] - 1) * 100
    dp_gain = (dp_ov[40] / dp_no[40] - 1) * 100
    report(f"SP overlap gain at L=40: {sp_gain:.1f}%  (paper: 11%)",
           f"DP overlap gain at L=40: {dp_gain:.1f}%  (paper:  7%)",
           f"absolute: SP@40 = {sp_ov[40]:.0f} GFLOPS (paper 197), "
           f"DP@32 = {dp_ov[32]:.0f} GFLOPS (paper 90)")
    assert sp_ov[40] == pytest.approx(197, rel=0.06)
    assert dp_ov[32] == pytest.approx(90, rel=0.06)
    assert 5 <= sp_gain <= 20

"""Figure 5: sustained bandwidth vs volume, double precision, K20x
(ECC off).  The DP shoulder sits near L = 12 — earlier than SP's 16
because the wider words reach memory-level-parallelism saturation at
half the volume."""

import pytest

from repro.device.specs import K20X_ECC_OFF
from repro.perfmodel.kernelperf import figure_4_5

from _util import header, report, table

LS = [2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28]


def test_figure5_dp(benchmark):
    curves = benchmark(figure_4_5, "f64", LS)
    header("Figure 5: sustained GB/s vs V = L^4, DP, K20x ECC-off")
    rows = []
    for i, l in enumerate(LS):
        rows.append((l, *(f"{curves[k][i][1]:.1f}" for k in
                          ("lcm", "upsi", "spmat", "matvec", "clover"))))
    table(rows, ("L", "lcm", "upsi", "spmat", "matvec", "clover"))
    peak = K20X_ECC_OFF.peak_bandwidth / 1e9
    plateau = curves["upsi"][-1][1]
    report(f"plateau = {plateau:.1f} GB/s = {plateau / peak * 100:.1f}% "
           f"of peak (paper: 79%); shoulder near L = 12")
    assert 0.74 * peak <= plateau <= 0.80 * peak
    d = dict(curves["upsi"])
    assert d[12] >= 0.85 * d[28]

"""Lattice field containers: the user-facing data types.

A :class:`LatticeField` is the Python incarnation of a QDP++
``OLattice`` instance — a data-parallel container whose elements live
on the grid points of the lattice (paper Sec. II-B).  Fields carry
their SoA-packed host data and two coherence bits; all device
residency is managed by the software cache, never by user code.

Operators on fields build expression ASTs (:mod:`repro.core.expr`);
``assign``/``<<=`` evaluates an AST through the JIT pipeline.  Helpers
like :func:`latt_fermion` construct fields of the standard Table I
type aliases.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..core.context import Context, default_context
from ..core.expr import FieldRef, as_expr
from ..qdp.lattice import Lattice, Subset
from . import typesys
from .typesys import TypeSpec

_uid_counter = itertools.count(1)


class LatticeField:
    """A data-parallel lattice container (QDP++ ``OLattice``).

    Parameters
    ----------
    lattice:
        The (node-local) lattice geometry.
    spec:
        The nested type of the elements (see
        :mod:`repro.qdp.typesys`).
    context:
        The QDP-JIT context (device) this field belongs to; defaults
        to the global context.
    """

    def __init__(self, lattice: Lattice, spec: TypeSpec,
                 context: Context | None = None, name: str | None = None):
        if not spec.is_lattice:
            raise ValueError("LatticeField requires a lattice TypeSpec")
        self.lattice = lattice
        self.spec = spec
        self.context = context if context is not None else default_context()
        self.name = name or f"field{next(_uid_counter)}"
        self.uid = next(_uid_counter)
        self.host = np.zeros(spec.words_per_site * lattice.nsites,
                             dtype=spec.dtype)
        #: coherence bits, owned by the memory cache
        self.host_valid = True
        self.device_valid = False

    # -- geometry / sizes ---------------------------------------------------

    @property
    def nbytes(self) -> int:
        return self.host.nbytes

    @property
    def nsites(self) -> int:
        return self.lattice.nsites

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<LatticeField {self.name} {self.spec.describe()} "
                f"on {self.lattice!r}>")

    # -- expression interface ------------------------------------------------

    def ref(self) -> FieldRef:
        return FieldRef(self)

    def __add__(self, other):
        return self.ref() + other

    def __radd__(self, other):
        return as_expr(other, like=self.ref()) + self.ref()

    def __sub__(self, other):
        return self.ref() - other

    def __rsub__(self, other):
        return as_expr(other, like=self.ref()) - self.ref()

    def __mul__(self, other):
        return self.ref() * other

    def __rmul__(self, other):
        return as_expr(other, like=self.ref()) * self.ref()

    def __truediv__(self, other):
        return self.ref() / other

    def __neg__(self):
        return -self.ref()

    # -- assignment -------------------------------------------------------------

    def assign(self, expr, subset: Subset | None = None):
        """Evaluate ``self = expr`` (the data-parallel assignment).

        Returns the modeled kernel cost.  ``subset`` restricts the
        assignment to a site subset (QDP++ ``psi[rb[0]] = ...``).

        With deferred evaluation enabled (``REPRO_FUSION=on``, the
        default) the statement is queued and the returned cost is a
        lazy proxy: touching any of its attributes — or reading any
        field, or running a reduction — flushes the queue, possibly
        launching this statement fused with its neighbors.
        """
        from ..core.evaluator import evaluate

        return evaluate(self, as_expr(expr, like=self.ref()), subset=subset,
                        context=self.context)

    def __ilshift__(self, expr):
        """``psi <<= u * phi`` — assignment sugar for ``assign``."""
        self.assign(expr)
        return self

    # -- host access (triggers page-out, paper Sec. IV) --------------------

    def _ensure_host(self) -> None:
        self.context.field_cache.ensure_host(self)

    def _host_written(self) -> None:
        self.context.field_cache.invalidate_device(self)

    def to_numpy(self) -> np.ndarray:
        """The field as a complex (or real) array of shape
        ``(nsites, *spin_shape, *color_shape)``.

        Reading triggers a device-to-host page-out if the freshest
        copy is on the device; it is also a fusion barrier — every
        deferred statement launches before the bytes move.
        """
        self._ensure_host()
        spec = self.spec
        n = self.nsites
        # host layout: word w = (ir*IC + ic)*IS + is, fastest index site
        data = self.host.reshape(spec.reality_size, spec.color_size,
                                 spec.spin_size, n)
        if spec.is_complex:
            arr = data[0] + 1j * data[1]
        else:
            arr = data[0].copy()
        # (IC, IS, n) -> (n, IS, IC) -> (n, *spin, *color)
        arr = arr.transpose(2, 0, 1).transpose(0, 2, 1)
        return arr.reshape((n,) + spec.shape)

    def from_numpy(self, arr: np.ndarray) -> None:
        """Overwrite the field from an array shaped like
        :meth:`to_numpy`'s result."""
        spec = self.spec
        n = self.nsites
        want = (n,) + spec.shape
        arr = np.asarray(arr)
        if arr.shape != want:
            raise ValueError(f"expected shape {want}, got {arr.shape}")
        flat = arr.reshape(n, spec.spin_size, spec.color_size)
        flat = flat.transpose(2, 1, 0)  # (IC, IS, n)
        out = self.host.reshape(spec.reality_size, spec.color_size,
                                spec.spin_size, n)
        if spec.is_complex:
            out[0] = flat.real
            out[1] = flat.imag
        else:
            if np.iscomplexobj(arr):
                raise ValueError("cannot store complex data in a real field")
            out[0] = flat
        self._host_written()

    # -- initialization ---------------------------------------------------------

    def zero(self) -> None:
        self._ensure_host_writable()
        self.host[:] = 0

    def _ensure_host_writable(self) -> None:
        # we are about to overwrite everything: no page-out needed
        self.host_valid = True
        self._host_written()

    def gaussian(self, rng: np.random.Generator) -> None:
        """Fill with unit-variance Gaussian noise (QDP++ ``gaussian``).

        For complex fields each of re/im gets variance 1/2 so that
        ``<|z|^2> = 1`` per complex component.
        """
        self._ensure_host_writable()
        if self.spec.is_complex:
            scale = np.sqrt(0.5)
        else:
            scale = 1.0
        self.host[:] = rng.normal(0.0, scale, size=self.host.shape).astype(
            self.spec.dtype)

    def uniform(self, rng: np.random.Generator) -> None:
        """Fill with uniform [0, 1) noise (QDP++ ``random``)."""
        self._ensure_host_writable()
        self.host[:] = rng.random(self.host.shape).astype(self.spec.dtype)

    def copy(self) -> "LatticeField":
        out = LatticeField(self.lattice, self.spec, context=self.context,
                           name=f"{self.name}_copy")
        out.assign(self.ref())
        return out

    def astype(self, precision: str) -> "LatticeField":
        """Precision-converted copy (implicit promotion does the cvt)."""
        out = LatticeField(self.lattice, self.spec.with_precision(precision),
                           context=self.context)
        out.assign(self.ref())
        return out


class multi1d(list):
    """QDP++'s convenience 1-d array of objects (e.g. gauge links).

    A thin list subclass so the familiar ``u[mu]`` notation works and
    sizes are explicit.
    """

    def __init__(self, items):
        super().__init__(items)

    @property
    def size(self) -> int:
        return len(self)


# -- constructors for the Table I type aliases -------------------------------

def latt_fermion(lattice, precision="f64", context=None) -> LatticeField:
    """A LatticeFermion (spin-color vector)."""
    return LatticeField(lattice, typesys.fermion(precision), context)


def latt_color_matrix(lattice, precision="f64", context=None) -> LatticeField:
    """A LatticeColorMatrix (SU(3) link variable field)."""
    return LatticeField(lattice, typesys.color_matrix(precision), context)


def latt_spin_matrix(lattice, precision="f64", context=None) -> LatticeField:
    return LatticeField(lattice, typesys.spin_matrix(precision), context)


def latt_color_vector(lattice, precision="f64", context=None) -> LatticeField:
    return LatticeField(lattice, typesys.color_vector(precision), context)


def latt_propagator(lattice, precision="f64", context=None) -> LatticeField:
    return LatticeField(lattice, typesys.propagator(precision), context)


def latt_complex(lattice, precision="f64", context=None) -> LatticeField:
    return LatticeField(lattice, typesys.complex_field(precision), context)


def latt_real(lattice, precision="f64", context=None) -> LatticeField:
    return LatticeField(lattice, typesys.real_field(precision), context)


def latt_clover_diag(lattice, precision="f64", context=None) -> LatticeField:
    """The packed clover diagonal (Table I lower part, Adiag)."""
    return LatticeField(lattice, typesys.clover_diag(precision), context)


def latt_clover_tri(lattice, precision="f64", context=None) -> LatticeField:
    """The packed clover triangle (Table I lower part, Atria)."""
    return LatticeField(lattice, typesys.clover_triangular(precision), context)


def gauge_field(lattice, precision="f64", context=None) -> multi1d:
    """``multi1d<LatticeColorMatrix> u(Nd)`` — one link field per
    dimension, initialized to zero."""
    return multi1d([latt_color_matrix(lattice, precision, context)
                    for _ in range(lattice.nd)])

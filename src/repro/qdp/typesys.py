"""The QDP++ nested type system — re-export shim.

The implementation lives in :mod:`repro.typesys` (a top-level module)
so that :mod:`repro.core.expr` can import it without triggering this
package's ``__init__`` (which itself re-exports the expression
operators — a cycle otherwise).  The public home of these names is
here, ``repro.qdp.typesys``, matching the paper's layering.
"""

from ..typesys import *          # noqa: F401,F403
from ..typesys import (          # noqa: F401
    CLOVER_BLOCKS,
    CLOVER_DIAG,
    CLOVER_TRI,
    NC,
    NS,
    TypeSpec,
    clover_diag,
    clover_triangular,
    color_matrix,
    color_vector,
    complex_field,
    fermion,
    propagator,
    real_field,
    scalar_complex,
    scalar_real,
    spin_matrix,
    tri_index,
    tri_unindex,
)

"""Lattice geometry: the hypercubic grid, site indexing, shift maps,
and checkerboard subsets.

A :class:`Lattice` describes the (node-local) sub-grid of sites.  Site
ordering is lexicographic with the first dimension fastest.  Shift
maps are the gather tables implementing the QDP++ ``shift`` operation
(paper Sec. II-C): ``shift(phi, FORWARD, mu)(x) = phi(x + mu)``, with
periodic wrap-around on a single node.  In multi-node runs the wrap
crosses node boundaries; :mod:`repro.comm` builds the corresponding
face/recv maps from the same geometry primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

FORWARD = +1
BACKWARD = -1


@dataclass(frozen=True)
class Subset:
    """A subset of lattice sites (QDP++ ``Subset``).

    ``sites`` is the sorted array of member site indices; ``name``
    feeds kernel cache keys (kernels are specialized on whether they
    run on the full lattice or through a site table).
    """

    name: str
    sites: np.ndarray
    is_full: bool = False

    def __len__(self) -> int:
        return int(self.sites.size)

    def __eq__(self, other) -> bool:
        return (isinstance(other, Subset) and self.name == other.name
                and np.array_equal(self.sites, other.sites))

    def __hash__(self) -> int:
        return hash((self.name, self.sites.tobytes()))


class Lattice:
    """An Nd-dimensional hypercubic lattice (node-local sub-grid).

    Parameters
    ----------
    dims:
        Extent in each dimension, e.g. ``(8, 8, 8, 16)``.  All extents
        must be even so the even/odd checkerboarding is well defined
        and shift maps are parity-flipping.
    """

    def __init__(self, dims):
        dims = tuple(int(d) for d in dims)
        if not dims:
            raise ValueError("lattice needs at least one dimension")
        if any(d < 2 or d % 2 for d in dims):
            raise ValueError(f"all extents must be even and >= 2, got {dims}")
        self.dims = dims
        self.nd = len(dims)
        self.nsites = int(np.prod(dims))
        self._shift_maps: dict[tuple[int, int], np.ndarray] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Lattice{self.dims}"

    def __eq__(self, other) -> bool:
        return isinstance(other, Lattice) and self.dims == other.dims

    def __hash__(self) -> int:
        return hash(self.dims)

    # -- site indexing -------------------------------------------------

    @cached_property
    def coords(self) -> np.ndarray:
        """Array of shape (nsites, nd): coordinates of every site.

        Site index is lexicographic with dimension 0 fastest:
        ``index = x0 + dims[0]*(x1 + dims[1]*(x2 + ...))``.
        """
        idx = np.arange(self.nsites)
        out = np.empty((self.nsites, self.nd), dtype=np.int64)
        for mu, d in enumerate(self.dims):
            out[:, mu] = idx % d
            idx = idx // d
        return out

    def site_index(self, coords) -> int | np.ndarray:
        """Site index of coordinate(s); accepts (nd,) or (n, nd)."""
        coords = np.asarray(coords)
        single = coords.ndim == 1
        c = np.atleast_2d(coords) % np.array(self.dims)
        idx = np.zeros(c.shape[0], dtype=np.int64)
        stride = 1
        for mu, d in enumerate(self.dims):
            idx += c[:, mu] * stride
            stride *= d
        return int(idx[0]) if single else idx

    # -- parity / subsets ---------------------------------------------------

    @cached_property
    def parity(self) -> np.ndarray:
        """Checkerboard parity (0 = even, 1 = odd) of every site."""
        return (self.coords.sum(axis=1) % 2).astype(np.int32)

    @cached_property
    def all_sites(self) -> Subset:
        return Subset("all", np.arange(self.nsites, dtype=np.int32),
                      is_full=True)

    @cached_property
    def even(self) -> Subset:
        return Subset("even", np.nonzero(self.parity == 0)[0].astype(np.int32))

    @cached_property
    def odd(self) -> Subset:
        return Subset("odd", np.nonzero(self.parity == 1)[0].astype(np.int32))

    def checkerboard(self, cb: int) -> Subset:
        """Subset with parity ``cb`` (0 even / 1 odd)."""
        return self.even if cb == 0 else self.odd

    # -- shift maps -----------------------------------------------------------

    def shift_map(self, mu: int, sign: int) -> np.ndarray:
        """Gather table for ``shift(phi, sign, mu)``.

        ``T`` such that ``result[x] = phi[T[x]]``; for the forward
        shift ``T[x] = index(x + mu_hat)`` with periodic wrap.  Tables
        are int32 (they are uploaded to the device and read by the
        generated kernels).
        """
        if not 0 <= mu < self.nd:
            raise ValueError(f"bad direction mu={mu}")
        if sign not in (FORWARD, BACKWARD):
            raise ValueError(f"bad sign {sign}; use FORWARD/BACKWARD")
        key = (mu, sign)
        table = self._shift_maps.get(key)
        if table is None:
            c = self.coords.copy()
            c[:, mu] = (c[:, mu] + sign) % self.dims[mu]
            table = np.asarray(self.site_index(c), dtype=np.int32)
            self._shift_maps[key] = table
        return table

    def face_sites(self, mu: int, sign: int) -> np.ndarray:
        """Sites whose ``shift(, sign, mu)`` source wraps the boundary.

        For a forward shift these are the sites at the upper boundary
        ``x_mu = dims[mu]-1`` (their source ``x+mu`` wraps to 0); they
        are the sites that need off-node data in a multi-node run —
        the "face sites" of paper Sec. V.
        """
        if sign == FORWARD:
            sel = self.coords[:, mu] == self.dims[mu] - 1
        else:
            sel = self.coords[:, mu] == 0
        return np.nonzero(sel)[0].astype(np.int32)

    def inner_sites(self, directions) -> np.ndarray:
        """Sites not on any face of the given (mu, sign) list.

        The complement of the union of faces: the "inner sites" on
        which computation overlaps with communication (paper Sec. V).
        """
        mask = np.ones(self.nsites, dtype=bool)
        for mu, sign in directions:
            mask[self.face_sites(mu, sign)] = False
        return np.nonzero(mask)[0].astype(np.int32)

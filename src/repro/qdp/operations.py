"""Additional QDP++ interface operations.

Site access (``peekSite``/``pokeSite``), per-site reductions
(``localNorm2``, ``localInnerProduct``) and the color outer product.
The per-site reductions and the outer product are built on the
framework's user-defined-operation hook (:class:`CustomOpNode`) —
they mix or collapse index spaces in ways the level-wise operators
cannot express, exactly like the clover term of paper Sec. VI-A.
"""

from __future__ import annotations

import numpy as np

from ..core.expr import CustomOpNode, Expr, ExprTypeError, as_expr
from ..typesys import TypeSpec
from .fields import LatticeField


# -- site access (host operations; trigger the cache's page-out) ---------

def peek_site(field: LatticeField, coords) -> np.ndarray:
    """The value at one site (QDP++ ``peekSite``).

    A host-side access: pages the field out of device memory if the
    freshest copy lives there (paper Sec. IV).
    """
    site = field.lattice.site_index(tuple(coords))
    return field.to_numpy()[site].copy()


def poke_site(field: LatticeField, value, coords) -> None:
    """Overwrite one site (QDP++ ``pokeSite``): a CPU write, so the
    device copy is invalidated."""
    site = field.lattice.site_index(tuple(coords))
    arr = field.to_numpy()
    value = np.asarray(value)
    if value.shape != arr.shape[1:]:
        raise ValueError(
            f"expected per-site shape {arr.shape[1:]}, got {value.shape}")
    arr[site] = value
    field.from_numpy(arr)


# -- per-site reductions ------------------------------------------------------

def _local_norm2_gen(up, node, sidx, cidx, view, conjugate):
    (child,) = node.operands
    ops = up.ops
    acc = None
    for s in child.spec.spin_indices():
        for c in child.spec.color_indices():
            v = up.gen(child, s, c, view)
            term = ops.mul_conj(v, v)
            # |z|^2 is real: keep only the real part
            from ..core.codegen import CVal

            term = CVal(re=term.re) if not term.is_const else CVal(
                const=complex(abs(term.const)))
            acc = term if acc is None else ops.add(acc, term)
    return acc


def localNorm2(x) -> Expr:
    """Per-site sum of |component|^2 — a LatticeReal expression."""
    x = as_expr(x)
    spec = TypeSpec(spin=(), color=(), is_complex=False,
                    precision=x.spec.precision, is_lattice=True)
    return CustomOpNode("lnorm2", (x,), spec, _local_norm2_gen)


def _local_inner_gen(up, node, sidx, cidx, view, conjugate):
    a, b = node.operands
    ops = up.ops
    acc = None
    for s in a.spec.spin_indices():
        for c in a.spec.color_indices():
            va = up.gen(a, s, c, view)
            vb = up.gen(b, s, c, view)
            term = ops.mul_conj(va, vb)
            acc = term if acc is None else ops.add(acc, term)
    return ops.conj(acc) if conjugate else acc


def localInnerProduct(a, b) -> Expr:
    """Per-site <a|b> (conjugate left) — a LatticeComplex expression."""
    a = as_expr(a)
    b = as_expr(b)
    if a.spec.spin != b.spec.spin or a.spec.color != b.spec.color:
        raise ExprTypeError("localInnerProduct shape mismatch")
    spec = TypeSpec(spin=(), color=(), is_complex=True,
                    precision=a.spec.precision, is_lattice=True)
    return CustomOpNode("linner", (a, b), spec, _local_inner_gen)


# -- outer product ---------------------------------------------------------------

def _outer_gen(up, node, sidx, cidx, view, conjugate):
    a, b = node.operands
    i, j = cidx
    va = up.gen(a, sidx, (i,), view)
    vb = up.gen(b, sidx, (j,), view)
    v = up.ops.mul_conj(vb, va)      # a_i * conj(b_j)
    return up.ops.conj(v) if conjugate else v


def outerProduct(a, b) -> Expr:
    """Color outer product: ``out[i, j] = a[i] * conj(b[j])``.

    Defined for color vectors (spin-scalar); the building block of
    gauge-force outer products.
    """
    a = as_expr(a)
    b = as_expr(b)
    for x in (a, b):
        if x.spec.color != (3,) or x.spec.spin != ():
            raise ExprTypeError(
                "outerProduct is defined for LatticeColorVectors")
    spec = TypeSpec(spin=(), color=(3, 3), is_complex=True,
                    precision=a.spec.precision, is_lattice=True)
    return CustomOpNode("outer", (a, b), spec, _outer_gen)

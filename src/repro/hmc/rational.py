"""Rational approximations for the RHMC algorithm (paper ref. [14]).

RHMC represents fractional powers of the fermion matrix by an optimal
(or near-optimal) rational approximation in partial-fraction form

    x^(-alpha)  ~=  a_0 + sum_i  a_i / (x + s_i),     s_i > 0

which is applied with a *single* multi-shift CG solve.  Chroma uses
the Remez algorithm (AlgRemez); we compute the approximation with the
AAA algorithm (Nakatsukasa, Sete, Trefethen 2018), which converges to
near-minimax quality, is robust, and for Stieltjes-like functions such
as x^(-1/2) produces real negative poles — exactly the shift structure
multi-shift CG needs.  The test suite verifies the max relative error
over the approximation interval and the positivity of all shifts and
(for inverse roots) residues.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class RationalError(RuntimeError):
    pass


@dataclass(frozen=True)
class PartialFraction:
    """r(x) = a0 + sum_i res_i / (x + shift_i)."""

    a0: float
    residues: tuple[float, ...]
    shifts: tuple[float, ...]
    lo: float
    hi: float
    max_rel_error: float

    @property
    def degree(self) -> int:
        return len(self.residues)

    def __call__(self, x):
        x = np.asarray(x, dtype=float)
        out = np.full_like(x, self.a0)
        for r, s in zip(self.residues, self.shifts):
            out = out + r / (x + s)
        return out


def _aaa(zs: np.ndarray, fs: np.ndarray, tol: float, max_degree: int):
    """Core AAA iteration; returns (support z, support f, weights)."""
    zs = np.asarray(zs, dtype=float)
    fs = np.asarray(fs, dtype=float)
    mask = np.ones(zs.size, dtype=bool)
    r = np.full_like(fs, fs.mean())
    zj: list[float] = []
    fj: list[float] = []
    w = None
    for _ in range(max_degree):
        j = int(np.argmax(np.where(mask, np.abs(fs - r), -np.inf)))
        zj.append(zs[j])
        fj.append(fs[j])
        mask[j] = False
        zrest = zs[mask]
        frest = fs[mask]
        # Loewner matrix
        c = 1.0 / (zrest[:, None] - np.array(zj)[None, :])
        a = frest[:, None] * c - c * np.array(fj)[None, :]
        _, _, vh = np.linalg.svd(a, full_matrices=False)
        w = vh[-1].conj()
        num = c @ (w * np.array(fj))
        den = c @ w
        r = fs.copy()
        r[mask] = num / den
        err = np.max(np.abs(fs[mask] - r[mask]) / np.abs(fs[mask]))
        if err < tol:
            break
    return np.array(zj), np.array(fj), np.asarray(w)


def _poles_residues(zj, fj, w):
    """Poles/residues of the barycentric rational (standard GEP)."""
    m = zj.size
    b = np.eye(m + 1)
    b[0, 0] = 0.0
    e = np.zeros((m + 1, m + 1))
    e[0, 1:] = w
    e[1:, 0] = 1.0
    e[1:, 1:] = np.diag(zj)
    # generalized eigenvalue problem E v = lambda B v; the two
    # infinite eigenvalues (rank-deficient B) are discarded
    from scipy.linalg import eig as geig

    vals = geig(e, b, right=False)
    poles = vals[np.isfinite(vals)]
    # residues by perturbation: res = N(p)/D'(p)
    def num(z):
        return np.sum(w * fj / (z - zj))

    def den_prime(z):
        return -np.sum(w / (z - zj) ** 2)

    residues = np.array([num(p) / den_prime(p) for p in poles])
    return poles, residues


def rational_inverse_power(alpha: float, lo: float, hi: float,
                           degree: int = 12, tol: float = 1e-12,
                           n_samples: int = 4000) -> PartialFraction:
    """Near-minimax rational approximation of ``x^(-alpha)`` on
    [lo, hi] in partial-fraction form.

    ``alpha`` may be negative, in which case a positive power (e.g.
    x^{+1/4} for the RHMC heatbath) is approximated.  Raises
    :class:`RationalError` if the computed poles are not real and
    negative (shifts must be positive for multi-shift CG).
    """
    if not 0 < lo < hi:
        raise ValueError("need 0 < lo < hi")
    # geometric sampling resolves the divergence toward x -> 0
    zs = np.geomspace(lo, hi, n_samples)
    fs = zs ** (-alpha)
    zj, fj, w = _aaa(zs, fs, tol=tol, max_degree=degree)
    poles, residues = _poles_residues(zj, fj, w)
    if np.abs(poles.imag).max(initial=0.0) > 1e-8 * max(
            1.0, np.abs(poles.real).max(initial=1.0)):
        raise RationalError(
            f"AAA produced complex poles for x^(-{alpha}) on "
            f"[{lo:g}, {hi:g}]; increase degree or samples")
    poles = poles.real
    if np.any(poles >= 0):
        raise RationalError("AAA produced non-negative poles")
    residues = residues.real
    a0 = float(np.sum(w * fj) / np.sum(w))   # r at infinity
    pf = PartialFraction(
        a0=a0,
        residues=tuple(float(r) for r in residues),
        shifts=tuple(float(-p) for p in poles),
        lo=lo, hi=hi, max_rel_error=0.0)
    # measure the achieved error on a fine grid
    xs = np.geomspace(lo, hi, 20001)
    rel = np.abs(pf(xs) - xs ** (-alpha)) / xs ** (-alpha)
    return PartialFraction(a0=pf.a0, residues=pf.residues, shifts=pf.shifts,
                           lo=lo, hi=hi,
                           max_rel_error=float(rel.max()))


def inv_sqrt(lo: float, hi: float, degree: int = 12,
             tol: float = 1e-12) -> PartialFraction:
    """x^{-1/2}: the RHMC action/force approximation."""
    return rational_inverse_power(0.5, lo, hi, degree=degree, tol=tol)


def fourth_root(lo: float, hi: float, degree: int = 12,
                tol: float = 1e-12) -> PartialFraction:
    """x^{+1/4}: the RHMC pseudofermion heatbath approximation."""
    return rational_inverse_power(-0.25, lo, hi, degree=degree, tol=tol)

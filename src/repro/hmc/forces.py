"""Molecular-dynamics forces for the HMC monomials.

Conventions.  The MD Hamiltonian is ``H = sum_l tr P_l^2 + S(U)``
with P traceless Hermitian; links evolve as ``dU/dt = i P U`` and
momenta as ``dP/dt = -F`` where the force satisfies

    d S(exp(i t Q) U) / dt |_{t=0} = 2 tr(Q F)

for every algebra direction Q.  All force routines in this module are
validated against that identity by finite differences in the test
suite — signs and factors here are not folklore, they are tested.

Solves run through the QDP-JIT solver stack; the final outer-product
assembly is host-side NumPy (as Chroma's force assembly is a
once-per-step operation, unlike the solver iterations it feeds on).
"""

from __future__ import annotations

import numpy as np

from ..qdp.fields import multi1d
from ..qcd.gamma import projector
from ..qcd.gauge import staple
from ..qcd.su3 import expm_i_hermitian


def hermitian_traceless(m: np.ndarray) -> np.ndarray:
    """Project onto the traceless Hermitian part (algebra valued)."""
    h = (m + np.conj(np.swapaxes(m, -1, -2))) / 2
    tr = np.einsum("...ii->...", h) / 3.0
    out = np.array(h, copy=True)
    for i in range(3):
        out[..., i, i] -= tr
    return out


def kinetic_energy(p: np.ndarray) -> float:
    """sum tr P^2 over all links."""
    return float(np.einsum("mnij,mnji->", p, p).real)


def gaussian_momenta(rng: np.random.Generator, nd: int, nsites: int
                     ) -> np.ndarray:
    """Heatbath momenta: <tr P^2> = 4 per link (8 generators x 1/2)."""
    from ..qcd.su3 import random_hermitian_traceless

    flat = random_hermitian_traceless(rng, nd * nsites)
    return flat.reshape(nd, nsites, 3, 3)


def update_links(u: multi1d, p: np.ndarray, dt: float) -> None:
    """U_mu(x) <- exp(i dt P_mu(x)) U_mu(x) (exactly unitary)."""
    for mu, umu in enumerate(u):
        rot = expm_i_hermitian(dt * p[mu])
        unew = np.einsum("nab,nbc->nac", rot, umu.to_numpy())
        umu.from_numpy(unew)


# -- gauge (Wilson plaquette) force -----------------------------------------

def wilson_gauge_action(u: multi1d, beta: float) -> float:
    """S_g = beta * sum_p (1 - 1/3 Re tr U_p)."""
    from ..qcd.gauge import plaquette

    lattice = u[0].lattice
    nd = lattice.nd
    nplanes = nd * (nd - 1) // 2
    plaq = plaquette(u, lattice)
    return beta * nplanes * lattice.nsites * (1.0 - plaq)


def wilson_gauge_force(u: multi1d, beta: float) -> np.ndarray:
    """Force of the Wilson plaquette action.

    With V the staple sum, ``S = const - beta/3 Re tr(U_mu(x) V_mu(x))``
    per link, so ``dS/dt = (beta/3) tr(Q (W - W+)/(2i))`` and

        F_mu(x) = (beta/6) * TH[ (W - W+) / (2i) ],  W = U_mu(x) V_mu(x)

    (TH = traceless Hermitian part).  The sign/factor is pinned by the
    finite-difference identity in the module docstring.
    """
    lattice = u[0].lattice
    nd = lattice.nd
    out = np.empty((nd, lattice.nsites, 3, 3), dtype=complex)
    for mu in range(nd):
        v = staple(u, mu).to_numpy()
        w = np.einsum("nab,nbc->nac", u[mu].to_numpy(), v)
        m = (w - np.conj(np.swapaxes(w, -1, -2))) / 2j
        out[mu] = (beta / 6.0) * hermitian_traceless(m)
    return out


# -- Wilson fermion hopping-term derivative ----------------------------------

def dslash_outer_force(u: multi1d, x_arr: np.ndarray, y_arr: np.ndarray,
                       coeffs=None) -> np.ndarray:
    """The link derivative common to all Wilson fermion forces.

    Given spinor batches X and Y (shape (n, 4, 3)), returns the
    algebra-valued field G with

        d/dt [ Y+ D(exp(itQ)U) X ]_Re-pair  ->  assembled so that
        d/dt [ -(Y+ dD X + X+ dD+ Y) ] = 2 tr(Q G)   per link,

    i.e. G is the force contribution of ``-(Y+ D X + c.c.)`` *before*
    any kappa prefactor.  Callers scale by their couplings.
    """
    lattice = u[0].lattice
    nd = lattice.nd
    n = lattice.nsites
    out = np.empty((nd, n, 3, 3), dtype=complex)
    for mu in range(nd):
        umu = u[mu].to_numpy()
        tf = lattice.shift_map(mu, +1)
        p_minus = projector(mu, +1)     # 1 - gamma_mu (forward hop)
        p_plus = projector(mu, -1)      # 1 + gamma_mu (backward hop)
        c = 1.0 if coeffs is None else coeffs[mu]
        # A1[a,b] = sum_s (U X(x+mu))_{s,a} conj((P- Y(x))_{s,b})
        ux = np.einsum("nab,nsb->nsa", umu, x_arr[tf])
        pmy = np.einsum("st,ntc->nsc", p_minus, y_arr)
        a1 = np.einsum("nsa,nsb->nab", ux, pmy.conj())
        # A2[a,b] = sum_s X(x)_{s,a} conj((U P+ Y(x+mu))_{s,b})
        upy = np.einsum("nab,st,ntb->nsa", umu, p_plus, y_arr[tf])
        a2 = np.einsum("nsa,nsb->nab", x_arr, upy.conj())
        m = a1 - a2
        # force of -(Y+ dD X + h.c.): the TH part of (m - m+)/(2i)
        out[mu] = c * hermitian_traceless((m - np.conj(
            np.swapaxes(m, -1, -2))) / 2j)
    return out

"""Gauge-configuration checkpointing.

Production HMC streams (paper Sec. VIII-D: thousands of trajectories
across many jobs) live and die by configuration I/O.  The format here
is a self-describing NPZ with a NERSC-style header (dimensions,
plaquette, link trace, checksum); loads validate the stored plaquette
against a recomputation — the classic guard against corrupted or
mislabeled ensembles.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..qdp.fields import latt_color_matrix, multi1d
from ..qdp.lattice import Lattice

FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    pass


@dataclass(frozen=True)
class ConfigHeader:
    """NERSC-style metadata stored alongside the links."""

    dims: tuple[int, ...]
    plaquette: float
    link_trace: float
    trajectory: int
    checksum: int
    format_version: int = FORMAT_VERSION


def _checksum(links: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(links).tobytes())


def _link_trace(links: np.ndarray) -> float:
    """Mean Re tr U / 3 over all links — the NERSC header quantity."""
    return float(np.einsum("mnii->", links).real
                 / (links.shape[0] * links.shape[1] * 3))


def save_config(path, u: multi1d, trajectory: int = 0) -> ConfigHeader:
    """Write the configuration and its header; returns the header."""
    from ..qcd.gauge import plaquette

    lattice = u[0].lattice
    links = np.stack([f.to_numpy() for f in u])   # (nd, n, 3, 3)
    header = ConfigHeader(
        dims=lattice.dims,
        plaquette=plaquette(u, lattice),
        link_trace=_link_trace(links),
        trajectory=int(trajectory),
        checksum=_checksum(links),
    )
    # Atomic write: a job killed mid-save must never leave a truncated
    # file under the final name (the stream restarts from it).  Write
    # to a temp file in the same directory, fsync, then os.replace.
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(
                fh, links=links,
                header=np.frombuffer(
                    json.dumps({
                        "dims": list(header.dims),
                        "plaquette": header.plaquette,
                        "link_trace": header.link_trace,
                        "trajectory": header.trajectory,
                        "checksum": header.checksum,
                        "format_version": header.format_version,
                    }).encode(), dtype=np.uint8))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return header


class CheckpointManager:
    """Keep-last-N on-disk retention over :func:`save_config`.

    A production stream checkpoints every few trajectories and prunes
    old files; on restart it must tolerate a torn final write (the
    job died mid-save before the atomic rename, or the filesystem
    corrupted a block) by falling back to the newest *loadable*
    configuration instead of dying on the first bad one.
    """

    def __init__(self, directory, prefix: str = "cfg", keep: int = 3):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.prefix = prefix
        self.keep = keep

    def _path(self, trajectory: int) -> Path:
        return self.directory / f"{self.prefix}_{trajectory:06d}.npz"

    def paths(self) -> list[Path]:
        """Managed checkpoint files, oldest first."""
        return sorted(self.directory.glob(f"{self.prefix}_*.npz"))

    def save(self, u: multi1d, trajectory: int) -> ConfigHeader:
        """Checkpoint ``u`` and prune beyond the newest ``keep``."""
        header = save_config(self._path(trajectory), u, trajectory)
        existing = self.paths()
        for stale in existing[:max(0, len(existing) - self.keep)]:
            stale.unlink()
        return header

    def load_latest(self, context=None, precision: str = "f64"
                    ) -> tuple[multi1d, ConfigHeader, list[Path]]:
        """The newest loadable configuration.

        Tries newest-first; files that fail to load (truncated,
        checksum or plaquette mismatch) are *skipped and reported* —
        returned as the third element and announced with a warning —
        rather than aborting the restart.  Raises
        :class:`CheckpointError` only when nothing loads.
        """
        import warnings

        skipped: list[Path] = []
        for path in reversed(self.paths()):
            try:
                u, header = load_config(path, context=context,
                                        precision=precision)
            except CheckpointError as e:
                skipped.append(path)
                warnings.warn(f"skipping corrupt checkpoint: {e}",
                              RuntimeWarning, stacklevel=2)
                continue
            return u, header, skipped
        raise CheckpointError(
            f"no loadable checkpoint under {self.directory} "
            f"(prefix {self.prefix!r}; {len(skipped)} corrupt)")


class TrajectorySnapshotStore:
    """In-memory keep-last-N snapshots of a running HMC stream.

    The resilience layer's HMC leg: a rank kill mid-trajectory loses
    the in-flight update, so a resilient campaign snapshots
    ``(links, rng state)`` after each trajectory and replays from the
    newest CRC32-validated snapshot (:mod:`repro.resilience.campaign`).
    Restores are exact — links bytes and generator state — so the
    replayed stream is bitwise identical to an uninterrupted one.
    """

    def __init__(self, keep: int = 2):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.keep = keep
        #: (trajectory, [per-mu links], rng state dict, crc)
        self._snapshots: list[tuple] = []

    def __len__(self) -> int:
        return len(self._snapshots)

    def snapshot(self, u: multi1d, rng: np.random.Generator,
                 trajectory: int) -> None:
        links = [umu.to_numpy() for umu in u]
        crc = zlib.crc32(b"".join(
            np.ascontiguousarray(a).tobytes() for a in links))
        import copy

        state = copy.deepcopy(rng.bit_generator.state)
        self._snapshots.append((int(trajectory), links, state, crc))
        del self._snapshots[:-self.keep]

    @property
    def latest_trajectory(self) -> int | None:
        return self._snapshots[-1][0] if self._snapshots else None

    def restore(self, u: multi1d, rng: np.random.Generator) -> int:
        """Write the newest snapshot back into ``u`` and ``rng``;
        returns its trajectory number."""
        import copy

        if not self._snapshots:
            raise CheckpointError("no trajectory snapshot to restore")
        trajectory, links, state, crc = self._snapshots[-1]
        got = zlib.crc32(b"".join(
            np.ascontiguousarray(a).tobytes() for a in links))
        if got != crc:
            raise CheckpointError(
                f"trajectory {trajectory} snapshot failed CRC32 "
                f"validation")
        for umu, arr in zip(u, links):
            umu.from_numpy(arr)
        rng.bit_generator.state = copy.deepcopy(state)
        return trajectory


def load_config(path, context=None, precision: str = "f64",
                validate: bool = True) -> tuple[multi1d, ConfigHeader]:
    """Read a configuration; validates checksum and plaquette."""
    path = Path(path)
    if path.suffix != ".npz" and not path.exists():
        path = path.with_suffix(path.suffix + ".npz")
    try:
        with np.load(path) as data:
            links = data["links"]
            meta = json.loads(bytes(data["header"].tobytes()).decode())
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as e:
        raise CheckpointError(
            f"{path}: unreadable or truncated checkpoint ({e})") from e
    if meta.get("format_version") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported format version {meta.get('format_version')}")
    header = ConfigHeader(
        dims=tuple(meta["dims"]), plaquette=meta["plaquette"],
        link_trace=meta["link_trace"], trajectory=meta["trajectory"],
        checksum=meta["checksum"])
    if validate and _checksum(links) != header.checksum:
        raise CheckpointError(f"{path}: checksum mismatch (corrupt file)")
    lattice = Lattice(header.dims)
    u = multi1d([latt_color_matrix(lattice, precision, context)
                 for _ in range(lattice.nd)])
    for mu, f in enumerate(u):
        f.from_numpy(links[mu])
    if validate:
        from ..qcd.gauge import plaquette

        recomputed = plaquette(u, lattice)
        if abs(recomputed - header.plaquette) > 1e-10:
            raise CheckpointError(
                f"{path}: plaquette mismatch — header "
                f"{header.plaquette:.12f}, recomputed {recomputed:.12f}")
    return u, header

"""Molecular-dynamics integrators: leapfrog, Omelyan, multi-timescale.

The trajectory is integrated with a nested (Sexton-Weingarten) scheme:
each level carries a group of monomials and a substep count; cheap,
stiff forces (gauge) sit on the innermost, finest timescale while
expensive fermion forces are evaluated rarely — the structure Chroma
uses for the paper's production trajectories.

All schemes are exactly reversible and area preserving up to rounding
(the test suite integrates forward and backward and checks the fields
return, and verifies dH -> 0 with the expected dt^2 power).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..qdp.fields import multi1d
from .forces import update_links
from .monomials import Monomial

#: The Omelyan/2MN coefficient minimizing the 2nd-order error norm.
OMELYAN_LAMBDA = 0.1931833275037836


@dataclass
class Level:
    """One timescale: its monomials, substep count and scheme."""

    monomials: list[Monomial]
    n_steps: int
    scheme: str = "leapfrog"      # "leapfrog" | "omelyan"

    def __post_init__(self):
        if self.n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if self.scheme not in ("leapfrog", "omelyan"):
            raise ValueError(f"unknown scheme {self.scheme!r}")


@dataclass
class ForceStats:
    """Per-level force-call accounting (feeds the performance model)."""

    calls: dict = field(default_factory=dict)

    def bump(self, level: int, n: int = 1) -> None:
        self.calls[level] = self.calls.get(level, 0) + n


class MultiTimescaleIntegrator:
    """Nested leapfrog/Omelyan over a list of levels (outermost first).

    The innermost level's "drift" is the exact link update
    ``U <- exp(i dt P) U``; every outer level's drift is a full
    integration of the next level over the substep.
    """

    def __init__(self, levels: list[Level]):
        if not levels:
            raise ValueError("need at least one level")
        self.levels = levels
        self.stats = ForceStats()

    # -- building blocks ------------------------------------------------

    def _kick(self, li: int, u: multi1d, p: np.ndarray, dt: float) -> None:
        total = None
        for mono in self.levels[li].monomials:
            f = mono.force(u)
            total = f if total is None else total + f
        self.stats.bump(li)
        if total is not None:
            p -= dt * total

    def _drift(self, li: int, u: multi1d, p: np.ndarray, dt: float) -> None:
        if li + 1 < len(self.levels):
            self._integrate_level(li + 1, u, p, dt)
        else:
            update_links(u, p, dt)

    # -- schemes ------------------------------------------------------------

    def _integrate_level(self, li: int, u: multi1d, p: np.ndarray,
                         tau: float) -> None:
        lev = self.levels[li]
        h = tau / lev.n_steps
        if lev.scheme == "leapfrog":
            # kick h/2 (drift h kick h)^(n-1) drift h kick h/2, fused
            self._kick(li, u, p, h / 2)
            for i in range(lev.n_steps):
                self._drift(li, u, p, h)
                self._kick(li, u, p, h if i < lev.n_steps - 1 else h / 2)
        else:  # omelyan 2MN
            lam = OMELYAN_LAMBDA
            for i in range(lev.n_steps):
                self._kick(li, u, p, lam * h)
                self._drift(li, u, p, h / 2)
                self._kick(li, u, p, (1 - 2 * lam) * h)
                self._drift(li, u, p, h / 2)
                self._kick(li, u, p, lam * h)

    def run(self, u: multi1d, p: np.ndarray, tau: float) -> None:
        """Integrate the full trajectory of length tau in place."""
        self._integrate_level(0, u, p, tau)

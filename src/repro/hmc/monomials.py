"""Action monomials for HMC/RHMC gauge generation.

Chroma decomposes the molecular-dynamics action into *monomials*
(gauge action, two-flavor pseudofermion, Hasenbusch mass-
preconditioned ratios, one-flavor rational terms) that can be placed
on different timescales of the integrator.  The paper's production
run (Fig. 7) is exactly such a composition: 2+1 flavors with mass
preconditioning [13] and the rational approximation [14] for the
strange quark.

Every monomial implements ``refresh`` (pseudofermion heatbath),
``action`` and ``force``; all force conventions are finite-difference
tested (see :mod:`repro.hmc.forces`).
"""

from __future__ import annotations

import numpy as np

from ..core.reduction import innerProduct, norm2
from ..qdp.fields import LatticeField, latt_fermion, multi1d
from ..qcd.solver import bicgstab, cg, multishift_cg
from ..qcd.wilson import WilsonOperator, WilsonParams
from .forces import dslash_outer_force, wilson_gauge_action, wilson_gauge_force
from .rational import PartialFraction


class Monomial:
    """Base class: a term of the MD action."""

    name = "monomial"

    def refresh(self, u: multi1d, rng: np.random.Generator) -> None:
        """Pseudofermion heatbath at the start of a trajectory."""

    def action(self, u: multi1d) -> float:
        raise NotImplementedError

    def force(self, u: multi1d) -> np.ndarray:
        raise NotImplementedError


class GaugeMonomial(Monomial):
    """The Wilson plaquette gauge action."""

    name = "gauge"

    def __init__(self, beta: float):
        self.beta = float(beta)

    def action(self, u: multi1d) -> float:
        return wilson_gauge_action(u, self.beta)

    def force(self, u: multi1d) -> np.ndarray:
        return wilson_gauge_force(u, self.beta)


class TwoFlavorWilsonMonomial(Monomial):
    """S = phi+ (M+ M)^{-1} phi — two degenerate Wilson flavors."""

    name = "two_flavor"

    def __init__(self, params: WilsonParams, tol: float = 1e-9,
                 max_iter: int = 2000):
        self.params = params
        self.tol = tol
        self.max_iter = max_iter
        self.phi: LatticeField | None = None
        self.solve_iterations = 0

    def _op(self, u: multi1d) -> WilsonOperator:
        return WilsonOperator(u, self.params)

    def refresh(self, u: multi1d, rng: np.random.Generator) -> None:
        m = self._op(u)
        eta = m.new_fermion()
        eta.gaussian(rng)
        self.phi = m.new_fermion()
        m.apply_dagger(self.phi, eta)     # phi = M+ eta  =>  S = |eta|^2

    def _solve_x(self, u: multi1d) -> tuple[LatticeField, WilsonOperator]:
        m = self._op(u)
        x = m.new_fermion()
        res = cg(lambda d, s: m.apply_mdagm(d, s), x, self.phi,
                 tol=self.tol, max_iter=self.max_iter)
        if not res.converged:
            raise RuntimeError(
                f"two-flavor CG failed: residual {res.residual_norm:g}")
        self.solve_iterations += res.iterations
        return x, m

    def action(self, u: multi1d) -> float:
        x, _ = self._solve_x(u)
        return innerProduct(self.phi, x).real

    def force(self, u: multi1d) -> np.ndarray:
        x, m = self._solve_x(u)
        y = m.new_fermion()
        m.apply(y, x)
        g = dslash_outer_force(u, x.to_numpy(), y.to_numpy(),
                               coeffs=self.params.hop_coeffs(u[0].lattice.nd))
        return -self.params.kappa * g


class HasenbuschRatioMonomial(Monomial):
    """Mass preconditioning [13]: S = phi+ M2 (M1+ M1)^{-1} M2+ phi.

    M1 is the light (target) operator, M2 the heavier preconditioner;
    the ratio has a mild force, letting the expensive light solves sit
    on a coarser timescale.  (The heavy determinant is supplied by a
    separate TwoFlavor monomial with M2's mass.)
    """

    name = "hasenbusch"

    def __init__(self, light: WilsonParams, heavy: WilsonParams,
                 tol: float = 1e-9, max_iter: int = 2000):
        self.light = light
        self.heavy = heavy
        self.tol = tol
        self.max_iter = max_iter
        self.phi: LatticeField | None = None
        self.solve_iterations = 0

    def refresh(self, u: multi1d, rng: np.random.Generator) -> None:
        m1 = WilsonOperator(u, self.light)
        m2 = WilsonOperator(u, self.heavy)
        eta = m1.new_fermion()
        eta.gaussian(rng)
        chi = m1.new_fermion()
        m1.apply_dagger(chi, eta)          # chi = M1+ eta
        self.phi = m1.new_fermion()
        # solve M2+ phi = M1+ eta  (heavy operator: cheap)
        res = bicgstab(lambda d, s: m2.apply_dagger(d, s), self.phi, chi,
                       tol=self.tol, max_iter=self.max_iter)
        if not res.converged:
            raise RuntimeError("Hasenbusch heatbath solve failed")

    def _chi_x(self, u: multi1d):
        m1 = WilsonOperator(u, self.light)
        m2 = WilsonOperator(u, self.heavy)
        chi = m1.new_fermion()
        m2.apply_dagger(chi, self.phi)     # chi = M2+ phi
        x = m1.new_fermion()
        res = cg(lambda d, s: m1.apply_mdagm(d, s), x, chi,
                 tol=self.tol, max_iter=self.max_iter)
        if not res.converged:
            raise RuntimeError("Hasenbusch light solve failed")
        self.solve_iterations += res.iterations
        return chi, x, m1, m2

    def action(self, u: multi1d) -> float:
        chi, x, _, _ = self._chi_x(u)
        return innerProduct(chi, x).real

    def force(self, u: multi1d) -> np.ndarray:
        chi, x, m1, m2 = self._chi_x(u)
        y = m1.new_fermion()
        m1.apply(y, x)
        nd = u[0].lattice.nd
        g1 = dslash_outer_force(u, x.to_numpy(), y.to_numpy(),
                                coeffs=self.light.hop_coeffs(nd))
        # variation of chi = M2+ phi: pattern 2Re(phi+ dD x)
        g2 = dslash_outer_force(u, x.to_numpy(), self.phi.to_numpy(),
                                coeffs=self.heavy.hop_coeffs(nd))
        return -self.light.kappa * g1 + self.heavy.kappa * g2


class OneFlavorRationalMonomial(Monomial):
    """RHMC one-flavor term [14]: S = phi+ (M+ M)^{-1/2} phi.

    The inverse square root is the partial-fraction rational
    approximation applied with a single multi-shift CG; the heatbath
    uses a rational x^{+1/4}.  This is the strange quark of the
    paper's 2+1-flavor production runs.
    """

    name = "one_flavor_rational"

    def __init__(self, params: WilsonParams, action_pf: PartialFraction,
                 heatbath_pf: PartialFraction, tol: float = 1e-9,
                 max_iter: int = 2000):
        self.params = params
        self.action_pf = action_pf
        self.heatbath_pf = heatbath_pf
        self.tol = tol
        self.max_iter = max_iter
        self.phi: LatticeField | None = None
        self.solve_iterations = 0

    def _apply_rational(self, u: multi1d, pf: PartialFraction,
                        src: LatticeField) -> LatticeField:
        """dest = (a0 + sum_i a_i (M+M + s_i)^{-1}) src."""
        m = WilsonOperator(u, self.params)
        xs = [m.new_fermion() for _ in pf.shifts]
        res = multishift_cg(lambda d, s: m.apply_mdagm(d, s), xs, src,
                            list(pf.shifts), tol=self.tol,
                            max_iter=self.max_iter)
        if not res.converged:
            raise RuntimeError("rational multishift solve failed")
        self.solve_iterations += res.iterations
        out = m.new_fermion()
        expr = pf.a0 * src.ref()
        for a_i, x_i in zip(pf.residues, xs):
            expr = expr + a_i * x_i
        out.assign(expr)
        return out

    def refresh(self, u: multi1d, rng: np.random.Generator) -> None:
        eta = latt_fermion(u[0].lattice, "f64", u[0].context)
        eta.gaussian(rng)
        # phi = (M+M)^{1/4} eta  =>  S = eta+ (M+M)^{1/4 * 2 * -1/2} ...
        self.phi = self._apply_rational(u, self.heatbath_pf, eta)

    def action(self, u: multi1d) -> float:
        m = WilsonOperator(u, self.params)
        xs = [m.new_fermion() for _ in self.action_pf.shifts]
        res = multishift_cg(lambda d, s: m.apply_mdagm(d, s), xs, self.phi,
                            list(self.action_pf.shifts), tol=self.tol,
                            max_iter=self.max_iter)
        if not res.converged:
            raise RuntimeError("rational action solve failed")
        self.solve_iterations += res.iterations
        s = self.action_pf.a0 * norm2(self.phi)
        for a_i, x_i in zip(self.action_pf.residues, xs):
            s += a_i * innerProduct(self.phi, x_i).real
        return s

    def force(self, u: multi1d) -> np.ndarray:
        m = WilsonOperator(u, self.params)
        pf = self.action_pf
        xs = [m.new_fermion() for _ in pf.shifts]
        res = multishift_cg(lambda d, s: m.apply_mdagm(d, s), xs, self.phi,
                            list(pf.shifts), tol=self.tol,
                            max_iter=self.max_iter)
        if not res.converged:
            raise RuntimeError("rational force solve failed")
        self.solve_iterations += res.iterations
        nd = u[0].lattice.nd
        lattice = u[0].lattice
        total = np.zeros((nd, lattice.nsites, 3, 3), dtype=complex)
        y = m.new_fermion()
        for a_i, x_i in zip(pf.residues, xs):
            m.apply(y, x_i)
            g = dslash_outer_force(u, x_i.to_numpy(), y.to_numpy(),
                                   coeffs=self.params.hop_coeffs(nd))
            total += a_i * (-self.params.kappa) * g
        return total

"""The Hybrid Monte Carlo driver (the paper's gauge-generation
application, Sec. VIII-D).

A trajectory: refresh momenta and pseudofermions, measure H, integrate
the MD equations, measure H again, Metropolis accept/reject on
exp(-dH), reunitarize.  Everything below the force/action calls runs
through the QDP-JIT expression pipeline; the driver additionally
records the operation counts (solver iterations, kernel launches,
modeled device seconds) that feed the strong-scaling model of
Figs. 7/8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..qdp.fields import multi1d
from ..qcd.su3 import reunitarize, unitarity_defect
from .forces import gaussian_momenta, kinetic_energy
from .integrator import MultiTimescaleIntegrator
from .monomials import Monomial


@dataclass
class TrajectoryResult:
    """Outcome and accounting of one HMC trajectory."""

    accepted: bool
    delta_h: float
    h_old: float
    h_new: float
    plaquette: float
    accept_probability: float
    solver_iterations: int = 0
    kernels_launched: int = 0
    modeled_device_seconds: float = 0.0
    force_calls: dict = field(default_factory=dict)


class HMC:
    """Hybrid Monte Carlo over a multi-timescale integrator.

    Parameters
    ----------
    u:
        The gauge configuration (updated in place).
    integrator:
        The nested MD integrator; its levels own the monomials.
    rng:
        Random generator (momenta, heatbaths, Metropolis).
    """

    def __init__(self, u: multi1d, integrator: MultiTimescaleIntegrator,
                 rng: np.random.Generator):
        self.u = u
        self.integrator = integrator
        self.rng = rng
        self.history: list[TrajectoryResult] = []

    @property
    def monomials(self) -> list[Monomial]:
        return [m for lev in self.integrator.levels for m in lev.monomials]

    def _total_action(self) -> float:
        return sum(m.action(self.u) for m in self.monomials)

    def _device_stats(self):
        ctx = self.u[0].context
        return (ctx.device.stats.kernel_launches,
                ctx.device.stats.modeled_kernel_time_s)

    def trajectory(self, tau: float,
                   always_accept: bool = False) -> TrajectoryResult:
        """Run one trajectory of MD time ``tau`` (updates ``u``)."""
        lattice = self.u[0].lattice
        nd = lattice.nd
        k0_launch, k0_time = self._device_stats()
        it0 = sum(getattr(m, "solve_iterations", 0) for m in self.monomials)

        p = gaussian_momenta(self.rng, nd, lattice.nsites)
        for m in self.monomials:
            m.refresh(self.u, self.rng)
        h_old = kinetic_energy(p) + self._total_action()

        saved = [umu.to_numpy().copy() for umu in self.u]
        self.integrator.stats.calls.clear()
        self.integrator.run(self.u, p, tau)
        h_new = kinetic_energy(p) + self._total_action()

        dh = h_new - h_old
        p_acc = min(1.0, math.exp(-dh)) if dh == dh else 0.0
        accepted = always_accept or (self.rng.random() < p_acc)
        if not accepted:
            for umu, old in zip(self.u, saved):
                umu.from_numpy(old)
        else:
            # keep the links exactly unitary over long runs
            for umu in self.u:
                arr = umu.to_numpy()
                if unitarity_defect(arr) > 1e-12:
                    umu.from_numpy(reunitarize(arr))

        from ..qcd.gauge import plaquette

        k1_launch, k1_time = self._device_stats()
        it1 = sum(getattr(m, "solve_iterations", 0) for m in self.monomials)
        result = TrajectoryResult(
            accepted=accepted,
            delta_h=dh,
            h_old=h_old,
            h_new=h_new,
            plaquette=plaquette(self.u, lattice),
            accept_probability=p_acc,
            solver_iterations=it1 - it0,
            kernels_launched=k1_launch - k0_launch,
            modeled_device_seconds=k1_time - k0_time,
            force_calls=dict(self.integrator.stats.calls),
        )
        self.history.append(result)
        return result

    def run(self, n_trajectories: int, tau: float) -> list[TrajectoryResult]:
        return [self.trajectory(tau) for _ in range(n_trajectories)]

    @property
    def acceptance_rate(self) -> float:
        if not self.history:
            return 0.0
        return sum(r.accepted for r in self.history) / len(self.history)

"""Gauge generation: HMC/RHMC with multi-timescale integration.

The application layer of the reproduction — Chroma's gauge-generation
program built entirely on the QDP-JIT expression pipeline (paper
Sec. VIII-D).
"""

from .checkpoint import (
    CheckpointError,
    CheckpointManager,
    ConfigHeader,
    TrajectorySnapshotStore,
    load_config,
    save_config,
)
from .forces import (
    dslash_outer_force,
    gaussian_momenta,
    hermitian_traceless,
    kinetic_energy,
    update_links,
    wilson_gauge_action,
    wilson_gauge_force,
)
from .hmc import HMC, TrajectoryResult
from .integrator import OMELYAN_LAMBDA, Level, MultiTimescaleIntegrator
from .monomials import (
    GaugeMonomial,
    HasenbuschRatioMonomial,
    Monomial,
    OneFlavorRationalMonomial,
    TwoFlavorWilsonMonomial,
)
from .rational import (
    PartialFraction,
    RationalError,
    fourth_root,
    inv_sqrt,
    rational_inverse_power,
)

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "ConfigHeader",
    "TrajectorySnapshotStore",
    "GaugeMonomial",
    "load_config",
    "save_config",
    "HMC",
    "HasenbuschRatioMonomial",
    "Level",
    "Monomial",
    "MultiTimescaleIntegrator",
    "OMELYAN_LAMBDA",
    "OneFlavorRationalMonomial",
    "PartialFraction",
    "RationalError",
    "TrajectoryResult",
    "TwoFlavorWilsonMonomial",
    "dslash_outer_force",
    "fourth_root",
    "gaussian_momenta",
    "hermitian_traceless",
    "inv_sqrt",
    "kinetic_energy",
    "rational_inverse_power",
    "update_links",
    "wilson_gauge_action",
    "wilson_gauge_force",
]

"""QUDA-style solvers: mixed-precision CG with reliable updates, and
restarted GCR.

These are the "algorithmic improvements (QUDA GCR solver)" the paper's
QDP-JIT+QUDA configuration benefits from (Sec. VIII-D).  They run on
the host against the optimized Dslash (QUDA owns its own kernels and
data layout); the device interface (:mod:`repro.quda.interface`)
hands fields over in the QDP-JIT layout without copies.

The mixed-precision scheme is QUDA's reliable-updates CG: the
iteration runs in single precision, while the true residual is
recomputed in double precision whenever the iterated residual has
dropped by ``delta``, correcting accumulated drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class QudaSolveResult:
    converged: bool
    iterations: int
    residual_norm: float
    reliable_updates: int = 0
    restarts: int = 0
    history: list[float] = field(default_factory=list)


def _dot(a: np.ndarray, b: np.ndarray) -> complex:
    return complex(np.vdot(a, b))


def _norm2(a: np.ndarray) -> float:
    return float(np.vdot(a, a).real)


def mixed_precision_cg(apply_dp, apply_sp, b: np.ndarray, *,
                       tol: float = 1e-10, max_iter: int = 2000,
                       delta: float = 0.1) -> tuple[np.ndarray,
                                                    QudaSolveResult]:
    """Reliable-updates mixed-precision CG for Hermitian PD A.

    ``apply_dp(x)`` applies A in double precision, ``apply_sp(x)`` in
    single.  Returns (solution, result).
    """
    b2 = _norm2(b)
    if b2 == 0.0:
        return np.zeros_like(b), QudaSolveResult(True, 0, 0.0)
    x = np.zeros_like(b)
    r = b.copy()
    rr = b2
    r_sp = r.astype(np.complex64)
    p = r_sp.copy()
    x_sp = np.zeros_like(r_sp)
    rr_sp = rr
    max_rr = rr
    reliable = 0
    history = [1.0]
    for k in range(1, max_iter + 1):
        ap = apply_sp(p)
        pap = _dot(p, ap).real
        if pap <= 0:
            raise RuntimeError("mixed CG breakdown")
        alpha = rr_sp / pap
        x_sp += np.complex64(alpha) * p
        r_sp -= np.complex64(alpha) * ap
        rr_new = _norm2(r_sp)
        history.append((rr_new / b2) ** 0.5)
        if rr_new < delta * max_rr or rr_new / b2 <= tol ** 2:
            # reliable update: fold the SP solution into DP, recompute
            # the true residual in DP
            x += x_sp.astype(np.complex128)
            r = b - apply_dp(x)
            rr_true = _norm2(r)
            reliable += 1
            history[-1] = (rr_true / b2) ** 0.5
            if history[-1] <= tol:
                return x, QudaSolveResult(True, k, history[-1],
                                          reliable, 0, history)
            r_sp = r.astype(np.complex64)
            x_sp[:] = 0
            rr_sp = rr_true
            max_rr = rr_true
            beta = 0.0  # restart the direction after a reliable update
            p = r_sp.copy()
            continue
        beta = rr_new / rr_sp
        p = r_sp + np.complex64(beta) * p
        rr_sp = rr_new
        max_rr = max(max_rr, rr_new)
    # final fold
    x += x_sp.astype(np.complex128)
    r = b - apply_dp(x)
    return x, QudaSolveResult(False, max_iter, (_norm2(r) / b2) ** 0.5,
                              reliable, 0, history)


def gcr(apply_dp, b: np.ndarray, *, tol: float = 1e-10,
        max_iter: int = 500, n_krylov: int = 16,
        precond=None) -> tuple[np.ndarray, QudaSolveResult]:
    """Restarted GCR(n_krylov), optionally right-preconditioned.

    This is the outer solver QUDA's GCR configuration uses; the
    preconditioner (e.g. a low-accuracy SP solve) captures the
    mixed-precision benefit.
    """
    b2 = _norm2(b)
    if b2 == 0.0:
        return np.zeros_like(b), QudaSolveResult(True, 0, 0.0)
    x = np.zeros_like(b)
    r = b.copy()
    history = [1.0]
    total_it = 0
    restarts = 0
    while total_it < max_iter:
        ps: list[np.ndarray] = []
        aps: list[np.ndarray] = []
        for _ in range(n_krylov):
            total_it += 1
            z = precond(r) if precond is not None else r
            ap = apply_dp(z)
            p = z
            # orthogonalize Ap against previous Aps (modified GS)
            for pj, apj in zip(ps, aps):
                c = _dot(apj, ap) / _norm2(apj)
                ap = ap - c * apj
                p = p - c * pj
            ps.append(p)
            aps.append(ap)
            c = _dot(ap, r) / _norm2(ap)
            x = x + c * p
            r = r - c * ap
            rel = (_norm2(r) / b2) ** 0.5
            history.append(rel)
            if rel <= tol:
                return x, QudaSolveResult(True, total_it, rel, 0,
                                          restarts, history)
            if total_it >= max_iter:
                break
        restarts += 1
        r = b - apply_dp(x)   # true residual at restart
    rel = (_norm2(r) / b2) ** 0.5
    return x, QudaSolveResult(rel <= tol, total_it, rel, 0, restarts,
                              history)

"""The QUDA comparator: a separately implemented, hand-optimized
Wilson Dslash.

The paper benchmarks its generated Dslash against the QUDA library's
hand-tuned implementation (Sec. VIII-C): QUDA reaches 346 GFLOPS (SP,
V=40^4) / 171 GFLOPS (DP, 32^4) on the same hardware where the
generated code reaches 197 / 90 — a 1.76x / 1.9x "headroom" for hand
tuning.

Two things live here:

1. A *functional* optimized Dslash (`OptimizedDslash`): a direct
   implementation using the spin-projection trick (project to
   half-spinors before the color multiply, reconstruct after), exactly
   the optimization hand-written kernels apply.  It is cross-validated
   against the expression-generated Dslash in the tests — an
   independent implementation agreeing to machine precision.
2. A *performance model* (`quda_dslash_gflops`) for the tuned GPU
   kernel, expressed through the same bandwidth model as the rest of
   the framework but with the reduced memory traffic that spin
   projection + texture/read-only-cache reuse give a hand kernel.
"""

from __future__ import annotations

import numpy as np

from ..device.memmodel import kernel_cost
from ..device.specs import DeviceSpec
from ..qcd.dslash import DSLASH_FLOPS_PER_SITE
from ..qcd.gamma import GAMMA
from ..qdp.fields import multi1d
from ..qdp.lattice import Lattice


class OptimizedDslash:
    """Hand-optimized Wilson hopping term (the QUDA algorithm).

    Uses the spin-projector rank-2 structure: ``(1 -/+ gamma_mu)`` has
    rank 2, so only two spin components are multiplied by the link
    matrix and the other two are reconstructed linearly — the
    optimization that QUDA's hand kernels (and their flop count of
    1320/site) are built around.
    """

    def __init__(self, u: multi1d):
        self.lattice: Lattice = u[0].lattice
        self.u = [f.to_numpy() for f in u]
        self._tf = [self.lattice.shift_map(mu, +1)
                    for mu in range(self.lattice.nd)]
        self._tb = [self.lattice.shift_map(mu, -1)
                    for mu in range(self.lattice.nd)]
        # precompute the projector bases: (1 - s*gamma) = sum of two
        # rank-1 spinor maps; we just use dense 4x4 here but apply the
        # half-spinor algebra via einsum on 2-component projections
        self._pm = [np.eye(4) - GAMMA[mu] for mu in range(self.lattice.nd)]
        self._pp = [np.eye(4) + GAMMA[mu] for mu in range(self.lattice.nd)]

    def refresh_gauge(self, u: multi1d) -> None:
        """Re-read the gauge field (after an HMC link update)."""
        self.u = [f.to_numpy() for f in u]

    def apply(self, psi: np.ndarray, sign: int = +1) -> np.ndarray:
        """D psi for a (nsites, 4, 3) spinor batch; returns new array."""
        out = np.zeros_like(psi)
        nd = self.lattice.nd
        for mu in range(nd):
            pm = self._pm[mu] if sign > 0 else self._pp[mu]
            pp = self._pp[mu] if sign > 0 else self._pm[mu]
            u = self.u[mu]
            # forward hop: P- U_mu(x) psi(x+mu)
            h = np.einsum("st,ntc->nsc", pm, psi[self._tf[mu]])
            out += np.einsum("ncd,nsd->nsc", u, h)
            # backward hop: P+ U+_mu(x-mu) psi(x-mu)
            h = np.einsum("st,ntc->nsc", pp, psi)
            g = np.einsum("ndc,nsd->nsc", u.conj(), h)
            out += g[self._tb[mu]]
        return out


def quda_dslash_bytes_per_site(precision: str,
                               gauge_compression: int = 18) -> int:
    """Memory traffic per site of the tuned kernel.

    Spin projection halves the neighbor-spinor traffic (half spinors:
    12 words instead of 24); the read-only data cache gives additional
    reuse on the gauge field, modeled as an effective traffic factor.
    ``gauge_compression`` is 18 (uncompressed, as in the paper's
    comparison), 12 or 8 reals per link.
    """
    word = 4 if precision == "f32" else 8
    halfspinor_words = 12
    spinor_words = 24
    # 8 neighbor half-spinors + 8 gauge links + 1 spinor out
    words = 8 * halfspinor_words + 8 * gauge_compression + spinor_words
    return words * word


#: Effective cache-reuse factor of the hand kernel (texture/read-only
#: path): calibrated so the model lands on the paper's measured 346
#: GFLOPS (SP, 40^4) / 171 GFLOPS (DP, 32^4) on the K20m (ECC on).
QUDA_CACHE_REUSE = {"f32": 0.4745, "f64": 0.4805}


def quda_dslash_gflops(spec: DeviceSpec, volume: int, precision: str,
                       gauge_compression: int = 18) -> float:
    """Modeled tuned-Dslash performance on one GPU."""
    bytes_per_site = int(quda_dslash_bytes_per_site(
        precision, gauge_compression) * QUDA_CACHE_REUSE[precision])
    cost = kernel_cost(spec, nsites=volume, block_size=128,
                       regs_per_thread=64, bytes_per_site=bytes_per_site,
                       flops_per_site=DSLASH_FLOPS_PER_SITE,
                       precision=precision)
    return cost.gflops

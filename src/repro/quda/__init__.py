"""The QUDA comparator library: hand-optimized Dslash, mixed-precision
CG / GCR solvers, and the zero-copy device interface."""

from .dslash import (
    OptimizedDslash,
    QUDA_CACHE_REUSE,
    quda_dslash_bytes_per_site,
    quda_dslash_gflops,
)
from .interface import QudaInvertParam, QudaSolver
from .solver import QudaSolveResult, gcr, mixed_precision_cg

__all__ = [
    "OptimizedDslash",
    "QUDA_CACHE_REUSE",
    "QudaInvertParam",
    "QudaSolveResult",
    "QudaSolver",
    "gcr",
    "mixed_precision_cg",
    "quda_dslash_bytes_per_site",
    "quda_dslash_gflops",
]

"""The Chroma <-> QUDA device interface (paper Sec. VIII-D).

"We are using QUDA's device interface to call-out from Chroma to the
linear solvers.  The interface supports the optimized data layout as
used in the QDP-JIT/PTX library and thus eliminates the requirement to
copy the spinor, gauge and clover fields to the CPU memory and
changing the data layout prior to calling the solvers."

Two modes are modeled:

* ``device_interface=True`` (the QDP-JIT+QUDA configuration): fields
  are handed over in place; no transfer is charged.
* ``device_interface=False`` (the CPU+QUDA configuration): every solve
  pays a layout-change + PCIe round trip for the gauge field and the
  spinors, charged to the context's device clock — the overhead the
  paper identifies as one reason CPU+QUDA scales poorly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.memmodel import transfer_time
from ..qcd.wilson import WilsonParams
from ..qdp.fields import LatticeField, multi1d
from .dslash import OptimizedDslash
from .solver import QudaSolveResult, gcr, mixed_precision_cg


@dataclass
class QudaInvertParam:
    """Solve configuration (the mirror of QUDA's QudaInvertParam)."""

    tol: float = 1e-10
    max_iter: int = 2000
    solver: str = "cg"            # "cg" (mixed precision) | "gcr"
    delta: float = 0.1            # reliable-update threshold
    n_krylov: int = 16            # GCR basis size
    device_interface: bool = True


class QudaSolver:
    """Solve M+ M x = b through the QUDA comparator stack."""

    def __init__(self, u: multi1d, params: WilsonParams,
                 invert: QudaInvertParam | None = None):
        self.u = u
        self.params = params
        self.invert = invert or QudaInvertParam()
        self._dslash = OptimizedDslash(u)
        self._dslash_sp: OptimizedDslash | None = None
        self.transfer_seconds_charged = 0.0

    def _charge_interface_overhead(self, *fields: LatticeField) -> None:
        """Charge layout-change + PCIe traffic for the non-device path."""
        if self.invert.device_interface:
            return
        ctx = self.u[0].context
        nbytes = sum(f.nbytes for f in self.u) + sum(
            f.nbytes for f in fields)
        t = 2 * transfer_time(ctx.device.spec, nbytes)   # in and out
        ctx.device.charge_interface_transfer(t, name="quda_layout_xfer")
        self.transfer_seconds_charged += t

    def _mdagm(self, psi: np.ndarray, sp: bool = False) -> np.ndarray:
        kappa = self.params.kappa
        d = self._dslash
        if sp:
            psi64 = psi.astype(np.complex128)
            m = psi64 - kappa * d.apply(psi64, +1)
            out = m - kappa * d.apply(m, -1)
            return out.astype(np.complex64)
        m = psi - kappa * d.apply(psi, +1)
        return m - kappa * d.apply(m, -1)

    def solve(self, x: LatticeField, b: LatticeField) -> QudaSolveResult:
        """x = (M+ M)^{-1} b; returns the QUDA-side solve result."""
        self._dslash.refresh_gauge(self.u)
        self._charge_interface_overhead(x, b)
        b_arr = b.to_numpy()
        inv = self.invert
        if inv.solver == "cg":
            sol, res = mixed_precision_cg(
                lambda v: self._mdagm(v),
                lambda v: self._mdagm(v, sp=True),
                b_arr, tol=inv.tol, max_iter=inv.max_iter, delta=inv.delta)
        elif inv.solver == "gcr":
            sol, res = gcr(lambda v: self._mdagm(v), b_arr, tol=inv.tol,
                           max_iter=inv.max_iter, n_krylov=inv.n_krylov)
        else:
            raise ValueError(f"unknown solver {inv.solver!r}")
        x.from_numpy(sol)
        return res

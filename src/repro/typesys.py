"""The QDP++ nested type system (paper Table I).

A complete lattice data type is composed of four levels named after
the QCD index spaces::

    Lattice (x) Spin (x) Color (x) Complex

QDP++ composes these with C++ template nesting
(``Lattice< Vector< Vector< Complex<REAL>, 3>, 4> >`` for a lattice
fermion).  Here a :class:`TypeSpec` value describes the same
composition: the shape of the spin level (scalar ``()``, vector
``(4,)`` or matrix ``(4,4)``), the shape of the color level, the
reality level (real or complex) and the floating-point precision.

The packed clover types of Table I's lower part (``Diagonal`` /
``Triangular`` components, used by Chroma's clover term, paper
Sec. VI-A) reuse the spin level for the two 6x6 blocks and the color
level for the packed block entries — exactly the trick described in
the paper.

The memory layout is the coalesced structure-of-arrays function of
paper Sec. III-B::

    I(iV, iS, iC, iR) = ((iR * I_C + i_C) * I_S + i_S) * I_V + i_V

i.e. the site index iV runs fastest (adjacent threads access adjacent
memory words), then spin, then color, then the reality component.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product

import numpy as np

#: Number of spin components (4-d spacetime).
NS = 4
#: Number of colors (SU(3)).
NC = 3


@dataclass(frozen=True)
class TypeSpec:
    """Describes one QDP++ nested data type.

    Attributes
    ----------
    spin, color:
        Index-space shapes: ``()`` scalar, ``(n,)`` vector, ``(n, n)``
        matrix.
    is_complex:
        Whether the reality level is ``Complex<REAL>`` or
        ``Scalar<REAL>``.
    precision:
        ``"f32"`` or ``"f64"``.
    is_lattice:
        Outer level: ``Lattice`` (one value per site) or ``OScalar``
        (a single value broadcast over the lattice).
    """

    spin: tuple[int, ...]
    color: tuple[int, ...]
    is_complex: bool
    precision: str = "f64"
    is_lattice: bool = True

    def __post_init__(self):
        if self.precision not in ("f32", "f64"):
            raise ValueError(f"bad precision {self.precision!r}")
        for shape in (self.spin, self.color):
            if len(shape) > 2:
                raise ValueError(f"bad level shape {shape}")

    # -- level sizes -----------------------------------------------------

    @property
    def spin_size(self) -> int:
        """I_S: number of spin-level components (flattened)."""
        return int(np.prod(self.spin)) if self.spin else 1

    @property
    def color_size(self) -> int:
        """I_C: number of color-level components (flattened)."""
        return int(np.prod(self.color)) if self.color else 1

    @property
    def reality_size(self) -> int:
        """I_R: 2 for complex, 1 for real."""
        return 2 if self.is_complex else 1

    @property
    def words_per_site(self) -> int:
        """Real words per lattice site."""
        return self.spin_size * self.color_size * self.reality_size

    @property
    def word_bytes(self) -> int:
        return 4 if self.precision == "f32" else 8

    @property
    def bytes_per_site(self) -> int:
        return self.words_per_site * self.word_bytes

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self.precision == "f32" else np.float64)

    @property
    def complex_dtype(self) -> np.dtype:
        return np.dtype(np.complex64 if self.precision == "f32"
                        else np.complex128)

    # -- component indexing ------------------------------------------------

    def spin_indices(self):
        """Iterate over spin-level multi-indices (tuples)."""
        if not self.spin:
            return [()]
        return list(product(*(range(n) for n in self.spin)))

    def color_indices(self):
        if not self.color:
            return [()]
        return list(product(*(range(n) for n in self.color)))

    def flatten_spin(self, sidx: tuple[int, ...]) -> int:
        """Row-major flattening of a spin multi-index."""
        if not self.spin:
            return 0
        return int(np.ravel_multi_index(sidx, self.spin))

    def flatten_color(self, cidx: tuple[int, ...]) -> int:
        if not self.color:
            return 0
        return int(np.ravel_multi_index(cidx, self.color))

    def word_index(self, sidx: tuple[int, ...], cidx: tuple[int, ...],
                   ir: int) -> int:
        """Inner (word) index of component (iS, iC, iR).

        Together with the site index this realizes the layout function
        I(iV,iS,iC,iR): the word index is the coefficient of I_V.
        """
        i_s = self.flatten_spin(sidx)
        i_c = self.flatten_color(cidx)
        if ir >= self.reality_size:
            raise IndexError("reality index out of range")
        return (ir * self.color_size + i_c) * self.spin_size + i_s

    # -- derived specs -------------------------------------------------------

    def with_precision(self, precision: str) -> "TypeSpec":
        return replace(self, precision=precision)

    def adjoint(self) -> "TypeSpec":
        """Type of ``adj(x)``: spin and color levels transposed."""
        return replace(self, spin=self.spin[::-1] if len(self.spin) == 2
                       else self.spin,
                       color=self.color[::-1] if len(self.color) == 2
                       else self.color)

    @property
    def shape(self) -> tuple[int, ...]:
        """The per-site NumPy shape ``spin + color``."""
        return self.spin + self.color

    def describe(self) -> str:
        """Render the nested C++-style type (Table I notation)."""
        real = "float" if self.precision == "f32" else "double"
        t = f"Complex<{real}>" if self.is_complex else f"Scalar<{real}>"

        def level(shape, inner):
            if not shape:
                return f"Scalar<{inner}>"
            if len(shape) == 1:
                return f"Vector<{inner}, {shape[0]}>"
            return f"Matrix<{inner}, {shape[0]}>"

        t = level(self.color, t)
        t = level(self.spin, t)
        outer = "Lattice" if self.is_lattice else "OScalar"
        return f"{outer}<{t}>"


# -- the standard QDP++ type aliases (paper Table I, upper part) -----------

def fermion(precision: str = "f64") -> TypeSpec:
    """LatticeFermion psi: spin-vector x color-vector x complex."""
    return TypeSpec(spin=(NS,), color=(NC,), is_complex=True,
                    precision=precision)


def color_matrix(precision: str = "f64") -> TypeSpec:
    """LatticeColorMatrix U: spin-scalar x color-matrix x complex."""
    return TypeSpec(spin=(), color=(NC, NC), is_complex=True,
                    precision=precision)


def spin_matrix(precision: str = "f64") -> TypeSpec:
    """LatticeSpinMatrix Gamma: spin-matrix x color-scalar x complex."""
    return TypeSpec(spin=(NS, NS), color=(), is_complex=True,
                    precision=precision)


def color_vector(precision: str = "f64") -> TypeSpec:
    """LatticeColorVector: spin-scalar x color-vector x complex."""
    return TypeSpec(spin=(), color=(NC,), is_complex=True,
                    precision=precision)


def propagator(precision: str = "f64") -> TypeSpec:
    """LatticePropagator: spin-matrix x color-matrix x complex."""
    return TypeSpec(spin=(NS, NS), color=(NC, NC), is_complex=True,
                    precision=precision)


def complex_field(precision: str = "f64") -> TypeSpec:
    """LatticeComplex."""
    return TypeSpec(spin=(), color=(), is_complex=True, precision=precision)


def real_field(precision: str = "f64") -> TypeSpec:
    """LatticeReal."""
    return TypeSpec(spin=(), color=(), is_complex=False, precision=precision)


def int_like_real(precision: str = "f64") -> TypeSpec:
    """LatticeInteger stand-in (stored as real words)."""
    return TypeSpec(spin=(), color=(), is_complex=False, precision=precision)


# -- the clover types (paper Table I, lower part) ----------------------------
#
# The clover term is Hermitian and block diagonal with two 6x6 blocks
# (2 spin components x 3 colors each).  Each block is stored as the 6
# real numbers of the diagonal plus the 15 complex numbers of the
# strictly lower triangle.  Following paper Sec. VI-A, the "spin" level
# indexes the two blocks and the "color" level indexes the packed
# entries:
#
#   Adiag: Lattice< Component< Diagonal<  Scalar<REAL>  > > >  -> (2, 6) real
#   Atria: Lattice< Component< Triangular<Complex<REAL> > > >  -> (2, 15) complex

#: Entries in the strict lower triangle of a 6x6 block.
CLOVER_TRI = 15
#: Diagonal entries of a 6x6 block.
CLOVER_DIAG = 6
#: Number of blocks (chirality blocks of the clover term).
CLOVER_BLOCKS = 2


def clover_diag(precision: str = "f64") -> TypeSpec:
    """The diagonal part of the packed clover term (Adiag)."""
    return TypeSpec(spin=(CLOVER_BLOCKS,), color=(CLOVER_DIAG,),
                    is_complex=False, precision=precision)


def clover_triangular(precision: str = "f64") -> TypeSpec:
    """The lower-triangular part of the packed clover term (Atria)."""
    return TypeSpec(spin=(CLOVER_BLOCKS,), color=(CLOVER_TRI,),
                    is_complex=True, precision=precision)


def scalar_complex(precision: str = "f64") -> TypeSpec:
    """An OScalar complex number (broadcast over the lattice)."""
    return TypeSpec(spin=(), color=(), is_complex=True,
                    precision=precision, is_lattice=False)


def scalar_real(precision: str = "f64") -> TypeSpec:
    """An OScalar real number."""
    return TypeSpec(spin=(), color=(), is_complex=False,
                    precision=precision, is_lattice=False)


#: Triangular packing: linear index of entry (i, j), i > j, in the
#: strictly-lower-triangle ordering used by Chroma's packed clover.
def tri_index(i: int, j: int) -> int:
    """Packed index of lower-triangle entry (i, j) of a 6x6 block."""
    if not (0 <= j < i < 6):
        raise IndexError(f"(i={i}, j={j}) is not strictly lower triangular")
    return i * (i - 1) // 2 + j


def tri_unindex(k: int) -> tuple[int, int]:
    """Inverse of :func:`tri_index`."""
    if not 0 <= k < CLOVER_TRI:
        raise IndexError(f"bad triangular index {k}")
    i = 1
    while i * (i + 1) // 2 <= k:
        i += 1
    j = k - i * (i - 1) // 2
    return i, j

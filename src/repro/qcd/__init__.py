"""Lattice QCD domain layer: gauge observables, Dirac operators,
clover term, solvers — the Chroma-side physics built on the QDP
interface."""

from .analysis import (
    compute_propagator,
    effective_mass,
    pion_correlator,
    point_source,
    wall_source,
)
from .clover import CloverTerm
from .cloverop import CloverOperator, CloverParams, EvenOddCloverOperator
from .dslash import DSLASH_FLOPS_PER_SITE, WilsonDslash, dslash_expr
from .gamma import (
    GAMMA,
    GAMMA5,
    gamma,
    gamma5_const,
    gamma_const,
    projector,
    projector_const,
    sigma,
)
from .gauge import (
    field_strength_numpy,
    gauge_transform,
    plaquette,
    plaquette_field_expr,
    plaquette_site_sum,
    random_gauge,
    staple,
    unit_gauge,
    weak_gauge,
)
from .halfspinor import (
    HalfSpinorDslash,
    half_fermion,
    projection_matrices,
    spin_project,
    spin_reconstruct,
)
from .mixedsolver import MixedSolveResult, mixed_precision_cg
from .observables import (
    energy_density,
    polyakov_loop,
    topological_charge,
    wilson_loop,
)
from .solver import (
    MultiShiftResult,
    SolveResult,
    SolverError,
    bicgstab,
    cg,
    multishift_cg,
)
from .wilson import EvenOddWilsonOperator, WilsonOperator, WilsonParams

__all__ = [
    "CloverOperator",
    "compute_propagator",
    "effective_mass",
    "pion_correlator",
    "point_source",
    "wall_source",
    "CloverParams",
    "CloverTerm",
    "EvenOddCloverOperator",
    "HalfSpinorDslash",
    "MixedSolveResult",
    "energy_density",
    "half_fermion",
    "mixed_precision_cg",
    "polyakov_loop",
    "projection_matrices",
    "spin_project",
    "spin_reconstruct",
    "topological_charge",
    "wilson_loop",
    "DSLASH_FLOPS_PER_SITE",
    "EvenOddWilsonOperator",
    "GAMMA",
    "GAMMA5",
    "MultiShiftResult",
    "SolveResult",
    "SolverError",
    "WilsonDslash",
    "WilsonOperator",
    "WilsonParams",
    "bicgstab",
    "cg",
    "dslash_expr",
    "field_strength_numpy",
    "gamma",
    "gamma5_const",
    "gamma_const",
    "gauge_transform",
    "multishift_cg",
    "plaquette",
    "plaquette_field_expr",
    "plaquette_site_sum",
    "projector",
    "projector_const",
    "random_gauge",
    "sigma",
    "staple",
    "unit_gauge",
    "weak_gauge",
]

"""The Wilson fermion matrix and its even-odd preconditioned form.

Conventions (Chroma's kappa normalization):

    M = 1 - kappa * D                      (unpreconditioned)

with D the hopping term of :mod:`repro.qcd.dslash`.  gamma5-
Hermiticity holds: ``gamma5 M gamma5 = M-dagger``.

Even-odd (red-black) preconditioning splits sites by parity; with
``M_ee = M_oo = 1`` and ``M_eo = -kappa D_eo`` the Schur complement on
the even sublattice is

    M_prec = 1 - kappa^2 D_eo D_oe

which is what the solvers in both QDP-JIT-based Chroma and QUDA
actually invert (half the volume, squared condition improvement).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.expr import ScalarParam
from ..qdp.fields import LatticeField, latt_fermion, multi1d
from .dslash import WilsonDslash, dslash_expr


@dataclass
class WilsonParams:
    """Physics parameters of the Wilson operator.

    ``kappa = 1 / (2 m + 8)`` relates the hopping parameter to the
    bare mass m (isotropic 4-d).  ``anisotropy`` optionally scales the
    temporal hops (the paper's production runs use anisotropic
    lattices).
    """

    kappa: float
    anisotropy: float | None = None

    @classmethod
    def from_mass(cls, mass: float, anisotropy: float | None = None
                  ) -> "WilsonParams":
        return cls(kappa=1.0 / (2.0 * mass + 8.0), anisotropy=anisotropy)

    @property
    def mass(self) -> float:
        return (1.0 / self.kappa - 8.0) / 2.0

    def hop_coeffs(self, nd: int):
        if self.anisotropy is None:
            return None
        c = [1.0] * nd
        c[nd - 1] = self.anisotropy
        return c


class WilsonOperator:
    """The full-lattice Wilson matrix M = 1 - kappa D."""

    def __init__(self, u: multi1d, params: WilsonParams,
                 precision: str = "f64"):
        self.u = u
        self.params = params
        self.precision = precision
        self.lattice = u[0].lattice
        self.dslash = WilsonDslash(u, coeffs=params.hop_coeffs(self.lattice.nd),
                                   precision=precision)

    def new_fermion(self) -> LatticeField:
        return latt_fermion(self.lattice, self.precision, self.u[0].context)

    def _expr(self, psi, sign: int):
        kappa = ScalarParam(self.params.kappa, self.precision)
        return psi - kappa * dslash_expr(
            self.u, psi, sign=sign,
            coeffs=self.params.hop_coeffs(self.lattice.nd),
            precision=self.precision)

    def apply(self, dest: LatticeField, psi) -> None:
        """dest = M psi."""
        dest.assign(self._expr(psi, +1))

    def apply_dagger(self, dest: LatticeField, psi) -> None:
        """dest = M-dagger psi (via gamma5-Hermiticity structure)."""
        dest.assign(self._expr(psi, -1))

    def apply_mdagm(self, dest: LatticeField, psi,
                    tmp: LatticeField | None = None) -> None:
        """dest = M-dagger M psi — the Hermitian positive-definite
        normal operator the CG solver inverts."""
        tmp = tmp if tmp is not None else self.new_fermion()
        self.apply(tmp, psi)
        self.apply_dagger(dest, tmp)


class EvenOddWilsonOperator:
    """The even-odd preconditioned Wilson matrix on the even subset:

        M_prec psi_e = psi_e - kappa^2 D_eo (D_oe psi_e)

    Apply/apply_dagger evaluate only on the relevant checkerboards, so
    each application moves half the data of the full operator.
    """

    def __init__(self, u: multi1d, params: WilsonParams,
                 precision: str = "f64"):
        self.u = u
        self.params = params
        self.precision = precision
        self.lattice = u[0].lattice
        self.coeffs = params.hop_coeffs(self.lattice.nd)
        self._tmp = latt_fermion(self.lattice, precision, u[0].context)

    def new_fermion(self) -> LatticeField:
        return latt_fermion(self.lattice, self.precision, self.u[0].context)

    @property
    def even(self):
        return self.lattice.even

    @property
    def odd(self):
        return self.lattice.odd

    def _apply_sign(self, dest: LatticeField, psi, sign: int) -> None:
        k2 = ScalarParam(self.params.kappa ** 2, self.precision)
        d_oe = dslash_expr(self.u, psi, sign=sign, coeffs=self.coeffs,
                           precision=self.precision)
        self._tmp.assign(d_oe, subset=self.odd)
        d_eo = dslash_expr(self.u, self._tmp, sign=sign, coeffs=self.coeffs,
                           precision=self.precision)
        dest.assign(psi - k2 * d_eo, subset=self.even)

    def apply(self, dest: LatticeField, psi) -> None:
        self._apply_sign(dest, psi, +1)

    def apply_dagger(self, dest: LatticeField, psi) -> None:
        self._apply_sign(dest, psi, -1)

    def apply_mdagm(self, dest: LatticeField, psi,
                    tmp: LatticeField | None = None) -> None:
        tmp = tmp if tmp is not None else self.new_fermion()
        self.apply(tmp, psi)
        self.apply_dagger(dest, tmp)

    # -- full-system reconstruction ------------------------------------

    def prepare_source(self, chi: LatticeField) -> LatticeField:
        """chi'_e = chi_e + kappa D_eo chi_o (Schur forward step)."""
        k = ScalarParam(self.params.kappa, self.precision)
        out = self.new_fermion()
        d = dslash_expr(self.u, chi, coeffs=self.coeffs,
                        precision=self.precision)
        out.assign(chi + k * d, subset=self.even)
        out.assign(chi.ref(), subset=self.odd)
        return out

    def reconstruct(self, psi_e: LatticeField, chi: LatticeField
                    ) -> LatticeField:
        """psi_o = chi_o + kappa D_oe psi_e (Schur back-substitution)."""
        k = ScalarParam(self.params.kappa, self.precision)
        out = self.new_fermion()
        out.assign(psi_e.ref(), subset=self.even)
        d = dslash_expr(self.u, psi_e, coeffs=self.coeffs,
                        precision=self.precision)
        out.assign(chi + k * d, subset=self.odd)
        return out

"""The Wilson Dslash (hopping term), written in the high-level
operator form — paper Sec. VIII-C:

    H(x,x') = sum_mu (1 - gamma_mu) U_mu(x)       delta_{x+mu, x'}
            + sum_mu (1 + gamma_mu) U+_mu(x - mu) delta_{x-mu, x'}

As the paper stresses, this implementation is *generated from its
high-level representation* — no hand-tuning.  The backward hop
``shift(adj(u)*psi, BACKWARD, mu)`` shifts a non-leaf expression and
is therefore materialized into a temporary by the evaluator, exactly
like QDP++ evaluates it.

The standard Wilson Dslash flop count used when quoting GFLOPS
(paper Fig. 6 and the QUDA comparison) is 1320 flops per site.
"""

from __future__ import annotations

from ..core.expr import ScalarParam, adj, shift
from ..qdp.fields import LatticeField, latt_fermion, multi1d
from ..qdp.lattice import BACKWARD, FORWARD, Subset
from .gamma import projector_const

#: The community-standard Wilson Dslash flop count per site (4-d),
#: assuming spin projection: what QUDA and the paper quote GFLOPS in.
DSLASH_FLOPS_PER_SITE = 1320


def dslash_expr(u: multi1d, psi, sign: int = +1, coeffs=None,
                precision: str = "f64"):
    """Build the Dslash expression tree.

    ``sign=+1`` gives D, ``sign=-1`` gives the gamma5-conjugate
    (projectors swapped), i.e. the hopping part of M-dagger.
    ``coeffs`` optionally scales each direction's hop (anisotropy).
    """
    nd = len(u)
    total = None
    for mu in range(nd):
        p_minus = projector_const(mu, +sign, precision)   # 1 -/+ gamma_mu
        p_plus = projector_const(mu, -sign, precision)    # 1 +/- gamma_mu
        fwd = p_minus * (u[mu] * shift(psi, FORWARD, mu))
        bwd = p_plus * shift(adj(u[mu]) * psi, BACKWARD, mu)
        term = fwd + bwd
        if coeffs is not None and coeffs[mu] != 1.0:
            term = ScalarParam(coeffs[mu], precision) * term
        total = term if total is None else total + term
    return total


class WilsonDslash:
    """Callable Dslash: ``D(dest, psi, subset)``.

    Holding the gauge field, it evaluates the hopping term into
    ``dest``, optionally restricted to a checkerboard subset (the
    even-odd preconditioned operator applies D_eo / D_oe this way:
    a Dslash evaluated on the even subset reads odd-site spinors).
    """

    def __init__(self, u: multi1d, coeffs=None, precision: str = "f64"):
        self.u = u
        self.coeffs = coeffs
        self.precision = precision
        self.lattice = u[0].lattice

    def __call__(self, dest: LatticeField, psi, sign: int = +1,
                 subset: Subset | None = None):
        expr = dslash_expr(self.u, psi, sign=sign, coeffs=self.coeffs,
                           precision=self.precision)
        return dest.assign(expr, subset=subset)

    def new_fermion(self, context=None) -> LatticeField:
        return latt_fermion(self.lattice, self.precision,
                            context or self.u[0].context)

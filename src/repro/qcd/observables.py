"""Gauge observables beyond the plaquette: Wilson loops, the Polyakov
loop, and the field-theoretic topological charge.

These are analysis-phase quantities (the "capacity computing" side of
paper Sec. I).  Loop construction composes the expression layer's
shift/multiply operators — each observable is a little program in the
data-parallel language.
"""

from __future__ import annotations

import numpy as np

from ..core.expr import adj, real, shift, trace
from ..core.reduction import sum_sites
from ..qdp.fields import LatticeField, latt_color_matrix, multi1d
from ..qdp.lattice import FORWARD
from .gauge import field_strength_numpy


def _line(u: multi1d, mu: int, length: int) -> LatticeField:
    """The Wilson line U_mu(x) U_mu(x+mu) ... (length links).

    Built iteratively: L_{n+1}(x) = L_n(x) * U_mu(x + n*mu), with the
    shifted link materialized by the evaluator.
    """
    lattice = u[0].lattice
    ctx = u[0].context
    line = latt_color_matrix(lattice, u[mu].spec.precision, ctx)
    line.assign(u[mu].ref())
    hop = latt_color_matrix(lattice, u[mu].spec.precision, ctx)
    hop.assign(u[mu].ref())
    for _ in range(1, length):
        # hop(x) <- U_mu shifted one more step along mu
        hop.assign(shift(hop, FORWARD, mu))
        line.assign(line * hop)
    return line


def wilson_loop(u: multi1d, mu: int, nu: int, r: int, t: int) -> float:
    """<1/3 Re tr W(r x t)> in the (mu, nu) plane.

    W(x) = L_mu(x, r) L_nu(x+r mu, t) L_mu(x+t nu, r)^+ L_nu(x)^+
    """
    lattice = u[0].lattice
    if not (1 <= r < lattice.dims[mu] and 1 <= t < lattice.dims[nu]):
        raise ValueError("loop extents must fit inside the lattice")
    lmu = _line(u, mu, r)
    lnu = _line(u, nu, t)
    # shift the side lines to the loop's far corners
    side1 = latt_color_matrix(lattice, u[0].spec.precision, u[0].context)
    side1.assign(lnu.ref())
    for _ in range(r):
        side1.assign(shift(side1, FORWARD, mu))
    top = latt_color_matrix(lattice, u[0].spec.precision, u[0].context)
    top.assign(lmu.ref())
    for _ in range(t):
        top.assign(shift(top, FORWARD, nu))
    w = sum_sites(real(trace(lmu * side1 * adj(top) * adj(lnu))))
    return w.real / (3.0 * lattice.nsites)


def polyakov_loop(u: multi1d, mu: int | None = None) -> complex:
    """<1/3 tr P(x)> with P the ordered product of links winding the
    lattice in the time direction.

    Exactly gauge invariant (the transformation telescopes around the
    winding), which the tests assert.
    """
    lattice = u[0].lattice
    if mu is None:
        mu = lattice.nd - 1
    line = _line(u, mu, lattice.dims[mu])
    p = sum_sites(trace(line.ref()))
    # every site on a time line carries the same loop; average anyway
    return p / (3.0 * lattice.nsites)


def topological_charge(u: multi1d) -> float:
    """The field-theoretic (clover) topological charge

        Q = 1/(32 pi^2) sum_x eps_{mu nu rho sigma}
            tr[ F_{mu nu}(x) F_{rho sigma}(x) ]

    using the clover-leaf field strength.  Integer-valued only after
    smoothing on real configurations; near zero on weak fields (the
    property the tests check).
    """
    lattice = u[0].lattice
    if lattice.nd != 4:
        raise ValueError("topological charge needs 4 dimensions")
    f = {}
    for mu in range(4):
        for nu in range(mu + 1, 4):
            f[(mu, nu)] = field_strength_numpy(u, mu, nu)
    # eps contractions: Q ~ tr[F01 F23 - F02 F13 + F03 F12] * 8
    def ttr(a, b):
        return np.einsum("nab,nba->n", a, b).real

    dens = (ttr(f[(0, 1)], f[(2, 3)])
            - ttr(f[(0, 2)], f[(1, 3)])
            + ttr(f[(0, 3)], f[(1, 2)]))
    return float(dens.sum() * 8.0 / (32.0 * np.pi ** 2))


def energy_density(u: multi1d) -> float:
    """<tr F_{mu nu} F_{mu nu}> / V — the clover action density."""
    lattice = u[0].lattice
    total = 0.0
    for mu in range(lattice.nd):
        for nu in range(mu + 1, lattice.nd):
            fmn = field_strength_numpy(u, mu, nu)
            total += float(np.einsum("nab,nba->", fmn, fmn).real)
    return total / lattice.nsites

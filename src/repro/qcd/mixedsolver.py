"""Mixed-precision defect-correction solver on the framework's own
kernels.

The QUDA comparator has its reliable-update mixed CG; this is the
framework-native counterpart: an outer double-precision defect
correction around inner single-precision CG solves.  The precision
conversions run through the expression pipeline's implicit promotion
(cvt instructions in the generated kernels, paper Sec. III-D), so
this module doubles as an end-to-end exercise of the mixed-precision
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.reduction import norm2
from ..qdp.fields import LatticeField, latt_fermion
from ..qdp.lattice import Subset
from .solver import SolverError, _active_solver_plan, cg


@dataclass
class MixedSolveResult:
    converged: bool
    outer_iterations: int
    inner_iterations: int
    residual_norm: float
    history: list[float] = field(default_factory=list)


def mixed_precision_cg(op_dp, op_sp, x: LatticeField, b: LatticeField, *,
                       tol: float = 1e-10, inner_tol: float = 1e-5,
                       max_outer: int = 30, max_inner: int = 1000,
                       subset: Subset | None = None) -> MixedSolveResult:
    """Solve ``A x = b`` (A Hermitian PD) in mixed precision.

    ``op_dp(dest, src)`` applies A on f64 fields; ``op_sp`` on f32
    fields.  Each outer step computes the true f64 residual, solves
    the error equation in f32 to ``inner_tol``, and accumulates the
    correction in f64 — converging to full double-precision accuracy
    while the bandwidth-hungry iterations move half the bytes.

    The outer true residual doubles as a defect guard when a fault
    plan is active: an outer residual that *jumps* (instead of
    shrinking) means the accumulated iterate was corrupted, and the
    step restarts from the last good outer iterate.
    """
    lattice = x.lattice
    ctx = x.context
    r = latt_fermion(lattice, "f64", ctx)
    ax = latt_fermion(lattice, "f64", ctx)
    r32 = latt_fermion(lattice, "f32", ctx)
    e32 = latt_fermion(lattice, "f32", ctx)

    plan = _active_solver_plan(ctx)

    b2 = norm2(b, subset=subset)
    if b2 == 0.0:
        x.assign(0.0 * x.ref(), subset=subset)
        return MixedSolveResult(True, 0, 0, 0.0, [0.0])

    inner_total = 0
    history = []
    x_good = None
    prev_rel = None
    restarts = 0
    for outer in range(1, max_outer + 1):
        op_dp(ax, x)
        r.assign(b - ax, subset=subset)
        rel = (norm2(r, subset=subset) / b2) ** 0.5
        if (plan is not None and prev_rel is not None
                and rel > plan.policy.solver_defect_factor * prev_rel):
            # the outer (true) residual jumped: the accumulated
            # iterate was corrupted somewhere this step
            restarts += 1
            if restarts > plan.policy.solver_max_restarts:
                raise SolverError(
                    f"mixed CG defect persists after {restarts - 1} "
                    f"restarts (outer residual {rel:g}, was {prev_rel:g})")
            x.from_numpy(x_good)
            plan.record_solver_restart(
                None, f"outer residual jumped {prev_rel:g} -> {rel:g}; "
                      f"restarted outer step {outer} from last good "
                      f"iterate")
            continue
        history.append(rel)
        if rel <= tol:
            return MixedSolveResult(True, outer - 1, inner_total, rel,
                                    history)
        if plan is not None:
            x_good = x.to_numpy()
            prev_rel = rel
        # demote the residual, solve the error equation in f32
        r32.assign(r.ref(), subset=subset)
        e32.zero()
        res = cg(op_sp, e32, r32, tol=inner_tol, max_iter=max_inner,
                 subset=subset)
        inner_total += res.iterations
        # promote and accumulate the correction
        x.assign(x + e32, subset=subset)
    op_dp(ax, x)
    r.assign(b - ax, subset=subset)
    rel = (norm2(r, subset=subset) / b2) ** 0.5
    history.append(rel)
    return MixedSolveResult(rel <= tol, max_outer, inner_total, rel,
                            history)

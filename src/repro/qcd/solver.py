"""Krylov solvers over the QDP expression layer.

These are the framework-native solvers (the paper's "QDP-JIT" path);
the separately tuned comparator lives in :mod:`repro.quda`.  All
vector updates are data-parallel expressions with the scalar
coefficients passed as kernel *parameters*, so the whole solve runs on
the (simulated) device with a fixed, small set of JIT-compiled kernels
— no recompilation inside the iteration loop.

Implemented: CG on a Hermitian positive-definite operator (M-dagger M
or the even-odd Schur complement), BiCGStab on the non-Hermitian
operator, and the multi-shift CG needed by the RHMC rational forces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.reduction import innerProduct, norm2
from ..qdp.fields import LatticeField
from ..qdp.lattice import Subset


@dataclass
class SolveResult:
    """Outcome of a Krylov solve."""

    converged: bool
    iterations: int
    residual_norm: float       # sqrt(|r|^2 / |b|^2), relative
    residual_history: list[float] = field(default_factory=list)


class SolverError(RuntimeError):
    pass


def _active_solver_plan(ctx):
    """The fault plan governing this solve, or ``None``."""
    faults = getattr(ctx.device, "faults", None)
    if faults is not None and faults.active:
        return faults.plan
    return None


def _corrupt_iterate(plan, event, f: LatticeField) -> None:
    """Apply one injected silent corruption to an iterate field."""
    import numpy as np

    arr = np.ascontiguousarray(f.to_numpy())
    flat = arr.reshape(-1)
    idx = int(plan.rng.integers(flat.size))
    # a large upset: recursive residuals keep shrinking, only the
    # recomputed true residual can see it
    flat[idx] = flat[idx] + (1.0 + abs(flat[idx])) * 1e6
    f.from_numpy(arr)
    event.detail["index"] = idx


def cg(apply_op, x: LatticeField, b: LatticeField, *,
       tol: float = 1e-8, max_iter: int = 1000,
       subset: Subset | None = None,
       reliable: int | None = None) -> SolveResult:
    """Conjugate gradient for ``A x = b`` with A Hermitian PD.

    ``apply_op(dest, src)`` computes ``dest = A src`` (restricted to
    ``subset`` if given).  ``x`` holds the initial guess and receives
    the solution.  ``tol`` is on the relative residual norm.

    ``reliable`` enables the reliable-update defect guard: every
    ``reliable`` iterations (and before accepting convergence) the
    *true* residual ``b - A x`` is recomputed and compared against the
    recursive one; a large mismatch means the iterate was silently
    corrupted, and CG restarts from the last good iterate.  The
    default (``None``) turns the guard on only when a fault plan is
    active (at its policy's check interval), so fault-free solves
    perform exactly the classic iteration.
    """
    ctx = x.context
    lattice = x.lattice
    def mk():
        return LatticeField(lattice, x.spec, context=ctx)
    r, p, ap = mk(), mk(), mk()

    plan = _active_solver_plan(ctx)
    if reliable is None:
        reliable = plan.policy.solver_check_interval if plan is not None else 0
    if plan is not None or reliable:
        from ..faults.plan import RecoveryPolicy
        policy = plan.policy if plan is not None else RecoveryPolicy()
    rt_ = mk() if reliable else None

    b2 = norm2(b, subset=subset)
    if b2 == 0.0:
        x.assign(0.0 * x.ref(), subset=subset)
        return SolveResult(True, 0, 0.0, [0.0])

    apply_op(ap, x)
    r.assign(b - ap, subset=subset)
    p.assign(r.ref(), subset=subset)
    rr = norm2(r, subset=subset)
    history = [(rr / b2) ** 0.5]
    if history[-1] <= tol:
        return SolveResult(True, 0, history[-1], history)

    x_good = x.to_numpy() if reliable else None
    pending = []     # injected corruptions awaiting detection
    restarts = 0

    for k in range(1, max_iter + 1):
        apply_op(ap, p)
        pap = innerProduct(p, ap, subset=subset).real
        if pap <= 0.0:
            raise SolverError(
                f"CG breakdown: <p|Ap> = {pap:g} <= 0 (operator not PD?)")
        alpha = rr / pap
        x.assign(x + alpha * p, subset=subset)
        if plan is not None:
            ev = plan.draw("solver", "corrupt", "cg")
            if ev is not None:
                _corrupt_iterate(plan, ev, x)
                pending.append(ev)
        r.assign(r - alpha * ap, subset=subset)
        rr_new = norm2(r, subset=subset)
        history.append((rr_new / b2) ** 0.5)
        converged = history[-1] <= tol
        if reliable and (converged or k % reliable == 0):
            # reliable update: recompute the true residual and compare
            apply_op(ap, x)
            rt_.assign(b - ap, subset=subset)
            rr_true = norm2(rt_, subset=subset)
            if rr_true > policy.solver_defect_factor * rr_new + 1e-300:
                restarts += 1
                if restarts > policy.solver_max_restarts:
                    raise SolverError(
                        f"CG defect persists after {restarts - 1} "
                        f"restarts (true residual {rr_true:g} vs "
                        f"recursive {rr_new:g})")
                # restore the last good iterate, rebuild Krylov state
                x.from_numpy(x_good)
                apply_op(ap, x)
                r.assign(b - ap, subset=subset)
                p.assign(r.ref(), subset=subset)
                rr = norm2(r, subset=subset)
                history.append((rr / b2) ** 0.5)
                action = (f"defect detected by true-residual check at "
                          f"iteration {k}; restarted from last good "
                          f"iterate")
                if plan is not None:
                    if pending:
                        plan.record_solver_restart(pending.pop(), action)
                        for ev in pending:
                            plan.record_recovery(ev, action)
                        pending.clear()
                    else:
                        plan.record_solver_restart(None, action)
                continue
            x_good = x.to_numpy()
        if converged:
            return SolveResult(True, k, history[-1], history)
        beta = rr_new / rr
        p.assign(r + beta * p, subset=subset)
        rr = rr_new
    return SolveResult(False, max_iter, history[-1], history)


def bicgstab(apply_op, x: LatticeField, b: LatticeField, *,
             tol: float = 1e-8, max_iter: int = 1000,
             subset: Subset | None = None) -> SolveResult:
    """BiCGStab for a general (non-Hermitian) operator."""
    ctx = x.context
    lattice = x.lattice
    def mk():
        return LatticeField(lattice, x.spec, context=ctx)
    r, r0, p, v, s, t = (mk() for _ in range(6))

    b2 = norm2(b, subset=subset)
    if b2 == 0.0:
        x.assign(0.0 * x.ref(), subset=subset)
        return SolveResult(True, 0, 0.0, [0.0])

    apply_op(v, x)
    r.assign(b - v, subset=subset)
    r0.assign(r.ref(), subset=subset)
    rho = alpha = omega = 1.0 + 0.0j
    p.assign(0.0 * r.ref(), subset=subset)
    v.assign(0.0 * r.ref(), subset=subset)
    rr = norm2(r, subset=subset)
    history = [(rr / b2) ** 0.5]
    if history[-1] <= tol:
        return SolveResult(True, 0, history[-1], history)

    for k in range(1, max_iter + 1):
        rho_new = innerProduct(r0, r, subset=subset)
        if rho_new == 0.0:
            raise SolverError("BiCGStab breakdown: rho = 0")
        beta = (rho_new / rho) * (alpha / omega)
        p.assign(r + beta * (p - omega * v), subset=subset)
        apply_op(v, p)
        denom = innerProduct(r0, v, subset=subset)
        if denom == 0.0:
            raise SolverError("BiCGStab breakdown: <r0|v> = 0")
        alpha = rho_new / denom
        s.assign(r - alpha * v, subset=subset)
        apply_op(t, s)
        t2 = norm2(t, subset=subset)
        if t2 == 0.0:
            x.assign(x + alpha * p, subset=subset)
            history.append(0.0)
            return SolveResult(True, k, 0.0, history)
        omega = innerProduct(t, s, subset=subset) / t2
        x.assign(x + alpha * p + omega * s, subset=subset)
        r.assign(s - omega * t, subset=subset)
        rr = norm2(r, subset=subset)
        history.append((rr / b2) ** 0.5)
        if history[-1] <= tol:
            return SolveResult(True, k, history[-1], history)
        rho = rho_new
    return SolveResult(False, max_iter, history[-1], history)


@dataclass
class MultiShiftResult:
    converged: bool
    iterations: int
    residual_norms: list[float]


def multishift_cg(apply_op, xs: list[LatticeField], b: LatticeField,
                  shifts: list[float], *, tol: float = 1e-8,
                  max_iter: int = 1000,
                  subset: Subset | None = None) -> MultiShiftResult:
    """Multi-shift CG: solve ``(A + sigma_i) x_i = b`` for all shifts
    at the cost of a single Krylov sequence.

    The workhorse of the RHMC rational force (paper Sec. VIII-D uses
    the rational approximation of [14]).  Shifts must be >= 0 with A
    Hermitian PD; ``xs`` must be zero-initialized fields, one per
    shift.  Uses the standard beta/zeta recurrences (Jegerlehner).
    """
    if len(xs) != len(shifts):
        raise ValueError("one solution field per shift required")
    if any(s < 0 for s in shifts):
        raise ValueError("multishift CG requires non-negative shifts")
    ns = len(shifts)
    ctx = b.context
    lattice = b.lattice
    def mk():
        return LatticeField(lattice, b.spec, context=ctx)
    r, p, ap = mk(), mk(), mk()
    ps = [mk() for _ in range(ns)]

    b2 = norm2(b, subset=subset)
    if b2 == 0.0:
        for x in xs:
            x.assign(0.0 * b.ref(), subset=subset)
        return MultiShiftResult(True, 0, [0.0] * ns)

    # base (sigma = 0) CG state drives everything
    r.assign(b.ref(), subset=subset)
    p.assign(b.ref(), subset=subset)
    for x, ps_i in zip(xs, ps):
        x.assign(0.0 * b.ref(), subset=subset)
        ps_i.assign(b.ref(), subset=subset)

    # Jegerlehner (hep-lat/9612014) recurrences in CG (alpha, beta)
    # notation: zeta tracks the collinearity r_n^sigma = zeta_n r_n.
    zeta = [1.0] * ns        # zeta_n
    zeta_old = [1.0] * ns    # zeta_{n-1}
    alpha_old = 1.0          # alpha_{n-1}
    beta_old = 0.0           # beta_{n-1}
    active = [True] * ns
    rr = b2
    resid = [1.0] * ns

    for k in range(1, max_iter + 1):
        apply_op(ap, p)
        pap = innerProduct(p, ap, subset=subset).real
        if pap <= 0.0:
            raise SolverError(f"multishift CG breakdown: <p|Ap> = {pap:g}")
        alpha = rr / pap

        zeta_new = [0.0] * ns
        for i in range(ns):
            if not active[i]:
                continue
            s = shifts[i]
            denom = (alpha * beta_old * (zeta_old[i] - zeta[i])
                     + zeta_old[i] * alpha_old * (1.0 + s * alpha))
            if denom == 0.0:
                raise SolverError("multishift CG: zeta recurrence breakdown")
            zeta_new[i] = zeta[i] * zeta_old[i] * alpha_old / denom
            alpha_i = alpha * zeta_new[i] / zeta[i]
            xs[i].assign(xs[i] + alpha_i * ps[i], subset=subset)

        r.assign(r - alpha * ap, subset=subset)
        rr_new = norm2(r, subset=subset)
        beta = rr_new / rr
        rnorm = (rr_new / b2) ** 0.5

        all_done = True
        for i in range(ns):
            if not active[i]:
                continue
            resid[i] = abs(zeta_new[i]) * rnorm
            if resid[i] <= tol:
                active[i] = False
                continue
            all_done = False
            beta_i = beta * (zeta_new[i] / zeta[i]) ** 2
            zn = zeta_new[i]
            ps[i].assign(zn * r + beta_i * ps[i], subset=subset)
            zeta_old[i] = zeta[i]
            zeta[i] = zeta_new[i]
        if all_done:
            return MultiShiftResult(True, k, resid)

        p.assign(r + beta * p, subset=subset)
        alpha_old = alpha
        beta_old = beta
        rr = rr_new
    return MultiShiftResult(all(not a for a in active), max_iter, resid)

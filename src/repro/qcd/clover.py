"""The clover term (paper Sec. VI-A and Table I lower part).

The clover term

    A(x) = 1 + c * sum_{mu<nu} sigma_{mu nu} F_{mu nu}(x)

is Hermitian and, in our chiral (DeGrand-Rossi) spin basis, splits
into two 6x6 blocks (spins {0,1} x colors, spins {2,3} x colors).
Each block is stored as the 6 real diagonal entries plus the 15
complex entries of the strictly lower triangle; the upper triangle is
recovered by Hermitian conjugation on the fly.

Because the 6x6 blocks *mix* the spin and color index spaces, the
level-wise QDP operators cannot express the application A*psi.  The
framework's user-defined-operation mechanism
(:class:`~repro.core.expr.CustomOpNode`) plugs a custom component
generator into the same kernel-generation machinery — this module is
the reference user of that extension point, mirroring how Chroma adds
the clover term on top of QDP-JIT.

Arithmetic intensity check (paper Table II, DP): 12+60 words of A,
24+24 words of spinor = 960 bytes; 12 components x (2 + 5*8) flops =
504 flops; 504/960 = 0.525.
"""

from __future__ import annotations

import numpy as np

from ..core.expr import CustomOpNode, FieldRef, as_expr
from ..qdp.fields import LatticeField, latt_clover_diag, latt_clover_tri, multi1d
from ..qdp.typesys import CLOVER_BLOCKS, fermion, tri_index
from .gamma import sigma
from .gauge import field_strength_numpy


def _sigma_f_blocks(u: multi1d, coeff: float) -> np.ndarray:
    """Dense clover blocks, shape (nsites, 2, 6, 6) — Hermitian."""
    lattice = u[0].lattice
    n = lattice.nsites
    nd = lattice.nd
    a12 = np.zeros((n, 12, 12), dtype=complex)
    for mu in range(nd):
        for nu in range(mu + 1, nd):
            f = field_strength_numpy(u, mu, nu)
            s = sigma(mu, nu)
            # A[(s,c),(s',c')] += coeff * sigma[s,s'] * F[c,c']
            a12 += coeff * np.einsum("ab,ncd->nacbd", s, f).reshape(n, 12, 12)
    a12 += np.eye(12)[None]
    blocks = np.empty((n, CLOVER_BLOCKS, 6, 6), dtype=complex)
    blocks[:, 0] = a12[:, 0:6, 0:6]
    blocks[:, 1] = a12[:, 6:12, 6:12]
    # sanity: the off-diagonal 6x6 blocks vanish in a chiral basis
    off = max(np.abs(a12[:, 0:6, 6:12]).max(),
              np.abs(a12[:, 6:12, 0:6]).max())
    if off > 1e-10:
        raise RuntimeError(
            f"clover term not block diagonal (off-block magnitude {off:g}); "
            f"spin basis is not chiral")
    return blocks


def _clover_gen(up, node, sidx, cidx, view, conjugate):
    """Component generator for A*psi (the custom-op codegen hook).

    Output component (spin s, color c) lives in block ``b = s // 2``
    at block-row ``i = (s % 2) * 3 + c``:

        chi_i = d_i psi_i + sum_{j<i} L_ij psi_j
                          + sum_{j>i} conj(L_ji) psi_j
    """
    diag_node, tri_node, psi_node = node.operands
    (s,) = sidx
    (c,) = cidx
    b = s // 2
    i = (s % 2) * 3 + c
    ops = up.ops

    def psi_comp(j):
        return up.gen(psi_node, (b * 2 + j // 3,), (j % 3,), view)

    d = up.gen(diag_node, (b,), (i,), view)
    acc = ops.mul(d, psi_comp(i))
    for j in range(6):
        if j == i:
            continue
        if j < i:
            l = up.gen(tri_node, (b,), (tri_index(i, j),), view)
            acc = ops.add(acc, ops.mul(l, psi_comp(j)))
        else:
            # upper triangle = conj of stored lower entry; the
            # conjugation folds into the multiply's sign pattern
            l = up.gen(tri_node, (b,), (tri_index(j, i),), view)
            acc = ops.add(acc, ops.mul_conj(l, psi_comp(j)))
    return ops.conj(acc) if conjugate else acc


class CloverTerm:
    """The packed clover term: construction, application, inversion.

    Parameters
    ----------
    u:
        The gauge field.
    coeff:
        The full coefficient multiplying ``sigma . F`` (in Chroma this
        is ``c_SW * kappa`` absorbed appropriately; we keep it as one
        number and document the convention in the class docstring).
    """

    def __init__(self, u: multi1d, coeff: float, precision: str = "f64"):
        self.u = u
        self.coeff = float(coeff)
        self.precision = precision
        self.lattice = u[0].lattice
        ctx = u[0].context
        self.blocks = _sigma_f_blocks(u, self.coeff)   # (n, 2, 6, 6)
        self.diag = latt_clover_diag(self.lattice, precision, ctx)
        self.tri = latt_clover_tri(self.lattice, precision, ctx)
        self._pack(self.blocks, self.diag, self.tri)
        self._inv_pair: tuple[LatticeField, LatticeField] | None = None

    @staticmethod
    def _pack(blocks: np.ndarray, diag: LatticeField,
              tri: LatticeField) -> None:
        n = blocks.shape[0]
        d = np.empty((n, CLOVER_BLOCKS, 6), dtype=float)
        t = np.empty((n, CLOVER_BLOCKS, 15), dtype=complex)
        for b in range(CLOVER_BLOCKS):
            d[:, b] = np.einsum("nii->ni", blocks[:, b]).real
            for i in range(6):
                for j in range(i):
                    t[:, b, tri_index(i, j)] = blocks[:, b, i, j]
        diag.from_numpy(d)
        tri.from_numpy(t)

    # -- application ------------------------------------------------------

    def apply_expr(self, psi) -> CustomOpNode:
        """The expression node for ``A * psi`` (paper test ``clover``)."""
        psi = as_expr(psi)
        return CustomOpNode(
            "clov", (FieldRef(self.diag), FieldRef(self.tri), psi),
            fermion(self.precision), _clover_gen)

    def apply(self, dest: LatticeField, psi, subset=None):
        return dest.assign(self.apply_expr(psi), subset=subset)

    # -- inverse (needed by even-odd clover and the determinant) ----------

    def _ensure_inverse(self) -> tuple[LatticeField, LatticeField]:
        if self._inv_pair is None:
            inv = np.linalg.inv(self.blocks)   # batched 6x6 inverse
            ctx = self.u[0].context
            idiag = latt_clover_diag(self.lattice, self.precision, ctx)
            itri = latt_clover_tri(self.lattice, self.precision, ctx)
            self._pack(inv, idiag, itri)
            self._inv_pair = (idiag, itri)
        return self._inv_pair

    def apply_inverse_expr(self, psi) -> CustomOpNode:
        """Expression for ``A^{-1} psi`` (the inverse blocks are packed
        in the same diag/tri layout — Hermitian too)."""
        idiag, itri = self._ensure_inverse()
        return CustomOpNode(
            "clovinv", (FieldRef(idiag), FieldRef(itri), as_expr(psi)),
            fermion(self.precision), _clover_gen)

    def apply_inverse(self, dest: LatticeField, psi, subset=None):
        return dest.assign(self.apply_inverse_expr(psi), subset=subset)

    def tr_log(self, subset=None) -> float:
        """sum_x log det A(x) — enters the even-odd clover action."""
        sign, logdet = np.linalg.slogdet(self.blocks)
        if np.any(sign.real <= 0):
            raise RuntimeError("clover term has non-positive determinant")
        per_site = logdet.sum(axis=1)
        if subset is None:
            return float(per_site.sum())
        return float(per_site[subset.sites].sum())

    # -- dense reference (for tests) ------------------------------------

    def dense_apply_numpy(self, psi_arr: np.ndarray) -> np.ndarray:
        """Reference: apply the dense blocks to a (n,4,3) spinor."""
        n = psi_arr.shape[0]
        flat = psi_arr.reshape(n, 2, 6)
        out = np.einsum("nbij,nbj->nbi", self.blocks, flat)
        return out.reshape(n, 4, 3)

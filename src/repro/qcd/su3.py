"""SU(3) matrix utilities (vectorized over sites).

Host-side helpers for constructing and validating gauge
configurations: random group elements, reunitarization, the su(3)
algebra projection used by HMC, and a batched matrix exponential.
These operate on NumPy arrays of shape ``(..., 3, 3)``; lattice-wide
evaluation through the JIT framework uses the QDP expression layer,
but configuration setup and the HMC momentum refresh are host-side
in Chroma too (they happen once per trajectory, not per kernel).
"""

from __future__ import annotations

import numpy as np


def random_su3(rng: np.random.Generator, n: int) -> np.ndarray:
    """``n`` Haar-ish random SU(3) matrices, shape (n, 3, 3).

    QR of a complex Ginibre matrix with phase fixing gives Haar U(3);
    dividing out the determinant's cube root lands in SU(3).
    """
    z = rng.normal(size=(n, 3, 3)) + 1j * rng.normal(size=(n, 3, 3))
    q, r = np.linalg.qr(z)
    # fix the phase ambiguity so the distribution is Haar
    d = np.einsum("nii->ni", r)
    q = q * (d / np.abs(d))[:, None, :]
    det = np.linalg.det(q)
    return q / np.cbrt(np.abs(det))[..., None, None] / np.exp(
        1j * np.angle(det) / 3)[..., None, None]


def random_su3_near_unit(rng: np.random.Generator, n: int,
                         eps: float = 0.1) -> np.ndarray:
    """Random SU(3) close to the identity: exp(i eps H)."""
    h = random_hermitian_traceless(rng, n)
    return expm_i_hermitian(eps * h)


def random_hermitian_traceless(rng: np.random.Generator, n: int
                               ) -> np.ndarray:
    """Gaussian traceless Hermitian 3x3 matrices — su(3) algebra
    elements with the HMC kinetic normalization ``<tr P^2> = 4``
    (8 generators, each coefficient unit variance, tr(T^a T^b) =
    delta_ab / 2)."""
    a = rng.normal(size=(n, 3, 3)) + 1j * rng.normal(size=(n, 3, 3))
    h = (a + a.conj().transpose(0, 2, 1)) / 2
    tr = np.einsum("nii->n", h) / 3.0
    h[:, 0, 0] -= tr
    h[:, 1, 1] -= tr
    h[:, 2, 2] -= tr
    return h / np.sqrt(2.0)


def expm_i_hermitian(h: np.ndarray) -> np.ndarray:
    """exp(iH) for batched Hermitian H via eigendecomposition.

    Exactly unitary up to rounding; used for the HMC link update
    ``U' = exp(i dt P) U``.
    """
    w, v = np.linalg.eigh(h)
    phase = np.exp(1j * w)
    return np.einsum("nij,nj,nkj->nik", v, phase, v.conj())


def reunitarize(u: np.ndarray) -> np.ndarray:
    """Project a near-SU(3) batch back onto SU(3).

    Gram-Schmidt on the first two rows, third row from the cross
    product — the standard lattice reunitarization that kills the
    accumulation of rounding drift during long HMC runs.
    """
    u = np.array(u, dtype=complex, copy=True)
    r0 = u[..., 0, :]
    r0 = r0 / np.linalg.norm(r0, axis=-1, keepdims=True)
    r1 = u[..., 1, :]
    r1 = r1 - np.sum(r0.conj() * r1, axis=-1, keepdims=True) * r0
    r1 = r1 / np.linalg.norm(r1, axis=-1, keepdims=True)
    r2 = np.cross(r0.conj(), r1.conj())
    out = np.stack([r0, r1, r2], axis=-2)
    return out


def project_traceless_antihermitian(m: np.ndarray) -> np.ndarray:
    """The "taproj" of Chroma: the traceless anti-Hermitian part,
    i.e. the su(3)-algebra projection of the force matrix."""
    a = (m - m.conj().transpose(*range(m.ndim - 2), -1, -2)) / 2
    tr = np.einsum("...ii->...", a) / 3.0
    out = np.array(a, copy=True)
    for i in range(3):
        out[..., i, i] -= tr
    return out


def unitarity_defect(u: np.ndarray) -> float:
    """max ||U U+ - 1||_inf over the batch (0 for exact SU(3))."""
    eye = np.eye(3)
    prod = np.einsum("...ij,...kj->...ik", u, u.conj())
    defect = np.abs(prod - eye).max()
    det_defect = np.abs(np.linalg.det(u) - 1.0).max()
    return float(max(defect, det_defect))

"""Gauge field utilities: construction, plaquette, staples, field
strength, gauge transformations.

The observables are written in the QDP operator form and evaluate
through the JIT pipeline — e.g. the plaquette sum is the expression

    sum( real( trace( U_mu(x) U_nu(x+mu) adj(U_mu(x+nu)) adj(U_nu(x)) )))

with the shifts materialized automatically by the evaluator.
"""

from __future__ import annotations

import numpy as np

from ..core.expr import adj, real, shift, trace
from ..core.reduction import sum_sites
from ..qdp.fields import LatticeField, latt_color_matrix, multi1d
from ..qdp.lattice import FORWARD, Lattice
from . import su3


# -- configuration constructors ----------------------------------------------

def unit_gauge(lattice: Lattice, precision: str = "f64",
               context=None) -> multi1d:
    """The free-field configuration U = 1."""
    u = multi1d([latt_color_matrix(lattice, precision, context)
                 for _ in range(lattice.nd)])
    eye = np.broadcast_to(np.eye(3, dtype=complex),
                          (lattice.nsites, 3, 3))
    for umu in u:
        umu.from_numpy(eye)
    return u


def random_gauge(lattice: Lattice, rng: np.random.Generator,
                 precision: str = "f64", context=None) -> multi1d:
    """A fully random (hot-start) SU(3) configuration."""
    u = multi1d([latt_color_matrix(lattice, precision, context)
                 for _ in range(lattice.nd)])
    for umu in u:
        umu.from_numpy(su3.random_su3(rng, lattice.nsites))
    return u


def weak_gauge(lattice: Lattice, rng: np.random.Generator,
               eps: float = 0.2, precision: str = "f64",
               context=None) -> multi1d:
    """A weak-field configuration exp(i eps H): near the free field,
    useful for solver tests (well-conditioned Dirac operator)."""
    u = multi1d([latt_color_matrix(lattice, precision, context)
                 for _ in range(lattice.nd)])
    for umu in u:
        umu.from_numpy(su3.random_su3_near_unit(rng, lattice.nsites, eps))
    return u


def gauge_transform(u: multi1d, g: LatticeField) -> multi1d:
    """Apply the gauge transformation
    ``U_mu(x) -> g(x) U_mu(x) adj(g(x+mu))``.

    Used by the gauge-invariance tests: the plaquette must not move.
    """
    lattice = g.lattice
    out = multi1d([latt_color_matrix(lattice, umu.spec.precision, g.context)
                   for umu in u])
    for mu, umu in enumerate(u):
        out[mu].assign(g * umu * shift(adj(g), FORWARD, mu))
    return out


# -- observables -----------------------------------------------------------------

def plaquette_field_expr(u: multi1d, mu: int, nu: int):
    """The (mu, nu) plaquette as an expression:
    ``U_mu(x) U_nu(x+mu) adj(U_mu(x+nu)) adj(U_nu(x))``."""
    return (u[mu] * shift(u[nu], FORWARD, mu)
            * adj(shift(u[mu], FORWARD, nu)) * adj(u[nu]))


def plaquette(u: multi1d, lattice: Lattice | None = None) -> float:
    """The average plaquette ``<1/3 Re tr U_P>`` over all planes.

    Equals 1 on the unit configuration; gauge invariant.
    """
    lattice = lattice or u[0].lattice
    nd = lattice.nd
    total = 0.0
    nplanes = 0
    for mu in range(nd):
        for nu in range(mu + 1, nd):
            total += sum_sites(
                real(trace(plaquette_field_expr(u, mu, nu)))).real
            nplanes += 1
    return total / (3.0 * nplanes * lattice.nsites)


def plaquette_site_sum(u: multi1d, mu: int, nu: int) -> float:
    """Re tr of the (mu,nu)-plaquette summed over sites."""
    return sum_sites(real(trace(plaquette_field_expr(u, mu, nu)))).real


def staple(u: multi1d, mu: int) -> LatticeField:
    """The sum of staples around the mu-link (both orientations,
    all nu != mu):

        S_mu(x) = sum_nu [ U_nu(x+mu) adj(U_mu(x+nu)) adj(U_nu(x))
                         + adj(U_nu(x+mu-nu)) adj(U_mu(x-nu)) U_nu(x-nu) ]

    The derivative of the Wilson gauge action with respect to the
    mu-link is built from this.
    """
    lattice = u[0].lattice
    out = latt_color_matrix(lattice, u[mu].spec.precision, u[mu].context)
    first = True
    for nu in range(lattice.nd):
        if nu == mu:
            continue
        upper = (shift(u[nu], FORWARD, mu) * adj(shift(u[mu], FORWARD, nu))
                 * adj(u[nu]))
        lower = shift(adj(shift(u[nu], FORWARD, mu)) * adj(u[mu]) * u[nu],
                      -1, nu)
        if first:
            out.assign(upper + lower)
            first = False
        else:
            out.assign(out + upper + lower)
    return out


def field_strength_numpy(u: multi1d, mu: int, nu: int) -> np.ndarray:
    """The clover-leaf field strength F_{mu nu} as a NumPy batch.

    F = (1/8i) * sum of the four plaquette leaves minus Hermitian
    conjugate, traceless part — the standard clover discretization
    feeding the clover term (paper Sec. VI-A).  Computed host-side
    (it is setup code, executed once per configuration).
    """
    lattice = u[0].lattice
    U = [f.to_numpy() for f in u]
    tf = {d: lattice.shift_map(d, +1) for d in (mu, nu)}
    tb = {d: lattice.shift_map(d, -1) for d in (mu, nu)}

    def mm(*ms):
        out = ms[0]
        for m in ms[1:]:
            out = np.einsum("nab,nbc->nac", out, m)
        return out

    def dag(m):
        return m.conj().transpose(0, 2, 1)

    u_mu, u_nu = U[mu], U[nu]
    # four leaves around x in the (mu, nu) plane
    q1 = mm(u_mu, u_nu[tf[mu]], dag(u_mu[tf[nu]]), dag(u_nu))
    q2 = mm(u_nu, dag(u_mu[tf[nu]][tb[mu]]), dag(u_nu[tb[mu]]), u_mu[tb[mu]])
    q3 = mm(dag(u_mu[tb[mu]]), dag(u_nu[tb[mu]][tb[nu]]),
            u_mu[tb[mu]][tb[nu]], u_nu[tb[nu]])
    q4 = mm(dag(u_nu[tb[nu]]), u_mu[tb[nu]], u_nu[tf[mu]][tb[nu]], dag(u_mu))
    q = q1 + q2 + q3 + q4
    f = (q - dag(q)) / 8j
    tr = np.einsum("nii->n", f) / 3.0
    for i in range(3):
        f[:, i, i] -= tr
    return f

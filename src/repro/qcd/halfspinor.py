"""Half-spinor (spin projection) operations.

The Wilson projectors ``(1 -/+ gamma_mu)`` have rank 2, so a projected
spinor carries only two independent spin components.  Hand-tuned
kernels (QUDA — the paper's Sec. VIII-C headroom discussion) exploit
this to halve the neighbor-spinor traffic; expressing the same trick
*through the framework's own code generators* shows the generated code
picking up the byte reduction automatically — the half-spinor Dslash
here moves ~25% less data than the naive one, visible directly in the
generated kernels' metadata.

``T = P[:2, :]`` compresses (project), and ``R`` with ``R @ T = P``
reconstructs; both are exact in the DeGrand-Rossi basis and are folded
into the kernels as structural constants.
"""

from __future__ import annotations

import numpy as np

from ..core.expr import CustomOpNode, Expr, ExprTypeError, as_expr
from ..typesys import TypeSpec
from .gamma import projector

#: Half-spinor type: 2 spin components x 3 colors.
def half_fermion(precision: str = "f64") -> TypeSpec:
    return TypeSpec(spin=(2,), color=(3,), is_complex=True,
                    precision=precision)


def projection_matrices(mu: int, sign: int
                        ) -> tuple[np.ndarray, np.ndarray]:
    """(T, R): T compresses P = 1 - sign*gamma_mu to 2 spin rows,
    R reconstructs (R @ T = P exactly)."""
    p = projector(mu, sign)
    t = p[:2, :]
    # rows 2,3 of P are exact linear combinations of rows 0,1
    r_lower, *_ = np.linalg.lstsq(t.T, p[2:, :].T, rcond=None)
    r = np.vstack([np.eye(2), r_lower.T])
    assert np.allclose(r @ t, p, atol=1e-13), "projector rank > 2?"
    return t, r


def _make_matrix_gen(m: np.ndarray):
    """A component generator applying a constant (non-square) spin
    matrix: out(s, c) = sum_t M[s, t] x(t, c)."""
    def gen(up, node, sidx, cidx, view, conjugate):
        (child,) = node.operands
        ops = up.ops
        from ..core.codegen import CVal

        (s,) = sidx
        acc = None
        for t in range(m.shape[1]):
            entry = complex(m[s, t])
            if entry == 0:
                continue
            v = up.gen(child, (t,), cidx, view)
            term = ops.mul(CVal(const=entry), v)
            acc = term if acc is None else ops.add(acc, term)
        if acc is None:
            acc = CVal(const=0j)
        return ops.conj(acc) if conjugate else acc

    return gen


def spin_project(psi, mu: int, sign: int) -> Expr:
    """h = T (1 - sign*gamma_mu) psi — compress to two spin rows.

    The result is a half-fermion expression (spin=(2,)); assign it to
    a field of :func:`half_fermion` type.
    """
    psi = as_expr(psi)
    if psi.spec.spin != (4,):
        raise ExprTypeError("spin_project needs a full spinor")
    t, _ = projection_matrices(mu, sign)
    spec = half_fermion(psi.spec.precision)
    return CustomOpNode(f"sproj{mu}{'p' if sign > 0 else 'm'}",
                        (psi,), spec, _make_matrix_gen(t))


def spin_reconstruct(h, mu: int, sign: int) -> Expr:
    """psi = R h — expand a half spinor back to four components."""
    h = as_expr(h)
    if h.spec.spin != (2,):
        raise ExprTypeError("spin_reconstruct needs a half spinor")
    _, r = projection_matrices(mu, sign)
    spec = TypeSpec(spin=(4,), color=(3,), is_complex=True,
                    precision=h.spec.precision)
    return CustomOpNode(f"srecon{mu}{'p' if sign > 0 else 'm'}",
                        (h,), spec, _make_matrix_gen(r))


class HalfSpinorDslash:
    """The Wilson hopping term via half spinors (single rank).

    Per direction: project (4 -> 2 spin components), multiply by the
    link in the compressed space, shift the *half* spinor, reconstruct
    and accumulate.  Identical results to the naive Dslash (tested),
    but the shifted temporaries are half the size — the traffic
    optimization hand-tuned kernels are built around, realized through
    the framework's code generators.
    """

    def __init__(self, u, precision: str = "f64"):
        self.u = u
        self.precision = precision
        self.lattice = u[0].lattice
        from ..qdp.fields import LatticeField

        ctx = u[0].context
        self._hf = [LatticeField(self.lattice, half_fermion(precision),
                                 context=ctx) for _ in range(self.lattice.nd)]
        self._hb = [LatticeField(self.lattice, half_fermion(precision),
                                 context=ctx) for _ in range(self.lattice.nd)]

    def __call__(self, dest, psi) -> None:
        from ..core.expr import adj, shift

        nd = self.lattice.nd
        # project+multiply into half-spinor temporaries, then shift
        for mu in range(nd):
            self._hf[mu].assign(spin_project(psi, mu, +1))
            self._hb[mu].assign(
                adj(self.u[mu]) * spin_project(psi, mu, -1))
        total = None
        for mu in range(nd):
            fwd = spin_reconstruct(
                self.u[mu] * shift(self._hf[mu].ref(), +1, mu), mu, +1)
            bwd = spin_reconstruct(
                shift(self._hb[mu].ref(), -1, mu), mu, -1)
            term = fwd + bwd
            total = term if total is None else total + term
        dest.assign(total)

    def halfspinor_bytes_per_site(self) -> int:
        """Bytes of one shifted half-spinor temp (vs 24-word full)."""
        return self._hf[0].spec.bytes_per_site

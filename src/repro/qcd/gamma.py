"""Dirac gamma matrices in the DeGrand-Rossi basis.

This is Chroma's basis.  It is chiral: gamma5 is diagonal
(diag(-1,-1,+1,+1) here... computed, not assumed — the test suite
verifies the Clifford algebra), and the products
``sigma_{mu nu} = (i/2)[gamma_mu, gamma_nu]`` are block diagonal in
2x2 spin blocks.  That block structure is exactly what makes the
clover term split into the two 6x6 Hermitian blocks of paper
Sec. VI-A.
"""

from __future__ import annotations

import numpy as np

from ..core.expr import ConstSpinMatrix

_i = 1j

#: gamma matrices, DeGrand-Rossi basis: index order (x, y, z, t).
GAMMA = np.zeros((4, 4, 4), dtype=complex)

GAMMA[0] = [[0, 0, 0, _i],
            [0, 0, _i, 0],
            [0, -_i, 0, 0],
            [-_i, 0, 0, 0]]

GAMMA[1] = [[0, 0, 0, -1],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [-1, 0, 0, 0]]

GAMMA[2] = [[0, 0, _i, 0],
            [0, 0, 0, -_i],
            [-_i, 0, 0, 0],
            [0, _i, 0, 0]]

GAMMA[3] = [[0, 0, 1, 0],
            [0, 0, 0, 1],
            [1, 0, 0, 0],
            [0, 1, 0, 0]]

#: gamma5 = gamma_x gamma_y gamma_z gamma_t
GAMMA5 = GAMMA[0] @ GAMMA[1] @ GAMMA[2] @ GAMMA[3]

IDENTITY = np.eye(4, dtype=complex)


def gamma(mu: int) -> np.ndarray:
    """gamma_mu as a NumPy matrix (mu in 0..3 = x,y,z,t)."""
    return GAMMA[mu].copy()


def sigma(mu: int, nu: int) -> np.ndarray:
    """sigma_{mu nu} = (i/2) [gamma_mu, gamma_nu]."""
    g, h = GAMMA[mu], GAMMA[nu]
    return 0.5j * (g @ h - h @ g)


def projector(mu: int, sign: int) -> np.ndarray:
    """The Wilson spin projector ``(1 - sign*gamma_mu)``.

    The hopping term of the Wilson Dirac operator uses
    ``(1 - gamma_mu)`` on forward hops and ``(1 + gamma_mu)`` on
    backward hops (paper Sec. VIII-C).  These matrices have rank 2;
    the constant-folding code generator exploits their many exact
    zeros automatically.
    """
    return IDENTITY - sign * GAMMA[mu]


def gamma_const(mu: int, precision: str = "f64") -> ConstSpinMatrix:
    """gamma_mu as an expression-tree constant."""
    return ConstSpinMatrix(GAMMA[mu], precision)


def gamma5_const(precision: str = "f64") -> ConstSpinMatrix:
    return ConstSpinMatrix(GAMMA5, precision)


def projector_const(mu: int, sign: int,
                    precision: str = "f64") -> ConstSpinMatrix:
    """``(1 - sign*gamma_mu)`` as an expression-tree constant."""
    return ConstSpinMatrix(projector(mu, sign), precision)

"""The Wilson-clover fermion matrix — the paper's production action
(V = 40^3 x 256, 2+1 flavors of *anisotropic clover* fermions).

Conventions:

    M = A - kappa * D,       A = 1 + c * sum_{mu<nu} sigma.F

with A the packed clover term of :mod:`repro.qcd.clover` (applied
through the custom-op kernel) and D the hopping term.  Because
``sigma_{mu nu}`` commutes with gamma5, A is gamma5-Hermitian along
with D, so ``gamma5 M gamma5 = M+`` — asserted in the tests.

Even-odd preconditioning uses the clover inverse on the opposite
checkerboard (Chroma's ``EvenOddPrecCloverOp``):

    M_hat psi_e = A_ee psi_e - kappa^2 D_eo A_oo^{-1} D_oe psi_e
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.expr import ScalarParam
from ..qdp.fields import LatticeField, latt_fermion, multi1d
from .clover import CloverTerm
from .dslash import dslash_expr


@dataclass
class CloverParams:
    """kappa, the clover coefficient, and optional anisotropy."""

    kappa: float
    clover_coeff: float
    anisotropy: float | None = None

    def hop_coeffs(self, nd: int):
        if self.anisotropy is None:
            return None
        c = [1.0] * nd
        c[nd - 1] = self.anisotropy
        return c


class CloverOperator:
    """The full-lattice Wilson-clover matrix M = A - kappa D."""

    def __init__(self, u: multi1d, params: CloverParams,
                 precision: str = "f64"):
        self.u = u
        self.params = params
        self.precision = precision
        self.lattice = u[0].lattice
        self.clover = CloverTerm(u, params.clover_coeff, precision)
        self._coeffs = params.hop_coeffs(self.lattice.nd)

    def new_fermion(self) -> LatticeField:
        return latt_fermion(self.lattice, self.precision, self.u[0].context)

    def _expr(self, psi, sign: int):
        kappa = ScalarParam(self.params.kappa, self.precision)
        return (self.clover.apply_expr(psi)
                - kappa * dslash_expr(self.u, psi, sign=sign,
                                      coeffs=self._coeffs,
                                      precision=self.precision))

    def apply(self, dest: LatticeField, psi) -> None:
        dest.assign(self._expr(psi, +1))

    def apply_dagger(self, dest: LatticeField, psi) -> None:
        dest.assign(self._expr(psi, -1))

    def apply_mdagm(self, dest: LatticeField, psi,
                    tmp: LatticeField | None = None) -> None:
        tmp = tmp if tmp is not None else self.new_fermion()
        self.apply(tmp, psi)
        self.apply_dagger(dest, tmp)


class EvenOddCloverOperator:
    """The even-odd preconditioned Wilson-clover matrix (even subset):

        M_hat = A_ee - kappa^2 D_eo A_oo^{-1} D_oe
    """

    def __init__(self, u: multi1d, params: CloverParams,
                 precision: str = "f64"):
        self.u = u
        self.params = params
        self.precision = precision
        self.lattice = u[0].lattice
        self.clover = CloverTerm(u, params.clover_coeff, precision)
        self._coeffs = params.hop_coeffs(self.lattice.nd)
        self._t1 = latt_fermion(self.lattice, precision, u[0].context)
        self._t2 = latt_fermion(self.lattice, precision, u[0].context)

    def new_fermion(self) -> LatticeField:
        return latt_fermion(self.lattice, self.precision, self.u[0].context)

    @property
    def even(self):
        return self.lattice.even

    @property
    def odd(self):
        return self.lattice.odd

    def _apply_sign(self, dest: LatticeField, psi, sign: int) -> None:
        k2 = ScalarParam(self.params.kappa ** 2, self.precision)
        d_oe = dslash_expr(self.u, psi, sign=sign, coeffs=self._coeffs,
                           precision=self.precision)
        self._t1.assign(d_oe, subset=self.odd)
        self.clover.apply_inverse(self._t2, self._t1, subset=self.odd)
        d_eo = dslash_expr(self.u, self._t2, sign=sign,
                           coeffs=self._coeffs, precision=self.precision)
        dest.assign(self.clover.apply_expr(psi) - k2 * d_eo,
                    subset=self.even)

    def apply(self, dest: LatticeField, psi) -> None:
        self._apply_sign(dest, psi, +1)

    def apply_dagger(self, dest: LatticeField, psi) -> None:
        self._apply_sign(dest, psi, -1)

    def apply_mdagm(self, dest: LatticeField, psi,
                    tmp: LatticeField | None = None) -> None:
        tmp = tmp if tmp is not None else self.new_fermion()
        self.apply(tmp, psi)
        self.apply_dagger(dest, tmp)

    # -- Schur factorization pieces ------------------------------------

    def prepare_source(self, chi: LatticeField) -> LatticeField:
        """b_e = chi_e + kappa D_eo A_oo^{-1} chi_o."""
        k = ScalarParam(self.params.kappa, self.precision)
        out = self.new_fermion()
        self.clover.apply_inverse(self._t1, chi, subset=self.odd)
        d = dslash_expr(self.u, self._t1, coeffs=self._coeffs,
                        precision=self.precision)
        out.assign(chi + k * d, subset=self.even)
        out.assign(chi.ref(), subset=self.odd)
        return out

    def reconstruct(self, psi_e: LatticeField, chi: LatticeField
                    ) -> LatticeField:
        """psi_o = A_oo^{-1} (chi_o + kappa D_oe psi_e)."""
        k = ScalarParam(self.params.kappa, self.precision)
        out = self.new_fermion()
        out.assign(psi_e.ref(), subset=self.even)
        d = dslash_expr(self.u, psi_e, coeffs=self._coeffs,
                        precision=self.precision)
        self._t1.assign(chi + k * d, subset=self.odd)
        self.clover.apply_inverse(out, self._t1, subset=self.odd)
        return out

"""The post-Monte-Carlo analysis phase (paper Sec. I).

"LQCD calculations are usually divided into two main parts: the HMC
gauge field generation part ... and the analysis part in which the
physical observables are determined."  This module is the analysis
part: sources, propagators (12 solves per source point), and meson
two-point correlators, all through the framework's solvers.
"""

from __future__ import annotations

import numpy as np

from ..qdp.fields import LatticeField, latt_fermion, multi1d
from ..qdp.lattice import Lattice
from .solver import cg
from .wilson import EvenOddWilsonOperator, WilsonParams


def point_source(lattice: Lattice, coords, spin: int, color: int,
                 precision: str = "f64", context=None) -> LatticeField:
    """A delta-function source at ``coords`` with one (spin, color)
    component set to 1 — the column source of a point propagator."""
    src = latt_fermion(lattice, precision, context)
    arr = np.zeros((lattice.nsites, 4, 3), dtype=complex)
    arr[lattice.site_index(tuple(coords)), spin, color] = 1.0
    src.from_numpy(arr)
    return src


def wall_source(lattice: Lattice, t: int, spin: int, color: int,
                precision: str = "f64", context=None) -> LatticeField:
    """A time-slice wall source (unit entries on the slice)."""
    src = latt_fermion(lattice, precision, context)
    arr = np.zeros((lattice.nsites, 4, 3), dtype=complex)
    sel = lattice.coords[:, lattice.nd - 1] == t
    arr[sel, spin, color] = 1.0
    src.from_numpy(arr)
    return src


def compute_propagator(u: multi1d, params: WilsonParams,
                       source_builder, *, tol: float = 1e-10,
                       max_iter: int = 2000) -> np.ndarray:
    """The 12-column point-to-all propagator.

    ``source_builder(spin, color)`` returns the source field for one
    column.  Solves ``M psi = src`` with the even-odd preconditioned
    CG (the production path) and returns the propagator as a dense
    array of shape ``(nsites, 4, 3, 4, 3)`` indexed
    ``[x, s_sink, c_sink, s_src, c_src]``.
    """
    lattice = u[0].lattice
    m_eo = EvenOddWilsonOperator(u, params)
    out = np.zeros((lattice.nsites, 4, 3, 4, 3), dtype=complex)
    for s in range(4):
        for c in range(3):
            chi = source_builder(s, c)
            b = m_eo.prepare_source(chi)
            rhs = m_eo.new_fermion()
            m_eo.apply_dagger(rhs, b)
            x = m_eo.new_fermion()
            res = cg(lambda d, v: m_eo.apply_mdagm(d, v), x, rhs,
                     tol=tol, max_iter=max_iter,
                     subset=lattice.even)
            if not res.converged:
                raise RuntimeError(
                    f"propagator solve (s={s}, c={c}) failed at "
                    f"residual {res.residual_norm:g}")
            psi = m_eo.reconstruct(x, chi)
            out[:, :, :, s, c] = psi.to_numpy()
    return out


def pion_correlator(prop: np.ndarray, lattice: Lattice) -> np.ndarray:
    """The pion two-point function from a point propagator:

        C(t) = sum_{x, t(x)=t}  sum tr[ S(x)^+ S(x) ]

    (the gamma5-gamma5 contraction collapses to the propagator's
    squared modulus via gamma5-Hermiticity).  Returns the length-Nt
    real correlator — positive and, on a quenched weak field, decaying
    away from the source time slice.
    """
    dens = np.einsum("xscud,xscud->x", prop.conj(), prop).real
    nt = lattice.dims[lattice.nd - 1]
    t_of_x = lattice.coords[:, lattice.nd - 1]
    corr = np.zeros(nt)
    np.add.at(corr, t_of_x, dens)
    return corr


def effective_mass(corr: np.ndarray) -> np.ndarray:
    """log(C(t)/C(t+1)) — the standard effective-mass estimator."""
    c = np.asarray(corr, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.log(c[:-1] / c[1:])

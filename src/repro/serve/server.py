"""The multi-tenant server: one device pool, many tenants.

A :class:`Server` owns one shared :class:`~repro.device.gpu.Device`
(one memory pool, one stream runtime, one modeled clock) and one
:class:`SharedKernelCache`, and multiplexes the sessions of N tenants
onto it under a scheduling policy resolved from the ``REPRO_SERVE``
knob (:func:`~repro.diagnostics.serve_mode`) or passed explicitly:

``fair`` (knob default, alias ``on``)
    Weighted deficit round-robin over tenants with admission control.
``fifo``
    Non-preemptive first-come-first-served with admission control.
``off``
    Inert: sessions run back-to-back in submission order, no
    admission queueing — equivalent to bare contexts in sequence.

Isolation contract
------------------
Each tenant gets its own :class:`~repro.core.context.Context` over the
shared device, so module cache, fusion queue, field cache and
expression counters are private; everything the *shared* device
records while a tenant's chunk runs is routed to that tenant through
three hooks the server installs:

* ``device.stats.attribution`` — modeled seconds / wall / launches by
  operation kind, keyed on the tenant whose slice is running;
* ``field_cache.attribution`` (per tenant) — software-cache events;
* ``timeline.tenant`` — every span emitted during a slice carries an
  ``args["tenant"]`` tag, so ``tenant.timeline()`` is an exact
  per-tenant view of the shared trace.

The scheduler only decides *when* ready chunks run, never *what* they
compute: a single-tenant workload is bitwise identical (results,
reduction scalars, modeled clock, spans modulo the tenant tag) to the
same workload on a bare :class:`~repro.core.context.Context`.

Admission control
-----------------
Sessions declare a device-memory footprint (``mem_bytes``).  A
declared footprint larger than the budget can never run and raises
:class:`AdmissionRejected` at submit; one that does not *currently*
fit is queued and admitted as running sessions complete.  A session
that still exhausts the pool at runtime — the field cache's
:class:`~repro.memory.cache.SpillImpossible` path, reachable because
undeclared footprints are admitted optimistically — is failed in
place: its pending fused statements are discarded, its generator (and
with it, its fields) dropped, and no other tenant observes anything
but the freed memory.
"""

from __future__ import annotations

from ..core.context import Context
from ..device.gpu import Device
from ..device.specs import DeviceSpec, K20X_ECC_OFF
from ..diagnostics import SERVE_MODES, serve_mode
from ..driver.cache import KernelCache
from ..memory.cache import SpillImpossible
from .scheduler import make_scheduler
from .tenant import QUEUED, READY, Session, Tenant, TenantStats


class AdmissionRejected(Exception):
    """A session's declared footprint can never be admitted.

    Raised at submit time when ``mem_bytes`` exceeds the server's
    memory budget outright (queueing would deadlock: no amount of
    completions frees enough).  Carries enough structure for callers
    to report or degrade gracefully.
    """

    def __init__(self, tenant: str, session: str, requested: int,
                 budget: int, reason: str):
        self.tenant = tenant
        self.session = session
        self.requested = requested
        self.budget = budget
        self.reason = reason
        super().__init__(
            f"admission rejected for {tenant}/{session}: {reason} "
            f"(requested {requested} bytes, budget {budget})")

    @property
    def diagnostic(self):
        """The rejection as a structured diagnostic record."""
        from ..diagnostics import Diagnostic, Severity

        return Diagnostic(
            severity=Severity.ERROR, pass_name="admission-control",
            message=self.reason, obj=f"{self.tenant}/{self.session}",
            location=f"requested={self.requested} budget={self.budget}")


class SharedKernelCache(KernelCache):
    """One compiled-kernel cache shared across every tenant.

    Kernel PTX derives from *structural* expression signatures — field
    uids never appear in the text — so two tenants running the same
    workload shape produce byte-identical PTX and share one driver-JIT
    translation.  The cache keeps global counters (inherited) plus
    per-tenant hit/miss splits, and counts a *cross-tenant* hit when
    the tenant that compiled a digest differs from the one hitting it:
    the multi-tenant payoff the serving benchmark measures.
    """

    def __init__(self):
        super().__init__()
        #: tenant whose slice is running (set by the server's loop)
        self.current_tenant: str | None = None
        #: PTX digest -> name of the tenant that first compiled it
        self._owner: dict[str, str] = {}
        self.hits_by_tenant: dict[str, int] = {}
        self.misses_by_tenant: dict[str, int] = {}
        self.cross_hits_by_tenant: dict[str, int] = {}
        #: wired by :class:`Server` so per-tenant JIT counters also
        #: land on the owning :class:`~repro.serve.tenant.TenantStats`
        self._tenant_stats: dict[str, TenantStats] = {}

    @property
    def cross_tenant_hits(self) -> int:
        """Total hits on kernels compiled by a *different* tenant."""
        return sum(self.cross_hits_by_tenant.values())

    def get_or_compile(self, ptx_text: str):
        key = self.key_for(ptx_text)
        cached_before = key in self._kernels
        kernel, was_cached = super().get_or_compile(ptx_text)
        who = self.current_tenant
        if who is None:
            return kernel, was_cached
        stats = self._tenant_stats.get(who)
        if cached_before:
            self.hits_by_tenant[who] = self.hits_by_tenant.get(who, 0) + 1
            if stats is not None:
                stats.jit_hits += 1
            if self._owner.get(key, who) != who:
                self.cross_hits_by_tenant[who] = (
                    self.cross_hits_by_tenant.get(who, 0) + 1)
                if stats is not None:
                    stats.jit_shared_hits += 1
        else:
            self._owner[key] = who
            self.misses_by_tenant[who] = self.misses_by_tenant.get(who, 0) + 1
            if stats is not None:
                stats.jit_misses += 1
        return kernel, was_cached


class ServingStats:
    """Server-wide counters (per-tenant detail lives on TenantStats)."""

    def __init__(self):
        #: scheduling decisions taken by the drain loop
        self.decisions = 0
        #: sessions held back by admission control at least once
        self.admission_queued = 0
        #: sessions rejected (at submit or by a runtime spill failure)
        self.admission_rejections = 0
        self.sessions_submitted = 0
        self.sessions_completed = 0
        #: modeled seconds the device sat idle waiting for arrivals
        self.idle_s = 0.0

    def as_json(self) -> dict:
        return {"decisions": self.decisions,
                "admission_queued": self.admission_queued,
                "admission_rejections": self.admission_rejections,
                "sessions_submitted": self.sessions_submitted,
                "sessions_completed": self.sessions_completed,
                "idle_s": self.idle_s}


class Server:
    """Fair-share multiplexer of tenant sessions over one device."""

    def __init__(self, spec: DeviceSpec = K20X_ECC_OFF,
                 pool_capacity: int | None = None,
                 policy: str | None = None,
                 quantum_s: float = 50e-6,
                 mem_budget: int | None = None,
                 faults=None):
        resolved = policy if policy is not None else serve_mode()
        if resolved not in SERVE_MODES:
            raise ValueError(
                f"unknown serving policy {resolved!r}: accepted values "
                f"are {', '.join(SERVE_MODES)}")
        #: resolved policy: "fair", "fifo" or "off" ("on" is an alias)
        self.policy = "fair" if resolved == "on" else resolved
        self.device = Device(spec, pool_capacity=pool_capacity,
                             faults=faults)
        self.kernel_cache = SharedKernelCache()
        self.scheduler = make_scheduler(
            "fifo" if self.policy == "off" else self.policy,
            quantum_s=quantum_s)
        self.quantum_s = quantum_s
        #: admission budget in bytes (defaults to the pool capacity)
        self.mem_budget = (mem_budget if mem_budget is not None
                           else self.device.pool.capacity)
        #: ``off`` disables admission queueing entirely: sessions run
        #: back-to-back exactly as bare contexts would
        self.admission_enabled = self.policy != "off"
        self.tenants: dict[str, Tenant] = {}
        self.stats = ServingStats()
        self._reserved = 0
        #: admission queue (FIFO — held sessions admit in order, so a
        #: large request cannot be starved by later small ones)
        self._held: list[Session] = []
        #: submitted sessions whose modeled arrival is in the future
        self._arrivals: list[Session] = []
        self.sessions: list[Session] = []
        #: tenant whose slice is running (attribution target)
        self._current: str | None = None
        self._clock0 = self.device.clock
        self._idle_s = 0.0
        # route every shared-device cost to the running tenant
        self.device.stats.attribution = self._attribute
        if self.device.faults.plan is not None:
            self.device.faults.plan.tenant_hook = lambda: self._current
        self.kernel_cache._tenant_stats = {}

    # -- tenants --------------------------------------------------------

    def tenant(self, name: str, weight: float = 1.0) -> Tenant:
        """Register a tenant: a private context over the shared pool."""
        if name in self.tenants:
            raise ValueError(f"tenant {name!r} already registered")
        ctx = Context(spec=self.device.spec, device=self.device,
                      kernel_cache=self.kernel_cache)
        t = Tenant(name, ctx, weight=weight, server=self)
        stats = t.stats

        def cache_attribution(event: str, uid: int, nbytes: int,
                              _s=stats) -> None:
            _s.cache_events[event] = _s.cache_events.get(event, 0) + 1

        ctx.field_cache.attribution = cache_attribution
        self.tenants[name] = t
        self.kernel_cache._tenant_stats[name] = stats
        return t

    def _attribute(self, kind: str, name: str, modeled_s: float,
                   wall_s: float, nbytes: int) -> None:
        t = self.tenants.get(self._current) if self._current else None
        if t is None:
            return
        st = t.stats
        st.modeled_s_by_kind[kind] = (
            st.modeled_s_by_kind.get(kind, 0.0) + modeled_s)
        st.wall_s += wall_s
        if kind in ("kernel", "fold"):
            st.launches += 1

    # -- the virtual clock ----------------------------------------------

    @property
    def vclock_s(self) -> float:
        """Server time: modeled device seconds since construction,
        plus idle gaps spent waiting for future arrivals."""
        return (self.device.clock - self._clock0) + self._idle_s

    # -- submission / admission -----------------------------------------

    def submit(self, tenant: Tenant, workload, name: str | None = None,
               arrival_s: float = 0.0, mem_bytes: int = 0) -> Session:
        """Submit one workload; returns its :class:`Session` handle.

        Raises :class:`AdmissionRejected` only when the declared
        footprint exceeds the budget outright; a footprint that does
        not fit *now* queues and admits later.
        """
        session = Session(tenant, workload, name=name,
                          arrival_s=arrival_s, mem_bytes=mem_bytes)
        tenant.stats.sessions_submitted += 1
        self.stats.sessions_submitted += 1
        self.sessions.append(session)
        if self.admission_enabled and session.mem_bytes > self.mem_budget:
            reason = "declared footprint exceeds the memory budget"
            session.fail(reason)
            tenant.stats.sessions_rejected += 1
            self.stats.admission_rejections += 1
            raise AdmissionRejected(tenant.name, session.name,
                                    session.mem_bytes, self.mem_budget,
                                    reason)
        if session.arrival_s > self.vclock_s:
            self._arrivals.append(session)
        else:
            self._try_admit(session)
        return session

    def _try_admit(self, session: Session) -> None:
        if (self.admission_enabled
                and self._reserved + session.mem_bytes > self.mem_budget):
            if session.state != QUEUED:
                session.state = QUEUED
                self.stats.admission_queued += 1
            self._held.append(session)
            return
        self._reserved += session.mem_bytes
        session.state = READY
        self.scheduler.add(session)

    def _admit_held(self) -> None:
        # FIFO admission: stop at the first session that still does
        # not fit so later small requests cannot starve it
        while self._held:
            head = self._held[0]
            if self._reserved + head.mem_bytes > self.mem_budget:
                return
            self._held.pop(0)
            self._reserved += head.mem_bytes
            head.state = READY
            self.scheduler.add(head)

    def _release_arrivals(self) -> None:
        now = self.vclock_s
        due = [s for s in self._arrivals if s.arrival_s <= now]
        if not due:
            return
        self._arrivals = [s for s in self._arrivals if s.arrival_s > now]
        for s in sorted(due, key=lambda s: s.arrival_s):
            self._try_admit(s)

    def _release(self, session: Session) -> None:
        self._reserved -= session.mem_bytes
        self._admit_held()

    # -- the drain loop --------------------------------------------------

    def drain(self) -> list[Session]:
        """Run until every submitted session completes or fails."""
        while True:
            self._release_arrivals()
            self._admit_held()
            choice = self.scheduler.next()
            if choice is None:
                if self._arrivals:
                    # idle forward to the earliest future arrival
                    gap = (min(s.arrival_s for s in self._arrivals)
                           - self.vclock_s)
                    if gap > 0.0:
                        self._idle_s += gap
                        self.stats.idle_s += gap
                    continue
                break
            session, budget_s = choice
            self.stats.decisions += 1
            self._run_slice(session, budget_s)
        return self.sessions

    def _run_slice(self, session: Session, budget_s: float) -> None:
        tenant = session.tenant
        ctx = tenant.ctx
        timeline = self.device.runtime.timeline
        clock_before = self.device.clock
        self._current = tenant.name
        self.kernel_cache.current_tenant = tenant.name
        timeline.tenant = tenant.name
        outcome = "continue"
        try:
            with ctx:
                if session.state == READY:
                    session.started_s = self.vclock_s
                    session.start()
                try:
                    while True:
                        if session.step():
                            # land the tail of the deferred queue while
                            # this tenant's attribution is still active
                            ctx.flush()
                            outcome = "done"
                            break
                        if self.device.clock - clock_before >= budget_s:
                            break
                except SpillImpossible as exc:
                    # this session cannot fit: drop its pending fused
                    # statements (they reference a dead workload) and
                    # its generator frame, freeing the fields — other
                    # tenants observe nothing but the released memory
                    ctx.fusion.discard()
                    session.fail(f"memory admission failure: {exc}")
                    outcome = "rejected"
        finally:
            timeline.tenant = None
            self.kernel_cache.current_tenant = None
            self._current = None
        used = self.device.clock - clock_before
        self.scheduler.charge(session, used)
        if outcome == "done":
            session.completed_s = self.vclock_s
            tenant.stats.sessions_completed += 1
            self.stats.sessions_completed += 1
            self.scheduler.remove(session)
            self._release(session)
        elif outcome == "rejected":
            tenant.stats.sessions_rejected += 1
            self.stats.admission_rejections += 1
            self.scheduler.remove(session)
            self._release(session)

    # -- reporting -------------------------------------------------------

    def as_json(self) -> dict:
        """The serving block of ``repro.lint --json`` (schema v7)."""
        return {
            "mode": self.policy,
            "scheduler": {"policy": self.scheduler.policy,
                          "decisions": self.stats.decisions,
                          "quantum_s": self.quantum_s},
            "admission": {"budget_bytes": self.mem_budget,
                          "queued": self.stats.admission_queued,
                          "rejections": self.stats.admission_rejections},
            "jit_cache": {
                "kernels": len(self.kernel_cache),
                "cross_tenant_hits": self.kernel_cache.cross_tenant_hits,
                "hits_by_tenant": dict(self.kernel_cache.hits_by_tenant),
                "misses_by_tenant": dict(
                    self.kernel_cache.misses_by_tenant)},
            "tenants": {
                name: dict(t.stats.as_json(), weight=t.weight)
                for name, t in sorted(self.tenants.items())},
            "sessions": self.stats.as_json(),
        }


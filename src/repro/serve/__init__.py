"""Multi-tenant serving: fair-share scheduling over one device pool.

Public surface:

* :class:`~repro.serve.server.Server` — the multiplexer (shared
  device + shared JIT cache + scheduler + admission control).
* :class:`~repro.serve.tenant.Tenant` / :class:`~repro.serve.tenant.
  Session` — the scheduled units, with strictly isolated stats.
* :class:`~repro.serve.server.AdmissionRejected` — typed submit-time
  rejection under memory pressure.
* :class:`~repro.serve.scheduler.FairShareScheduler` /
  :class:`~repro.serve.scheduler.FIFOScheduler` — the policies behind
  the ``REPRO_SERVE`` knob (:func:`repro.diagnostics.serve_mode`).
* :mod:`~repro.serve.workloads` — canned chunked workloads (CG,
  stencil sweeps) used by the tests and ``benchmarks/bench_serving``.
"""

from .scheduler import FairShareScheduler, FIFOScheduler, make_scheduler
from .server import AdmissionRejected, Server, ServingStats, SharedKernelCache
from .tenant import Session, Tenant, TenantStats
from .workloads import (
    cg_diag_workload,
    shift_sweep_workload,
    vm_shift_workload,
)

__all__ = [
    "AdmissionRejected",
    "FIFOScheduler",
    "FairShareScheduler",
    "Server",
    "ServingStats",
    "Session",
    "SharedKernelCache",
    "Tenant",
    "TenantStats",
    "cg_diag_workload",
    "make_scheduler",
    "shift_sweep_workload",
    "vm_shift_workload",
]

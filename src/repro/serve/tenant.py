"""Tenants and sessions: the units the serving layer schedules.

A :class:`Tenant` wraps one per-tenant :class:`~repro.core.context.Context`
built over the server's *shared* device (one memory pool, one stream
runtime) and *shared* compiled-kernel cache.  Everything a tenant
observes through its context — module cache, fusion queue, field
cache, expression counters — is private to it; everything the device
records while the tenant's work runs is attributed to it through the
stats hooks and the timeline tenant tag, so no counter or span from
one tenant bleeds into another's report.

A :class:`Session` is one schedulable workload: a generator factory
``workload(ctx)`` whose generator performs a bounded chunk of work per
``next()`` (one solver iteration, one sweep) and returns its result
via ``StopIteration``.  The scheduler interleaves sessions at those
yield points; the serving layer never alters *what* a session
computes, only *when* its chunks run.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TenantStats:
    """Per-tenant serving counters (strictly isolated)."""

    #: kernel launches attributed to this tenant (folds included)
    launches: int = 0
    #: modeled seconds attributed, split by operation kind
    #: (kernel/fold/h2d/d2h/jit)
    modeled_s_by_kind: dict = field(default_factory=dict)
    #: measured host wall-clock of this tenant's kernel executions
    wall_s: float = 0.0
    #: field software-cache events (hit/miss/page_in/page_out/spill)
    cache_events: dict = field(default_factory=dict)
    #: shared compiled-kernel cache outcomes for this tenant
    jit_hits: int = 0
    jit_misses: int = 0
    #: subset of ``jit_hits`` where another tenant compiled the kernel
    jit_shared_hits: int = 0
    #: scheduler accounting
    sessions_submitted: int = 0
    sessions_completed: int = 0
    sessions_rejected: int = 0
    #: modeled service seconds the scheduler charged to this tenant
    service_s: float = 0.0

    @property
    def modeled_s(self) -> float:
        """Total modeled seconds attributed to this tenant."""
        return sum(self.modeled_s_by_kind.values())

    def as_json(self) -> dict:
        return {
            "launches": self.launches,
            "modeled_s": self.modeled_s,
            "modeled_s_by_kind": dict(self.modeled_s_by_kind),
            "wall_s": self.wall_s,
            "cache_events": dict(self.cache_events),
            "jit_hits": self.jit_hits,
            "jit_misses": self.jit_misses,
            "jit_shared_hits": self.jit_shared_hits,
            "sessions_submitted": self.sessions_submitted,
            "sessions_completed": self.sessions_completed,
            "sessions_rejected": self.sessions_rejected,
            "service_s": self.service_s,
        }


class Tenant:
    """One tenant: a weighted principal with its own context state."""

    def __init__(self, name: str, ctx, weight: float = 1.0,
                 server=None):
        if weight <= 0.0:
            raise ValueError(f"tenant weight must be positive, "
                             f"got {weight}")
        self.name = name
        self.ctx = ctx
        self.weight = float(weight)
        self.stats = TenantStats()
        self._server = server

    def timeline(self):
        """This tenant's spans on the shared timeline (tag-filtered)."""
        return self.ctx.device.runtime.timeline.for_tenant(self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Tenant {self.name} weight={self.weight:g} "
                f"{self.stats.sessions_completed}/"
                f"{self.stats.sessions_submitted} sessions>")


#: session lifecycle states
PENDING = "pending"        # submitted, waiting for arrival/admission
QUEUED = "queued"          # held back by admission control (memory)
READY = "ready"            # admitted, schedulable
RUNNING = "running"        # between first and last step
DONE = "done"              # completed; ``result`` holds the value
REJECTED = "rejected"      # failed admission (``error`` names why)


class Session:
    """One schedulable workload instance owned by a tenant."""

    _counter = 0

    def __init__(self, tenant: Tenant, workload, name: str | None = None,
                 arrival_s: float = 0.0, mem_bytes: int = 0):
        Session._counter += 1
        self.tenant = tenant
        self.workload = workload
        self.name = name or f"session{Session._counter}"
        #: modeled arrival time (server virtual clock); the session is
        #: not schedulable before it
        self.arrival_s = float(arrival_s)
        #: declared device-memory footprint for admission control
        #: (0 = undeclared: always admitted)
        self.mem_bytes = int(mem_bytes)
        self.state = PENDING
        self.result = None
        #: rendered failure reason (never the exception object itself:
        #: a live traceback would pin the workload's fields and their
        #: device allocations)
        self.error: str | None = None
        #: server-virtual-clock stamps
        self.started_s: float | None = None
        self.completed_s: float | None = None
        self.steps = 0
        self._gen = None

    @property
    def latency_s(self) -> float | None:
        """Makespan latency: completion minus arrival (modeled)."""
        if self.completed_s is None:
            return None
        return self.completed_s - self.arrival_s

    def start(self) -> None:
        self._gen = self.workload(self.tenant.ctx)
        self.state = RUNNING

    def step(self) -> bool:
        """Run one chunk; returns True when the session completed."""
        self.steps += 1
        try:
            next(self._gen)
        except StopIteration as stop:
            self.result = stop.value
            self._gen = None
            self.state = DONE
            return True
        return False

    def fail(self, reason: str, state: str = REJECTED) -> None:
        self.error = reason
        self._gen = None        # drop the frame: frees its fields
        self.state = state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Session {self.name} tenant={self.tenant.name} "
                f"{self.state} steps={self.steps}>")

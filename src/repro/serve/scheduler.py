"""Fair-share and FIFO scheduling of sessions over one device.

The server's loop asks its scheduler which session runs next and for
how much modeled service; the scheduler never touches the sessions'
data — fairness is purely a matter of *when* each ready chunk of work
is placed on the shared lanes.

:class:`FIFOScheduler`
    Non-preemptive first-come-first-served: the head session runs to
    completion before the next starts.  The baseline every serving
    system is measured against — and exactly what head-of-line
    blocking looks like when a batch job arrives before interactive
    traffic.

:class:`FairShareScheduler`
    Weighted deficit round-robin (DRR) over tenants: each visit tops a
    tenant's deficit up by ``quantum_s * weight`` and runs its
    sessions (FIFO within the tenant) until the deficit is spent,
    charging the *actual* modeled seconds each step consumed.  Tenants
    with no ready work bank nothing (their deficit resets), so an idle
    tenant cannot burst past active ones later — the standard DRR
    anti-starvation rule, stride-equivalent for steady loads.
"""

from __future__ import annotations

import math
from collections import deque

from .tenant import Session


class FIFOScheduler:
    """First-come-first-served, one session at a time, to completion."""

    policy = "fifo"

    def __init__(self):
        self._queue: deque[Session] = deque()

    def add(self, session: Session) -> None:
        self._queue.append(session)

    def remove(self, session: Session) -> None:
        try:
            self._queue.remove(session)
        except ValueError:
            pass

    def next(self) -> tuple[Session, float] | None:
        """The session to run next and its service budget (seconds)."""
        if not self._queue:
            return None
        return self._queue[0], math.inf

    def charge(self, session: Session, used_s: float) -> None:
        session.tenant.stats.service_s += used_s

    @property
    def pending(self) -> int:
        return len(self._queue)


class FairShareScheduler:
    """Weighted deficit round-robin over tenants, FIFO within each."""

    policy = "fair"

    def __init__(self, quantum_s: float = 50e-6):
        if quantum_s <= 0.0:
            raise ValueError("quantum must be positive")
        self.quantum_s = quantum_s
        self._queues: dict[str, deque[Session]] = {}
        self._deficit: dict[str, float] = {}
        #: round-robin order of tenant names with ready work
        self._order: deque[str] = deque()

    def add(self, session: Session) -> None:
        name = session.tenant.name
        q = self._queues.get(name)
        if q is None:
            q = self._queues[name] = deque()
        if not q and name not in self._order:
            self._order.append(name)
            # no banking: an idle tenant re-enters with a clean slate
            self._deficit[name] = 0.0
        q.append(session)

    def remove(self, session: Session) -> None:
        q = self._queues.get(session.tenant.name)
        if q is None:
            return
        try:
            q.remove(session)
        except ValueError:
            return
        if not q:
            self._retire(session.tenant.name)

    def _retire(self, name: str) -> None:
        try:
            self._order.remove(name)
        except ValueError:
            pass
        self._deficit.pop(name, None)

    def next(self) -> tuple[Session, float] | None:
        if not self._order:
            return None
        name = self._order[0]
        session = self._queues[name][0]
        if self._deficit[name] <= 0.0:
            self._deficit[name] += self.quantum_s * session.tenant.weight
        return session, self._deficit[name]

    def charge(self, session: Session, used_s: float) -> None:
        name = session.tenant.name
        session.tenant.stats.service_s += used_s
        if name not in self._deficit:
            return
        self._deficit[name] -= used_s
        if self._deficit[name] <= 0.0 and name in self._queues:
            # quantum spent: rotate to the next tenant in the round
            if self._order and self._order[0] == name:
                self._order.rotate(-1)

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())


def make_scheduler(policy: str, quantum_s: float = 50e-6):
    """The scheduler implementing ``policy`` (resolved knob value)."""
    if policy in ("fair", "on"):
        return FairShareScheduler(quantum_s=quantum_s)
    if policy in ("fifo", "off"):
        return FIFOScheduler()
    raise ValueError(f"unknown serving policy {policy!r}")

"""Canned chunked workloads for the serving layer.

A serving workload is a *generator factory*: calling it with a tenant
context returns a generator that performs one bounded chunk of work
per ``next()`` (one solver iteration, one sweep) and returns its
result via ``StopIteration``.  Yield points are where the scheduler
may switch tenants; everything between two yields runs back-to-back
on the shared device exactly as it would on a bare context, which is
what makes the serving layer's bitwise-identity contract hold by
construction.

The workloads here mirror the repo's reference computations —
:func:`cg_diag_workload` is the fused CG solve of
:mod:`repro.qcd.solver` on ``A = diag(w)``, chunked one iteration per
yield; :func:`shift_sweep_workload` is a nearest-neighbor stencil
sweep (the dslash memory-access pattern without the spin algebra).
Both are deterministic functions of their seed: two tenants given the
same parameters produce byte-identical PTX (kernel text depends only
on expression *structure*), which is exactly what the shared JIT
cache deduplicates across tenants.
"""

from __future__ import annotations

import numpy as np

from ..core.expr import shift
from ..core.reduction import innerProduct, norm2
from ..qdp.fields import LatticeField, latt_fermion, latt_real
from ..qdp.lattice import Lattice


def cg_diag_workload(dims=(4, 4, 4, 4), seed: int = 17,
                     tol: float = 1e-8, max_iter: int = 100):
    """A chunked CG solve on ``A = diag(w)``: one iteration per yield.

    Returns (via ``StopIteration``) a dict with the solution array,
    iteration count and final relative residual — bitwise identical
    to driving the same generator to completion on a bare context.
    """

    def workload(ctx):
        lat = Lattice(dims)
        rng = np.random.default_rng(seed)
        w = latt_real(lat, context=ctx)
        w.from_numpy(rng.uniform(0.5, 1.5, lat.nsites))
        b = latt_fermion(lat, context=ctx)
        b.gaussian(rng)
        x = latt_fermion(lat, context=ctx)

        def mk():
            return LatticeField(lat, x.spec, context=ctx)

        r, p, ap = mk(), mk(), mk()

        def apply_op(dest, src):
            dest.assign(w.ref() * src.ref())

        b2 = norm2(b)
        apply_op(ap, x)
        r.assign(b - ap)
        p.assign(r.ref())
        rr = norm2(r)
        rel = (rr / b2) ** 0.5
        iterations = 0
        yield                     # setup chunk
        while rel > tol and iterations < max_iter:
            iterations += 1
            apply_op(ap, p)
            pap = innerProduct(p, ap).real
            alpha = rr / pap
            x.assign(x + alpha * p)
            r.assign(r - alpha * ap)
            rr_new = norm2(r)
            rel = (rr_new / b2) ** 0.5
            if rel <= tol:
                break
            beta = rr_new / rr
            p.assign(r + beta * p)
            rr = rr_new
            yield                 # one CG iteration per chunk
        ctx.flush()
        return {"x": x.to_numpy(), "iterations": iterations,
                "residual": rel, "converged": rel <= tol}

    return workload


def shift_sweep_workload(dims=(4, 4, 4, 4), seed: int = 23,
                         sweeps: int = 8):
    """Chunked nearest-neighbor stencil sweeps: one sweep per yield.

    Each sweep replaces the field with the average of its 2*Nd
    neighbors (the dslash gather pattern); the result is the final
    field plus its norm.  Deterministic in ``seed``.
    """

    def workload(ctx):
        lat = Lattice(dims)
        rng = np.random.default_rng(seed)
        f = latt_fermion(lat, context=ctx)
        f.gaussian(rng)
        g = latt_fermion(lat, context=ctx)
        nd = len(dims)
        coeff = 1.0 / (2 * nd)
        for _ in range(sweeps):
            acc = coeff * shift(f.ref(), +1, 0)
            for mu in range(nd):
                if mu > 0:
                    acc = acc + coeff * shift(f.ref(), +1, mu)
                acc = acc + coeff * shift(f.ref(), -1, mu)
            g.assign(acc)
            f, g = g, f
            yield                 # one sweep per chunk
        final = norm2(f)
        ctx.flush()
        return {"f": f.to_numpy(), "norm2": final, "sweeps": sweeps}

    return workload


def vm_shift_workload(global_dims=(4, 4, 4, 8), grid_dims=(1, 1, 1, 2),
                      seed: int = 31, sweeps: int = 3,
                      faults=False, resilience=False,
                      recover_policy: str = "buddy"):
    """A multi-rank session: boundary-crossing shifts on a private VM.

    The tenant brings its own :class:`~repro.comm.VirtualMachine`
    (its own rank devices — the shared serving device only hosts the
    session's bookkeeping), one global shift sweep per yield.  With a
    ``faults`` plan carrying ``rank.kill`` specs and
    ``resilience="recover"``, a rank dies and recovers *inside* this
    tenant's session; the returned dict reports what the resilience
    layer saw, and co-tenants must be bitwise unperturbed — which the
    chaos harness asserts.

    ``faults=False`` (not ``None``) by default: a tenant's private
    machine must not silently pick up an ambient process-wide plan.
    """

    def workload(ctx):
        from ..comm import VirtualMachine
        from ..qdp.typesys import fermion

        vm = VirtualMachine(global_dims, grid_dims, faults=faults,
                            resilience=resilience,
                            recover_policy=recover_policy)
        g = vm.global_lattice
        rng = np.random.default_rng(seed)
        data = (rng.normal(size=(g.nsites,) + (4, 3))
                + 1j * rng.normal(size=(g.nsites,) + (4, 3)))
        f = vm.field(fermion(), "psi")
        f.from_global(data)
        d = vm.field(fermion(), "chi")
        nd = len(global_dims)
        for s in range(sweeps):
            vm.shift_into(d, f, (s % nd), +1)
            f, d = d, f
            yield                 # one global sweep per chunk
        stats = (vm.resilience.as_json()
                 if vm.resilience is not None else None)
        return {"f": f.to_global(), "norm2": vm.norm2(f),
                "resilience": stats}

    return workload

"""Control-flow graphs and dataflow analysis over PTX streams.

The verifier and the liveness analysis both need to reason about
*paths* through a kernel, not just its textual order: a register may
be defined on one arm of a branch only, and a value may be live
around a loop's back edge.  This module provides the shared
machinery: basic-block construction from a flat instruction list,
reachability, dominators, and a generic forward/backward dataflow
solver (a classic round-robin fixpoint — kernels are tiny, so no
worklist heuristics are needed).

Control flow in the dialect is ``bra`` (optionally guarded) and
``ret`` (optionally guarded); a guarded terminator falls through as
well as transferring, an unguarded one does not.  Branches to labels
that do not exist simply produce no edge — the verifier's operand
pass reports them, and every other analysis stays well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .isa import Instruction


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``start``/``stop`` index into the owning CFG's instruction list
    (half-open).  ``label`` is the block's leading label, if any.
    """

    index: int
    start: int
    stop: int
    label: str | None = None
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    def instructions(self, all_instructions: list[Instruction]):
        return all_instructions[self.start:self.stop]


class CFG:
    """The control-flow graph of one kernel."""

    def __init__(self, instructions: list[Instruction],
                 blocks: list[BasicBlock]):
        self.instructions = instructions
        self.blocks = blocks

    @property
    def entry(self) -> int:
        return 0

    def block_of(self, inst_index: int) -> int:
        """The block containing instruction ``inst_index``."""
        for b in self.blocks:
            if b.start <= inst_index < b.stop:
                return b.index
        raise IndexError(f"instruction {inst_index} not in any block")

    def reachable(self) -> set[int]:
        """Blocks reachable from the entry."""
        seen: set[int] = set()
        stack = [self.entry] if self.blocks else []
        while stack:
            b = stack.pop()
            if b in seen:
                continue
            seen.add(b)
            stack.extend(self.blocks[b].successors)
        return seen

    def rpo(self) -> list[int]:
        """Reverse postorder over the reachable blocks."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(b: int) -> None:
            # iterative DFS: (block, next-successor-position) pairs
            stack = [(b, 0)]
            seen.add(b)
            while stack:
                blk, i = stack[-1]
                succs = self.blocks[blk].successors
                if i < len(succs):
                    stack[-1] = (blk, i + 1)
                    s = succs[i]
                    if s not in seen:
                        seen.add(s)
                        stack.append((s, 0))
                else:
                    order.append(blk)
                    stack.pop()

        if self.blocks:
            visit(self.entry)
        order.reverse()
        return order

    def dominators(self) -> dict[int, set[int]]:
        """Dominator sets for every reachable block.

        ``b in dominators()[x]`` iff every path from the entry to
        ``x`` passes through ``b``.  Computed with the standard
        iterative intersection over reverse postorder.
        """
        order = self.rpo()
        reachable = set(order)
        dom: dict[int, set[int]] = {self.entry: {self.entry}}
        changed = True
        while changed:
            changed = False
            for b in order:
                if b == self.entry:
                    continue
                preds = [p for p in self.blocks[b].predecessors
                         if p in reachable and p in dom]
                if not preds:
                    continue
                new = set.intersection(*(dom[p] for p in preds)) | {b}
                if dom.get(b) != new:
                    dom[b] = new
                    changed = True
        return dom


def build_cfg(instructions: list[Instruction]) -> CFG:
    """Partition an instruction stream into basic blocks with edges."""
    n = len(instructions)
    # -- leaders: entry, label targets, and fall-throughs of terminators
    leaders = {0}
    for i, inst in enumerate(instructions):
        if inst.opcode == "label":
            leaders.add(i)
        elif inst.opcode in ("bra", "ret") and i + 1 < n:
            leaders.add(i + 1)
    starts = sorted(leaders) if n else [0]

    blocks: list[BasicBlock] = []
    label_block: dict[str, int] = {}
    for bi, start in enumerate(starts):
        stop = starts[bi + 1] if bi + 1 < len(starts) else n
        label = None
        if start < n and instructions[start].opcode == "label":
            label = instructions[start].label
        blocks.append(BasicBlock(index=bi, start=start, stop=stop,
                                 label=label))
        if label is not None:
            label_block[label] = bi

    def link(src: int, dst: int) -> None:
        if dst not in blocks[src].successors:
            blocks[src].successors.append(dst)
        if src not in blocks[dst].predecessors:
            blocks[dst].predecessors.append(src)

    for b in blocks:
        if b.start == b.stop:          # empty block (empty program)
            continue
        last = instructions[b.stop - 1]
        falls_through = True
        if last.opcode == "bra":
            target = label_block.get(last.label)
            if target is not None:
                link(b.index, target)
            falls_through = last.guard is not None
        elif last.opcode == "ret":
            falls_through = last.guard is not None
        if falls_through and b.index + 1 < len(blocks):
            link(b.index, b.index + 1)
    return CFG(instructions, blocks)


class DataflowAnalysis:
    """Base class for dataflow problems over a :class:`CFG`.

    Facts are arbitrary immutable values (typically ``frozenset``).
    Subclasses set ``direction`` and implement :meth:`boundary` (the
    fact at the entry for forward problems, at every exit for
    backward ones), :meth:`meet` and :meth:`transfer`.  ``transfer``
    receives the fact flowing *into* the block — for a backward
    problem that is the fact at the block's end.
    """

    direction = "forward"   # or "backward"

    def boundary(self):
        return frozenset()

    def meet(self, facts):
        """Combine facts from multiple edges (default: union)."""
        out = frozenset()
        for f in facts:
            out = out | f
        return out

    def transfer(self, block: BasicBlock, instructions, fact):
        raise NotImplementedError


def solve(cfg: CFG, analysis: DataflowAnalysis):
    """Run ``analysis`` to fixpoint over ``cfg``.

    Returns ``(inputs, outputs)``: dicts keyed by block index holding
    the fact entering and leaving each block's transfer function.
    Unreachable blocks are absent from both.  For backward problems
    "entering" means the fact at the block's *end*.
    """
    forward = analysis.direction == "forward"
    order = cfg.rpo()
    if not forward:
        order = list(reversed(order))
    reachable = set(order)

    inputs: dict[int, object] = {}
    outputs: dict[int, object] = {}
    changed = True
    while changed:
        changed = False
        for b in order:
            blk = cfg.blocks[b]
            edges = blk.predecessors if forward else blk.successors
            feeds = [outputs[e] for e in edges
                     if e in reachable and e in outputs]
            at_boundary = ((forward and b == cfg.entry)
                           or (not forward and not blk.successors))
            if at_boundary:
                feeds = feeds + [analysis.boundary()]
            if not feeds:
                continue
            fact_in = analysis.meet(feeds)
            fact_out = analysis.transfer(
                blk, blk.instructions(cfg.instructions), fact_in)
            if inputs.get(b) != fact_in or outputs.get(b) != fact_out:
                inputs[b] = fact_in
                outputs[b] = fact_out
                changed = True
    return inputs, outputs

"""Kernel builder: the imperative interface for emitting PTX.

The expression-template unparser (:mod:`repro.core.codegen`) drives a
``KernelBuilder`` to construct a kernel instruction-by-instruction —
the ``jit_add`` / ``jit_assign`` calls of paper Sec. III-C are methods
on this class.  The builder performs the *implicit type promotion*
described in Sec. III-D: PTX is strict about operand types, so mixed
precision expressions get ``cvt`` instructions inserted silently.
"""

from __future__ import annotations

from .isa import (
    BINARY_OPS,
    CMP_OPS,
    UNARY_OPS,
    Immediate,
    Instruction,
    KernelInfo,
    Operand,
    Param,
    PTXType,
    Register,
    Special,
)


class PTXBuildError(Exception):
    """Raised on a malformed build request (type mismatch etc.)."""


def promote(a: PTXType, b: PTXType) -> PTXType:
    """Implicit type promotion rule for mixed-type arithmetic.

    Widest-wins among floats; float wins over int; among ints the
    wider (and signed, on ties) wins.  Mirrors C arithmetic
    conversions, which is what the host-language expressions assume.
    """
    if a == b:
        return a
    if a.is_float and b.is_float:
        return a if a.nbytes >= b.nbytes else b
    if a.is_float:
        return a
    if b.is_float:
        return b
    if a.nbytes != b.nbytes:
        return a if a.nbytes > b.nbytes else b
    return a if a.is_signed else b


class KernelBuilder:
    """Builds a single ``.entry`` kernel.

    Usage: declare params, emit instructions through the typed helper
    methods, then :meth:`finish` to obtain the instruction list and
    resource metadata.  The builder tracks per-type register counts
    and accumulates flop/byte counters fed in by the code generator.
    """

    def __init__(self, name: str):
        self.name = name
        self.params: list[Param] = []
        self.instructions: list[Instruction] = []
        self._reg_counters: dict[PTXType, int] = {}
        self._label_counter = 0
        self.info = KernelInfo(name=name)

    # -- declarations ------------------------------------------------

    def add_param(self, name: str, type: PTXType, is_pointer: bool = False) -> Param:
        if any(p.name == name for p in self.params):
            raise PTXBuildError(f"duplicate parameter {name!r}")
        p = Param(name=name, type=type, is_pointer=is_pointer)
        self.params.append(p)
        return p

    def new_reg(self, type: PTXType) -> Register:
        idx = self._reg_counters.get(type, 0)
        self._reg_counters[type] = idx + 1
        return Register(type=type, index=idx)

    def new_label(self, stem: str = "L") -> str:
        self._label_counter += 1
        return f"${stem}_{self._label_counter}"

    # -- low-level emission -------------------------------------------

    def emit(self, inst: Instruction) -> None:
        self.instructions.append(inst)

    # -- typed helpers -------------------------------------------------

    def _coerce(self, op: Operand, want: PTXType) -> Operand:
        """Insert a ``cvt`` if ``op`` is a register of another type.

        Immediates are retyped in place (PTX immediates adopt the
        instruction type).  This is the implicit-promotion machinery.
        """
        if isinstance(op, Immediate):
            return Immediate(type=want, value=op.value)
        if isinstance(op, Special):
            # specials are u32; convert through a register
            if want == PTXType.U32:
                return op
            r32 = self.new_reg(PTXType.U32)
            self.emit(Instruction("mov", PTXType.U32, r32, (op,)))
            return self._coerce(r32, want)
        assert isinstance(op, Register)
        if op.type == want:
            return op
        dst = self.new_reg(want)
        self.emit(Instruction("cvt", want, dst, (op,), src_type=op.type))
        return dst

    def mov(self, src: Operand, type: PTXType | None = None) -> Register:
        if type is None:
            if isinstance(src, Special):
                type = PTXType.U32
            else:
                type = src.type
        dst = self.new_reg(type)
        src = src if isinstance(src, Special) else self._coerce(src, type)
        self.emit(Instruction("mov", type, dst, (src,)))
        return dst

    def imm(self, value: float | int, type: PTXType) -> Immediate:
        return Immediate(type=type, value=value)

    def binary(self, opcode: str, a: Operand, b: Operand,
               type: PTXType | None = None) -> Register:
        if opcode not in BINARY_OPS and opcode not in ("mul.lo", "mul.wide"):
            raise PTXBuildError(f"unknown binary opcode {opcode!r}")
        if type is None:
            ta = a.type if isinstance(a, Register) else (
                b.type if isinstance(b, Register) else PTXType.F64)
            tb = b.type if isinstance(b, Register) else ta
            type = promote(ta, tb)
        a = self._coerce(a, type)
        b = self._coerce(b, type)
        dst = self.new_reg(type)
        self.emit(Instruction(opcode, type, dst, (a, b)))
        if type.is_float and opcode in ("add", "sub", "mul", "div", "min", "max"):
            self.info.flops_per_site += 1
        return dst

    def add(self, a: Operand, b: Operand, type: PTXType | None = None) -> Register:
        return self.binary("add", a, b, type)

    def sub(self, a: Operand, b: Operand, type: PTXType | None = None) -> Register:
        return self.binary("sub", a, b, type)

    def mul(self, a: Operand, b: Operand, type: PTXType | None = None) -> Register:
        """Multiply.  Integer multiplies use ``mul.lo`` per PTX."""
        if type is None:
            ta = a.type if isinstance(a, Register) else (
                b.type if isinstance(b, Register) else PTXType.F64)
            tb = b.type if isinstance(b, Register) else ta
            type = promote(ta, tb)
        if type.is_int:
            a = self._coerce(a, type)
            b = self._coerce(b, type)
            dst = self.new_reg(type)
            self.emit(Instruction("mul.lo", type, dst, (a, b)))
            return dst
        return self.binary("mul", a, b, type)

    def div(self, a: Operand, b: Operand, type: PTXType | None = None) -> Register:
        return self.binary("div", a, b, type)

    def fma(self, a: Operand, b: Operand, c: Operand,
            type: PTXType | None = None) -> Register:
        """Fused multiply-add dst = a*b + c (floats) / mad.lo (ints)."""
        if type is None:
            parts = [x.type for x in (a, b, c) if isinstance(x, Register)]
            type = parts[0] if parts else PTXType.F64
            for t in parts[1:]:
                type = promote(type, t)
        a = self._coerce(a, type)
        b = self._coerce(b, type)
        c = self._coerce(c, type)
        dst = self.new_reg(type)
        if type.is_int:
            self.emit(Instruction("mad.lo", type, dst, (a, b, c)))
        else:
            self.emit(Instruction("fma", type, dst, (a, b, c)))
            self.info.flops_per_site += 2
        return dst

    def unary(self, opcode: str, a: Operand, type: PTXType | None = None) -> Register:
        if opcode not in UNARY_OPS:
            raise PTXBuildError(f"unknown unary opcode {opcode!r}")
        if type is None:
            type = a.type if isinstance(a, Register) else PTXType.F64
        a = self._coerce(a, type)
        dst = self.new_reg(type)
        self.emit(Instruction(opcode, type, dst, (a,)))
        if type.is_float:
            self.info.flops_per_site += 1
        return dst

    def neg(self, a: Operand, type: PTXType | None = None) -> Register:
        return self.unary("neg", a, type)

    def cvt(self, a: Register, to: PTXType) -> Register:
        if a.type == to:
            return a
        dst = self.new_reg(to)
        self.emit(Instruction("cvt", to, dst, (a,), src_type=a.type))
        return dst

    def setp(self, cmp: str, a: Operand, b: Operand,
             type: PTXType | None = None) -> Register:
        if cmp not in CMP_OPS:
            raise PTXBuildError(f"unknown comparison {cmp!r}")
        if type is None:
            type = a.type if isinstance(a, Register) else b.type
        a = self._coerce(a, type)
        b = self._coerce(b, type)
        dst = self.new_reg(PTXType.PRED)
        self.emit(Instruction("setp", type, dst, (a, b), cmp=cmp))
        return dst

    def selp(self, a: Operand, b: Operand, pred: Register,
             type: PTXType | None = None) -> Register:
        """dst = pred ? a : b."""
        if type is None:
            type = a.type if isinstance(a, Register) else b.type
        a = self._coerce(a, type)
        b = self._coerce(b, type)
        dst = self.new_reg(type)
        self.emit(Instruction("selp", type, dst, (a, b, pred)))
        return dst

    # -- memory --------------------------------------------------------

    def ld_param(self, param: Param) -> Register:
        dst = self.new_reg(param.type)
        self.emit(Instruction("ld.param", param.type, dst,
                              (_ParamRef(param.name),)))
        return dst

    def ld_global(self, addr: Register, type: PTXType,
                  guard: Register | None = None,
                  count_bytes: bool = True) -> Register:
        if addr.type != PTXType.U64:
            addr = self.cvt(addr, PTXType.U64)
        dst = self.new_reg(type)
        self.emit(Instruction("ld.global", type, dst, (addr,), guard=guard))
        if count_bytes:
            self.info.bytes_loaded_per_site += type.nbytes
        return dst

    def st_global(self, addr: Register, value: Operand, type: PTXType,
                  guard: Register | None = None,
                  count_bytes: bool = True) -> None:
        if addr.type != PTXType.U64:
            addr = self.cvt(addr, PTXType.U64)
        value = self._coerce(value, type)
        self.emit(Instruction("st.global", type, None, (addr, value), guard=guard))
        if count_bytes:
            self.info.bytes_stored_per_site += type.nbytes

    # -- control flow ----------------------------------------------------

    def bra(self, label: str, guard: Register | None = None,
            negated: bool = False) -> None:
        self.emit(Instruction("bra", None, None, (), label=label,
                              guard=guard, guard_negated=negated))

    def label(self, name: str) -> None:
        self.emit(Instruction("label", None, None, (), label=name))

    def ret(self) -> None:
        self.emit(Instruction("ret", None, None, ()))

    # -- special registers ------------------------------------------------

    def global_thread_id(self) -> Register:
        """Compute the canonical global thread index:
        ``ctaid.x * ntid.x + tid.x`` as an s32 register."""
        ctaid = self.mov(Special("ctaid"), PTXType.U32)
        ntid = self.mov(Special("ntid"), PTXType.U32)
        tid = self.mov(Special("tid"), PTXType.U32)
        gid = self.fma(ctaid, ntid, tid, PTXType.U32)
        return self.cvt(gid, PTXType.S32)

    # -- finalization -------------------------------------------------------

    def finish(self) -> KernelInfo:
        if not self.instructions or self.instructions[-1].opcode != "ret":
            self.ret()
        self.info.params = list(self.params)
        self.info.n_instructions = len(self.instructions)
        self.info.regs_per_thread = {
            t.value: n for t, n in sorted(self._reg_counters.items(),
                                          key=lambda kv: kv[0].value)
        }
        return self.info


def register_counts(instructions) -> dict[str, int]:
    """Per-type register-name counts for an instruction stream.

    The declaration count for each type is ``max index + 1`` over
    every register the stream mentions (destinations, sources and
    guards).  :meth:`KernelBuilder.finish` reports the builder's
    allocation counters instead — identical for freshly built kernels
    — while the IR pipeline uses this to size declarations after
    passes have deleted and renumbered registers.
    """
    counts: dict[PTXType, int] = {}

    def note(r: Register) -> None:
        counts[r.type] = max(counts.get(r.type, 0), r.index + 1)

    for inst in instructions:
        if inst.dst is not None:
            note(inst.dst)
        for op in inst.srcs:
            if isinstance(op, Register):
                note(op)
        if inst.guard is not None:
            note(inst.guard)
    return {t.value: n for t, n in sorted(counts.items(),
                                          key=lambda kv: kv[0].value)}


class _ParamRef:
    """Pseudo-operand naming a kernel parameter in ``ld.param``."""

    def __init__(self, pname: str):
        self.pname = pname

    @property
    def name(self) -> str:
        # The ld.param render path wraps this in brackets.
        return self.pname

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.pname

"""PTX module: the textual program handed to the driver JIT.

A :class:`PTXModule` owns one ``.entry`` kernel (our code generators
emit one kernel per expression, as in QDP-JIT) and renders it as PTX
assembly text.  The text is the *sole* interface to the simulated
driver (:mod:`repro.driver`): the driver parses it back, which keeps
an honest language boundary between code generation and execution —
exactly the property the paper relies on (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .builder import KernelBuilder
from .isa import Instruction, KernelInfo, PTXType


PTX_VERSION = "3.1"
PTX_TARGET = "sm_35"  # Kepler GK110, as in the paper's K20x/K20m


@dataclass
class PTXModule:
    """A complete PTX translation unit (header + one entry kernel)."""

    info: KernelInfo
    instructions: list[Instruction]

    @classmethod
    def from_builder(cls, builder: KernelBuilder) -> "PTXModule":
        info = builder.finish()
        return cls(info=info, instructions=list(builder.instructions))

    @property
    def name(self) -> str:
        return self.info.name

    def render(self) -> str:
        """Emit the module as PTX assembly text."""
        lines = [
            f".version {PTX_VERSION}",
            f".target {PTX_TARGET}",
            ".address_size 64",
            "",
            f".visible .entry {self.info.name}(",
        ]
        plines = []
        for p in self.info.params:
            suffix = " .ptr .global" if p.is_pointer else ""
            plines.append(f"    .param .{p.type.value}{suffix} {p.name}")
        lines.append(",\n".join(plines))
        lines.append(")")
        lines.append("{")
        # register declarations
        for tname, count in self.info.regs_per_thread.items():
            t = PTXType(tname)
            lines.append(f"    .reg .{t.value} {t.reg_prefix}<{count}>;")
        lines.append("")
        for inst in self.instructions:
            text = inst.render()
            indent = "" if inst.opcode == "label" else "    "
            lines.append(indent + text)
        lines.append("}")
        return "\n".join(lines) + "\n"

    # Resource summary used by the device occupancy model.
    @property
    def regs_per_thread(self) -> int:
        return self.info.total_regs_per_thread

"""Register liveness analysis.

The builder emits SSA-style code (every value gets a fresh register),
which wildly overstates the register pressure of the kernel a real
PTX->SASS compiler would produce.  The driver JIT therefore runs a
liveness pass and reports the *maximum number of simultaneously live
registers* (in 32-bit slots) as the kernel's register footprint — this
is what feeds the SM occupancy model and the launch-failure check that
the auto-tuner (paper Sec. VII) relies on.

The analysis is a single backward pass, exact for straight-line code;
guarded instructions and forward branches are handled conservatively
(a guarded write does not kill the destination, since inactive lanes
keep the old value).
"""

from __future__ import annotations

from .isa import Instruction, PTXType, Register


def _slots(t: PTXType) -> int:
    if t == PTXType.PRED:
        return 1
    return 2 if t.nbytes == 8 else 1


def max_live_registers(instructions: list[Instruction]) -> int:
    """Maximum 32-bit register slots simultaneously live.

    Returns at least 8 (a floor accounting for the fixed overhead —
    parameter pointers, special registers — every real kernel carries).
    """
    live: set[tuple[str, int]] = set()
    live_slots = 0
    max_slots = 0

    def add(r: Register) -> None:
        nonlocal live_slots, max_slots
        key = (r.type.value, r.index)
        if key not in live:
            live.add(key)
            live_slots += _slots(r.type)
            max_slots = max(max_slots, live_slots)

    def kill(r: Register) -> None:
        nonlocal live_slots
        key = (r.type.value, r.index)
        if key in live:
            live.remove(key)
            live_slots -= _slots(r.type)

    for inst in reversed(instructions):
        if inst.opcode in ("label", "bra", "ret"):
            if inst.guard is not None:
                add(inst.guard)
            continue
        # A write kills the register *before* (in reverse order) the
        # reads of the same instruction are added — unless guarded.
        if inst.dst is not None and inst.guard is None:
            kill(inst.dst)
        for op in inst.srcs:
            if isinstance(op, Register):
                add(op)
        if inst.guard is not None:
            add(inst.guard)
            if inst.dst is not None:
                add(inst.dst)  # partial write: old value still needed
    return max(max_slots, 8)

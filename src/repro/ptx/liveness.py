"""Register liveness analysis.

The builder emits SSA-style code (every value gets a fresh register),
which wildly overstates the register pressure of the kernel a real
PTX->SASS compiler would produce.  The driver JIT therefore runs a
liveness pass and reports the *maximum number of simultaneously live
registers* (in 32-bit slots) as the kernel's register footprint — this
is what feeds the SM occupancy model and the launch-failure check that
the auto-tuner (paper Sec. VII) relies on.

The analysis is a classic backward dataflow over the kernel's CFG
(:mod:`repro.ptx.cfg`), iterated to fixpoint so values live around a
loop's back edge are counted through the whole loop body — a single
linear backward sweep misses exactly those, underreporting pressure
for kernels with backward branches.  Guarded instructions are handled
conservatively (a guarded write does not kill the destination, since
inactive lanes keep the old value).
"""

from __future__ import annotations

from .cfg import DataflowAnalysis, build_cfg, solve
from .isa import Instruction, PTXType, Register


def _slots(t: str) -> int:
    pt = PTXType(t)
    if pt == PTXType.PRED:
        return 1
    return 2 if pt.nbytes == 8 else 1


def _regkey(r: Register) -> tuple[str, int]:
    return (r.type.value, r.index)


def _scan_backward(instructions: list[Instruction], live_out: set,
                   watermark=None) -> set:
    """Backward walk of one block; returns the live set at its top.

    ``watermark``, if given, is called with the live 32-bit slot
    count after each instruction (used to record the peak).
    """
    live = set(live_out)
    slots = sum(_slots(t) for t, _ in live)

    def add(r: Register) -> None:
        nonlocal slots
        key = _regkey(r)
        if key not in live:
            live.add(key)
            slots += _slots(key[0])

    def kill(r: Register) -> None:
        nonlocal slots
        key = _regkey(r)
        if key in live:
            live.discard(key)
            slots -= _slots(key[0])

    def note() -> None:
        if watermark is not None:
            watermark(slots)

    for inst in reversed(instructions):
        if inst.opcode in ("label", "bra", "ret"):
            if inst.guard is not None:
                add(inst.guard)
            note()
            continue
        # A write kills the register *before* (in reverse order) the
        # reads of the same instruction are added — unless guarded.
        if inst.dst is not None and inst.guard is None:
            kill(inst.dst)
        for op in inst.srcs:
            if isinstance(op, Register):
                add(op)
        if inst.guard is not None:
            add(inst.guard)
            if inst.dst is not None:
                add(inst.dst)  # partial write: old value still needed
        note()
    return live


class _Liveness(DataflowAnalysis):
    """live-in(b) = gen(b) ∪ (live-out(b) − kill(b)), meet = union."""

    direction = "backward"

    def transfer(self, block, instructions, fact):
        return frozenset(_scan_backward(instructions, set(fact)))


def max_live_registers(instructions: list[Instruction]) -> int:
    """Maximum 32-bit register slots simultaneously live.

    Returns at least 8 (a floor accounting for the fixed overhead —
    parameter pointers, special registers — every real kernel carries).
    """
    cfg = build_cfg(instructions)
    live_at_end, _ = solve(cfg, _Liveness())

    max_slots = 0

    def watermark(slots: int) -> None:
        nonlocal max_slots
        max_slots = max(max_slots, slots)

    for b in cfg.reachable():
        blk = cfg.blocks[b]
        out = set(live_at_end.get(b, frozenset()))
        watermark(sum(_slots(t) for t, _ in out))
        _scan_backward(blk.instructions(cfg.instructions), out,
                       watermark=watermark)
    return max(max_slots, 8)

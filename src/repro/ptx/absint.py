"""Abstract interpretation of PTX kernels.

The verifier's original bounds check was a *heuristic* (is the access
dominated by a ``tid < nsites`` guard?), and nothing checked that the
addresses the code generators emit actually realize the coalesced SoA
layout ``I(iV,iS,iC,iR) = ((iR*I_C + iC)*I_S + iS)*I_V + iV`` the
paper's performance rests on.  This module *proves* such properties at
compile time by abstractly interpreting the kernel over its CFG with
two cooperating domains:

**Interval/affine domain.**  Every register is tracked as an interval
``[lo, hi]`` plus, where possible, an exact affine form
``const + sum(c_i * sym_i)`` over a small set of symbols: the special
registers (``%tid.x``, ``%ctaid.x``), scalar kernel parameters, and
the results of global loads.  Pointer parameters carry a *region*
provenance, so a global access decomposes into ``region + offset``
with a proven offset interval.  Branch edges refine intervals with the
branch predicate (the generators' ``setp.ge gid, n; @p bra EXIT``
pattern caps ``gid`` at ``n-1`` on the fall-through edge), which is
what turns the guard from a structural pattern into an arithmetic
fact.

**Uniformity (divergence) domain.**  Every value is classified
warp-uniform (all threads of a warp agree) or thread-varying.
``%tid.x`` is varying, ``%ctaid.x`` and parameters are uniform, loads
are uniform iff their address is, and arithmetic preserves uniformity.
Branches on varying predicates diverge; the generators' early-exit
bounds branch is recognized as benign (one side does no work).

Seeding comes from a :class:`KernelEnv` describing what the driver
binds at launch (:mod:`repro.driver.jitcompiler` binds typed data
views; the evaluator records the env per generated kernel): exact
scalar parameter values (``p_lo`` = nsites), pointer region sizes
(``nsites * bytes_per_site`` for field views), and the content range /
bulk stride of site tables (shift gather maps are unit-stride away
from the lattice wrap).  Without an env a generic one is used —
regions of unknown size — under which bounds verdicts degrade to the
guard heuristic and coalescing facts to "unknown", never to unsound
claims.

The results feed three verifier passes (:mod:`repro.ptx.verifier`),
the lint report (``python -m repro.lint``), the kernel performance
model (:mod:`repro.perfmodel.kernelperf` consumes transactions per
warp) and the auto-tuner's static occupancy seed
(:mod:`repro.device.autotune`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from .cfg import CFG, build_cfg
from .isa import Immediate, PTXType, Register, Special
from .module import PTXModule

INF = math.inf

#: Warp width and memory-transaction granularity of the modeled device
#: (Kepler: 32 threads per warp, 128-byte L1 cache lines).
WARP = 32
SEGMENT = 128

_INT_RANGE = {
    PTXType.S32: (-(2 ** 31), 2 ** 31 - 1),
    PTXType.S64: (-(2 ** 63), 2 ** 63 - 1),
    PTXType.U32: (0, 2 ** 32 - 1),
    PTXType.U64: (0, 2 ** 64 - 1),
}

_NEGATE = {"lt": "ge", "ge": "lt", "le": "gt", "gt": "le",
           "eq": "ne", "ne": "eq"}


# --- launch environment -----------------------------------------------------

@dataclass(frozen=True)
class MemRegion:
    """What the driver will bind to one pointer parameter.

    ``size_bytes`` bounds the view (``None`` = unknown).  For int32
    site tables, ``elem_range`` is the interval of the stored values
    and ``elem_stride`` the *bulk* stride ``table[i+1] - table[i]``
    (shift gather maps are unit-stride except at the lattice wrap,
    where the deviation is amortized over the volume).
    """

    param: str
    size_bytes: int | None = None
    elem_range: tuple[int, int] | None = None
    elem_stride: int | None = None


@dataclass(frozen=True)
class KernelEnv:
    """Known launch-time facts seeding the abstract interpreter.

    ``block_size``/``grid_size`` fix a reference launch geometry
    (coalescing strides and bounds proofs are geometry-independent
    whenever the generated ``gid < n`` guard is present, since the
    edge refinement caps the site index regardless of the block
    shape).  ``scalars`` maps scalar parameter names to exact values
    or ``(lo, hi)`` ranges; ``regions`` maps pointer parameter names
    to :class:`MemRegion`.
    """

    block_size: int = 128
    grid_size: int = 1 << 22
    scalars: dict = field(default_factory=dict)
    regions: dict = field(default_factory=dict)

    @classmethod
    def generic(cls, params) -> "KernelEnv":
        """The no-information env: pointer regions of unknown size."""
        return cls(regions={p.name: MemRegion(p.name)
                            for p in params if p.is_pointer})

    def scalar_range(self, name: str) -> tuple[float, float] | None:
        v = self.scalars.get(name)
        if v is None:
            return None
        if isinstance(v, tuple):
            return (float(v[0]), float(v[1]))
        return (float(v), float(v))


def merge_envs(a: KernelEnv, b: KernelEnv) -> KernelEnv:
    """Widen two launch environments of the *same* kernel into one
    covering both launches (one compiled kernel serves many bindings:
    every shift direction, every subset).  Scalars widen to ranges,
    region sizes take the minimum guaranteed bound, strides survive
    only when they agree."""
    if a == b:
        return a
    scalars = {}
    for k in set(a.scalars) & set(b.scalars):
        ra, rb = a.scalar_range(k), b.scalar_range(k)
        scalars[k] = (min(ra[0], rb[0]), max(ra[1], rb[1]))
    regions = {}
    for k in set(a.regions) & set(b.regions):
        ra, rb = a.regions[k], b.regions[k]
        if ra.size_bytes is None or rb.size_bytes is None:
            size = None
        else:
            size = min(ra.size_bytes, rb.size_bytes)
        if ra.elem_range is None or rb.elem_range is None:
            erange = None
        else:
            erange = (min(ra.elem_range[0], rb.elem_range[0]),
                      max(ra.elem_range[1], rb.elem_range[1]))
        stride = ra.elem_stride if ra.elem_stride == rb.elem_stride else None
        regions[k] = MemRegion(k, size, erange, stride)
    return KernelEnv(block_size=a.block_size,
                     grid_size=max(a.grid_size, b.grid_size),
                     scalars=scalars, regions=regions)


def table_region(param: str, values) -> MemRegion:
    """Describe an int32 site table (shift map / subset list) as a
    region: measured content range and bulk stride."""
    import numpy as np

    arr = np.asarray(values)
    stride = None
    if arr.size > 1:
        diffs = np.diff(arr)
        s = int(np.median(diffs))
        # "bulk" stride: the stride of the majority of entries (wrap
        # boundaries deviate; they are O(surface/volume) of the table)
        if (diffs == s).mean() >= 0.5:
            stride = s
    elif arr.size == 1:
        stride = 0
    lo = int(arr.min()) if arr.size else 0
    hi = int(arr.max()) if arr.size else 0
    return MemRegion(param, size_bytes=4 * int(arr.size),
                     elem_range=(lo, hi), elem_stride=stride)


# --- abstract values --------------------------------------------------------

@dataclass(frozen=True)
class SymInfo:
    """Range, %tid.x-derivative and uniformity of one symbol."""

    lo: float
    hi: float
    dtid: float | None
    uniform: bool


@dataclass(frozen=True)
class AbsVal:
    """One register's abstraction: interval x affine form x provenance.

    ``affine`` is a sorted tuple of ``(symbol, coefficient)`` terms
    with constant ``const`` (``affine=()`` means an exact constant);
    ``affine=None`` means the value is not affine (interval only).
    ``base`` names the pointer-parameter region the value points into,
    in which case the interval is the *offset from the region base*.
    """

    lo: float
    hi: float
    affine: tuple | None = None
    const: float = 0.0
    base: str | None = None
    uniform: bool = False

    @property
    def is_const(self) -> bool:
        return self.affine == () or (self.lo == self.hi
                                     and not math.isinf(self.lo))


def _const_val(v: float, uniform: bool = True) -> AbsVal:
    v = float(v)
    return AbsVal(v, v, (), v, None, uniform)


def _top(t: PTXType | None, uniform: bool = False) -> AbsVal:
    lo, hi = _INT_RANGE.get(t, (-INF, INF))
    return AbsVal(lo, hi, None, 0.0, None, uniform)


def _iadd(x: float, y: float) -> float:
    # inf-safe addition (never produces NaN from -inf + inf)
    if math.isinf(x):
        return x
    if math.isinf(y):
        return y
    return x + y


def _add(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.base is not None and b.base is not None:
        return AbsVal(-INF, INF, None, 0.0, None, a.uniform and b.uniform)
    base = a.base if a.base is not None else b.base
    if a.affine is None or b.affine is None:
        affine, const = None, 0.0
    else:
        terms = dict(a.affine)
        for s, c in b.affine:
            nc = terms.get(s, 0.0) + c
            if nc == 0.0:
                terms.pop(s, None)
            else:
                terms[s] = nc
        affine, const = tuple(sorted(terms.items())), a.const + b.const
    return AbsVal(_iadd(a.lo, b.lo), _iadd(a.hi, b.hi), affine, const,
                  base, a.uniform and b.uniform)


def _scale(a: AbsVal, c: float) -> AbsVal:
    if c == 0.0:
        return _const_val(0.0, True)
    lo, hi = sorted((a.lo * c, a.hi * c))
    if a.affine is None:
        affine, const = None, 0.0
    else:
        affine = tuple(sorted((s, k * c) for s, k in a.affine))
        const = a.const * c
    return AbsVal(lo, hi, affine, const,
                  a.base if c == 1.0 else None, a.uniform)


def _mul(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.is_const:
        return _scale(b, a.lo)
    if b.is_const:
        return _scale(a, b.lo)
    cands = []
    for x in (a.lo, a.hi):
        for y in (b.lo, b.hi):
            if math.isinf(x) or math.isinf(y):
                cands.append(-INF if (x < 0) != (y < 0) else INF)
            else:
                cands.append(x * y)
    return AbsVal(min(cands), max(cands), None, 0.0, None,
                  a.uniform and b.uniform)


def _join(a: AbsVal, b: AbsVal) -> AbsVal:
    base = a.base if a.base == b.base else None
    if a.affine is not None and a.affine == b.affine and a.const == b.const:
        affine, const = a.affine, a.const
        uniform = a.uniform and b.uniform
    else:
        affine, const = None, 0.0
        uniform = (a.uniform and b.uniform
                   and a.lo == a.hi == b.lo == b.hi)
    return AbsVal(min(a.lo, b.lo), max(a.hi, b.hi), affine, const,
                  base, uniform)


def _clamp(v: AbsVal, t: PTXType | None) -> AbsVal:
    """Fall to the type's full range when the interval escapes it
    (models two's-complement wraparound soundly)."""
    rng = _INT_RANGE.get(t)
    if rng is None:
        return v
    lo, hi = rng
    if v.lo < lo or v.hi > hi:
        return AbsVal(lo, hi, None, 0.0, None, v.uniform)
    return v


# --- predicates and interpreter state --------------------------------------

@dataclass(frozen=True)
class _Pred:
    """The comparison a predicate register was produced by."""

    cmp: str
    typ: PTXType
    lkey: tuple | None
    rkey: tuple | None
    lval: AbsVal
    rval: AbsVal
    uniform: bool


@dataclass
class _State:
    regs: dict = field(default_factory=dict)
    preds: dict = field(default_factory=dict)

    def copy(self) -> "_State":
        return _State(dict(self.regs), dict(self.preds))

    def __eq__(self, other):
        return (isinstance(other, _State) and self.regs == other.regs
                and self.preds == other.preds)


def _state_join(a: _State, b: _State) -> _State:
    regs = {k: _join(v, b.regs[k]) for k, v in a.regs.items()
            if k in b.regs}
    preds = {k: v for k, v in a.preds.items() if b.preds.get(k) == v}
    return _State(regs, preds)


def _regkey(r: Register) -> tuple[str, int]:
    return (r.type.value, r.index)


# --- analysis results -------------------------------------------------------

@dataclass
class AccessFact:
    """Everything proven about one global memory access."""

    pos: int                       # instruction index
    opcode: str                    # ld.global / st.global
    width: int                     # bytes per element
    region: str | None             # pointer parameter accessed through
    offset: tuple | None           # proven (lo, hi) byte offset range
    stride_bytes: float | None     # d(address)/d(%tid.x); None unknown
    uniform: bool                  # address warp-uniform (broadcast)
    verdict: str                   # proven | oob | guarded | unguarded
    transactions: float | None     # est. memory transactions per warp
    ideal_transactions: int        # transactions at perfect coalescing

    @property
    def coalesced(self) -> bool | None:
        """True/False when the stride is known, else None."""
        if self.transactions is None:
            return None
        return self.transactions <= self.ideal_transactions


@dataclass
class BranchFact:
    """Divergence classification of one branch."""

    pos: int
    uniform: bool        # predicate warp-uniform (or unconditional)
    benign_exit: bool    # taken side does no work (bounds early-exit)


@dataclass
class KernelAnalysis:
    """The per-kernel fact sheet the analysis passes and reports use."""

    name: str
    env: KernelEnv
    accesses: list = field(default_factory=list)
    branches: list = field(default_factory=list)
    max_live_regs: int = 0

    # -- bounds -----------------------------------------------------
    @property
    def n_proven(self) -> int:
        return sum(1 for a in self.accesses if a.verdict == "proven")

    @property
    def n_heuristic(self) -> int:
        return sum(1 for a in self.accesses if a.verdict == "guarded")

    @property
    def n_unguarded(self) -> int:
        return sum(1 for a in self.accesses
                   if a.verdict in ("unguarded", "oob"))

    @property
    def bounds_proven(self) -> bool:
        return all(a.verdict == "proven" for a in self.accesses)

    # -- coalescing -------------------------------------------------
    @property
    def transactions_per_warp(self) -> float:
        """Estimated transactions one warp issues across all accesses
        (unknown strides counted at the 32-transaction worst case)."""
        return float(sum(a.transactions if a.transactions is not None
                         else WARP for a in self.accesses))

    @property
    def ideal_transactions_per_warp(self) -> float:
        return float(sum(a.ideal_transactions for a in self.accesses))

    @property
    def memory_efficiency(self) -> float:
        """Ideal / estimated transactions — the fraction of the
        streaming bandwidth the access pattern can use (1.0 = fully
        coalesced)."""
        actual = self.transactions_per_warp
        if actual <= 0.0:
            return 1.0
        return self.ideal_transactions_per_warp / actual

    @property
    def fully_coalesced(self) -> bool:
        return all(a.coalesced is True or a.uniform for a in self.accesses)

    # -- divergence -------------------------------------------------
    @property
    def divergent_branches(self) -> list:
        return [b for b in self.branches
                if not b.uniform and not b.benign_exit]


# --- the interpreter --------------------------------------------------------

class _Interp:
    def __init__(self, module: PTXModule, cfg: CFG, env: KernelEnv):
        self.module = module
        self.cfg = cfg
        self.env = env
        self.params = {p.name: p for p in module.info.params}
        self.syms: dict[str, SymInfo] = {
            "tid": SymInfo(0, env.block_size - 1, 1.0, False),
            "ctaid": SymInfo(0, env.grid_size - 1, 0.0, True),
        }

    # -- symbols -----------------------------------------------------

    def _sym_val(self, name: str, base: str | None = None) -> AbsVal:
        info = self.syms[name]
        return AbsVal(info.lo, info.hi, ((name, 1.0),), 0.0, base,
                      info.uniform)

    def _ensure_sym(self, name: str, info: SymInfo) -> None:
        old = self.syms.get(name)
        if old is None:
            self.syms[name] = info
        elif old != info:
            # widen (keeps the fixpoint monotone)
            self.syms[name] = SymInfo(
                min(old.lo, info.lo), max(old.hi, info.hi),
                old.dtid if old.dtid == info.dtid else None,
                old.uniform and info.uniform)

    def dtid(self, v: AbsVal) -> float | None:
        """d(value)/d(%tid.x) — the per-thread stride of the value."""
        if v.uniform:
            return 0.0
        if v.affine is None:
            return None
        total = 0.0
        for s, c in v.affine:
            info = self.syms.get(s)
            d = info.dtid if info is not None else 0.0
            if d is None:
                return None
            total += c * d
        return total

    # -- operand / instruction evaluation ----------------------------

    def operand(self, op, state: _State) -> AbsVal:
        if isinstance(op, Register):
            return state.regs.get(_regkey(op), _top(op.type))
        if isinstance(op, Immediate):
            if isinstance(op.value, (int, float)):
                return _const_val(op.value)
            return AbsVal(-INF, INF, None, 0.0, None, True)
        if isinstance(op, Special):
            if op.which == "ntid":
                return _const_val(self.env.block_size)
            return self._sym_val(op.which)
        return _top(None)

    def _ld_param(self, inst) -> AbsVal:
        (pref,) = inst.srcs
        pname = getattr(pref, "pname", None)
        param = self.params.get(pname)
        if param is not None and param.is_pointer:
            return AbsVal(0.0, 0.0, (), 0.0, pname, True)
        rng = self.env.scalar_range(pname) if pname else None
        if rng is not None and rng[0] == rng[1]:
            return _const_val(rng[0])
        sym = f"param:{pname}"
        if rng is None:
            lo, hi = _INT_RANGE.get(inst.type, (-INF, INF))
        else:
            lo, hi = rng
        self._ensure_sym(sym, SymInfo(lo, hi, 0.0, True))
        return self._sym_val(sym)

    def _ld_global(self, inst, addr: AbsVal, pos: int) -> AbsVal:
        region = self.env.regions.get(addr.base) if addr.base else None
        uniform = addr.uniform
        if region is not None and region.elem_range is not None:
            lo, hi = region.elem_range
        else:
            lo, hi = _INT_RANGE.get(inst.type, (-INF, INF))
        if uniform:
            d = 0.0
        elif region is not None and region.elem_stride is not None:
            ad = self.dtid(addr)
            d = (region.elem_stride * ad / inst.type.nbytes
                 if ad is not None else None)
        else:
            d = None
        sym = f"load:{pos}"
        self._ensure_sym(sym, SymInfo(lo, hi, d, uniform))
        return self._sym_val(sym)

    def _cvt(self, inst, v: AbsVal) -> AbsVal:
        src_t, dst_t = inst.src_type, inst.type
        if dst_t.is_int and src_t is not None and src_t.is_float:
            # trunc toward zero is monotone on intervals
            lo = math.trunc(v.lo) if not math.isinf(v.lo) else v.lo
            hi = math.trunc(v.hi) if not math.isinf(v.hi) else v.hi
            return _clamp(AbsVal(lo, hi, None, 0.0, None, v.uniform), dst_t)
        if dst_t.is_int:
            if (src_t is not None and src_t.is_int
                    and dst_t.nbytes >= src_t.nbytes):
                # widening keeps the value; equal-width reinterpretation
                # keeps it mod 2^64, which is what addressing computes in
                return v
            return _clamp(v, dst_t)
        return replace(v, base=None)  # float target: keep interval/affine

    def eval_inst(self, inst, state: _State, pos: int) -> AbsVal:
        op = inst.opcode
        t = inst.type
        if op == "mov":
            return self.operand(inst.srcs[0], state)
        if op == "ld.param":
            return self._ld_param(inst)
        if op == "cvt":
            return self._cvt(inst, self.operand(inst.srcs[0], state))
        if op == "ld.global":
            return self._ld_global(inst, self.operand(inst.srcs[0], state),
                                   pos)
        srcs = [self.operand(s, state) for s in inst.srcs]
        need = {"add": 2, "sub": 2, "mul": 2, "mul.lo": 2, "mul.wide": 2,
                "fma": 3, "mad.lo": 3, "shl": 2, "shr": 2, "div": 2,
                "min": 2, "max": 2, "selp": 3}
        if len(srcs) < need.get(op, 1):
            return _top(t)          # malformed; the operands pass reports it
        if op == "add":
            return _clamp(_add(srcs[0], srcs[1]), t)
        if op == "sub":
            return _clamp(_add(srcs[0], _scale(srcs[1], -1.0)), t)
        if op in ("mul", "mul.lo", "mul.wide"):
            return _clamp(_mul(srcs[0], srcs[1]), t)
        if op in ("fma", "mad.lo"):
            return _clamp(_add(_mul(srcs[0], srcs[1]), srcs[2]), t)
        if op == "shl":
            b = srcs[1]
            if b.is_const and b.lo >= 0:
                return _clamp(_scale(srcs[0], float(2 ** int(b.lo))), t)
            return _top(t, all(s.uniform for s in srcs))
        if op in ("shr", "div") and t is not None and t.is_int:
            b = srcs[1]
            a = srcs[0]
            if op == "shr" and b.is_const and b.lo >= 0:
                c = float(2 ** int(b.lo))
            elif op == "div" and b.is_const and b.lo > 0:
                c = float(b.lo)
            else:
                return _top(t, all(s.uniform for s in srcs))
            lo = a.lo / c if not math.isinf(a.lo) else a.lo
            hi = a.hi / c if not math.isinf(a.hi) else a.hi
            lo = math.trunc(lo) if not math.isinf(lo) else lo
            hi = math.trunc(hi) if not math.isinf(hi) else hi
            return AbsVal(min(lo, hi), max(lo, hi), None, 0.0, None,
                          a.uniform and b.uniform)
        if op == "neg":
            return _clamp(_scale(srcs[0], -1.0), t)
        if op == "abs":
            a = srcs[0]
            lo = 0.0 if a.lo < 0 <= a.hi else min(abs(a.lo), abs(a.hi))
            hi = max(abs(a.lo), abs(a.hi))
            return AbsVal(lo, hi, None, 0.0, None, a.uniform)
        if op == "min":
            return AbsVal(min(srcs[0].lo, srcs[1].lo),
                          min(srcs[0].hi, srcs[1].hi), None, 0.0, None,
                          srcs[0].uniform and srcs[1].uniform)
        if op == "max":
            return AbsVal(max(srcs[0].lo, srcs[1].lo),
                          max(srcs[0].hi, srcs[1].hi), None, 0.0, None,
                          srcs[0].uniform and srcs[1].uniform)
        if op == "setp":
            return AbsVal(0.0, 1.0, None, 0.0, None,
                          all(s.uniform for s in srcs))
        if op == "selp":
            a, b, p = srcs
            v = _join(a, b)
            return replace(v, uniform=v.uniform and p.uniform)
        # anything else (float transcendentals, bitwise on unknowns):
        return _top(t, all(s.uniform for s in srcs))

    # -- transfer ----------------------------------------------------

    def transfer(self, blk, state: _State, record=None) -> _State:
        state = state.copy()
        for pos in range(blk.start, blk.stop):
            inst = self.cfg.instructions[pos]
            op = inst.opcode
            if op == "label":
                continue
            guard_uniform = True
            est = state
            if inst.guard is not None:
                gval = state.regs.get(_regkey(inst.guard))
                guard_uniform = gval.uniform if gval is not None else False
                refined = self.refine(state, _regkey(inst.guard),
                                      want_true=not inst.guard_negated)
                # an infeasible guard means the instruction is dead in
                # every lane; keep the unrefined state conservatively
                est = refined if refined is not None else state
            if op in ("bra", "ret"):
                if record is not None and op == "bra":
                    record.branch(pos, inst, guard_uniform, self)
                continue
            if op in ("ld.global", "st.global"):
                addr = self.operand(inst.srcs[0], est)
                if record is not None:
                    record.access(pos, inst, addr, self)
            val = self.eval_inst(inst, est, pos)
            if inst.dst is None:
                continue
            key = _regkey(inst.dst)
            if inst.guard is not None:
                old = state.regs.get(key)
                val = val if old is None else _join(old, val)
                if not guard_uniform:
                    val = replace(val, uniform=False)
            # writing a register invalidates predicates derived from it
            state.preds = {k: p for k, p in state.preds.items()
                           if k != key and p.lkey != key and p.rkey != key}
            if inst.opcode == "setp" and len(inst.srcs) == 2:
                a, b = inst.srcs
                state.preds[key] = _Pred(
                    inst.cmp, inst.type,
                    _regkey(a) if isinstance(a, Register) else None,
                    _regkey(b) if isinstance(b, Register) else None,
                    self.operand(a, est), self.operand(b, est),
                    val.uniform)
            state.regs[key] = val
        return state

    # -- branch refinement --------------------------------------------

    def refine(self, state: _State, pred_key, want_true: bool
               ) -> _State | None:
        """``state`` constrained by the predicate being true/false;
        ``None`` when the constraint is infeasible (dead edge)."""
        pred = state.preds.get(pred_key)
        if pred is None or pred.cmp not in _NEGATE:
            return state
        cmp = pred.cmp if want_true else _NEGATE[pred.cmp]
        out = state.copy()
        l = out.regs.get(pred.lkey, pred.lval) if pred.lkey else pred.lval
        r = out.regs.get(pred.rkey, pred.rval) if pred.rkey else pred.rval
        step = 1.0 if pred.typ.is_int else 0.0
        llo, lhi, rlo, rhi = l.lo, l.hi, r.lo, r.hi
        if cmp == "lt":
            lhi = min(lhi, r.hi - step)
            rlo = max(rlo, l.lo + step)
        elif cmp == "le":
            lhi = min(lhi, r.hi)
            rlo = max(rlo, l.lo)
        elif cmp == "gt":
            llo = max(llo, r.lo + step)
            rhi = min(rhi, l.hi - step)
        elif cmp == "ge":
            llo = max(llo, r.lo)
            rhi = min(rhi, l.hi)
        elif cmp == "eq":
            llo, lhi = max(llo, rlo), min(lhi, rhi)
            rlo, rhi = llo, lhi
        if llo > lhi or rlo > rhi:
            return None
        if pred.lkey and pred.lkey in out.regs:
            out.regs[pred.lkey] = replace(out.regs[pred.lkey],
                                          lo=llo, hi=lhi)
        if pred.rkey and pred.rkey in out.regs:
            out.regs[pred.rkey] = replace(out.regs[pred.rkey],
                                          lo=rlo, hi=rhi)
        return out

    def edge_states(self, blk, out: _State) -> dict[int, _State]:
        """Per-successor states, refined by the terminator's guard."""
        succs = list(blk.successors)
        states: dict[int, _State] = {s: out for s in succs}
        if blk.stop <= blk.start:
            return states
        last = self.cfg.instructions[blk.stop - 1]
        if last.guard is None:
            return states
        gkey = _regkey(last.guard)
        taken_true = not last.guard_negated
        if last.opcode == "bra":
            target = next((b.index for b in self.cfg.blocks
                           if b.label == last.label), None)
            fall = blk.index + 1
            if target is not None and target != fall:
                for s in succs:
                    want = taken_true if s == target else not taken_true
                    refined = self.refine(out, gkey, want)
                    if refined is None:
                        states.pop(s, None)
                    else:
                        states[s] = refined
        elif last.opcode == "ret":
            # lanes that did not return fall through
            for s in succs:
                refined = self.refine(out, gkey, not taken_true)
                if refined is None:
                    states.pop(s, None)
                else:
                    states[s] = refined
        return states


# --- recording of facts -----------------------------------------------------

class _Recorder:
    def __init__(self, interp: _Interp):
        self.interp = interp
        self.accesses: dict[int, AccessFact] = {}
        self.branches: dict[int, BranchFact] = {}

    def access(self, pos, inst, addr: AbsVal, interp: _Interp) -> None:
        width = inst.type.nbytes
        region = interp.env.regions.get(addr.base) if addr.base else None
        offset = None
        verdict = "unknown"
        if region is not None:
            offset = (addr.lo, addr.hi)
            if region.size_bytes is not None:
                if addr.lo >= 0 and addr.hi <= region.size_bytes - width:
                    verdict = "proven"
                elif addr.hi < 0 or addr.lo > region.size_bytes - width:
                    verdict = "oob"
        stride = interp.dtid(addr)
        fact = AccessFact(
            pos=pos, opcode=inst.opcode, width=width,
            region=addr.base, offset=offset, stride_bytes=stride,
            uniform=addr.uniform, verdict=verdict,
            transactions=transactions_per_warp(stride, width),
            ideal_transactions=ideal_transactions(width))
        old = self.accesses.get(pos)
        if old is not None:
            fact = self._merge(old, fact)
        self.accesses[pos] = fact

    @staticmethod
    def _merge(a: AccessFact, b: AccessFact) -> AccessFact:
        """Same instruction reached with different facts: keep the
        weaker claim on every axis."""
        order = {"oob": 0, "unguarded": 0, "unknown": 1,
                 "guarded": 2, "proven": 3}
        verdict = a.verdict if order[a.verdict] <= order[b.verdict] \
            else b.verdict
        stride = a.stride_bytes if a.stride_bytes == b.stride_bytes else None
        offset = None
        if a.offset is not None and b.offset is not None:
            offset = (min(a.offset[0], b.offset[0]),
                      max(a.offset[1], b.offset[1]))
        return AccessFact(
            pos=a.pos, opcode=a.opcode, width=a.width,
            region=a.region if a.region == b.region else None,
            offset=offset, stride_bytes=stride,
            uniform=a.uniform and b.uniform, verdict=verdict,
            transactions=transactions_per_warp(stride, a.width),
            ideal_transactions=a.ideal_transactions)

    def branch(self, pos, inst, guard_uniform: bool,
               interp: _Interp) -> None:
        benign = False
        if not guard_uniform:
            target = next((b.index for b in interp.cfg.blocks
                           if b.label == inst.label), None)
            fall = interp.cfg.block_of(pos) + 1 \
                if interp.cfg.block_of(pos) + 1 < len(interp.cfg.blocks) \
                else None
            benign = (_exit_like(interp.cfg, target)
                      or _exit_like(interp.cfg, fall))
        fact = BranchFact(pos=pos, uniform=guard_uniform,
                          benign_exit=benign)
        old = self.branches.get(pos)
        if old is not None:
            fact = BranchFact(pos, old.uniform and fact.uniform,
                              old.benign_exit and fact.benign_exit)
        self.branches[pos] = fact


def _exit_like(cfg: CFG, bidx: int | None, depth: int = 4) -> bool:
    """The block (transitively) does nothing but return — the shape of
    the generators' bounds early-exit, which diverges only in the last
    warp and does no redundant work."""
    if bidx is None or bidx >= len(cfg.blocks) or depth == 0:
        return False
    blk = cfg.blocks[bidx]
    body = [i for i in blk.instructions(cfg.instructions)
            if i.opcode != "label"]
    if not body:
        succs = blk.successors
        return len(succs) <= 1 and all(
            _exit_like(cfg, s, depth - 1) for s in succs) \
            if succs else True
    return (len(body) == 1 and body[0].opcode == "ret"
            and body[0].guard is None)


# --- coalescing model -------------------------------------------------------

def transactions_per_warp(stride_bytes: float | None,
                          width: int) -> float | None:
    """Memory transactions one 32-thread warp issues for one access.

    Aligned-base span model: consecutive threads are ``stride`` bytes
    apart, so the warp touches ``31*|stride| + width`` bytes of
    ``SEGMENT``-byte lines (clamped to one transaction per thread).
    ``None`` stride means the pattern is unknown (indirect gather
    through a table of unknown stride).
    """
    if stride_bytes is None:
        return None
    s = abs(stride_bytes)
    if s == 0.0:
        return 1.0
    span = (WARP - 1) * s + width
    return float(min(WARP, max(1, math.ceil(span / SEGMENT))))


def ideal_transactions(width: int) -> int:
    """Transactions at perfect coalescing (element stride 1)."""
    return max(1, math.ceil(WARP * width / SEGMENT))


# --- heuristic fallback (guard domination) ----------------------------------

def _guard_dominated(cfg: CFG) -> set[int]:
    """Instruction positions dominated by a relational bounds guard, or
    themselves predicated on one — the pre-absint heuristic, kept as
    the fallback when the affine form is inconclusive."""
    instructions = cfg.instructions
    relational = {_regkey(i.dst) for i in instructions
                  if i.opcode == "setp" and i.dst is not None}
    guard_blocks: set[int] = set()
    for blk in cfg.blocks:
        insts = blk.instructions(instructions)
        if not insts:
            continue
        last = insts[-1]
        if (last.opcode == "bra" and last.guard is not None
                and _regkey(last.guard) in relational
                and blk.index + 1 < len(cfg.blocks)):
            guard_blocks.add(blk.index + 1)
    dom = cfg.dominators()
    safe: set[int] = set()
    for pos, inst in enumerate(instructions):
        if inst.opcode not in ("ld.global", "st.global"):
            continue
        if inst.guard is not None and _regkey(inst.guard) in relational:
            safe.add(pos)
            continue
        if guard_blocks & dom.get(cfg.block_of(pos), set()):
            safe.add(pos)
    return safe


# --- entry point ------------------------------------------------------------

def analyze_module(module: PTXModule, env: KernelEnv | None = None,
                   cfg: CFG | None = None) -> KernelAnalysis:
    """Abstractly interpret ``module``; return its fact sheet.

    Runs the interval/affine + uniformity fixpoint over the CFG with
    per-edge predicate refinement, then one recording walk collecting
    an :class:`AccessFact` per global access and a :class:`BranchFact`
    per branch.  Accesses the affine engine cannot settle fall back to
    the guard-domination heuristic (verdict ``guarded``/``unguarded``
    instead of ``proven``).
    """
    if cfg is None:
        cfg = build_cfg(list(module.instructions))
    if env is None:
        env = KernelEnv.generic(module.info.params)
    interp = _Interp(module, cfg, env)

    in_facts: dict[int, _State] = {}
    edge_facts: dict[tuple[int, int], _State] = {}
    order = cfg.rpo()
    changed = True
    rounds = 0
    while changed and rounds < 64:
        changed = False
        rounds += 1
        for b in order:
            blk = cfg.blocks[b]
            feeds = [edge_facts[(p, b)] for p in blk.predecessors
                     if (p, b) in edge_facts]
            if b == cfg.entry:
                feeds.append(_State())
            if not feeds:
                continue
            fact_in = feeds[0]
            for f in feeds[1:]:
                fact_in = _state_join(fact_in, f)
            # transfer is deterministic in fact_in (the symbol table
            # only ever widens when fact_in does), so an unchanged
            # input means unchanged edge outputs
            if in_facts.get(b) == fact_in:
                continue
            in_facts[b] = fact_in
            out = interp.transfer(blk, fact_in)
            for s, st in interp.edge_states(blk, out).items():
                if edge_facts.get((b, s)) != st:
                    edge_facts[(b, s)] = st
                    changed = True

    rec = _Recorder(interp)
    for b in sorted(in_facts):
        interp.transfer(cfg.blocks[b], in_facts[b], record=rec)

    # heuristic fallback for inconclusive bounds verdicts
    guarded = _guard_dominated(cfg)
    accesses = []
    for pos in sorted(rec.accesses):
        fact = rec.accesses[pos]
        if fact.verdict == "unknown":
            fact.verdict = "guarded" if pos in guarded else "unguarded"
        accesses.append(fact)

    from .liveness import max_live_registers

    return KernelAnalysis(
        name=module.name, env=env, accesses=accesses,
        branches=[rec.branches[p] for p in sorted(rec.branches)],
        max_live_regs=max_live_registers(list(module.instructions)))

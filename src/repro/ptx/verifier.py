"""Static verification of PTX instruction streams.

The driver JIT rejects malformed programs; running the verifier at
build time catches code-generator bugs early, with errors that point
at the offending instruction.  Checks: registers are written before
read, operand types match the instruction type, guards are predicates,
branch targets exist, and every path ends in ``ret``.
"""

from __future__ import annotations

from .isa import Immediate, Instruction, PTXType, Register, Special
from .module import PTXModule


class PTXVerificationError(Exception):
    """A PTX program failed static verification."""


def verify(module: PTXModule) -> None:
    """Verify ``module``; raise :class:`PTXVerificationError` on the
    first violation, return ``None`` if the program is well-formed."""
    defined: set[tuple[str, int]] = set()
    labels = {i.label for i in module.instructions if i.opcode == "label"}

    def check_src(inst: Instruction, op, pos: int) -> None:
        if isinstance(op, Register):
            key = (op.type.value, op.index)
            if key not in defined:
                raise PTXVerificationError(
                    f"{module.name}: use of undefined register {op.name} in "
                    f"'{inst.render()}'")
        elif isinstance(op, (Immediate, Special)):
            pass
        else:
            # _ParamRef in ld.param
            if inst.opcode != "ld.param":
                raise PTXVerificationError(
                    f"{module.name}: bad operand at position {pos} in "
                    f"'{inst.render()}'")

    param_names = {p.name for p in module.info.params}
    saw_ret = False
    for inst in module.instructions:
        if inst.guard is not None:
            if inst.guard.type != PTXType.PRED:
                raise PTXVerificationError(
                    f"{module.name}: guard is not a predicate in "
                    f"'{inst.render()}'")
            check_src(inst, inst.guard, -1)
        if inst.opcode == "label":
            continue
        if inst.opcode == "bra":
            if inst.label not in labels:
                raise PTXVerificationError(
                    f"{module.name}: branch to undefined label {inst.label}")
            continue
        if inst.opcode == "ret":
            saw_ret = True
            continue
        if inst.opcode == "ld.param":
            (pref,) = inst.srcs
            if getattr(pref, "pname", None) not in param_names:
                raise PTXVerificationError(
                    f"{module.name}: ld.param of undeclared parameter "
                    f"'{inst.render()}'")
        else:
            for i, op in enumerate(inst.srcs):
                check_src(inst, op, i)
        # type checks
        if inst.opcode == "st.global":
            addr, val = inst.srcs
            if isinstance(addr, Register) and addr.type != PTXType.U64:
                raise PTXVerificationError(
                    f"{module.name}: store address must be u64 in "
                    f"'{inst.render()}'")
            if isinstance(val, Register) and val.type != inst.type:
                raise PTXVerificationError(
                    f"{module.name}: store value type {val.type.value} != "
                    f"instruction type {inst.type.value}")
        elif inst.opcode == "ld.global":
            (addr,) = inst.srcs
            if isinstance(addr, Register) and addr.type != PTXType.U64:
                raise PTXVerificationError(
                    f"{module.name}: load address must be u64 in "
                    f"'{inst.render()}'")
        elif inst.opcode == "cvt":
            if inst.src_type is None:
                raise PTXVerificationError(
                    f"{module.name}: cvt without source type")
            (src,) = inst.srcs
            if isinstance(src, Register) and src.type != inst.src_type:
                raise PTXVerificationError(
                    f"{module.name}: cvt source register type mismatch in "
                    f"'{inst.render()}'")
        elif inst.opcode == "setp":
            if inst.dst.type != PTXType.PRED:
                raise PTXVerificationError(
                    f"{module.name}: setp destination must be a predicate")
            for op in inst.srcs:
                if isinstance(op, Register) and op.type != inst.type:
                    raise PTXVerificationError(
                        f"{module.name}: setp operand type mismatch in "
                        f"'{inst.render()}'")
        elif inst.opcode == "selp":
            a, b, p = inst.srcs
            if isinstance(p, Register) and p.type != PTXType.PRED:
                raise PTXVerificationError(
                    f"{module.name}: selp selector must be a predicate")
            for op in (a, b):
                if isinstance(op, Register) and op.type != inst.type:
                    raise PTXVerificationError(
                        f"{module.name}: selp operand type mismatch in "
                        f"'{inst.render()}'")
        else:
            # plain arithmetic: all register operands match inst.type
            for op in inst.srcs:
                if isinstance(op, Register) and op.type != inst.type:
                    raise PTXVerificationError(
                        f"{module.name}: operand type "
                        f"{op.type.value} != {inst.type.value} in "
                        f"'{inst.render()}'")
        if inst.dst is not None:
            want = PTXType.PRED if inst.opcode == "setp" else inst.type
            if inst.dst.type != want:
                raise PTXVerificationError(
                    f"{module.name}: destination type mismatch in "
                    f"'{inst.render()}'")
            defined.add((inst.dst.type.value, inst.dst.index))
    if not saw_ret:
        raise PTXVerificationError(f"{module.name}: kernel does not return")

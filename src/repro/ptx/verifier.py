"""Static verification of PTX instruction streams.

The driver JIT rejects malformed programs; running the verifier at
build time catches code-generator bugs early, with errors that point
at the offending instruction.  The verifier is a *pass pipeline* over
the kernel's control-flow graph (:mod:`repro.ptx.cfg`): each pass
collects every violation it can find as a structured
:class:`~repro.diagnostics.Diagnostic` rather than stopping at the
first, so one run reports the complete state of a kernel.

Passes:

``operands``
    Per-instruction structural and type checks: operand kinds, guard
    predicates, branch targets, ``ld.param`` against the declared
    parameter list (existence *and* type), load/store address and
    value types, ``cvt``/``setp``/``selp`` shapes.
``ssa-structure``
    The SSA structural invariants the code generators guarantee and
    the IR pass pipeline relies on (:mod:`repro.ir.verify`): single
    definition per register, defs dominate uses, no dangling
    operands.  A malformed stream fails here with a named diagnostic
    instead of a deep unparser or pass traceback.
``definite-assignment``
    Forward dataflow proving every register is written on **every**
    path before it is read — branch-aware, unlike a linear scan,
    which both misses one-armed definitions and falsely accepts
    defs that textually precede but do not dominate a use.
``unreachable-code``
    Blocks that no path from the entry reaches.
``return-paths``
    Every path from the entry ends in an unguarded ``ret``.
``proven-bounds``
    Memory safety by abstract interpretation
    (:mod:`repro.ptx.absint`): every ``ld.global``/``st.global``
    address is recovered as ``region + affine offset`` and checked
    against the bound region's size.  Proven out-of-bounds accesses
    are errors; accesses the engine cannot settle fall back to the
    old guard-domination heuristic (warning when even that fails).
``coalescing``
    Warns on accesses with a known ``%tid.x`` stride whose 32-thread
    warp span costs more memory transactions than the stride-1 SoA
    layout.
``divergence``
    Warns on branches over thread-varying predicates (the warp
    executes both sides serially); the generators' bounds early-exit
    is recognized as benign.

:func:`run_passes` returns the full diagnostics list;
:func:`verify` raises :class:`PTXVerificationError` if any
error-severity diagnostic is present (the strict API used by the
kernel build paths).
"""

from __future__ import annotations

import math

from ..diagnostics import Diagnostic, Severity, errors
from .cfg import CFG, DataflowAnalysis, build_cfg, solve
from .isa import Immediate, Instruction, PTXType, Register, Special
from .module import PTXModule


class PTXVerificationError(Exception):
    """A PTX program failed static verification.

    Carries the full diagnostics list (``.diagnostics``) so callers
    can report every violation, not just the first.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


def _regkey(r: Register) -> tuple[str, int]:
    return (r.type.value, r.index)


# --- pass: operands -------------------------------------------------------

def _check_operands(module: PTXModule, cfg: CFG) -> list[Diagnostic]:
    out: list[Diagnostic] = []

    def err(message: str, inst: Instruction | None = None) -> None:
        out.append(Diagnostic(Severity.ERROR, "operands", message,
                              obj=module.name,
                              location=inst.render() if inst else ""))

    labels = {i.label for i in module.instructions if i.opcode == "label"}
    params = {p.name: p for p in module.info.params}

    def check_src(inst: Instruction, op, pos: int) -> None:
        if isinstance(op, (Register, Immediate, Special)):
            return
        # _ParamRef in ld.param is checked separately
        if inst.opcode != "ld.param":
            err(f"bad operand at position {pos}", inst)

    for inst in module.instructions:
        if inst.guard is not None and inst.guard.type != PTXType.PRED:
            err("guard is not a predicate", inst)
        if inst.opcode == "label":
            continue
        if inst.opcode == "bra":
            if inst.label not in labels:
                err(f"branch to undefined label {inst.label}")
            continue
        if inst.opcode == "ret":
            continue
        if inst.opcode == "ld.param":
            (pref,) = inst.srcs
            pname = getattr(pref, "pname", None)
            param = params.get(pname)
            if param is None:
                err(f"ld.param of undeclared parameter "
                    f"'{inst.render()}'")
            elif param.type != inst.type:
                err(f"ld.param type mismatch: parameter {pname!r} is "
                    f"declared .{param.type.value} but loaded as "
                    f".{inst.type.value}", inst)
        else:
            for i, op in enumerate(inst.srcs):
                check_src(inst, op, i)
        # type checks
        if inst.opcode == "st.global":
            addr, val = inst.srcs
            if isinstance(addr, Register) and addr.type != PTXType.U64:
                err("store address must be u64", inst)
            if isinstance(val, Register) and val.type != inst.type:
                err(f"store value type {val.type.value} != "
                    f"instruction type {inst.type.value}")
        elif inst.opcode == "ld.global":
            (addr,) = inst.srcs
            if isinstance(addr, Register) and addr.type != PTXType.U64:
                err("load address must be u64", inst)
        elif inst.opcode == "cvt":
            if inst.src_type is None:
                err("cvt without source type")
            else:
                (src,) = inst.srcs
                if isinstance(src, Register) and src.type != inst.src_type:
                    err("cvt source register type mismatch", inst)
        elif inst.opcode == "setp":
            if inst.dst is not None and inst.dst.type != PTXType.PRED:
                err("setp destination must be a predicate")
            for op in inst.srcs:
                if isinstance(op, Register) and op.type != inst.type:
                    err("setp operand type mismatch", inst)
        elif inst.opcode == "selp":
            a, b, p = inst.srcs
            if isinstance(p, Register) and p.type != PTXType.PRED:
                err("selp selector must be a predicate")
            for op in (a, b):
                if isinstance(op, Register) and op.type != inst.type:
                    err("selp operand type mismatch", inst)
        elif inst.opcode != "ld.param":
            # plain arithmetic: all register operands match inst.type
            for op in inst.srcs:
                if isinstance(op, Register) and op.type != inst.type:
                    err(f"operand type {op.type.value} != "
                        f"{inst.type.value}", inst)
        if inst.dst is not None:
            want = PTXType.PRED if inst.opcode == "setp" else inst.type
            if inst.dst.type != want:
                err("destination type mismatch", inst)
    return out


# --- pass: SSA structure ---------------------------------------------------

def _check_ssa_structure(module: PTXModule, cfg: CFG) -> list[Diagnostic]:
    """Single def per register, defs dominate uses, no dangling
    operands — delegated to the IR layer's structural verifier
    (imported lazily: :mod:`repro.ir` builds on this package)."""
    from ..ir.ssa import SSAFunction
    from ..ir.verify import check_ssa

    fn = SSAFunction.from_instructions(module.name, module.info.params,
                                       list(module.instructions), cfg=cfg)
    return check_ssa(fn, obj=module.name)


# --- pass: definite assignment --------------------------------------------

class _DefinedRegisters(DataflowAnalysis):
    """Forward must-analysis: registers written on every path.

    Meet is intersection (a register counts as defined only if every
    incoming path defines it).  A guarded write still counts as a
    definition — inactive lanes keep the previous value, and the
    driver's lane-masked translation initializes the slot — matching
    the conservatism of the original linear-scan verifier.
    """

    direction = "forward"

    def boundary(self):
        return frozenset()

    def meet(self, facts):
        it = iter(facts)
        out = next(it)
        for f in it:
            out = out & f
        return out

    def transfer(self, block, instructions, fact):
        defs = {_regkey(i.dst) for i in instructions if i.dst is not None}
        return fact | defs


def _check_definite_assignment(module: PTXModule,
                               cfg: CFG) -> list[Diagnostic]:
    inputs, _ = solve(cfg, _DefinedRegisters())
    out: list[Diagnostic] = []
    reported: set[tuple[int, tuple[str, int]]] = set()

    def use(inst: Instruction, pos: int, op, defined: set) -> None:
        if not isinstance(op, Register):
            return
        key = _regkey(op)
        if key in defined or (pos, key) in reported:
            return
        reported.add((pos, key))
        out.append(Diagnostic(
            Severity.ERROR, "definite-assignment",
            f"use of undefined register {op.name} in "
            f"'{inst.render()}'", obj=module.name))

    for b in cfg.reachable():
        blk = cfg.blocks[b]
        defined = set(inputs.get(b, frozenset()))
        for pos in range(blk.start, blk.stop):
            inst = cfg.instructions[pos]
            if inst.guard is not None:
                use(inst, pos, inst.guard, defined)
            if inst.opcode in ("label", "bra", "ret", "ld.param"):
                pass
            else:
                for op in inst.srcs:
                    use(inst, pos, op, defined)
            if inst.dst is not None:
                defined.add(_regkey(inst.dst))
    out.sort(key=lambda d: d.message)
    return out


# --- pass: unreachable code ------------------------------------------------

def _check_unreachable(module: PTXModule, cfg: CFG) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    reachable = cfg.reachable()
    for blk in cfg.blocks:
        if blk.index in reachable:
            continue
        body = [i for i in blk.instructions(cfg.instructions)
                if i.opcode != "label"]
        if body:
            out.append(Diagnostic(
                Severity.WARNING, "unreachable-code",
                f"{len(body)} unreachable instruction(s)",
                obj=module.name, location=body[0].render()))
    return out


# --- pass: return paths ----------------------------------------------------

def _check_return_paths(module: PTXModule, cfg: CFG) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    reachable = cfg.reachable()
    exits = [b for b in reachable if not cfg.blocks[b].successors]
    if not exits:
        out.append(Diagnostic(
            Severity.ERROR, "return-paths",
            "kernel does not return (no exit path from entry)",
            obj=module.name))
        return out
    for b in exits:
        blk = cfg.blocks[b]
        insts = blk.instructions(cfg.instructions)
        last = insts[-1] if insts else None
        if last is None or last.opcode != "ret" or last.guard is not None:
            out.append(Diagnostic(
                Severity.ERROR, "return-paths",
                "kernel does not return on every path "
                "(block falls off the end without ret)",
                obj=module.name,
                location=last.render() if last is not None else ""))
    return out


# --- passes over the abstract-interpretation facts --------------------------

def _fmt_off(x: float) -> str:
    if math.isinf(x):
        return "-inf" if x < 0 else "+inf"
    return str(int(x))


def _check_proven_bounds(module: PTXModule, cfg: CFG,
                         analysis) -> list[Diagnostic]:
    """Memory safety by abstract interpretation.

    Every ``ld.global``/``st.global`` address is recovered as
    ``region + affine offset`` and its interval compared against the
    bound region's size (:mod:`repro.ptx.absint`).  A proven
    out-of-bounds access is an *error*; an access the affine engine
    cannot settle falls back to the old guard-domination heuristic and
    warns only when even that fails (hand-written kernels may
    establish safety by launch-geometry contract).
    """
    out: list[Diagnostic] = []
    for a in analysis.accesses:
        inst = cfg.instructions[a.pos]
        if a.verdict == "oob":
            region = analysis.env.regions.get(a.region)
            out.append(Diagnostic(
                Severity.ERROR, "proven-bounds",
                f"proven out-of-bounds {a.opcode}: byte offset range "
                f"[{_fmt_off(a.offset[0])}, {_fmt_off(a.offset[1])}] "
                f"escapes region '{a.region}' of "
                f"{region.size_bytes} bytes",
                obj=module.name, location=inst.render()))
        elif a.verdict == "unguarded":
            out.append(Diagnostic(
                Severity.WARNING, "proven-bounds",
                f"{a.opcode} is not dominated by a thread bounds guard "
                f"(out-of-range threads may access out of bounds)",
                obj=module.name, location=inst.render()))
    return out


def _check_coalescing(module: PTXModule, cfg: CFG,
                      analysis) -> list[Diagnostic]:
    """Warn on accesses proven *uncoalesced*: a known ``%tid.x``
    stride whose warp span needs more memory transactions than the
    stride-1 SoA layout would (unknown strides stay silent — they are
    reported as facts by ``repro.lint``, not guessed at here)."""
    out: list[Diagnostic] = []
    for a in analysis.accesses:
        if a.coalesced is False and not a.uniform:
            stride = a.stride_bytes
            s = int(stride) if float(stride).is_integer() else stride
            out.append(Diagnostic(
                Severity.WARNING, "coalescing",
                f"uncoalesced {a.opcode}: %tid.x stride {s} bytes over "
                f"{a.width}-byte elements costs "
                f"{a.transactions:.0f} transactions/warp "
                f"(ideal {a.ideal_transactions})",
                obj=module.name, location=inst_render_safe(cfg, a.pos)))
    return out


def _check_divergence(module: PTXModule, cfg: CFG,
                      analysis) -> list[Diagnostic]:
    """Warn on branches whose predicate is thread-varying (the warp
    serializes both sides).  The generators' bounds early-exit —
    varying only in the last warp, with an empty taken side — is
    recognized as benign and not flagged."""
    out: list[Diagnostic] = []
    for b in analysis.divergent_branches:
        out.append(Diagnostic(
            Severity.WARNING, "divergence",
            "branch on thread-varying predicate diverges the warp "
            "(both sides execute serially)",
            obj=module.name, location=inst_render_safe(cfg, b.pos)))
    return out


def inst_render_safe(cfg: CFG, pos: int) -> str:
    try:
        return cfg.instructions[pos].render()
    except Exception:
        return f"@{pos}"


# --- pipeline ---------------------------------------------------------------

#: Ordered registry of verifier passes (name -> function).  Every pass
#: takes ``(module, cfg, analysis)``; ``analysis`` is the kernel's
#: :class:`~repro.ptx.absint.KernelAnalysis` and is only computed when
#: a pass in ``ANALYSIS_PASSES`` is requested.
PASSES = {
    "operands": lambda m, c, a: _check_operands(m, c),
    "ssa-structure": lambda m, c, a: _check_ssa_structure(m, c),
    "definite-assignment": lambda m, c, a: _check_definite_assignment(m, c),
    "unreachable-code": lambda m, c, a: _check_unreachable(m, c),
    "return-paths": lambda m, c, a: _check_return_paths(m, c),
    "proven-bounds": _check_proven_bounds,
    "coalescing": _check_coalescing,
    "divergence": _check_divergence,
}

#: Passes that need the abstract interpretation to have run.
ANALYSIS_PASSES = frozenset({"proven-bounds", "coalescing", "divergence"})


def run_passes(module: PTXModule, passes=None, env=None,
               analysis=None) -> list[Diagnostic]:
    """Run the verification pipeline; return *all* diagnostics found.

    ``env`` is an optional :class:`~repro.ptx.absint.KernelEnv` with
    launch-time facts (scalar parameter values, bound region sizes);
    without it the analysis passes run under a generic env and only
    claim what is provable for *any* launch.  A caller that already
    holds the module's :class:`~repro.ptx.absint.KernelAnalysis` may
    pass it as ``analysis`` to skip recomputation.
    """
    from .absint import analyze_module

    cfg = build_cfg(list(module.instructions))
    names = list(passes if passes is not None else PASSES)
    if analysis is None and any(n in ANALYSIS_PASSES for n in names):
        analysis = analyze_module(module, env=env, cfg=cfg)
    out: list[Diagnostic] = []
    for name in names:
        out.extend(PASSES[name](module, cfg, analysis))
    return out


def verify(module: PTXModule, env=None) -> None:
    """Verify ``module``; raise :class:`PTXVerificationError` listing
    every error-severity violation, return ``None`` if well-formed."""
    diagnostics = run_passes(module, env=env)
    errs = errors(diagnostics)
    if errs:
        summary = "\n".join(f"{module.name}: {d.message}" for d in errs)
        raise PTXVerificationError(summary, diagnostics)

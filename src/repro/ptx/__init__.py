"""The PTX-like virtual ISA (the framework's *secondary language*).

See paper Sec. III: generated kernels are expressed in this
assembly-like language and handed as text to the driver JIT.
"""

from .builder import KernelBuilder, PTXBuildError, promote
from .cfg import CFG, BasicBlock, DataflowAnalysis, build_cfg, solve
from .isa import (
    BINARY_OPS,
    CMP_OPS,
    UNARY_OPS,
    Immediate,
    Instruction,
    KernelInfo,
    Param,
    PTXType,
    Register,
    Special,
)
from .module import PTX_TARGET, PTX_VERSION, PTXModule
from .verifier import PASSES, PTXVerificationError, run_passes, verify

__all__ = [
    "BINARY_OPS",
    "BasicBlock",
    "CFG",
    "CMP_OPS",
    "DataflowAnalysis",
    "UNARY_OPS",
    "Immediate",
    "Instruction",
    "KernelBuilder",
    "KernelInfo",
    "PASSES",
    "Param",
    "PTXBuildError",
    "PTXModule",
    "PTXType",
    "PTXVerificationError",
    "PTX_TARGET",
    "PTX_VERSION",
    "Register",
    "Special",
    "build_cfg",
    "promote",
    "run_passes",
    "solve",
    "verify",
]

"""Processor grid and lattice decomposition.

Node parallelization lives on the outer (Lattice) level of the type
hierarchy (paper Sec. II-B): the global lattice is split into
hypercubic sub-grids, one per rank, with ranks arranged on an
Nd-dimensional processor grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..qdp.lattice import Lattice


class DecompositionError(ValueError):
    pass


@dataclass(frozen=True)
class ProcessorGrid:
    """An Nd-dimensional grid of ranks (row-major, dim 0 fastest)."""

    dims: tuple[int, ...]

    def __post_init__(self):
        if any(d < 1 for d in self.dims):
            raise DecompositionError(f"bad grid dims {self.dims}")

    @property
    def size(self) -> int:
        return int(np.prod(self.dims))

    @property
    def nd(self) -> int:
        return len(self.dims)

    def coords_of(self, rank: int) -> tuple[int, ...]:
        if not 0 <= rank < self.size:
            raise DecompositionError(f"bad rank {rank}")
        out = []
        for d in self.dims:
            out.append(rank % d)
            rank //= d
        return tuple(out)

    def rank_of(self, coords) -> int:
        rank = 0
        stride = 1
        for c, d in zip(coords, self.dims):
            rank += (c % d) * stride
            stride *= d
        return rank

    def neighbor(self, rank: int, mu: int, sign: int) -> int:
        """The rank one step in (mu, sign); periodic."""
        c = list(self.coords_of(rank))
        c[mu] = (c[mu] + sign) % self.dims[mu]
        return self.rank_of(c)


def shrunken_grid(grid: ProcessorGrid,
                  global_dims: tuple[int, ...]) -> ProcessorGrid:
    """The largest valid processor grid strictly smaller than ``grid``.

    Used by shrink-and-redistribute recovery: after a rank dies the
    machine must keep running on fewer ranks, so we pick — as a pure
    function of the inputs, for deterministic replay — the candidate
    grid with the most ranks that still decomposes ``global_dims``
    (divisibility plus even local extents).  Candidates reduce one
    grid extent at a time; ties break toward reducing the highest
    dimension (time first), which keeps the cheap spatial grid
    layouts intact.  Raises :class:`DecompositionError` when no
    smaller grid decomposes the lattice (e.g. a single-rank grid).
    """
    best: tuple[int, ...] | None = None
    best_size = 0
    for mu in reversed(range(grid.nd)):
        for extent in range(grid.dims[mu] - 1, 0, -1):
            cand = list(grid.dims)
            cand[mu] = extent
            try:
                Decomposition(tuple(global_dims),
                              ProcessorGrid(tuple(cand)))
            except DecompositionError:
                continue
            size = int(np.prod(cand))
            if size > best_size:
                best, best_size = tuple(cand), size
            break  # larger extents dominate smaller ones in this dim
    if best is None:
        raise DecompositionError(
            f"grid {grid.dims} cannot shrink: no smaller grid "
            f"decomposes lattice {tuple(global_dims)}")
    return ProcessorGrid(best)


@dataclass(frozen=True)
class Decomposition:
    """A global lattice split over a processor grid."""

    global_dims: tuple[int, ...]
    grid: ProcessorGrid

    def __post_init__(self):
        if len(self.global_dims) != self.grid.nd:
            raise DecompositionError(
                "lattice and processor grid dimensionality differ")
        for l, p in zip(self.global_dims, self.grid.dims):
            if l % p:
                raise DecompositionError(
                    f"lattice extent {l} not divisible by grid extent {p}")
            if (l // p) % 2:
                raise DecompositionError(
                    f"local extent {l // p} must be even (checkerboarding)")

    @property
    def local_dims(self) -> tuple[int, ...]:
        return tuple(l // p for l, p in zip(self.global_dims,
                                            self.grid.dims))

    def local_lattice(self) -> Lattice:
        return Lattice(self.local_dims)

    def global_lattice(self) -> Lattice:
        return Lattice(self.global_dims)

    def owner_of(self, global_coords: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized: (rank, local_site_index) for global coords
        of shape (n, nd)."""
        gc = np.atleast_2d(np.asarray(global_coords))
        ld = np.array(self.local_dims)
        rank_coords = gc // ld
        local_coords = gc % ld
        rank = np.zeros(gc.shape[0], dtype=np.int64)
        stride = 1
        for mu, p in enumerate(self.grid.dims):
            rank += rank_coords[:, mu] * stride
            stride *= p
        lidx = np.zeros(gc.shape[0], dtype=np.int64)
        stride = 1
        for mu, d in enumerate(self.local_dims):
            lidx += local_coords[:, mu] * stride
            stride *= d
        return rank, lidx

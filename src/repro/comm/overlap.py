"""Overlapping MPI communication and computation (paper Sec. V).

For an expression with shift operations the local sub-grid is
partitioned into *inner sites* and *face sites*.  Face data is
gathered into contiguous GPU buffers and sent; while it is in flight,
the compute kernel runs on the inner sites; once the halo lands, the
remaining sites are evaluated.  This module implements that schedule
for the Wilson Dslash — the paper's Fig. 6 benchmark — with overlap
switchable on/off, producing *identical field values* either way (the
integration tests assert bit-level agreement) but different modeled
times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.expr import adj
from ..qdp.lattice import Subset
from ..qdp.typesys import fermion
from .vm import DistributedField, VirtualMachine
from ..qcd.gamma import projector_const
from ..qcd.dslash import DSLASH_FLOPS_PER_SITE


@dataclass
class DslashTiming:
    """Modeled wall-clock breakdown of one distributed Dslash."""

    prepare_s: float       # backward-hop temporaries adj(u)*psi
    gather_s: float
    comm_s: float
    interior_fill_s: float
    scatter_s: float
    main_inner_s: float
    main_face_s: float
    overlap: bool
    #: makespan of this apply's window on the VM's stream-runtime
    #: timeline (``None`` when the runtime ran in serial mode); when
    #: set it *is* the total — event-ordered lanes, not the coarse
    #: two-term max below
    timeline_s: float | None = None
    #: the window's spans (a :class:`repro.runtime.Timeline` view),
    #: exportable with :func:`repro.runtime.write_chrome_trace`
    timeline: object = field(default=None, repr=False, compare=False)

    @property
    def total_s(self) -> float:
        if self.timeline_s is not None:
            return self.timeline_s
        if self.overlap:
            hidden = max(self.comm_s,
                         self.interior_fill_s + self.main_inner_s)
            return (self.prepare_s + self.gather_s + hidden
                    + self.scatter_s + self.main_face_s)
        return (self.prepare_s + self.gather_s + self.comm_s
                + self.interior_fill_s + self.scatter_s
                + self.main_inner_s + self.main_face_s)

    @property
    def serial_s(self) -> float:
        """The no-overlap serial sum of every component."""
        return (self.prepare_s + self.gather_s + self.comm_s
                + self.interior_fill_s + self.scatter_s
                + self.main_inner_s + self.main_face_s)

    def gflops(self, global_volume: int) -> float:
        return DSLASH_FLOPS_PER_SITE * global_volume / self.total_s / 1e9


class DistributedWilsonDslash:
    """The Wilson hopping term on a virtual parallel machine.

    Built from the high-level domain abstractions, exactly as the
    paper stresses (Sec. VIII-C): the per-rank kernels come from the
    same expression code generators as the single-GPU path; this class
    only adds the halo schedule.
    """

    def __init__(self, vm: VirtualMachine, u: list[DistributedField],
                 precision: str = "f64"):
        self.vm = vm
        self.u = u
        self.precision = precision
        nd = vm.local_lattice.nd
        fspec = fermion(precision)
        # persistent shifted-neighbor temporaries, one per direction
        self.hf = [vm.field(fspec, f"hopf{mu}") for mu in range(nd)]
        self.hb = [vm.field(fspec, f"hopb{mu}") for mu in range(nd)]
        self.tb = [vm.field(fspec, f"tb{mu}") for mu in range(nd)]
        self._boundary: Subset | None = None
        self._interior: Subset | None = None
        if vm.resilience is not None:
            # a shrink changes the local geometry under our feet: the
            # cached inner/face partition must be recomputed
            vm.resilience.on_shrink(self._invalidate_partition)

    def _invalidate_partition(self, vm) -> None:
        self._interior = None
        self._boundary = None

    # -- site partition (inner vs face, paper Sec. V) -------------------

    def _partition(self) -> tuple[Subset, Subset]:
        if self._interior is None:
            local = self.vm.local_lattice
            dirs = [(mu, s) for mu in range(local.nd) for s in (+1, -1)]
            inner = local.inner_sites(dirs)
            import numpy as np

            mask = np.ones(local.nsites, dtype=bool)
            mask[inner] = False
            face = np.nonzero(mask)[0].astype(np.int32)
            self._interior = Subset("dslash_inner", inner)
            self._boundary = Subset("dslash_face", face)
        return self._interior, self._boundary

    def _main_expr(self, rank: int, sign: int = +1):
        total = None
        nd = self.vm.local_lattice.nd
        for mu in range(nd):
            p_minus = projector_const(mu, +sign, self.precision)
            p_plus = projector_const(mu, -sign, self.precision)
            fwd = p_minus * (self.u[mu].shards[rank]
                             * self.hf[mu].shards[rank])
            bwd = p_plus * self.hb[mu].shards[rank].ref()
            term = fwd + bwd
            total = term if total is None else total + term
        return total

    def apply(self, dest: DistributedField, psi: DistributedField,
              overlap: bool = True, sign: int = +1) -> DslashTiming:
        """dest = D psi, returning the modeled timing breakdown."""
        vm = self.vm
        nd = vm.local_lattice.nd
        # window this apply on the VM timeline: the makespan between
        # the two synchronization points is the overlapped total
        t_begin = vm.runtime.synchronize()

        # 1. backward-hop temporaries t_mu = adj(u_mu) * psi (local)
        prepare = 0.0
        for mu in range(nd):
            prepare += vm.assign_local(
                self.tb[mu],
                lambda r, m=mu: adj(self.u[m].shards[r]) * psi.shards[r])

        # 2. gather faces + launch all sends
        exchanges = []
        gather = 0.0
        comm = 0.0
        for mu in range(nd):
            # non-overlap mode runs the textbook sequential schedule:
            # every send completes before anything else is enqueued
            ex_f = vm.exchange(psi, mu, +1, blocking=not overlap)
            ex_b = vm.exchange(self.tb[mu], mu, -1, blocking=not overlap)
            exchanges.append((mu, ex_f, ex_b))
            gather += ex_f.gather_time + ex_b.gather_time
            comm += ex_f.comm_time + ex_b.comm_time

        # 3. interior fills of the shifted temporaries (overlappable)
        interior_fill = 0.0
        for mu in range(nd):
            interior_fill += vm.fill_shift_interior(self.hf[mu], psi, mu, +1)
            interior_fill += vm.fill_shift_interior(self.hb[mu],
                                                    self.tb[mu], mu, -1)

        inner, face = self._partition()
        main_inner = 0.0
        main_face = 0.0
        if overlap:
            # 4a. main kernel on inner sites while the halo flies
            main_inner = vm.assign_local(
                dest, lambda r: self._main_expr(r, sign), subset=inner)
            # 5. halo lands: scatter, then finish the face sites
            scatter = 0.0
            for mu, ex_f, ex_b in exchanges:
                scatter += vm.scatter_halo(self.hf[mu], ex_f)
                scatter += vm.scatter_halo(self.hb[mu], ex_b)
            main_face = vm.assign_local(
                dest, lambda r: self._main_expr(r, sign), subset=face)
        else:
            # sequential: wait for the halo, then one full-volume kernel
            scatter = 0.0
            for mu, ex_f, ex_b in exchanges:
                scatter += vm.scatter_halo(self.hf[mu], ex_f)
                scatter += vm.scatter_halo(self.hb[mu], ex_b)
            main_inner = vm.assign_local(
                dest, lambda r: self._main_expr(r, sign))

        timeline_s = None
        window = None
        if vm.runtime.enabled:
            timeline_s = vm.runtime.synchronize() - t_begin
            window = vm.timeline.since(t_begin)
        return DslashTiming(
            prepare_s=prepare, gather_s=gather, comm_s=comm,
            interior_fill_s=interior_fill, scatter_s=scatter,
            main_inner_s=main_inner, main_face_s=main_face,
            overlap=overlap, timeline_s=timeline_s, timeline=window)

"""Face gather/scatter kernels for halo exchange (paper Sec. V).

"Compute kernels gather data into a contiguous region of GPU memory
from where it's sent directly (MPI) to the destination node."  The
gather kernel packs the words of the face sites into an SoA send
buffer (word-major, face-slot fastest — coalesced); the scatter
kernel unpacks a receive buffer into the face sites of the target
field.  Both are built directly against the PTX builder and cached
per element type.
"""

from __future__ import annotations

from ..driver.cache import KernelCache
from ..ir.pipeline import prepare_module
from ..ptx.builder import KernelBuilder
from ..ptx.isa import PTXType
from ..ptx.module import PTXModule
from ..ptx.verifier import verify

_FT = {"f32": PTXType.F32, "f64": PTXType.F64}


def build_gather_kernel(words_per_site: int, precision: str,
                        ir_stats=None) -> PTXModule:
    """buf[w * nface + t] = field[w * nsites + sites[t]]"""
    kb = KernelBuilder(f"gather_w{words_per_site}_{precision}")
    p_lo = kb.add_param("p_lo", PTXType.S32)        # field site stride
    p_n = kb.add_param("p_n", PTXType.S32)          # face count
    p_sites = kb.add_param("p_sites", PTXType.U64, is_pointer=True)
    p_dst = kb.add_param("p_dst", PTXType.U64, is_pointer=True)   # buffer
    p_src = kb.add_param("p_src", PTXType.U64, is_pointer=True)   # field
    _emit_copy_body(kb, p_lo, p_n, p_sites, p_dst, p_src,
                    words_per_site, precision, gather=True)
    module = prepare_module(PTXModule.from_builder(kb), stats=ir_stats)
    verify(module)
    return module


def build_scatter_kernel(words_per_site: int, precision: str,
                         ir_stats=None) -> PTXModule:
    """field[w * nsites + sites[t]] = buf[w * nface + t]"""
    kb = KernelBuilder(f"scatter_w{words_per_site}_{precision}")
    p_lo = kb.add_param("p_lo", PTXType.S32)
    p_n = kb.add_param("p_n", PTXType.S32)
    p_sites = kb.add_param("p_sites", PTXType.U64, is_pointer=True)
    p_dst = kb.add_param("p_dst", PTXType.U64, is_pointer=True)   # field
    p_src = kb.add_param("p_src", PTXType.U64, is_pointer=True)   # buffer
    _emit_copy_body(kb, p_lo, p_n, p_sites, p_dst, p_src,
                    words_per_site, precision, gather=False)
    module = prepare_module(PTXModule.from_builder(kb), stats=ir_stats)
    verify(module)
    return module


def _emit_copy_body(kb: KernelBuilder, p_lo, p_n, p_sites, p_dst, p_src,
                    words_per_site: int, precision: str,
                    gather: bool) -> None:
    ft = _FT[precision]
    wb = ft.nbytes
    nsites = kb.ld_param(p_lo)
    n = kb.ld_param(p_n)
    sites_base = kb.ld_param(p_sites)
    dst_base = kb.ld_param(p_dst)
    src_base = kb.ld_param(p_src)
    gid = kb.global_thread_id()
    oob = kb.setp("ge", gid, n)
    exit_lbl = kb.new_label("EXIT")
    kb.bra(exit_lbl, guard=oob)

    g64 = kb.cvt(gid, PTXType.S64)
    soff = kb.mul(g64, kb.imm(4, PTXType.S64))
    saddr = kb.add(sites_base, kb.cvt(soff, PTXType.U64))
    site = kb.cvt(kb.ld_global(saddr, PTXType.S32), PTXType.S64)

    field_site_b = kb.mul(site, kb.imm(wb, PTXType.S64))
    buf_slot_b = kb.mul(g64, kb.imm(wb, PTXType.S64))
    ns_b = kb.mul(kb.cvt(nsites, PTXType.S64), kb.imm(wb, PTXType.S64))
    n_b = kb.mul(kb.cvt(n, PTXType.S64), kb.imm(wb, PTXType.S64))

    for w in range(words_per_site):
        w_imm = kb.imm(w, PTXType.S64)
        field_off = kb.fma(ns_b, w_imm, field_site_b, PTXType.S64)
        buf_off = kb.fma(n_b, w_imm, buf_slot_b, PTXType.S64)
        if gather:
            addr_src = kb.add(src_base, kb.cvt(field_off, PTXType.U64))
            addr_dst = kb.add(dst_base, kb.cvt(buf_off, PTXType.U64))
        else:
            addr_src = kb.add(src_base, kb.cvt(buf_off, PTXType.U64))
            addr_dst = kb.add(dst_base, kb.cvt(field_off, PTXType.U64))
        val = kb.ld_global(addr_src, ft)
        kb.st_global(addr_dst, val, ft)

    kb.label(exit_lbl)
    kb.ret()


def face_env(kind: str, words_per_site: int, precision: str,
             nsites: int, face_sites):
    """Launch env for a gather/scatter kernel bound to one face.

    ``face_sites`` is the int32 site list that will be bound to
    ``p_sites`` — its content range bounds the field-side accesses,
    and its bulk stride decides whether they coalesce (faces normal
    to the slowest direction are contiguous site runs; the paper
    splits the lattice in t for exactly this reason).
    """
    from ..ptx.absint import KernelEnv, MemRegion, table_region

    wb = _FT[precision].nbytes
    nface = len(face_sites)
    field = MemRegion("p_dst" if kind == "scatter" else "p_src",
                      words_per_site * nsites * wb)
    buf = MemRegion("p_src" if kind == "scatter" else "p_dst",
                    words_per_site * nface * wb)
    return KernelEnv(
        scalars={"p_lo": nsites, "p_n": nface},
        regions={"p_sites": table_region("p_sites", face_sites),
                 field.param: field, buf.param: buf})


class FaceKernels:
    """Per-context cache of compiled gather/scatter kernels."""

    def __init__(self, kernel_cache: KernelCache, ir_stats=None):
        self.kernel_cache = kernel_cache
        self.ir_stats = ir_stats
        self._modules: dict[tuple, tuple] = {}

    def get(self, kind: str, words_per_site: int, precision: str):
        key = (kind, words_per_site, precision)
        entry = self._modules.get(key)
        if entry is None:
            build = (build_gather_kernel if kind == "gather"
                     else build_scatter_kernel)
            module = build(words_per_site, precision,
                           ir_stats=self.ir_stats)
            compiled, _ = self.kernel_cache.get_or_compile(module.render())
            entry = (module, compiled)
            self._modules[key] = entry
        return entry

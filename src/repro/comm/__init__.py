"""Virtual MPI: processor grids, halo exchange, comm/compute overlap."""

from .grid import Decomposition, DecompositionError, ProcessorGrid
from .netmodel import GEMINI, IB_QDR_CUDA_AWARE, IB_QDR_STAGED, NetworkModel
from .overlap import DistributedWilsonDslash, DslashTiming
from .vm import DistributedField, ExchangeResult, VirtualMachine

__all__ = [
    "Decomposition",
    "DecompositionError",
    "DistributedField",
    "DistributedWilsonDslash",
    "DslashTiming",
    "ExchangeResult",
    "GEMINI",
    "IB_QDR_CUDA_AWARE",
    "IB_QDR_STAGED",
    "NetworkModel",
    "ProcessorGrid",
    "VirtualMachine",
]

"""Virtual MPI: processor grids, halo exchange, comm/compute overlap."""

from .grid import Decomposition, DecompositionError, ProcessorGrid, shrunken_grid
from .netmodel import GEMINI, IB_QDR_CUDA_AWARE, IB_QDR_STAGED, NetworkModel
from .overlap import DistributedWilsonDslash, DslashTiming
from .vm import (
    DistributedField,
    ExchangeResult,
    HaloMismatchError,
    VirtualMachine,
)

__all__ = [
    "Decomposition",
    "DecompositionError",
    "DistributedField",
    "HaloMismatchError",
    "shrunken_grid",
    "DistributedWilsonDslash",
    "DslashTiming",
    "ExchangeResult",
    "GEMINI",
    "IB_QDR_CUDA_AWARE",
    "IB_QDR_STAGED",
    "NetworkModel",
    "ProcessorGrid",
    "VirtualMachine",
]

"""The virtual parallel machine: P ranks in one process.

Each rank owns a full framework context (simulated GPU, kernel cache,
field cache) and a hypercubic sub-grid of the global lattice.  The VM
executes rank operations round-robin; because ranks are homogeneous
and the workload is bulk-synchronous, the modeled wall-clock of a
collective step is the maximum over ranks of its modeled per-rank
cost, and message transfer times come from the interconnect model.

Data motion is real: halo exchange gathers face sites into contiguous
device buffers with generated kernels (paper Sec. V), moves the bytes
between the ranks' device pools, and scatters them on the receiving
side — so multi-rank results are bit-comparable to single-rank runs,
which the integration tests assert.

Modeled time lands on the VM's own stream runtime
(:mod:`repro.runtime.stream`): collective kernel steps (the max over
ranks) queue on the ``compute`` lane, halo messages and scalar
allreduces on the ``comm`` lane.  A message waits on the event of the
gather that filled its send buffer, and the halo scatter waits on the
message's completion event — so communication genuinely overlaps
whatever compute is enqueued in between, and ``vm.timeline`` reports
the overlapped makespan, per-lane busy time and the critical path
instead of a flat per-component sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.context import Context
from ..core.evaluator import evaluate
from ..core.expr import shift as shift_expr
from ..core.reduction import innerProduct, norm2
from ..device.specs import DeviceSpec, K20X_ECC_OFF
from ..qdp.fields import LatticeField
from ..qdp.lattice import Lattice
from ..qdp.typesys import TypeSpec
from ..runtime.stream import Event, StreamRuntime
from .faces import FaceKernels
from .grid import Decomposition, ProcessorGrid
from .netmodel import IB_QDR_CUDA_AWARE, NetworkModel


class HaloMismatchError(RuntimeError):
    """A halo operation was handed state that does not fit the
    machine.

    Raised by :meth:`VirtualMachine.exchange`/:meth:`scatter_halo`
    when a field belongs to a different VM or an
    :class:`ExchangeResult` no longer matches the machine's geometry
    (e.g. it predates a shrink-and-redistribute recovery).  Carries
    the offending (rank, mu, sign) and renders as a structured
    diagnostic, like the cache's ``NoValidCopyError``.
    """

    def __init__(self, op: str, reason: str, mu: int, sign: int,
                 rank: int | None = None):
        self.op = op
        self.reason = reason
        self.mu = mu
        self.sign = sign
        self.rank = rank
        where = f" on rank {rank}" if rank is not None else ""
        super().__init__(
            f"{op}: {reason} (mu={mu}, sign={sign:+d}{where})")

    @property
    def diagnostic(self):
        from ..diagnostics import Diagnostic, Severity

        where = (f"rank {self.rank}, " if self.rank is not None
                 else "") + f"mu={self.mu}, sign={self.sign:+d}"
        return Diagnostic(
            severity=Severity.ERROR, pass_name="halo-exchange",
            message=self.reason, obj=self.op, location=where)


class DistributedField:
    """A lattice field split over the VM's ranks (one shard each)."""

    def __init__(self, vm: "VirtualMachine", spec: TypeSpec,
                 name: str | None = None):
        self.vm = vm
        self.spec = spec
        self.name = name or "dfield"
        self._reshard()
        if vm.resilience is not None:
            vm.resilience.register(self)

    def _reshard(self) -> None:
        """(Re)build the per-rank shards for the VM's current grid —
        called at construction and after a shrink rebuilt the rank
        map (the old shards' contexts are gone)."""
        vm = self.vm
        self.shards = [LatticeField(vm.local_lattice, self.spec,
                                    context=vm.contexts[r],
                                    name=f"{self.name}@r{r}")
                       for r in range(vm.nranks)]

    def from_global(self, arr: np.ndarray) -> None:
        """Scatter a global (gnsites, *shape) array to the shards."""
        vm = self.vm
        g = vm.global_lattice
        want = (g.nsites,) + self.spec.shape
        if arr.shape != want:
            raise ValueError(f"expected {want}, got {arr.shape}")
        ranks, lidx = vm.decomp.owner_of(g.coords)
        for r in range(vm.nranks):
            sel = ranks == r
            local = np.empty((vm.local_lattice.nsites,) + self.spec.shape,
                             dtype=arr.dtype)
            local[lidx[sel]] = arr[sel]
            self.shards[r].from_numpy(local)

    def to_global(self) -> np.ndarray:
        """Gather the shards into a global array."""
        vm = self.vm
        g = vm.global_lattice
        ranks, lidx = vm.decomp.owner_of(g.coords)
        dtype = (self.spec.complex_dtype if self.spec.is_complex
                 else self.spec.dtype)
        out = np.empty((g.nsites,) + self.spec.shape, dtype=dtype)
        for r in range(vm.nranks):
            sel = ranks == r
            local = self.shards[r].to_numpy()
            out[sel] = local[lidx[sel]]
        return out

    def gaussian(self, rng: np.random.Generator) -> None:
        for s in self.shards:
            s.gaussian(rng)


class VirtualMachine:
    """P simulated ranks over a decomposed global lattice."""

    def __init__(self, global_dims, grid_dims,
                 spec: DeviceSpec = K20X_ECC_OFF,
                 net: NetworkModel = IB_QDR_CUDA_AWARE,
                 pool_capacity: int | None = None,
                 autotune: bool = True,
                 streams: bool | None = None,
                 faults=None,
                 resilience=None,
                 recover_policy: str = "buddy"):
        from ..faults.inject import FaultInjector
        from ..faults.plan import active_plan

        self.decomp = Decomposition(tuple(int(d) for d in global_dims),
                                    ProcessorGrid(tuple(int(d)
                                                        for d in grid_dims)))
        self.grid = self.decomp.grid
        self.nranks = self.grid.size
        self.local_lattice = self.decomp.local_lattice()
        self.global_lattice = self.decomp.global_lattice()
        self.net = net
        # one plan shared across every rank (and the halo layer), so
        # a single trace/counter set covers the whole machine
        if faults is None:
            plan = active_plan()
        elif faults is False:
            plan = None
        else:
            plan = faults
        self._plan = plan
        self._ctx_args = dict(spec=spec, pool_capacity=pool_capacity,
                              autotune=autotune)
        self.contexts = [self._make_rank_context()
                         for _ in range(self.nranks)]
        #: halo-layer fault injector (drop/corrupt/timeout recovery);
        #: shares the rank devices' plan
        self.faults = FaultInjector(plan)
        self.face_kernels = [FaceKernels(c.kernel_cache,
                                         ir_stats=c.stats.ir)
                             for c in self.contexts]
        #: the VM's stream runtime: the *collective* step timeline
        #: (max-over-ranks costs), distinct from each rank context's
        #: per-device runtime.  ``streams=None`` consults REPRO_STREAMS.
        self.runtime = StreamRuntime(enabled=streams)
        self.timeline = self.runtime.timeline
        # persistent per-(rank, mu, sign) send/recv buffers
        self._buffers: dict[tuple, tuple[int, int]] = {}
        #: rank fault tolerance (``resilience=None`` consults the
        #: REPRO_RESILIENCE knob; ``False``/``"off"`` disables, a mode
        #: string overrides).  ``None`` manager = the off path, which
        #: is bitwise invisible: no hooks run, no state is kept.
        if resilience is None:
            from ..diagnostics import resilience_mode

            mode = resilience_mode()
        elif resilience is False:
            mode = "off"
        else:
            mode = resilience
        if mode == "off":
            self.resilience = None
        else:
            from ..resilience import ResilienceManager

            self.resilience = ResilienceManager(self, mode=mode,
                                                policy=recover_policy)

    # -- construction helpers -------------------------------------------

    def _make_rank_context(self) -> Context:
        """A fresh rank context (also the spare a buddy restore
        targets), sharing the machine-wide fault plan."""
        plan = self._plan
        return Context(self._ctx_args["spec"],
                       pool_capacity=self._ctx_args["pool_capacity"],
                       autotune=self._ctx_args["autotune"],
                       faults=plan if plan is not None else False)

    def _rebuild(self, grid: ProcessorGrid) -> None:
        """Re-host the machine on ``grid`` (shrink recovery): fresh
        decomposition, contexts and face kernels; the old comm
        buffers die with the old device pools.  Field payloads are
        the resilience manager's job — it re-partitions every
        registered field right after this."""
        self.decomp = Decomposition(self.decomp.global_dims, grid)
        self.grid = grid
        self.nranks = grid.size
        self.local_lattice = self.decomp.local_lattice()
        self.contexts = [self._make_rank_context()
                         for _ in range(self.nranks)]
        self.face_kernels = [FaceKernels(c.kernel_cache,
                                         ir_stats=c.stats.ir)
                             for c in self.contexts]
        self._buffers.clear()

    def field(self, spec: TypeSpec, name: str | None = None
              ) -> DistributedField:
        return DistributedField(self, spec, name)

    def _buffer(self, rank: int, kind: str, mu: int, sign: int,
                nbytes: int) -> int:
        key = (rank, kind, mu, sign)
        entry = self._buffers.get(key)
        if entry is not None and entry[1] >= nbytes:
            return entry[0]
        if entry is not None:
            self.contexts[rank].device.mem_free(entry[0])
        addr = self.contexts[rank].field_cache._allocate_with_spill(
            nbytes, set())
        self._buffers[key] = (addr, nbytes)
        return addr

    # -- local (comm-free) evaluation --------------------------------------

    def assign_local(self, dest: DistributedField, build_expr,
                     subset=None) -> float:
        """Evaluate a *local* expression on every rank.

        ``build_expr(rank)`` returns the expression for that rank's
        shard (it must not contain boundary-crossing shifts — use
        :meth:`shift_into` for those).  Returns the modeled step time
        (max over ranks) and queues it on the compute lane.
        """
        worst = 0.0
        for r in range(self.nranks):
            cost = evaluate(dest.shards[r], build_expr(r), subset=subset,
                            context=self.contexts[r])
            worst = max(worst, cost.time_s)
        name = f"assign:{dest.name}"
        if subset is not None:
            name += f"[{subset.name}]"
        self.runtime.compute.enqueue(name, worst, "kernel")
        return worst

    # -- reductions --------------------------------------------------------------

    def _allreduce_time(self) -> float:
        """Modeled allreduce of one scalar: a latency-bound tree."""
        import math

        hops = max(1, math.ceil(math.log2(max(self.nranks, 2))))
        return 2 * hops * self.net.latency_s

    def _charge_allreduce(self, name: str) -> None:
        """Queue a scalar allreduce on the comm lane.

        An allreduce is a synchronization point: it consumes per-rank
        partials (wait on compute), and the host blocks on the scalar
        before it can launch anything else (compute waits on comm
        after).  On the timeline it therefore never overlaps — which
        is exactly the latency wall the paper's strong-scaling
        discussion attributes to global sums.
        """
        rt = self.runtime
        rt.comm.wait_event(rt.compute.record_event())
        rt.comm.enqueue(name, self._allreduce_time(), "reduce",
                        args={"ranks": self.nranks})
        rt.compute.wait_event(rt.comm.record_event())

    def norm2(self, x: DistributedField, subset=None) -> float:
        total = 0.0
        for r in range(self.nranks):
            total += norm2(x.shards[r], subset=subset,
                           context=self.contexts[r])
        self._charge_allreduce(f"allreduce:norm2:{x.name}")
        return total

    def innerProduct(self, a: DistributedField, b: DistributedField,
                     subset=None) -> complex:
        total = 0.0 + 0.0j
        for r in range(self.nranks):
            total += innerProduct(a.shards[r], b.shards[r], subset=subset,
                                  context=self.contexts[r])
        self._charge_allreduce(f"allreduce:dot:{a.name}.{b.name}")
        return total

    # -- halo exchange ------------------------------------------------------------

    def exchange(self, src: DistributedField, mu: int, sign: int,
                 run_gather: bool = True,
                 blocking: bool = False) -> "ExchangeResult":
        """Move the halo for ``shift(src, sign, mu)``.

        The receiver of the forward shift needs the sender's lower
        boundary plane: each rank gathers its plane into a contiguous
        device buffer, the buffer moves to the neighbor's recv buffer
        (network model), and the result records the per-rank recv
        buffer addresses plus component times.  Scattering into the
        destination is a separate step (so the overlap scheduler can
        place it after the compute-on-inner-sites kernel).

        On the timeline the gather runs on the compute lane and the
        message on the comm lane, ordered after the gather's event; the
        returned :class:`ExchangeResult` carries the message completion
        event, which :meth:`scatter_halo` makes the compute lane wait
        on.  Compute enqueued between the two genuinely overlaps the
        message.  ``blocking=True`` synchronizes the runtime after the
        send instead — the sequential schedule, where nothing hides
        behind the wire time.
        """
        if src.vm is not self:
            raise HaloMismatchError(
                "exchange", f"field {src.name!r} belongs to a "
                f"different virtual machine", mu, sign)
        tag = f"{mu}{'+' if sign > 0 else '-'}:{src.name}"
        if self.resilience is not None:
            # the exchange barrier: checkpoint cut, straggler sweep,
            # rank-kill draw (+ recovery) — may rebuild the machine,
            # so the local geometry is read *after* the hook
            self.resilience.at_exchange(src, tag)
        local = self.local_lattice
        spec = src.spec
        send_sites = local.face_sites(mu, -sign)   # the plane we send
        recv_sites = local.face_sites(mu, sign)    # the face we fill
        nface = send_sites.size
        nbytes = spec.words_per_site * spec.word_bytes * nface

        gather_worst = 0.0
        send_addrs = []
        for r in range(self.nranks):
            ctx = self.contexts[r]
            sbuf = self._buffer(r, "send", mu, sign, nbytes)
            send_addrs.append(sbuf)
            if run_gather:
                # gather reads src's device data outside the evaluator:
                # deferred statements targeting it must land first
                ctx.flush()
                module, compiled = self.face_kernels[r].get(
                    "gather", spec.words_per_site, spec.precision)
                addrs = ctx.field_cache.make_available([src.shards[r]])
                params = {
                    "p_lo": local.nsites,
                    "p_n": nface,
                    "p_sites": ctx.upload_table(
                        ("face", local.dims, mu, -sign), send_sites),
                    "p_dst": sbuf,
                    "p_src": addrs[src.shards[r].uid],
                }
                cost = ctx.device.launch(compiled, module.info, params,
                                         nface, block_size=128,
                                         precision=spec.precision)
                gather_worst = max(gather_worst, cost.time_s)

        # move bytes: rank r's send buffer -> neighbor(-sign... who
        # receives r's plane?  For a forward shift, rank r's lower
        # plane goes to rank r - mu_hat.
        recv_addrs = [0] * self.nranks
        penalties = []
        halo_faults = self.faults.active
        for r in range(self.nranks):
            dst_rank = self.grid.neighbor(r, mu, -sign)
            rbuf = self._buffer(dst_rank, "recv", mu, sign, nbytes)
            recv_addrs[dst_rank] = rbuf
            data = self.contexts[r].device.pool.read(send_addrs[r], nbytes)
            if halo_faults:
                penalties.extend(self.faults.deliver_halo(
                    self.contexts[dst_rank].device, rbuf, data,
                    self.net, f"halo:{tag}@r{r}"))
            else:
                self.contexts[dst_rank].device.pool.write(rbuf, data)
        comm_time = self.net.message_time(nbytes)

        rt = self.runtime
        if run_gather:
            rt.compute.enqueue(f"gather:{tag}", gather_worst, "gather",
                               args={"bytes": nbytes, "nface": nface})
        # the message reads the gathered send buffer
        rt.comm.wait_event(rt.compute.record_event())
        rt.comm.enqueue(f"halo:{tag}", comm_time, "comm",
                        args={"bytes": nbytes})
        if penalties:
            # recovery follows the failed delivery: timeouts, backoff
            # and checksum-verified retransmits extend the comm lane,
            # and the scatter's event below waits on all of it
            comm_time += self.faults.charge_penalties(rt, penalties)
        event = rt.comm.record_event()
        if blocking:
            rt.synchronize()
        return ExchangeResult(mu=mu, sign=sign, nface=nface,
                              recv_sites=recv_sites, recv_addrs=recv_addrs,
                              gather_time=gather_worst, comm_time=comm_time,
                              nbytes=nbytes, event=event)

    def scatter_halo(self, dest: DistributedField,
                     ex: "ExchangeResult") -> float:
        """Unpack a received halo into ``dest``'s face sites.

        The scatter kernel waits on the exchange's message event: it
        cannot start until the halo has landed in the recv buffer.
        """
        local = self.local_lattice
        spec = dest.spec
        if dest.vm is not self:
            raise HaloMismatchError(
                "scatter_halo", f"field {dest.name!r} belongs to a "
                f"different virtual machine", ex.mu, ex.sign)
        if (len(ex.recv_addrs) != self.nranks
                or ex.nface != local.face_sites(ex.mu, ex.sign).size):
            raise HaloMismatchError(
                "scatter_halo", f"stale exchange result: expected "
                f"{self.nranks} ranks x "
                f"{local.face_sites(ex.mu, ex.sign).size} face sites, "
                f"got {len(ex.recv_addrs)} x {ex.nface} (did the "
                f"machine shrink since the exchange?)",
                ex.mu, ex.sign)
        worst = 0.0
        for r in range(self.nranks):
            ctx = self.contexts[r]
            # the scatter writes dest's faces behind the evaluator's
            # back: pending statements touching dest must launch first
            ctx.flush()
            module, compiled = self.face_kernels[r].get(
                "scatter", spec.words_per_site, spec.precision)
            addrs = ctx.field_cache.make_available([dest.shards[r]])
            params = {
                "p_lo": local.nsites,
                "p_n": ex.nface,
                "p_sites": ctx.upload_table(
                    ("face", local.dims, ex.mu, ex.sign), ex.recv_sites),
                "p_dst": addrs[dest.shards[r].uid],
                # under resilience the recv buffer may have moved (a
                # buddy restore re-homes the dead rank's pool): the
                # buffer table, not the captured address, is current
                "p_src": (self._buffer(r, "recv", ex.mu, ex.sign,
                                       ex.nbytes)
                          if self.resilience is not None
                          else ex.recv_addrs[r]),
            }
            cost = ctx.device.launch(compiled, module.info, params, ex.nface,
                                     block_size=128, precision=spec.precision)
            ctx.field_cache.mark_device_dirty(dest.shards[r])
            worst = max(worst, cost.time_s)
        rt = self.runtime
        if ex.event is not None:
            rt.compute.wait_event(ex.event)
        tag = f"{ex.mu}{'+' if ex.sign > 0 else '-'}:{dest.name}"
        rt.compute.enqueue(f"scatter:{tag}", worst, "scatter",
                           args={"bytes": ex.nbytes, "nface": ex.nface})
        return worst

    def fill_shift_interior(self, dest: DistributedField,
                            src: DistributedField, mu: int,
                            sign: int) -> float:
        """dest = shift(src) on the sites whose source is on-rank."""
        local = self.local_lattice
        inner = _interior_subset(local, mu, sign)
        worst = 0.0
        for r in range(self.nranks):
            cost = evaluate(dest.shards[r],
                            shift_expr(src.shards[r].ref(), sign, mu),
                            subset=inner, context=self.contexts[r])
            worst = max(worst, cost.time_s)
        self.runtime.compute.enqueue(f"fill:{dest.name}", worst, "kernel")
        return worst

    def shift_into(self, dest: DistributedField, src: DistributedField,
                   mu: int, sign: int) -> None:
        """dest = shift(src, sign, mu), non-overlapped (sequential)."""
        ex = self.exchange(src, mu, sign, blocking=True)
        self.fill_shift_interior(dest, src, mu, sign)
        self.scatter_halo(dest, ex)


@dataclass
class ExchangeResult:
    mu: int
    sign: int
    nface: int
    recv_sites: np.ndarray
    recv_addrs: list[int]
    gather_time: float
    comm_time: float
    nbytes: int
    #: comm-lane completion event of the halo message; the scatter
    #: waits on it (``None`` only for hand-built results in tests)
    event: Event | None = field(default=None, repr=False, compare=False)


_interior_cache: dict[tuple, object] = {}


def _interior_subset(local: Lattice, mu: int, sign: int):
    """Subset of sites whose shift source is on-rank (cached)."""
    from ..qdp.lattice import Subset

    key = (local.dims, mu, sign)
    sub = _interior_cache.get(key)
    if sub is None:
        sub = Subset(f"int{mu}{'+' if sign > 0 else '-'}",
                     local.inner_sites([(mu, sign)]))
        _interior_cache[key] = sub
    return sub

"""Interconnect performance models.

The virtual machine charges these models for halo traffic.  Numbers
are calibrated to the paper's test systems:

* the JLab 12k cluster of Fig. 6 — QDR InfiniBand with MVAPICH2 1.9,
  CUDA-aware, GPUs behind PCIe gen2;
* the Cray Gemini torus of Blue Waters / Titan (Figs. 7/8).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point message cost: ``latency + bytes / bandwidth``.

    ``cuda_aware=False`` adds a PCIe staging copy on each end (the
    paper notes data is staged through CPU memory for MPI stacks that
    are not CUDA-aware).
    """

    name: str
    latency_s: float
    bandwidth: float            # bytes/s, per point-to-point message
    cuda_aware: bool = True
    pcie_bandwidth: float = 6e9
    pcie_latency_s: float = 10e-6

    def message_time(self, nbytes: int) -> float:
        t = self.latency_s + nbytes / self.bandwidth
        if not self.cuda_aware:
            # stage through host memory on both ends
            t += 2 * (self.pcie_latency_s + nbytes / self.pcie_bandwidth)
        return t

    def exchange_time(self, messages: list[int]) -> float:
        """Total modeled time for a set of concurrent-ish messages.

        We model one NIC per node: message payloads serialize on the
        wire, latencies pipeline (only the first is fully exposed, the
        rest overlap with preceding transfers' tails).
        """
        if not messages:
            return 0.0
        total_bytes = sum(messages)
        t = self.latency_s + total_bytes / self.bandwidth
        if not self.cuda_aware:
            t += 2 * (self.pcie_latency_s + total_bytes / self.pcie_bandwidth)
        return t


#: QDR InfiniBand + MVAPICH2 1.9 with CUDA-aware MPI (paper
#: Sec. VIII-C, the 2x K20m overlap benchmark).  QDR delivers about
#: 3.2 GB/s of user bandwidth; GPUDirect paths of that era still
#: bounce through host bounce-buffers internally, reflected in the
#: effective bandwidth.
IB_QDR_CUDA_AWARE = NetworkModel(
    name="mvapich2-1.9-qdr-ib",
    latency_s=4e-6,
    bandwidth=3.2e9,
    cuda_aware=True,
)

#: The same fabric without CUDA-aware MPI (for ablations).
IB_QDR_STAGED = NetworkModel(
    name="mvapich2-qdr-ib-staged",
    latency_s=4e-6,
    bandwidth=3.2e9,
    cuda_aware=False,
)

#: Cray Gemini (Blue Waters XE/XK, Titan): ~1.5 us latency and
#: several GB/s per direction; GPU data staged through host.
GEMINI = NetworkModel(
    name="cray-gemini",
    latency_s=1.5e-6,
    bandwidth=4.5e9,
    cuda_aware=False,
)

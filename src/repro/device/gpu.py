"""The simulated CUDA device + runtime.

A :class:`Device` owns the flat device memory pool and executes
JIT-compiled kernels.  Execution is *functionally real* — the compiled
kernel reads and writes the pool through typed views, producing the
same answers a GPU would — while *time* is modeled by
:mod:`repro.device.memmodel` and accumulated on a device clock.  All
benchmark numbers reported by the harness come from this clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..driver.jitcompiler import CompiledKernel
from ..memory.pool import DevicePool
from ..ptx.isa import KernelInfo
from .memmodel import KernelCost, LaunchError, blocks_per_sm, kernel_cost, transfer_time
from .specs import DeviceSpec, K20X_ECC_OFF

_VIEW_DTYPES = ("float32", "float64", "int32", "int64", "uint32", "uint64")


@dataclass
class DeviceStats:
    """Cumulative counters for one device."""

    kernel_launches: int = 0
    #: subset of ``kernel_launches``: fixed-function partial-buffer
    #: folds (:meth:`Device.reduce_f64`), not generated kernels —
    #: fusion can eliminate the latter but never the former
    fold_launches: int = 0
    launch_failures: int = 0
    modeled_kernel_time_s: float = 0.0
    #: modeled global-memory traffic of generated kernels (sum of
    #: ``KernelCost.bytes_moved``); fused kernels move fewer bytes
    modeled_kernel_bytes: int = 0
    wall_kernel_time_s: float = 0.0
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    n_h2d: int = 0
    n_d2h: int = 0
    modeled_transfer_time_s: float = 0.0
    modeled_jit_time_s: float = 0.0
    per_kernel_time_s: dict = field(default_factory=dict)


class Device:
    """A simulated CUDA device.

    Parameters
    ----------
    spec:
        The device specification (defaults to the paper's K20x with
        ECC disabled).
    pool_capacity:
        Bytes of device memory actually backed by host RAM.  Defaults
        to ``min(spec.memory_bytes, 1 GiB)``; the allocator enforces
        this capacity, which is what drives LRU spills in tests.
    """

    def __init__(self, spec: DeviceSpec = K20X_ECC_OFF,
                 pool_capacity: int | None = None):
        self.spec = spec
        if pool_capacity is None:
            pool_capacity = min(spec.memory_bytes, 1 << 30)
        self.pool = DevicePool(pool_capacity)
        self._views = {name: self.pool.view(name) for name in _VIEW_DTYPES}
        self.stats = DeviceStats()
        #: modeled device time, seconds since construction
        self.clock = 0.0

    # -- memory ---------------------------------------------------------

    def mem_alloc(self, nbytes: int) -> int:
        return self.pool.allocate(nbytes)

    def mem_free(self, addr: int) -> None:
        self.pool.free(addr)

    def memcpy_htod(self, addr: int, host: np.ndarray) -> float:
        """Copy host array to device; returns the modeled time."""
        self.pool.write(addr, host)
        t = transfer_time(self.spec, host.nbytes)
        self.stats.bytes_h2d += host.nbytes
        self.stats.n_h2d += 1
        self.stats.modeled_transfer_time_s += t
        self.clock += t
        return t

    def memcpy_dtoh(self, addr: int, nbytes: int, dtype=np.uint8) -> np.ndarray:
        out = self.pool.read(addr, nbytes, dtype=dtype)
        t = transfer_time(self.spec, nbytes)
        self.stats.bytes_d2h += nbytes
        self.stats.n_d2h += 1
        self.stats.modeled_transfer_time_s += t
        self.clock += t
        return out

    # -- kernel launch ----------------------------------------------------

    def validate_launch(self, block_size: int, regs_per_thread: int) -> None:
        """Raise :class:`LaunchError` if the configuration cannot run."""
        blocks_per_sm(self.spec, block_size, regs_per_thread)

    def launch(self, kernel: CompiledKernel, info: KernelInfo,
               params: dict, nsites: int, block_size: int,
               precision: str = "f64",
               regs_per_thread: int | None = None) -> KernelCost:
        """Launch ``kernel`` over ``nsites`` threads of real work.

        Executes the compiled kernel against device memory and charges
        the modeled time to the device clock.  Raises
        :class:`LaunchError` (without executing) when the launch
        configuration exhausts SM resources.
        """
        import time as _time

        if regs_per_thread is None:
            regs_per_thread = kernel.regs_per_thread
        try:
            cost = kernel_cost(
                self.spec, nsites=nsites, block_size=block_size,
                regs_per_thread=regs_per_thread,
                bytes_per_site=info.bytes_per_site,
                flops_per_site=info.flops_per_site,
                precision=precision)
        except LaunchError:
            self.stats.launch_failures += 1
            raise
        grid = math.ceil(nsites / block_size)
        w0 = _time.perf_counter()
        # inactive (guarded-off) lanes compute on whatever their safe
        # clamped loads return — exactly like masked SIMT lanes on a
        # real GPU; their FP exceptions are meaningless
        with np.errstate(all="ignore"):
            kernel(self._views, params, grid, block_size)
        wall = _time.perf_counter() - w0
        self.stats.kernel_launches += 1
        self.stats.modeled_kernel_time_s += cost.time_s
        self.stats.modeled_kernel_bytes += cost.bytes_moved
        self.stats.wall_kernel_time_s += wall
        per = self.stats.per_kernel_time_s
        per[kernel.name] = per.get(kernel.name, 0.0) + cost.time_s
        self.clock += cost.time_s
        return cost

    def reduce_f64(self, addr: int, count: int) -> float:
        """Device-side sum reduction over ``count`` f64 partials.

        The second stage of a two-stage reduction: a generated kernel
        writes per-thread partials, this primitive folds them.  Time
        is modeled as one full-occupancy streaming pass over the
        partial buffer.
        """
        view = self._views["float64"]
        start = addr >> 3
        value = float(view[start:start + count].sum())
        from .memmodel import sustained_bandwidth

        bw = sustained_bandwidth(self.spec, 256, 16, max(count, 1), 8)
        t = count * 8 / bw + self.spec.launch_overhead_s
        self.stats.kernel_launches += 1
        self.stats.fold_launches += 1
        self.stats.modeled_kernel_time_s += t
        self.clock += t
        return value

    def charge_jit(self, modeled_seconds: float) -> None:
        """Account the modeled driver-JIT compilation cost."""
        self.stats.modeled_jit_time_s += modeled_seconds
        self.clock += modeled_seconds

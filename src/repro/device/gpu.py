"""The simulated CUDA device + runtime.

A :class:`Device` owns the flat device memory pool and executes
JIT-compiled kernels.  Execution is *functionally real* — the compiled
kernel reads and writes the pool through typed views, producing the
same answers a GPU would — while *time* is modeled by
:mod:`repro.device.memmodel` and accounted twice:

* the legacy serial ``clock`` accumulates every modeled cost in
  program order (the one-clock model, still what ``REPRO_STREAMS=off``
  reports as the makespan), and
* the :class:`~repro.runtime.stream.StreamRuntime` places each cost as
  a span on its stream's lane of the unified timeline — kernels on the
  compute stream, H2D/D2H copies on dedicated copy streams — so copy
  and compute time genuinely overlap unless an event orders them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..driver.jitcompiler import CompiledKernel
from ..memory.pool import DevicePool
from ..ptx.isa import KernelInfo
from ..runtime.stream import Stream, StreamRuntime
from .memmodel import KernelCost, LaunchError, blocks_per_sm, kernel_cost, transfer_time
from .specs import DeviceSpec, K20X_ECC_OFF

_VIEW_DTYPES = ("float32", "float64", "int32", "int64", "uint32", "uint64")


@dataclass
class DeviceStats:
    """Cumulative counters for one device."""

    kernel_launches: int = 0
    #: subset of ``kernel_launches``: fixed-function partial-buffer
    #: folds (:meth:`Device.reduce_f64`), not generated kernels —
    #: fusion can eliminate the latter but never the former
    fold_launches: int = 0
    launch_failures: int = 0
    modeled_kernel_time_s: float = 0.0
    #: modeled global-memory traffic of generated kernels (sum of
    #: ``KernelCost.bytes_moved``); fused kernels move fewer bytes
    modeled_kernel_bytes: int = 0
    wall_kernel_time_s: float = 0.0
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    n_h2d: int = 0
    n_d2h: int = 0
    modeled_transfer_time_s: float = 0.0
    modeled_jit_time_s: float = 0.0
    per_kernel_time_s: dict = field(default_factory=dict)
    #: measured host wall-clock per kernel name (what the active
    #: execution backend actually cost, vs the modeled GPU time above)
    per_kernel_wall_s: dict = field(default_factory=dict)
    #: optional per-tenant attribution hook (the serving layer's stats
    #: splitter): called as ``attribution(kind, name, modeled_s,
    #: wall_s, nbytes)`` after each accounted operation — kernel
    #: launches (incl. ``per_kernel_wall_s`` updates), folds, copies
    #: and JIT charges.  ``None`` (the default) costs bare-context
    #: users one attribute check and changes no number.
    attribution: object = field(default=None, repr=False, compare=False)


class Device:
    """A simulated CUDA device.

    Parameters
    ----------
    spec:
        The device specification (defaults to the paper's K20x with
        ECC disabled).
    pool_capacity:
        Bytes of device memory actually backed by host RAM.  Defaults
        to ``min(spec.memory_bytes, 1 GiB)``; the allocator enforces
        this capacity, which is what drives LRU spills in tests.
    faults:
        Fault-injection control: ``None`` (default) picks up the
        process-wide plan (installed programmatically or parsed from
        ``REPRO_FAULTS``), ``False`` disables injection outright, or
        pass a :class:`~repro.faults.plan.FaultPlan` to share one plan
        (and its trace/counters) across devices.
    """

    def __init__(self, spec: DeviceSpec = K20X_ECC_OFF,
                 pool_capacity: int | None = None,
                 faults=None):
        self.spec = spec
        if pool_capacity is None:
            pool_capacity = min(spec.memory_bytes, 1 << 30)
        self.pool = DevicePool(pool_capacity)
        self._views = {name: self.pool.view(name) for name in _VIEW_DTYPES}
        self.stats = DeviceStats()
        #: serial reference clock: the sum of every modeled cost, in
        #: program order (what a one-stream device would take)
        self.clock = 0.0
        #: the stream/event runtime; all modeled costs also land as
        #: spans on its lane-based timeline
        self.runtime = StreamRuntime()
        from ..faults.inject import FaultInjector
        from ..faults.plan import active_plan
        if faults is None:
            plan = active_plan()
        elif faults is False:
            plan = None
        else:
            plan = faults
        #: the fault injector; inert (:attr:`FaultInjector.active`
        #: False) unless a plan is configured
        self.faults = FaultInjector(plan, device=self)

    # -- memory ---------------------------------------------------------

    def mem_alloc(self, nbytes: int) -> int:
        if self.faults.active:
            self.faults.pre_alloc(nbytes)
        return self.pool.allocate(nbytes)

    def mem_free(self, addr: int) -> None:
        self.pool.free(addr)

    def memcpy_htod(self, addr: int, host: np.ndarray,
                    stream: Stream | None = None,
                    name: str = "memcpy_htod") -> float:
        """Copy host array to device; returns the modeled time.

        The copy itself happens immediately (data is real); its time
        is modeled on ``stream`` — the dedicated H2D copy stream by
        default, so uploads overlap with compute unless an event
        orders them.  Use ``stream.record_event()`` right after the
        call to obtain the completion event.
        """
        self.pool.write(addr, host)
        t = transfer_time(self.spec, host.nbytes)
        self.stats.bytes_h2d += host.nbytes
        self.stats.n_h2d += 1
        self.stats.modeled_transfer_time_s += t
        self.clock += t
        s = stream if stream is not None else self.runtime.h2d
        s.enqueue(name, t, "h2d", args={"bytes": host.nbytes})
        if self.stats.attribution is not None:
            self.stats.attribution("h2d", name, t, 0.0, host.nbytes)
        if self.faults.active:
            self.faults.guard_h2d(addr, host, name)
        return t

    def memcpy_dtoh(self, addr: int, nbytes: int, dtype=np.uint8,
                    stream: Stream | None = None,
                    name: str = "memcpy_dtoh") -> np.ndarray:
        """Copy device memory back to the host.

        Modeled on the dedicated D2H copy stream by default, ordered
        after all compute enqueued so far (the copy reads what kernels
        wrote — the conservative CUDA event the software cache would
        record).
        """
        out = self.pool.read(addr, nbytes, dtype=dtype)
        t = transfer_time(self.spec, nbytes)
        self.stats.bytes_d2h += nbytes
        self.stats.n_d2h += 1
        self.stats.modeled_transfer_time_s += t
        self.clock += t
        s = stream if stream is not None else self.runtime.d2h
        s.wait_event(self.runtime.compute.record_event())
        s.enqueue(name, t, "d2h", args={"bytes": nbytes})
        if self.stats.attribution is not None:
            self.stats.attribution("d2h", name, t, 0.0, nbytes)
        if self.faults.active:
            self.faults.guard_d2h(addr, out, name)
        return out

    # -- kernel launch ----------------------------------------------------

    def validate_launch(self, block_size: int, regs_per_thread: int) -> None:
        """Raise :class:`LaunchError` if the configuration cannot run."""
        blocks_per_sm(self.spec, block_size, regs_per_thread)

    def launch(self, kernel: CompiledKernel, info: KernelInfo,
               params: dict, nsites: int, block_size: int,
               precision: str = "f64",
               regs_per_thread: int | None = None,
               stream: Stream | None = None) -> KernelCost:
        """Launch ``kernel`` over ``nsites`` threads of real work.

        Executes the compiled kernel against device memory and charges
        the modeled time to the device clock and to ``stream`` (the
        compute stream by default).  Raises :class:`LaunchError`
        (without executing) when the launch configuration exhausts SM
        resources.
        """
        import time as _time

        if regs_per_thread is None:
            regs_per_thread = kernel.regs_per_thread
        if self.faults.active:
            try:
                self.faults.pre_launch(kernel.name, block_size)
            except LaunchError:
                self.stats.launch_failures += 1
                raise
        try:
            cost = kernel_cost(
                self.spec, nsites=nsites, block_size=block_size,
                regs_per_thread=regs_per_thread,
                bytes_per_site=info.bytes_per_site,
                flops_per_site=info.flops_per_site,
                precision=precision)
        except LaunchError:
            self.stats.launch_failures += 1
            raise
        grid = math.ceil(nsites / block_size)
        w0 = _time.perf_counter()
        # inactive (guarded-off) lanes compute on whatever their safe
        # clamped loads return — exactly like masked SIMT lanes on a
        # real GPU; their FP exceptions are meaningless
        with np.errstate(all="ignore"):
            kernel(self._views, params, grid, block_size)
        wall = _time.perf_counter() - w0
        self.stats.kernel_launches += 1
        self.stats.modeled_kernel_time_s += cost.time_s
        self.stats.modeled_kernel_bytes += cost.bytes_moved
        self.stats.wall_kernel_time_s += wall
        per = self.stats.per_kernel_time_s
        per[kernel.name] = per.get(kernel.name, 0.0) + cost.time_s
        pw = self.stats.per_kernel_wall_s
        pw[kernel.name] = pw.get(kernel.name, 0.0) + wall
        self.clock += cost.time_s
        s = stream if stream is not None else self.runtime.compute
        s.enqueue(kernel.name, cost.time_s, "kernel",
                  args={"bytes": cost.bytes_moved, "nsites": nsites,
                        "block": block_size})
        if self.stats.attribution is not None:
            self.stats.attribution("kernel", kernel.name, cost.time_s,
                                   wall, cost.bytes_moved)
        if self.faults.active:
            self.faults.note_launch_success(kernel.name, block_size)
        return cost

    def reduce_f64(self, addr: int, count: int,
                   stream: Stream | None = None) -> float:
        """Device-side sum reduction over ``count`` f64 partials.

        The second stage of a two-stage reduction: a generated kernel
        writes per-thread partials, this primitive folds them.  Time
        is modeled as one full-occupancy streaming pass over the
        partial buffer, on the compute stream (it consumes what the
        partials kernel just wrote there).
        """
        view = self._views["float64"]
        start = addr >> 3
        value = float(view[start:start + count].sum())
        from .memmodel import sustained_bandwidth

        bw = sustained_bandwidth(self.spec, 256, 16, max(count, 1), 8)
        t = count * 8 / bw + self.spec.launch_overhead_s
        self.stats.kernel_launches += 1
        self.stats.fold_launches += 1
        self.stats.modeled_kernel_time_s += t
        self.clock += t
        s = stream if stream is not None else self.runtime.compute
        s.enqueue("reduce_f64", t, "fold", args={"count": count})
        if self.stats.attribution is not None:
            self.stats.attribution("fold", "reduce_f64", t, 0.0,
                                   count * 8)
        return value

    def charge_jit(self, modeled_seconds: float) -> None:
        """Account the modeled driver-JIT compilation cost.

        Driver JIT (``cuModuleLoadData``) is synchronous: it occupies
        the compute lane — nothing launches while the module loads.
        """
        self.stats.modeled_jit_time_s += modeled_seconds
        self.clock += modeled_seconds
        self.runtime.compute.enqueue("driver_jit", modeled_seconds, "jit")
        if self.stats.attribution is not None:
            self.stats.attribution("jit", "driver_jit", modeled_seconds,
                                   0.0, 0)

    def charge_interface_transfer(self, modeled_seconds: float,
                                  name: str = "interface_xfer") -> None:
        """Account modeled layout-change/PCIe time charged outside the
        pool-copy paths (e.g. the non-device QUDA interface)."""
        self.stats.modeled_transfer_time_s += modeled_seconds
        self.clock += modeled_seconds
        self.runtime.h2d.enqueue(name, modeled_seconds, "h2d")

"""The sustained-bandwidth / kernel-time model.

LQCD streaming kernels are memory-bandwidth bound (paper Sec. VIII-B),
so kernel time is governed by how much of the device's bandwidth the
launch can sustain.  We use a Little's-law queueing model:

    concurrency_bytes = resident_threads * mlp * word_bytes
    sustained_bw      = B_eff * c / (c + B_eff * L)

where ``B_eff = max_bandwidth_fraction * peak_bandwidth`` (the 79%
streaming ceiling the paper measures), ``L`` the effective memory
latency and ``mlp`` the outstanding requests per thread.  The
hyperbolic form reproduces the shape of Figs. 4/5: bandwidth rising
with volume, a shoulder where the resident threads start covering the
latency ("thread saturation" of the SMs), and a plateau at 79% of
peak.  Because a double-precision word is twice as large, DP reaches
saturation at roughly half the volume — the paper's observed shoulder
shift from L≈16 (SP) to L≈12 (DP).

Calibration: ``L = 0.59 µs`` and ``mlp = 4`` put the SP knee (90% of
plateau) at V = 16⁴ sites for the K20x, matching Fig. 4.

Occupancy: resident threads per SM are limited by the register file,
the max-resident-thread and max-resident-block limits; this is what
makes thread-block sizes below 128 lose bandwidth and is the signal
the auto-tuner optimizes (paper Sec. VII).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .specs import DeviceSpec


class LaunchError(Exception):
    """A kernel launch failed (resource exhaustion / bad configuration).

    The auto-tuner catches this and retries with a halved block size,
    exactly as described in paper Sec. VII.
    """


def blocks_per_sm(spec: DeviceSpec, block_size: int, regs_per_thread: int) -> int:
    """Resident blocks per SM for the given launch configuration."""
    if block_size < 1 or block_size > spec.max_threads_per_block:
        raise LaunchError(
            f"invalid block size {block_size} "
            f"(max {spec.max_threads_per_block})")
    regs_per_block = regs_per_thread * block_size
    if regs_per_block > spec.regs_per_sm:
        raise LaunchError(
            f"too many resources requested for launch: "
            f"{regs_per_block} registers per block > {spec.regs_per_sm}")
    by_regs = spec.regs_per_sm // max(regs_per_block, 1)
    by_threads = spec.max_threads_per_sm // block_size
    return max(1, min(spec.max_blocks_per_sm, by_regs, by_threads))


def resident_threads(spec: DeviceSpec, block_size: int,
                     regs_per_thread: int, nthreads: int) -> int:
    """Threads (equivalents) driving memory-level parallelism.

    Registers are checked for launch viability, but deliberately do
    NOT reduce the bandwidth-driving concurrency: register-heavy
    streaming kernels have correspondingly more independent loads in
    flight per thread (ILP), which compensates the occupancy loss —
    this is why the paper's five very differently sized kernels
    produce coinciding bandwidth curves (Sec. VIII-B).  Small thread
    blocks do reduce concurrency (the resident-block limit), which is
    the effect the auto-tuner optimizes.
    """
    blocks_per_sm(spec, block_size, regs_per_thread)  # launch check
    per_sm = min(spec.max_blocks_per_sm * block_size,
                 spec.max_threads_per_sm)
    return min(nthreads, per_sm * spec.sm_count)


def sustained_bandwidth(spec: DeviceSpec, block_size: int,
                        regs_per_thread: int, nthreads: int,
                        word_bytes: int) -> float:
    """Sustained global-memory bandwidth in bytes/second.

    Exponential-saturation form of Little's law:
    ``B_eff * (1 - exp(-c / (B_eff * L)))`` with concurrency
    ``c = resident_threads * mlp * word``.  With the Kepler
    calibration (L = 0.59 us, mlp = 4) this puts the SP knee near
    V = 16^4 and the DP knee near V = 12^4 and saturates at the 79%
    streaming ceiling — the shape of the paper's Figs. 4/5.
    """
    b_eff = spec.max_bandwidth_fraction * spec.peak_bandwidth
    res = resident_threads(spec, block_size, regs_per_thread, nthreads)
    concurrency = res * spec.mlp_requests * word_bytes
    return b_eff * -math.expm1(-concurrency / (b_eff * spec.mem_latency_s))


@dataclass(frozen=True)
class KernelCost:
    """Modeled execution cost of one kernel launch."""

    time_s: float
    bandwidth_bytes_s: float
    mem_time_s: float
    flop_time_s: float
    bytes_moved: int
    flops: int

    @property
    def sustained_gbs(self) -> float:
        """Sustained bandwidth as the paper reports it: total bytes
        moved divided by total kernel time (includes launch overhead)."""
        return self.bytes_moved / self.time_s / 1e9 if self.time_s else 0.0

    @property
    def gflops(self) -> float:
        return self.flops / self.time_s / 1e9 if self.time_s else 0.0


def kernel_cost(spec: DeviceSpec, *, nsites: int, block_size: int,
                regs_per_thread: int, bytes_per_site: int,
                flops_per_site: int, precision: str) -> KernelCost:
    """Modeled cost of launching a streaming kernel over ``nsites``.

    Raises :class:`LaunchError` if the configuration cannot launch.
    """
    word = 4 if precision == "f32" else 8
    if nsites <= 0:
        return KernelCost(time_s=0.0, bandwidth_bytes_s=0.0, mem_time_s=0.0,
                          flop_time_s=0.0, bytes_moved=0, flops=0)
    nthreads = math.ceil(nsites / block_size) * block_size
    bw = sustained_bandwidth(spec, block_size, regs_per_thread, nthreads, word)
    bytes_moved = bytes_per_site * nsites
    flops = flops_per_site * nsites
    mem_time = bytes_moved / bw
    peak_flops = spec.peak_flops_sp if precision == "f32" else spec.peak_flops_dp
    flop_time = flops / peak_flops
    # memory-bound streaming kernel: compute overlaps with memory; the
    # longer of the two plus the launch overhead governs.
    time_s = max(mem_time, flop_time) + spec.launch_overhead_s
    return KernelCost(time_s=time_s, bandwidth_bytes_s=bw,
                      mem_time_s=mem_time, flop_time_s=flop_time,
                      bytes_moved=bytes_moved, flops=flops)


def transfer_time(spec: DeviceSpec, nbytes: int) -> float:
    """Modeled host<->device (PCIe) transfer time."""
    return spec.pcie_latency_s + nbytes / spec.pcie_bandwidth

"""Simulated CUDA devices: specs, runtime, bandwidth model, autotuner."""

from .autotune import MIN_BLOCK, SLOWDOWN_THRESHOLD, Autotuner, Phase, TunerState
from .gpu import Device, DeviceStats
from .memmodel import (
    KernelCost,
    LaunchError,
    blocks_per_sm,
    kernel_cost,
    resident_threads,
    sustained_bandwidth,
    transfer_time,
)
from .specs import K20M_ECC_ON, K20X_ECC_OFF, K20X_ECC_ON, SPECS, DeviceSpec

__all__ = [
    "Autotuner",
    "Device",
    "DeviceSpec",
    "DeviceStats",
    "K20M_ECC_ON",
    "K20X_ECC_OFF",
    "K20X_ECC_ON",
    "KernelCost",
    "LaunchError",
    "MIN_BLOCK",
    "Phase",
    "SLOWDOWN_THRESHOLD",
    "SPECS",
    "TunerState",
    "blocks_per_sm",
    "kernel_cost",
    "resident_threads",
    "sustained_bandwidth",
    "transfer_time",
]

"""Per-kernel thread-block-size auto-tuning (paper Sec. VII).

Strategy, verbatim from the paper: first try to launch with the
maximum block size the device allows (2^10 on Kepler, 1-D blocks); on
launch failure retry with the size halved until the launch succeeds.
Once launched, *consecutive payload launches* probe smaller block
sizes until the execution time increases significantly (the paper
arbitrarily uses 33%); the best configuration seen is then used for
all subsequent launches.  No kernels are launched solely for tuning —
tuning rides on the payload launches.

One improvement over the paper's discover-by-failure start: the JIT
knows each kernel's register pressure statically (CFG-fixpoint
liveness), so :func:`static_block_seed` skips the block sizes the SM
register file provably rejects and the probe starts at the first
launchable size — a register-hungry kernel begins at e.g. 256 instead
of burning failed launches at 1024 and 512.  Launch failure handling
is kept as the safety net for anything the static bound misses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..driver.jitcompiler import CompiledKernel
from ..ptx.isa import KernelInfo
from .gpu import Device
from .memmodel import KernelCost, LaunchError

#: Probe-termination threshold: stop when a probe is this much slower
#: than the best time seen (paper: "arbitrarily we use 33%").
SLOWDOWN_THRESHOLD = 1.33

#: Smallest block size probed (one warp).
MIN_BLOCK = 32


def static_block_seed(spec, regs_per_thread: int | None) -> int:
    """Largest halving-series block size the register file provably
    admits: the static occupancy bound.

    The paper's tuner starts at the device maximum and discovers the
    register limit by failed launches.  Register pressure is known
    statically (:func:`repro.ptx.liveness.max_live_registers` via the
    JIT), so the failing prefix of the halving series can be skipped
    outright: seed at the largest ``max_threads_per_block / 2^k``
    whose ``regs_per_thread * block`` fits the SM register file
    (mirroring the check in :func:`repro.device.memmodel.blocks_per_sm`).
    """
    bs = spec.max_threads_per_block
    if regs_per_thread is None:
        return bs
    while bs > MIN_BLOCK and regs_per_thread * bs > spec.regs_per_sm:
        bs //= 2
    return bs


class Phase(enum.Enum):
    PROBING = "probing"
    TUNED = "tuned"


@dataclass
class TunerState:
    """Tuning state for a single kernel (keyed by kernel name)."""

    next_block: int
    phase: Phase = Phase.PROBING
    best_block: int | None = None
    best_time: float = float("inf")
    launches: int = 0
    failures: int = 0
    history: list[tuple[int, float]] = field(default_factory=list)

    @property
    def block_size(self) -> int:
        if self.phase is Phase.TUNED:
            return self.best_block
        return self.next_block


class Autotuner:
    """Auto-tunes block sizes per kernel on a device."""

    def __init__(self, device: Device):
        self.device = device
        self.states: dict[str, TunerState] = {}

    def state(self, kernel_name: str,
              regs_per_thread: int | None = None) -> TunerState:
        st = self.states.get(kernel_name)
        if st is None:
            st = TunerState(next_block=static_block_seed(
                self.device.spec, regs_per_thread))
            self.states[kernel_name] = st
        return st

    def launch(self, kernel: CompiledKernel, info: KernelInfo,
               params: dict, nsites: int,
               precision: str = "f64") -> KernelCost:
        """Launch a payload kernel, tuning its block size on the way.

        Never launches extra kernels: every execution is the real
        payload.  Raises :class:`LaunchError` only if no block size
        down to one warp can launch.
        """
        st = self.state(kernel.name,
                        getattr(kernel, "regs_per_thread", None))
        while True:
            bs = st.block_size
            try:
                cost = self.device.launch(kernel, info, params, nsites,
                                          block_size=bs, precision=precision)
            except LaunchError:
                st.failures += 1
                if bs <= MIN_BLOCK:
                    raise
                # halve and retry (still the same payload launch)
                st.next_block = bs // 2
                if st.best_block is not None and st.best_block >= bs:
                    st.best_block = st.next_block
                continue
            st.launches += 1
            st.history.append((bs, cost.time_s))
            if st.phase is Phase.TUNED:
                return cost
            # probing phase bookkeeping
            if cost.time_s < st.best_time:
                st.best_time = cost.time_s
                st.best_block = bs
            if cost.time_s > st.best_time * SLOWDOWN_THRESHOLD or bs <= MIN_BLOCK:
                st.phase = Phase.TUNED
            else:
                st.next_block = max(MIN_BLOCK, bs // 2)
                if st.next_block == bs:
                    st.phase = Phase.TUNED
            return cost

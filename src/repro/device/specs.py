"""Device specifications for the simulated GPUs.

Numbers follow the hardware used in the paper's evaluation
(Sec. VIII-A): NVIDIA Tesla K20x and K20m, both GK110 "Kepler"
devices (compute capability 3.5).  The calibration constants of the
sustained-bandwidth model (``mem_latency_s``, ``mlp_requests``) are
documented in :mod:`repro.device.memmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a (simulated) CUDA device."""

    name: str
    #: streaming multiprocessors
    sm_count: int
    #: maximum threads per block (1-D blocks; paper uses 2^10 on Kepler)
    max_threads_per_block: int
    #: 32-bit registers per SM
    regs_per_sm: int
    #: maximum resident threads per SM
    max_threads_per_sm: int
    #: maximum resident blocks per SM
    max_blocks_per_sm: int
    #: theoretical peak memory bandwidth, bytes/second
    peak_bandwidth: float
    #: fraction of peak bandwidth attainable by streaming kernels
    #: (the paper measures 79% on Kepler, Sec. VIII-B)
    max_bandwidth_fraction: float
    #: peak single / double precision throughput, flop/s
    peak_flops_sp: float
    peak_flops_dp: float
    #: device memory size in bytes (accounting capacity)
    memory_bytes: int
    #: kernel launch overhead, seconds
    launch_overhead_s: float
    #: effective memory latency for the Little's-law bandwidth model
    mem_latency_s: float
    #: outstanding memory requests per thread (memory-level parallelism)
    mlp_requests: float
    #: host<->device transfer bandwidth (PCIe gen2 x16), bytes/s
    pcie_bandwidth: float
    #: host<->device transfer latency, seconds
    pcie_latency_s: float

    def with_pool_capacity(self, capacity: int) -> "DeviceSpec":
        """A copy whose accounting capacity is ``capacity`` bytes.

        Used by tests that want small device memories to exercise the
        LRU spill path without allocating gigabytes of host RAM.
        """
        return replace(self, memory_bytes=int(capacity))


#: Tesla K20x with ECC disabled — the single-GPU benchmark device of
#: Figs. 4/5 (peak 250 GB/s, 1.31 TF DP / 3.95 TF SP).
K20X_ECC_OFF = DeviceSpec(
    name="K20x_eccoff",
    sm_count=14,
    max_threads_per_block=1024,
    regs_per_sm=65536,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    peak_bandwidth=250e9,
    max_bandwidth_fraction=0.79,
    peak_flops_sp=3.95e12,
    peak_flops_dp=1.31e12,
    memory_bytes=6 * 1024**3,
    launch_overhead_s=5e-6,
    mem_latency_s=0.59e-6,
    mlp_requests=4.0,
    pcie_bandwidth=6e9,
    pcie_latency_s=10e-6,
)

#: Tesla K20m with ECC enabled — the 2-GPU overlap benchmark device of
#: Fig. 6.  ECC costs ~20% of bandwidth on GDDR5 Kepler boards.
K20M_ECC_ON = DeviceSpec(
    name="K20m_eccon",
    sm_count=13,
    max_threads_per_block=1024,
    regs_per_sm=65536,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    peak_bandwidth=208e9 * 0.80,
    max_bandwidth_fraction=0.79,
    peak_flops_sp=3.52e12,
    peak_flops_dp=1.17e12,
    memory_bytes=5 * 1024**3,
    launch_overhead_s=5e-6,
    mem_latency_s=0.59e-6,
    mlp_requests=4.0,
    pcie_bandwidth=6e9,
    pcie_latency_s=10e-6,
)

#: The XK-node GPU of Blue Waters / Titan (K20x, ECC enabled).
K20X_ECC_ON = DeviceSpec(
    name="K20x_eccon",
    sm_count=14,
    max_threads_per_block=1024,
    regs_per_sm=65536,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    peak_bandwidth=250e9 * 0.80,
    max_bandwidth_fraction=0.79,
    peak_flops_sp=3.95e12,
    peak_flops_dp=1.31e12,
    memory_bytes=6 * 1024**3,
    launch_overhead_s=5e-6,
    mem_latency_s=0.59e-6,
    mlp_requests=4.0,
    pcie_bandwidth=6e9,
    pcie_latency_s=10e-6,
)

SPECS = {s.name: s for s in (K20X_ECC_OFF, K20M_ECC_ON, K20X_ECC_ON)}

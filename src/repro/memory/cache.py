"""Automated GPU memory management: the software cache (paper Sec. IV).

Prior to a kernel launch the evaluator walks the expression AST,
extracts the data fields referenced at the leaves and asks this cache
to *make them available* in device memory.  Fields are paged out
(copied back to host memory) either when host code accesses them or
when a caching event cannot be serviced because device memory is full
— in which case a **least-recently-used** spill policy, based on the
timestamp of the last reference from a compute kernel, picks victims.

The cache fully automates CUDA memory management: user code never
issues a transfer.  Coherence is tracked per field with two validity
bits (host/device); the cache is the only component that mutates them.

Transfers are issued *asynchronously* on the device's dedicated copy
streams (:mod:`repro.runtime.stream`): page-ins go to the H2D stream
and record a per-entry ready event that the compute stream waits on
before any kernel may read the upload; LRU writebacks go to the D2H
stream (ordered after all compute enqueued so far) and record a reuse
event that gates the *next* upload — freed device memory may be
reallocated, so the writeback must drain before new bytes land on it.
Data still moves eagerly in program order, so results are bitwise
identical to the serial model; only modeled *time* overlaps.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Protocol

import numpy as np

from .pool import DeviceOutOfMemory

if TYPE_CHECKING:  # the device drags in the driver: hint-only import
    from ..device.gpu import Device
    from ..runtime.stream import Event


class CacheableField(Protocol):
    """What the cache needs from a field object."""

    uid: int
    host: np.ndarray           # flat host-side data (SoA layout)
    host_valid: bool
    device_valid: bool

    @property
    def nbytes(self) -> int: ...


@dataclass
class CacheEntry:
    addr: int
    nbytes: int
    last_use: int
    ref: weakref.ref
    #: H2D completion event of the pending upload; the compute stream
    #: waits on it before a kernel may read this entry
    ready: "Event | None" = None


@dataclass
class CacheStats:
    #: residency hits/misses per requested field in
    #: :meth:`FieldCache.make_available` (a hit whose device copy is
    #: stale still pays a refresh page-in)
    hits: int = 0
    misses: int = 0
    page_ins: int = 0
    page_outs: int = 0
    spills: int = 0
    bytes_paged_in: int = 0
    bytes_paged_out: int = 0
    evictions_clean: int = 0
    #: high-water mark of bytes resident in the device pool
    resident_bytes_hwm: int = 0


class SpillImpossible(DeviceOutOfMemory):
    """Device memory exhausted and nothing can be spilled."""


class NoValidCopyError(RuntimeError):
    """A field holds no valid copy on either side of the cache.

    Raised when a kernel needs a field that was never initialized (or
    whose only copy was explicitly invalidated) — the coherence bits
    say neither the host nor the device array is current.  Carries the
    field's identity so diagnostics can name the culprit, and renders
    as a structured :class:`~repro.diagnostics.Diagnostic`.
    """

    def __init__(self, uid: int, nbytes: int, where: str):
        self.uid = uid
        self.nbytes = nbytes
        self.where = where
        super().__init__(
            f"field {uid} ({nbytes} bytes) has no valid copy anywhere "
            f"(host and device both stale) in {where}")

    @property
    def diagnostic(self):
        from ..diagnostics import Diagnostic, Severity

        return Diagnostic(
            severity=Severity.ERROR, pass_name="field-cache",
            message=f"no valid copy anywhere ({self.nbytes} bytes, "
                    f"host and device both stale)",
            obj=f"field {self.uid}", location=self.where)


class FieldCache:
    """The software cache managing a device's field residency."""

    def __init__(self, device: "Device"):
        self.device = device
        self.entries: dict[int, CacheEntry] = {}
        self.stats = CacheStats()
        self._clock = 0
        #: D2H event of the most recent LRU writeback; the next upload
        #: waits on it before reusing the freed device memory
        self._reuse_event: "Event | None" = None
        #: called before any host<->device coherence transition that
        #: host code observes — the context wires this to its fusion
        #: queue so pending deferred statements launch first (the
        #: ``to_numpy``/``from_numpy`` flush barriers).  The queue
        #: guards against reentry; launches themselves never call
        #: ensure_host/invalidate_device.
        self.flush_hook = None
        #: optional per-tenant attribution hook for the
        #: :class:`CacheStats` counters: called as ``attribution(event,
        #: uid, nbytes)`` with event one of hit/miss/page_in/page_out/
        #: spill.  ``None`` (the default) costs bare-context users one
        #: attribute check per counted event and changes no number.
        self.attribution = None

    def _attr(self, event: str, uid: int, nbytes: int) -> None:
        if self.attribution is not None:
            self.attribution(event, uid, nbytes)

    # -- internals -----------------------------------------------------

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _field_of(self, entry: CacheEntry):
        return entry.ref()

    def _release_entry(self, uid: int) -> None:
        entry = self.entries.pop(uid, None)
        if entry is not None:
            self.device.mem_free(entry.addr)

    def _on_field_deleted(self, uid: int) -> None:
        # weakref callback: the field was garbage collected
        self._release_entry(uid)

    def _spill_one(self, pinned: set[int]) -> bool:
        """Page out the least-recently-used unpinned field.

        Returns True if something was freed.  A field whose only valid
        copy lives on the device is copied back to host first (the
        "page-out" of the paper); a field with a valid host copy is
        dropped without a transfer.
        """
        victims = sorted(
            ((e.last_use, uid) for uid, e in self.entries.items()
             if uid not in pinned),
        )
        if not victims:
            return False
        _, uid = victims[0]
        entry = self.entries[uid]
        f = self._field_of(entry)
        if f is not None and f.device_valid and not f.host_valid:
            data = self.device.memcpy_dtoh(entry.addr, entry.nbytes,
                                           dtype=f.host.dtype,
                                           name=f"pageout:f{uid}")
            f.host[...] = data[:f.host.size]
            f.host_valid = True
            self.stats.page_outs += 1
            self.stats.bytes_paged_out += entry.nbytes
            self._attr("page_out", uid, entry.nbytes)
            # the freed memory may be handed right back out: gate the
            # next upload on this writeback draining
            self._reuse_event = self.device.runtime.d2h.record_event()
        else:
            self.stats.evictions_clean += 1
        if f is not None:
            f.device_valid = False
        self.stats.spills += 1
        self._attr("spill", uid, entry.nbytes)
        self._release_entry(uid)
        return True

    def _allocate_with_spill(self, nbytes: int, pinned: set[int]) -> int:
        fault_event = None
        while True:
            try:
                addr = self.device.mem_alloc(nbytes)
            except DeviceOutOfMemory as e:
                injected = getattr(e, "injected", False)
                if injected:
                    fault_event = getattr(e, "fault_event", fault_event)
                if not self._spill_one(pinned):
                    if injected:
                        # nothing to spill, but the OOM was injected:
                        # a plain retry models the transient pressure
                        # (e.g. another process's allocation) clearing
                        try:
                            addr = self.device.pool.allocate(nbytes)
                        except DeviceOutOfMemory:
                            raise SpillImpossible(
                                f"cannot make {nbytes} bytes available: "
                                f"device memory genuinely exhausted and "
                                f"nothing spillable") from None
                        self._record_oom_recovery(
                            fault_event, "allocation retried (transient "
                            "pressure, nothing spillable)")
                        return addr
                    raise SpillImpossible(
                        f"cannot make {nbytes} bytes available: all "
                        f"{len(self.entries)} cached fields are pinned "
                        f"by the current kernel") from None
                continue
            if fault_event is not None:
                self._record_oom_recovery(
                    fault_event, "spilled LRU field and retried")
            return addr

    def _record_oom_recovery(self, event, action: str) -> None:
        faults = getattr(self.device, "faults", None)
        if faults is not None and faults.active:
            faults.plan.record_recovery(event, action, retries=1)

    # -- public API ------------------------------------------------------

    def make_available(self, fields: Iterable[CacheableField],
                       write_only: Iterable[int] = ()) -> dict[int, int]:
        """Ensure every field is resident on the device.

        ``write_only`` lists uids whose contents will be fully
        overwritten by the kernel: they get device storage but no
        host-to-device copy.  Returns ``{uid: device_address}``.

        All requested fields are pinned for the duration of the call so
        the spill policy never evicts a member of the working set.
        """
        fields = list(fields)
        write_only = set(write_only)
        pinned = {f.uid for f in fields}
        addrs: dict[int, int] = {}
        now = self._tick()
        for f in fields:
            entry = self.entries.get(f.uid)
            if entry is None:
                self.stats.misses += 1
                self._attr("miss", f.uid, f.nbytes)
                addr = self._allocate_with_spill(f.nbytes, pinned)
                entry = CacheEntry(
                    addr=addr, nbytes=f.nbytes, last_use=now,
                    ref=weakref.ref(
                        f, lambda _, uid=f.uid: self._on_field_deleted(uid)))
                self.entries[f.uid] = entry
                if f.uid not in write_only:
                    if not f.host_valid:
                        raise NoValidCopyError(f.uid, f.nbytes,
                                               "make_available")
                    self._page_in(entry, f)
            else:
                self.stats.hits += 1
                self._attr("hit", f.uid, f.nbytes)
                entry.last_use = now
                if f.uid not in write_only and not f.device_valid:
                    # device copy stale (host was modified): refresh
                    self._page_in(entry, f)
            addrs[f.uid] = entry.addr
        # every upload must land before the kernel reads it: the
        # compute stream waits each pending H2D ready event once
        compute = self.device.runtime.compute
        for f in fields:
            entry = self.entries[f.uid]
            if entry.ready is not None:
                compute.wait_event(entry.ready)
                entry.ready = None
        self.stats.resident_bytes_hwm = max(
            self.stats.resident_bytes_hwm, self.resident_bytes())
        return addrs

    def _page_in(self, entry: CacheEntry, f: CacheableField) -> None:
        """Async upload of ``f`` to its device slot on the H2D stream."""
        h2d = self.device.runtime.h2d
        if self._reuse_event is not None:
            # writeback-before-reuse: the memory this upload targets
            # may have just been vacated by a pending D2H writeback
            h2d.wait_event(self._reuse_event)
            self._reuse_event = None
        self.device.memcpy_htod(entry.addr, f.host,
                                name=f"pagein:f{f.uid}")
        entry.ready = h2d.record_event()
        f.device_valid = True
        self.stats.page_ins += 1
        self.stats.bytes_paged_in += f.nbytes
        self._attr("page_in", f.uid, f.nbytes)

    def mark_device_dirty(self, f: CacheableField) -> None:
        """Record that a kernel wrote ``f``: host copy is now stale."""
        f.device_valid = True
        f.host_valid = False

    def ensure_host(self, f: CacheableField) -> None:
        """Page a field out to the host before CPU code reads it.

        The device copy stays resident and valid (read sharing); a
        subsequent CPU *write* must call :meth:`invalidate_device`.
        """
        if self.flush_hook is not None:
            self.flush_hook()
        if f.host_valid:
            return
        entry = self.entries.get(f.uid)
        if entry is None or not f.device_valid:
            raise NoValidCopyError(f.uid, f.nbytes, "ensure_host")
        data = self.device.memcpy_dtoh(entry.addr, entry.nbytes,
                                       dtype=f.host.dtype,
                                       name=f"pageout:f{f.uid}")
        f.host[...] = data[:f.host.size]
        f.host_valid = True
        self.stats.page_outs += 1
        self.stats.bytes_paged_out += entry.nbytes
        self._attr("page_out", f.uid, entry.nbytes)

    def invalidate_device(self, f: CacheableField) -> None:
        """CPU code wrote the host copy: the device copy is stale.

        Drains the deferred-statement queue first: a pending statement
        reading ``f`` must consume the value ``f`` held *before* this
        host write (program order), and a pending write of ``f`` must
        land before being superseded.
        """
        if self.flush_hook is not None:
            self.flush_hook()
        f.device_valid = False
        f.host_valid = True

    def release(self, f: CacheableField) -> None:
        """Drop a field's device residency (no page-out)."""
        f.device_valid = False
        self._release_entry(f.uid)

    def resident_bytes(self) -> int:
        return sum(e.nbytes for e in self.entries.values())

    def is_resident(self, f: CacheableField) -> bool:
        return f.uid in self.entries

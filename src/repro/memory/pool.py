"""Device memory pool: a flat virtual address space with an allocator.

The simulated GPU's global memory is one contiguous byte range.
Kernel parameters carry real byte addresses into this range, so the
pointer arithmetic performed by generated PTX (base + layout offset)
is genuine, and the driver JIT implements ``ld.global``/``st.global``
as single vectorized gathers/scatters on typed views of the backing
buffer.

The allocator is a first-fit free list with 256-byte alignment
(matching ``cudaMalloc`` alignment).  :class:`DeviceOutOfMemory` is
the signal that drives the LRU spill policy in
:mod:`repro.memory.cache` (paper Sec. IV).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

#: Allocation alignment in bytes (cudaMalloc guarantees >= 256).
ALIGNMENT = 256

#: The first usable device address; address 0 is the null pointer.
BASE_ADDRESS = ALIGNMENT


class DeviceOutOfMemory(Exception):
    """Raised when an allocation cannot be satisfied."""


class InvalidFree(Exception):
    """Raised when freeing an address that is not allocated."""


@dataclass
class PoolStats:
    """Cumulative allocator statistics."""

    n_allocs: int = 0
    n_frees: int = 0
    bytes_in_use: int = 0
    peak_bytes_in_use: int = 0
    n_failed_allocs: int = 0


def _align_up(n: int, a: int = ALIGNMENT) -> int:
    return (n + a - 1) // a * a


class DevicePool:
    """Flat device memory with a first-fit free-list allocator.

    Parameters
    ----------
    capacity:
        Usable bytes of device memory.  The backing NumPy buffer is
        zero-initialized (lazily committed by the OS, so large
        capacities are cheap until touched).
    """

    def __init__(self, capacity: int = 1 << 30):
        if capacity <= 2 * ALIGNMENT:
            raise ValueError("pool capacity too small")
        # round down so every typed view divides the backing buffer
        self.capacity = int(capacity) // ALIGNMENT * ALIGNMENT
        self._mem = np.zeros(self.capacity, dtype=np.uint8)
        self._views: dict[str, np.ndarray] = {}
        # free list: sorted list of (addr, size) extents
        self._free: list[tuple[int, int]] = [
            (BASE_ADDRESS, self.capacity - BASE_ADDRESS)
        ]
        self._allocs: dict[int, int] = {}  # addr -> size
        self.stats = PoolStats()

    # -- typed access -------------------------------------------------

    def view(self, dtype) -> np.ndarray:
        """A flat view of device memory with element type ``dtype``."""
        key = np.dtype(dtype).str
        v = self._views.get(key)
        if v is None:
            v = self._mem.view(dtype)
            self._views[key] = v
        return v

    # -- allocation -----------------------------------------------------

    def allocate(self, nbytes: int) -> int:
        """Allocate ``nbytes``; returns the device address.

        Raises :class:`DeviceOutOfMemory` when no free extent fits.
        """
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        size = _align_up(int(nbytes))
        for i, (addr, extent) in enumerate(self._free):
            if extent >= size:
                if extent == size:
                    self._free.pop(i)
                else:
                    self._free[i] = (addr + size, extent - size)
                self._allocs[addr] = size
                self.stats.n_allocs += 1
                self.stats.bytes_in_use += size
                self.stats.peak_bytes_in_use = max(
                    self.stats.peak_bytes_in_use, self.stats.bytes_in_use)
                return addr
        self.stats.n_failed_allocs += 1
        raise DeviceOutOfMemory(
            f"cannot allocate {size} bytes "
            f"({self.stats.bytes_in_use}/{self.capacity} in use)")

    def free(self, addr: int) -> None:
        """Return an allocation to the free list, coalescing neighbors."""
        size = self._allocs.pop(addr, None)
        if size is None:
            raise InvalidFree(f"address {addr:#x} is not allocated")
        self.stats.n_frees += 1
        self.stats.bytes_in_use -= size
        i = bisect.bisect_left(self._free, (addr, 0))
        self._free.insert(i, (addr, size))
        # coalesce with successor, then predecessor
        if i + 1 < len(self._free):
            a, s = self._free[i]
            na, ns = self._free[i + 1]
            if a + s == na:
                self._free[i] = (a, s + ns)
                self._free.pop(i + 1)
        if i > 0:
            pa, ps = self._free[i - 1]
            a, s = self._free[i]
            if pa + ps == a:
                self._free[i - 1] = (pa, ps + s)
                self._free.pop(i)

    def is_allocated(self, addr: int) -> bool:
        return addr in self._allocs

    def allocation_size(self, addr: int) -> int:
        return self._allocs[addr]

    @property
    def bytes_free(self) -> int:
        return sum(s for _, s in self._free)

    @property
    def largest_free_extent(self) -> int:
        return max((s for _, s in self._free), default=0)

    # -- host<->device transfer primitives ------------------------------
    # (The runtime layers accounting/timing on top of these.)

    def write(self, addr: int, data: np.ndarray) -> None:
        """Copy host array bytes to device memory at ``addr``."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        if addr < BASE_ADDRESS or addr + raw.size > self.capacity:
            raise ValueError("device write out of range")
        self._mem[addr:addr + raw.size] = raw

    def read(self, addr: int, nbytes: int, dtype=np.uint8) -> np.ndarray:
        """Copy device bytes starting at ``addr`` to a new host array."""
        if addr < BASE_ADDRESS or addr + nbytes > self.capacity:
            raise ValueError("device read out of range")
        raw = self._mem[addr:addr + nbytes].copy()
        return raw.view(dtype)

    def flip_bit(self, addr: int, bit: int) -> None:
        """Flip one bit of device memory (fault injection primitive).

        ``bit`` indexes bits from ``addr``; used by
        :mod:`repro.faults.inject` to model in-flight transfer
        corruption that the per-transfer checksums must detect.
        """
        byte = addr + (bit >> 3)
        if byte < BASE_ADDRESS or byte >= self.capacity:
            raise ValueError("device bit-flip out of range")
        self._mem[byte] ^= np.uint8(1 << (bit & 7))

"""Device memory: flat pool/allocator and the LRU software cache."""

from .cache import (
    CacheEntry,
    CacheStats,
    FieldCache,
    NoValidCopyError,
    SpillImpossible,
)
from .pool import (
    ALIGNMENT,
    BASE_ADDRESS,
    DeviceOutOfMemory,
    DevicePool,
    InvalidFree,
    PoolStats,
)

__all__ = [
    "ALIGNMENT",
    "BASE_ADDRESS",
    "CacheEntry",
    "CacheStats",
    "DeviceOutOfMemory",
    "DevicePool",
    "FieldCache",
    "InvalidFree",
    "NoValidCopyError",
    "PoolStats",
    "SpillImpossible",
]

"""The unified modeled timeline: lanes, spans and overlap accounting.

Every modeled cost in the framework — kernel launches, H2D/D2H
transfers, JIT compiles, halo messages, allreduces — lands here as a
:class:`Span` on a *lane* (one lane per stream: compute, h2d, d2h,
comm; one ``serial`` lane when streams are off).  Spans carry their
dependency edges (program order within a stream plus explicit event
waits), so the timeline can answer the questions the serial device
clock cannot:

* per-lane busy time and the *serial sum* (what a one-clock model
  would report),
* the *makespan* (``end_s``) under the modeled concurrency,
* the **overlap fraction** ``1 - end_s / serial_s`` — how much of the
  serial cost was hidden behind other lanes,
* the **critical path**: the dependency chain of spans that determines
  the makespan, i.e. where an optimizer would have to shave time.

The timeline is pure bookkeeping — it never influences *what* executes
(data operations stay eager and bitwise identical); it only models
*when* the work would have completed on a device with streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Span:
    """One modeled operation on one lane of the timeline."""

    sid: int                    #: dense index into ``Timeline.spans``
    lane: str                   #: stream lane ("compute", "h2d", ...)
    name: str                   #: operation label (kernel name, ...)
    cat: str                    #: category ("kernel", "h2d", "comm", ...)
    t0: float                   #: modeled start, seconds
    t1: float                   #: modeled end, seconds
    #: sids of spans this one waited on (program order + event waits)
    deps: tuple[int, ...] = ()
    args: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0


class Timeline:
    """An append-only collection of spans with overlap analytics."""

    def __init__(self):
        self.spans: list[Span] = []
        #: while set, every recorded span is stamped with this tenant
        #: id in its ``args`` (the serving layer sets it around each
        #: scheduled step; ``None`` — the default — stamps nothing, so
        #: bare-context traces are byte-identical to before)
        self.tenant: str | None = None

    # -- recording -----------------------------------------------------

    def add_span(self, lane: str, name: str, cat: str, t0: float,
                 t1: float, deps=(), args: dict | None = None) -> Span:
        deps = tuple(dict.fromkeys(d for d in deps if d is not None))
        args = dict(args or {})
        if self.tenant is not None:
            args.setdefault("tenant", self.tenant)
        span = Span(sid=len(self.spans), lane=lane, name=name, cat=cat,
                    t0=t0, t1=t1, deps=deps, args=args)
        self.spans.append(span)
        return span

    # -- aggregate metrics ---------------------------------------------

    @property
    def end_s(self) -> float:
        """Makespan: modeled completion time of the last span."""
        return max((s.t1 for s in self.spans), default=0.0)

    @property
    def serial_s(self) -> float:
        """What a single serial clock would charge: sum of durations."""
        return sum(s.duration_s for s in self.spans)

    def lane_busy(self) -> dict[str, float]:
        """Busy (occupied) seconds per lane."""
        busy: dict[str, float] = {}
        for s in self.spans:
            busy[s.lane] = busy.get(s.lane, 0.0) + s.duration_s
        return busy

    def cat_busy(self) -> dict[str, float]:
        """Busy seconds per span category (kernel/gather/comm/...)."""
        busy: dict[str, float] = {}
        for s in self.spans:
            busy[s.cat] = busy.get(s.cat, 0.0) + s.duration_s
        return busy

    def lane_spans(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for s in self.spans:
            counts[s.lane] = counts.get(s.lane, 0) + 1
        return counts

    @property
    def overlap_fraction(self) -> float:
        """Fraction of the serial cost hidden by lane concurrency.

        ``0.0`` means fully serial (the ``REPRO_STREAMS=off`` model);
        approaching ``1 - 1/n_lanes`` means near-perfect overlap.
        """
        serial = self.serial_s
        if serial <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.end_s / serial)

    # -- critical path --------------------------------------------------

    def critical_path(self) -> tuple[float, list[Span]]:
        """The dependency chain that determines the makespan.

        Walks back from the last-finishing span, at each step following
        the predecessor (event wait or same-lane program order) with
        the latest finish time — the edge that actually gated the
        span's start.  Returns ``(sum of chain durations, chain)`` in
        execution order.  The length is at most ``end_s``; the gap is
        idle time even the critical chain spent waiting (e.g. network
        latency modeled inside a span keeps it on the chain).
        """
        if not self.spans:
            return 0.0, []
        cur = max(self.spans, key=lambda s: s.t1)
        chain = [cur]
        while cur.deps:
            preds = [self.spans[d] for d in cur.deps]
            pred = max(preds, key=lambda s: s.t1)
            if pred.t1 <= 0.0 and pred.duration_s == 0.0:
                break
            chain.append(pred)
            cur = pred
        chain.reverse()
        return sum(s.duration_s for s in chain), chain

    @property
    def critical_path_s(self) -> float:
        return self.critical_path()[0]

    # -- views -----------------------------------------------------------

    def since(self, t: float) -> "Timeline":
        """A rebased sub-timeline of the spans starting at or after
        ``t`` — useful for measuring one algorithmic step on a
        long-lived runtime.  Span times are shifted so the window
        starts at 0; dependency edges are remapped where both ends
        stay inside the window and dropped otherwise."""
        view = Timeline()
        selected = [s for s in self.spans if s.t0 >= t]
        base = min((s.t0 for s in selected), default=0.0)
        remap = {s.sid: i for i, s in enumerate(selected)}
        for s in selected:
            view.add_span(s.lane, s.name, s.cat, s.t0 - base, s.t1 - base,
                          deps=tuple(remap[d] for d in s.deps
                                     if d in remap),
                          args=s.args)
        return view

    def for_tenant(self, tenant: str | None) -> "Timeline":
        """The sub-timeline of spans attributed to one tenant.

        Span times stay absolute (they describe *when* the shared
        device ran this tenant's work); dependency edges are remapped
        where both ends belong to the tenant and dropped otherwise.
        ``tenant=None`` selects the untagged spans (work recorded
        outside any scheduled step).
        """
        view = Timeline()
        selected = [s for s in self.spans
                    if s.args.get("tenant") == tenant]
        remap = {s.sid: i for i, s in enumerate(selected)}
        for s in selected:
            view.add_span(s.lane, s.name, s.cat, s.t0, s.t1,
                          deps=tuple(remap[d] for d in s.deps
                                     if d in remap),
                          args=s.args)
        return view

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Timeline {len(self.spans)} spans, "
                f"end {self.end_s * 1e6:.1f} us, "
                f"overlap {self.overlap_fraction:.1%}>")

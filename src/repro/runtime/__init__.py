"""The simulated stream/event runtime: concurrent modeled lanes.

:mod:`repro.runtime.stream`
    :class:`Stream` / :class:`Event` / :class:`StreamRuntime` — the
    CUDA-style execution lanes with per-stream modeled clocks.
:mod:`repro.runtime.timeline`
    :class:`Timeline` / :class:`Span` — the unified lane-based record
    of every modeled cost, with overlap and critical-path analytics.
:mod:`repro.runtime.trace`
    Chrome-trace JSON export and the ``python -m repro.trace`` CLI.
"""

from .stream import Event, Stream, StreamRuntime
from .timeline import Span, Timeline
from .trace import chrome_trace, summarize, write_chrome_trace

__all__ = [
    "Event",
    "Span",
    "Stream",
    "StreamRuntime",
    "Timeline",
    "chrome_trace",
    "summarize",
    "write_chrome_trace",
]

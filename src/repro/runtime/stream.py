"""Simulated CUDA streams and events over a modeled clock.

A :class:`Stream` is an in-order queue with its own modeled clock: an
operation enqueued on it starts at ``max(stream clock, waited
events)`` and advances the clock by its modeled duration, stamping a
:class:`~repro.runtime.timeline.Span` on the shared
:class:`~repro.runtime.timeline.Timeline`.  Ordering *between* streams
is expressed the CUDA way — :meth:`Stream.record_event` /
:meth:`Stream.wait_event` — so copy, compute and communication lanes
genuinely overlap unless an event says otherwise.

Execution stays eager and deterministic: the data side of every
operation completes immediately in program order (results are bitwise
identical with streams on or off); streams model only *when* the work
would finish on a real device.  The ``REPRO_STREAMS`` knob (default
``on``) collapses all lanes onto one ``serial`` stream, restoring the
single-clock model where the makespan equals the serial sum.
"""

from __future__ import annotations

from ..diagnostics import stream_mode
from .timeline import Span, Timeline


class Event:
    """A marker on a stream: 'everything enqueued before this is done'."""

    __slots__ = ("time_s", "span")

    def __init__(self, time_s: float, span: Span | None = None):
        self.time_s = time_s
        self.span = span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Event t={self.time_s * 1e6:.2f}us>"


class Stream:
    """One in-order execution lane with a modeled clock."""

    def __init__(self, timeline: Timeline, name: str, lane: str):
        self.timeline = timeline
        self.name = name
        self.lane = lane
        #: modeled completion time of the last enqueued operation
        self.clock = 0.0
        self._last_span: Span | None = None
        #: spans of events waited on since the last enqueue (become
        #: dependency edges of the next span)
        self._pending_deps: list[int] = []

    def enqueue(self, name: str, duration_s: float, cat: str,
                wait=(), args: dict | None = None) -> Span:
        """Place one modeled operation on this stream.

        The operation starts once the stream is idle *and* every event
        in ``wait`` has fired; the stream clock advances to its end.
        """
        deps: list[int] = []
        if self._last_span is not None:
            deps.append(self._last_span.sid)
        deps.extend(self._pending_deps)
        self._pending_deps.clear()
        start = self.clock
        for ev in wait:
            if ev is None:
                continue
            start = max(start, ev.time_s)
            if ev.span is not None:
                deps.append(ev.span.sid)
        span = self.timeline.add_span(self.lane, name, cat, start,
                                      start + duration_s, deps, args)
        self.clock = span.t1
        self._last_span = span
        return span

    def record_event(self) -> Event:
        """An event that fires when all work enqueued so far is done."""
        return Event(self.clock, self._last_span)

    def wait_event(self, event: Event | None) -> None:
        """Make all *subsequently* enqueued work wait for ``event``."""
        if event is None:
            return
        if event.time_s > self.clock:
            self.clock = event.time_s
        if event.span is not None:
            self._pending_deps.append(event.span.sid)

    def synchronize(self) -> float:
        """Modeled time at which this stream drains (its clock)."""
        return self.clock

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Stream {self.name} @ {self.clock * 1e6:.2f}us>"


class StreamRuntime:
    """The per-device stream set: compute + copy lanes + comm.

    Mirrors the classic CUDA setup — a default compute stream, a
    dedicated H2D copy stream, a dedicated D2H copy stream and a
    communication lane (NIC / CUDA-aware MPI progress).  With
    ``enabled=False`` (or ``REPRO_STREAMS=off``) all four names alias
    one ``serial`` stream and every operation serializes, reproducing
    the old single-clock device model exactly.
    """

    LANES = ("compute", "h2d", "d2h", "comm")

    def __init__(self, enabled: bool | None = None,
                 timeline: Timeline | None = None):
        if enabled is None:
            enabled = stream_mode() == "on"
        self.enabled = enabled
        self.timeline = timeline if timeline is not None else Timeline()
        if enabled:
            self.compute = Stream(self.timeline, "compute", "compute")
            self.h2d = Stream(self.timeline, "h2d", "h2d")
            self.d2h = Stream(self.timeline, "d2h", "d2h")
            self.comm = Stream(self.timeline, "comm", "comm")
            self.streams = [self.compute, self.h2d, self.d2h, self.comm]
        else:
            serial = Stream(self.timeline, "serial", "serial")
            self.compute = self.h2d = self.d2h = self.comm = serial
            self.streams = [serial]

    def synchronize(self) -> float:
        """Device-wide barrier: all streams drain; clocks align.

        Returns the modeled time of the barrier.  Subsequent work on
        any stream starts no earlier than this point — the modeled
        analogue of ``cudaDeviceSynchronize``.
        """
        t = max(s.clock for s in self.streams)
        for s in self.streams:
            s.clock = t
        return t

    @property
    def elapsed_s(self) -> float:
        """Makespan of everything modeled so far."""
        return self.timeline.end_s

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "streams" if self.enabled else "serial"
        return (f"<StreamRuntime {mode}, {len(self.timeline)} spans, "
                f"elapsed {self.elapsed_s * 1e6:.1f}us>")

"""Chrome-trace export and the ``python -m repro.trace`` summary CLI.

:func:`chrome_trace` converts a :class:`~repro.runtime.timeline.Timeline`
into the Chrome Trace Event JSON format (the ``chrome://tracing`` /
Perfetto ``traceEvents`` array): one pseudo-thread per lane, one
complete (``"ph": "X"``) event per span, timestamps in microseconds.
Load the file at https://ui.perfetto.dev to *see* the copy–compute–comm
overlap the runtime models.

The CLI runs a representative workload (the fused-CG iteration of
``benchmarks/bench_fusion.py``, optionally under memory pressure so
the D2H writeback lane lights up), prints the per-lane utilization /
overlap / critical-path summary, and optionally writes the Chrome
trace::

    python -m repro.trace --lattice 8,8,8,8 --iters 10 --out cg-trace.json
"""

from __future__ import annotations

import argparse
import json
import sys

from .timeline import Timeline

#: stable lane ordering for the trace's pseudo-threads
_LANE_ORDER = ("serial", "compute", "h2d", "d2h", "comm")


def _lane_tids(timeline: Timeline) -> dict[str, int]:
    lanes = sorted({s.lane for s in timeline.spans},
                   key=lambda x: (_LANE_ORDER.index(x)
                                  if x in _LANE_ORDER else len(_LANE_ORDER),
                                  x))
    return {lane: i for i, lane in enumerate(lanes)}


def chrome_trace(timeline: Timeline, pid: int = 0) -> dict:
    """The timeline as a Chrome Trace Event document (a dict)."""
    tids = _lane_tids(timeline)
    events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": pid,
         "args": {"name": "repro modeled device"}},
    ]
    for lane, tid in tids.items():
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": lane}})
    for s in timeline.spans:
        events.append({
            "ph": "X", "name": s.name, "cat": s.cat, "pid": pid,
            "tid": tids[s.lane],
            "ts": s.t0 * 1e6, "dur": s.duration_s * 1e6,
            "args": dict(s.args, deps=list(s.deps)),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(timeline: Timeline, path: str, pid: int = 0) -> None:
    """Write the Chrome-trace JSON for ``timeline`` to ``path``."""
    with open(path, "w") as f:
        json.dump(chrome_trace(timeline, pid=pid), f)


def summarize(timeline: Timeline, title: str = "timeline") -> str:
    """A text summary: per-lane busy time, overlap, critical path."""
    end = timeline.end_s
    busy = timeline.lane_busy()
    counts = timeline.lane_spans()
    lines = [f"-- {title} " + "-" * max(1, 58 - len(title))]
    lanes = sorted(busy, key=lambda x: (_LANE_ORDER.index(x)
                                        if x in _LANE_ORDER
                                        else len(_LANE_ORDER), x))
    for lane in lanes:
        util = busy[lane] / end if end else 0.0
        lines.append(f"  {lane:<8} {busy[lane] * 1e6:>12.1f} us busy"
                     f"  {counts[lane]:>6} span(s)  {util:>6.1%} of makespan")
    cp_s, chain = timeline.critical_path()
    lines.append(f"  makespan {end * 1e6:.1f} us; serial sum "
                 f"{timeline.serial_s * 1e6:.1f} us; overlap "
                 f"{timeline.overlap_fraction:.1%}")
    lines.append(f"  critical path {cp_s * 1e6:.1f} us over "
                 f"{len(chain)} span(s)")
    return "\n".join(lines)


def _run_cg_workload(dims, iters: int, pool_mib: float | None):
    """The fused-CG probe workload (same shape as bench_fusion).

    A handful of device-dirty bystander fields are produced first (and
    kept alive): under a small ``--pool-mib`` they become the LRU spill
    victims once the solver's working set wants their memory, which is
    what puts writeback traffic on the D2H lane.
    """
    import numpy as np

    from ..core.context import Context
    from ..qcd.solver import cg
    from ..qdp.fields import latt_fermion, latt_real
    from ..qdp.lattice import Lattice

    capacity = None if pool_mib is None else int(pool_mib * (1 << 20))
    ctx = Context(autotune=False, pool_capacity=capacity)
    lat = Lattice(dims)
    rng = np.random.default_rng(17)
    w = latt_real(lat, context=ctx)
    w.from_numpy(rng.uniform(0.5, 1.5, lat.nsites))
    b = latt_fermion(lat, context=ctx)
    b.gaussian(rng)
    bystanders = []
    for _ in range(4):
        e = latt_fermion(lat, context=ctx)
        e.assign(w.ref() * b.ref())
        bystanders.append(e)
    ctx.flush()
    x = latt_fermion(lat, context=ctx)
    cg(lambda dest, src: dest.assign(w.ref() * src.ref()),
       x, b, tol=0.0, max_iter=iters)
    ctx.flush()
    ctx._trace_keepalive = bystanders
    return ctx


def main(argv=None) -> int:
    from ..lint import _parse_dims

    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Run a fused-CG workload on the stream/event "
                    "runtime, print the per-lane overlap summary and "
                    "optionally export a Chrome trace (load it at "
                    "ui.perfetto.dev).")
    parser.add_argument("--lattice", type=_parse_dims, default=(4, 4, 4, 4),
                        metavar="X,Y,Z,T",
                        help="lattice extents (default 4,4,4,4)")
    parser.add_argument("--iters", type=int, default=8,
                        help="CG iterations to run (default 8)")
    parser.add_argument("--pool-mib", type=float, default=None,
                        help="device pool capacity in MiB; small values "
                             "force LRU spills so the D2H writeback "
                             "lane shows activity")
    parser.add_argument("--out", metavar="TRACE.json", default=None,
                        help="write the Chrome-trace JSON here")
    args = parser.parse_args(argv)

    ctx = _run_cg_workload(args.lattice, args.iters, args.pool_mib)
    timeline = ctx.device.runtime.timeline
    dims = "x".join(map(str, args.lattice))
    print(summarize(timeline,
                    title=f"fused CG, {args.iters} iteration(s), {dims}"))
    cs = ctx.field_cache.stats
    print(f"  field cache: {cs.hits} hit(s), {cs.misses} miss(es), "
          f"{cs.spills} spill(s), {cs.bytes_paged_out} bytes written "
          f"back, high water {cs.resident_bytes_hwm} bytes")
    if args.out:
        write_chrome_trace(timeline, args.out)
        print(f"  wrote Chrome trace: {args.out} "
              f"({len(timeline)} spans)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro.trace
    sys.exit(main())

"""Structured diagnostics for the static-analysis layers.

Both analysis layers — the PTX verifier pass pipeline
(:mod:`repro.ptx.verifier`) and the expression-AST lint
(:mod:`repro.core.lint`) — report their findings as
:class:`Diagnostic` records rather than raising on the first
violation.  A diagnostic names the pass that produced it, carries a
severity, and points at the offending kernel/instruction or
expression, so a single run can report *every* problem in a program.

Strictness of the build-time hooks is controlled by the
``REPRO_VERIFY`` environment knob (see :func:`verify_mode`):

``off``
    Skip static analysis entirely (shaves compile time; unsafe).
``warn``
    Run every pass but only *report* findings as Python warnings —
    even error-severity ones.  Malformed kernels then surface as
    downstream failures, as in the unverified code path.
``error`` (default)
    Error-severity diagnostics raise; warnings and notes are emitted
    as Python warnings.
"""

from __future__ import annotations

import enum
import os
import warnings
from dataclasses import dataclass


class Severity(enum.IntEnum):
    """Severity of a diagnostic, ordered so comparisons make sense."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass."""

    severity: Severity
    pass_name: str        # e.g. "definite-assignment", "shift-alias"
    message: str
    obj: str = ""         # kernel name / destination field name
    location: str = ""    # rendered instruction or AST fragment

    def render(self) -> str:
        where = f" [{self.obj}]" if self.obj else ""
        at = f" at '{self.location}'" if self.location else ""
        return (f"{self.severity.label}: {self.pass_name}{where}: "
                f"{self.message}{at}")


def errors(diagnostics) -> list[Diagnostic]:
    """The error-severity subset of a diagnostics list."""
    return [d for d in diagnostics if d.severity >= Severity.ERROR]


def max_severity(diagnostics) -> Severity | None:
    """Highest severity present, or ``None`` for a clean report."""
    return max((d.severity for d in diagnostics), default=None)


VERIFY_MODES = ("off", "warn", "error")
FUSION_MODES = ("on", "off")
STREAM_MODES = ("on", "off")
FAULT_MODES = ("off", "plan:<spec>")
IR_MODES = ("off", "verify", "opt")
BACKEND_MODES = ("sim", "cpu")
SERVE_MODES = ("on", "off", "fifo", "fair")
RESILIENCE_MODES = ("off", "detect", "recover")

#: Bad ``REPRO_*`` values already warned about, keyed per knob (warn
#: once per distinct value, not once per kernel build).  The knob-mode
#: functions below share one resolver, so every knob gets identical
#: unknown-value handling: fall back to the default and announce it.
_warned_verify_values: set[str] = set()
_warned_fusion_values: set[str] = set()
_warned_stream_values: set[str] = set()
_warned_fault_values: set[str] = set()
_warned_ir_values: set[str] = set()
_warned_backend_values: set[str] = set()
_warned_serve_values: set[str] = set()
_warned_resilience_values: set[str] = set()


def _env_mode(env_var: str, accepted: tuple[str, ...], default: str,
              warned: set[str]) -> str:
    """Resolve one ``REPRO_*`` mode knob from the environment.

    Unrecognized values fall back to ``default`` rather than raising —
    a typo in an environment variable must not make every kernel build
    unreproducibly strict or lax — but the fallback is *announced*: a
    one-time warning names the bad value and the accepted set, so a
    misspelled ``REPRO_VERIFY=of`` is not silently ignored.
    """
    raw = os.environ.get(env_var)
    if raw is None:
        return default
    mode = raw.strip().lower()
    if mode in accepted:
        return mode
    if raw not in warned:
        warned.add(raw)
        warnings.warn(
            f"ignoring unrecognized {env_var}={raw!r}: accepted "
            f"values are {', '.join(accepted)}; using "
            f"{default!r}", RuntimeWarning, stacklevel=4)
    return default


def verify_mode(default: str = "error") -> str:
    """The current strictness mode from the ``REPRO_VERIFY`` knob.

    ``off``
        Skip static analysis entirely.
    ``warn``
        Run every pass, report findings as Python warnings only.
    ``error`` (default)
        Error-severity diagnostics raise.
    """
    return _env_mode("REPRO_VERIFY", VERIFY_MODES, default,
                     _warned_verify_values)


def fusion_mode(default: str = "on") -> str:
    """The deferred-evaluation mode from the ``REPRO_FUSION`` knob.

    ``on`` (default)
        Assignments enqueue into the context's fusion queue; compatible
        statements launch as one fused multi-output kernel at the next
        barrier (reduction, host access, shift hazard, explicit flush).
    ``off``
        Every assignment launches its own kernel immediately — the
        pre-fusion eager behavior, bitwise identical in results.
    """
    return _env_mode("REPRO_FUSION", FUSION_MODES, default,
                     _warned_fusion_values)


def stream_mode(default: str = "on") -> str:
    """The stream/event runtime mode from the ``REPRO_STREAMS`` knob.

    ``on`` (default)
        The modeled timeline runs on concurrent lanes — compute, H2D
        and D2H copies, and communication overlap unless an event
        orders them (:mod:`repro.runtime.stream`).  Results are bitwise
        identical either way; only modeled *time* changes.
    ``off``
        All lanes collapse onto one serial stream: the makespan equals
        the serial sum of every modeled cost (the pre-runtime model).
    """
    return _env_mode("REPRO_STREAMS", STREAM_MODES, default,
                     _warned_stream_values)


def ir_mode(default: str = "verify") -> str:
    """The IR pipeline mode from the ``REPRO_IR`` knob.

    ``off``
        Bypass the IR layer entirely: generated modules go to the
        verifier and driver JIT exactly as the unparser built them.
    ``verify`` (default)
        Build the SSA view of every generated module and check the
        structural invariants (:mod:`repro.ir.verify`), then hand the
        *original* module on — bitwise identical to ``off``.
    ``opt``
        Additionally run the optimization pass pipeline
        (:mod:`repro.ir.pipeline`): results stay bitwise identical,
        the instruction stream and register footprint shrink.
    """
    return _env_mode("REPRO_IR", IR_MODES, default, _warned_ir_values)


def backend_mode(default: str = "sim",
                 accepted: tuple[str, ...] = BACKEND_MODES) -> str:
    """The execution-backend mode from the ``REPRO_BACKEND`` knob.

    ``sim`` (default)
        Kernels execute through the simulated driver JIT — the PTX
        translator of :mod:`repro.driver.jitcompiler`, the reference
        execution semantics everything else is checked against.
    ``cpu``
        Kernels execute through the compiled CPU backend: PTX is
        transpiled to structured LLVM-style IR and code-generated into
        vectorized NumPy (:mod:`repro.llvm.cputarget`).  Results are
        bitwise identical to ``sim``; kernels outside the transpilable
        subset fall back to ``sim`` per kernel with a one-time warning.

    ``accepted`` defaults to the built-in set; the backend registry
    (:mod:`repro.driver.backends`) passes its registered names so
    dynamically registered backends are selectable through the knob.
    """
    return _env_mode("REPRO_BACKEND", accepted, default,
                     _warned_backend_values)


def serve_mode(default: str = "on") -> str:
    """The multi-tenant serving policy from the ``REPRO_SERVE`` knob.

    ``on`` (default)
        Alias for ``fair``: a :class:`~repro.serve.Server` created
        without an explicit policy schedules tenants with weighted
        deficit round-robin and enforces admission control.
    ``fair``
        Weighted deficit round-robin over tenants (explicit spelling).
    ``fifo``
        Non-preemptive first-come-first-served: each session runs to
        completion in submission order (the baseline the serving
        benchmark compares against); admission control still applies.
    ``off``
        The serving layer is inert: sessions run to completion in
        submission order with no interleaving and no admission
        queueing — equivalent to running each workload back-to-back
        on a bare context.

    A single-tenant workload is bitwise identical (results, reduction
    scalars, modeled clock, trace modulo tenant tags) under every
    mode — the scheduler only decides *when* ready work runs, never
    *what* it computes.
    """
    return _env_mode("REPRO_SERVE", SERVE_MODES, default,
                     _warned_serve_values)


def resilience_mode(default: str = "off") -> str:
    """The rank fault-tolerance mode from ``REPRO_RESILIENCE``.

    ``off`` (default)
        No rank-level resilience: the comm VM neither checkpoints nor
        monitors ranks, bitwise identical (results, span traces,
        module objects) to a build without the layer.
    ``detect``
        Detection only: an injected rank kill surfaces as a typed
        :class:`~repro.resilience.RankFailureError` at the exchange
        barrier where its halo fails to arrive, and stragglers are
        flagged on the timeline — but nothing is repaired.
    ``recover``
        Detection plus recovery: the VM refreshes buddy checkpoints of
        every distributed field at each exchange barrier and repairs a
        dead rank with the configured policy (buddy restore onto a
        spare rank, or shrink-and-redistribute), charging honest
        modeled transfer + backoff cost on the ``fault`` lane.
    """
    return _env_mode("REPRO_RESILIENCE", RESILIENCE_MODES, default,
                     _warned_resilience_values)


def faults_mode(default: str = "off") -> str:
    """The fault-injection mode from the ``REPRO_FAULTS`` knob.

    ``off`` (default)
        No fault injection: every chokepoint check is a no-op and the
        run is bitwise identical (results, kernels, modeled clocks,
        stats) to a build without the faults layer.
    ``plan:<spec>``
        Activate the deterministic fault plan described by ``<spec>``
        (see :func:`repro.faults.plan.parse_plan`), e.g.
        ``plan:seed=42,launch=0.05,alloc=1x,halo.corrupt=1x``.

    Returns ``"off"`` or the full (lowercased, stripped) ``plan:...``
    string; the spec itself is parsed — and its errors reported — by
    :mod:`repro.faults.plan`.  Unrecognized values fall back to the
    default with a one-time warning, like every other ``REPRO_*`` knob.
    """
    raw = os.environ.get("REPRO_FAULTS")
    if raw is None:
        return default
    mode = raw.strip().lower()
    if mode == "off" or mode.startswith("plan:"):
        return mode
    if raw not in _warned_fault_values:
        _warned_fault_values.add(raw)
        warnings.warn(
            f"ignoring unrecognized REPRO_FAULTS={raw!r}: accepted "
            f"values are {', '.join(FAULT_MODES)}; using "
            f"{default!r}", RuntimeWarning, stacklevel=3)
    return default


def emit_warnings(diagnostics, stacklevel: int = 3,
                  min_severity: Severity = Severity.WARNING) -> None:
    """Report diagnostics through the :mod:`warnings` machinery.

    Notes are suppressed by default — they describe expected costs
    (e.g. a shift that must be materialized), and surfacing them on
    every evaluation would bury real warnings.  The structured lists
    returned by the analysis entry points still carry them; the
    ``repro.lint`` report prints them.
    """
    for d in diagnostics:
        if d.severity >= min_severity:
            warnings.warn(d.render(), RuntimeWarning, stacklevel=stacklevel)

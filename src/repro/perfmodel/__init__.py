"""Analytic machine/performance models regenerating the paper's
evaluation figures (see DESIGN.md experiment index)."""

from .dslashperf import (
    DslashKernelStats,
    QDPJIT_CACHE_REUSE,
    figure_6,
    measure_dslash_kernels,
    model_dslash_timing,
)
from .hmcperf import (
    COMM_PER_NODE,
    PRODUCTION_WORKLOAD,
    QDPJIT_REST_RATE,
    QUDA_SOLVER_RATE,
    HMCWorkload,
    figure_7,
    figure_8,
    node_hours,
    resource_cost_factor,
    speedup,
    trajectory_time,
)
from .kernelperf import (
    KernelStats,
    figure_4_5,
    generate_test_kernels,
    sustained_bandwidth_curve,
)
from .machines import (
    BLUEWATERS_XE,
    BLUEWATERS_XK,
    INTERLAGOS,
    JLAB_12K,
    MACHINES,
    TITAN_XK,
    XEON_E5_2650,
    CPUSocket,
    NodeModel,
)

__all__ = [
    "BLUEWATERS_XE",
    "BLUEWATERS_XK",
    "COMM_PER_NODE",
    "CPUSocket",
    "DslashKernelStats",
    "HMCWorkload",
    "INTERLAGOS",
    "JLAB_12K",
    "KernelStats",
    "MACHINES",
    "NodeModel",
    "PRODUCTION_WORKLOAD",
    "QDPJIT_CACHE_REUSE",
    "QDPJIT_REST_RATE",
    "QUDA_SOLVER_RATE",
    "TITAN_XK",
    "XEON_E5_2650",
    "figure_4_5",
    "figure_6",
    "figure_7",
    "figure_8",
    "generate_test_kernels",
    "measure_dslash_kernels",
    "model_dslash_timing",
    "node_hours",
    "resource_cost_factor",
    "speedup",
    "sustained_bandwidth_curve",
    "trajectory_time",
]

"""Machine models for the paper's evaluation platforms (Sec. VIII-A).

* the JLab "12k" cluster: dual-socket Xeon E5-2650 nodes with K20x /
  K20m GPUs, QDR InfiniBand (single-GPU and overlap benchmarks);
* Blue Waters: XE nodes (2x AMD 6276 Interlagos) and XK nodes
  (1x Interlagos + 1x K20x), Cray Gemini torus;
* Titan: XK-equivalent nodes on a slightly different Gemini
  configuration — the paper finds it "hardly distinguishable" from
  Blue Waters (Fig. 8), which our model reproduces as a small
  network-constant perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.netmodel import GEMINI, IB_QDR_CUDA_AWARE, NetworkModel
from ..device.specs import DeviceSpec, K20M_ECC_ON, K20X_ECC_ON


@dataclass(frozen=True)
class CPUSocket:
    """A CPU socket as an LQCD engine (memory-bandwidth bound)."""

    name: str
    cores: int
    #: sustained STREAM-like bandwidth, bytes/s
    sustained_bandwidth: float
    #: sustained LQCD flop rate (memory bound), flop/s
    sustained_flops: float


#: AMD Opteron 6276 "Interlagos" (8 Bulldozer modules).
INTERLAGOS = CPUSocket(
    name="amd-6276-interlagos",
    cores=16,
    sustained_bandwidth=18e9,
    sustained_flops=12e9,     # typical sustained Wilson-clover DP rate
)

#: Intel Xeon E5-2650 (JLab 12k node socket).
XEON_E5_2650 = CPUSocket(
    name="xeon-e5-2650",
    cores=8,
    sustained_bandwidth=25e9,
    sustained_flops=16e9,
)


@dataclass(frozen=True)
class NodeModel:
    """One node of a machine: sockets and/or a GPU plus the fabric."""

    name: str
    sockets: int
    socket: CPUSocket
    gpu: DeviceSpec | None
    network: NetworkModel


#: Blue Waters XE node: 2 Interlagos sockets, no GPU.
BLUEWATERS_XE = NodeModel(
    name="bluewaters-xe", sockets=2, socket=INTERLAGOS, gpu=None,
    network=GEMINI)

#: Blue Waters XK node: 1 Interlagos + 1 K20x (ECC on in production).
BLUEWATERS_XK = NodeModel(
    name="bluewaters-xk", sockets=1, socket=INTERLAGOS, gpu=K20X_ECC_ON,
    network=GEMINI)

#: Titan XK node: same hardware, marginally different Gemini config.
TITAN_XK = NodeModel(
    name="titan-xk", sockets=1, socket=INTERLAGOS, gpu=K20X_ECC_ON,
    network=NetworkModel(name="cray-gemini-titan",
                         latency_s=GEMINI.latency_s * 1.1,
                         bandwidth=GEMINI.bandwidth * 0.97,
                         cuda_aware=False))

#: JLab 12k node (the single-GPU / overlap benchmarks).
JLAB_12K = NodeModel(
    name="jlab-12k", sockets=2, socket=XEON_E5_2650, gpu=K20M_ECC_ON,
    network=IB_QDR_CUDA_AWARE)

MACHINES = {m.name: m for m in (BLUEWATERS_XE, BLUEWATERS_XK, TITAN_XK,
                                JLAB_12K)}

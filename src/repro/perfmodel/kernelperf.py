"""Figure 4/5: sustained bandwidth of the generated kernels vs volume.

For each test function of Table II, the kernel is *actually generated*
(expression -> AST -> PTX) on a reference lattice; its measured
bytes-per-site and flops-per-site metadata then drive the device
bandwidth model across the volume sweep V = L^4, L = 2..28.  This is
exactly what the plotted quantity is on real hardware: total bytes
moved divided by kernel time.

The curves for the five different kernels nearly coincide — paper
Sec. VIII-B: "the performance of our generated code depends very
little on the actual function which it implements" — because the
sustained bandwidth is a property of the launch geometry, not of the
unrolled arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.context import Context
from ..device.memmodel import kernel_cost
from ..device.specs import DeviceSpec, K20X_ECC_OFF
from ..qdp.fields import (
    latt_color_matrix,
    latt_fermion,
    latt_spin_matrix,
)
from ..qdp.lattice import Lattice


@dataclass(frozen=True)
class KernelStats:
    """Static per-site cost of one generated kernel.

    ``transactions_per_warp`` / ``ideal_transactions_per_warp`` come
    from the abstract-interpretation coalescing analysis
    (:mod:`repro.ptx.absint`): estimated vs stride-1 memory
    transactions a warp issues across all global accesses.
    """

    name: str
    flops_per_site: int
    bytes_per_site: int
    regs_per_thread: int
    transactions_per_warp: float = 0.0
    ideal_transactions_per_warp: float = 0.0

    @property
    def flop_per_byte(self) -> float:
        return self.flops_per_site / self.bytes_per_site

    @property
    def mem_efficiency(self) -> float:
        """Fraction of streaming bandwidth the access pattern can use
        (1.0 when every access is coalesced — the SoA layout)."""
        if self.transactions_per_warp <= 0.0:
            return 1.0
        return (self.ideal_transactions_per_warp
                / self.transactions_per_warp)


def _clover_expr(lattice, precision, ctx, rng):
    from ..qcd.clover import CloverTerm
    from ..qcd.gauge import unit_gauge

    u = unit_gauge(lattice, precision, ctx)
    a = CloverTerm(u, coeff=0.1, precision=precision)
    psi = latt_fermion(lattice, precision, ctx)
    return a.apply_expr(psi)


def generate_test_kernels(precision: str = "f64",
                          spec: DeviceSpec = K20X_ECC_OFF
                          ) -> dict[str, KernelStats]:
    """Generate the five Table II kernels; return their static costs.

    Uses a small reference lattice — the kernels are volume-parametric
    so the metadata is exact for any V.
    """
    import numpy as np

    ctx = Context(spec, autotune=False)
    lattice = Lattice((4, 4, 4, 4))
    rng = np.random.default_rng(0)

    u1 = latt_color_matrix(lattice, precision, ctx)
    u2 = latt_color_matrix(lattice, precision, ctx)
    u3 = latt_color_matrix(lattice, precision, ctx)
    psi1 = latt_fermion(lattice, precision, ctx)
    psi2 = latt_fermion(lattice, precision, ctx)
    g2 = latt_spin_matrix(lattice, precision, ctx)
    g3 = latt_spin_matrix(lattice, precision, ctx)

    cases = {
        "lcm": (latt_color_matrix(lattice, precision, ctx), u2 * u3),
        "upsi": (latt_fermion(lattice, precision, ctx), u1 * psi2),
        "spmat": (latt_spin_matrix(lattice, precision, ctx), g2 * g3),
        "matvec": (latt_fermion(lattice, precision, ctx),
                   u1 * psi1 + u1 * psi2),
        "clover": (latt_fermion(lattice, precision, ctx),
                   _clover_expr(lattice, precision, ctx, rng)),
    }
    from ..ptx.absint import analyze_module

    out = {}
    for name, (dest, expr) in cases.items():
        dest.assign(expr)
        ctx.flush()   # deferred queue: force the launch (and compile) now
        # module_cache is insertion ordered: the entry just added by
        # this assignment is the expression kernel we want
        module = _last_expression_module(ctx)
        compiled, _ = ctx.kernel_cache.get_or_compile(module.render())
        analysis = analyze_module(module,
                                  env=ctx.analysis_envs.get(module.name))
        out[name] = KernelStats(
            name=name,
            flops_per_site=module.info.flops_per_site,
            bytes_per_site=module.info.bytes_per_site,
            regs_per_thread=compiled.regs_per_thread,
            transactions_per_warp=analysis.transactions_per_warp,
            ideal_transactions_per_warp=(
                analysis.ideal_transactions_per_warp),
        )
    return out


def _last_expression_module(ctx: Context):
    entry = list(ctx.module_cache.values())[-1]
    return entry[0]


def sustained_bandwidth_curve(stats: KernelStats, ls: list[int],
                              precision: str,
                              spec: DeviceSpec = K20X_ECC_OFF,
                              block_size: int = 128
                              ) -> list[tuple[int, float]]:
    """(L, sustained GB/s) for V = L^4 — one curve of Fig. 4/5.

    The queueing-model bandwidth is scaled by the kernel's statically
    predicted memory efficiency: an uncoalesced access pattern moves
    more transactions per useful byte, cutting the *effective*
    streaming rate proportionally.  The generated SoA kernels are
    fully coalesced (efficiency 1.0), reproducing the paper's curves
    unchanged.
    """
    out = []
    eff = stats.mem_efficiency
    for l in ls:
        v = l ** 4
        cost = kernel_cost(spec, nsites=v, block_size=block_size,
                           regs_per_thread=stats.regs_per_thread,
                           bytes_per_site=stats.bytes_per_site,
                           flops_per_site=stats.flops_per_site,
                           precision=precision)
        out.append((l, cost.sustained_gbs * eff))
    return out


def figure_4_5(precision: str, ls: list[int] | None = None,
               spec: DeviceSpec = K20X_ECC_OFF
               ) -> dict[str, list[tuple[int, float]]]:
    """All five curves of Fig. 4 (f32) or Fig. 5 (f64)."""
    if ls is None:
        ls = list(range(2, 29, 2))
    stats = generate_test_kernels(precision, spec)
    return {name: sustained_bandwidth_curve(s, ls, precision, spec)
            for name, s in stats.items()}

"""Figure 6: Dslash with/without comm-compute overlap, 2 GPUs.

The model reproduces the schedule of
:class:`repro.comm.overlap.DistributedWilsonDslash` analytically:
the kernel components' per-site costs come from the *actually
generated* expression kernels (verified bit-exact in the integration
tests at small volumes), and the component times for any volume come
from the device bandwidth model plus the interconnect model — the
same extrapolation a performance engineer would do, with every
constant tied to a measured or documented quantity.

Setup as in the paper (Sec. VIII-C): two K20m GPUs (ECC on) in two
12k nodes, MVAPICH2 with CUDA-aware MPI, lattice split in the time
direction, V = L^4 global.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.netmodel import IB_QDR_CUDA_AWARE, NetworkModel
from ..comm.overlap import DslashTiming
from ..core.context import Context
from ..device.memmodel import kernel_cost
from ..device.specs import DeviceSpec, K20M_ECC_ON
from ..qdp.fields import latt_color_matrix, latt_fermion
from ..qdp.lattice import Lattice


@dataclass(frozen=True)
class DslashKernelStats:
    """Per-site costs of the four kernel families in the schedule."""

    # adj(u)*psi temporaries
    prep_bytes: int
    prep_flops: int
    prep_regs: int
    # shift interior fill (gather copy of a fermion)
    fill_bytes: int
    fill_regs: int
    # the main 8-term accumulation kernel
    main_bytes: int
    main_flops: int
    main_regs: int
    # face gather/scatter copies (per word moved, fermion)
    face_words: int


def measure_dslash_kernels(precision: str) -> DslashKernelStats:
    """Generate the schedule's kernels once and read their metadata."""
    from ..core.expr import adj, shift
    from ..qcd.gamma import projector_const

    ctx = Context(autotune=False)
    lattice = Lattice((4, 4, 4, 4))
    u = [latt_color_matrix(lattice, precision, ctx) for _ in range(4)]
    psi = latt_fermion(lattice, precision, ctx)
    tb = latt_fermion(lattice, precision, ctx)
    hf = [latt_fermion(lattice, precision, ctx) for _ in range(4)]
    hb = [latt_fermion(lattice, precision, ctx) for _ in range(4)]
    dest = latt_fermion(lattice, precision, ctx)

    def last_module():
        ctx.flush()     # force the deferred launch so the module exists
        return list(ctx.module_cache.values())[-1][0]

    tb.assign(adj(u[0]) * psi)
    prep = last_module().info
    prep_compiled, _ = ctx.kernel_cache.get_or_compile(
        last_module().render())

    hf[0].assign(shift(psi.ref(), +1, 0), subset=lattice.even)
    fill = last_module().info
    fill_compiled, _ = ctx.kernel_cache.get_or_compile(
        last_module().render())

    total = None
    for mu in range(4):
        term = (projector_const(mu, +1, precision)
                * (u[mu] * hf[mu]) + projector_const(mu, -1, precision)
                * hb[mu].ref())
        total = term if total is None else total + term
    dest.assign(total)
    main = last_module().info
    main_compiled, _ = ctx.kernel_cache.get_or_compile(
        last_module().render())

    return DslashKernelStats(
        prep_bytes=prep.bytes_per_site, prep_flops=prep.flops_per_site,
        prep_regs=prep_compiled.regs_per_thread,
        fill_bytes=fill.bytes_per_site,
        fill_regs=fill_compiled.regs_per_thread,
        main_bytes=main.bytes_per_site, main_flops=main.flops_per_site,
        main_regs=main_compiled.regs_per_thread,
        face_words=24,
    )


#: Effective-traffic factor of the generated Dslash kernels: on real
#: Kepler the L2/read-only caches capture part of the 8-fold reuse of
#: neighbor spinors and the shared gauge links, so the sustained
#: traffic is well below the naive per-kernel byte count.  Calibrated
#: to the paper's measured 197 GFLOPS (SP, 40^4) / 90 GFLOPS (DP,
#: 32^4) for the generated implementation (Sec. VIII-C).
QDPJIT_CACHE_REUSE = {"f32": 0.44, "f64": 0.485}


def model_dslash_timing(l: int, precision: str, overlap: bool,
                        stats: DslashKernelStats | None = None,
                        spec: DeviceSpec = K20M_ECC_ON,
                        net: NetworkModel = IB_QDR_CUDA_AWARE,
                        n_ranks: int = 2) -> DslashTiming:
    """Modeled distributed-Dslash timing at global volume L^4."""
    if stats is None:
        stats = measure_dslash_kernels(precision)
    reuse = QDPJIT_CACHE_REUSE[precision]
    stats = DslashKernelStats(
        prep_bytes=int(stats.prep_bytes * reuse),
        prep_flops=stats.prep_flops, prep_regs=stats.prep_regs,
        fill_bytes=int(stats.fill_bytes * reuse),
        fill_regs=stats.fill_regs,
        main_bytes=int(stats.main_bytes * reuse),
        main_flops=stats.main_flops, main_regs=stats.main_regs,
        face_words=stats.face_words)
    word = 4 if precision == "f32" else 8
    v_local = l ** 4 // n_ranks
    # local dims (l, l, l, l/n): faces in the split direction only
    face = l ** 3
    nd = 4

    def kcost(nsites, bytes_per_site, flops_per_site, regs):
        return kernel_cost(spec, nsites=nsites, block_size=128,
                           regs_per_thread=regs,
                           bytes_per_site=bytes_per_site,
                           flops_per_site=flops_per_site,
                           precision=precision).time_s

    # 1. four adj(u)*psi temporaries over the full local volume
    prepare = nd * kcost(v_local, stats.prep_bytes, stats.prep_flops,
                         stats.prep_regs)
    # 2. gathers: only the split direction crosses ranks, but the
    #    schedule gathers all 8 faces (periodic wrap shares the path);
    #    intra-GPU "messages" for unsplit directions are pool copies
    #    modeled at device bandwidth (they are cheap), the split
    #    direction pays the network.
    gbytes = stats.face_words * word * face
    gather = 8 * kcost(face, stats.face_words * word * 2, 0, 16)
    # the fwd and bwd halo messages travel in opposite directions on a
    # full-duplex link and pipeline: one exposed message time
    comm = net.message_time(gbytes)
    # unsplit-direction wraps: device-internal copies
    comm_local = 6 * (gbytes / (spec.max_bandwidth_fraction
                                * spec.peak_bandwidth))
    comm += comm_local
    # 3. interior fills: 8 shifted temporaries, (V - face) sites each
    interior_fill = 8 * kcost(v_local - face, stats.fill_bytes, 0,
                              stats.fill_regs)
    # 4. scatters
    scatter = 8 * kcost(face, stats.face_words * word * 2, 0, 16)
    # 5. main kernel
    n_boundary = min(v_local, 8 * face)
    n_inner = max(v_local - n_boundary, 0)
    if overlap:
        main_inner = kcost(n_inner, stats.main_bytes, stats.main_flops,
                           stats.main_regs)
        main_face = kcost(n_boundary, stats.main_bytes, stats.main_flops,
                          stats.main_regs)
    else:
        main_inner = kcost(v_local, stats.main_bytes, stats.main_flops,
                           stats.main_regs)
        main_face = 0.0
    # lay the schedule out on an (always-concurrent) stream runtime:
    # the reported total is the event-ordered makespan, and the
    # timeline can be exported as a Chrome trace
    from ..runtime.stream import StreamRuntime

    rt = StreamRuntime(enabled=True)
    c, m = rt.compute, rt.comm
    c.enqueue("prepare", prepare, "kernel")
    c.enqueue("gather", gather, "gather")
    m.wait_event(c.record_event())
    m.enqueue("halo", comm, "comm", args={"bytes": gbytes})
    comm_ev = m.record_event()
    if overlap:
        c.enqueue("interior_fill", interior_fill, "kernel")
        c.enqueue("main_inner", main_inner, "kernel")
        c.wait_event(comm_ev)           # halo must land before scatter
        c.enqueue("scatter", scatter, "scatter")
        c.enqueue("main_face", main_face, "kernel")
    else:
        c.wait_event(comm_ev)           # sequential: idle until it lands
        c.enqueue("interior_fill", interior_fill, "kernel")
        c.enqueue("scatter", scatter, "scatter")
        c.enqueue("main_full", main_inner, "kernel")
    timeline_s = rt.synchronize()
    return DslashTiming(prepare_s=prepare, gather_s=gather, comm_s=comm,
                        interior_fill_s=interior_fill, scatter_s=scatter,
                        main_inner_s=main_inner, main_face_s=main_face,
                        overlap=overlap, timeline_s=timeline_s,
                        timeline=rt.timeline)


def figure_6(ls=None, stats_sp=None, stats_dp=None
             ) -> dict[str, list[tuple[int, float]]]:
    """The four curves of Fig. 6: (L, GFLOPS) for SP/DP x on/off."""
    if ls is None:
        ls = [8, 12, 16, 20, 24, 28, 32, 36, 40]
    stats_sp = stats_sp or measure_dslash_kernels("f32")
    stats_dp = stats_dp or measure_dslash_kernels("f64")
    out = {"sp_overlap": [], "sp_nooverlap": [],
           "dp_overlap": [], "dp_nooverlap": []}
    for l in ls:
        v = l ** 4
        for prec, stats in (("sp", stats_sp), ("dp", stats_dp)):
            fp = "f32" if prec == "sp" else "f64"
            for ov in (True, False):
                t = model_dslash_timing(l, fp, ov, stats)
                key = f"{prec}_{'overlap' if ov else 'nooverlap'}"
                out[key].append((l, t.gflops(v)))
    return out

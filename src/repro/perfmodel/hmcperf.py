"""Figures 7/8: HMC strong scaling on Blue Waters and Titan.

The paper deploys the production RHMC (V = 40^3 x 256, 2+1 flavors of
anisotropic clover fermions, m_pi ~ 230 MeV, tau = 0.2) in three
configurations:

* **CPU only** on XE sockets — scales well to ~400 sockets, then
  flattens (128 -> 1600);
* **CPU+QUDA** — only the solver is accelerated: speedup ~2.2x at 128
  and ~1.8x at 800 (Amdahl's law + interface copies);
* **QDP-JIT+QUDA** — everything on the GPU: ~11.0x at 128, ~3.7x at
  800, and ~2.0x over CPU+QUDA at 800.

The model decomposes a trajectory into solver work and "the rest"
(forces, expression evaluations, integrator algebra), in units of
Dslash-equivalent flops; the split and the absolute work are
calibrated to the paper's CPU-only anchor, and the three
configurations then follow from machine rates:

* CPU rest/solve at the Interlagos sustained LQCD rate;
* QUDA solver rate per K20x (mixed-precision solver);
* QDP-JIT rate for the non-solver work (generated kernels, DP);
* a per-node linear communication/imbalance term per configuration.

Every constant is documented next to its definition; the paper-vs-
model numbers are recorded in EXPERIMENTS.md and asserted (with
tolerances) by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from .machines import BLUEWATERS_XE, BLUEWATERS_XK, TITAN_XK, NodeModel

#: Standard Wilson-clover Dslash flops per site.
DSLASH_FLOPS = 1320


@dataclass(frozen=True)
class HMCWorkload:
    """One trajectory's work, in Dslash-equivalent applications.

    Calibrated to the paper's production run: the CPU-only trajectory
    at 128 XE sockets takes ~16,000 s at the Interlagos sustained rate
    of 12 GF/socket, implying ~2.45e19 flops per trajectory, i.e.
    ~1.1e6 Dslash-equivalents at V = 40^3 x 256 — a plausible count
    for a mass-preconditioned 2+1 RHMC with light quarks.  The
    solver share (60%) is the CPU-time fraction spent inside linear
    solves; the remaining 40% is the "diversified" gauge-generation
    work the paper stresses cannot be accelerated by a drop-in solver
    library.
    """

    volume: int = 40 ** 3 * 256
    dslash_equivalents: float = 1.13e6
    solver_fraction: float = 0.60

    @property
    def total_flops(self) -> float:
        return self.dslash_equivalents * DSLASH_FLOPS * self.volume

    @property
    def solver_flops(self) -> float:
        return self.total_flops * self.solver_fraction

    @property
    def rest_flops(self) -> float:
        return self.total_flops * (1.0 - self.solver_fraction)


PRODUCTION_WORKLOAD = HMCWorkload()

#: Sustained per-GPU rate of the QUDA mixed-precision solvers on the
#: XK's K20x (ECC on), flop/s.  QUDA solvers run dominantly in SP with
#: DP corrections; 250 GF is the DP-equivalent production rate.
QUDA_SOLVER_RATE = 250e9

#: Sustained per-GPU rate of the QDP-JIT generated kernels on the
#: non-solver work (DP, memory bound; cf. our Fig. 5/6 models).
QDPJIT_REST_RATE = 95e9

#: Linear per-node communication / load-imbalance terms, seconds per
#: trajectory per node.  These absorb allreduce latency pile-up and
#: halo exposure as the local volume shrinks; calibrated at the 800-
#: partition anchors.
COMM_PER_NODE = {"cpu": 1.5, "cpu+quda": 1.2, "qdpjit+quda": 1.0}


def trajectory_time(config: str, partition: int,
                    workload: HMCWorkload = PRODUCTION_WORKLOAD,
                    machine: str = "bluewaters") -> float:
    """Modeled trajectory wall-clock time in seconds.

    ``config``: ``"cpu"`` (XE sockets), ``"cpu+quda"`` or
    ``"qdpjit+quda"`` (XK nodes).  ``partition`` is the number of XE
    sockets / XK nodes.  ``machine`` is ``"bluewaters"`` or
    ``"titan"`` — Titan's slightly different Gemini configuration
    perturbs the comm term by a few percent (Fig. 8: "hardly
    distinguishable").
    """
    if partition < 1:
        raise ValueError("partition must be positive")
    w = workload
    node: NodeModel = BLUEWATERS_XE if config == "cpu" else (
        TITAN_XK if machine == "titan" else BLUEWATERS_XK)
    socket_rate = node.socket.sustained_flops
    comm_scale = 1.0
    if machine == "titan":
        # Gemini-class fabric, marginally different latency/placement
        comm_scale = 1.05
    if config == "cpu":
        compute = w.total_flops / (partition * socket_rate)
        comm = COMM_PER_NODE["cpu"] * partition * comm_scale
        return compute + comm
    if config == "cpu+quda":
        # solver on the GPU; the rest on the node's single CPU socket;
        # every call-out pays the PCIe + layout-change round trip
        solve = w.solver_flops / (partition * QUDA_SOLVER_RATE)
        rest = w.rest_flops / (partition * socket_rate)
        transfer = _interface_overhead(w, partition, node)
        comm = COMM_PER_NODE["cpu+quda"] * partition * comm_scale
        return solve + rest + transfer + comm
    if config == "qdpjit+quda":
        solve = w.solver_flops / (partition * QUDA_SOLVER_RATE)
        rest = w.rest_flops / (partition * QDPJIT_REST_RATE)
        comm = COMM_PER_NODE["qdpjit+quda"] * partition * comm_scale
        return solve + rest + comm
    raise ValueError(f"unknown configuration {config!r}")


#: Solver call-outs per trajectory (force evaluations across the
#: integrator levels) — sets how often CPU+QUDA pays the interface.
SOLVER_CALLOUTS = 300


def _interface_overhead(w: HMCWorkload, partition: int,
                        node: NodeModel) -> float:
    """PCIe + layout-change cost of the non-device QUDA interface.

    Per call-out the local gauge + spinor fields cross PCIe twice and
    are re-laid-out on the CPU (strided copies at ~2 GB/s/socket).
    Eliminated entirely by the QDP-JIT device interface.
    """
    local_sites = w.volume / partition
    gauge_bytes = local_sites * 4 * 18 * 8
    spinor_bytes = local_sites * 24 * 8
    per_call = 2 * (gauge_bytes + 2 * spinor_bytes)
    pcie = per_call / node.gpu.pcie_bandwidth
    relayout = per_call / 2e9
    return SOLVER_CALLOUTS * (pcie + relayout)


def figure_7(partitions=(128, 256, 400, 512, 800, 1600)
             ) -> dict[str, list[tuple[int, float]]]:
    """The three Blue Waters curves of Fig. 7."""
    out = {}
    for config in ("cpu", "cpu+quda", "qdpjit+quda"):
        pts = [(p, trajectory_time(config, p)) for p in partitions
               if not (config != "cpu" and p > 800)]
        out[config] = pts
    return out


def figure_8(partitions=(128, 256, 400, 512, 800)
             ) -> dict[str, list[tuple[int, float]]]:
    """Blue Waters vs Titan for the QDP-JIT+QUDA configuration."""
    return {
        "bluewaters": [(p, trajectory_time("qdpjit+quda", p,
                                           machine="bluewaters"))
                       for p in partitions],
        "titan": [(p, trajectory_time("qdpjit+quda", p, machine="titan"))
                  for p in partitions],
    }


def speedup(config: str, partition: int) -> float:
    """Speedup of ``config`` over CPU-only at equal partition size."""
    return (trajectory_time("cpu", partition)
            / trajectory_time(config, partition))


def node_hours(config: str, partition: int) -> float:
    """Integrated resource cost of one trajectory, node-hours."""
    return trajectory_time(config, partition) * partition / 3600.0


def resource_cost_factor(partition: int = 128) -> float:
    """The paper's headline: CPU+QUDA vs QDP-JIT+QUDA node-hours at
    the most efficient machine size (128): 258 vs 52 => ~5x."""
    return node_hours("cpu+quda", partition) / node_hours(
        "qdpjit+quda", partition)

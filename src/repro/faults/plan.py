"""Deterministic fault plans: what breaks, when, and how it recovers.

The paper's runtime already treats recovery as a first-class
mechanism — the auto-tuner halves the block size on launch failure
(Sec. VII) and the software cache spills LRU fields when device memory
fills (Sec. IV) — but on a modeled device those paths trigger almost
never.  A :class:`FaultPlan` makes every recovery path *reachable on
demand and deterministically*: a seeded RNG plus per-site specs decide,
at each chokepoint opportunity, whether a fault is injected.  The same
seed over the same workload reproduces the identical fault sequence
and the identical recovery trace (:meth:`FaultPlan.trace_json`).

Injection sites (the chokepoints the specs name):

``launch``
    Transient kernel-launch failure at :meth:`Device.launch`; the
    device retries with exponential backoff charged as modeled time.
``launch.sticky``
    Per-block-size *persistent* launch failure: the ``N`` largest
    halving-series block sizes always fail for matching kernels,
    driving the auto-tuner's probe down exactly as the paper's
    discover-by-failure start does.
``alloc``
    :class:`~repro.memory.pool.DeviceOutOfMemory` at device
    allocation, forcing the cache's spill-and-retry path.
``h2d`` / ``d2h``
    Bit-flip corruption of a host<->device transfer, detected by the
    per-transfer checksum guard and repaired by retransmission.
``halo.drop`` / ``halo.corrupt`` / ``halo.timeout``
    Message loss, payload corruption or delivery timeout on the halo
    exchange; detected by the message checksum (or the timeout timer)
    and repaired by a checksum-verified retransmit.
``solver``
    Corruption of the CG iterate, detected by the periodic
    true-residual recomputation (the reliable-update defect guard)
    and repaired by restarting from the last good point.
``rank.kill`` / ``rank.straggler``
    Whole-rank loss (or a hung, slow rank) in the comm VM, drawn per
    rank at each exchange barrier with targets ``rank<r>:<tag>`` so a
    glob can pin the victim and the exchange.  Detection is
    heartbeat-by-construction — a dead rank's halo never arrives —
    and recovery (``REPRO_RESILIENCE=recover``) restores the rank
    from its buddy checkpoint or shrinks the processor grid
    (:mod:`repro.resilience`).

Spec grammar (``REPRO_FAULTS=plan:<spec>`` or :func:`parse_plan`)::

    plan:seed=42,launch=0.05,launch.sticky=2x,alloc=1x,
         h2d=0.01,halo.corrupt=1x,solver=1x@cg

comma-separated entries; ``seed=<int>`` seeds the RNG; every other
entry is ``<site>[=<value>][@<glob>]`` where ``<value>`` is either a
probability per opportunity (``0.05``) or an exact count (``2x``),
and ``<glob>`` restricts the spec to matching kernel names / tags.
"""

from __future__ import annotations

import fnmatch
import os
import warnings
from dataclasses import dataclass, field

import numpy as np

#: canonical (site, kind) pairs a spec may name; the spec grammar
#: spells them ``site`` or ``site.kind``
SITES = {
    "launch": ("launch", "transient"),
    "launch.transient": ("launch", "transient"),
    "launch.sticky": ("launch", "sticky"),
    "alloc": ("alloc", "oom"),
    "alloc.oom": ("alloc", "oom"),
    "h2d": ("h2d", "bitflip"),
    "h2d.bitflip": ("h2d", "bitflip"),
    "d2h": ("d2h", "bitflip"),
    "d2h.bitflip": ("d2h", "bitflip"),
    "halo.drop": ("halo", "drop"),
    "halo.corrupt": ("halo", "corrupt"),
    "halo.timeout": ("halo", "timeout"),
    "solver": ("solver", "corrupt"),
    "solver.corrupt": ("solver", "corrupt"),
    "rank": ("rank", "kill"),
    "rank.kill": ("rank", "kill"),
    "rank.straggler": ("rank", "straggler"),
}


class FaultPlanError(ValueError):
    """A fault-plan spec string could not be parsed."""


@dataclass
class RecoveryPolicy:
    """How each injection site recovers, and what it costs.

    Backoff is *modeled* time: every retry charges
    ``backoff_base_s * backoff_factor**attempt`` to the device clock
    and stamps a ``lane="fault"`` span on the runtime timeline, so a
    chaos run's makespan honestly includes its recovery cost.
    """

    #: bounded retries per fault before the failure is surfaced
    max_retries: int = 8
    #: first-retry backoff (doubles each attempt)
    backoff_base_s: float = 2e-6
    backoff_factor: float = 2.0
    #: modeled wait before a halo message is declared lost
    halo_timeout_s: float = 50e-6
    #: CG true-residual recomputation interval (iterations)
    solver_check_interval: int = 8
    #: true residual worse than ``defect_factor`` x recursive => defect
    solver_defect_factor: float = 4.0
    #: bounded CG restarts before the defect is surfaced
    solver_max_restarts: int = 5
    #: modeled stall a straggling rank adds to its device clock
    straggler_hang_s: float = 500e-6
    #: flag ranks whose modeled clock exceeds this multiple of the
    #: median across ranks (the straggler detector's threshold)
    straggler_threshold: float = 4.0

    def backoff_s(self, attempt: int) -> float:
        return self.backoff_base_s * self.backoff_factor ** attempt


@dataclass
class FaultSpec:
    """One injection rule: a site, a trigger, and a name filter."""

    site: str                 # "launch"/"alloc"/"h2d"/"d2h"/"halo"/"solver"
    kind: str                 # site-specific failure mode
    rate: float = 1.0         # probability per opportunity
    count: int | None = None  # remaining injections (None = unlimited)
    match: str = "*"          # fnmatch over kernel name / transfer tag

    def matches(self, site: str, kind: str | None, target: str) -> bool:
        if self.site != site:
            return False
        if kind is not None and self.kind != kind:
            return False
        return fnmatch.fnmatchcase(target, self.match)

    @property
    def exhausted(self) -> bool:
        return self.count is not None and self.count <= 0


@dataclass
class FaultCounters:
    """Aggregate outcome counters, surfaced through ``ctx.stats``."""

    injected: int = 0
    recovered: int = 0
    retries: int = 0
    backoff_s: float = 0.0
    solver_restarts: int = 0

    def as_json(self) -> dict:
        return {"injected": self.injected, "recovered": self.recovered,
                "retries": self.retries, "backoff_s": self.backoff_s,
                "solver_restarts": self.solver_restarts}


#: the shared all-zero counters an inactive injector reports
ZERO_COUNTERS = FaultCounters()


@dataclass
class FaultEvent:
    """One injected fault and (once handled) its recovery record."""

    seq: int
    site: str
    kind: str
    target: str
    detail: dict = field(default_factory=dict)
    recovered: bool = False
    recovery: str = ""
    retries: int = 0
    backoff_s: float = 0.0

    def as_json(self) -> dict:
        return {"seq": self.seq, "site": self.site, "kind": self.kind,
                "target": self.target, "detail": dict(self.detail),
                "recovered": self.recovered, "recovery": self.recovery,
                "retries": self.retries, "backoff_s": self.backoff_s}


class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    The plan owns the RNG, the spec list, the recovery policy, the
    outcome counters and the fault/recovery trace.  One plan may be
    shared by several contexts (the virtual machine shares one across
    its ranks), so the trace is the single source of truth for "what
    broke and how it was repaired" in a chaos run.
    """

    def __init__(self, seed: int = 0,
                 policy: RecoveryPolicy | None = None):
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.specs: list[FaultSpec] = []
        self.counters = FaultCounters()
        self.trace: list[FaultEvent] = []
        #: optional callable returning the tenant id the current work
        #: is attributed to (the serving layer wires this to its
        #: scheduler); injected events carry it in their detail so a
        #: chaos run can assert which tenant each fault landed in
        self.tenant_hook = None

    # -- construction ---------------------------------------------------

    def add(self, site: str, rate: float = 1.0, count: int | None = None,
            match: str = "*") -> "FaultPlan":
        """Add one injection rule; ``site`` uses the spec grammar
        (``"launch"``, ``"halo.corrupt"``, ...).  Returns ``self``."""
        canonical = SITES.get(site)
        if canonical is None:
            raise FaultPlanError(
                f"unknown fault site {site!r}: accepted sites are "
                f"{', '.join(sorted(SITES))}")
        if not 0.0 <= rate <= 1.0:
            raise FaultPlanError(f"rate must be in [0, 1], got {rate}")
        self.specs.append(FaultSpec(site=canonical[0], kind=canonical[1],
                                    rate=rate, count=count, match=match))
        return self

    # -- the injection decision ----------------------------------------

    def find_spec(self, site: str, kind: str | None,
                  target: str) -> FaultSpec | None:
        """The first non-exhausted spec matching (site, kind, target)."""
        for spec in self.specs:
            if not spec.exhausted and spec.matches(site, kind, target):
                return spec
        return None

    def draw(self, site: str, kind: str | None = None,
             target: str = "") -> FaultEvent | None:
        """Decide whether a fault fires at this opportunity.

        Deterministic: count-mode specs (``rate == 1``) fire on their
        first ``count`` opportunities without consuming RNG state;
        rate-mode specs draw one uniform variate per opportunity.
        Returns the recorded :class:`FaultEvent`, or ``None``.
        """
        spec = self.find_spec(site, kind, target)
        if spec is None:
            return None
        if spec.rate < 1.0 and self.rng.random() >= spec.rate:
            return None
        return self.fire(spec, target)

    def fire(self, spec: FaultSpec, target: str,
             detail: dict | None = None,
             consume: bool = True) -> FaultEvent:
        """Unconditionally inject through ``spec`` and record it.

        ``consume=False`` leaves the spec's count budget untouched —
        used for sticky launch specs, whose count is a poison *depth*
        (how many halving-series sizes always fail), not a budget.
        """
        if consume and spec.count is not None:
            spec.count -= 1
        detail = dict(detail or {})
        if self.tenant_hook is not None:
            tenant = self.tenant_hook()
            if tenant is not None:
                detail.setdefault("tenant", tenant)
        event = FaultEvent(seq=len(self.trace), site=spec.site,
                           kind=spec.kind, target=target,
                           detail=detail)
        self.trace.append(event)
        self.counters.injected += 1
        return event

    def record_recovery(self, event: FaultEvent | None, action: str,
                        retries: int = 0, backoff_s: float = 0.0) -> None:
        """Mark ``event`` recovered; accumulate retry/backoff cost.

        ``event=None`` records only the cost (a retry attributed to an
        already-recovered fault, e.g. repeated halo retransmits).
        """
        self.counters.retries += retries
        self.counters.backoff_s += backoff_s
        if event is None:
            return
        if not event.recovered:
            event.recovered = True
            self.counters.recovered += 1
        event.recovery = action
        event.retries += retries
        event.backoff_s += backoff_s

    def record_solver_restart(self, event: FaultEvent | None,
                              action: str) -> None:
        self.counters.solver_restarts += 1
        self.record_recovery(event, action)

    # -- reporting ------------------------------------------------------

    def trace_json(self) -> dict:
        """The full fault/recovery trace (the CI chaos artifact)."""
        return {
            "seed": self.seed,
            "specs": [{"site": s.site, "kind": s.kind, "rate": s.rate,
                       "count": s.count, "match": s.match}
                      for s in self.specs],
            "counters": self.counters.as_json(),
            "events": [e.as_json() for e in self.trace],
        }

    def trace_signature(self) -> str:
        """A replay-comparable rendering of :meth:`trace_json`.

        Identical runs of the same seeded plan over the same workload
        produce identical signatures even within one process: field
        uids embedded in transfer tags (``pagein:f12``) are normalized
        away, since the uid counter is process-global and a replay
        allocates fresh fields.  Everything that defines the fault
        sequence — sites, kinds, corrupted bits, retry counts, backoff
        — is preserved verbatim.
        """
        import json
        import re

        return re.sub(r"\bf\d+\b", "f#",
                      json.dumps(self.trace_json(), sort_keys=True))

    def all_recovered(self) -> bool:
        return all(e.recovered for e in self.trace)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.counters
        return (f"<FaultPlan seed={self.seed} specs={len(self.specs)} "
                f"injected={c.injected} recovered={c.recovered}>")


# -- spec parsing / the REPRO_FAULTS knob ------------------------------

def parse_plan(text: str) -> FaultPlan:
    """Parse a ``plan:<spec>`` (or bare ``<spec>``) string.

    Raises :class:`FaultPlanError` on malformed input.
    """
    body = text.strip()
    if body.lower().startswith("plan:"):
        body = body[5:]
    plan_seed = 0
    entries: list[tuple[str, float, int | None, str]] = []
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        if "@" in item:
            item, match = item.split("@", 1)
            match = match.strip() or "*"
        else:
            match = "*"
        if "=" in item:
            key, value = (p.strip() for p in item.split("=", 1))
        else:
            key, value = item, "1x"
        if key == "seed":
            try:
                plan_seed = int(value)
            except ValueError:
                raise FaultPlanError(f"bad seed {value!r}") from None
            continue
        rate, count = 1.0, None
        if value.endswith(("x", "X")):
            try:
                count = int(value[:-1])
            except ValueError:
                raise FaultPlanError(
                    f"bad count {value!r} for {key!r}") from None
        else:
            try:
                rate = float(value)
            except ValueError:
                raise FaultPlanError(
                    f"bad rate {value!r} for {key!r}") from None
        entries.append((key, rate, count, match))
    plan = FaultPlan(seed=plan_seed)
    for key, rate, count, match in entries:
        plan.add(key, rate=rate, count=count, match=match)
    return plan


#: a plan installed programmatically; overrides the environment
_installed_plan: FaultPlan | None = None

#: bad REPRO_FAULTS plan specs already warned about
_warned_bad_specs: set[str] = set()


def install_plan(plan: FaultPlan | None) -> None:
    """Install (or with ``None`` remove) the process-wide fault plan.

    Every :class:`~repro.core.context.Context` or
    :class:`~repro.comm.vm.VirtualMachine` created afterwards shares
    ``plan``; passing a plan explicitly to their constructors takes
    precedence.
    """
    global _installed_plan
    _installed_plan = plan


def active_plan() -> FaultPlan | None:
    """The plan new contexts should use: the installed one, or a fresh
    plan parsed from ``REPRO_FAULTS=plan:<spec>``, or ``None``.

    Each call with an environment spec parses a *new* plan (fresh RNG,
    fresh budgets) so independently created contexts inject
    independently and deterministically.  An unparsable spec warns
    once and behaves as ``off`` — a typo must not change physics.
    """
    if _installed_plan is not None:
        return _installed_plan
    from ..diagnostics import faults_mode

    mode = faults_mode()
    if mode == "off":
        return None
    try:
        return parse_plan(mode)
    except FaultPlanError as e:
        raw = os.environ.get("REPRO_FAULTS", mode)
        if raw not in _warned_bad_specs:
            _warned_bad_specs.add(raw)
            warnings.warn(
                f"ignoring unparsable REPRO_FAULTS plan {raw!r}: {e}; "
                f"faults are off", RuntimeWarning, stacklevel=3)
        return None
